#include "baseline/tree_detector.h"

#include <vector>

#include "automaton/symbol_set.h"
#include "common/strutil.h"

namespace ode {
namespace internal {

/// Base of all operator nodes. Advance consumes one symbol and reports
/// whether the node's event occurs at this point. Clone copies structure
/// with *fresh* state (instances start detecting from their spawn point).
class TreeNode {
 public:
  virtual ~TreeNode() = default;
  virtual bool Advance(SymbolId sym) = 0;
  virtual std::unique_ptr<TreeNode> CloneFresh() const = 0;
  virtual size_t CountInstances() const = 0;
  virtual void Reset() = 0;
};

using NodePtr = std::unique_ptr<TreeNode>;

namespace {

class ConstNode : public TreeNode {
 public:
  explicit ConstNode(bool value) : value_(value) {}
  bool Advance(SymbolId) override { return value_; }
  NodePtr CloneFresh() const override {
    return std::make_unique<ConstNode>(value_);
  }
  size_t CountInstances() const override { return 1; }
  void Reset() override {}

 private:
  bool value_;
};

class AtomNode : public TreeNode {
 public:
  explicit AtomNode(SymbolSet symbols) : symbols_(std::move(symbols)) {}
  bool Advance(SymbolId sym) override { return symbols_.Contains(sym); }
  NodePtr CloneFresh() const override {
    return std::make_unique<AtomNode>(symbols_);
  }
  size_t CountInstances() const override { return 1; }
  void Reset() override {}

 private:
  SymbolSet symbols_;
};

/// Or / And / Not are pointwise on per-position occurrence bits.
class BoolNode : public TreeNode {
 public:
  enum class Op { kOr, kAnd, kNot };
  BoolNode(Op op, NodePtr a, NodePtr b)
      : op_(op), a_(std::move(a)), b_(std::move(b)) {}
  bool Advance(SymbolId sym) override {
    // Both children must consume the symbol unconditionally — stateful
    // subtrees fall out of sync if a boolean short-circuits them.
    bool a = a_->Advance(sym);
    bool b = b_ != nullptr && b_->Advance(sym);
    switch (op_) {
      case Op::kOr: return a || b;
      case Op::kAnd: return a && b;
      case Op::kNot: return !a;
    }
    return false;
  }
  NodePtr CloneFresh() const override {
    return std::make_unique<BoolNode>(op_, a_->CloneFresh(),
                                      b_ ? b_->CloneFresh() : nullptr);
  }
  size_t CountInstances() const override {
    return 1 + a_->CountInstances() + (b_ ? b_->CountInstances() : 0);
  }
  void Reset() override {
    a_->Reset();
    if (b_) b_->Reset();
  }

 private:
  Op op_;
  NodePtr a_;
  NodePtr b_;  // Null for kNot.
};

/// prior(A, B): B occurs and some A occurred strictly earlier.
class PriorNode : public TreeNode {
 public:
  PriorNode(NodePtr a, NodePtr b) : a_(std::move(a)), b_(std::move(b)) {}
  bool Advance(SymbolId sym) override {
    bool b_now = b_->Advance(sym);
    bool result = b_now && seen_a_;
    seen_a_ = seen_a_ || a_->Advance(sym);
    return result;
  }
  NodePtr CloneFresh() const override {
    return std::make_unique<PriorNode>(a_->CloneFresh(), b_->CloneFresh());
  }
  size_t CountInstances() const override {
    return 1 + a_->CountInstances() + b_->CountInstances();
  }
  void Reset() override {
    seen_a_ = false;
    a_->Reset();
    b_->Reset();
  }

 private:
  NodePtr a_;
  NodePtr b_;
  bool seen_a_ = false;
};

/// prior N / choose N / every N: occurrence counting on the child.
class CounterNode : public TreeNode {
 public:
  enum class Mode { kAtLeast, kExactly, kModulo };
  CounterNode(Mode mode, int64_t n, NodePtr child)
      : mode_(mode), n_(n), child_(std::move(child)) {}
  bool Advance(SymbolId sym) override {
    if (!child_->Advance(sym)) return false;
    ++count_;
    switch (mode_) {
      case Mode::kAtLeast: return count_ >= n_;
      case Mode::kExactly: return count_ == n_;
      case Mode::kModulo: return count_ % n_ == 0;
    }
    return false;
  }
  NodePtr CloneFresh() const override {
    return std::make_unique<CounterNode>(mode_, n_, child_->CloneFresh());
  }
  size_t CountInstances() const override {
    return 1 + child_->CountInstances();
  }
  void Reset() override {
    count_ = 0;
    child_->Reset();
  }

 private:
  Mode mode_;
  int64_t n_;
  NodePtr child_;
  int64_t count_ = 0;
};

/// relative(A, B): per A occurrence, spawn a fresh B instance on the
/// suffix — the Snoop-style instance accumulation.
class RelativeNode : public TreeNode {
 public:
  RelativeNode(NodePtr a, NodePtr b_proto)
      : a_(std::move(a)), b_proto_(std::move(b_proto)) {}
  bool Advance(SymbolId sym) override {
    bool occurred = false;
    for (NodePtr& inst : instances_) {
      if (inst->Advance(sym)) occurred = true;
    }
    if (a_->Advance(sym)) {
      instances_.push_back(b_proto_->CloneFresh());
    }
    return occurred;
  }
  NodePtr CloneFresh() const override {
    return std::make_unique<RelativeNode>(a_->CloneFresh(),
                                          b_proto_->CloneFresh());
  }
  size_t CountInstances() const override {
    size_t n = 1 + a_->CountInstances() + b_proto_->CountInstances();
    for (const NodePtr& inst : instances_) n += inst->CountInstances();
    return n;
  }
  void Reset() override {
    instances_.clear();
    a_->Reset();
  }

 private:
  NodePtr a_;
  NodePtr b_proto_;
  std::vector<NodePtr> instances_;
};

/// relative+(A) / relative N (A): chained occurrences; each completed link
/// spawns a fresh A instance tagged with the chain length so far.
class ChainNode : public TreeNode {
 public:
  ChainNode(NodePtr a_proto, int64_t min_links)
      : a_proto_(std::move(a_proto)), min_links_(min_links) {
    base_ = a_proto_->CloneFresh();
  }
  bool Advance(SymbolId sym) override {
    bool occurred = false;
    std::vector<int64_t> spawn_tags;
    for (auto& [inst, links] : instances_) {
      if (inst->Advance(sym)) {
        int64_t total = links + 1;
        if (total >= min_links_) occurred = true;
        spawn_tags.push_back(total);
      }
    }
    if (base_->Advance(sym)) {
      if (1 >= min_links_) occurred = true;
      spawn_tags.push_back(1);
    }
    for (int64_t tag : spawn_tags) {
      instances_.emplace_back(a_proto_->CloneFresh(), tag);
    }
    return occurred;
  }
  NodePtr CloneFresh() const override {
    return std::make_unique<ChainNode>(a_proto_->CloneFresh(), min_links_);
  }
  size_t CountInstances() const override {
    size_t n = 1 + base_->CountInstances() + a_proto_->CountInstances();
    for (const auto& [inst, links] : instances_) n += inst->CountInstances();
    return n;
  }
  void Reset() override {
    instances_.clear();
    base_ = a_proto_->CloneFresh();
  }

 private:
  NodePtr a_proto_;
  int64_t min_links_;
  NodePtr base_;
  std::vector<std::pair<NodePtr, int64_t>> instances_;
};

/// sequence(A, B): B must occur at exactly the next point after A.
class SequenceNode : public TreeNode {
 public:
  SequenceNode(NodePtr a, NodePtr b_proto)
      : a_(std::move(a)), b_proto_(std::move(b_proto)) {}
  bool Advance(SymbolId sym) override {
    bool occurred = false;
    if (prev_a_) {
      NodePtr fresh = b_proto_->CloneFresh();
      occurred = fresh->Advance(sym);
    }
    prev_a_ = a_->Advance(sym);
    return occurred;
  }
  NodePtr CloneFresh() const override {
    return std::make_unique<SequenceNode>(a_->CloneFresh(),
                                          b_proto_->CloneFresh());
  }
  size_t CountInstances() const override {
    return 1 + a_->CountInstances() + b_proto_->CountInstances();
  }
  void Reset() override {
    prev_a_ = false;
    a_->Reset();
  }

 private:
  NodePtr a_;
  NodePtr b_proto_;
  bool prev_a_ = false;
};

/// fa(E, F, G) and faAbs(E, F, G).
class FaNode : public TreeNode {
 public:
  FaNode(NodePtr e, NodePtr f_proto, NodePtr g_proto, bool absolute)
      : e_(std::move(e)),
        f_proto_(std::move(f_proto)),
        g_proto_(std::move(g_proto)),
        absolute_(absolute) {
    if (absolute_) g_abs_ = g_proto_->CloneFresh();
  }

  bool Advance(SymbolId sym) override {
    bool occurred = false;
    for (Instance& inst : instances_) {
      if (inst.done) continue;
      bool f_now = inst.f->Advance(sym);
      bool g_now = absolute_ ? false : inst.g->Advance(sym);
      if (inst.blocked) {
        inst.done = true;  // G already intervened; F can never fire.
        continue;
      }
      if (f_now) {
        occurred = true;  // First F; same-point G does not block (§3.4).
        inst.done = true;
        continue;
      }
      if (g_now) inst.done = true;
    }
    // faAbs: one global G stream; a G occurrence *now* blocks instances at
    // strictly later points (strictly-between semantics).
    bool g_abs_now = absolute_ ? g_abs_->Advance(sym) : false;
    if (g_abs_now) {
      for (Instance& inst : instances_) {
        if (!inst.done) inst.blocked = true;
      }
    }
    if (e_->Advance(sym)) {
      Instance inst;
      inst.f = f_proto_->CloneFresh();
      if (!absolute_) inst.g = g_proto_->CloneFresh();
      instances_.push_back(std::move(inst));
    }
    return occurred;
  }

  NodePtr CloneFresh() const override {
    return std::make_unique<FaNode>(e_->CloneFresh(), f_proto_->CloneFresh(),
                                    g_proto_->CloneFresh(), absolute_);
  }
  size_t CountInstances() const override {
    size_t n = 1 + e_->CountInstances() + f_proto_->CountInstances() +
               g_proto_->CountInstances();
    for (const Instance& inst : instances_) {
      n += inst.f->CountInstances();
      if (inst.g) n += inst.g->CountInstances();
    }
    return n;
  }
  void Reset() override {
    instances_.clear();
    e_->Reset();
    if (absolute_) g_abs_ = g_proto_->CloneFresh();
  }

 private:
  struct Instance {
    NodePtr f;
    NodePtr g;  // Per-instance G for fa; null for faAbs.
    bool blocked = false;
    bool done = false;
  };

  NodePtr e_;
  NodePtr f_proto_;
  NodePtr g_proto_;
  bool absolute_;
  NodePtr g_abs_;
  std::vector<Instance> instances_;
};

Result<NodePtr> BuildNode(const EventExpr& e, const Alphabet& alphabet) {
  auto child = [&](size_t i) -> Result<NodePtr> {
    return BuildNode(*e.children[i], alphabet);
  };
  switch (e.kind) {
    case EventExprKind::kEmpty:
      return NodePtr(std::make_unique<ConstNode>(false));
    case EventExprKind::kAtom: {
      Result<SymbolSet> syms = alphabet.SymbolsFor(e);
      if (!syms.ok()) return syms.status();
      return NodePtr(std::make_unique<AtomNode>(std::move(*syms)));
    }
    case EventExprKind::kOr:
    case EventExprKind::kAnd: {
      ODE_ASSIGN_OR_RETURN(NodePtr a, child(0));
      ODE_ASSIGN_OR_RETURN(NodePtr b, child(1));
      return NodePtr(std::make_unique<BoolNode>(
          e.kind == EventExprKind::kOr ? BoolNode::Op::kOr
                                       : BoolNode::Op::kAnd,
          std::move(a), std::move(b)));
    }
    case EventExprKind::kNot: {
      ODE_ASSIGN_OR_RETURN(NodePtr a, child(0));
      return NodePtr(std::make_unique<BoolNode>(BoolNode::Op::kNot,
                                                std::move(a), nullptr));
    }
    case EventExprKind::kRelative: {
      ODE_ASSIGN_OR_RETURN(NodePtr acc, child(0));
      for (size_t i = 1; i < e.children.size(); ++i) {
        ODE_ASSIGN_OR_RETURN(NodePtr next, child(i));
        acc = std::make_unique<RelativeNode>(std::move(acc), std::move(next));
      }
      return acc;
    }
    case EventExprKind::kRelativePlus: {
      ODE_ASSIGN_OR_RETURN(NodePtr a, child(0));
      return NodePtr(std::make_unique<ChainNode>(std::move(a), 1));
    }
    case EventExprKind::kRelativeN: {
      ODE_ASSIGN_OR_RETURN(NodePtr a, child(0));
      return NodePtr(std::make_unique<ChainNode>(std::move(a), e.n));
    }
    case EventExprKind::kPrior: {
      ODE_ASSIGN_OR_RETURN(NodePtr acc, child(0));
      for (size_t i = 1; i < e.children.size(); ++i) {
        ODE_ASSIGN_OR_RETURN(NodePtr next, child(i));
        acc = std::make_unique<PriorNode>(std::move(acc), std::move(next));
      }
      return acc;
    }
    case EventExprKind::kPriorN: {
      ODE_ASSIGN_OR_RETURN(NodePtr a, child(0));
      return NodePtr(std::make_unique<CounterNode>(
          CounterNode::Mode::kAtLeast, e.n, std::move(a)));
    }
    case EventExprKind::kSequence: {
      ODE_ASSIGN_OR_RETURN(NodePtr acc, child(0));
      for (size_t i = 1; i < e.children.size(); ++i) {
        ODE_ASSIGN_OR_RETURN(NodePtr next, child(i));
        acc = std::make_unique<SequenceNode>(std::move(acc), std::move(next));
      }
      return acc;
    }
    case EventExprKind::kSequenceN: {
      ODE_ASSIGN_OR_RETURN(NodePtr acc, child(0));
      for (int64_t i = 1; i < e.n; ++i) {
        ODE_ASSIGN_OR_RETURN(NodePtr next, child(0));
        acc = std::make_unique<SequenceNode>(std::move(acc), std::move(next));
      }
      return acc;
    }
    case EventExprKind::kChoose:
    case EventExprKind::kEvery: {
      ODE_ASSIGN_OR_RETURN(NodePtr a, child(0));
      return NodePtr(std::make_unique<CounterNode>(
          e.kind == EventExprKind::kChoose ? CounterNode::Mode::kExactly
                                           : CounterNode::Mode::kModulo,
          e.n, std::move(a)));
    }
    case EventExprKind::kFa:
    case EventExprKind::kFaAbs: {
      ODE_ASSIGN_OR_RETURN(NodePtr ev, child(0));
      ODE_ASSIGN_OR_RETURN(NodePtr f, child(1));
      ODE_ASSIGN_OR_RETURN(NodePtr g, child(2));
      return NodePtr(std::make_unique<FaNode>(
          std::move(ev), std::move(f), std::move(g),
          e.kind == EventExprKind::kFaAbs));
    }
    case EventExprKind::kMasked:
      return Status::Unimplemented(
          "the tree baseline does not evaluate composite masks");
    case EventExprKind::kGateAtom:
      return Status::Unimplemented(
          "the tree baseline does not support compiled gate atoms");
  }
  return Status::Internal("unhandled expression kind");
}

}  // namespace
}  // namespace internal

TreeDetector::TreeDetector(std::unique_ptr<internal::TreeNode> root,
                           Options options)
    : root_(std::move(root)), options_(options) {}

TreeDetector::~TreeDetector() = default;
TreeDetector::TreeDetector(TreeDetector&&) noexcept = default;
TreeDetector& TreeDetector::operator=(TreeDetector&&) noexcept = default;

Result<std::unique_ptr<TreeDetector>> TreeDetector::Create(
    EventExprPtr expr, const Alphabet* alphabet) {
  return Create(std::move(expr), alphabet, Options());
}

Result<std::unique_ptr<TreeDetector>> TreeDetector::Create(
    EventExprPtr expr, const Alphabet* alphabet, Options options) {
  // Root composite masks are stripped, matching the engine's treatment.
  while (expr != nullptr && expr->kind == EventExprKind::kMasked) {
    expr = expr->children[0];
  }
  if (expr == nullptr) return Status::InvalidArgument("null expression");
  Result<internal::NodePtr> root = internal::BuildNode(*expr, *alphabet);
  if (!root.ok()) return root.status();
  return std::unique_ptr<TreeDetector>(
      new TreeDetector(std::move(*root), options));
}

Result<bool> TreeDetector::Advance(SymbolId sym) {
  bool occurred = root_->Advance(sym);
  if (root_->CountInstances() > options_.max_instances) {
    return Status::ResourceExhausted(StrFormat(
        "tree detector exceeded %zu live instances (the §5 automata avoid "
        "exactly this growth)",
        options_.max_instances));
  }
  return occurred;
}

size_t TreeDetector::NumInstances() const { return root_->CountInstances(); }

void TreeDetector::Reset() { root_->Reset(); }

}  // namespace ode
