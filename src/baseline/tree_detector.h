#ifndef ODE_BASELINE_TREE_DETECTOR_H_
#define ODE_BASELINE_TREE_DETECTOR_H_

#include <memory>

#include "common/result.h"
#include "compile/alphabet.h"
#include "lang/event_ast.h"

namespace ode {

namespace internal {
class TreeNode;
}  // namespace internal

/// An incremental operator-tree detector in the style of Snoop
/// (Chakravarthy & Mishra, the paper's reference [5]): each operator node
/// keeps partial-match state and suffix-scoped operators (`relative`, `fa`,
/// ...) spawn a fresh sub-detector *instance* per occurrence of their left
/// argument.
///
/// This is the natural alternative to the §5 automata, and its cost model
/// is the point of the comparison: live instances accumulate with the
/// number of initiator occurrences, so per-event work and per-object state
/// grow with the history, where the DFA needs one transition and one
/// integer. bench_detection measures both.
class TreeDetector {
 public:
  struct Options {
    /// Safety valve: Advance fails with kResourceExhausted beyond this many
    /// live instances (the unbounded growth is real; benches cap runs).
    size_t max_instances = 1 << 20;
  };

  /// Builds the operator tree. Composite masks and gate atoms are not
  /// supported (the baseline operates on the symbol stream).
  static Result<std::unique_ptr<TreeDetector>> Create(
      EventExprPtr expr, const Alphabet* alphabet, Options options);
  static Result<std::unique_ptr<TreeDetector>> Create(
      EventExprPtr expr, const Alphabet* alphabet);

  ~TreeDetector();
  TreeDetector(TreeDetector&&) noexcept;
  TreeDetector& operator=(TreeDetector&&) noexcept;

  /// Consumes the next symbol; true iff the event occurs at this point.
  Result<bool> Advance(SymbolId sym);

  /// Total live operator/instance nodes — the detector's state footprint.
  size_t NumInstances() const;

  void Reset();

 private:
  explicit TreeDetector(std::unique_ptr<internal::TreeNode> root,
                        Options options);

  std::unique_ptr<internal::TreeNode> root_;
  Options options_;
};

}  // namespace ode

#endif  // ODE_BASELINE_TREE_DETECTOR_H_
