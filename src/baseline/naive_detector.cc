// NaiveDetector is header-only; this translation unit exists so the target
// layout mirrors one module per detector.
#include "baseline/naive_detector.h"
