#ifndef ODE_BASELINE_NAIVE_DETECTOR_H_
#define ODE_BASELINE_NAIVE_DETECTOR_H_

#include <vector>

#include "common/result.h"
#include "semantics/oracle.h"

namespace ode {

/// The strawman the §5 automaton implementation replaces: keep the whole
/// event history and re-evaluate the §4 denotational semantics from scratch
/// every time a logical event is posted. Detection cost per event grows
/// with history length (quadratic overall); per-object storage grows
/// without bound. bench_detection contrasts this with the DFA's O(1) step
/// and one-word state.
class NaiveDetector {
 public:
  NaiveDetector(EventExprPtr expr, const Alphabet* alphabet)
      : oracle_(std::move(expr), alphabet) {}

  /// Appends the next symbol and reports whether the event occurs at this
  /// point (full re-evaluation).
  Result<bool> Advance(SymbolId sym) {
    history_.push_back(sym);
    return oracle_.OccursAtEnd(history_);
  }

  void Reset() { history_.clear(); }
  size_t history_size() const { return history_.size(); }

 private:
  Oracle oracle_;
  std::vector<SymbolId> history_;
};

}  // namespace ode

#endif  // ODE_BASELINE_NAIVE_DETECTOR_H_
