#include "txn/lock_manager.h"

#include "common/strutil.h"

namespace ode {

Status LockManager::Acquire(TxnId txn, Oid oid, LockMode mode) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = table_[oid];

  auto self = entry.holders.find(txn);
  if (self != entry.holders.end()) {
    if (self->second == LockMode::kExclusive || mode == LockMode::kShared) {
      return Status::OK();  // Re-entrant.
    }
    // Upgrade S -> X: legal only if we are the sole holder.
    if (entry.holders.size() == 1) {
      self->second = LockMode::kExclusive;
      waits_for_.erase(txn);
      return Status::OK();
    }
  }

  // Conflict check against other holders.
  std::set<TxnId> conflicting;
  for (const auto& [holder, held_mode] : entry.holders) {
    if (holder == txn) continue;
    if (mode == LockMode::kExclusive || held_mode == LockMode::kExclusive) {
      conflicting.insert(holder);
    }
  }
  if (conflicting.empty()) {
    auto [it, inserted] = entry.holders.emplace(txn, mode);
    if (!inserted && mode == LockMode::kExclusive) {
      it->second = LockMode::kExclusive;
    }
    waits_for_.erase(txn);
    return Status::OK();
  }

  if (WouldDeadlock(txn, conflicting)) {
    ++deadlocks_;
    waits_for_.erase(txn);
    return Status::Deadlock(StrFormat(
        "txn %llu waiting for object @%llu would deadlock",
        static_cast<unsigned long long>(txn),
        static_cast<unsigned long long>(oid.id)));
  }
  waits_for_[txn] = conflicting;
  return Status::WouldBlock(StrFormat(
      "object @%llu locked by a conflicting transaction",
      static_cast<unsigned long long>(oid.id)));
}

bool LockManager::WouldDeadlock(TxnId waiter,
                                const std::set<TxnId>& holders) const {
  // DFS from each holder through existing wait edges looking for `waiter`.
  std::vector<TxnId> stack(holders.begin(), holders.end());
  std::set<TxnId> seen(holders.begin(), holders.end());
  while (!stack.empty()) {
    TxnId cur = stack.back();
    stack.pop_back();
    if (cur == waiter) return true;
    auto it = waits_for_.find(cur);
    if (it == waits_for_.end()) continue;
    for (TxnId next : it->second) {
      if (seen.insert(next).second) stack.push_back(next);
    }
  }
  return false;
}

void LockManager::Release(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = table_.begin(); it != table_.end();) {
    it->second.holders.erase(txn);
    if (it->second.holders.empty()) {
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
  waits_for_.erase(txn);
  // Drop wait edges pointing at the released transaction.
  for (auto& [waiter, holders] : waits_for_) {
    holders.erase(txn);
  }
}

void LockManager::Release(TxnId txn, Oid oid) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_.find(oid);
  if (it == table_.end()) return;
  it->second.holders.erase(txn);
  if (it->second.holders.empty()) table_.erase(it);
}

bool LockManager::Holds(TxnId txn, Oid oid, LockMode mode) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_.find(oid);
  if (it == table_.end()) return false;
  auto holder = it->second.holders.find(txn);
  if (holder == it->second.holders.end()) return false;
  return mode == LockMode::kShared ||
         holder->second == LockMode::kExclusive;
}

std::vector<TxnId> LockManager::HoldersOf(Oid oid) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TxnId> out;
  auto it = table_.find(oid);
  if (it == table_.end()) return out;
  out.reserve(it->second.holders.size());
  for (const auto& [txn, mode] : it->second.holders) out.push_back(txn);
  return out;
}

std::vector<Oid> LockManager::ObjectsLockedBy(TxnId txn) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Oid> out;
  for (const auto& [oid, entry] : table_) {
    if (entry.holders.count(txn) > 0) out.push_back(oid);
  }
  return out;
}

}  // namespace ode
