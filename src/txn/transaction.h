#ifndef ODE_TXN_TRANSACTION_H_
#define ODE_TXN_TRANSACTION_H_

#include <atomic>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "event/posted_event.h"
#include "ode/object.h"

namespace ode {

enum class TxnState : uint8_t { kActive = 0, kCommitted, kAborted };

std::string_view TxnStateName(TxnState state);

/// One reversible effect of a transaction. Applied in reverse order on
/// abort (Database::Abort), giving the paper's atomicity: "either the
/// transaction commits and all its effects are reflected in the database or
/// it aborted and none of its effects are in the database" (§6).
struct UndoEntry {
  enum class Kind : uint8_t {
    kAttr,          ///< Restore attrs[attr] = old_value.
    kTriggerState,  ///< Restore a committed-view trigger's automaton state.
    kTriggerActive, ///< Restore a trigger slot's active flag.
    kCreate,        ///< Remove the created object.
    kDelete,        ///< Re-insert the deleted object (full snapshot).
  };

  Kind kind = Kind::kAttr;
  Oid oid;
  std::string attr;            // kAttr.
  Value old_value;             // kAttr.
  int trigger_idx = -1;        // kTriggerState / kTriggerActive.
  int32_t old_state = 0;       // kTriggerState.
  std::vector<int32_t> old_gate_states;  // kTriggerState.
  bool old_active = false;     // kTriggerActive.
  std::optional<Object> deleted_object;  // kDelete.
};

/// Bookkeeping for one transaction. Lifecycle (begin / tcomplete fixpoint /
/// commit / abort) is orchestrated by Database; this is the record.
///
/// Thread model: every field is owned by the thread running the transaction,
/// except `state_`, which other threads read when checking commit
/// dependencies — hence the atomic.
class Transaction {
 public:
  Transaction(TxnId id, bool is_system) : id_(id), system_(is_system) {}

  TxnId id() const { return id_; }
  bool is_system() const { return system_; }
  TxnState state() const { return state_.load(std::memory_order_acquire); }
  void set_state(TxnState s) { state_.store(s, std::memory_order_release); }

  /// Set while the abort sequence runs: `before tabort` actions still see
  /// an active transaction (their writes are undo-logged and then rolled
  /// back), but nested abort requests become no-ops.
  bool aborting() const { return aborting_; }
  void set_aborting(bool v) { aborting_ = v; }

  /// Objects accessed by this transaction in first-access order — the set
  /// to which transaction events are posted (§3.1: "events of interest to
  /// exactly the set of objects accessed by the transaction").
  const std::vector<Oid>& accessed() const { return accessed_; }
  /// Returns true on the first access (the caller then posts
  /// `after tbegin` to the object, §3.1).
  bool RecordAccess(Oid oid);

  void PushUndo(UndoEntry entry) { undo_log_.push_back(std::move(entry)); }
  const std::vector<UndoEntry>& undo_log() const { return undo_log_; }
  std::vector<UndoEntry> TakeUndoLog() { return std::move(undo_log_); }

  /// Commit dependencies (§7 "separate dependent" coupling): this
  /// transaction may not commit until every listed transaction has
  /// committed; if any of them aborts, this one must abort too.
  void AddCommitDependency(TxnId other) { commit_deps_.insert(other); }
  const std::set<TxnId>& commit_deps() const { return commit_deps_; }

 private:
  TxnId id_;
  bool system_;
  std::atomic<TxnState> state_{TxnState::kActive};
  bool aborting_ = false;
  std::vector<Oid> accessed_;
  std::set<Oid> accessed_set_;
  std::vector<UndoEntry> undo_log_;
  std::set<TxnId> commit_deps_;
};

/// Allocates transaction ids and stores live/finished transactions.
///
/// Thread-safe: shard workers begin/commit transactions concurrently. The
/// mutex guards id allocation and the `live_` map structure; returned
/// Transaction pointers stay valid (std::map nodes are stable) and are
/// owned by the beginning thread until GarbageCollect.
class TxnManager {
 public:
  Transaction* Begin(bool is_system = false);
  Transaction* Get(TxnId id);
  const Transaction* Get(TxnId id) const;

  /// Fails unless the transaction exists and is active.
  Result<Transaction*> GetActive(TxnId id);

  size_t num_begun() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_ - 1;
  }
  size_t num_committed() const {
    return committed_.load(std::memory_order_relaxed);
  }
  size_t num_aborted() const {
    return aborted_.load(std::memory_order_relaxed);
  }
  void CountCommit() { committed_.fetch_add(1, std::memory_order_relaxed); }
  void CountAbort() { aborted_.fetch_add(1, std::memory_order_relaxed); }

  /// Drops finished transactions' records (tests keep them around for
  /// inspection; long benches call this to bound memory). Callers must not
  /// hold pointers to finished transactions across this call.
  void GarbageCollect();

 private:
  mutable std::mutex mu_;
  TxnId next_ = 1;
  std::map<TxnId, Transaction> live_;
  std::atomic<size_t> committed_{0};
  std::atomic<size_t> aborted_{0};
};

}  // namespace ode

#endif  // ODE_TXN_TRANSACTION_H_
