#ifndef ODE_TXN_LOCK_MANAGER_H_
#define ODE_TXN_LOCK_MANAGER_H_

#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "event/posted_event.h"

namespace ode {

/// Lock modes: shared (read) and exclusive (update).
enum class LockMode : uint8_t { kShared = 0, kExclusive };

/// Object-level strict two-phase locking with wait-for-graph deadlock
/// detection — the concurrency substrate §6 assumes ("assuming object
/// level locking"). Locks are held until Release(txn) at commit/abort.
///
/// The engine is cooperatively scheduled: a conflicting Acquire returns
/// kWouldBlock (the caller may retry after the holder finishes) or
/// kDeadlock when waiting would close a cycle in the wait-for graph; the
/// caller is expected to abort the transaction in that case.
///
/// Thread-safe: shard workers acquire/release concurrently; one mutex
/// guards the lock table and wait-for graph (critical sections are map
/// operations, never user code).
class LockManager {
 public:
  /// Acquires (or upgrades) a lock. Outcomes:
  ///  * OK           — granted (re-entrant, upgrade included).
  ///  * kWouldBlock  — conflict; a wait edge has been recorded.
  ///  * kDeadlock    — waiting would deadlock; no wait edge remains.
  Status Acquire(TxnId txn, Oid oid, LockMode mode);

  /// Releases all locks held by `txn` and removes its wait edges.
  void Release(TxnId txn);

  /// Releases only `txn`'s lock on `oid` (commit/abort epilogues post to
  /// one object at a time and drop each lock before moving on). Wait edges
  /// recorded against `txn` are left for the waiters' next Acquire.
  void Release(TxnId txn, Oid oid);

  /// True if `txn` holds a lock on `oid` at least as strong as `mode`.
  bool Holds(TxnId txn, Oid oid, LockMode mode) const;

  /// Transactions currently holding any lock on `oid`.
  std::vector<TxnId> HoldersOf(Oid oid) const;

  /// Objects locked by `txn`.
  std::vector<Oid> ObjectsLockedBy(TxnId txn) const;

  /// Diagnostic counters.
  size_t num_locked_objects() const {
    std::lock_guard<std::mutex> lock(mu_);
    return table_.size();
  }
  size_t deadlocks_detected() const {
    std::lock_guard<std::mutex> lock(mu_);
    return deadlocks_;
  }

 private:
  struct Entry {
    std::map<TxnId, LockMode> holders;
  };

  /// DFS over the wait-for graph: would txn waiting on `holders` create a
  /// cycle back to txn?
  bool WouldDeadlock(TxnId waiter, const std::set<TxnId>& holders) const;

  mutable std::mutex mu_;
  std::map<Oid, Entry> table_;
  std::map<TxnId, std::set<TxnId>> waits_for_;
  size_t deadlocks_ = 0;
};

}  // namespace ode

#endif  // ODE_TXN_LOCK_MANAGER_H_
