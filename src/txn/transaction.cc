#include "txn/transaction.h"

#include "common/strutil.h"

namespace ode {

std::string_view TxnStateName(TxnState state) {
  switch (state) {
    case TxnState::kActive: return "active";
    case TxnState::kCommitted: return "committed";
    case TxnState::kAborted: return "aborted";
  }
  return "?";
}

bool Transaction::RecordAccess(Oid oid) {
  if (!accessed_set_.insert(oid).second) return false;
  accessed_.push_back(oid);
  return true;
}

Transaction* TxnManager::Begin(bool is_system) {
  std::lock_guard<std::mutex> lock(mu_);
  TxnId id = next_++;
  auto [it, inserted] = live_.try_emplace(id, id, is_system);
  return &it->second;
}

Transaction* TxnManager::Get(TxnId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(id);
  return it == live_.end() ? nullptr : &it->second;
}

const Transaction* TxnManager::Get(TxnId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(id);
  return it == live_.end() ? nullptr : &it->second;
}

Result<Transaction*> TxnManager::GetActive(TxnId id) {
  Transaction* txn = Get(id);
  if (txn == nullptr) {
    return Status::NotFound(
        StrFormat("unknown transaction %llu",
                  static_cast<unsigned long long>(id)));
  }
  if (txn->state() != TxnState::kActive) {
    return Status::FailedPrecondition(
        StrFormat("transaction %llu is %s",
                  static_cast<unsigned long long>(id),
                  std::string(TxnStateName(txn->state())).c_str()));
  }
  return txn;
}

void TxnManager::GarbageCollect() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = live_.begin(); it != live_.end();) {
    if (it->second.state() != TxnState::kActive) {
      it = live_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace ode
