#ifndef ODE_COMMON_SOURCE_SPAN_H_
#define ODE_COMMON_SOURCE_SPAN_H_

#include <cstddef>

namespace ode {

/// A half-open byte range [begin, end) into the DSL source text a node was
/// parsed from. Spans survive into the AST so the analyzer (src/analyze/)
/// can point diagnostics at the offending subexpression; nodes synthesized
/// after parsing (desugaring, the §5 disjointness rewrite) carry the empty
/// span and callers fall back to an enclosing node's span.
struct SourceSpan {
  size_t begin = 0;
  size_t end = 0;

  bool empty() const { return end <= begin; }
  size_t size() const { return empty() ? 0 : end - begin; }

  /// Smallest span covering both operands (an empty operand is ignored).
  static SourceSpan Union(SourceSpan a, SourceSpan b) {
    if (a.empty()) return b;
    if (b.empty()) return a;
    return SourceSpan{a.begin < b.begin ? a.begin : b.begin,
                      a.end > b.end ? a.end : b.end};
  }

  bool operator==(const SourceSpan&) const = default;
};

/// 1-based line/column position of a byte offset within a source text.
struct LineCol {
  int line = 1;
  int col = 1;
};

}  // namespace ode

#endif  // ODE_COMMON_SOURCE_SPAN_H_
