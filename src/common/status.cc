#include "common/status.h"

namespace ode {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kDeadlock:
      return "Deadlock";
    case StatusCode::kWouldBlock:
      return "WouldBlock";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kShutdown:
      return "Shutdown";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace ode
