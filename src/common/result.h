#ifndef ODE_COMMON_RESULT_H_
#define ODE_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace ode {

/// Holds either a value of type T or an error Status (never both).
/// Analogous to arrow::Result / absl::StatusOr.
///
///   Result<int> r = Parse(s);
///   if (!r.ok()) return r.status();
///   Use(r.value());
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (error).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }

  /// The error status; Status::OK() if this holds a value.
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ engaged.
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a Result<T>); on error returns the status, otherwise
/// assigns the value to `lhs`, which may be a declaration
/// (`ODE_ASSIGN_OR_RETURN(auto v, F())`). Expands to multiple statements so
/// the declaration stays in the enclosing scope; do not use unbraced after
/// `if`.
#define ODE_MACRO_CONCAT_INNER(x, y) x##y
#define ODE_MACRO_CONCAT(x, y) ODE_MACRO_CONCAT_INNER(x, y)
#define ODE_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  auto ODE_MACRO_CONCAT(_ode_result_, __LINE__) = (rexpr);        \
  if (!ODE_MACRO_CONCAT(_ode_result_, __LINE__).ok()) {           \
    return ODE_MACRO_CONCAT(_ode_result_, __LINE__).status();     \
  }                                                               \
  lhs = std::move(ODE_MACRO_CONCAT(_ode_result_, __LINE__)).value()

}  // namespace ode

#endif  // ODE_COMMON_RESULT_H_
