#ifndef ODE_COMMON_STRUTIL_H_
#define ODE_COMMON_STRUTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ode {

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on character `sep`; empty fields preserved.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// 64-bit FNV-1a hash; stable across runs (used by persistence checksums).
uint64_t Fnv1a64(std::string_view s);

}  // namespace ode

#endif  // ODE_COMMON_STRUTIL_H_
