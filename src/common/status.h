#ifndef ODE_COMMON_STATUS_H_
#define ODE_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

namespace ode {

/// Error codes used across the library. The library does not throw
/// exceptions; every fallible operation returns a Status or a Result<T>.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,   ///< Malformed input (bad expression, bad value, ...).
  kParseError,        ///< The event/mask DSL failed to parse.
  kNotFound,          ///< Named entity (class, method, object, ...) missing.
  kAlreadyExists,     ///< Duplicate registration.
  kFailedPrecondition,///< Operation not legal in current state.
  kOutOfRange,        ///< Index/count out of bounds.
  kUnimplemented,     ///< Feature intentionally unsupported.
  kInternal,          ///< Invariant violation inside the library.
  kAborted,           ///< Transaction aborted (by user, trigger, or deadlock).
  kDeadlock,          ///< Lock acquisition would deadlock.
  kWouldBlock,        ///< Lock held by another transaction; caller may retry.
  kResourceExhausted, ///< A configured limit (states, alphabet, ...) exceeded.
  kShutdown,          ///< Component stopped; no further work is accepted.
  kUnavailable,       ///< Peer unreachable (connection refused/lost).
};

/// Returns a stable human-readable name for a code, e.g. "InvalidArgument".
std::string_view StatusCodeName(StatusCode code);

/// A lightweight success-or-error value in the style of RocksDB/Arrow.
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Deadlock(std::string msg) {
    return Status(StatusCode::kDeadlock, std::move(msg));
  }
  static Status WouldBlock(std::string msg) {
    return Status(StatusCode::kWouldBlock, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Shutdown(std::string msg) {
    return Status(StatusCode::kShutdown, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK status to the caller.
#define ODE_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::ode::Status _ode_status = (expr);            \
    if (!_ode_status.ok()) return _ode_status;     \
  } while (0)

}  // namespace ode

#endif  // ODE_COMMON_STATUS_H_
