#include "common/value.h"

#include <cmath>

#include "common/strutil.h"

namespace ode {

std::string_view ValueKindName(ValueKind kind) {
  switch (kind) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kInt:
      return "int";
    case ValueKind::kDouble:
      return "double";
    case ValueKind::kBool:
      return "bool";
    case ValueKind::kString:
      return "string";
    case ValueKind::kOid:
      return "oid";
  }
  return "unknown";
}

Result<int64_t> Value::AsInt() const {
  if (kind() != ValueKind::kInt) {
    return Status::InvalidArgument(
        StrFormat("expected int, got %s", std::string(ValueKindName(kind())).c_str()));
  }
  return std::get<int64_t>(rep_);
}

Result<double> Value::AsDouble() const {
  if (kind() == ValueKind::kInt) {
    return static_cast<double>(std::get<int64_t>(rep_));
  }
  if (kind() != ValueKind::kDouble) {
    return Status::InvalidArgument(
        StrFormat("expected double, got %s", std::string(ValueKindName(kind())).c_str()));
  }
  return std::get<double>(rep_);
}

Result<bool> Value::AsBool() const {
  if (kind() != ValueKind::kBool) {
    return Status::InvalidArgument(
        StrFormat("expected bool, got %s", std::string(ValueKindName(kind())).c_str()));
  }
  return std::get<bool>(rep_);
}

Result<std::string> Value::AsString() const {
  if (kind() != ValueKind::kString) {
    return Status::InvalidArgument(
        StrFormat("expected string, got %s", std::string(ValueKindName(kind())).c_str()));
  }
  return std::get<std::string>(rep_);
}

Result<Oid> Value::AsOid() const {
  if (kind() != ValueKind::kOid) {
    return Status::InvalidArgument(
        StrFormat("expected oid, got %s", std::string(ValueKindName(kind())).c_str()));
  }
  return std::get<Oid>(rep_);
}

bool Value::Truthy() const {
  switch (kind()) {
    case ValueKind::kNull:
      return false;
    case ValueKind::kInt:
      return std::get<int64_t>(rep_) != 0;
    case ValueKind::kDouble:
      return std::get<double>(rep_) != 0.0;
    case ValueKind::kBool:
      return std::get<bool>(rep_);
    case ValueKind::kString:
      return !std::get<std::string>(rep_).empty();
    case ValueKind::kOid:
      return !std::get<Oid>(rep_).IsNull();
  }
  return false;
}

bool Value::Equals(const Value& other) const {
  if (IsNumeric() && other.IsNumeric()) {
    return AsDouble().value() == other.AsDouble().value();
  }
  return rep_ == other.rep_;
}

Result<int> Value::Compare(const Value& other) const {
  if (IsNumeric() && other.IsNumeric()) {
    double a = AsDouble().value();
    double b = other.AsDouble().value();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (kind() != other.kind()) {
    return Status::InvalidArgument(
        StrFormat("cannot compare %s with %s",
                  std::string(ValueKindName(kind())).c_str(),
                  std::string(ValueKindName(other.kind())).c_str()));
  }
  switch (kind()) {
    case ValueKind::kBool: {
      int a = std::get<bool>(rep_) ? 1 : 0;
      int b = std::get<bool>(other.rep_) ? 1 : 0;
      return a - b;
    }
    case ValueKind::kString: {
      int c = std::get<std::string>(rep_).compare(std::get<std::string>(other.rep_));
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case ValueKind::kOid: {
      uint64_t a = std::get<Oid>(rep_).id;
      uint64_t b = std::get<Oid>(other.rep_).id;
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case ValueKind::kNull:
      return 0;
    default:
      return Status::InvalidArgument("unsupported comparison");
  }
}

namespace {

Status NonNumeric(const char* op, const Value& a, const Value& b) {
  return Status::InvalidArgument(
      StrFormat("operator %s requires numeric operands, got %s and %s", op,
                std::string(ValueKindName(a.kind())).c_str(),
                std::string(ValueKindName(b.kind())).c_str()));
}

}  // namespace

Result<Value> Value::Add(const Value& other) const {
  if (kind() == ValueKind::kString && other.kind() == ValueKind::kString) {
    return Value(AsString().value() + other.AsString().value());
  }
  if (!IsNumeric() || !other.IsNumeric()) return NonNumeric("+", *this, other);
  if (kind() == ValueKind::kInt && other.kind() == ValueKind::kInt) {
    return Value(AsInt().value() + other.AsInt().value());
  }
  return Value(AsDouble().value() + other.AsDouble().value());
}

Result<Value> Value::Sub(const Value& other) const {
  if (!IsNumeric() || !other.IsNumeric()) return NonNumeric("-", *this, other);
  if (kind() == ValueKind::kInt && other.kind() == ValueKind::kInt) {
    return Value(AsInt().value() - other.AsInt().value());
  }
  return Value(AsDouble().value() - other.AsDouble().value());
}

Result<Value> Value::Mul(const Value& other) const {
  if (!IsNumeric() || !other.IsNumeric()) return NonNumeric("*", *this, other);
  if (kind() == ValueKind::kInt && other.kind() == ValueKind::kInt) {
    return Value(AsInt().value() * other.AsInt().value());
  }
  return Value(AsDouble().value() * other.AsDouble().value());
}

Result<Value> Value::Div(const Value& other) const {
  if (!IsNumeric() || !other.IsNumeric()) return NonNumeric("/", *this, other);
  if (kind() == ValueKind::kInt && other.kind() == ValueKind::kInt) {
    int64_t d = other.AsInt().value();
    if (d == 0) return Status::InvalidArgument("integer division by zero");
    return Value(AsInt().value() / d);
  }
  double d = other.AsDouble().value();
  if (d == 0.0) return Status::InvalidArgument("division by zero");
  return Value(AsDouble().value() / d);
}

Result<Value> Value::Mod(const Value& other) const {
  if (kind() != ValueKind::kInt || other.kind() != ValueKind::kInt) {
    return Status::InvalidArgument("operator % requires integer operands");
  }
  int64_t d = other.AsInt().value();
  if (d == 0) return Status::InvalidArgument("modulo by zero");
  return Value(AsInt().value() % d);
}

Result<Value> Value::Neg() const {
  if (kind() == ValueKind::kInt) return Value(-AsInt().value());
  if (kind() == ValueKind::kDouble) return Value(-AsDouble().value());
  return Status::InvalidArgument(
      StrFormat("unary - requires a numeric operand, got %s",
                std::string(ValueKindName(kind())).c_str()));
}

std::string Value::ToString() const {
  switch (kind()) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kInt:
      return StrFormat("%lld", static_cast<long long>(std::get<int64_t>(rep_)));
    case ValueKind::kDouble: {
      double d = std::get<double>(rep_);
      if (d == std::floor(d) && std::abs(d) < 1e15) {
        return StrFormat("%.1f", d);
      }
      return StrFormat("%g", d);
    }
    case ValueKind::kBool:
      return std::get<bool>(rep_) ? "true" : "false";
    case ValueKind::kString:
      return "\"" + std::get<std::string>(rep_) + "\"";
    case ValueKind::kOid:
      return StrFormat("@%llu",
                       static_cast<unsigned long long>(std::get<Oid>(rep_).id));
  }
  return "?";
}

}  // namespace ode
