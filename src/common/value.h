#ifndef ODE_COMMON_VALUE_H_
#define ODE_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.h"
#include "common/status.h"

namespace ode {

/// Identity of a persistent object (the paper's "object identity", §2).
/// Oid 0 is reserved as the null reference.
struct Oid {
  uint64_t id = 0;

  bool IsNull() const { return id == 0; }
  bool operator==(const Oid&) const = default;
  auto operator<=>(const Oid&) const = default;
};

/// The null object reference.
inline constexpr Oid kNullOid{0};

/// Runtime type tag of a Value.
enum class ValueKind : uint8_t {
  kNull = 0,
  kInt,
  kDouble,
  kBool,
  kString,
  kOid,
};

std::string_view ValueKindName(ValueKind kind);

/// Dynamically-typed value used for object attributes, method/event
/// parameters, and mask-expression evaluation.
///
/// Numeric operations promote kInt to kDouble when the operands mix.
/// Comparisons between incomparable kinds return an error Status rather
/// than an arbitrary ordering.
class Value {
 public:
  /// Null value.
  Value() : rep_(std::monostate{}) {}
  Value(int64_t v) : rep_(v) {}          // NOLINT(runtime/explicit)
  Value(int v) : rep_(int64_t{v}) {}     // NOLINT(runtime/explicit)
  Value(double v) : rep_(v) {}           // NOLINT(runtime/explicit)
  Value(bool v) : rep_(v) {}             // NOLINT(runtime/explicit)
  Value(std::string v) : rep_(std::move(v)) {}  // NOLINT(runtime/explicit)
  Value(const char* v) : rep_(std::string(v)) {}  // NOLINT(runtime/explicit)
  Value(Oid v) : rep_(v) {}              // NOLINT(runtime/explicit)

  Value(const Value&) = default;
  Value& operator=(const Value&) = default;
  Value(Value&&) = default;
  Value& operator=(Value&&) = default;

  ValueKind kind() const {
    return static_cast<ValueKind>(rep_.index());
  }
  bool is_null() const { return kind() == ValueKind::kNull; }

  /// Strict accessors: error if the value holds a different kind.
  Result<int64_t> AsInt() const;
  Result<double> AsDouble() const;  ///< Accepts kInt (promoted) and kDouble.
  Result<bool> AsBool() const;
  Result<std::string> AsString() const;
  Result<Oid> AsOid() const;

  /// True if the value is numeric (kInt or kDouble).
  bool IsNumeric() const {
    return kind() == ValueKind::kInt || kind() == ValueKind::kDouble;
  }

  /// Truthiness used by mask evaluation: bool as-is; numeric != 0;
  /// string non-empty; Oid non-null; null -> false.
  bool Truthy() const;

  /// Deep structural equality (kInt 1 != kDouble 1.0 unless both numeric:
  /// numeric values compare by promoted double).
  bool Equals(const Value& other) const;

  /// Three-way comparison. Errors when kinds are incomparable
  /// (e.g. string vs int). Returns -1, 0, or +1.
  Result<int> Compare(const Value& other) const;

  /// Arithmetic with numeric promotion; errors on non-numeric operands
  /// except operator+ which concatenates two strings.
  Result<Value> Add(const Value& other) const;
  Result<Value> Sub(const Value& other) const;
  Result<Value> Mul(const Value& other) const;
  Result<Value> Div(const Value& other) const;  ///< Errors on divide-by-zero.
  Result<Value> Mod(const Value& other) const;  ///< Integers only.
  Result<Value> Neg() const;

  /// Display form: null, 42, 3.5, true, "text", @17 (oid).
  std::string ToString() const;

  bool operator==(const Value& other) const { return Equals(other); }

 private:
  std::variant<std::monostate, int64_t, double, bool, std::string, Oid> rep_;
};

}  // namespace ode

#endif  // ODE_COMMON_VALUE_H_
