#ifndef ODE_SEQ_SEQUENCER_H_
#define ODE_SEQ_SEQUENCER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "seq/order_log.h"
#include "seq/seq_event.h"
#include "seq/seq_queue.h"
#include "seq/sequencer_metrics.h"

namespace ode {

class Database;

namespace seq {

/// Publisher lane bound to the calling thread (shard workers call
/// SetThreadPublisherLane(shard_index) once at startup). Threads that never
/// register publish on the sequencer's last, mutex-serialized "external"
/// lane. -1 = unregistered.
void SetThreadPublisherLane(int32_t lane);
int32_t ThreadPublisherLane();

/// True on the sequencer's merge thread (and inside ApplyRecovered).
/// TriggerEngine::Post uses this to apply action-cascade events inline —
/// a cascaded event is a synchronous child of the firing event, so its
/// correct position in the total order IS the firing point, not the back
/// of the queue.
bool OnSequencerThread();

/// The §9 class-scope event sequencer: a dedicated pipeline stage that
/// merges every shard's class-scope postings into ONE deterministic total
/// order and advances/fires the shared class automata from a single
/// thread, replacing the old advance-inline-under-class_post_mu_ scheme.
///
/// Ordering contract (docs/SEQUENCER.md): per-lane FIFO (a lane is one
/// shard worker, plus one external lane); events drained in one batch are
/// merged in ascending (lane, lane_seq); the resulting apply order is THE
/// authoritative order — it is what the order log records and what crash
/// recovery reproduces. Watermarks (highest lane_seq applied per lane) are
/// monotone.
class Sequencer {
 public:
  /// What Publish does when the queue is full. kBlock bounds memory and
  /// throttles shards to the merge rate; kDropNewest sheds the publish
  /// (counted) — acceptable only when class triggers are advisory.
  enum class OverflowPolicy { kBlock, kDropNewest };

  struct Options {
    size_t queue_capacity = 4096;
    /// Shard lanes [0, num_lanes-2] plus the external lane (num_lanes-1).
    uint32_t num_lanes = 2;
    OverflowPolicy overflow = OverflowPolicy::kBlock;
    /// Bounded wait for the posting object's lock in the firing phase:
    /// retry_limit attempts x retry_sleep_us, then fire without the lock
    /// (same discipline as Database::AcquireEpilogueLock).
    int lock_retry_limit = 1000;
    int lock_retry_sleep_us = 50;
    /// Optional durable order log (owned by the caller, must outlive the
    /// sequencer). Written *behind* each apply.
    OrderLogWriter* order_log = nullptr;
    /// Invoked once, off the hot path, when the order log fails sticky
    /// (the runtime escalates to wal-degraded mode).
    std::function<void(const Status&)> on_log_failure;
  };

  Sequencer(Database* db, Options options);
  ~Sequencer();

  Sequencer(const Sequencer&) = delete;
  Sequencer& operator=(const Sequencer&) = delete;

  /// Spawns the merge thread. Call after recovery (ApplyRecovered /
  /// RestoreLaneCounters) and before the first Publish.
  Status Start();

  /// Closes the queue, applies everything still buffered, joins the merge
  /// thread, and syncs the order log. Idempotent.
  void Stop();

  /// RAII publish-side gate. TriggerEngine holds one across its whole
  /// publish section (slot reads + classification + Publish) so
  /// ExecuteQuiesced can establish a moment where no publisher is touching
  /// class-slot memory. Blocks in the constructor while the gate is closed.
  class PublishScope {
   public:
    explicit PublishScope(Sequencer* s);
    ~PublishScope();

    PublishScope(const PublishScope&) = delete;
    PublishScope& operator=(const PublishScope&) = delete;

   private:
    Sequencer* s_;
  };

  /// Assigns (lane, lane_seq) from the calling thread's lane and enqueues.
  /// Caller must hold a PublishScope. Returns false when the event was
  /// dropped (kDropNewest overflow or sequencer stopped).
  bool Publish(SeqEvent event);

  /// Blocks until every accepted publish has been applied — automaton
  /// steps AND firings, including firings deferred past a quiesce window —
  /// and the queue is empty (the runtime's drain barrier).
  void WaitDrained();

  /// Runs `fn` with publishers gated out and the pipeline fully drained —
  /// the (de)activation barrier: class-slot structure may be mutated inside
  /// `fn` with no publisher or merge-side reader racing. Reentrant-safe
  /// from the sequencer thread itself (an action (de)activating a class
  /// trigger), where the drain wait is skipped — the merge thread is the
  /// caller, so slot memory is already exclusively ours.
  Status ExecuteQuiesced(const std::function<Status()>& fn);

  // --- Crash recovery (all pre-Start) ------------------------------------

  /// Restores per-lane publish counters (and watermark floors) from a
  /// checkpoint: `last_assigned[lane]` is the highest lane_seq handed out
  /// before the checkpoint. Replayed shards then regenerate the same
  /// lane_seq values the original run assigned.
  void RestoreLaneCounters(const std::vector<uint64_t>& last_assigned);

  /// Re-applies one recovered order-log record on the caller thread, in
  /// logged order: advances automata, fires actions, raises the lane
  /// watermark. Does NOT re-append to the order log.
  Status ApplyRecovered(const SeqEvent& event);

  /// Enters replay-dedup mode: published events whose (lane, lane_seq) is
  /// at or below the lane watermark were already applied before the crash
  /// (recovered from the order log) and are dropped, giving exactly-once
  /// re-execution during shard-WAL replay.
  void BeginReplayDedup();
  void FinishReplay();

  /// Current per-lane publish counters (checkpoint capture; call only
  /// while quiesced/drained).
  std::vector<uint64_t> LaneCounters() const;

  SequencerMetricsSnapshot Metrics() const;

  uint32_t num_lanes() const { return options_.num_lanes; }
  uint32_t external_lane() const { return options_.num_lanes - 1; }
  uint64_t firings() const { return firings_.load(std::memory_order_relaxed); }

 private:
  /// A firing postponed past a quiesce window: the automaton step already
  /// latched (progress.advanced), only the action/disarm transaction — the
  /// part that needs the posting object's lock — remains.
  struct DeferredFire {
    SeqEvent event;
    SeqApplyProgress progress;
  };

  void Run();
  /// Applies one merged event with bounded lock retries; updates counters,
  /// watermark, and the order log.
  void ApplyOne(SeqEvent& event);
  /// Runs the firing phase of every deferred event (merge thread, gate
  /// open) and wakes drain waiters.
  void FlushDeferred();
  bool Enqueue(SeqEvent event);
  void NoteConsumed();
  void EnterPublish();
  void ExitPublish();
  bool Drained() const;
  /// Quiescer-side barrier: merge thread idle (consumed == published) but
  /// possibly holding deferred firings — unlike WaitDrained, this cannot
  /// wait for those, because they need the gate the quiescer holds closed.
  void WaitMergeIdle();

  Database* db_;
  Options options_;
  SeqQueue queue_;

  std::thread thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};

  /// Publish gate (quiesce protocol).
  std::mutex gate_mu_;
  std::condition_variable gate_cv_;
  bool gate_closed_ = false;
  int publishing_ = 0;

  /// Per-lane publish counters; shard lanes are single-producer, the
  /// external lane serializes on external_mu_.
  std::vector<std::atomic<uint64_t>> lane_next_;
  std::mutex external_mu_;

  /// Merge-thread-owned backlog carried across drains, and the spill
  /// buffer filled when the queue is drained mid-retry to free blocked
  /// publishers.
  std::vector<SeqEvent> pending_;
  std::vector<SeqEvent> spill_;

  /// Firings deferred while a quiesce is pending (merge-thread-owned);
  /// deferred_count_ is the cross-thread view for the drain barrier.
  std::vector<DeferredFire> deferred_;
  std::atomic<uint64_t> deferred_count_{0};
  /// True between gate close and reopen of a non-merge-thread quiesce:
  /// tells ApplyOne that lock waits cannot succeed (the holders are parked
  /// at the closed gate) and firings must be deferred instead.
  std::atomic<bool> quiescing_{false};

  std::atomic<bool> replay_dedup_{false};
  std::vector<std::atomic<uint64_t>> watermark_;

  std::atomic<uint64_t> published_{0};
  std::atomic<uint64_t> consumed_{0};  ///< sequenced + replay-deduped.
  std::atomic<uint64_t> sequenced_{0};
  std::atomic<uint64_t> firings_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> apply_errors_{0};
  std::atomic<uint64_t> lock_timeouts_{0};
  std::atomic<uint64_t> replay_deduped_{0};
  std::atomic<uint64_t> backlog_{0};  ///< pending_.size(), for metrics.

  std::atomic<bool> log_failed_{false};

  mutable std::mutex drain_mu_;
  std::condition_variable drained_cv_;
};

}  // namespace seq
}  // namespace ode

#endif  // ODE_SEQ_SEQUENCER_H_
