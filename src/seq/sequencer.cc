#include "seq/sequencer.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <thread>
#include <utility>

#include "ode/database.h"

namespace ode {
namespace seq {

namespace {

thread_local int32_t t_publisher_lane = -1;
thread_local bool t_on_sequencer_thread = false;

/// Scoped "this thread is the sequencer" marker (the merge thread for its
/// lifetime, ApplyRecovered for one call).
class SequencerThreadScope {
 public:
  SequencerThreadScope() : prev_(t_on_sequencer_thread) {
    t_on_sequencer_thread = true;
  }
  ~SequencerThreadScope() { t_on_sequencer_thread = prev_; }

 private:
  bool prev_;
};

bool SeqOrder(const SeqEvent& a, const SeqEvent& b) {
  if (a.lane != b.lane) return a.lane < b.lane;
  return a.lane_seq < b.lane_seq;
}

}  // namespace

void SetThreadPublisherLane(int32_t lane) { t_publisher_lane = lane; }
int32_t ThreadPublisherLane() { return t_publisher_lane; }
bool OnSequencerThread() { return t_on_sequencer_thread; }

Sequencer::Sequencer(Database* db, Options options)
    : db_(db),
      options_([&] {
        if (options.num_lanes == 0) options.num_lanes = 1;
        return options;
      }()),
      queue_(options_.queue_capacity),
      lane_next_(options_.num_lanes),
      watermark_(options_.num_lanes) {
  for (auto& n : lane_next_) n.store(0, std::memory_order_relaxed);
  for (auto& w : watermark_) w.store(0, std::memory_order_relaxed);
}

Sequencer::~Sequencer() { Stop(); }

Status Sequencer::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("sequencer already started");
  }
  thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

void Sequencer::Stop() {
  if (stopped_.exchange(true)) return;
  queue_.Close();
  if (thread_.joinable()) thread_.join();
  if (options_.order_log != nullptr && options_.order_log->open()) {
    (void)options_.order_log->Sync();
  }
}

Sequencer::PublishScope::PublishScope(Sequencer* s) : s_(s) {
  if (s_ != nullptr) s_->EnterPublish();
}

Sequencer::PublishScope::~PublishScope() {
  if (s_ != nullptr) s_->ExitPublish();
}

void Sequencer::EnterPublish() {
  std::unique_lock<std::mutex> lock(gate_mu_);
  gate_cv_.wait(lock, [&] { return !gate_closed_; });
  ++publishing_;
}

void Sequencer::ExitPublish() {
  std::lock_guard<std::mutex> lock(gate_mu_);
  if (--publishing_ == 0) gate_cv_.notify_all();
}

bool Sequencer::Publish(SeqEvent event) {
  uint32_t lane = external_lane();
  int32_t registered = t_publisher_lane;
  if (registered >= 0 &&
      static_cast<uint32_t>(registered) < external_lane()) {
    lane = static_cast<uint32_t>(registered);
  }
  event.lane = lane;
  if (lane == external_lane()) {
    // The external lane is shared by every unregistered thread: assigning
    // the sequence number and enqueuing must be one atomic step or two
    // externals could enter the queue in counter-inverted order.
    std::lock_guard<std::mutex> lock(external_mu_);
    event.lane_seq =
        lane_next_[lane].fetch_add(1, std::memory_order_relaxed) + 1;
    return Enqueue(std::move(event));
  }
  // A shard lane has exactly one producer thread: no serialization needed.
  event.lane_seq =
      lane_next_[lane].fetch_add(1, std::memory_order_relaxed) + 1;
  return Enqueue(std::move(event));
}

bool Sequencer::Enqueue(SeqEvent event) {
  SeqQueue::PushResult r = options_.overflow == OverflowPolicy::kDropNewest
                               ? queue_.TryPush(std::move(event))
                               : queue_.Push(std::move(event));
  if (r == SeqQueue::PushResult::kOk) {
    published_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  dropped_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

bool Sequencer::Drained() const {
  return consumed_.load(std::memory_order_acquire) ==
         published_.load(std::memory_order_acquire);
}

void Sequencer::NoteConsumed() {
  consumed_.fetch_add(1, std::memory_order_release);
  if (Drained()) {
    std::lock_guard<std::mutex> lock(drain_mu_);
    drained_cv_.notify_all();
  }
}

void Sequencer::WaitDrained() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drained_cv_.wait(lock, [&] {
    return Drained() &&
           deferred_count_.load(std::memory_order_acquire) == 0;
  });
}

void Sequencer::WaitMergeIdle() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drained_cv_.wait(lock, [&] { return Drained(); });
}

Status Sequencer::ExecuteQuiesced(const std::function<Status()>& fn) {
  const bool on_merge_thread = OnSequencerThread();
  {
    std::unique_lock<std::mutex> lock(gate_mu_);
    gate_cv_.wait(lock, [&] { return !gate_closed_; });
    gate_closed_ = true;
    // Shard workers now parking at the gate may hold their batch
    // transaction's object locks mid-transaction. Tell the merge loop:
    // with the flag up it defers firings that hit such a lock instead of
    // burning its full retry budget against a holder that cannot release
    // until the gate reopens.
    if (!on_merge_thread) {
      quiescing_.store(true, std::memory_order_release);
    }
    // Publishers past the gate may be blocked in a full queue; when the
    // merge thread itself is the quiescer nobody else will free them, so
    // interleave drains with the wait.
    while (publishing_ != 0) {
      if (on_merge_thread) {
        lock.unlock();
        queue_.DrainInto(&spill_);
        lock.lock();
        gate_cv_.wait_for(lock, std::chrono::milliseconds(1),
                          [&] { return publishing_ == 0; });
      } else {
        gate_cv_.wait(lock, [&] { return publishing_ == 0; });
      }
    }
  }
  // From any other thread, also wait for the merge loop to consume every
  // accepted publish so it is not touching slot memory while `fn` mutates
  // it. Merge-idle, not fully drained: deferred firings need the gate we
  // are holding closed, and they only touch objects, never slot structure.
  // The merge thread skips this (it is the one that would have to drain).
  if (!on_merge_thread && started_.load(std::memory_order_acquire) &&
      !stopped_.load(std::memory_order_acquire)) {
    WaitMergeIdle();
  }
  Status s = fn();
  {
    std::lock_guard<std::mutex> lock(gate_mu_);
    gate_closed_ = false;
    if (!on_merge_thread) {
      quiescing_.store(false, std::memory_order_release);
    }
    gate_cv_.notify_all();
  }
  // The merge thread may be asleep on an empty queue with deferred
  // firings in hand; wake it to flush them.
  if (deferred_count_.load(std::memory_order_acquire) > 0) {
    queue_.Kick();
  }
  return s;
}

void Sequencer::ApplyOne(SeqEvent& event) {
  if (replay_dedup_.load(std::memory_order_relaxed) &&
      event.lane < watermark_.size() &&
      event.lane_seq <=
          watermark_[event.lane].load(std::memory_order_relaxed)) {
    replay_deduped_.fetch_add(1, std::memory_order_relaxed);
    NoteConsumed();
    return;
  }

  SeqApplyProgress progress;
  for (int attempt = 0;; ++attempt) {
    const bool unlocked = attempt >= options_.lock_retry_limit;
    if (unlocked && attempt == options_.lock_retry_limit) {
      lock_timeouts_.fetch_add(1, std::memory_order_relaxed);
    }
    Result<int> fired = db_->ApplySequencedEvent(event, &progress, unlocked);
    if (fired.ok()) {
      if (*fired > 0) {
        firings_.fetch_add(static_cast<uint64_t>(*fired),
                           std::memory_order_relaxed);
      }
      break;
    }
    StatusCode code = fired.status().code();
    if (!unlocked && (code == StatusCode::kWouldBlock ||
                      code == StatusCode::kDeadlock)) {
      if (progress.advanced &&
          quiescing_.load(std::memory_order_acquire)) {
        // The lock holder is a shard transaction parked at the closed
        // publish gate: it cannot commit (and release the lock) until the
        // quiesce — which is in turn waiting on this merge loop — ends.
        // The automaton step is already latched, so park just the firing
        // phase and finish it right after the gate reopens; the event's
        // position in the total order (watermark, order log) is fixed now,
        // below.
        deferred_.push_back({event, std::move(progress)});
        deferred_count_.fetch_add(1, std::memory_order_release);
        progress = SeqApplyProgress{};
        break;
      }
      // The posting object's lock is held by a shard transaction; free any
      // publishers blocked on a full queue, then retry. This is what
      // breaks the shard-holds-lock / queue-full cycle.
      queue_.DrainInto(&spill_);
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.lock_retry_sleep_us));
      continue;
    }
    apply_errors_.fetch_add(1, std::memory_order_relaxed);
    break;
  }
  if (!progress.error.empty()) {
    apply_errors_.fetch_add(1, std::memory_order_relaxed);
  }

  sequenced_.fetch_add(1, std::memory_order_relaxed);
  if (event.lane < watermark_.size()) {
    std::atomic<uint64_t>& wm = watermark_[event.lane];
    if (event.lane_seq > wm.load(std::memory_order_relaxed)) {
      wm.store(event.lane_seq, std::memory_order_relaxed);
    }
  }

  // Write-behind order log: logged ⊆ applied. A sticky failure stops
  // logging (recovery exactness is lost, not correctness) and escalates
  // once through the runtime's wal-degrade hook.
  if (options_.order_log != nullptr &&
      !log_failed_.load(std::memory_order_relaxed)) {
    Status s = options_.order_log->Append(event);
    if (!s.ok()) {
      log_failed_.store(true, std::memory_order_relaxed);
      if (options_.on_log_failure) options_.on_log_failure(s);
    }
  }
  NoteConsumed();
}

void Sequencer::FlushDeferred() {
  // Participate in the publish gate: FireSlot reads the slot memory a
  // quiescer's fn may mutate, so a gate-closer must be able to wait this
  // flush out via publishing_ == 0 — and we must not start one while the
  // gate is closed (the reopen kick will bring us back).
  {
    std::unique_lock<std::mutex> lock(gate_mu_);
    if (gate_closed_) return;
    ++publishing_;
  }
  size_t done = 0;
  while (done < deferred_.size()) {
    if (quiescing_.load(std::memory_order_acquire)) break;  // re-park
    DeferredFire& d = deferred_[done];
    bool reparked = false;
    for (int attempt = 0;; ++attempt) {
      const bool unlocked = attempt >= options_.lock_retry_limit;
      if (unlocked && attempt == options_.lock_retry_limit) {
        lock_timeouts_.fetch_add(1, std::memory_order_relaxed);
      }
      // progress.advanced is latched, so only the firing transaction runs.
      Result<int> fired =
          db_->ApplySequencedEvent(d.event, &d.progress, unlocked);
      if (fired.ok()) {
        if (*fired > 0) {
          firings_.fetch_add(static_cast<uint64_t>(*fired),
                             std::memory_order_relaxed);
        }
        break;
      }
      StatusCode code = fired.status().code();
      if (!unlocked && (code == StatusCode::kWouldBlock ||
                        code == StatusCode::kDeadlock)) {
        if (quiescing_.load(std::memory_order_acquire)) {
          reparked = true;  // lock holder is parked at the new gate close
          break;
        }
        queue_.DrainInto(&spill_);
        std::this_thread::sleep_for(
            std::chrono::microseconds(options_.lock_retry_sleep_us));
        continue;
      }
      apply_errors_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (reparked) break;
    if (!d.progress.error.empty()) {
      apply_errors_.fetch_add(1, std::memory_order_relaxed);
    }
    ++done;
    deferred_count_.fetch_sub(1, std::memory_order_release);
  }
  deferred_.erase(deferred_.begin(),
                  deferred_.begin() + static_cast<ptrdiff_t>(done));
  ExitPublish();
  std::lock_guard<std::mutex> lock(drain_mu_);
  drained_cv_.notify_all();
}

void Sequencer::Run() {
  SequencerThreadScope scope;
  for (;;) {
    if (pending_.empty()) {
      if (deferred_count_.load(std::memory_order_acquire) > 0 &&
          !quiescing_.load(std::memory_order_acquire)) {
        FlushDeferred();
      }
      if (!spill_.empty()) {
        // Events drained to unblock publishers while a deferred firing
        // waited on a lock.
        std::stable_sort(spill_.begin(), spill_.end(), SeqOrder);
        pending_.swap(spill_);
      } else {
        size_t n = queue_.WaitDrainInto(&pending_);
        if (n == 0) {
          if (queue_.closed()) break;
          continue;  // A kick: loop back to flush deferred firings.
        }
        // Deterministic batch merge: everything drained together is applied
        // in ascending (lane, lane_seq) — the tie-break of the ordering
        // contract. Per-lane FIFO is preserved because a lane's events
        // enter the queue in lane_seq order.
        std::stable_sort(pending_.begin(), pending_.end(), SeqOrder);
      }
    }
    size_t i = 0;
    while (i < pending_.size()) {
      // Published before apply: ApplyOne of the final event wakes drain
      // waiters, who may sample Metrics() immediately — the backlog must
      // already exclude the event being applied.
      backlog_.store(pending_.size() - i - 1, std::memory_order_relaxed);
      ApplyOne(pending_[i]);
      ++i;
      if (!spill_.empty()) {
        // Events drained while the head waited on a lock: newer than
        // everything already pending on their lanes, so they sort among
        // themselves and go to the back.
        std::stable_sort(spill_.begin(), spill_.end(), SeqOrder);
        for (SeqEvent& e : spill_) pending_.push_back(std::move(e));
        spill_.clear();
        backlog_.store(pending_.size() - i, std::memory_order_relaxed);
      }
    }
    pending_.clear();
    backlog_.store(0, std::memory_order_relaxed);
  }
  // Queue closed: everything pending was applied above. Firings still
  // deferred run now (bounded, ending unlocked if need be) — Stop() must
  // not lose actions. A quiesce racing the shutdown keeps the gate closed
  // only briefly (ExecuteQuiesced always reopens), so spin until flushed.
  while (deferred_count_.load(std::memory_order_acquire) > 0) {
    FlushDeferred();
    if (deferred_count_.load(std::memory_order_acquire) > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  // Wake any waiter.
  std::lock_guard<std::mutex> lock(drain_mu_);
  drained_cv_.notify_all();
}

void Sequencer::RestoreLaneCounters(
    const std::vector<uint64_t>& last_assigned) {
  for (size_t i = 0; i < last_assigned.size() && i < lane_next_.size(); ++i) {
    lane_next_[i].store(last_assigned[i], std::memory_order_relaxed);
    // Everything at or below the checkpoint counter was applied before the
    // checkpoint: the watermark floor for replay dedup.
    if (last_assigned[i] > watermark_[i].load(std::memory_order_relaxed)) {
      watermark_[i].store(last_assigned[i], std::memory_order_relaxed);
    }
  }
}

Status Sequencer::ApplyRecovered(const SeqEvent& event) {
  if (started_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        "ApplyRecovered requires a not-yet-started sequencer");
  }
  // A crash between checkpoint publication and order-log truncation leaves
  // records the checkpoint's snapshot already covers; the restored
  // watermark floor identifies and skips them.
  if (event.lane < watermark_.size() &&
      event.lane_seq <= watermark_[event.lane].load(std::memory_order_relaxed)) {
    replay_deduped_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
  SequencerThreadScope scope;  // Action cascades apply inline.
  SeqEvent ev = event;
  SeqApplyProgress progress;
  Result<int> fired = db_->ApplySequencedEvent(ev, &progress,
                                               /*allow_unlocked=*/false);
  if (fired.ok()) {
    if (*fired > 0) {
      firings_.fetch_add(static_cast<uint64_t>(*fired),
                         std::memory_order_relaxed);
    }
  } else {
    apply_errors_.fetch_add(1, std::memory_order_relaxed);
  }
  if (!progress.error.empty()) {
    apply_errors_.fetch_add(1, std::memory_order_relaxed);
  }
  sequenced_.fetch_add(1, std::memory_order_relaxed);
  published_.fetch_add(1, std::memory_order_relaxed);
  consumed_.fetch_add(1, std::memory_order_relaxed);
  if (ev.lane < watermark_.size() &&
      ev.lane_seq > watermark_[ev.lane].load(std::memory_order_relaxed)) {
    watermark_[ev.lane].store(ev.lane_seq, std::memory_order_relaxed);
  }
  // Deliberately NOT re-appended to the order log: the record is already
  // in it (recovery replays the log, it does not rewrite it).
  return Status::OK();
}

void Sequencer::BeginReplayDedup() {
  replay_dedup_.store(true, std::memory_order_relaxed);
}

void Sequencer::FinishReplay() {
  replay_dedup_.store(false, std::memory_order_relaxed);
}

std::vector<uint64_t> Sequencer::LaneCounters() const {
  std::vector<uint64_t> out(lane_next_.size());
  for (size_t i = 0; i < lane_next_.size(); ++i) {
    out[i] = lane_next_[i].load(std::memory_order_relaxed);
  }
  return out;
}

SequencerMetricsSnapshot Sequencer::Metrics() const {
  SequencerMetricsSnapshot snap;
  snap.enabled = true;
  snap.published = published_.load(std::memory_order_relaxed);
  snap.sequenced = sequenced_.load(std::memory_order_relaxed);
  snap.firings = firings_.load(std::memory_order_relaxed);
  snap.dropped = dropped_.load(std::memory_order_relaxed);
  snap.apply_errors = apply_errors_.load(std::memory_order_relaxed);
  snap.lock_timeouts = lock_timeouts_.load(std::memory_order_relaxed);
  snap.queue_depth =
      queue_.size() + backlog_.load(std::memory_order_relaxed);
  snap.queue_high_water = queue_.high_water();
  uint64_t consumed = consumed_.load(std::memory_order_relaxed);
  snap.merge_lag = snap.published > consumed ? snap.published - consumed : 0;
  snap.replay_deduped = replay_deduped_.load(std::memory_order_relaxed);
  snap.lane_watermark.resize(watermark_.size());
  for (size_t i = 0; i < watermark_.size(); ++i) {
    snap.lane_watermark[i] = watermark_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

}  // namespace seq
}  // namespace ode
