#ifndef ODE_SEQ_ORDER_LOG_H_
#define ODE_SEQ_ORDER_LOG_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "seq/seq_event.h"
#include "wal/log_format.h"

namespace ode {
namespace seq {

/// Durable record of the sequencer's merged order: one framed entry per
/// applied SeqEvent, written *behind* the apply (logged ⊆ applied, so a
/// crash loses at most the applied-but-unlogged suffix, which shard-WAL
/// replay re-derives and re-applies — see docs/SEQUENCER.md#durability).
/// The on-disk framing is the WAL's u32 len | u32 crc32 | payload; the
/// payload carries (lane, lane_seq, class, oid), the full posted event,
/// and the publish-time classification so recovery replays the exact
/// symbols without re-evaluating masks against post-recovery state.
///
/// Encodes to at most kMaxWalPayload bytes; larger events fail Append with
/// kInvalidArgument (counted by the sequencer, never fatal).
Status AppendOrderRecord(std::string* out, const SeqEvent& event);

/// The file holding the sequencer order log under a WAL directory. The
/// ".log" suffix keeps it invisible to wal::ListShardLogs ("shard-*.wal").
std::string OrderLogPath(const std::string& dir);

struct OrderLogReadResult {
  std::vector<SeqEvent> records;
  bool torn = false;          ///< Invalid tail discarded (crash mid-append).
  std::string torn_error;
  uint64_t valid_bytes = 0;   ///< Prefix length that decoded cleanly.
};

/// Reads every valid record; a missing file yields an empty result. Torn
/// or corrupt tails are tolerated and reported, mirroring wal::ReadLogFile
/// (the order log is truncate-on-checkpoint, so corruption mid-file is a
/// torn tail from the crash, not silent history loss).
Result<OrderLogReadResult> ReadOrderLog(const std::string& path);

/// Appender over the order log file. Not internally synchronized: only the
/// sequencer thread appends, and Truncate runs only from checkpoint (shards
/// paused, sequencer drained). Same sticky-failure discipline as
/// wal::LogWriter: after an I/O error every Append fails fast, which the
/// runtime escalates to wal-degraded mode.
class OrderLogWriter {
 public:
  OrderLogWriter() = default;
  ~OrderLogWriter() { Close(); }

  OrderLogWriter(const OrderLogWriter&) = delete;
  OrderLogWriter& operator=(const OrderLogWriter&) = delete;

  Status Open(const std::string& path, const wal::WalOptions& options);
  Status Append(const SeqEvent& event);
  /// Fsync barrier for the non-kAlways policies.
  Status Sync();
  /// Empties the file (checkpoint truncation) and fsyncs.
  Status Truncate();
  void Close();

  bool open() const { return fd_ >= 0; }
  uint64_t appends() const { return appends_.load(std::memory_order_relaxed); }
  uint64_t fsyncs() const { return fsyncs_.load(std::memory_order_relaxed); }
  uint64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }

 private:
  Status WriteFully(const char* data, size_t size);
  Status MaybeFsync();

  int fd_ = -1;
  std::string path_;
  wal::WalOptions options_;
  std::string buf_;  ///< Encode scratch, reused per append.
  uint64_t unsynced_ = 0;
  std::atomic<uint64_t> appends_{0};
  std::atomic<uint64_t> fsyncs_{0};
  std::atomic<uint64_t> bytes_written_{0};
  bool has_failed_ = false;
  Status failed_ = Status::OK();
};

}  // namespace seq
}  // namespace ode

#endif  // ODE_SEQ_ORDER_LOG_H_
