#ifndef ODE_SEQ_SEQUENCER_METRICS_H_
#define ODE_SEQ_SEQUENCER_METRICS_H_

#include <cstdint>
#include <vector>

namespace ode {
namespace seq {

/// Plain-value copy of the sequencer's counters. Sampled wait-free from
/// relaxed atomics (no lock on the publish or apply paths), so the fields
/// are individually — not mutually — consistent, like ShardMetricsSnapshot.
/// Carried on RuntimeMetricsSnapshot and over the wire in METRICS_REPLY.
struct SequencerMetricsSnapshot {
  bool enabled = false;
  uint64_t published = 0;      ///< Events accepted into the sequencer queue.
  uint64_t sequenced = 0;      ///< Events merged + applied in total order.
  uint64_t firings = 0;        ///< Class-scope trigger firings.
  uint64_t dropped = 0;        ///< Publishes shed by kDropNewest.
  uint64_t apply_errors = 0;   ///< Firing-phase errors (recorded, skipped).
  uint64_t lock_timeouts = 0;  ///< Firing proceeded unlocked past the bound.
  uint64_t queue_depth = 0;    ///< Sampled queue + pending backlog.
  uint64_t queue_high_water = 0;
  /// published - sequenced at sample time: how far the merge runs behind
  /// the shards.
  uint64_t merge_lag = 0;
  /// Events dropped during recovery replay because their (lane, lane_seq)
  /// was at or below the recovered order-log watermark (already applied
  /// before the crash).
  uint64_t replay_deduped = 0;
  /// Highest lane_seq applied per lane (monotone; index = lane id, the
  /// last lane being the external/non-worker lane).
  std::vector<uint64_t> lane_watermark;
};

}  // namespace seq
}  // namespace ode

#endif  // ODE_SEQ_SEQUENCER_METRICS_H_
