#include "seq/order_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/strutil.h"
#include "ode/snapshot_codec.h"

namespace ode {
namespace seq {

namespace {

Status IoError(const char* op, const std::string& path) {
  return Status::Internal(
      StrFormat("%s '%s': %s", op, path.c_str(), std::strerror(errno)));
}

void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v));
  out->push_back(static_cast<char>(v >> 8));
}

void PutU32(std::string* out, uint32_t v) {
  PutU16(out, static_cast<uint16_t>(v));
  PutU16(out, static_cast<uint16_t>(v >> 16));
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(const char* p) {
  return static_cast<uint8_t>(p[0]) |
         (uint32_t{static_cast<uint8_t>(p[1])} << 8) |
         (uint32_t{static_cast<uint8_t>(p[2])} << 16) |
         (uint32_t{static_cast<uint8_t>(p[3])} << 24);
}

/// Bounds-checked payload reader (same discipline as the WAL's: a failed
/// read latches ok_ false and reads nothing).
class Reader {
 public:
  Reader(const char* data, size_t size) : data_(data), size_(size) {}

  bool ReadU8(uint8_t* v) {
    if (pos_ + 1 > size_) return Fail();
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }
  bool ReadU16(uint16_t* v) {
    if (pos_ + 2 > size_) return Fail();
    *v = static_cast<uint16_t>(
        static_cast<uint8_t>(data_[pos_]) |
        (uint16_t{static_cast<uint8_t>(data_[pos_ + 1])} << 8));
    pos_ += 2;
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (pos_ + 4 > size_) return Fail();
    *v = GetU32(data_ + pos_);
    pos_ += 4;
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (pos_ + 8 > size_) return Fail();
    uint64_t r = 0;
    for (int i = 7; i >= 0; --i) {
      r = (r << 8) | static_cast<uint8_t>(data_[pos_ + i]);
    }
    pos_ += 8;
    *v = r;
    return true;
  }
  bool ReadBytes(size_t n, std::string* v) {
    if (n > size_ || pos_ > size_ - n) return Fail();
    v->assign(data_ + pos_, n);
    pos_ += n;
    return true;
  }

  bool ok() const { return ok_; }
  bool exhausted() const { return pos_ == size_; }

 private:
  bool Fail() {
    ok_ = false;
    return false;
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

Status EncodePayload(std::string* payload, const SeqEvent& ev) {
  if (ev.event.method_name.size() > wal::kMaxWalMethodLen ||
      ev.event.time_key.size() > wal::kMaxWalMethodLen ||
      ev.event.args.size() > wal::kMaxWalArgs ||
      ev.syms.size() > 0xffff) {
    return Status::InvalidArgument("order record exceeds codec caps");
  }
  PutU32(payload, ev.lane);
  PutU64(payload, ev.lane_seq);
  PutU32(payload, ev.class_id);
  PutU64(payload, ev.oid.id);
  payload->push_back(static_cast<char>(ev.event.kind));
  payload->push_back(static_cast<char>(ev.event.qualifier));
  PutU16(payload, static_cast<uint16_t>(ev.event.method_name.size()));
  payload->append(ev.event.method_name);
  PutU16(payload, static_cast<uint16_t>(ev.event.time_key.size()));
  payload->append(ev.event.time_key);
  PutU64(payload, ev.event.txn);
  PutU64(payload, static_cast<uint64_t>(ev.event.time));
  PutU64(payload, ev.event.seq);
  PutU16(payload, static_cast<uint16_t>(ev.syms.size()));
  for (const SeqSym& s : ev.syms) {
    PutU32(payload, static_cast<uint32_t>(s.trigger_idx));
    PutU32(payload, static_cast<uint32_t>(s.symbol));
  }
  PutU16(payload, static_cast<uint16_t>(ev.event.args.size()));
  for (const EventArg& arg : ev.event.args) {
    if (arg.name.size() > wal::kMaxWalMethodLen) {
      return Status::InvalidArgument("order record arg name exceeds cap");
    }
    PutU16(payload, static_cast<uint16_t>(arg.name.size()));
    payload->append(arg.name);
    std::string text = EncodeSnapshotValue(arg.value);
    if (text.size() > 0xffff) {
      return Status::InvalidArgument("order record arg value exceeds cap");
    }
    PutU16(payload, static_cast<uint16_t>(text.size()));
    payload->append(text);
  }
  if (payload->size() > wal::kMaxWalPayload) {
    return Status::InvalidArgument("order record exceeds payload cap");
  }
  return Status::OK();
}

bool DecodePayload(const char* data, size_t size, SeqEvent* out,
                   std::string* error) {
  Reader in(data, size);
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  uint8_t u8 = 0;
  uint16_t u16 = 0;

  in.ReadU32(&u32);
  out->lane = u32;
  in.ReadU64(&out->lane_seq);
  in.ReadU32(&u32);
  out->class_id = u32;
  in.ReadU64(&u64);
  out->oid = Oid{u64};
  in.ReadU8(&u8);
  out->event.kind = static_cast<BasicEventKind>(u8);
  in.ReadU8(&u8);
  out->event.qualifier = static_cast<EventQualifier>(u8);
  in.ReadU16(&u16);
  in.ReadBytes(u16, &out->event.method_name);
  in.ReadU16(&u16);
  in.ReadBytes(u16, &out->event.time_key);
  in.ReadU64(&out->event.txn);
  in.ReadU64(&u64);
  out->event.time = static_cast<TimeMs>(u64);
  in.ReadU64(&out->event.seq);
  out->event.object = out->oid;
  uint16_t nsyms = 0;
  in.ReadU16(&nsyms);
  if (!in.ok()) {
    *error = "order record payload truncated";
    return false;
  }
  out->syms.clear();
  out->syms.reserve(nsyms);
  for (uint16_t i = 0; i < nsyms; ++i) {
    uint32_t idx = 0;
    uint32_t sym = 0;
    if (!in.ReadU32(&idx) || !in.ReadU32(&sym)) {
      *error = "order record symbol list truncated";
      return false;
    }
    out->syms.push_back(SeqSym{static_cast<int32_t>(idx),
                               static_cast<int32_t>(sym)});
  }
  uint16_t argc = 0;
  if (!in.ReadU16(&argc) || argc > wal::kMaxWalArgs) {
    *error = "order record argument count invalid";
    return false;
  }
  out->event.args.clear();
  out->event.args.reserve(argc);
  for (uint16_t i = 0; i < argc; ++i) {
    EventArg arg;
    std::string text;
    if (!in.ReadU16(&u16) || !in.ReadBytes(u16, &arg.name) ||
        !in.ReadU16(&u16) || !in.ReadBytes(u16, &text)) {
      *error = "order record argument truncated";
      return false;
    }
    Result<Value> v = DecodeSnapshotValue(text);
    if (!v.ok()) {
      *error = StrFormat("order record argument value: %s",
                         v.status().message().c_str());
      return false;
    }
    arg.value = std::move(*v);
    out->event.args.push_back(std::move(arg));
  }
  if (!in.exhausted()) {
    *error = "order record has trailing payload bytes";
    return false;
  }
  return true;
}

}  // namespace

Status AppendOrderRecord(std::string* out, const SeqEvent& event) {
  std::string payload;
  ODE_RETURN_IF_ERROR(EncodePayload(&payload, event));
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU32(out, wal::Crc32(payload.data(), payload.size()));
  out->append(payload);
  return Status::OK();
}

std::string OrderLogPath(const std::string& dir) {
  return StrFormat("%s/seqorder.log", dir.c_str());
}

Result<OrderLogReadResult> ReadOrderLog(const std::string& path) {
  OrderLogReadResult result;
  std::ifstream in(path, std::ios::binary);
  if (!in) return result;  // Absent file: nothing sequenced yet.
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string data = buf.str();

  size_t pos = 0;
  while (pos < data.size()) {
    if (data.size() - pos < 8) {
      result.torn = true;
      result.torn_error = "torn frame header";
      break;
    }
    uint32_t len = GetU32(data.data() + pos);
    uint32_t crc = GetU32(data.data() + pos + 4);
    if (len > wal::kMaxWalPayload) {
      result.torn = true;
      result.torn_error = "frame length exceeds payload cap";
      break;
    }
    if (data.size() - pos - 8 < len) {
      result.torn = true;
      result.torn_error = "torn frame payload";
      break;
    }
    const char* payload = data.data() + pos + 8;
    if (wal::Crc32(payload, len) != crc) {
      result.torn = true;
      result.torn_error = "payload checksum mismatch";
      break;
    }
    SeqEvent ev;
    std::string error;
    if (!DecodePayload(payload, len, &ev, &error)) {
      result.torn = true;
      result.torn_error = std::move(error);
      break;
    }
    result.records.push_back(std::move(ev));
    pos += 8 + len;
    result.valid_bytes = pos;
  }
  return result;
}

Status OrderLogWriter::Open(const std::string& path,
                            const wal::WalOptions& options) {
  Close();
  fd_ = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND | O_CLOEXEC, 0644);
  if (fd_ < 0) return IoError("open", path);
  path_ = path;
  options_ = options;
  unsynced_ = 0;
  has_failed_ = false;
  failed_ = Status::OK();
  return Status::OK();
}

Status OrderLogWriter::WriteFully(const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    ssize_t n = ::write(fd_, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoError("write", path_);
    }
    written += static_cast<size_t>(n);
  }
  bytes_written_.fetch_add(size, std::memory_order_relaxed);
  return Status::OK();
}

Status OrderLogWriter::MaybeFsync() {
  bool sync = false;
  switch (options_.fsync) {
    case wal::FsyncPolicy::kAlways:
      sync = true;
      break;
    case wal::FsyncPolicy::kEveryN:
      sync = unsynced_ >= options_.fsync_every_n;
      break;
    case wal::FsyncPolicy::kEveryMs:
      // The order log has no flusher thread; treat kEveryMs like kEveryN
      // (bounded loss either way, barriers at Sync/Truncate/Stop).
      sync = unsynced_ >= options_.fsync_every_n;
      break;
    case wal::FsyncPolicy::kNever:
      break;
  }
  if (!sync) return Status::OK();
  if (::fsync(fd_) != 0) return IoError("fsync", path_);
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  unsynced_ = 0;
  return Status::OK();
}

Status OrderLogWriter::Append(const SeqEvent& event) {
  if (has_failed_) return failed_;
  if (fd_ < 0) return Status::FailedPrecondition("order log is not open");
  buf_.clear();
  ODE_RETURN_IF_ERROR(AppendOrderRecord(&buf_, event));
  Status s = WriteFully(buf_.data(), buf_.size());
  if (s.ok()) {
    ++unsynced_;
    s = MaybeFsync();
  }
  if (!s.ok()) {
    has_failed_ = true;
    failed_ = s;
    return s;
  }
  appends_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status OrderLogWriter::Sync() {
  if (has_failed_) return failed_;
  if (fd_ < 0) return Status::OK();
  if (unsynced_ == 0) return Status::OK();
  if (::fsync(fd_) != 0) {
    Status s = IoError("fsync", path_);
    has_failed_ = true;
    failed_ = s;
    return s;
  }
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  unsynced_ = 0;
  return Status::OK();
}

Status OrderLogWriter::Truncate() {
  if (has_failed_) return failed_;
  if (fd_ < 0) return Status::FailedPrecondition("order log is not open");
  if (::ftruncate(fd_, 0) != 0) {
    Status s = IoError("ftruncate", path_);
    has_failed_ = true;
    failed_ = s;
    return s;
  }
  if (::fsync(fd_) != 0) {
    Status s = IoError("fsync", path_);
    has_failed_ = true;
    failed_ = s;
    return s;
  }
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  unsynced_ = 0;
  return Status::OK();
}

void OrderLogWriter::Close() {
  if (fd_ >= 0) {
    if (unsynced_ > 0 && !has_failed_) (void)::fsync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace seq
}  // namespace ode
