#include "seq/seq_queue.h"

#include <utility>

namespace ode {
namespace seq {

SeqQueue::SeqQueue(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.resize(capacity_);
}

SeqQueue::PushResult SeqQueue::Push(SeqEvent event) {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock, [&] { return count_ < capacity_ || closed_; });
  if (closed_) return PushResult::kClosed;
  ring_[(head_ + count_) % capacity_] = std::move(event);
  ++count_;
  if (count_ > high_water_) high_water_ = count_;
  not_empty_.notify_one();
  return PushResult::kOk;
}

SeqQueue::PushResult SeqQueue::TryPush(SeqEvent event) {
  std::unique_lock<std::mutex> lock(mu_);
  if (closed_) return PushResult::kClosed;
  if (count_ >= capacity_) return PushResult::kFull;
  ring_[(head_ + count_) % capacity_] = std::move(event);
  ++count_;
  if (count_ > high_water_) high_water_ = count_;
  not_empty_.notify_one();
  return PushResult::kOk;
}

size_t SeqQueue::DrainLocked(std::vector<SeqEvent>* out) {
  size_t n = count_;
  for (size_t i = 0; i < n; ++i) {
    out->push_back(std::move(ring_[(head_ + i) % capacity_]));
  }
  head_ = (head_ + n) % capacity_;
  count_ = 0;
  if (n > 0) not_full_.notify_all();
  return n;
}

size_t SeqQueue::WaitDrainInto(std::vector<SeqEvent>* out) {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [&] { return count_ > 0 || closed_ || kicked_; });
  kicked_ = false;
  return DrainLocked(out);
}

size_t SeqQueue::DrainInto(std::vector<SeqEvent>* out) {
  std::unique_lock<std::mutex> lock(mu_);
  return DrainLocked(out);
}

void SeqQueue::Kick() {
  std::unique_lock<std::mutex> lock(mu_);
  kicked_ = true;
  not_empty_.notify_all();
}

void SeqQueue::Close() {
  std::unique_lock<std::mutex> lock(mu_);
  closed_ = true;
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool SeqQueue::closed() const {
  std::unique_lock<std::mutex> lock(mu_);
  return closed_;
}

size_t SeqQueue::size() const {
  std::unique_lock<std::mutex> lock(mu_);
  return count_;
}

size_t SeqQueue::high_water() const {
  std::unique_lock<std::mutex> lock(mu_);
  return high_water_;
}

}  // namespace seq
}  // namespace ode
