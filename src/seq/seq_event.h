#ifndef ODE_SEQ_SEQ_EVENT_H_
#define ODE_SEQ_SEQ_EVENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/value.h"
#include "event/posted_event.h"
#include "ode/class_def.h"

namespace ode {
namespace seq {

/// One trigger slot's precomputed classification for a published event.
/// Classification (atom-mask evaluation against the posting object, §5)
/// happens on the owner shard at publish time, where the object's lock is
/// already held; the sequencer thread then only steps automata and fires.
/// This is the local-detection / global-composition split: the shard does
/// the per-event work that needs the object, the sequencer does the
/// order-sensitive work that needs the merged stream.
struct SeqSym {
  int32_t trigger_idx = -1;  ///< Index into RegisteredClass::triggers.
  int32_t symbol = 0;        ///< Base SymbolId under that trigger's alphabet.
};

/// What an instance shard publishes into the sequencer queue: one posted
/// event destined for a class's shared (§9 class-scope) trigger automata.
/// `(lane, lane_seq)` is the replay-stable identity — lane = shard index
/// (plus one external lane for non-worker posters), lane_seq a per-lane
/// monotone counter — used for tie-breaking within a drained batch, for
/// watermark accounting, and for exactly-once dedup during crash recovery.
struct SeqEvent {
  ClassId class_id = 0;
  Oid oid;                    ///< The posting instance (action `self`).
  uint32_t lane = 0;
  uint64_t lane_seq = 0;
  PostedEvent event;          ///< Full payload (args feed masks/witnesses).
  std::vector<SeqSym> syms;   ///< One entry per publish-time-active slot.
};

/// Retry bookkeeping for TriggerEngine::ApplySequenced. The lock-free
/// advancement phase must run at most once per event (DFA steps are not
/// idempotent); `advanced` latches it so a kWouldBlock bounce from the
/// firing transaction's object acquisition retries only the firing.
struct SeqApplyProgress {
  bool advanced = false;
  std::vector<int32_t> pending_fire;  ///< trigger_idx of occurred slots.
  /// First non-retryable error from the firing phase (action failures are
  /// recorded, counted, and skipped — never retried, so fire counters
  /// cannot drift).
  std::string error;
};

}  // namespace seq
}  // namespace ode

#endif  // ODE_SEQ_SEQ_EVENT_H_
