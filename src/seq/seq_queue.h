#ifndef ODE_SEQ_SEQ_QUEUE_H_
#define ODE_SEQ_SEQ_QUEUE_H_

#include <condition_variable>
#include <mutex>
#include <vector>

#include "seq/seq_event.h"

namespace ode {
namespace seq {

/// The sequencer's bounded multi-producer single-consumer queue: shard
/// workers (and the external lane) push SeqEvents, the sequencer thread
/// drains them. Same ring-under-one-mutex shape as runtime::EventQueue but
/// with a non-blocking DrainInto — the consumer must be able to make room
/// while it is itself waiting on an object lock, which is what breaks the
/// publisher-holds-lock / queue-full cycle (see docs/SEQUENCER.md).
class SeqQueue {
 public:
  enum class PushResult { kOk, kFull, kClosed };

  explicit SeqQueue(size_t capacity);

  SeqQueue(const SeqQueue&) = delete;
  SeqQueue& operator=(const SeqQueue&) = delete;

  /// Blocks while the queue is full. kClosed if Close() ran first.
  PushResult Push(SeqEvent event);

  /// Never blocks: kFull when at capacity.
  PushResult TryPush(SeqEvent event);

  /// Blocks until at least one event is available, the queue is closed
  /// and empty, or Kick() was called; appends everything queued to `*out`
  /// in FIFO order and returns the number appended (0 at shutdown or on a
  /// kick with nothing queued).
  size_t WaitDrainInto(std::vector<SeqEvent>* out);

  /// Non-blocking: appends whatever is queued right now to `*out`.
  size_t DrainInto(std::vector<SeqEvent>* out);

  /// Wakes the consumer out of WaitDrainInto even with nothing queued —
  /// the sequencer uses it to revisit deferred work (end of a quiesce).
  /// One kick satisfies one wait; it is consumed, not sticky.
  void Kick();

  /// No further pushes succeed; the consumer drains what remains.
  void Close();

  bool closed() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }
  size_t high_water() const;

 private:
  size_t DrainLocked(std::vector<SeqEvent>* out);

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;   ///< Producers wait for space.
  std::condition_variable not_empty_;  ///< The consumer waits for events.
  std::vector<SeqEvent> ring_;         ///< Fixed storage, size == capacity_.
  size_t head_ = 0;
  size_t count_ = 0;
  size_t high_water_ = 0;
  bool closed_ = false;
  bool kicked_ = false;
};

}  // namespace seq
}  // namespace ode

#endif  // ODE_SEQ_SEQ_QUEUE_H_
