#ifndef ODE_COMPILE_ALPHABET_H_
#define ODE_COMPILE_ALPHABET_H_

#include <functional>
#include <string>
#include <vector>

#include "automaton/committed_transform.h"
#include "automaton/symbol_set.h"
#include "common/result.h"
#include "event/posted_event.h"
#include "lang/event_ast.h"
#include "mask/mask_ast.h"

namespace ode {

/// A mask together with the formal parameter declarations of the atom that
/// owns it. Parameter names are positional aliases for the posted event's
/// actual arguments: `after withdraw(Item i, int q) && q > 1000` binds `q`
/// to the second argument of the posted withdraw whatever the method itself
/// calls it (§3.1/§3.2).
struct MaskSlot {
  MaskExprPtr mask;
  std::vector<ParamDecl> params;

  /// Identity used for deduplication within a group.
  std::string Key() const;
};

/// The alphabet of a compiled trigger, implementing the §5 mask
/// disjointness rewrite.
///
/// Logical events inside one trigger must be pairwise disjoint so the
/// object's history is a well-defined symbol sequence. We group the
/// trigger's atoms by basic event; a basic event carrying k distinct masks
/// m_1..m_k contributes 2^k *micro-symbols*, one per sign assignment of the
/// masks (the paper's Boolean-combination rewrite). An atom with mask m_i
/// denotes the union of the micro-symbols whose i-th bit is set; a maskless
/// atom denotes the whole group. One extra OTHER symbol stands for any
/// posted event the trigger does not mention — such events still advance
/// the history (they matter to `!`, `sequence`, `choose`, `every`).
///
/// At run time, classifying a posted event costs k mask evaluations and
/// produces exactly one symbol: the bit vector of mask outcomes indexes the
/// group's micro-symbols. Detection is then a single DFA transition (§5).
class Alphabet {
 public:
  struct Options {
    /// Guarantee that `after tbegin` / `after tcommit` / `after tabort`
    /// groups exist even if the expression does not mention them (needed by
    /// the §6 committed transform, which must observe transaction
    /// boundaries).
    bool include_txn_markers = false;
    /// Cap on distinct masks per basic event; the 2^k expansion is rejected
    /// beyond it (the paper: "in practice we do not expect to see enough
    /// such overlap for this explosion to be a worry").
    size_t max_masks_per_group = 12;
  };

  /// Collects the expression's atoms and builds the symbol space.
  ///
  /// Fails with kInvalidArgument if the trigger references the same method
  /// both with and without a signature: such specifications overlap without
  /// being rewritable into disjoint logical events. (Two different declared
  /// arities are fine — arity keeps them disjoint.)
  static Result<Alphabet> Build(const EventExpr& expr,
                                const Options& options);
  static Result<Alphabet> Build(const EventExpr& expr);

  /// Total number of symbols (micro-symbols of all groups + OTHER).
  size_t size() const { return size_; }

  SymbolId other_symbol() const { return static_cast<SymbolId>(size_ - 1); }

  /// The set of symbols denoted by a logical-event atom (kAtom node).
  Result<SymbolSet> SymbolsFor(const EventExpr& atom) const;

  /// All micro-symbols of the group matching `spec`; empty set if the
  /// trigger has no such group.
  SymbolSet GroupSymbols(const BasicEvent& spec) const;

  /// Marker symbol sets for the §6 transform (empty when the marker has no
  /// group; build with include_txn_markers to guarantee presence).
  TxnMarkerSymbols txn_markers() const;

  /// Evaluates one mask slot against a posted event; supplied by the engine
  /// (binds positional parameter names, object attributes, host functions).
  using MaskEvalFn =
      std::function<Result<bool>(const MaskSlot&, const PostedEvent&)>;

  /// Maps a posted event to its unique symbol. Events matching no group
  /// map to OTHER. Mask evaluation errors propagate.
  Result<SymbolId> Classify(const PostedEvent& event,
                            const MaskEvalFn& eval_mask) const;

  /// The basic event (group representative) a posted event matches, or
  /// null when it would classify as OTHER. Used by witness capture (§9).
  const BasicEvent* MatchingSpec(const PostedEvent& event) const;

  /// True when no group carries masks, i.e. symbols correspond one-to-one
  /// to basic events (plus OTHER).
  bool IsMaskFree() const;

  /// For a mask-free alphabet: the basic event owning symbol `s`, or null
  /// for the OTHER symbol. Used by the decompiler (compile/decompile.h).
  const BasicEvent* SpecForSymbol(SymbolId s) const;

  /// Number of mask evaluations Classify performs for this event kind
  /// (cost model for benchmarks).
  size_t ClassifyCost(const PostedEvent& event) const;

  /// Human-readable names per symbol (for dot export and diagnostics).
  std::vector<std::string> SymbolNames() const;

  /// The time basic events referenced by this trigger; the engine registers
  /// a clock timer for each at activation (§3.1).
  std::vector<BasicEvent> TimeEvents() const;

  /// --- Read-only access to the §5 grouping (static analysis) -----------
  size_t num_groups() const { return groups_.size(); }
  const BasicEvent& group_spec(size_t g) const { return groups_[g].spec; }
  const std::vector<MaskSlot>& group_masks(size_t g) const {
    return groups_[g].masks;
  }
  /// First micro-symbol id of group `g`; the group spans
  /// [base, base + 2^masks) (micro-symbol bit i = group_masks()[i] holds).
  SymbolId group_base(size_t g) const { return groups_[g].base; }
  size_t group_num_symbols(size_t g) const {
    return groups_[g].num_symbols();
  }

 private:
  struct Group {
    BasicEvent spec;               ///< Representative basic event.
    std::vector<MaskSlot> masks;   ///< Distinct masks; bit i = masks[i].
    SymbolId base = 0;             ///< First micro-symbol id.
    size_t num_symbols() const { return size_t{1} << masks.size(); }
  };

  const Group* FindGroup(const BasicEvent& spec) const;
  const Group* MatchGroup(const PostedEvent& event) const;

  std::vector<Group> groups_;
  size_t size_ = 0;
};

}  // namespace ode

#endif  // ODE_COMPILE_ALPHABET_H_
