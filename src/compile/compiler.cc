#include "compile/compiler.h"

#include "automaton/counting.h"
#include "automaton/determinize.h"
#include "automaton/first_occurrence.h"
#include "automaton/minimize.h"
#include "common/strutil.h"

namespace ode {

SymbolSet CompiledEvent::ExtendSet(const SymbolSet& base) const {
  const size_t gate_count = gates.size();
  SymbolSet out(alphabet.size() << gate_count);
  base.ForEach([&](SymbolId b) {
    for (size_t combo = 0; combo < (size_t{1} << gate_count); ++combo) {
      out.Add(static_cast<SymbolId>(
          (static_cast<size_t>(b) << gate_count) | combo));
    }
  });
  return out;
}

namespace {

/// Compilation context: the base alphabet plus the gate-bit extension.
struct Ctx {
  const Alphabet* alphabet = nullptr;
  size_t num_gates = 0;
  const CompileOptions* options = nullptr;

  size_t ext_size() const { return alphabet->size() << num_gates; }

  /// Extended symbol set of a logical-event atom: every gate-bit variant.
  Result<SymbolSet> AtomSet(const EventExpr& atom) const {
    Result<SymbolSet> base = alphabet->SymbolsFor(atom);
    if (!base.ok()) return base.status();
    SymbolSet out(ext_size());
    base->ForEach([&](SymbolId b) {
      for (size_t combo = 0; combo < (size_t{1} << num_gates); ++combo) {
        out.Add(static_cast<SymbolId>(
            (static_cast<size_t>(b) << num_gates) | combo));
      }
    });
    return out;
  }

  /// Extended symbols whose gate bit `i` is set.
  SymbolSet GateSet(size_t i) const {
    SymbolSet out(ext_size());
    for (size_t b = 0; b < alphabet->size(); ++b) {
      for (size_t combo = 0; combo < (size_t{1} << num_gates); ++combo) {
        if ((combo >> i) & 1) {
          out.Add(static_cast<SymbolId>((b << num_gates) | combo));
        }
      }
    }
    return out;
  }
};

Result<Dfa> ToDfa(const Nfa& nfa, const Ctx& ctx) {
  return Determinize(nfa, ctx.options->max_states);
}

Result<Nfa> Compile(const EventExpr& e, const Ctx& ctx);

/// `sequence(A, B)` = L(A) · (L(B) ∩ Σ): B must occur at the very next
/// point of the truncated history (§3.4). The single-symbol slice of L(B)
/// is read off B's DFA: the symbols whose one-step successor accepts.
Result<Nfa> SequenceStep(const Nfa& a, const Nfa& b, const Ctx& ctx) {
  Result<Dfa> bd = ToDfa(b, ctx);
  if (!bd.ok()) return bd.status();
  const size_t m = a.alphabet_size();
  SymbolSet first(m);
  for (size_t sym = 0; sym < m; ++sym) {
    if (bd->accepting(bd->Step(bd->start(), static_cast<SymbolId>(sym)))) {
      first.Add(static_cast<SymbolId>(sym));
    }
  }
  // L(A) · first — a single mandatory symbol after A.
  Nfa step(m);
  Nfa::State s0 = step.AddState(false);
  Nfa::State s1 = step.AddState(true);
  step.SetStart(s0);
  step.AddEdge(s0, first, s1);
  return Nfa::Concat(a, step);
}

Result<Nfa> Compile(const EventExpr& e, const Ctx& ctx) {
  const size_t m = ctx.ext_size();
  switch (e.kind) {
    case EventExprKind::kEmpty:
      return Nfa::EmptyLanguage(m);

    case EventExprKind::kAtom: {
      Result<SymbolSet> syms = ctx.AtomSet(e);
      if (!syms.ok()) return syms.status();
      return Nfa::SigmaStarAtom(*syms);
    }

    case EventExprKind::kGateAtom:
      return Nfa::SigmaStarAtom(ctx.GateSet(static_cast<size_t>(e.n)));

    case EventExprKind::kOr: {
      Result<Nfa> a = Compile(*e.children[0], ctx);
      if (!a.ok()) return a;
      Result<Nfa> b = Compile(*e.children[1], ctx);
      if (!b.ok()) return b;
      return Nfa::Union(*a, *b);
    }

    case EventExprKind::kAnd: {
      Result<Nfa> a = Compile(*e.children[0], ctx);
      if (!a.ok()) return a;
      Result<Nfa> b = Compile(*e.children[1], ctx);
      if (!b.ok()) return b;
      Result<Dfa> da = ToDfa(*a, ctx);
      if (!da.ok()) return da.status();
      Result<Dfa> db = ToDfa(*b, ctx);
      if (!db.ok()) return db.status();
      return DfaToNfa(IntersectDfa(*da, *db));
    }

    case EventExprKind::kNot: {
      Result<Nfa> a = Compile(*e.children[0], ctx);
      if (!a.ok()) return a;
      Result<Dfa> da = ToDfa(*a, ctx);
      if (!da.ok()) return da.status();
      return DfaToNfa(ComplementSigmaPlus(*da));
    }

    case EventExprKind::kRelative: {
      // relative(E1, ..., En) = L(E1) · ... · L(En), curried (§3.4/§4).
      Result<Nfa> acc = Compile(*e.children[0], ctx);
      if (!acc.ok()) return acc;
      for (size_t i = 1; i < e.children.size(); ++i) {
        Result<Nfa> next = Compile(*e.children[i], ctx);
        if (!next.ok()) return next;
        acc = Nfa::Concat(*acc, *next);
      }
      return acc;
    }

    case EventExprKind::kRelativePlus: {
      Result<Nfa> a = Compile(*e.children[0], ctx);
      if (!a.ok()) return a;
      return Nfa::Plus(*a);
    }

    case EventExprKind::kRelativeN: {
      // relative N (E) = L(E)^{N-1} · L(E)⁺ — the Nth and any subsequent
      // chained occurrence (§3.4's "fifth and any subsequent").
      Result<Nfa> a = Compile(*e.children[0], ctx);
      if (!a.ok()) return a;
      Nfa plus = Nfa::Plus(*a);
      if (e.n == 1) return plus;
      return Nfa::Concat(Nfa::Power(*a, e.n - 1), plus);
    }

    case EventExprKind::kPrior: {
      // prior(E, F) = (L(E) · Σ⁺) ∩ L(F), curried.
      Result<Nfa> acc = Compile(*e.children[0], ctx);
      if (!acc.ok()) return acc;
      for (size_t i = 1; i < e.children.size(); ++i) {
        Result<Nfa> next = Compile(*e.children[i], ctx);
        if (!next.ok()) return next;
        Nfa strictly_after = Nfa::Concat(*acc, Nfa::SigmaPlus(m));
        Result<Dfa> da = ToDfa(strictly_after, ctx);
        if (!da.ok()) return da.status();
        Result<Dfa> db = ToDfa(*next, ctx);
        if (!db.ok()) return db.status();
        acc = DfaToNfa(IntersectDfa(*da, *db));
      }
      return acc;
    }

    case EventExprKind::kPriorN: {
      Result<Nfa> a = Compile(*e.children[0], ctx);
      if (!a.ok()) return a;
      Result<Dfa> da = ToDfa(*a, ctx);
      if (!da.ok()) return da.status();
      Result<Dfa> counted = BuildCountingDfa(
          *da, e.n, CountCondition::kAtLeast, ctx.options->max_states);
      if (!counted.ok()) return counted.status();
      return DfaToNfa(*counted);
    }

    case EventExprKind::kSequence: {
      Result<Nfa> acc = Compile(*e.children[0], ctx);
      if (!acc.ok()) return acc;
      for (size_t i = 1; i < e.children.size(); ++i) {
        Result<Nfa> next = Compile(*e.children[i], ctx);
        if (!next.ok()) return next;
        acc = SequenceStep(*acc, *next, ctx);
      }
      return acc;
    }

    case EventExprKind::kSequenceN: {
      Result<Nfa> a = Compile(*e.children[0], ctx);
      if (!a.ok()) return a;
      Result<Nfa> acc = *a;
      for (int64_t i = 1; i < e.n; ++i) {
        acc = SequenceStep(*acc, *a, ctx);
        if (!acc.ok()) return acc;
      }
      return acc;
    }

    case EventExprKind::kChoose:
    case EventExprKind::kEvery: {
      Result<Nfa> a = Compile(*e.children[0], ctx);
      if (!a.ok()) return a;
      Result<Dfa> da = ToDfa(*a, ctx);
      if (!da.ok()) return da.status();
      Result<Dfa> counted = BuildCountingDfa(
          *da, e.n,
          e.kind == EventExprKind::kChoose ? CountCondition::kExactly
                                           : CountCondition::kModulo,
          ctx.options->max_states);
      if (!counted.ok()) return counted.status();
      return DfaToNfa(*counted);
    }

    case EventExprKind::kFa: {
      Result<Nfa> en = Compile(*e.children[0], ctx);
      if (!en.ok()) return en;
      Result<Nfa> fn = Compile(*e.children[1], ctx);
      if (!fn.ok()) return fn;
      Result<Nfa> gn = Compile(*e.children[2], ctx);
      if (!gn.ok()) return gn;
      Result<Dfa> fd = ToDfa(*fn, ctx);
      if (!fd.ok()) return fd.status();
      Result<Dfa> gd = ToDfa(*gn, ctx);
      if (!gd.ok()) return gd.status();
      Result<Dfa> first = BuildFirstNoG(*fd, *gd);
      if (!first.ok()) return first.status();
      return Nfa::Concat(*en, DfaToNfa(*first));
    }

    case EventExprKind::kFaAbs: {
      Result<Nfa> en = Compile(*e.children[0], ctx);
      if (!en.ok()) return en;
      Result<Nfa> fn = Compile(*e.children[1], ctx);
      if (!fn.ok()) return fn;
      Result<Nfa> gn = Compile(*e.children[2], ctx);
      if (!gn.ok()) return gn;
      Result<Dfa> fd = ToDfa(*fn, ctx);
      if (!fd.ok()) return fd.status();
      Result<Dfa> gd = ToDfa(*gn, ctx);
      if (!gd.ok()) return gd.status();
      return BuildFaAbs(*en, *fd, *gd, ctx.options->max_states);
    }

    case EventExprKind::kMasked:
      return Status::Internal(
          "kMasked node survived the gate-extraction rewrite");
  }
  return Status::Internal("unhandled event expression kind");
}

/// Replaces every nested masked composite by a gate atom, bottom-up, so
/// gate i's expression can only reference gates < i.
Result<EventExprPtr> RewriteGates(
    const EventExprPtr& e,
    std::vector<std::pair<EventExprPtr, MaskExprPtr>>* gates,
    size_t max_gates) {
  if (e->children.empty()) return e;

  std::vector<EventExprPtr> new_children;
  new_children.reserve(e->children.size());
  bool changed = false;
  for (const EventExprPtr& c : e->children) {
    Result<EventExprPtr> rewritten = RewriteGates(c, gates, max_gates);
    if (!rewritten.ok()) return rewritten;
    changed = changed || rewritten->get() != c.get();
    new_children.push_back(std::move(*rewritten));
  }

  if (e->kind == EventExprKind::kMasked) {
    if (gates->size() >= max_gates) {
      return Status::ResourceExhausted(StrFormat(
          "trigger uses more than %zu nested composite masks (each gate "
          "doubles the extended alphabet)",
          max_gates));
    }
    gates->emplace_back(new_children[0], e->mask);
    return EventExpr::GateAtom(static_cast<int64_t>(gates->size() - 1));
  }

  if (!changed) return e;
  auto clone = std::make_shared<EventExpr>(*e);
  clone->children = std::move(new_children);
  return EventExprPtr(std::move(clone));
}

}  // namespace

Result<Nfa> CompileToNfa(const EventExpr& expr, const Alphabet& alphabet,
                         const CompileOptions& options) {
  Ctx ctx{&alphabet, 0, &options};
  return Compile(expr, ctx);
}

Result<CompiledEvent> CompileEvent(EventExprPtr expr,
                                   const CompileOptions& options) {
  if (expr == nullptr) return Status::InvalidArgument("null event expression");
  ODE_RETURN_IF_ERROR(expr->Validate());

  CompiledEvent out;
  // Hoist root-level composite masks into runtime gates on acceptance.
  EventExprPtr core = std::move(expr);
  while (core->kind == EventExprKind::kMasked) {
    out.composite_masks.push_back(core->mask);
    core = core->children[0];
  }

  // The base alphabet covers every real atom, including those inside
  // nested masked composites (the rewrite does not touch kAtom nodes).
  Alphabet::Options alpha_opts = options.alphabet;
  alpha_opts.include_txn_markers =
      alpha_opts.include_txn_markers || options.include_txn_markers;
  Result<Alphabet> alphabet = Alphabet::Build(*core, alpha_opts);
  if (!alphabet.ok()) return alphabet.status();
  out.alphabet = std::move(*alphabet);

  // Extract gated subevents (nested composite masks), bottom-up.
  std::vector<std::pair<EventExprPtr, MaskExprPtr>> raw_gates;
  Result<EventExprPtr> rewritten =
      RewriteGates(core, &raw_gates, options.max_gates);
  if (!rewritten.ok()) return rewritten.status();
  out.expr = std::move(*rewritten);

  Ctx ctx{&out.alphabet, raw_gates.size(), &options};

  // Compile each gate to its own minimal DFA (minimality guarantees the
  // bit-insensitivity the engine's ordered gate pass relies on).
  for (auto& [inner, mask] : raw_gates) {
    Result<Nfa> gate_nfa = Compile(*inner, ctx);
    if (!gate_nfa.ok()) return gate_nfa.status();
    Result<Dfa> gate_dfa = ToDfa(*gate_nfa, ctx);
    if (!gate_dfa.ok()) return gate_dfa.status();
    GateDef gate;
    gate.inner = inner;
    gate.mask = mask;
    gate.dfa = Minimize(*gate_dfa);
    out.gates.push_back(std::move(gate));
  }

  Result<Nfa> nfa = Compile(*out.expr, ctx);
  if (!nfa.ok()) return nfa.status();

  Result<Dfa> dfa = Determinize(*nfa, options.max_states);
  if (!dfa.ok()) return dfa.status();

  out.stats.alphabet_size = ctx.ext_size();
  out.stats.nfa_states = nfa->num_states();
  out.stats.dfa_states = dfa->num_states();
  if (options.minimize) {
    out.dfa = Minimize(*dfa);
  } else {
    out.dfa = RemoveUnreachable(*dfa);
  }
  out.stats.min_dfa_states = out.dfa.num_states();
  return out;
}

}  // namespace ode
