#ifndef ODE_COMPILE_COMPILER_H_
#define ODE_COMPILE_COMPILER_H_

#include <vector>

#include "automaton/dfa.h"
#include "automaton/nfa.h"
#include "common/result.h"
#include "compile/alphabet.h"
#include "lang/event_ast.h"

namespace ode {

struct CompileOptions {
  /// Force transaction-marker symbols into the alphabet so the §6 committed
  /// transform can be applied to the result.
  bool include_txn_markers = false;
  /// Run DFA minimization (recommended; benchmarked in bench_compile).
  bool minimize = true;
  /// State-count guard for determinization and product constructions.
  size_t max_states = 1 << 20;
  /// Cap on gated subevents (nested composite masks) per trigger; each gate
  /// doubles the extended alphabet.
  size_t max_gates = 6;
  Alphabet::Options alphabet;
};

/// Size telemetry of one compilation (reported by bench_compile, E12).
struct CompileStats {
  size_t alphabet_size = 0;
  size_t nfa_states = 0;
  size_t dfa_states = 0;
  size_t min_dfa_states = 0;
};

/// A *gated subevent*: the compilation artifact for a nested composite mask
/// (`(composite) && C` appearing under another operator, as in the §7
/// coupling expressions `fa(E && C, ...)`).
///
/// A pure DFA cannot encode a nested composite mask — C must consult the
/// *current* database state at an interior history point (§3.3). We
/// therefore compile the masked composite into its own sub-DFA; at run
/// time, per posted event, the engine steps the sub-DFA and computes an
/// occurrence bit = (sub-DFA accepts) ∧ (C holds now). The outer automaton
/// runs over an *extended alphabet*: (base symbol) × (gate bits), and the
/// rewritten expression refers to the gate through a kGateAtom leaf. Gates
/// are numbered bottom-up, so gate i's DFA is insensitive to bits >= i and
/// the engine can resolve bits in one ordered pass.
struct GateDef {
  EventExprPtr inner;  ///< The masked composite (after its own rewrite).
  MaskExprPtr mask;    ///< C — evaluated against current DB state.
  Dfa dfa;             ///< Minimal DFA over the extended alphabet.
};

/// A fully compiled composite event: the §5 artifact. The DFA's transition
/// table is shared per class; each monitored object needs only the current
/// state — one integer, plus one per gate when §7-style nested masks are
/// used.
struct CompiledEvent {
  EventExprPtr expr;  ///< Rewritten expression (root masks stripped,
                      ///< nested masked composites replaced by gate atoms).
  Alphabet alphabet;  ///< Base alphabet (§5 disjointness rewrite).
  Dfa dfa;            ///< Over the extended alphabet.
  std::vector<GateDef> gates;
  /// Masks applied to the whole composite (§3.3 logical-composite event):
  /// evaluated against the *current* database state when the automaton
  /// accepts; all must hold for the event to occur.
  std::vector<MaskExprPtr> composite_masks;
  CompileStats stats;

  size_t num_gates() const { return gates.size(); }
  /// Extended alphabet size: base × 2^gates.
  size_t extended_alphabet_size() const {
    return alphabet.size() << gates.size();
  }
  /// Maps a base symbol + gate bits to the extended symbol.
  SymbolId ExtendSymbol(SymbolId base, uint32_t gate_bits) const {
    return static_cast<SymbolId>(
        (static_cast<size_t>(base) << gates.size()) | gate_bits);
  }
  /// Lifts a base-alphabet symbol set to the extended alphabet (all gate
  /// bit combinations).
  SymbolSet ExtendSet(const SymbolSet& base) const;
};

/// Compiles an event expression end-to-end: alphabet construction (§5
/// disjointness rewrite), nested-composite-mask gate extraction,
/// compositional NFA construction (§4 language algebra), subset
/// construction, minimization.
Result<CompiledEvent> CompileEvent(EventExprPtr expr,
                                   const CompileOptions& options = {});

/// The compositional core: expression → NFA over a prebuilt alphabet.
Result<Nfa> CompileToNfa(const EventExpr& expr, const Alphabet& alphabet,
                         const CompileOptions& options = {});

}  // namespace ode

#endif  // ODE_COMPILE_COMPILER_H_
