#ifndef ODE_COMPILE_DECOMPILE_H_
#define ODE_COMPILE_DECOMPILE_H_

#include "automaton/dfa.h"
#include "common/result.h"
#include "compile/alphabet.h"
#include "lang/event_ast.h"

namespace ode {

/// The converse direction of the §4 equivalence theorem: from any finite
/// automaton over a trigger alphabet, construct an event expression with
/// the same occurrence semantics. Together with the compiler this makes
/// the paper's "expressive power is exactly the regular grammars" claim
/// executable in both directions (the paper defers the proof to [10]).
///
/// The construction is classical state elimination, carried out in the
/// event algebra itself:
///   * union            → `|`
///   * concatenation    → `relative`  (L(relative(E,F)) = L(E)·L(F), §4)
///   * Kleene plus      → `relative+`
///   * one-symbol steps → `atom & !prior(!empty, !empty)` — an occurrence
///     at exactly the first history point (strings of length 1), since
///     L(!prior(!empty, !empty)) = Σ (see tests).
/// The OTHER symbol (events the trigger does not mention) is expressed as
/// `!(a₁ | … | aₖ)` over the alphabet's atoms — the complement of
/// "last event is one of the referenced ones" is "last event is OTHER".
///
/// Restrictions: the alphabet must be mask-free (masked micro-symbols
/// would need sign-conjunction masks; kUnimplemented), and the DFA must
/// not accept ε (event languages never do). Expressions produced this way
/// are large (state elimination is exponential in the worst case) — this
/// is a theory tool and test oracle, not a production path; `max_nodes`
/// guards the blowup.
Result<EventExprPtr> DecompileDfa(const Dfa& dfa, const Alphabet& alphabet,
                                  size_t max_nodes = 1 << 20);

}  // namespace ode

#endif  // ODE_COMPILE_DECOMPILE_H_
