#include "compile/combined.h"

#include <map>

#include "automaton/determinize.h"
#include "automaton/minimize.h"
#include "common/strutil.h"

namespace ode {

Result<CombinedProgram> CombinedProgram::Build(
    std::vector<TriggerSpec> specs) {
  return Build(std::move(specs), Options());
}

Result<CombinedProgram> CombinedProgram::Build(std::vector<TriggerSpec> specs,
                                               const Options& options) {
  if (specs.empty()) {
    return Status::InvalidArgument("no triggers to combine");
  }
  if (specs.size() > 64) {
    return Status::InvalidArgument(
        "at most 64 triggers can share one acceptance bitmask");
  }

  CombinedProgram out;

  // Strip root composite masks (kept per trigger) and reject gates.
  std::vector<EventExprPtr> cores;
  cores.reserve(specs.size());
  out.composite_masks_.resize(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].event == nullptr) {
      return Status::InvalidArgument("trigger without an event");
    }
    ODE_RETURN_IF_ERROR(specs[i].event->Validate());
    EventExprPtr core = specs[i].event;
    while (core->kind == EventExprKind::kMasked) {
      out.composite_masks_[i].push_back(core->mask);
      core = core->children[0];
    }
    // Nested masks would need per-trigger gate resolution.
    std::function<Status(const EventExpr&)> check =
        [&](const EventExpr& e) -> Status {
      if (e.kind == EventExprKind::kMasked) {
        return Status::Unimplemented(
            "triggers with nested composite masks (gates) cannot share a "
            "combined automaton");
      }
      for (const EventExprPtr& c : e.children) {
        ODE_RETURN_IF_ERROR(check(*c));
      }
      return Status::OK();
    };
    ODE_RETURN_IF_ERROR(check(*core));
    cores.push_back(std::move(core));
  }

  // One alphabet over the union of all triggers' logical events: build it
  // from a synthetic disjunction (the §5 rewrite then deduplicates masks
  // across triggers).
  EventExprPtr union_expr = cores[0];
  for (size_t i = 1; i < cores.size(); ++i) {
    union_expr = EventExpr::Or(union_expr, cores[i]);
  }
  Alphabet::Options aopts = options.compile.alphabet;
  aopts.include_txn_markers =
      aopts.include_txn_markers || options.compile.include_txn_markers;
  ODE_ASSIGN_OR_RETURN(out.alphabet_, Alphabet::Build(*union_expr, aopts));

  // Compile each trigger over the shared alphabet.
  for (const EventExprPtr& core : cores) {
    ODE_ASSIGN_OR_RETURN(Nfa nfa,
                         CompileToNfa(*core, out.alphabet_, options.compile));
    ODE_ASSIGN_OR_RETURN(Dfa dfa,
                         Determinize(nfa, options.compile.max_states));
    out.components_.push_back(Minimize(dfa));
  }

  // Product over reachable tuples.
  const size_t m = out.alphabet_.size();
  const size_t k = out.components_.size();
  std::map<std::vector<Dfa::State>, Dfa::State> ids;
  std::vector<std::vector<Dfa::State>> tuples;
  auto intern = [&](std::vector<Dfa::State> tuple) -> Dfa::State {
    auto [it, inserted] =
        ids.emplace(std::move(tuple), static_cast<Dfa::State>(tuples.size()));
    if (inserted) tuples.push_back(it->first);
    return it->second;
  };
  std::vector<Dfa::State> start(k);
  for (size_t i = 0; i < k; ++i) start[i] = out.components_[i].start();
  Dfa::State start_id = intern(std::move(start));

  std::vector<std::vector<Dfa::State>> rows;
  for (size_t cur = 0; cur < tuples.size(); ++cur) {
    if (tuples.size() > options.max_product_states) {
      return Status::ResourceExhausted(StrFormat(
          "combined automaton exceeded %zu product states; compile these "
          "triggers separately",
          options.max_product_states));
    }
    std::vector<Dfa::State> row(m);
    for (size_t sym = 0; sym < m; ++sym) {
      std::vector<Dfa::State> next(k);
      for (size_t i = 0; i < k; ++i) {
        next[i] = out.components_[i].Step(tuples[cur][i],
                                          static_cast<SymbolId>(sym));
      }
      row[sym] = intern(std::move(next));
    }
    rows.push_back(std::move(row));
  }

  out.dfa_ = Dfa(m, tuples.size());
  out.dfa_.SetStart(start_id);
  out.accept_masks_.assign(tuples.size(), 0);
  for (size_t s = 0; s < tuples.size(); ++s) {
    uint64_t mask = 0;
    for (size_t i = 0; i < k; ++i) {
      if (out.components_[i].accepting(tuples[s][i])) {
        mask |= (uint64_t{1} << i);
      }
    }
    out.accept_masks_[s] = mask;
    out.dfa_.SetAccepting(static_cast<Dfa::State>(s), mask != 0);
    for (size_t sym = 0; sym < m; ++sym) {
      out.dfa_.SetStep(static_cast<Dfa::State>(s),
                       static_cast<SymbolId>(sym), rows[s][sym]);
    }
  }

  out.specs_ = std::move(specs);
  return out;
}

size_t CombinedProgram::SeparateTableBytes() const {
  size_t total = 0;
  for (const Dfa& d : components_) total += d.TableBytes();
  return total;
}

}  // namespace ode
