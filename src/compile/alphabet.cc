#include "compile/alphabet.h"

#include <map>

#include "common/strutil.h"

namespace ode {

std::string MaskSlot::Key() const {
  std::string key = mask ? mask->ToString() : "<none>";
  key += "|";
  for (const ParamDecl& p : params) {
    key += p.name;
    key += ",";
  }
  return key;
}

Result<Alphabet> Alphabet::Build(const EventExpr& expr) {
  return Build(expr, Options());
}

Result<Alphabet> Alphabet::Build(const EventExpr& expr,
                                 const Options& options) {
  std::vector<const EventExpr*> atoms;
  expr.CollectAtoms(&atoms);

  Alphabet out;
  std::map<std::string, size_t> group_ids;  // canonical key -> index

  auto ensure_group = [&](const BasicEvent& spec) -> size_t {
    std::string key = spec.CanonicalKey();
    auto [it, inserted] = group_ids.emplace(key, out.groups_.size());
    if (inserted) {
      Group g;
      g.spec = spec;
      out.groups_.push_back(std::move(g));
    }
    return it->second;
  };

  for (const EventExpr* atom : atoms) {
    size_t gid = ensure_group(atom->atom);
    if (atom->atom_mask != nullptr) {
      Group& g = out.groups_[gid];
      MaskSlot slot{atom->atom_mask, atom->atom.params};
      std::string key = slot.Key();
      bool present = false;
      for (const MaskSlot& existing : g.masks) {
        if (existing.Key() == key) {
          present = true;
          break;
        }
      }
      if (!present) {
        if (g.masks.size() >= options.max_masks_per_group) {
          return Status::ResourceExhausted(StrFormat(
              "basic event '%s' carries more than %zu distinct masks; the "
              "2^k disjointness rewrite (§5) would explode",
              g.spec.ToString().c_str(), options.max_masks_per_group));
        }
        g.masks.push_back(std::move(slot));
      }
    }
  }

  if (options.include_txn_markers) {
    ensure_group(BasicEvent::Make(BasicEventKind::kTbegin,
                                  EventQualifier::kAfter));
    ensure_group(BasicEvent::Make(BasicEventKind::kTcommit,
                                  EventQualifier::kAfter));
    ensure_group(BasicEvent::Make(BasicEventKind::kTabort,
                                  EventQualifier::kAfter));
  }

  // Reject a method referenced both with and without a signature: a posted
  // call would match both groups, breaking logical-event disjointness.
  std::map<std::string, bool> method_has_bare;   // "qual:name"
  std::map<std::string, bool> method_has_arity;
  for (const Group& g : out.groups_) {
    if (g.spec.kind != BasicEventKind::kMethod) continue;
    std::string mk = std::string(EventQualifierName(g.spec.qualifier)) + ":" +
                     g.spec.method_name;
    if (g.spec.params.empty()) {
      method_has_bare[mk] = true;
    } else {
      method_has_arity[mk] = true;
    }
    if (method_has_bare[mk] && method_has_arity[mk]) {
      return Status::InvalidArgument(StrFormat(
          "method '%s' is referenced both with and without a parameter "
          "signature; the two specifications overlap and cannot be made "
          "disjoint — declare signatures consistently",
          mk.c_str()));
    }
  }

  // Assign symbol ids.
  SymbolId next = 0;
  for (Group& g : out.groups_) {
    g.base = next;
    next += static_cast<SymbolId>(g.num_symbols());
  }
  out.size_ = static_cast<size_t>(next) + 1;  // + OTHER.
  return out;
}

const Alphabet::Group* Alphabet::FindGroup(const BasicEvent& spec) const {
  std::string key = spec.CanonicalKey();
  for (const Group& g : groups_) {
    if (g.spec.CanonicalKey() == key) return &g;
  }
  return nullptr;
}

bool Alphabet::IsMaskFree() const {
  for (const Group& g : groups_) {
    if (!g.masks.empty()) return false;
  }
  return true;
}

const BasicEvent* Alphabet::SpecForSymbol(SymbolId s) const {
  for (const Group& g : groups_) {
    if (s >= g.base && s < g.base + static_cast<SymbolId>(g.num_symbols())) {
      return &g.spec;
    }
  }
  return nullptr;  // OTHER.
}

const Alphabet::Group* Alphabet::MatchGroup(const PostedEvent& event) const {
  for (const Group& g : groups_) {
    if (event.Matches(g.spec)) return &g;
  }
  return nullptr;
}

Result<SymbolSet> Alphabet::SymbolsFor(const EventExpr& atom) const {
  if (atom.kind != EventExprKind::kAtom) {
    return Status::Internal("SymbolsFor requires an atom node");
  }
  const Group* g = FindGroup(atom.atom);
  if (g == nullptr) {
    return Status::Internal(
        StrFormat("atom '%s' missing from alphabet",
                  atom.atom.ToString().c_str()));
  }
  SymbolSet out(size_);
  if (atom.atom_mask == nullptr) {
    for (size_t i = 0; i < g->num_symbols(); ++i) {
      out.Add(g->base + static_cast<SymbolId>(i));
    }
    return out;
  }
  MaskSlot probe{atom.atom_mask, atom.atom.params};
  std::string key = probe.Key();
  size_t bit = g->masks.size();
  for (size_t i = 0; i < g->masks.size(); ++i) {
    if (g->masks[i].Key() == key) {
      bit = i;
      break;
    }
  }
  if (bit == g->masks.size()) {
    return Status::Internal(
        StrFormat("mask '%s' missing from alphabet group",
                  atom.atom_mask->ToString().c_str()));
  }
  for (size_t combo = 0; combo < g->num_symbols(); ++combo) {
    if ((combo >> bit) & 1) {
      out.Add(g->base + static_cast<SymbolId>(combo));
    }
  }
  return out;
}

SymbolSet Alphabet::GroupSymbols(const BasicEvent& spec) const {
  SymbolSet out(size_);
  const Group* g = FindGroup(spec);
  if (g != nullptr) {
    for (size_t i = 0; i < g->num_symbols(); ++i) {
      out.Add(g->base + static_cast<SymbolId>(i));
    }
  }
  return out;
}

TxnMarkerSymbols Alphabet::txn_markers() const {
  TxnMarkerSymbols out;
  out.tbegin = GroupSymbols(
      BasicEvent::Make(BasicEventKind::kTbegin, EventQualifier::kAfter));
  out.tcommit = GroupSymbols(
      BasicEvent::Make(BasicEventKind::kTcommit, EventQualifier::kAfter));
  out.tabort = GroupSymbols(
      BasicEvent::Make(BasicEventKind::kTabort, EventQualifier::kAfter));
  return out;
}

const BasicEvent* Alphabet::MatchingSpec(const PostedEvent& event) const {
  const Group* g = MatchGroup(event);
  return g == nullptr ? nullptr : &g->spec;
}

Result<SymbolId> Alphabet::Classify(const PostedEvent& event,
                                    const MaskEvalFn& eval_mask) const {
  const Group* g = MatchGroup(event);
  if (g == nullptr) return other_symbol();
  size_t combo = 0;
  for (size_t i = 0; i < g->masks.size(); ++i) {
    Result<bool> v = eval_mask(g->masks[i], event);
    if (!v.ok()) return v.status();
    if (*v) combo |= (size_t{1} << i);
  }
  return g->base + static_cast<SymbolId>(combo);
}

size_t Alphabet::ClassifyCost(const PostedEvent& event) const {
  const Group* g = MatchGroup(event);
  return g == nullptr ? 0 : g->masks.size();
}

std::vector<BasicEvent> Alphabet::TimeEvents() const {
  std::vector<BasicEvent> out;
  for (const Group& g : groups_) {
    if (g.spec.kind == BasicEventKind::kTime) out.push_back(g.spec);
  }
  return out;
}

std::vector<std::string> Alphabet::SymbolNames() const {
  std::vector<std::string> names(size_);
  for (const Group& g : groups_) {
    for (size_t combo = 0; combo < g.num_symbols(); ++combo) {
      std::string name = g.spec.ToString();
      for (size_t i = 0; i < g.masks.size(); ++i) {
        name += ((combo >> i) & 1) ? " && " : " && !";
        name += "(" + g.masks[i].mask->ToString() + ")";
      }
      names[g.base + combo] = std::move(name);
    }
  }
  names[other_symbol()] = "<other>";
  return names;
}

}  // namespace ode
