#ifndef ODE_COMPILE_TRIGGER_PROGRAM_H_
#define ODE_COMPILE_TRIGGER_PROGRAM_H_

#include <optional>
#include <string>

#include "compile/compiler.h"
#include "lang/trigger_spec.h"

namespace ode {

/// How a trigger's automaton relates to transaction aborts (§6).
enum class HistoryView : uint8_t {
  /// State kept outside the object: the automaton sees the whole history
  /// including operations of transactions that later abort.
  kFull = 0,
  /// State kept as part of the object's undo-logged storage: restored on
  /// abort, so the automaton effectively sees only committed operations.
  kCommitted,
  /// State kept outside the object, but the automaton is the §6 A′
  /// pair-state transform: it sees the whole history yet *reports* the
  /// committed-history events. Functionally equivalent to kCommitted
  /// (verified by tests); exists to demonstrate/benchmark the paper's
  /// Claim.
  kCommittedViaTransform,
};

std::string_view HistoryViewName(HistoryView view);

/// A compiled trigger: the §5 per-class artifact. The DFA transition table
/// is stored once; each activated (object, trigger) pair stores a single
/// integer state. `committed_dfa` is the §6 transform of `event.dfa`,
/// built when requested.
struct TriggerProgram {
  TriggerSpec spec;
  CompiledEvent event;
  HistoryView view = HistoryView::kFull;
  std::optional<Dfa> committed_dfa;  ///< Set for kCommittedViaTransform.

  /// True when an OTHER-classified posted event provably cannot affect
  /// this trigger from any state: no gates or composite masks (those run
  /// per event / per resting-accept state), OTHER never steps into an
  /// accepting state, and every OTHER step lands in a state
  /// future-equivalent to where it left. The sequencer's publish path uses
  /// this to drop such events from the class-scope stream entirely, which
  /// keeps each lane's published sequence a pure function of the shard's
  /// WAL order — transaction-marker events vary with runtime batch
  /// boundaries and would otherwise make crash-replay dedup misalign
  /// (docs/SEQUENCER.md).
  bool other_inert = false;

  /// The automaton this trigger actually runs.
  const Dfa& ActiveDfa() const {
    return committed_dfa.has_value() ? *committed_dfa : event.dfa;
  }

  /// Bytes of shared (per-class) table storage.
  size_t SharedBytes() const { return ActiveDfa().TableBytes(); }
  /// Bytes of per-object storage — the §5 "one word per active trigger per
  /// object" claim, measured by bench_storage.
  static constexpr size_t PerObjectBytes() { return sizeof(int32_t); }
};

/// Compiles a parsed trigger declaration. For kCommittedViaTransform the
/// alphabet is forced to contain transaction-marker symbols and the §6
/// pair construction is applied (then minimized).
Result<TriggerProgram> CompileTrigger(TriggerSpec spec,
                                      HistoryView view = HistoryView::kFull,
                                      const CompileOptions& options = {});

/// Convenience: parse + compile in one step.
Result<TriggerProgram> CompileTriggerText(
    std::string_view text, HistoryView view = HistoryView::kFull,
    const CompileOptions& options = {});

}  // namespace ode

#endif  // ODE_COMPILE_TRIGGER_PROGRAM_H_
