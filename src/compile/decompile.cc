#include "compile/decompile.h"

#include <vector>

#include "common/strutil.h"

namespace ode {

namespace {

/// A language in the event algebra, split into its ε part and its nonempty
/// part (event expressions can never denote ε, so the flag is carried
/// alongside during state elimination and must vanish at the end).
struct Lang {
  bool eps = false;
  EventExprPtr expr;  // Null = no nonempty strings.
  size_t size = 0;    // Node-count estimate for the blowup guard.

  bool IsZero() const { return !eps && expr == nullptr; }
};

Lang Zero() { return Lang{}; }
Lang Epsilon() { return Lang{true, nullptr, 0}; }

Lang UnionLang(const Lang& a, const Lang& b) {
  Lang out;
  out.eps = a.eps || b.eps;
  if (a.expr != nullptr && b.expr != nullptr) {
    out.expr = EventExpr::Or(a.expr, b.expr);
    out.size = a.size + b.size + 1;
  } else if (a.expr != nullptr) {
    out.expr = a.expr;
    out.size = a.size;
  } else {
    out.expr = b.expr;
    out.size = b.size;
  }
  return out;
}

Lang ConcatLang(const Lang& a, const Lang& b) {
  Lang out;
  out.eps = a.eps && b.eps;
  std::vector<Lang> parts;
  if (a.expr != nullptr && b.eps) parts.push_back(Lang{false, a.expr, a.size});
  if (a.eps && b.expr != nullptr) parts.push_back(Lang{false, b.expr, b.size});
  if (a.expr != nullptr && b.expr != nullptr) {
    parts.push_back(Lang{false, EventExpr::Relative({a.expr, b.expr}),
                         a.size + b.size + 1});
  }
  Lang acc = Lang{out.eps, nullptr, 0};
  for (const Lang& p : parts) acc = UnionLang(acc, p);
  acc.eps = out.eps;
  return acc;
}

/// Kleene star: ε plus one-or-more repetitions (relative+, §3.4).
Lang StarLang(const Lang& a) {
  Lang out;
  out.eps = true;
  if (a.expr != nullptr) {
    out.expr = EventExpr::RelativePlus(a.expr);
    out.size = a.size + 1;
  }
  return out;
}

}  // namespace

Result<EventExprPtr> DecompileDfa(const Dfa& dfa, const Alphabet& alphabet,
                                  size_t max_nodes) {
  if (!alphabet.IsMaskFree()) {
    return Status::Unimplemented(
        "decompilation requires a mask-free alphabet (masked micro-symbols "
        "would need sign-conjunction masks)");
  }
  if (dfa.alphabet_size() != alphabet.size()) {
    return Status::InvalidArgument("DFA/alphabet size mismatch");
  }
  if (dfa.accepting(dfa.start())) {
    return Status::InvalidArgument(
        "the DFA accepts the empty string; event languages never contain ε");
  }

  const size_t m = alphabet.size();
  const size_t n = dfa.num_states();

  // Building blocks. `not_empty` = Σ⁺ (every point); `len1` = strings of
  // length exactly 1: the only points with no strictly-earlier point.
  EventExprPtr not_empty = EventExpr::Not(EventExpr::Empty());
  EventExprPtr len1 =
      EventExpr::Not(EventExpr::Prior({not_empty, not_empty}));

  // Per-symbol "last event is this symbol" atoms; OTHER = complement of
  // the referenced ones.
  std::vector<EventExprPtr> last_is(m);
  EventExprPtr any_referenced;
  for (size_t s = 0; s < m; ++s) {
    const BasicEvent* spec =
        alphabet.SpecForSymbol(static_cast<SymbolId>(s));
    if (spec == nullptr) continue;  // OTHER handled below.
    last_is[s] = EventExpr::Atom(*spec);
    any_referenced = any_referenced == nullptr
                         ? last_is[s]
                         : EventExpr::Or(any_referenced, last_is[s]);
  }
  {
    SymbolId other = alphabet.other_symbol();
    last_is[other] = any_referenced == nullptr
                         ? not_empty  // Alphabet = {OTHER} alone.
                         : EventExpr::Not(any_referenced);
  }

  /// Single-symbol language for a set of symbols: (last ∈ S) ∧ length 1.
  auto one_step = [&](const SymbolSet& set) -> Lang {
    EventExprPtr last;
    size_t count = 0;
    set.ForEach([&](SymbolId s) {
      last = last == nullptr ? last_is[s] : EventExpr::Or(last, last_is[s]);
      ++count;
    });
    if (last == nullptr) return Zero();
    return Lang{false, EventExpr::And(last, len1), count + 2};
  };

  // Generalized-automaton matrix over nodes {0 = virtual start,
  // 1..n = DFA states, n+1 = virtual end}.
  const size_t total = n + 2;
  std::vector<std::vector<Lang>> r(total, std::vector<Lang>(total));
  r[0][1 + dfa.start()] = Epsilon();
  for (size_t s = 0; s < n; ++s) {
    // Group this state's moves by target so each edge is one symbol set.
    std::vector<SymbolSet> to_target(n, SymbolSet(m));
    for (size_t sym = 0; sym < m; ++sym) {
      to_target[dfa.Step(static_cast<Dfa::State>(s),
                         static_cast<SymbolId>(sym))]
          .Add(static_cast<SymbolId>(sym));
    }
    for (size_t t = 0; t < n; ++t) {
      if (!to_target[t].Empty()) r[1 + s][1 + t] = one_step(to_target[t]);
    }
    if (dfa.accepting(static_cast<Dfa::State>(s))) {
      r[1 + s][n + 1] = Epsilon();
    }
  }

  // Eliminate DFA-state nodes one by one.
  size_t budget_used = 0;
  for (size_t k = 1; k <= n; ++k) {
    Lang loop = StarLang(r[k][k]);
    for (size_t i = 0; i < total; ++i) {
      if (i == k || r[i][k].IsZero()) continue;
      for (size_t j = 0; j < total; ++j) {
        if (j == k || r[k][j].IsZero()) continue;
        Lang path = ConcatLang(ConcatLang(r[i][k], loop), r[k][j]);
        r[i][j] = UnionLang(r[i][j], path);
        budget_used += path.size;
        if (budget_used > max_nodes) {
          return Status::ResourceExhausted(StrFormat(
              "decompilation exceeded %zu expression nodes "
              "(state elimination blowup)",
              max_nodes));
        }
      }
    }
    for (size_t i = 0; i < total; ++i) {
      r[i][k] = Zero();
      r[k][i] = Zero();
    }
  }

  Lang language = r[0][n + 1];
  if (language.eps) {
    return Status::Internal(
        "eliminated automaton accepts ε despite the start-state check");
  }
  if (language.expr == nullptr) return EventExpr::Empty();
  return language.expr;
}

}  // namespace ode
