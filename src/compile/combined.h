#ifndef ODE_COMPILE_COMBINED_H_
#define ODE_COMPILE_COMBINED_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "compile/compiler.h"
#include "lang/trigger_spec.h"

namespace ode {

/// The §5 footnote-5 optimization, implemented:
///
///   "The above description assumes one automaton definition per trigger.
///    In many cases such automata may be combined into one, resulting in a
///    more efficient monitoring; we regard this item as merely one of many
///    possible optimizations."
///
/// A CombinedProgram compiles up to 64 trigger events over ONE shared
/// alphabet and runs their product automaton: each posted event costs one
/// classification and one table step *total* (instead of one per trigger),
/// and each monitored object stores one integer for the whole group. The
/// price is the product state space (≤ ∏|Dᵢ|, guarded) and a wider shared
/// table.
///
/// Per-state acceptance is a bitmask: bit i set means trigger i's event
/// occurs at this point. Root composite masks remain per trigger and gate
/// the bits at fire time; triggers with *nested* composite masks (gates)
/// cannot be combined (kUnimplemented) — their gate bits would have to be
/// resolved per trigger anyway, forfeiting the shared step.
class CombinedProgram {
 public:
  struct Options {
    CompileOptions compile;
    size_t max_product_states = 1 << 18;
  };

  /// Compiles and combines. All specs' logical events share one alphabet
  /// (masks deduplicate across triggers by the §5 rewrite).
  static Result<CombinedProgram> Build(std::vector<TriggerSpec> specs,
                                       const Options& options);
  static Result<CombinedProgram> Build(std::vector<TriggerSpec> specs);

  size_t num_triggers() const { return specs_.size(); }
  const TriggerSpec& spec(size_t i) const { return specs_[i]; }
  const Alphabet& alphabet() const { return alphabet_; }
  const Dfa& dfa() const { return dfa_; }

  /// Bitmask of triggers whose event occurs in DFA state `s`.
  uint64_t AcceptMask(Dfa::State s) const { return accept_masks_[s]; }

  /// Root composite masks of trigger i (evaluated at fire time).
  const std::vector<MaskExprPtr>& composite_masks(size_t i) const {
    return composite_masks_[i];
  }

  /// The individual minimal DFAs the product was built from (over the
  /// shared alphabet) — exposed for tests and for the bench comparison.
  const std::vector<Dfa>& component_dfas() const { return components_; }

  /// Shared-table bytes of the product vs. the sum of the components'.
  size_t CombinedTableBytes() const { return dfa_.TableBytes(); }
  size_t SeparateTableBytes() const;

  /// Default-constructible so it can live in aggregates (TriggerGroup);
  /// a default-constructed program has no triggers and must not be run.
  CombinedProgram() = default;

 private:
  std::vector<TriggerSpec> specs_;
  Alphabet alphabet_;
  std::vector<Dfa> components_;
  std::vector<std::vector<MaskExprPtr>> composite_masks_;
  Dfa dfa_;
  std::vector<uint64_t> accept_masks_;
};

}  // namespace ode

#endif  // ODE_COMPILE_COMBINED_H_
