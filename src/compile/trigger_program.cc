#include "compile/trigger_program.h"

#include "automaton/committed_transform.h"
#include "automaton/minimize.h"

namespace ode {

std::string_view HistoryViewName(HistoryView view) {
  switch (view) {
    case HistoryView::kFull:
      return "full";
    case HistoryView::kCommitted:
      return "committed";
    case HistoryView::kCommittedViaTransform:
      return "committed-via-transform";
  }
  return "?";
}

Result<TriggerProgram> CompileTrigger(TriggerSpec spec, HistoryView view,
                                      const CompileOptions& options) {
  TriggerProgram out;
  out.view = view;

  CompileOptions opts = options;
  if (view == HistoryView::kCommittedViaTransform) {
    opts.include_txn_markers = true;
  }

  Result<CompiledEvent> compiled = CompileEvent(spec.event, opts);
  if (!compiled.ok()) return compiled.status();
  out.event = std::move(*compiled);
  out.spec = std::move(spec);

  if (view == HistoryView::kCommittedViaTransform) {
    // Marker sets live in the base alphabet; the automaton runs over the
    // gate-extended alphabet, so lift them.
    TxnMarkerSymbols base = out.event.alphabet.txn_markers();
    TxnMarkerSymbols ext;
    ext.tbegin = out.event.ExtendSet(base.tbegin);
    ext.tcommit = out.event.ExtendSet(base.tcommit);
    ext.tabort = out.event.ExtendSet(base.tabort);
    Result<Dfa> transformed =
        BuildCommittedTransform(out.event.dfa, ext, opts.max_states);
    if (!transformed.ok()) return transformed.status();
    out.committed_dfa = Minimize(*transformed);
  }
  return out;
}

Result<TriggerProgram> CompileTriggerText(std::string_view text,
                                          HistoryView view,
                                          const CompileOptions& options) {
  Result<TriggerSpec> spec = ParseTriggerSpec(text);
  if (!spec.ok()) return spec.status();
  return CompileTrigger(std::move(*spec), view, options);
}

}  // namespace ode
