#include "compile/trigger_program.h"

#include <cstdint>
#include <map>
#include <vector>

#include "automaton/committed_transform.h"
#include "automaton/minimize.h"

namespace ode {

namespace {

/// Partitions states by future occurrence behaviour: q ~ q' iff every
/// input string steps both through transitions with identical accepting
/// flags. The states' OWN flags are deliberately excluded — a resting
/// state's occurrence was already reported by the transition that entered
/// it, so two states that differ only in "just fired" are equivalent for
/// everything that happens next.
std::vector<int32_t> FutureEquivalence(const Dfa& dfa) {
  const size_t n = dfa.num_states();
  const size_t k = dfa.alphabet_size();
  std::vector<int32_t> part(n, 0);
  for (;;) {
    std::map<std::vector<int32_t>, int32_t> classes;
    std::vector<int32_t> next(n, 0);
    for (size_t q = 0; q < n; ++q) {
      std::vector<int32_t> sig;
      sig.reserve(2 * k + 1);
      sig.push_back(part[q]);
      for (size_t s = 0; s < k; ++s) {
        Dfa::State to = dfa.Step(static_cast<Dfa::State>(q),
                                 static_cast<SymbolId>(s));
        sig.push_back(dfa.accepting(to) ? 1 : 0);
        sig.push_back(part[to]);
      }
      auto [it, inserted] =
          classes.emplace(std::move(sig), static_cast<int32_t>(classes.size()));
      next[q] = it->second;
    }
    if (next == part) return part;
    part = std::move(next);
  }
}

bool ComputeOtherInert(const TriggerProgram& program) {
  // Gates step their sub-DFA on every posted event, and composite masks
  // re-evaluate against live database state whenever the automaton rests
  // accepting — both make OTHER events observable.
  if (!program.event.gates.empty()) return false;
  if (!program.event.composite_masks.empty()) return false;
  const Dfa& dfa = program.ActiveDfa();
  const SymbolId other = program.event.alphabet.other_symbol();
  if (static_cast<size_t>(other) >= dfa.alphabet_size()) return false;
  std::vector<int32_t> cls = FutureEquivalence(dfa);
  for (size_t q = 0; q < dfa.num_states(); ++q) {
    Dfa::State to = dfa.Step(static_cast<Dfa::State>(q), other);
    if (dfa.accepting(to)) return false;  // OTHER itself would fire.
    if (cls[to] != cls[static_cast<int32_t>(q)]) return false;
  }
  return true;
}

}  // namespace

std::string_view HistoryViewName(HistoryView view) {
  switch (view) {
    case HistoryView::kFull:
      return "full";
    case HistoryView::kCommitted:
      return "committed";
    case HistoryView::kCommittedViaTransform:
      return "committed-via-transform";
  }
  return "?";
}

Result<TriggerProgram> CompileTrigger(TriggerSpec spec, HistoryView view,
                                      const CompileOptions& options) {
  TriggerProgram out;
  out.view = view;

  CompileOptions opts = options;
  if (view == HistoryView::kCommittedViaTransform) {
    opts.include_txn_markers = true;
  }

  Result<CompiledEvent> compiled = CompileEvent(spec.event, opts);
  if (!compiled.ok()) return compiled.status();
  out.event = std::move(*compiled);
  out.spec = std::move(spec);

  if (view == HistoryView::kCommittedViaTransform) {
    // Marker sets live in the base alphabet; the automaton runs over the
    // gate-extended alphabet, so lift them.
    TxnMarkerSymbols base = out.event.alphabet.txn_markers();
    TxnMarkerSymbols ext;
    ext.tbegin = out.event.ExtendSet(base.tbegin);
    ext.tcommit = out.event.ExtendSet(base.tcommit);
    ext.tabort = out.event.ExtendSet(base.tabort);
    Result<Dfa> transformed =
        BuildCommittedTransform(out.event.dfa, ext, opts.max_states);
    if (!transformed.ok()) return transformed.status();
    out.committed_dfa = Minimize(*transformed);
  }
  out.other_inert = ComputeOtherInert(out);
  return out;
}

Result<TriggerProgram> CompileTriggerText(std::string_view text,
                                          HistoryView view,
                                          const CompileOptions& options) {
  Result<TriggerSpec> spec = ParseTriggerSpec(text);
  if (!spec.ok()) return spec.status();
  return CompileTrigger(std::move(*spec), view, options);
}

}  // namespace ode
