#include "analyze/group_plan.h"

#include <algorithm>
#include <numeric>
#include <random>

#include "semantics/oracle.h"

namespace ode {

namespace {

/// CombinedProgram packs acceptance into a uint64_t per state.
constexpr size_t kMaxGroupSize = 64;

size_t Find(std::vector<size_t>& parent, size_t x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];
    x = parent[x];
  }
  return x;
}

/// Validates every member's acceptance bit of the product automaton
/// against its §4 oracle on `options.oracle_histories` random histories
/// over the shared alphabet's realizable symbols. Returns false on any
/// mismatch (or when no realizable symbol exists to build histories from).
bool OracleValidate(const CombinedProgram& program,
                    const GroupPlanOptions& options) {
  const Alphabet& alphabet = program.alphabet();
  std::vector<bool> possible = ComputeAlphabetPossibleSymbols(alphabet);
  std::vector<SymbolId> realizable;
  for (size_t s = 0; s < possible.size(); ++s) {
    if (possible[s]) realizable.push_back(static_cast<SymbolId>(s));
  }
  if (realizable.empty()) return false;

  std::vector<Oracle> oracles;
  oracles.reserve(program.num_triggers());
  for (size_t i = 0; i < program.num_triggers(); ++i) {
    oracles.emplace_back(program.spec(i).event, &alphabet);
  }

  std::mt19937_64 rng(options.oracle_seed);
  std::uniform_int_distribution<size_t> pick(0, realizable.size() - 1);
  for (size_t h = 0; h < options.oracle_histories; ++h) {
    std::vector<SymbolId> history(options.oracle_history_length);
    for (SymbolId& sym : history) sym = realizable[pick(rng)];

    // Run the product automaton once; compare each member's bit with its
    // oracle at every history point.
    std::vector<uint64_t> accept(history.size());
    Dfa::State state = program.dfa().start();
    for (size_t p = 0; p < history.size(); ++p) {
      state = program.dfa().Step(state, history[p]);
      accept[p] = program.AcceptMask(state);
    }
    for (size_t i = 0; i < oracles.size(); ++i) {
      Result<std::vector<bool>> points = oracles[i].OccurrencePoints(history);
      if (!points.ok()) return false;
      for (size_t p = 0; p < history.size(); ++p) {
        if ((*points)[p] != (((accept[p] >> i) & 1) != 0)) return false;
      }
    }
  }
  return true;
}

}  // namespace

std::vector<TriggerGroupPlan> PlanTriggerGroups(
    const std::vector<TriggerSpec>& specs,
    const std::vector<PairFinding>& findings,
    const GroupPlanOptions& options) {
  std::vector<size_t> parent(specs.size());
  std::iota(parent.begin(), parent.end(), 0);
  for (const PairFinding& f : findings) {
    bool related = f.relation == PairRelation::kEquivalent ||
                   f.relation == PairRelation::kASubsumesB ||
                   f.relation == PairRelation::kBSubsumesA;
    if (!related || f.a >= specs.size() || f.b >= specs.size()) continue;
    parent[Find(parent, f.a)] = Find(parent, f.b);
  }

  std::vector<std::vector<size_t>> clusters(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    clusters[Find(parent, i)].push_back(i);
  }

  std::vector<TriggerGroupPlan> plans;
  for (const std::vector<size_t>& members : clusters) {
    if (members.size() < 2 || members.size() > kMaxGroupSize) continue;

    std::vector<TriggerSpec> group_specs;
    group_specs.reserve(members.size());
    for (size_t idx : members) group_specs.push_back(specs[idx]);
    Result<CombinedProgram> program =
        CombinedProgram::Build(std::move(group_specs), options.combined);
    if (!program.ok()) continue;  // Gates / state blowup: no suggestion.
    if (!OracleValidate(*program, options)) continue;

    TriggerGroupPlan plan;
    plan.members = members;
    for (size_t idx : members) plan.member_names.push_back(specs[idx].name);
    for (const Dfa& component : program->component_dfas()) {
      plan.separate.dfa_states += component.num_states();
    }
    plan.separate.table_bytes = program->SeparateTableBytes();
    plan.separate.steps_per_event = members.size();
    plan.combined.dfa_states = program->dfa().num_states();
    plan.combined.table_bytes = program->CombinedTableBytes();
    plan.combined.steps_per_event = 1;
    plan.oracle_histories = options.oracle_histories;
    if (options.witnesses) {
      WitnessOptions wopts = options.witness_options;
      wopts.compile = options.combined.compile;
      WitnessResult witness =
          GroupWitness(*program, plan.member_names, wopts);
      plan.witness = std::move(witness.histories);
      plan.witness_failures = witness.validation_failures;
    }
    plans.push_back(std::move(plan));
  }
  return plans;
}

}  // namespace ode
