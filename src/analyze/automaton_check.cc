#include "analyze/automaton_check.h"

#include <algorithm>
#include <deque>
#include <string>

#include "analyze/mask_check.h"
#include "automaton/determinize.h"
#include "automaton/minimize.h"

namespace ode {

std::vector<bool> ComputePossibleSymbols(const CompiledEvent& compiled) {
  const Alphabet& alphabet = compiled.alphabet;
  std::vector<bool> base(alphabet.size(), true);
  for (size_t g = 0; g < alphabet.num_groups(); ++g) {
    const std::vector<MaskSlot>& masks = alphabet.group_masks(g);
    if (masks.empty()) continue;
    std::vector<MaskTruth> truth(masks.size());
    bool any_decided = false;
    for (size_t i = 0; i < masks.size(); ++i) {
      truth[i] = AnalyzeMaskTruth(*masks[i].mask);
      any_decided |= truth[i] != MaskTruth::kUnknown;
    }
    if (!any_decided) continue;
    SymbolId first = alphabet.group_base(g);
    for (size_t bits = 0; bits < alphabet.group_num_symbols(g); ++bits) {
      for (size_t i = 0; i < masks.size(); ++i) {
        bool required = (bits >> i) & 1;
        if ((required && truth[i] == MaskTruth::kNever) ||
            (!required && truth[i] == MaskTruth::kAlways)) {
          base[first + bits] = false;
          break;
        }
      }
    }
  }
  // The DFA runs over the extended alphabet (base symbol × gate bits); a
  // gate bit can go either way, so extended feasibility is the base's.
  size_t gates = compiled.num_gates();
  if (gates == 0) return base;
  std::vector<bool> extended(compiled.extended_alphabet_size(), true);
  for (size_t s = 0; s < base.size(); ++s) {
    for (size_t bits = 0; bits < (size_t{1} << gates); ++bits) {
      extended[(s << gates) | bits] = base[s];
    }
  }
  return extended;
}

namespace {

/// States reachable from `from` via >= `min_steps` possible symbols.
std::vector<bool> Reachable(const Dfa& dfa, Dfa::State from,
                            const std::vector<bool>& possible,
                            int min_steps) {
  std::vector<bool> seen(dfa.num_states(), false);
  std::deque<Dfa::State> frontier;
  auto expand = [&](Dfa::State cur) {
    for (size_t s = 0; s < dfa.alphabet_size(); ++s) {
      if (!possible[s]) continue;
      Dfa::State to = dfa.Step(cur, static_cast<SymbolId>(s));
      if (!seen[to]) {
        seen[to] = true;
        frontier.push_back(to);
      }
    }
  };
  if (min_steps <= 0) {
    seen[from] = true;
    frontier.push_back(from);
  } else {
    expand(from);
  }
  while (!frontier.empty()) {
    Dfa::State cur = frontier.front();
    frontier.pop_front();
    expand(cur);
  }
  return seen;
}

std::vector<bool> AllPossible(const Dfa& dfa) {
  return std::vector<bool>(dfa.alphabet_size(), true);
}

}  // namespace

bool DfaEmptySigmaPlus(const Dfa& dfa, const std::vector<bool>& possible) {
  std::vector<bool> seen = Reachable(dfa, dfa.start(), possible, 1);
  for (size_t s = 0; s < dfa.num_states(); ++s) {
    if (seen[s] && dfa.accepting(static_cast<Dfa::State>(s))) return false;
  }
  return true;
}

bool DfaUniversalSigmaPlus(const Dfa& dfa, const std::vector<bool>& possible) {
  if (std::none_of(possible.begin(), possible.end(),
                   [](bool b) { return b; })) {
    return false;  // No realizable history at all.
  }
  std::vector<bool> seen = Reachable(dfa, dfa.start(), possible, 1);
  for (size_t s = 0; s < dfa.num_states(); ++s) {
    if (seen[s] && !dfa.accepting(static_cast<Dfa::State>(s))) return false;
  }
  return true;
}

StateReport AnalyzeStates(const Dfa& dfa, const std::vector<bool>& possible) {
  StateReport report;
  report.total = dfa.num_states();
  std::vector<bool> reachable = Reachable(dfa, dfa.start(), possible, 0);

  // Live = some accepting state is reachable (>= 0 steps): one backward
  // closure from the accepting states over the reversed transitions.
  std::vector<std::vector<Dfa::State>> reverse(dfa.num_states());
  for (size_t s = 0; s < dfa.num_states(); ++s) {
    for (size_t sym = 0; sym < dfa.alphabet_size(); ++sym) {
      if (!possible[sym]) continue;
      reverse[dfa.Step(static_cast<Dfa::State>(s),
                       static_cast<SymbolId>(sym))]
          .push_back(static_cast<Dfa::State>(s));
    }
  }
  std::vector<bool> live(dfa.num_states(), false);
  std::deque<Dfa::State> frontier;
  for (size_t s = 0; s < dfa.num_states(); ++s) {
    if (dfa.accepting(static_cast<Dfa::State>(s))) {
      live[s] = true;
      frontier.push_back(static_cast<Dfa::State>(s));
    }
  }
  while (!frontier.empty()) {
    Dfa::State cur = frontier.front();
    frontier.pop_front();
    for (Dfa::State pred : reverse[cur]) {
      if (!live[pred]) {
        live[pred] = true;
        frontier.push_back(pred);
      }
    }
  }
  for (size_t s = 0; s < dfa.num_states(); ++s) {
    if (!reachable[s]) {
      ++report.unreachable;
    } else if (!live[s]) {
      ++report.dead;
    }
  }
  return report;
}

namespace {

/// Strips the root chain of kMasked nodes, collecting the canonical text of
/// each stripped mask (the compiler does the same into composite_masks).
EventExprPtr StripRootMasks(EventExprPtr e, std::vector<std::string>* masks) {
  while (e->kind == EventExprKind::kMasked) {
    masks->push_back(e->mask->ToString());
    e = e->children[0];
  }
  return e;
}

bool HasMaskedNode(const EventExpr& e) {
  if (e.kind == EventExprKind::kMasked) return true;
  for (const EventExprPtr& c : e.children) {
    if (HasMaskedNode(*c)) return true;
  }
  return false;
}

}  // namespace

Result<PairRelation> CompareEventExprs(const EventExprPtr& a,
                                       const EventExprPtr& b,
                                       const CompileOptions& options) {
  std::vector<std::string> masks_a, masks_b;
  EventExprPtr core_a = StripRootMasks(a, &masks_a);
  EventExprPtr core_b = StripRootMasks(b, &masks_b);

  // Root masks gate firing on run-time state; the languages are comparable
  // only when both triggers apply the same set of them.
  std::sort(masks_a.begin(), masks_a.end());
  std::sort(masks_b.begin(), masks_b.end());
  masks_a.erase(std::unique(masks_a.begin(), masks_a.end()), masks_a.end());
  masks_b.erase(std::unique(masks_b.begin(), masks_b.end()), masks_b.end());
  if (masks_a != masks_b) return PairRelation::kIncomparable;

  // Nested composite masks compile to gates whose bits depend on run-time
  // state — not a regular-language question anymore.
  if (HasMaskedNode(*core_a) || HasMaskedNode(*core_b)) {
    return PairRelation::kIncomparable;
  }

  // One alphabet over both expressions, so their DFAs share symbols. Build
  // can fail (e.g. one trigger uses a signature the other omits): that is
  // an overlap the §5 rewrite cannot express, hence incomparable.
  EventExprPtr joined = EventExpr::Or(core_a, core_b);
  Result<Alphabet> joint = Alphabet::Build(*joined, options.alphabet);
  if (!joint.ok()) return PairRelation::kIncomparable;

  ODE_ASSIGN_OR_RETURN(Nfa nfa_a, CompileToNfa(*core_a, *joint, options));
  ODE_ASSIGN_OR_RETURN(Nfa nfa_b, CompileToNfa(*core_b, *joint, options));
  ODE_ASSIGN_OR_RETURN(Dfa dfa_a, Determinize(nfa_a, options.max_states));
  ODE_ASSIGN_OR_RETURN(Dfa dfa_b, Determinize(nfa_b, options.max_states));

  if (DfaEquivalent(dfa_a, dfa_b)) return PairRelation::kEquivalent;

  std::vector<bool> all_a = AllPossible(dfa_a);
  // L(b) ⊆ L(a)  iff  L(b) ∩ (Σ⁺ \ L(a)) = ∅. Event languages never
  // contain ε, so plain emptiness of the product suffices.
  Dfa not_a = ComplementSigmaPlus(dfa_a);
  if (DfaEmptySigmaPlus(IntersectDfa(dfa_b, not_a), all_a)) {
    return PairRelation::kASubsumesB;
  }
  Dfa not_b = ComplementSigmaPlus(dfa_b);
  if (DfaEmptySigmaPlus(IntersectDfa(dfa_a, not_b), all_a)) {
    return PairRelation::kBSubsumesA;
  }
  return PairRelation::kDistinct;
}

}  // namespace ode
