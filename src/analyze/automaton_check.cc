#include "analyze/automaton_check.h"

#include <algorithm>
#include <deque>
#include <string>

#include "analyze/mask_check.h"
#include "analyze/mask_solver.h"
#include "automaton/determinize.h"
#include "automaton/minimize.h"

namespace ode {

namespace {

/// Largest mask group the solver sweeps for joint infeasibility: 2^6
/// sign patterns × a DNF check each is the point past which the sweep
/// costs more than the pruning is worth.
constexpr size_t kMaxSolverGroupMasks = 6;

}  // namespace

std::vector<bool> ComputeAlphabetPossibleSymbols(const Alphabet& alphabet) {
  std::vector<bool> base(alphabet.size(), true);
  for (size_t g = 0; g < alphabet.num_groups(); ++g) {
    const std::vector<MaskSlot>& masks = alphabet.group_masks(g);
    if (masks.empty()) continue;
    // Parameters declared with integral types make the solver's gap cuts
    // sound for this group: `q > 1 && q < 2` over a declared `int q` has
    // no realizable micro-symbol asserting both.
    MaskSolver::Options solver_options;
    AddIntegerParams(alphabet.group_spec(g).params, &solver_options);
    for (const MaskSlot& slot : masks) {
      AddIntegerParams(slot.params, &solver_options);
    }
    MaskSolver solver(std::move(solver_options));
    std::vector<MaskTruth> truth(masks.size());
    for (size_t i = 0; i < masks.size(); ++i) {
      truth[i] = AnalyzeMaskTruth(*masks[i].mask);
      // The interval engine is integer-blind; give the undecided masks a
      // second look with the integer-aware solver.
      if (truth[i] == MaskTruth::kUnknown) {
        truth[i] = solver.Truth(*masks[i].mask);
      }
    }
    bool sweep_conjunctions = masks.size() >= 2 &&
                              masks.size() <= kMaxSolverGroupMasks;
    SymbolId first = alphabet.group_base(g);
    for (size_t bits = 0; bits < alphabet.group_num_symbols(g); ++bits) {
      bool possible = true;
      for (size_t i = 0; i < masks.size(); ++i) {
        bool required = (bits >> i) & 1;
        if ((required && truth[i] == MaskTruth::kNever) ||
            (!required && truth[i] == MaskTruth::kAlways)) {
          possible = false;
          break;
        }
      }
      if (possible && sweep_conjunctions) {
        // Per-mask truth passed; the *joint* sign assignment may still be
        // contradictory (`q > 100` asserted while `q > 50` is denied).
        std::vector<MaskSolver::SignedMask> conj(masks.size());
        for (size_t i = 0; i < masks.size(); ++i) {
          conj[i] = {masks[i].mask.get(), ((bits >> i) & 1) != 0};
        }
        possible = solver.ConjunctionSatisfiable(conj);
      }
      base[first + bits] = possible;
    }
  }
  return base;
}

std::vector<bool> ComputePossibleSymbols(const CompiledEvent& compiled) {
  const Alphabet& alphabet = compiled.alphabet;
  std::vector<bool> base = ComputeAlphabetPossibleSymbols(alphabet);
  // The DFA runs over the extended alphabet (base symbol × gate bits); a
  // gate bit can go either way, so extended feasibility is the base's.
  size_t gates = compiled.num_gates();
  if (gates == 0) return base;
  std::vector<bool> extended(compiled.extended_alphabet_size(), true);
  for (size_t s = 0; s < base.size(); ++s) {
    for (size_t bits = 0; bits < (size_t{1} << gates); ++bits) {
      extended[(s << gates) | bits] = base[s];
    }
  }
  return extended;
}

namespace {

/// States reachable from `from` via >= `min_steps` possible symbols.
std::vector<bool> Reachable(const Dfa& dfa, Dfa::State from,
                            const std::vector<bool>& possible,
                            int min_steps) {
  std::vector<bool> seen(dfa.num_states(), false);
  std::deque<Dfa::State> frontier;
  auto expand = [&](Dfa::State cur) {
    for (size_t s = 0; s < dfa.alphabet_size(); ++s) {
      if (!possible[s]) continue;
      Dfa::State to = dfa.Step(cur, static_cast<SymbolId>(s));
      if (!seen[to]) {
        seen[to] = true;
        frontier.push_back(to);
      }
    }
  };
  if (min_steps <= 0) {
    seen[from] = true;
    frontier.push_back(from);
  } else {
    expand(from);
  }
  while (!frontier.empty()) {
    Dfa::State cur = frontier.front();
    frontier.pop_front();
    expand(cur);
  }
  return seen;
}

}  // namespace

bool DfaEmptySigmaPlus(const Dfa& dfa, const std::vector<bool>& possible) {
  std::vector<bool> seen = Reachable(dfa, dfa.start(), possible, 1);
  for (size_t s = 0; s < dfa.num_states(); ++s) {
    if (seen[s] && dfa.accepting(static_cast<Dfa::State>(s))) return false;
  }
  return true;
}

bool DfaUniversalSigmaPlus(const Dfa& dfa, const std::vector<bool>& possible) {
  if (std::none_of(possible.begin(), possible.end(),
                   [](bool b) { return b; })) {
    return false;  // No realizable history at all.
  }
  std::vector<bool> seen = Reachable(dfa, dfa.start(), possible, 1);
  for (size_t s = 0; s < dfa.num_states(); ++s) {
    if (seen[s] && !dfa.accepting(static_cast<Dfa::State>(s))) return false;
  }
  return true;
}

StateReport AnalyzeStates(const Dfa& dfa, const std::vector<bool>& possible) {
  StateReport report;
  report.total = dfa.num_states();
  std::vector<bool> reachable = Reachable(dfa, dfa.start(), possible, 0);

  // Live = some accepting state is reachable (>= 0 steps): one backward
  // closure from the accepting states over the reversed transitions.
  std::vector<std::vector<Dfa::State>> reverse(dfa.num_states());
  for (size_t s = 0; s < dfa.num_states(); ++s) {
    for (size_t sym = 0; sym < dfa.alphabet_size(); ++sym) {
      if (!possible[sym]) continue;
      reverse[dfa.Step(static_cast<Dfa::State>(s),
                       static_cast<SymbolId>(sym))]
          .push_back(static_cast<Dfa::State>(s));
    }
  }
  std::vector<bool> live(dfa.num_states(), false);
  std::deque<Dfa::State> frontier;
  for (size_t s = 0; s < dfa.num_states(); ++s) {
    if (dfa.accepting(static_cast<Dfa::State>(s))) {
      live[s] = true;
      frontier.push_back(static_cast<Dfa::State>(s));
    }
  }
  while (!frontier.empty()) {
    Dfa::State cur = frontier.front();
    frontier.pop_front();
    for (Dfa::State pred : reverse[cur]) {
      if (!live[pred]) {
        live[pred] = true;
        frontier.push_back(pred);
      }
    }
  }
  for (size_t s = 0; s < dfa.num_states(); ++s) {
    if (!reachable[s]) {
      ++report.unreachable;
    } else if (!live[s]) {
      ++report.dead;
    }
  }
  return report;
}

namespace {

/// Strips the root chain of kMasked nodes, collecting each stripped mask
/// (the compiler does the same into composite_masks). Masks are deduped by
/// canonical text, sorted for set comparison.
struct RootMasks {
  std::vector<std::string> texts;   ///< Sorted, unique canonical texts.
  std::vector<MaskExprPtr> exprs;   ///< In the same order as `texts`.
};

EventExprPtr StripRootMasks(EventExprPtr e, RootMasks* masks) {
  std::vector<std::pair<std::string, MaskExprPtr>> found;
  while (e->kind == EventExprKind::kMasked) {
    found.emplace_back(e->mask->ToString(), e->mask);
    e = e->children[0];
  }
  std::sort(found.begin(), found.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  for (auto& [text, expr] : found) {
    if (!masks->texts.empty() && masks->texts.back() == text) continue;
    masks->texts.push_back(std::move(text));
    masks->exprs.push_back(std::move(expr));
  }
  return e;
}

/// The conjunction of a stripped root-mask set as one MaskExpr (the empty
/// set is the mask `true`).
MaskExprPtr MaskConjunction(const RootMasks& masks) {
  if (masks.exprs.empty()) return MaskExpr::Literal(Value(true));
  MaskExprPtr conj = masks.exprs[0];
  for (size_t i = 1; i < masks.exprs.size(); ++i) {
    conj = MaskExpr::And(conj, masks.exprs[i]);
  }
  return conj;
}

bool HasMaskedNode(const EventExpr& e) {
  if (e.kind == EventExprKind::kMasked) return true;
  for (const EventExprPtr& c : e.children) {
    if (HasMaskedNode(*c)) return true;
  }
  return false;
}

}  // namespace

Result<PairComparison> CompareEventExprsDetailed(const EventExprPtr& a,
                                                 const EventExprPtr& b,
                                                 const CompileOptions& options) {
  PairComparison result;
  RootMasks masks_a, masks_b;
  EventExprPtr core_a = StripRootMasks(a, &masks_a);
  EventExprPtr core_b = StripRootMasks(b, &masks_b);

  // Root masks gate firing on run-time state. With equal sets the gates
  // cancel and the core languages decide the relation outright. With
  // differing sets, the solver may still prove one conjunction entails the
  // other — then containment (not equivalence) verdicts survive, flagged
  // via_mask_implication.
  bool masks_equal = masks_a.texts == masks_b.texts;
  bool a_implies_b = masks_equal;
  bool b_implies_a = masks_equal;
  if (!masks_equal) {
    MaskSolver solver;
    MaskExprPtr conj_a = MaskConjunction(masks_a);
    MaskExprPtr conj_b = MaskConjunction(masks_b);
    a_implies_b = solver.Implies(*conj_a, *conj_b);
    b_implies_a = solver.Implies(*conj_b, *conj_a);
    if (!a_implies_b && !b_implies_a) return result;  // kIncomparable.
  }

  // Nested composite masks compile to gates whose bits depend on run-time
  // state — not a regular-language question anymore.
  if (HasMaskedNode(*core_a) || HasMaskedNode(*core_b)) {
    return result;  // kIncomparable.
  }

  // One alphabet over both expressions, so their DFAs share symbols. Build
  // can fail (e.g. one trigger uses a signature the other omits): that is
  // an overlap the §5 rewrite cannot express, hence incomparable.
  EventExprPtr joined = EventExpr::Or(core_a, core_b);
  Result<Alphabet> joint = Alphabet::Build(*joined, options.alphabet);
  if (!joint.ok()) return result;  // kIncomparable.

  ODE_ASSIGN_OR_RETURN(Nfa nfa_a, CompileToNfa(*core_a, *joint, options));
  ODE_ASSIGN_OR_RETURN(Nfa nfa_b, CompileToNfa(*core_b, *joint, options));
  ODE_ASSIGN_OR_RETURN(Dfa dfa_a, Determinize(nfa_a, options.max_states));
  ODE_ASSIGN_OR_RETURN(Dfa dfa_b, Determinize(nfa_b, options.max_states));

  // Containment is decided over *realizable* joint symbols only: a
  // micro-symbol whose signed mask conjunction the solver refutes cannot
  // occur in any history, so strings using it don't witness distinctness.
  std::vector<bool> possible = ComputeAlphabetPossibleSymbols(*joint);
  // L(b) ⊆ L(a)  iff  L(b) ∩ (Σ⁺ \ L(a)) = ∅. Event languages never
  // contain ε, so plain emptiness of the product suffices.
  Dfa not_a = ComplementSigmaPlus(dfa_a);
  Dfa not_b = ComplementSigmaPlus(dfa_b);
  bool core_b_in_a = DfaEmptySigmaPlus(IntersectDfa(dfa_b, not_a), possible);
  bool core_a_in_b = DfaEmptySigmaPlus(IntersectDfa(dfa_a, not_b), possible);

  // Firings(x) ⊆ firings(y) needs both the core-language containment and
  // the mask-conjunction implication in the same direction.
  bool b_in_a = core_b_in_a && b_implies_a;
  bool a_in_b = core_a_in_b && a_implies_b;
  result.via_mask_implication = !masks_equal;
  if (a_in_b && b_in_a) {
    result.relation = PairRelation::kEquivalent;
  } else if (b_in_a) {
    result.relation = PairRelation::kASubsumesB;
  } else if (a_in_b) {
    result.relation = PairRelation::kBSubsumesA;
  } else if (masks_equal) {
    result.relation = PairRelation::kDistinct;
  }  // Differing masks without proven containment: kIncomparable.
  return result;
}

Result<PairRelation> CompareEventExprs(const EventExprPtr& a,
                                       const EventExprPtr& b,
                                       const CompileOptions& options) {
  ODE_ASSIGN_OR_RETURN(PairComparison cmp,
                       CompareEventExprsDetailed(a, b, options));
  return cmp.relation;
}

}  // namespace ode
