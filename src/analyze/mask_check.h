#ifndef ODE_ANALYZE_MASK_CHECK_H_
#define ODE_ANALYZE_MASK_CHECK_H_

#include <optional>

#include "common/value.h"
#include "mask/mask_ast.h"

namespace ode {

/// Three-valued static truth of a mask expression.
///
/// kNever / kAlways are sound under the assumption that the mask evaluates
/// without a runtime error: comparisons used for interval reasoning assume
/// their non-constant side is numeric (a non-numeric operand makes the
/// whole evaluation error out at run time, in which case the logical event
/// does not occur either way). kUnknown is the safe default.
enum class MaskTruth : uint8_t {
  kUnknown = 0,
  kNever,   ///< The mask cannot evaluate to true.
  kAlways,  ///< The mask cannot evaluate to false.
};

/// Constant-folds a mask expression built from literals and the mask
/// operators; nullopt when any leaf is an identifier, member access, or
/// host call, or when the arithmetic errors (division by zero, type
/// mismatch). Short-circuits `false && x` and `true || x` even when `x`
/// does not fold (masks are side-effect free, §3.2).
std::optional<Value> FoldMaskConst(const MaskExpr& mask);

/// Decides the static truth of a mask via constant folding, boolean
/// polarity (`x && !x`, `x || !x`) and interval reasoning over comparisons
/// between a common subexpression and constants:
///
///   amount > 100 && amount < 50     -> kNever
///   q >= 0 || q < 100               -> kAlways
///   balance * 2 > 10 && balance * 2 < 5  -> kNever  (keyed by canonical text)
///
/// Everything it cannot decide is kUnknown.
MaskTruth AnalyzeMaskTruth(const MaskExpr& mask);

}  // namespace ode

#endif  // ODE_ANALYZE_MASK_CHECK_H_
