#ifndef ODE_ANALYZE_FIX_H_
#define ODE_ANALYZE_FIX_H_

#include <string>
#include <vector>

#include "analyze/analyzer.h"
#include "common/result.h"
#include "lang/trigger_spec.h"

namespace ode {

/// One byte-range replacement over the *original* source: replace bytes
/// [byte_start, byte_end) with `replacement`. byte_start == byte_end is a
/// pure insertion.
struct FixEdit {
  size_t byte_start = 0;
  size_t byte_end = 0;
  std::string replacement;
};

/// One machine-applied rewrite of a trigger declaration.
struct AppliedFix {
  std::string trigger;       ///< Trigger name (or placeholder).
  std::string description;   ///< What changed, human-readable.
  std::string code;          ///< The lint code the rewrite targets
                             ///< (L002 / L007 / L008).
  /// Machine-applicable edit span over the *original* source (legacy
  /// schema-v4 form): replacing bytes [byte_start, byte_end) with
  /// `replacement` applies the whole declaration's verified rewrite. Fixes
  /// from the same declaration share one span; appliers must deduplicate
  /// by (byte_start, byte_end). has_span=false for fixes produced outside
  /// a source context.
  bool has_span = false;
  size_t byte_start = 0;
  size_t byte_end = 0;
  std::string replacement;
  /// Schema v5: the same rewrite as minimal disjoint edits (sorted by
  /// byte_start, non-overlapping), computed by token-level diff against
  /// the canonical rewrite and verified by apply-and-reparse. A rewrite
  /// touching disjoint spans of one declaration carries one edit per span;
  /// when the minimal form cannot be verified this degenerates to the
  /// single whole-declaration span above. Empty iff has_span is false.
  /// Fixes from the same declaration share the edit list.
  std::vector<FixEdit> edits;
};

/// Result of a --fix pass over one spec source.
struct FixResult {
  /// The source with every *verified* rewrite spliced in. Comments outside
  /// rewritten declarations survive; a rewritten declaration is replaced
  /// by its canonical one-line form.
  std::string fixed_source;
  std::vector<AppliedFix> applied;
  /// Rewrites that were produced but failed semantics verification — they
  /// are suppressed, never spliced. A non-zero count is a rewriter bug
  /// worth reporting; the output is still safe.
  size_t suppressed = 0;
};

struct FixOptions {
  CompileOptions compile;
  /// Random histories per rewrite for the §4-oracle agreement check
  /// (in addition to DFA equivalence over realizable joint symbols).
  size_t oracle_histories = 64;
  size_t oracle_history_length = 10;
  uint64_t oracle_seed = 0x0defced;
};

/// Verifies that `fixed` preserves the semantics of `original`: the two
/// event expressions must be DFA-equivalent over the realizable joint
/// alphabet (root-mask differences resolved by solver implication both
/// ways), AND agree with the §4 denotational oracle at every point of
/// `options.oracle_histories` random realizable histories. Returns false
/// on any doubt — a fix failing this check is suppressed, not offered.
bool VerifyRewrite(const EventExprPtr& original, const EventExprPtr& fixed,
                   const FixOptions& options = {});

/// Rewrites one trigger's event expression, dropping always-true masks
/// (L002), collapsing degenerate `relative/sequence/every 1` counts
/// (L007), pruning `empty` operands of `|` (L008), and replacing
/// solver-proven-constant mask subterms by literals. Returns the rewritten
/// expression (== `event` when nothing applies) and appends a description
/// per rewrite to `descriptions`.
EventExprPtr RewriteEventExpr(const EventExprPtr& event,
                              std::vector<AppliedFix>* fixes,
                              const std::string& trigger_name);

/// The --fix entry point: splits `source` into declaration blocks exactly
/// like AnalyzeSpecSource, rewrites each parseable trigger, verifies every
/// rewrite with VerifyRewrite, and splices only the verified ones back
/// into the source (replacing the declaration's token range, so comments
/// before/after the declaration survive). Unparseable blocks are left
/// untouched.
FixResult FixSpecSource(std::string_view source, const FixOptions& options = {});

}  // namespace ode

#endif  // ODE_ANALYZE_FIX_H_
