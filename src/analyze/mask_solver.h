#ifndef ODE_ANALYZE_MASK_SOLVER_H_
#define ODE_ANALYZE_MASK_SOLVER_H_

#include <utility>
#include <vector>

#include "analyze/mask_check.h"
#include "mask/mask_ast.h"

namespace ode {

/// A small linear-arithmetic satisfiability solver for mask expressions —
/// the engine behind the upgraded L001/L002 verdicts, cross-mask
/// implication (A007), micro-symbol feasibility pruning, and the `--fix`
/// constant-atom simplifier.
///
/// ## What it decides
///
/// The mask is rewritten into disjunctive normal form (negations pushed to
/// the leaves, `||` split into clauses, `!=` split into `< || >`). Each
/// clause is a conjunction of
///
///   * linear atoms  Σ aᵢ·xᵢ + c ⋈ 0   with ⋈ ∈ {<, <=} after
///     normalization (equalities expand to a <=-pair), and
///   * opaque boolean literals (a bare identifier, host call, string
///     comparison, ... asserted or denied).
///
/// A *variable* xᵢ is the canonical text of a maximal non-linearizable
/// subterm: `q * 2` is linear in the variable `q`, while `f(q)`, `a.b`,
/// `q * r`, and `q % 3` each become one atomic variable. Clause
/// satisfiability is then decided by Fourier–Motzkin elimination over the
/// rationals (a clause with more than `max_vars` distinct variables is
/// conservatively treated as satisfiable).
///
/// ## Soundness envelope
///
/// Verdicts are claims over *real-valued* variables, evaluated without
/// runtime error — the same envelope documented for MaskTruth: a clause
/// unsatisfiable over the reals is certainly unsatisfiable over runtime
/// numerics, so kNever/kAlways are sound; integer-only gaps
/// (`q > 1 && q < 2`) stay kUnknown. Constant comparisons near the
/// floating-point noise floor are resolved conservatively (a contradiction
/// must clear a small tolerance before a clause is declared empty).
class MaskSolver {
 public:
  struct Options {
    /// DNF clause cap; conversion past it gives up (kUnknown).
    size_t max_clauses = 64;
    /// Distinct linear variables per clause Fourier–Motzkin will attempt.
    size_t max_vars = 3;
    /// Inequality-count cap during elimination (quadratic growth guard).
    size_t max_constraints = 128;
  };

  MaskSolver() = default;
  explicit MaskSolver(Options options) : options_(options) {}

  /// Three-valued truth of one mask. Strictly extends the interval
  /// engine's verdicts: everything it decided stays decided, and linear
  /// multi-variable contradictions/tautologies are added.
  MaskTruth Truth(const MaskExpr& mask) const;

  /// True iff `a && !b` is unsatisfiable, i.e. every assignment making `a`
  /// true makes `b` true. False means "not proved" (never "disproved").
  bool Implies(const MaskExpr& a, const MaskExpr& b) const;

  /// One signed mask of a conjunction: `positive` asserts the mask,
  /// otherwise its negation is asserted.
  struct SignedMask {
    const MaskExpr* mask = nullptr;
    bool positive = true;
  };

  /// False iff the conjunction of the signed masks is provably
  /// unsatisfiable — the micro-symbol feasibility question (§5: a symbol's
  /// sign assignment over its group's masks). True means satisfiable *or
  /// undecided*.
  bool ConjunctionSatisfiable(const std::vector<SignedMask>& literals) const;

 private:
  Options options_;
};

/// Convenience: MaskSolver{}.Truth(mask).
MaskTruth SolveMaskTruth(const MaskExpr& mask);

}  // namespace ode

#endif  // ODE_ANALYZE_MASK_SOLVER_H_
