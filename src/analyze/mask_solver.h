#ifndef ODE_ANALYZE_MASK_SOLVER_H_
#define ODE_ANALYZE_MASK_SOLVER_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analyze/mask_check.h"
#include "event/basic_event.h"
#include "mask/mask_ast.h"

namespace ode {

/// A small linear-arithmetic satisfiability solver for mask expressions —
/// the engine behind the upgraded L001/L002 verdicts, cross-mask
/// implication (A007), micro-symbol feasibility pruning, the `--fix`
/// constant-atom simplifier, and the witness engine's concrete argument
/// extraction.
///
/// ## What it decides
///
/// The mask is rewritten into disjunctive normal form (negations pushed to
/// the leaves, `||` split into clauses, `!=` split into `< || >`). Each
/// clause is a conjunction of
///
///   * linear atoms  Σ aᵢ·xᵢ + c ⋈ 0   with ⋈ ∈ {<, <=} after
///     normalization (equalities expand to a <=-pair), and
///   * opaque boolean literals (a bare identifier, host call, string
///     comparison, ... asserted or denied).
///
/// A *variable* xᵢ is the canonical text of a maximal non-linearizable
/// subterm: `q * 2` is linear in the variable `q`, while `f(q)`, `a.b`,
/// `q * r`, and `q % 3` each become one atomic variable. Clause
/// satisfiability is then decided by Fourier–Motzkin elimination with a
/// greedy elimination ordering (the variable with the fewest lower×upper
/// pairings goes first) and a bounded-work fallback: elimination stops
/// when `max_constraints` would be exceeded, but any constant
/// contradiction already derived still yields a sound UNSAT.
///
/// ## Integer-aware reasoning (gap cuts)
///
/// Variables listed in `Options::integer_vars` (or all of them under
/// `assume_all_integers`) are known to range over the integers. For any
/// constraint whose variables are all integral and whose coefficients are
/// integers, the solver applies Omega-test-style normalization before and
/// during elimination: the coefficient gcd is divided out and the constant
/// is tightened to the nearest integer bound (a strict `< c` becomes
/// `<= ceil(c) - 1`). This closes integer-only gaps: `q > 1 && q < 2`
/// over the integers tightens to `q >= 2 && q <= 1`, a contradiction the
/// real-valued engine cannot see. Tightening preserves exactly the integer
/// solution set of each constraint, so kNever/UNSAT verdicts stay sound;
/// satisfiability over the tightened reals does NOT prove an integer
/// model exists — that is what `FindModel`'s verification pass is for.
///
/// ## Soundness envelope
///
/// Verdicts are claims over real-valued variables (integer-valued for the
/// declared integer variables), evaluated without runtime error — the
/// same envelope documented for MaskTruth. Constant comparisons near the
/// floating-point noise floor are resolved conservatively (a contradiction
/// must clear a small tolerance before a clause is declared empty).
class MaskSolver {
 public:
  struct Options {
    /// DNF clause cap; conversion past it gives up (kUnknown).
    size_t max_clauses = 64;
    /// Variable-elimination steps attempted per clause. The former hard
    /// ≤3-variable cap is lifted: clauses with more variables are handled
    /// by the greedy elimination ordering until this step budget or
    /// `max_constraints` runs out (then: conservatively satisfiable).
    size_t max_vars = 16;
    /// Inequality-count cap during elimination (quadratic growth guard).
    size_t max_constraints = 256;
    /// Variables (by canonical text, e.g. "q") known to be integer-valued;
    /// enables gap cuts on constraints over them.
    std::set<std::string> integer_vars;
    /// Treat every variable as integer-valued (property tests; callers
    /// that know the whole domain is integral).
    bool assume_all_integers = false;
  };

  MaskSolver() = default;
  explicit MaskSolver(Options options) : options_(std::move(options)) {}

  const Options& options() const { return options_; }

  /// Three-valued truth of one mask. Strictly extends the interval
  /// engine's verdicts: everything it decided stays decided, and linear
  /// multi-variable contradictions/tautologies are added. When `why` is
  /// non-null and the verdict is kNever/kAlways, it receives a
  /// human-readable certificate naming the contradicting constraints.
  MaskTruth Truth(const MaskExpr& mask, std::string* why = nullptr) const;

  /// True iff `a && !b` is unsatisfiable, i.e. every assignment making `a`
  /// true makes `b` true. False means "not proved" (never "disproved").
  bool Implies(const MaskExpr& a, const MaskExpr& b) const;

  /// One signed mask of a conjunction: `positive` asserts the mask,
  /// otherwise its negation is asserted.
  struct SignedMask {
    const MaskExpr* mask = nullptr;
    bool positive = true;
  };

  /// False iff the conjunction of the signed masks is provably
  /// unsatisfiable — the micro-symbol feasibility question (§5: a symbol's
  /// sign assignment over its group's masks). True means satisfiable *or
  /// undecided*.
  bool ConjunctionSatisfiable(const std::vector<SignedMask>& literals) const;

  /// UNSAT certificate for a signed-mask conjunction: a one-line
  /// explanation of the contradiction ("q >= 2 (gap cut from (q > 1))
  /// contradicts q <= 1 ...") when the conjunction is provably
  /// unsatisfiable, nullopt otherwise. `RefuteConjunction(x) != nullopt`
  /// iff `!ConjunctionSatisfiable(x)`.
  std::optional<std::string> RefuteConjunction(
      const std::vector<SignedMask>& literals) const;

  /// A satisfying assignment produced by Fourier–Motzkin back-substitution:
  /// concrete numeric values per linear variable and truth values per
  /// opaque boolean literal, both keyed by canonical text. Declared
  /// integer variables receive integral values; other variables receive an
  /// integral value whenever their bounds admit one (witness readability).
  struct Model {
    std::map<std::string, double> values;
    std::map<std::string, bool> bools;
  };

  /// A model of the conjunction of the signed masks, or nullopt when the
  /// conjunction is unsatisfiable OR no model could be produced within the
  /// work bounds (model search is best-effort; only nullopt-vs-value is
  /// meaningful, never use it as an UNSAT verdict). Every returned model
  /// has been re-verified against the clause's constraints.
  std::optional<Model> FindModel(
      const std::vector<SignedMask>& literals) const;

 private:
  Options options_;
};

/// Convenience: MaskSolver{}.Truth(mask).
MaskTruth SolveMaskTruth(const MaskExpr& mask);

/// Adds every parameter declared with an integral type (`int`, `long`,
/// `Oid`-free integer spellings) to `options->integer_vars` under its bare
/// name — the canonical text a mask identifier linearizes to. The §3.1
/// parameter declarations are what make integer gap cuts sound: an
/// undeclared parameter stays real-valued (conservative).
void AddIntegerParams(const std::vector<ParamDecl>& params,
                      MaskSolver::Options* options);

}  // namespace ode

#endif  // ODE_ANALYZE_MASK_SOLVER_H_
