#ifndef ODE_ANALYZE_WITNESS_H_
#define ODE_ANALYZE_WITNESS_H_

#include <optional>
#include <string>
#include <vector>

#include "analyze/automaton_check.h"
#include "analyze/diagnostic.h"
#include "compile/combined.h"
#include "compile/compiler.h"

namespace ode {

/// The witness engine: turns every layer-2 analyzer verdict from a bare
/// assertion into a *demonstrated* claim by synthesizing a minimal concrete
/// event history — method calls with concrete argument values — that
/// exhibits the verdict.
///
/// ## Construction
///
/// Histories are found by breadth-first shortest-path search over the
/// (product) DFA restricted to *realizable* micro-symbols (symbols whose
/// signed mask conjunction the solver cannot refute), so every witness is a
/// history the run-time system could actually observe. Symbols are explored
/// in ascending order, making each witness the lexicographically-least
/// shortest one — rendering is deterministic and diff-stable. Concrete
/// argument values come from solver model generation (Fourier–Motzkin
/// back-substitution over the symbol's signed mask conjunction, integral
/// values preferred; parameters declared `int` always receive integers).
///
/// ## The validation guarantee (mirrors `--fix`)
///
/// Every history is replayed through the §4 denotational oracle before it
/// is reported, and the oracle's occurrence points must exhibit exactly the
/// claimed behavior (fire / not-fire per step, per subject). A history that
/// fails replay is suppressed and counted in
/// `WitnessResult::validation_failures` — a witness you see is a witness
/// that ran.
///
/// ## Limits
///
/// Triggers with nested composite masks (compiled as gates) get no
/// witnesses: their firing consults run-time database state outside the
/// history, which neither the oracle nor a static history can bind. That is
/// a skip (empty result), not a validation failure.
struct WitnessOptions {
  CompileOptions compile;
  /// BFS depth cap per history (shortest-path search gives up past it).
  size_t max_steps = 16;
  /// Length cap for probe histories (the realizable sample appended to
  /// emptiness/dead-state witnesses to demonstrate non-firing).
  size_t probe_steps = 4;
};

struct WitnessResult {
  /// Oracle-validated histories, in presentation order.
  std::vector<WitnessHistory> histories;
  /// Histories that were built but failed oracle replay and were
  /// suppressed. Nonzero values indicate an analyzer/oracle disagreement
  /// worth investigating; the shipped fixtures assert zero.
  size_t validation_failures = 0;
};

/// A001: the trigger can never fire. Produces up to two histories: the
/// shortest *symbol-level* accepting path (which necessarily uses
/// impossible events — each annotated with the solver's UNSAT certificate),
/// and a realizable probe history on which the oracle confirms the trigger
/// never fires.
WitnessResult EmptinessWitness(const CompiledEvent& compiled,
                               const std::string& name,
                               const WitnessOptions& options = {});

/// A002: the trigger fires at every history point. Produces one sample
/// realizable history, oracle-validated to fire at every step.
WitnessResult UniversalityWitness(const CompiledEvent& compiled,
                                  const std::string& name,
                                  const WitnessOptions& options = {});

/// A003: the automaton has dead states. Produces the shortest realizable
/// history entering a dead state, extended with a realizable probe suffix
/// the oracle confirms never fires after the entry point.
WitnessResult DeadStateWitness(const CompiledEvent& compiled,
                               const std::string& name,
                               const WitnessOptions& options = {});

/// A004/A005/A007: equivalence / subsumption between two triggers. For
/// equivalence: the shortest realizable history on which both fire. For
/// subsumption (firings(inner) ⊆ firings(outer)): that history plus one
/// firing only the outer trigger — demonstrating strictness. Both triggers
/// are recompiled over a joint alphabet (the same construction the
/// comparison used); pairs the comparison could not decide return empty.
WitnessResult PairWitness(const EventExprPtr& a, const EventExprPtr& b,
                          const std::string& name_a,
                          const std::string& name_b, PairRelation relation,
                          bool via_mask_implication,
                          const WitnessOptions& options = {});

/// G001: a verified trigger-group suggestion. Produces the shortest
/// realizable history on which at least two member triggers have fired —
/// the overlap one shared automaton step would serve — with each member's
/// per-step firing validated against its oracle.
WitnessResult GroupWitness(const CombinedProgram& program,
                           const std::vector<std::string>& member_names,
                           const WitnessOptions& options = {});

/// --- Building blocks (exposed for tests and the group planner) ---------

/// Renders one micro-symbol as a concrete event: `withdraw(q=150)` for a
/// method symbol (argument values from solver model generation over the
/// symbol's signed mask conjunction), `after create` / `at time(HR=9)` for
/// non-method symbols, `<other>` for the OTHER symbol.
std::string RenderSymbolEvent(const Alphabet& alphabet, SymbolId symbol);

/// The solver's UNSAT certificate for an impossible micro-symbol (empty
/// when the symbol is realizable or the refutation came from a constant
/// mask rather than the linear engine).
std::string SymbolInfeasibilityNote(const Alphabet& alphabet,
                                    SymbolId symbol);

/// Lexicographically-least shortest string of length in [1, max_steps]
/// accepted by the DFA using only `possible` symbols; nullopt when none
/// exists within the cap. `possible` must have dfa.alphabet_size() entries.
std::optional<std::vector<SymbolId>> ShortestAcceptedString(
    const Dfa& dfa, const std::vector<bool>& possible, size_t max_steps);

}  // namespace ode

#endif  // ODE_ANALYZE_WITNESS_H_
