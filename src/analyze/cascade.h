#ifndef ODE_ANALYZE_CASCADE_H_
#define ODE_ANALYZE_CASCADE_H_

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "analyze/diagnostic.h"
#include "analyze/witness.h"
#include "common/result.h"
#include "compile/compiler.h"
#include "lang/trigger_spec.h"
#include "trigger/trigger_def.h"

namespace ode {

/// Whole-rulebase cascade/termination analysis: the triggering graph.
///
/// Trigger actions run inside transactions and may post further events
/// (method calls, `tabort`), so one external posting can cascade through
/// the rulebase. The runtime bounds that with a depth limit
/// (`DatabaseOptions::max_posting_depth` → kResourceExhausted) — a circuit
/// breaker, not a diagnosis. This layer decides the question *statically*,
/// the classic active-database triggering-graph construction made precise
/// with the compiled DFAs:
///
///   node  = one active trigger slot
///   edge  T→U when some declared effect of T's action produces a
///           micro-symbol that can advance U's compiled DFA toward an
///           accepting state from a reachable live state.
///
/// Edges are *refined*, not syntactic: a candidate symbol whose signed
/// mask conjunction the integer-aware solver refutes
/// (ComputePossibleSymbols) cannot occur in any history and is pruned, and
/// a symbol that only moves U sideways (no shorter distance-to-accepting,
/// not accepting) adds no edge. An edge is additionally marked *firing*
/// when a chain of effect symbols alone drives U from a reachable state
/// into an accepting state — the strict condition a real cascade needs.
///
/// Findings (docs/ANALYSIS.md):
///   T001  cycle of signature-backed firing edges — potential
///         non-termination (error when every member is perpetual, warning
///         otherwise; note when the cycle needs assumed/progress-only
///         edges). Carries a witness cascade: oracle-replayed histories
///         priming the first member and firing each edge of the cycle.
///   T002  self-loop on an immediate-coupling trigger (fires inside the
///         posting transaction, so each firing recurses before commit).
///   T003  opaque action (no declared effect signature): its edges are
///         assumed, the graph is an over-approximation (note).
///   T004  the graph is acyclic but the longest cascade chain exceeds the
///         configured runtime posting-depth limit.
struct CascadeOptions;

/// Action name → declared signature; actions absent from the map are
/// opaque. This is ActionRegistry::SignatureMap()'s type, also producible
/// from a `--effects` sidecar file via ParseEffectsSource.
using EffectMap = std::map<std::string, ActionSignature, std::less<>>;

/// Parses the `--effects=<file>` sidecar format (docs/LANGUAGE.md). One
/// action per line, `#` starts a comment:
///
///   alert: none
///   post_prod: posts prod on self
///   escalate: posts notify/2 on same-class, posts audit on class ledger
///   kill: aborts
///   launch: opaque
///
/// `none` declares a pure action; `opaque` is accepted for documentation
/// and leaves the action out of the map (the default for unlisted
/// actions). Errors carry 1-based line numbers.
Result<EffectMap> ParseEffectsSource(std::string_view source);

/// One trigger offered to cascade analysis. `compiled` may be null (the
/// trigger failed to compile): such nodes join the graph but get no edges.
struct CascadeTrigger {
  std::string name;        ///< Display name (possibly class-qualified).
  std::string class_name;  ///< Empty for spec-file analysis (all triggers
                           ///< are then treated as one class).
  const TriggerSpec* spec = nullptr;
  const CompiledEvent* compiled = nullptr;
  /// Optional: precomputed ComputePossibleSymbols(*compiled) (extended
  /// alphabet), to avoid re-running the solver sweep. Null = computed here.
  const std::vector<bool>* possible = nullptr;
};

struct CascadeOptions {
  CompileOptions compile;
  /// Required: the rulebase's declared action effects.
  const EffectMap* effects = nullptr;
  /// Synthesize oracle-replayed witness cascades for T001 findings.
  bool witnesses = true;
  WitnessOptions witness;
  /// BFS cap on effect-only firing chains per edge (symbols posted by one
  /// action activation that drive the target to fire).
  size_t max_chain_steps = 8;
  /// When > 0: the runtime's max_posting_depth, validated against the max
  /// acyclic cascade chain (T004 when the limit is too small).
  int runtime_depth_limit = 0;
  /// Edge-count guard; construction stops adding edges past it (the graph
  /// is then marked truncated and cycle verdicts are partial).
  size_t max_edges = 1 << 18;
};

struct CascadeNode {
  std::string name;
  std::string class_name;
  std::string action;
  bool perpetual = false;
  /// True when the trigger's alphabet observes no transaction markers: it
  /// fires inside the posting transaction (§7 immediate coupling), so a
  /// cascade through it consumes runtime posting depth.
  bool immediate = true;
  bool opaque_action = false;  ///< Action has no declared signature.
  bool compiled = false;       ///< Joined edge construction.
};

struct CascadeEdge {
  size_t from = 0;
  size_t to = 0;
  /// Rendered effect event that advances `to`, e.g. `prod(q=2)`; for
  /// assumed edges, the opaque action's name.
  std::string via;
  bool opaque = false;  ///< Assumed edge (opaque source action).
  /// Effect symbols alone can drive `to` from a reachable live state into
  /// an accepting state (a strict firing, not just progress toward one).
  bool fires = false;
  /// Chain explanation: why the effect advances the target automaton.
  std::string why;
};

/// One detected cycle of signature-backed firing edges, reported as T001.
struct CascadeCycle {
  std::vector<size_t> nodes;  ///< In cycle order (first node repeats last).
  std::vector<size_t> edges;  ///< Edge index per hop; edges[i] goes
                              ///< nodes[i] → nodes[(i+1) % nodes.size()].
  bool all_perpetual = false;
};

struct CascadeGraph {
  std::vector<CascadeNode> nodes;
  std::vector<CascadeEdge> edges;
  /// Proven cycles (non-opaque firing edges only), one T001 each.
  std::vector<CascadeCycle> cycles;
  /// True when a cycle exists even counting opaque / progress-only edges.
  bool has_cycle = false;
  /// True when max_edges stopped edge construction (verdicts partial).
  bool truncated = false;
  /// Longest cascade chain in *firings* (nodes on the longest path over
  /// all edges) when the full graph is acyclic; 0 when it cycles (chain
  /// depth unbounded) or the graph is empty. The runtime posting-depth
  /// limit must be at least this for every legal cascade to complete.
  size_t max_chain = 0;
};

struct CascadeResult {
  CascadeGraph graph;
  std::vector<Diagnostic> diagnostics;
  /// Witness accounting (same contract as the witness engine): histories
  /// attached to T001 findings, and histories suppressed because oracle
  /// replay disagreed.
  size_t witnesses = 0;
  size_t witness_failures = 0;
};

/// Builds the triggering graph over `triggers` and reports T001–T004.
/// `options.effects` must be set. Diagnostics carry each finding's source
/// span (the owning trigger's event span) when the spec is available.
CascadeResult AnalyzeCascade(const std::vector<CascadeTrigger>& triggers,
                             const CascadeOptions& options);

}  // namespace ode

#endif  // ODE_ANALYZE_CASCADE_H_
