#include "analyze/diagnostic.h"

#include <algorithm>

#include "common/strutil.h"
#include "lang/token.h"

namespace ode {

std::string_view SeverityName(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

std::string Diagnostic::ToString() const {
  return StrFormat("%s: [%s] %s", std::string(SeverityName(severity)).c_str(),
                   id.c_str(), message.c_str());
}

bool HasErrors(const std::vector<Diagnostic>& diags) {
  return std::any_of(diags.begin(), diags.end(), [](const Diagnostic& d) {
    return d.severity == Severity::kError;
  });
}

namespace {

/// The full source line containing `offset`, without the newline and
/// without a trailing '\r' (CRLF sources would otherwise smuggle a
/// carriage return into the rendered line and shift the caret run).
std::string_view LineAt(std::string_view source, size_t offset) {
  if (offset > source.size()) offset = source.size();
  size_t begin = offset;
  while (begin > 0 && source[begin - 1] != '\n') --begin;
  size_t end = source.find('\n', offset);
  if (end == std::string_view::npos) end = source.size();
  std::string_view line = source.substr(begin, end - begin);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return line;
}

/// At most this many source lines are echoed for one span; longer spans
/// get an elision marker instead of a screenful of carets.
constexpr int kMaxCaretLines = 3;

/// Renders one witness history as an indented, diff-stable trace block:
///
///   witness: shortest history on which both triggers fire
///     1. withdraw(q=150)  => fires: both_a, both_b
///     2. deposit()
void AppendWitness(const WitnessHistory& w, std::string* out) {
  *out += "\n  witness: ";
  *out += w.claim;
  for (size_t i = 0; i < w.steps.size(); ++i) {
    const WitnessStep& s = w.steps[i];
    *out += StrFormat("\n    %zu. %s", i + 1, s.event.c_str());
    std::string fired;
    for (size_t c = 0; c < s.fires.size() && c < w.columns.size(); ++c) {
      if (s.fires[c]) {
        if (!fired.empty()) fired += ", ";
        fired += w.columns[c];
      }
    }
    if (!fired.empty()) {
      *out += "  => fires: ";
      *out += fired;
    }
    if (!s.note.empty()) {
      *out += "\n       note: ";
      *out += s.note;
    }
  }
  if (w.steps.empty()) *out += "\n    (empty history)";
}

}  // namespace

std::string RenderDiagnostic(const Diagnostic& diag, std::string_view source,
                             std::string_view file) {
  std::string out;
  if (!file.empty()) {
    out += std::string(file);
    out += ':';
  }
  if (!diag.span.empty() && diag.span.begin <= source.size()) {
    LineCol lc = LineColAt(source, diag.span.begin);
    out += StrFormat("%d:%d: ", lc.line, lc.col);
  } else if (!file.empty()) {
    out += ' ';
  }
  out += diag.ToString();
  if (!diag.trigger.empty()) {
    out += StrFormat(" (trigger '%s')", diag.trigger.c_str());
  }
  if (!diag.span.empty() && diag.span.begin <= source.size()) {
    // Echo every source line the span touches (up to kMaxCaretLines),
    // each with its own caret run clamped to that line's end — a span
    // crossing a line boundary must not drag the run through the
    // newline into the next line's text.
    size_t span_end =
        std::max(std::min(diag.span.end, source.size()), diag.span.begin + 1);
    size_t pos = diag.span.begin;
    int rendered = 0;
    bool elided = false;
    while (pos < span_end) {
      if (rendered == kMaxCaretLines) {
        elided = true;
        break;
      }
      size_t line_begin = pos;
      while (line_begin > 0 && source[line_begin - 1] != '\n') --line_begin;
      std::string_view line = LineAt(source, pos);
      size_t col = pos - line_begin;
      out += "\n  ";
      out += std::string(line);
      out += "\n  ";
      for (size_t i = 0; i < col && i < line.size(); ++i) {
        out += (line[i] == '\t') ? '\t' : ' ';
      }
      size_t run_end = std::min(span_end - line_begin, line.size());
      size_t run_len = run_end > col ? run_end - col : 0;
      // The first line always gets its anchor caret, even at EOL.
      if (rendered == 0 && run_len == 0) run_len = 1;
      for (size_t i = 0; i < run_len; ++i) {
        out += (rendered == 0 && i == 0) ? '^' : '~';
      }
      ++rendered;
      size_t next = source.find('\n', pos);
      if (next == std::string_view::npos) break;
      pos = next + 1;
    }
    if (elided) out += "\n  ...";
  }
  for (const std::string& hint : diag.fix_hints) {
    out += "\n  fix: ";
    out += hint;
  }
  for (const WitnessHistory& w : diag.witness) {
    AppendWitness(w, &out);
  }
  return out;
}

std::string RenderDiagnostics(const std::vector<Diagnostic>& diags,
                              std::string_view source, std::string_view file) {
  std::string out;
  for (const Diagnostic& d : diags) {
    if (!out.empty()) out += "\n";
    out += RenderDiagnostic(d, source, file);
    out += "\n";
  }
  return out;
}

}  // namespace ode
