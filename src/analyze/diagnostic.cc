#include "analyze/diagnostic.h"

#include <algorithm>

#include "common/strutil.h"
#include "lang/token.h"

namespace ode {

std::string_view SeverityName(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

std::string Diagnostic::ToString() const {
  return StrFormat("%s: [%s] %s", std::string(SeverityName(severity)).c_str(),
                   id.c_str(), message.c_str());
}

bool HasErrors(const std::vector<Diagnostic>& diags) {
  return std::any_of(diags.begin(), diags.end(), [](const Diagnostic& d) {
    return d.severity == Severity::kError;
  });
}

namespace {

/// The full source line containing `offset` (without the newline).
std::string_view LineAt(std::string_view source, size_t offset) {
  if (offset > source.size()) offset = source.size();
  size_t begin = offset;
  while (begin > 0 && source[begin - 1] != '\n') --begin;
  size_t end = source.find('\n', offset);
  if (end == std::string_view::npos) end = source.size();
  return source.substr(begin, end - begin);
}

}  // namespace

std::string RenderDiagnostic(const Diagnostic& diag, std::string_view source,
                             std::string_view file) {
  std::string out;
  if (!file.empty()) {
    out += std::string(file);
    out += ':';
  }
  if (!diag.span.empty() && diag.span.begin <= source.size()) {
    LineCol lc = LineColAt(source, diag.span.begin);
    out += StrFormat("%d:%d: ", lc.line, lc.col);
  } else if (!file.empty()) {
    out += ' ';
  }
  out += diag.ToString();
  if (!diag.trigger.empty()) {
    out += StrFormat(" (trigger '%s')", diag.trigger.c_str());
  }
  if (!diag.span.empty() && diag.span.begin <= source.size()) {
    LineCol lc = LineColAt(source, diag.span.begin);
    std::string_view line = LineAt(source, diag.span.begin);
    out += "\n  ";
    out += std::string(line);
    out += "\n  ";
    size_t col = static_cast<size_t>(lc.col - 1);
    for (size_t i = 0; i < col && i < line.size(); ++i) {
      out += (line[i] == '\t') ? '\t' : ' ';
    }
    // The caret run covers the span but stops at the end of the line.
    size_t span_len = std::max<size_t>(diag.span.size(), 1);
    size_t max_len = line.size() > col ? line.size() - col : 1;
    size_t len = std::min(span_len, max_len);
    out += '^';
    for (size_t i = 1; i < len; ++i) out += '~';
  }
  return out;
}

std::string RenderDiagnostics(const std::vector<Diagnostic>& diags,
                              std::string_view source, std::string_view file) {
  std::string out;
  for (const Diagnostic& d : diags) {
    if (!out.empty()) out += "\n";
    out += RenderDiagnostic(d, source, file);
    out += "\n";
  }
  return out;
}

}  // namespace ode
