#ifndef ODE_ANALYZE_DIAGNOSTIC_H_
#define ODE_ANALYZE_DIAGNOSTIC_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/source_span.h"

namespace ode {

/// Severity of an analyzer finding. kError findings identify specifications
/// that cannot behave as written (never-true masks, empty-language
/// automata, compile failures); kWarning findings are almost certainly spec
/// bugs (universal triggers, duplicate registrations); kNote findings are
/// informational (dead states, degenerate counts, cost reports).
enum class Severity : uint8_t {
  kNote = 0,
  kWarning,
  kError,
};

std::string_view SeverityName(Severity s);

/// One step of a witness history: a concrete method call (with concrete
/// argument values) plus, per tracked subject, whether its automaton is in
/// an accepting state *after* this step.
struct WitnessStep {
  /// Rendered event, e.g. `withdraw(q=150)` or `deposit()`.
  std::string event;
  /// Optional annotation, e.g. `unreachable: q > 1 and q < 2 are mutually
  /// unsatisfiable over the integers (gap cut)`. Rendered after the event.
  std::string note;
  /// Parallel to WitnessHistory::columns: fires[i] == true iff subject i
  /// fires (its event occurs, §4) at this history point — the oracle's
  /// occurrence bit, validated before the witness is attached.
  std::vector<bool> fires;
};

/// One concrete event history demonstrating an analyzer verdict, produced
/// by the witness engine (analyze/witness.h) and validated against the §4
/// oracle before being attached.
struct WitnessHistory {
  /// What this history demonstrates, e.g. `shortest history on which both
  /// triggers fire` or `no realizable history reaches an accepting state`.
  std::string claim;
  /// Names of the subjects whose firing behavior the steps track (one
  /// trigger name, a pair, or a proposed group's members). May be empty
  /// for histories that only demonstrate non-firing.
  std::vector<std::string> columns;
  std::vector<WitnessStep> steps;
};

/// One analyzer finding. `id` is a stable catalogue identifier
/// (docs/ANALYSIS.md): L--- for AST/mask checks, A--- for automaton checks,
/// C--- for cost checks, P--- for parse failures.
struct Diagnostic {
  std::string id;        ///< e.g. "L001".
  Severity severity = Severity::kWarning;
  std::string message;
  SourceSpan span;       ///< Into the analyzed source text; may be empty.
  std::string trigger;   ///< Owning trigger name; empty for file-level.
  /// Oracle-validated concrete histories demonstrating the verdict; empty
  /// when witnesses are off, unsupported (gates), or failed validation.
  std::vector<WitnessHistory> witness;
  /// Pending `--fix` rewrites for this finding, rendered as `fix:`
  /// suggestion lines under the caret (e.g. a replacement expression).
  std::vector<std::string> fix_hints;

  /// "error: [L001] message" (no source context).
  std::string ToString() const;
};

/// True if any diagnostic has Severity::kError.
bool HasErrors(const std::vector<Diagnostic>& diags);

/// Renders one diagnostic caret-style against the source it was produced
/// from:
///
///   file.trig:3:14: error: [L001] mask can never be true
///     after withdraw(i, q) && q > 100 && q < 50
///                             ^~~~~~~~~~~~~~~~~
///
/// A diagnostic with an empty span renders as a single header line. `file`
/// may be empty (omitted from the header).
std::string RenderDiagnostic(const Diagnostic& diag, std::string_view source,
                             std::string_view file = {});

/// Renders every diagnostic, separated by blank lines.
std::string RenderDiagnostics(const std::vector<Diagnostic>& diags,
                              std::string_view source,
                              std::string_view file = {});

}  // namespace ode

#endif  // ODE_ANALYZE_DIAGNOSTIC_H_
