#ifndef ODE_ANALYZE_DIAGNOSTIC_H_
#define ODE_ANALYZE_DIAGNOSTIC_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/source_span.h"

namespace ode {

/// Severity of an analyzer finding. kError findings identify specifications
/// that cannot behave as written (never-true masks, empty-language
/// automata, compile failures); kWarning findings are almost certainly spec
/// bugs (universal triggers, duplicate registrations); kNote findings are
/// informational (dead states, degenerate counts, cost reports).
enum class Severity : uint8_t {
  kNote = 0,
  kWarning,
  kError,
};

std::string_view SeverityName(Severity s);

/// One analyzer finding. `id` is a stable catalogue identifier
/// (docs/ANALYSIS.md): L--- for AST/mask checks, A--- for automaton checks,
/// C--- for cost checks, P--- for parse failures.
struct Diagnostic {
  std::string id;        ///< e.g. "L001".
  Severity severity = Severity::kWarning;
  std::string message;
  SourceSpan span;       ///< Into the analyzed source text; may be empty.
  std::string trigger;   ///< Owning trigger name; empty for file-level.

  /// "error: [L001] message" (no source context).
  std::string ToString() const;
};

/// True if any diagnostic has Severity::kError.
bool HasErrors(const std::vector<Diagnostic>& diags);

/// Renders one diagnostic caret-style against the source it was produced
/// from:
///
///   file.trig:3:14: error: [L001] mask can never be true
///     after withdraw(i, q) && q > 100 && q < 50
///                             ^~~~~~~~~~~~~~~~~
///
/// A diagnostic with an empty span renders as a single header line. `file`
/// may be empty (omitted from the header).
std::string RenderDiagnostic(const Diagnostic& diag, std::string_view source,
                             std::string_view file = {});

/// Renders every diagnostic, separated by blank lines.
std::string RenderDiagnostics(const std::vector<Diagnostic>& diags,
                              std::string_view source,
                              std::string_view file = {});

}  // namespace ode

#endif  // ODE_ANALYZE_DIAGNOSTIC_H_
