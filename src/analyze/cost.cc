#include "analyze/cost.h"

#include <algorithm>

#include "common/strutil.h"

namespace ode {

CostReport EstimateCost(const CompiledEvent& compiled) {
  CostReport r;
  r.dfa_states = compiled.dfa.num_states();
  r.alphabet_size = compiled.alphabet.size();
  r.extended_alphabet_size = compiled.extended_alphabet_size();
  r.num_gates = compiled.num_gates();
  r.table_bytes = compiled.dfa.TableBytes();
  for (const GateDef& gate : compiled.gates) {
    r.table_bytes += gate.dfa.TableBytes();
  }
  for (size_t g = 0; g < compiled.alphabet.num_groups(); ++g) {
    r.worst_classify_masks = std::max(
        r.worst_classify_masks, compiled.alphabet.group_masks(g).size());
  }
  r.steps_per_event = 1 + r.num_gates;
  return r;
}

std::string CostReport::ToString() const {
  std::string out = StrFormat(
      "states=%zu alphabet=%zu", dfa_states, alphabet_size);
  if (num_gates > 0) {
    out += StrFormat(" gates=%zu extended-alphabet=%zu", num_gates,
                     extended_alphabet_size);
  }
  out += StrFormat(" table-bytes=%zu classify-masks<=%zu steps/event=%zu",
                   table_bytes, worst_classify_masks, steps_per_event);
  return out;
}

}  // namespace ode
