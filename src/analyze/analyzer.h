#ifndef ODE_ANALYZE_ANALYZER_H_
#define ODE_ANALYZE_ANALYZER_H_

#include <optional>
#include <string>
#include <vector>

#include "analyze/automaton_check.h"
#include "analyze/cost.h"
#include "analyze/diagnostic.h"
#include "analyze/spec_check.h"
#include "compile/compiler.h"
#include "lang/trigger_spec.h"

namespace ode {

/// Knobs for one analysis run.
struct AnalyzeOptions {
  /// Compilation options used when building the automata (must match what
  /// the engine will use for the verdicts to be authoritative).
  CompileOptions compile;
  /// Layer 2: emptiness / universality / state-liveness on the DFA.
  bool automaton_checks = true;
  /// Pairwise subsumption/equivalence across the analyzed triggers.
  bool pairwise_checks = true;
  /// Optional class context for method/attribute resolution (layer 1).
  const ClassDef* class_def = nullptr;
  /// Cost budgets; 0 disables the check. Exceeding one emits C001.
  size_t budget_dfa_states = 0;
  size_t budget_table_bytes = 0;
};

/// Analysis result for one trigger.
struct TriggerAnalysis {
  std::string name;        ///< Spec name, or a synthesized placeholder.
  TriggerSpec spec;
  bool compiled = false;   ///< CompileEvent succeeded.
  CostReport cost;         ///< Valid when `compiled`.
  bool never_fires = false;   ///< A001 was emitted.
  bool always_fires = false;  ///< A002 was emitted.
  std::vector<Diagnostic> diagnostics;
};

/// Result of analyzing a whole specification source (one or more trigger
/// declarations separated by blank lines).
struct AnalysisReport {
  std::vector<TriggerAnalysis> triggers;
  /// File-level diagnostics: parse failures (P001) and pairwise findings
  /// (A004/A005).
  std::vector<Diagnostic> file_diagnostics;

  /// Every diagnostic — per-trigger ones first, in declaration order.
  std::vector<Diagnostic> AllDiagnostics() const;
  bool has_errors() const { return HasErrors(AllDiagnostics()); }
};

/// Analyzes one parsed trigger: layer-1 spec checks, compilation, layer-2
/// automaton checks, and the cost report. Never fails outright — a
/// compilation error becomes diagnostic A006.
TriggerAnalysis AnalyzeTrigger(const TriggerSpec& spec,
                               const AnalyzeOptions& options = {});

/// Analyzes a specification source: splits it into blank-line-separated
/// declarations, parses each (parse failures become P001 diagnostics with
/// file-accurate positions), runs AnalyzeTrigger on each, then the
/// pairwise automaton comparison across every compiled pair (A004
/// duplicate / A005 subsumed). All spans index into `source`.
AnalysisReport AnalyzeSpecSource(std::string_view source,
                                 const AnalyzeOptions& options = {});

/// Analyzes every pending trigger of a class definition — the
/// registration-time hook's entry point (DatabaseOptions::analyze_triggers).
/// Layer-1 checks run with the class as context, so unknown methods and
/// attributes are resolved against it; the pairwise comparison runs across
/// the class's triggers. `options.class_def` is overridden with `def`.
/// Spans index into each trigger's own DSL text (when it was declared as
/// text); Diagnostic::ToString() renders without source context.
AnalysisReport AnalyzeClassDef(const ClassDef& def,
                               AnalyzeOptions options = {});

}  // namespace ode

#endif  // ODE_ANALYZE_ANALYZER_H_
