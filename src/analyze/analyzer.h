#ifndef ODE_ANALYZE_ANALYZER_H_
#define ODE_ANALYZE_ANALYZER_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analyze/automaton_check.h"
#include "analyze/cascade.h"
#include "analyze/cost.h"
#include "analyze/diagnostic.h"
#include "analyze/group_plan.h"
#include "analyze/spec_check.h"
#include "analyze/witness.h"
#include "compile/compiler.h"
#include "lang/trigger_spec.h"

namespace ode {

/// Knobs for one analysis run.
struct AnalyzeOptions {
  /// Compilation options used when building the automata (must match what
  /// the engine will use for the verdicts to be authoritative).
  CompileOptions compile;
  /// Layer 2: emptiness / universality / state-liveness on the DFA.
  bool automaton_checks = true;
  /// Pairwise subsumption/equivalence across the analyzed triggers.
  bool pairwise_checks = true;
  /// §5 fn. 5 trigger-group planning over the pairwise findings (G001
  /// suggestions with measured cost deltas). Needs pairwise_checks.
  bool group_suggestions = true;
  GroupPlanOptions group_plan;
  /// Witness engine (analyze/witness.h): attach an oracle-validated
  /// concrete counterexample history to every A001/A002/A003/A004/A005/
  /// A007/G001 finding.
  bool witnesses = true;
  WitnessOptions witness;
  /// Optional class context for method/attribute resolution (layer 1).
  const ClassDef* class_def = nullptr;
  /// Cost budgets; 0 disables the check. Exceeding one emits C001.
  size_t budget_dfa_states = 0;
  size_t budget_table_bytes = 0;
  /// Rulebase cascade/termination analysis (analyze/cascade.h): when set,
  /// AnalyzeSpecSource builds the triggering graph over the file's
  /// triggers from these declared action effects and reports T001–T004
  /// into file_diagnostics + AnalysisReport::cascade. Null skips the layer.
  const EffectMap* effects = nullptr;
  /// Cascade knobs (see CascadeOptions).
  size_t cascade_max_chain_steps = 8;
  int cascade_depth_limit = 0;
};

/// Analysis result for one trigger.
struct TriggerAnalysis {
  std::string name;        ///< Spec name, or a synthesized placeholder.
  TriggerSpec spec;
  bool compiled = false;   ///< CompileEvent succeeded.
  /// The compilation artifact, kept so downstream layers (cascade) reuse
  /// it without recompiling; null when compilation failed.
  std::shared_ptr<const CompiledEvent> compiled_event;
  /// ComputePossibleSymbols(*compiled_event), cached when the automaton
  /// checks ran (null otherwise).
  std::shared_ptr<const std::vector<bool>> possible_symbols;
  CostReport cost;         ///< Valid when `compiled`.
  bool never_fires = false;   ///< A001 was emitted.
  bool always_fires = false;  ///< A002 was emitted.
  std::vector<Diagnostic> diagnostics;
  /// Witness accounting for this trigger's diagnostics: histories
  /// attached, and histories suppressed because oracle replay failed.
  size_t witnesses = 0;
  size_t witness_failures = 0;
};

/// Result of analyzing a whole specification source (one or more trigger
/// declarations separated by blank lines).
struct AnalysisReport {
  std::vector<TriggerAnalysis> triggers;
  /// File-level diagnostics: parse failures (P001), pairwise findings
  /// (A004/A005/A007), and group suggestions (G001).
  std::vector<Diagnostic> file_diagnostics;
  /// Decided pairwise relations (indices into `triggers`) — the group
  /// planner's input, also useful to downstream tooling.
  std::vector<PairFinding> pair_findings;
  /// Verified trigger-group suggestions (each backed by a G001 note).
  std::vector<TriggerGroupPlan> groups;
  /// The triggering graph, present when cascade analysis ran
  /// (AnalyzeOptions::effects was set). Its T001–T004 findings are merged
  /// into file_diagnostics.
  std::optional<CascadeGraph> cascade;

  /// Witness accounting across the whole report (per-trigger + pairwise +
  /// group findings): histories attached, and histories suppressed
  /// because oracle replay disagreed with the claimed verdict.
  size_t witnesses = 0;
  size_t witness_failures = 0;

  /// Every diagnostic — per-trigger ones first, in declaration order.
  std::vector<Diagnostic> AllDiagnostics() const;
  bool has_errors() const { return HasErrors(AllDiagnostics()); }
};

/// Analyzes one parsed trigger: layer-1 spec checks, compilation, layer-2
/// automaton checks, and the cost report. Never fails outright — a
/// compilation error becomes diagnostic A006.
TriggerAnalysis AnalyzeTrigger(const TriggerSpec& spec,
                               const AnalyzeOptions& options = {});

/// Analyzes a specification source: splits it into blank-line-separated
/// declarations, parses each (parse failures become P001 diagnostics with
/// file-accurate positions), runs AnalyzeTrigger on each, then the
/// pairwise automaton comparison across every compiled pair (A004
/// duplicate / A005 subsumed). All spans index into `source`.
AnalysisReport AnalyzeSpecSource(std::string_view source,
                                 const AnalyzeOptions& options = {});

/// Analyzes every pending trigger of a class definition — the
/// registration-time hook's entry point (DatabaseOptions::analyze_triggers).
/// Layer-1 checks run with the class as context, so unknown methods and
/// attributes are resolved against it; the pairwise comparison runs across
/// the class's triggers. `options.class_def` is overridden with `def`.
/// Spans index into each trigger's own DSL text (when it was declared as
/// text); Diagnostic::ToString() renders without source context.
AnalysisReport AnalyzeClassDef(const ClassDef& def,
                               AnalyzeOptions options = {});

/// One class's triggers prepared for the cross-class pairwise sweep.
/// Independent classes often declare the same method events (§2: every
/// account-like class has a `deposit`); when the declarations agree on
/// name and arity, the triggers watch the same history symbols and the
/// A004/A005/A007 comparison is meaningful across the class boundary.
struct ClassTriggerSet {
  std::string class_name;
  /// Declared method name -> arity (parameter count).
  std::map<std::string, size_t> method_arity;
  std::vector<std::string> trigger_names;  ///< Parallel to `triggers`.
  std::vector<TriggerSpec> triggers;
};

/// Collects a class's pending triggers into a ClassTriggerSet.
/// Unparseable triggers are skipped here — registration-time analysis
/// already reports them as P001.
ClassTriggerSet CollectClassTriggerSet(const ClassDef& def);

/// Pairwise comparison across two classes' triggers. A pair is compared
/// only when every method event either trigger references is declared by
/// BOTH classes with the same arity — otherwise equal names denote
/// different history symbols and no verdict is sound. Findings carry
/// class-qualified trigger names ("account::watch").
std::vector<Diagnostic> CompareTriggerSetsAcrossClasses(
    const ClassTriggerSet& a, const ClassTriggerSet& b,
    const CompileOptions& compile = {}, bool witnesses = true);

/// Cascade analysis across every registered class's triggers — the
/// Database registration hook's entry point. Each set's triggers are
/// compiled with `options.compile` (the hook runs once per registration,
/// so recompiling is acceptable there); finding names are class-qualified
/// ("account::watch"). `options.effects` must be set.
CascadeResult AnalyzeCascadeOverClassSets(
    const std::vector<const ClassTriggerSet*>& sets,
    const CascadeOptions& options);

/// One blank-line-separated declaration block of a spec source, as a byte
/// range into it. Exposed so tools that edit blocks in place (ode-lint
/// --fix) split exactly the way the analyzer does.
struct SpecBlock {
  size_t begin = 0;  ///< Byte offset of the block's first line.
  size_t end = 0;    ///< One past the block's last byte.
};
std::vector<SpecBlock> SplitSpecBlocks(std::string_view source);

/// The whole source with everything outside [block.begin, block.end)
/// blanked to spaces (newlines kept), so parsing the block yields offsets
/// and line/columns valid for the original file.
std::string PadBlockToFile(std::string_view source, const SpecBlock& block);

}  // namespace ode

#endif  // ODE_ANALYZE_ANALYZER_H_
