#include "analyze/mask_check.h"

#include <cmath>

#include "analyze/mask_solver.h"
#include <map>
#include <set>
#include <string>
#include <vector>

namespace ode {

std::optional<Value> FoldMaskConst(const MaskExpr& mask) {
  switch (mask.kind) {
    case MaskKind::kLiteral:
      return mask.literal;
    case MaskKind::kIdent:
    case MaskKind::kMember:
    case MaskKind::kCall:
      return std::nullopt;
    case MaskKind::kUnary: {
      std::optional<Value> v = FoldMaskConst(*mask.children[0]);
      if (!v) return std::nullopt;
      if (mask.op == MaskOp::kNot) return Value(!v->Truthy());
      Result<Value> r = v->Neg();
      if (!r.ok()) return std::nullopt;
      return *r;
    }
    case MaskKind::kBinary: {
      std::optional<Value> a = FoldMaskConst(*mask.children[0]);
      // Short-circuit: masks are side-effect free, so `false && x` and
      // `true || x` fold even when x does not.
      if (mask.op == MaskOp::kAnd) {
        if (a && !a->Truthy()) return Value(false);
        std::optional<Value> b = FoldMaskConst(*mask.children[1]);
        if (b && !b->Truthy()) return Value(false);
        if (a && b) return Value(a->Truthy() && b->Truthy());
        return std::nullopt;
      }
      if (mask.op == MaskOp::kOr) {
        if (a && a->Truthy()) return Value(true);
        std::optional<Value> b = FoldMaskConst(*mask.children[1]);
        if (b && b->Truthy()) return Value(true);
        if (a && b) return Value(a->Truthy() || b->Truthy());
        return std::nullopt;
      }
      if (!a) return std::nullopt;
      std::optional<Value> b = FoldMaskConst(*mask.children[1]);
      if (!b) return std::nullopt;
      switch (mask.op) {
        case MaskOp::kAdd: case MaskOp::kSub: case MaskOp::kMul:
        case MaskOp::kDiv: case MaskOp::kMod: {
          Result<Value> r = mask.op == MaskOp::kAdd   ? a->Add(*b)
                            : mask.op == MaskOp::kSub ? a->Sub(*b)
                            : mask.op == MaskOp::kMul ? a->Mul(*b)
                            : mask.op == MaskOp::kDiv ? a->Div(*b)
                                                      : a->Mod(*b);
          if (!r.ok()) return std::nullopt;
          return *r;
        }
        case MaskOp::kEq: return Value(a->Equals(*b));
        case MaskOp::kNe: return Value(!a->Equals(*b));
        case MaskOp::kLt: case MaskOp::kLe:
        case MaskOp::kGt: case MaskOp::kGe: {
          Result<int> c = a->Compare(*b);
          if (!c.ok()) return std::nullopt;
          switch (mask.op) {
            case MaskOp::kLt: return Value(*c < 0);
            case MaskOp::kLe: return Value(*c <= 0);
            case MaskOp::kGt: return Value(*c > 0);
            default: return Value(*c >= 0);
          }
        }
        default:
          return std::nullopt;
      }
    }
  }
  return std::nullopt;
}

namespace {

/// Accumulated constraints on one non-constant term (keyed by its canonical
/// text), built from comparisons against constants.
struct TermFacts {
  double lo = -HUGE_VAL;
  bool lo_strict = false;
  double hi = HUGE_VAL;
  bool hi_strict = false;
  std::vector<Value> excluded;
  std::optional<Value> must_eq;
  bool contradiction = false;

  void Apply(MaskOp op, const Value& c) {
    Result<double> num = c.AsDouble();
    switch (op) {
      case MaskOp::kLt: case MaskOp::kLe:
      case MaskOp::kGt: case MaskOp::kGe: {
        if (!num.ok()) return;  // Non-numeric relational: undecidable here.
        double v = *num;
        if (op == MaskOp::kLt || op == MaskOp::kLe) {
          bool strict = op == MaskOp::kLt;
          if (v < hi || (v == hi && strict && !hi_strict)) {
            hi = v;
            hi_strict = strict;
          }
        } else {
          bool strict = op == MaskOp::kGt;
          if (v > lo || (v == lo && strict && !lo_strict)) {
            lo = v;
            lo_strict = strict;
          }
        }
        break;
      }
      case MaskOp::kEq:
        if (must_eq && !must_eq->Equals(c)) contradiction = true;
        must_eq = c;
        if (num.ok()) {
          if (*num < hi) { hi = *num; hi_strict = false; }
          if (*num > lo) { lo = *num; lo_strict = false; }
        }
        break;
      case MaskOp::kNe:
        excluded.push_back(c);
        break;
      default:
        break;
    }
  }

  bool Empty() const {
    if (contradiction) return true;
    if (lo > hi) return true;
    if (lo == hi && (lo_strict || hi_strict) && std::isfinite(lo)) return true;
    if (must_eq) {
      for (const Value& v : excluded) {
        if (must_eq->Equals(v)) return true;
      }
    }
    // A pinched interval [c, c] plus a `!= c` constraint.
    if (lo == hi && std::isfinite(lo)) {
      for (const Value& v : excluded) {
        Result<double> num = v.AsDouble();
        if (num.ok() && *num == lo) return true;
      }
    }
    return false;
  }
};

/// The comparison operators interval reasoning understands.
bool IsComparisonOp(MaskOp op) {
  switch (op) {
    case MaskOp::kEq: case MaskOp::kNe: case MaskOp::kLt:
    case MaskOp::kLe: case MaskOp::kGt: case MaskOp::kGe:
      return true;
    default:
      return false;
  }
}

MaskOp FlipComparison(MaskOp op) {
  switch (op) {
    case MaskOp::kLt: return MaskOp::kGt;
    case MaskOp::kLe: return MaskOp::kGe;
    case MaskOp::kGt: return MaskOp::kLt;
    case MaskOp::kGe: return MaskOp::kLe;
    default: return op;  // ==, != are symmetric.
  }
}

/// The comparison accepting exactly the values `key op c` rejects.
MaskOp NegateComparison(MaskOp op) {
  switch (op) {
    case MaskOp::kLt: return MaskOp::kGe;
    case MaskOp::kLe: return MaskOp::kGt;
    case MaskOp::kGt: return MaskOp::kLe;
    case MaskOp::kGe: return MaskOp::kLt;
    case MaskOp::kEq: return MaskOp::kNe;
    default: return MaskOp::kEq;
  }
}

/// Matches `term op constant` / `constant op term` where exactly one side
/// constant-folds. Returns the term's canonical text, the op normalized to
/// constant-on-the-right, and the constant.
bool AsComparison(const MaskExpr& e, std::string* key, MaskOp* op, Value* c) {
  if (e.kind != MaskKind::kBinary || !IsComparisonOp(e.op)) return false;
  std::optional<Value> left = FoldMaskConst(*e.children[0]);
  std::optional<Value> right = FoldMaskConst(*e.children[1]);
  if (left.has_value() == right.has_value()) return false;
  if (right) {
    *key = e.children[0]->ToString();
    *op = e.op;
    *c = *right;
  } else {
    *key = e.children[1]->ToString();
    *op = FlipComparison(e.op);
    *c = *left;
  }
  return true;
}

/// Flattens nested kAnd (or kOr) binaries into their operand list.
void FlattenOp(const MaskExpr& e, MaskOp op,
               std::vector<const MaskExpr*>* out) {
  if (e.kind == MaskKind::kBinary && e.op == op) {
    FlattenOp(*e.children[0], op, out);
    FlattenOp(*e.children[1], op, out);
    return;
  }
  out->push_back(&e);
}

MaskTruth Truth(const MaskExpr& e);

MaskTruth TruthOfAnd(const MaskExpr& e) {
  std::vector<const MaskExpr*> conjuncts;
  FlattenOp(e, MaskOp::kAnd, &conjuncts);

  bool all_always = true;
  std::set<std::string> asserted, denied;
  std::map<std::string, TermFacts> facts;
  for (const MaskExpr* c : conjuncts) {
    MaskTruth t = Truth(*c);
    if (t == MaskTruth::kNever) return MaskTruth::kNever;
    if (t != MaskTruth::kAlways) all_always = false;

    std::string key;
    MaskOp op;
    Value constant;
    if (AsComparison(*c, &key, &op, &constant)) {
      facts[key].Apply(op, constant);
      continue;
    }
    if (c->kind == MaskKind::kUnary && c->op == MaskOp::kNot) {
      denied.insert(c->children[0]->ToString());
    } else {
      asserted.insert(c->ToString());
    }
  }
  for (const auto& [key, f] : facts) {
    if (f.Empty()) return MaskTruth::kNever;
  }
  for (const std::string& name : asserted) {
    if (denied.count(name)) return MaskTruth::kNever;  // x && !x
  }
  return all_always ? MaskTruth::kAlways : MaskTruth::kUnknown;
}

MaskTruth TruthOfOr(const MaskExpr& e) {
  std::vector<const MaskExpr*> disjuncts;
  FlattenOp(e, MaskOp::kOr, &disjuncts);

  bool all_never = true;
  std::set<std::string> asserted, denied;
  std::map<std::string, TermFacts> negated;  // Intersection of complements.
  for (const MaskExpr* d : disjuncts) {
    MaskTruth t = Truth(*d);
    if (t == MaskTruth::kAlways) return MaskTruth::kAlways;
    if (t != MaskTruth::kNever) all_never = false;

    std::string key;
    MaskOp op;
    Value constant;
    if (AsComparison(*d, &key, &op, &constant)) {
      // The union of comparisons on one term covers every (numeric) value
      // exactly when the intersection of their complements is empty.
      negated[key].Apply(NegateComparison(op), constant);
      continue;
    }
    if (d->kind == MaskKind::kUnary && d->op == MaskOp::kNot) {
      denied.insert(d->children[0]->ToString());
    } else {
      asserted.insert(d->ToString());
    }
  }
  if (all_never) return MaskTruth::kNever;
  for (const auto& [key, f] : negated) {
    if (f.Empty()) return MaskTruth::kAlways;  // e.g. x > 100 || x <= 100
  }
  for (const std::string& name : asserted) {
    if (denied.count(name)) return MaskTruth::kAlways;  // x || !x
  }
  return MaskTruth::kUnknown;
}

MaskTruth Truth(const MaskExpr& e) {
  if (std::optional<Value> v = FoldMaskConst(e)) {
    return v->Truthy() ? MaskTruth::kAlways : MaskTruth::kNever;
  }
  switch (e.kind) {
    case MaskKind::kUnary:
      if (e.op == MaskOp::kNot) {
        switch (Truth(*e.children[0])) {
          case MaskTruth::kNever: return MaskTruth::kAlways;
          case MaskTruth::kAlways: return MaskTruth::kNever;
          case MaskTruth::kUnknown: return MaskTruth::kUnknown;
        }
      }
      return MaskTruth::kUnknown;
    case MaskKind::kBinary:
      if (e.op == MaskOp::kAnd) return TruthOfAnd(e);
      if (e.op == MaskOp::kOr) return TruthOfOr(e);
      return MaskTruth::kUnknown;
    default:
      return MaskTruth::kUnknown;
  }
}

}  // namespace

MaskTruth AnalyzeMaskTruth(const MaskExpr& mask) {
  MaskTruth t = Truth(mask);
  if (t != MaskTruth::kUnknown) return t;
  // The interval engine handles one term per conjunct; hand the leftovers
  // to the linear-arithmetic solver (multi-variable, scaled terms).
  return SolveMaskTruth(mask);
}

}  // namespace ode
