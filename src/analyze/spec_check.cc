#include "analyze/spec_check.h"

#include <set>
#include <string>

#include "analyze/mask_check.h"
#include "common/strutil.h"

namespace ode {

namespace {

class SpecChecker {
 public:
  SpecChecker(const TriggerSpec& spec, const SpecCheckContext& ctx,
              std::vector<Diagnostic>* out)
      : spec_(spec), ctx_(ctx), out_(out) {
    for (const ParamDecl& p : spec.params) trigger_params_.insert(p.name);
    if (ctx.class_def != nullptr) {
      for (const AttrDecl& a : ctx.class_def->attrs()) {
        attrs_.insert(a.name);
      }
    }
  }

  void Run() {
    if (spec_.event == nullptr) return;
    const EventExpr* core = spec_.event.get();
    // Root composite masks: evaluated against current DB state at fire
    // time; the compiler strips them the same way (CompileEvent).
    while (core->kind == EventExprKind::kMasked) {
      CheckMask(*core->mask, core->span, /*atom=*/nullptr);
      core = core->children[0].get();
    }
    if (core->kind == EventExprKind::kNot) {
      Add("L006", Severity::kWarning,
          "top-level '!E' occurs at every history point where E does not — "
          "this trigger fires almost always; did you mean a sequence or "
          "mask?",
          Span(core->span, spec_.event->span));
    }
    Walk(*core);
  }

 private:
  static SourceSpan Span(SourceSpan preferred, SourceSpan fallback) {
    return preferred.empty() ? fallback : preferred;
  }

  void Add(const char* id, Severity sev, std::string message,
           SourceSpan span) {
    Diagnostic d;
    d.id = id;
    d.severity = sev;
    d.message = std::move(message);
    d.span = span;
    d.trigger = spec_.name;
    out_->push_back(std::move(d));
  }

  void Walk(const EventExpr& e) {
    switch (e.kind) {
      case EventExprKind::kAtom:
        CheckAtom(e);
        return;
      case EventExprKind::kMasked:
        CheckMask(*e.mask, e.span, /*atom=*/nullptr);
        break;
      case EventExprKind::kRelativeN:
      case EventExprKind::kSequenceN:
      case EventExprKind::kEvery:
        if (e.n == 1) {
          const char* kw = e.kind == EventExprKind::kRelativeN ? "relative"
                           : e.kind == EventExprKind::kSequenceN ? "sequence"
                                                                 : "every";
          Add("L007", Severity::kNote,
              StrFormat("'%s 1 (E)' is equivalent to 'E'; the count adds "
                        "nothing",
                        kw),
              e.span);
        }
        break;
      default:
        break;
    }
    for (const EventExprPtr& child : e.children) {
      if (child->kind == EventExprKind::kEmpty) {
        Add("L008", Severity::kNote,
            "'empty' as an operand denotes the empty event set; the "
            "surrounding operator can usually be simplified away",
            Span(child->span, e.span));
        continue;
      }
      Walk(*child);
    }
  }

  void CheckAtom(const EventExpr& atom) {
    const BasicEvent& be = atom.atom;
    if (be.kind == BasicEventKind::kMethod && ctx_.class_def != nullptr) {
      const MethodDef* m = ctx_.class_def->FindMethod(be.method_name);
      if (m == nullptr) {
        Add("L003", Severity::kWarning,
            StrFormat("method event '%s' does not match any method declared "
                      "by class '%s'; the logical event can never be posted",
                      be.method_name.c_str(),
                      ctx_.class_def->name().c_str()),
            atom.span);
      } else if (!be.params.empty() &&
                 be.params.size() != m->params.size()) {
        Add("L003", Severity::kWarning,
            StrFormat("method event '%s' declares %zu parameter(s) but the "
                      "class method takes %zu; the signatures never match",
                      be.method_name.c_str(), be.params.size(),
                      m->params.size()),
            atom.span);
      }
    }
    if (atom.atom_mask != nullptr) {
      CheckMask(*atom.atom_mask, atom.span, &atom);
    }
  }

  /// Truth + identifier checks on one mask. `atom` is the owning logical
  /// event for atom masks, null for composite masks.
  void CheckMask(const MaskExpr& mask, SourceSpan fallback,
                 const EventExpr* atom) {
    SourceSpan span = Span(mask.span, fallback);
    switch (AnalyzeMaskTruth(mask)) {
      case MaskTruth::kNever:
        Add("L001", Severity::kError,
            StrFormat("mask '%s' can never be true; the %s never occurs",
                      mask.ToString().c_str(),
                      atom != nullptr ? "logical event" : "composite event"),
            span);
        break;
      case MaskTruth::kAlways:
        Add("L002", Severity::kWarning,
            StrFormat("mask '%s' is always true; it can be removed",
                      mask.ToString().c_str()),
            span);
        break;
      case MaskTruth::kUnknown:
        break;
    }
    CheckIdents(mask, fallback, atom);
  }

  void CheckIdents(const MaskExpr& mask, SourceSpan fallback,
                   const EventExpr* atom) {
    switch (mask.kind) {
      case MaskKind::kIdent:
        CheckIdent(mask, fallback, atom);
        return;
      case MaskKind::kMember:
        // Only the base can be resolved statically; fields depend on the
        // referenced object's class.
        CheckIdents(*mask.children[0], fallback, atom);
        return;
      case MaskKind::kCall:
        // The callee is a host function (registered at run time, not
        // checkable); arguments resolve normally.
        for (const MaskExprPtr& arg : mask.children) {
          CheckIdents(*arg, fallback, atom);
        }
        return;
      default:
        for (const MaskExprPtr& child : mask.children) {
          CheckIdents(*child, fallback, atom);
        }
        return;
    }
  }

  void CheckIdent(const MaskExpr& ident, SourceSpan fallback,
                  const EventExpr* atom) {
    const std::string& name = ident.name;
    if (trigger_params_.count(name)) return;

    // Event-argument bindings: the atom's declared signature, or (with
    // class context) the declared parameter names of the method itself.
    bool has_signature = false;
    if (atom != nullptr && atom->atom.kind == BasicEventKind::kMethod) {
      const BasicEvent& be = atom->atom;
      has_signature = !be.params.empty();
      for (const ParamDecl& p : be.params) {
        if (p.name == name) return;
      }
      if (ctx_.class_def != nullptr) {
        const MethodDef* m = ctx_.class_def->FindMethod(be.method_name);
        if (m != nullptr) {
          for (const ParamDecl& p : m->params) {
            if (p.name == name) return;
          }
        }
      }
    }

    SourceSpan span = Span(ident.span, fallback);
    if (ctx_.class_def != nullptr) {
      if (attrs_.count(name)) return;
      Add("L004", Severity::kWarning,
          StrFormat("'%s' is not an event parameter, trigger parameter, or "
                    "attribute of class '%s'; evaluating this mask will "
                    "fail at run time",
                    name.c_str(), ctx_.class_def->name().c_str()),
          span);
      return;
    }
    // Without class context, attributes are invisible: only flag names on
    // atoms that declared a full signature, where a typo is most likely.
    if (atom != nullptr && has_signature) {
      Add("L005", Severity::kNote,
          StrFormat("'%s' is not bound by the event's signature or the "
                    "trigger's parameters (it may be an object attribute "
                    "the analyzer cannot see)",
                    name.c_str()),
          span);
    }
  }

  const TriggerSpec& spec_;
  const SpecCheckContext& ctx_;
  std::vector<Diagnostic>* out_;
  std::set<std::string> trigger_params_;
  std::set<std::string> attrs_;
};

}  // namespace

void CheckTriggerSpec(const TriggerSpec& spec, const SpecCheckContext& ctx,
                      std::vector<Diagnostic>* out) {
  SpecChecker(spec, ctx, out).Run();
}

}  // namespace ode
