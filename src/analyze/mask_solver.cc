#include "analyze/mask_solver.h"

#include <cmath>
#include <map>
#include <optional>
#include <set>
#include <string>

namespace ode {

namespace {

/// Tolerance separating a genuine arithmetic contradiction from
/// floating-point noise; a derived constant constraint must clear it
/// before its clause is declared empty.
constexpr double kTol = 1e-9;

/// A linear combination Σ coeffs[v]·v + constant over canonical-text
/// variables. Coefficients with |a| <= kTol are dropped on normalization.
struct LinTerm {
  std::map<std::string, double> coeffs;
  double constant = 0;

  void Add(const LinTerm& other, double scale) {
    constant += scale * other.constant;
    for (const auto& [v, a] : other.coeffs) coeffs[v] += scale * a;
  }
  void Normalize() {
    for (auto it = coeffs.begin(); it != coeffs.end();) {
      if (std::fabs(it->second) <= kTol) {
        it = coeffs.erase(it);
      } else {
        ++it;
      }
    }
  }
};

/// One normalized inequality: term < 0 (strict) or term <= 0.
struct LinConstraint {
  LinTerm term;
  bool strict = false;
};

/// A DNF clause: a conjunction of linear constraints and signed opaque
/// boolean literals (keyed by canonical text).
struct Clause {
  std::vector<LinConstraint> lin;
  std::map<std::string, bool> bools;

  /// Returns false when adding the literal makes the clause trivially
  /// contradictory (same opaque literal asserted and denied).
  bool AddBool(const std::string& key, bool sign) {
    auto [it, inserted] = bools.emplace(key, sign);
    return inserted || it->second == sign;
  }
};

using ClauseList = std::vector<Clause>;

/// Linearizes an arithmetic mask subexpression. A subterm that cannot be
/// expressed linearly (products of variables, mod, non-constant divisor,
/// host calls, members, identifiers) becomes one atomic variable keyed by
/// its canonical text. Returns nullopt only when the term involves a
/// non-numeric literal — the caller then treats the enclosing comparison
/// as opaque.
std::optional<LinTerm> Linearize(const MaskExpr& e) {
  LinTerm t;
  switch (e.kind) {
    case MaskKind::kLiteral: {
      Result<double> d = e.literal.AsDouble();
      if (!d.ok()) return std::nullopt;
      t.constant = *d;
      return t;
    }
    case MaskKind::kIdent:
    case MaskKind::kMember:
    case MaskKind::kCall:
      t.coeffs[e.ToString()] = 1;
      return t;
    case MaskKind::kUnary:
      if (e.op == MaskOp::kNeg || e.op == MaskOp::kNot) {
        // `!x` in arithmetic position evaluates to a bool at run time;
        // treat the whole node as atomic (kNot) or negate (kNeg).
        if (e.op == MaskOp::kNot) {
          t.coeffs[e.ToString()] = 1;
          return t;
        }
        std::optional<LinTerm> inner = Linearize(*e.children[0]);
        if (!inner) return std::nullopt;
        t.Add(*inner, -1);
        return t;
      }
      t.coeffs[e.ToString()] = 1;
      return t;
    case MaskKind::kBinary:
      switch (e.op) {
        case MaskOp::kAdd:
        case MaskOp::kSub: {
          std::optional<LinTerm> a = Linearize(*e.children[0]);
          std::optional<LinTerm> b = Linearize(*e.children[1]);
          if (!a || !b) return std::nullopt;
          t = *a;
          t.Add(*b, e.op == MaskOp::kAdd ? 1 : -1);
          return t;
        }
        case MaskOp::kMul: {
          std::optional<LinTerm> a = Linearize(*e.children[0]);
          std::optional<LinTerm> b = Linearize(*e.children[1]);
          if (!a || !b) return std::nullopt;
          if (a->coeffs.empty()) {
            t = *b;
            for (auto& [v, c] : t.coeffs) c *= a->constant;
            t.constant *= a->constant;
            return t;
          }
          if (b->coeffs.empty()) {
            t = *a;
            for (auto& [v, c] : t.coeffs) c *= b->constant;
            t.constant *= b->constant;
            return t;
          }
          // Product of two non-constant terms: atomic.
          t = LinTerm{};
          t.coeffs[e.ToString()] = 1;
          return t;
        }
        case MaskOp::kDiv: {
          std::optional<LinTerm> a = Linearize(*e.children[0]);
          std::optional<LinTerm> b = Linearize(*e.children[1]);
          if (!a || !b) return std::nullopt;
          if (b->coeffs.empty() && std::fabs(b->constant) > kTol) {
            t = *a;
            for (auto& [v, c] : t.coeffs) c /= b->constant;
            t.constant /= b->constant;
            return t;
          }
          t = LinTerm{};
          t.coeffs[e.ToString()] = 1;
          return t;
        }
        default:
          // Mod, comparisons, and boolean operators in arithmetic
          // position: atomic.
          t.coeffs[e.ToString()] = 1;
          return t;
      }
  }
  return std::nullopt;
}

bool IsRelational(MaskOp op) {
  switch (op) {
    case MaskOp::kEq: case MaskOp::kNe: case MaskOp::kLt:
    case MaskOp::kLe: case MaskOp::kGt: case MaskOp::kGe:
      return true;
    default:
      return false;
  }
}

/// The single clause every assignment satisfies (the DNF of `true`).
ClauseList TrueDnf() { return ClauseList{Clause{}}; }

/// Conjoins two clause lists (DNF × DNF distribution). Clauses that become
/// trivially contradictory are dropped; nullopt when the product exceeds
/// the cap.
std::optional<ClauseList> AndDnf(const ClauseList& a, const ClauseList& b,
                                 size_t max_clauses) {
  if (a.size() * b.size() > max_clauses) return std::nullopt;
  ClauseList out;
  for (const Clause& ca : a) {
    for (const Clause& cb : b) {
      Clause merged = ca;
      bool consistent = true;
      for (const auto& [key, sign] : cb.bools) {
        if (!merged.AddBool(key, sign)) {
          consistent = false;
          break;
        }
      }
      if (!consistent) continue;
      merged.lin.insert(merged.lin.end(), cb.lin.begin(), cb.lin.end());
      out.push_back(std::move(merged));
    }
  }
  return out;
}

/// DNF of a comparison `lhs op rhs` (or its negation). Returns nullopt if
/// the comparison cannot be expressed linearly — the caller then falls
/// back to an opaque literal.
std::optional<ClauseList> ComparisonDnf(const MaskExpr& lhs, MaskOp op,
                                        const MaskExpr& rhs, bool negate) {
  std::optional<LinTerm> l = Linearize(lhs);
  std::optional<LinTerm> r = Linearize(rhs);
  if (!l || !r) return std::nullopt;

  LinTerm d = *l;       // d = lhs - rhs.
  d.Add(*r, -1);
  d.Normalize();
  LinTerm nd;           // -d.
  nd.Add(d, -1);

  if (negate) op = op == MaskOp::kLt   ? MaskOp::kGe
               : op == MaskOp::kLe   ? MaskOp::kGt
               : op == MaskOp::kGt   ? MaskOp::kLe
               : op == MaskOp::kGe   ? MaskOp::kLt
               : op == MaskOp::kEq   ? MaskOp::kNe
                                     : MaskOp::kEq;

  auto one = [](LinTerm t, bool strict) {
    Clause c;
    c.lin.push_back(LinConstraint{std::move(t), strict});
    return ClauseList{std::move(c)};
  };
  switch (op) {
    case MaskOp::kLt: return one(d, /*strict=*/true);        // d < 0
    case MaskOp::kLe: return one(d, /*strict=*/false);       // d <= 0
    case MaskOp::kGt: return one(nd, /*strict=*/true);       // -d < 0
    case MaskOp::kGe: return one(nd, /*strict=*/false);      // -d <= 0
    case MaskOp::kEq: {                                      // d == 0
      Clause c;
      c.lin.push_back(LinConstraint{d, false});
      c.lin.push_back(LinConstraint{nd, false});
      return ClauseList{std::move(c)};
    }
    case MaskOp::kNe: {                                      // d < 0 || d > 0
      ClauseList out = one(d, true);
      ClauseList other = one(nd, true);
      out.push_back(std::move(other[0]));
      return out;
    }
    default:
      return std::nullopt;
  }
}

/// Recursive DNF conversion with negation pushed down. Returns nullopt
/// when the clause cap is exceeded (give up — kUnknown).
std::optional<ClauseList> Dnf(const MaskExpr& e, bool negate,
                              size_t max_clauses) {
  switch (e.kind) {
    case MaskKind::kLiteral: {
      bool truth = e.literal.Truthy();
      if (negate) truth = !truth;
      return truth ? TrueDnf() : ClauseList{};
    }
    case MaskKind::kUnary:
      if (e.op == MaskOp::kNot) {
        return Dnf(*e.children[0], !negate, max_clauses);
      }
      break;  // Arithmetic in boolean position: opaque.
    case MaskKind::kBinary: {
      bool conj = e.op == MaskOp::kAnd;
      bool disj = e.op == MaskOp::kOr;
      if (conj || disj) {
        std::optional<ClauseList> a = Dnf(*e.children[0], negate, max_clauses);
        std::optional<ClauseList> b = Dnf(*e.children[1], negate, max_clauses);
        if (!a || !b) return std::nullopt;
        // De Morgan: a negated && is an ||.
        if (conj != negate) return AndDnf(*a, *b, max_clauses);
        if (a->size() + b->size() > max_clauses) return std::nullopt;
        a->insert(a->end(), b->begin(), b->end());
        return a;
      }
      if (IsRelational(e.op)) {
        std::optional<ClauseList> cmp =
            ComparisonDnf(*e.children[0], e.op, *e.children[1], negate);
        if (cmp) return cmp;
      }
      break;  // Non-linear comparison or arithmetic: opaque.
    }
    default:
      break;
  }
  // Opaque boolean literal keyed by canonical text.
  Clause c;
  c.AddBool(e.ToString(), !negate);
  return ClauseList{std::move(c)};
}

/// Fourier–Motzkin emptiness check of one clause's linear constraints.
/// Returns true only when the constraint system is provably
/// unsatisfiable over the reals.
bool LinearSystemEmpty(std::vector<LinConstraint> cs,
                       const MaskSolver::Options& options) {
  std::set<std::string> vars;
  for (LinConstraint& c : cs) {
    c.term.Normalize();
    for (const auto& [v, a] : c.term.coeffs) vars.insert(v);
  }
  if (vars.size() > options.max_vars) return false;  // Conservatively sat.

  for (const std::string& v : vars) {
    std::vector<LinConstraint> lower, upper, rest;
    for (LinConstraint& c : cs) {
      auto it = c.term.coeffs.find(v);
      if (it == c.term.coeffs.end()) {
        rest.push_back(std::move(c));
      } else if (it->second > 0) {
        upper.push_back(std::move(c));
      } else {
        lower.push_back(std::move(c));
      }
    }
    if (rest.size() + lower.size() * upper.size() > options.max_constraints) {
      return false;  // Growth guard: give up.
    }
    // Each (lower, upper) pair combines into a v-free consequence:
    // scale so the v coefficients cancel (both scale factors positive,
    // preserving inequality direction).
    for (const LinConstraint& lo : lower) {
      double a_lo = lo.term.coeffs.at(v);   // < 0
      for (const LinConstraint& up : upper) {
        double a_up = up.term.coeffs.at(v);  // > 0
        LinConstraint merged;
        merged.term.Add(lo.term, a_up);
        merged.term.Add(up.term, -a_lo);
        merged.term.Normalize();
        merged.term.coeffs.erase(v);
        merged.strict = lo.strict || up.strict;
        rest.push_back(std::move(merged));
      }
    }
    cs = std::move(rest);
  }

  for (const LinConstraint& c : cs) {
    // All variables eliminated: `constant {<,<=} 0` must hold.
    double value = c.term.constant;
    if (c.strict ? value >= 0 : value > kTol) return true;
  }
  return false;
}

bool ClauseUnsatisfiable(const Clause& c, const MaskSolver::Options& options) {
  // Opaque-literal clashes were dropped at construction; what remains is
  // the linear system.
  return LinearSystemEmpty(c.lin, options);
}

/// True when every clause of the DNF is provably unsatisfiable (an empty
/// list is the DNF of `false`).
bool AllClausesUnsat(const ClauseList& clauses,
                     const MaskSolver::Options& options) {
  for (const Clause& c : clauses) {
    if (!ClauseUnsatisfiable(c, options)) return false;
  }
  return true;
}

}  // namespace

MaskTruth MaskSolver::Truth(const MaskExpr& mask) const {
  std::optional<ClauseList> pos = Dnf(mask, /*negate=*/false,
                                      options_.max_clauses);
  if (pos && AllClausesUnsat(*pos, options_)) return MaskTruth::kNever;
  std::optional<ClauseList> neg = Dnf(mask, /*negate=*/true,
                                      options_.max_clauses);
  if (neg && AllClausesUnsat(*neg, options_)) return MaskTruth::kAlways;
  return MaskTruth::kUnknown;
}

bool MaskSolver::Implies(const MaskExpr& a, const MaskExpr& b) const {
  std::optional<ClauseList> pa = Dnf(a, /*negate=*/false, options_.max_clauses);
  std::optional<ClauseList> nb = Dnf(b, /*negate=*/true, options_.max_clauses);
  if (!pa || !nb) return false;
  std::optional<ClauseList> both = AndDnf(*pa, *nb, options_.max_clauses);
  if (!both) return false;
  return AllClausesUnsat(*both, options_);
}

bool MaskSolver::ConjunctionSatisfiable(
    const std::vector<SignedMask>& literals) const {
  ClauseList acc = TrueDnf();
  for (const SignedMask& lit : literals) {
    if (lit.mask == nullptr) continue;
    std::optional<ClauseList> d =
        Dnf(*lit.mask, /*negate=*/!lit.positive, options_.max_clauses);
    if (!d) return true;  // Undecided: conservatively satisfiable.
    std::optional<ClauseList> merged = AndDnf(acc, *d, options_.max_clauses);
    if (!merged) return true;
    acc = std::move(*merged);
  }
  return !AllClausesUnsat(acc, options_);
}

MaskTruth SolveMaskTruth(const MaskExpr& mask) {
  return MaskSolver().Truth(mask);
}

}  // namespace ode
