#include "analyze/mask_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/strutil.h"

namespace ode {

namespace {

/// Tolerance separating a genuine arithmetic contradiction from
/// floating-point noise; a derived constant constraint must clear it
/// before its clause is declared empty.
constexpr double kTol = 1e-9;

bool NearlyIntegral(double v) {
  return std::fabs(v - std::round(v)) <= kTol * std::max(1.0, std::fabs(v));
}

/// A linear combination Σ coeffs[v]·v + constant over canonical-text
/// variables. Coefficients with |a| <= kTol are dropped on normalization.
struct LinTerm {
  std::map<std::string, double> coeffs;
  double constant = 0;

  void Add(const LinTerm& other, double scale) {
    constant += scale * other.constant;
    for (const auto& [v, a] : other.coeffs) coeffs[v] += scale * a;
  }
  void Normalize() {
    for (auto it = coeffs.begin(); it != coeffs.end();) {
      if (std::fabs(it->second) <= kTol) {
        it = coeffs.erase(it);
      } else {
        ++it;
      }
    }
  }
};

/// One normalized inequality: term < 0 (strict) or term <= 0. `origins`
/// carries the canonical texts of the source comparisons the constraint
/// was derived from — the raw material of UNSAT certificates.
struct LinConstraint {
  LinTerm term;
  bool strict = false;
  std::vector<std::string> origins;
  /// Set when an integer gap cut changed this constraint (certificate
  /// wording: the contradiction exists only over the integers).
  bool tightened = false;

  void MergeOrigins(const LinConstraint& other) {
    for (const std::string& o : other.origins) {
      if (std::find(origins.begin(), origins.end(), o) == origins.end()) {
        origins.push_back(o);
      }
    }
  }
};

/// Renders a constraint's provenance for certificates:
/// "(q > 1) ∧ (q < 2)" → "(q > 1) and (q < 2)".
std::string OriginText(const LinConstraint& c) {
  if (c.origins.empty()) return "a constant constraint";
  std::string out;
  for (size_t i = 0; i < c.origins.size(); ++i) {
    if (i > 0) out += " and ";
    out += c.origins[i];
  }
  return out;
}

/// A DNF clause: a conjunction of linear constraints and signed opaque
/// boolean literals (keyed by canonical text).
struct Clause {
  std::vector<LinConstraint> lin;
  std::map<std::string, bool> bools;

  /// Returns false when adding the literal makes the clause trivially
  /// contradictory (same opaque literal asserted and denied).
  bool AddBool(const std::string& key, bool sign) {
    auto [it, inserted] = bools.emplace(key, sign);
    return inserted || it->second == sign;
  }
};

using ClauseList = std::vector<Clause>;

/// Linearizes an arithmetic mask subexpression. A subterm that cannot be
/// expressed linearly (products of variables, mod, non-constant divisor,
/// host calls, members, identifiers) becomes one atomic variable keyed by
/// its canonical text. Returns nullopt only when the term involves a
/// non-numeric literal — the caller then treats the enclosing comparison
/// as opaque.
std::optional<LinTerm> Linearize(const MaskExpr& e) {
  LinTerm t;
  switch (e.kind) {
    case MaskKind::kLiteral: {
      Result<double> d = e.literal.AsDouble();
      if (!d.ok()) return std::nullopt;
      t.constant = *d;
      return t;
    }
    case MaskKind::kIdent:
    case MaskKind::kMember:
    case MaskKind::kCall:
      t.coeffs[e.ToString()] = 1;
      return t;
    case MaskKind::kUnary:
      if (e.op == MaskOp::kNeg || e.op == MaskOp::kNot) {
        // `!x` in arithmetic position evaluates to a bool at run time;
        // treat the whole node as atomic (kNot) or negate (kNeg).
        if (e.op == MaskOp::kNot) {
          t.coeffs[e.ToString()] = 1;
          return t;
        }
        std::optional<LinTerm> inner = Linearize(*e.children[0]);
        if (!inner) return std::nullopt;
        t.Add(*inner, -1);
        return t;
      }
      t.coeffs[e.ToString()] = 1;
      return t;
    case MaskKind::kBinary:
      switch (e.op) {
        case MaskOp::kAdd:
        case MaskOp::kSub: {
          std::optional<LinTerm> a = Linearize(*e.children[0]);
          std::optional<LinTerm> b = Linearize(*e.children[1]);
          if (!a || !b) return std::nullopt;
          t = *a;
          t.Add(*b, e.op == MaskOp::kAdd ? 1 : -1);
          return t;
        }
        case MaskOp::kMul: {
          std::optional<LinTerm> a = Linearize(*e.children[0]);
          std::optional<LinTerm> b = Linearize(*e.children[1]);
          if (!a || !b) return std::nullopt;
          if (a->coeffs.empty()) {
            t = *b;
            for (auto& [v, c] : t.coeffs) c *= a->constant;
            t.constant *= a->constant;
            return t;
          }
          if (b->coeffs.empty()) {
            t = *a;
            for (auto& [v, c] : t.coeffs) c *= b->constant;
            t.constant *= b->constant;
            return t;
          }
          // Product of two non-constant terms: atomic.
          t = LinTerm{};
          t.coeffs[e.ToString()] = 1;
          return t;
        }
        case MaskOp::kDiv: {
          std::optional<LinTerm> a = Linearize(*e.children[0]);
          std::optional<LinTerm> b = Linearize(*e.children[1]);
          if (!a || !b) return std::nullopt;
          if (b->coeffs.empty() && std::fabs(b->constant) > kTol) {
            t = *a;
            for (auto& [v, c] : t.coeffs) c /= b->constant;
            t.constant /= b->constant;
            return t;
          }
          t = LinTerm{};
          t.coeffs[e.ToString()] = 1;
          return t;
        }
        default:
          // Mod, comparisons, and boolean operators in arithmetic
          // position: atomic.
          t.coeffs[e.ToString()] = 1;
          return t;
      }
  }
  return std::nullopt;
}

bool IsRelational(MaskOp op) {
  switch (op) {
    case MaskOp::kEq: case MaskOp::kNe: case MaskOp::kLt:
    case MaskOp::kLe: case MaskOp::kGt: case MaskOp::kGe:
      return true;
    default:
      return false;
  }
}

/// The single clause every assignment satisfies (the DNF of `true`).
ClauseList TrueDnf() { return ClauseList{Clause{}}; }

/// Conjoins two clause lists (DNF × DNF distribution). Clauses that become
/// trivially contradictory are dropped; nullopt when the product exceeds
/// the cap.
std::optional<ClauseList> AndDnf(const ClauseList& a, const ClauseList& b,
                                 size_t max_clauses) {
  if (a.size() * b.size() > max_clauses) return std::nullopt;
  ClauseList out;
  for (const Clause& ca : a) {
    for (const Clause& cb : b) {
      Clause merged = ca;
      bool consistent = true;
      for (const auto& [key, sign] : cb.bools) {
        if (!merged.AddBool(key, sign)) {
          consistent = false;
          break;
        }
      }
      if (!consistent) continue;
      merged.lin.insert(merged.lin.end(), cb.lin.begin(), cb.lin.end());
      out.push_back(std::move(merged));
    }
  }
  return out;
}

/// DNF of a comparison `lhs op rhs` (or its negation). Returns nullopt if
/// the comparison cannot be expressed linearly — the caller then falls
/// back to an opaque literal. `origin` is the comparison's canonical text
/// (for certificates).
std::optional<ClauseList> ComparisonDnf(const MaskExpr& lhs, MaskOp op,
                                        const MaskExpr& rhs, bool negate,
                                        const std::string& origin) {
  std::optional<LinTerm> l = Linearize(lhs);
  std::optional<LinTerm> r = Linearize(rhs);
  if (!l || !r) return std::nullopt;

  LinTerm d = *l;       // d = lhs - rhs.
  d.Add(*r, -1);
  d.Normalize();
  LinTerm nd;           // -d.
  nd.Add(d, -1);

  if (negate) op = op == MaskOp::kLt   ? MaskOp::kGe
               : op == MaskOp::kLe   ? MaskOp::kGt
               : op == MaskOp::kGt   ? MaskOp::kLe
               : op == MaskOp::kGe   ? MaskOp::kLt
               : op == MaskOp::kEq   ? MaskOp::kNe
                                     : MaskOp::kEq;

  auto one = [&origin](LinTerm t, bool strict) {
    Clause c;
    c.lin.push_back(LinConstraint{std::move(t), strict, {origin}, false});
    return ClauseList{std::move(c)};
  };
  switch (op) {
    case MaskOp::kLt: return one(d, /*strict=*/true);        // d < 0
    case MaskOp::kLe: return one(d, /*strict=*/false);       // d <= 0
    case MaskOp::kGt: return one(nd, /*strict=*/true);       // -d < 0
    case MaskOp::kGe: return one(nd, /*strict=*/false);      // -d <= 0
    case MaskOp::kEq: {                                      // d == 0
      Clause c;
      c.lin.push_back(LinConstraint{d, false, {origin}, false});
      c.lin.push_back(LinConstraint{nd, false, {origin}, false});
      return ClauseList{std::move(c)};
    }
    case MaskOp::kNe: {                                      // d < 0 || d > 0
      ClauseList out = one(d, true);
      ClauseList other = one(nd, true);
      out.push_back(std::move(other[0]));
      return out;
    }
    default:
      return std::nullopt;
  }
}

/// Recursive DNF conversion with negation pushed down. Returns nullopt
/// when the clause cap is exceeded (give up — kUnknown).
std::optional<ClauseList> Dnf(const MaskExpr& e, bool negate,
                              size_t max_clauses) {
  switch (e.kind) {
    case MaskKind::kLiteral: {
      bool truth = e.literal.Truthy();
      if (negate) truth = !truth;
      return truth ? TrueDnf() : ClauseList{};
    }
    case MaskKind::kUnary:
      if (e.op == MaskOp::kNot) {
        return Dnf(*e.children[0], !negate, max_clauses);
      }
      break;  // Arithmetic in boolean position: opaque.
    case MaskKind::kBinary: {
      bool conj = e.op == MaskOp::kAnd;
      bool disj = e.op == MaskOp::kOr;
      if (conj || disj) {
        std::optional<ClauseList> a = Dnf(*e.children[0], negate, max_clauses);
        std::optional<ClauseList> b = Dnf(*e.children[1], negate, max_clauses);
        if (!a || !b) return std::nullopt;
        // De Morgan: a negated && is an ||.
        if (conj != negate) return AndDnf(*a, *b, max_clauses);
        if (a->size() + b->size() > max_clauses) return std::nullopt;
        a->insert(a->end(), b->begin(), b->end());
        return a;
      }
      if (IsRelational(e.op)) {
        std::string origin = negate ? "!" + e.ToString() : e.ToString();
        std::optional<ClauseList> cmp = ComparisonDnf(
            *e.children[0], e.op, *e.children[1], negate, origin);
        if (cmp) return cmp;
      }
      break;  // Non-linear comparison or arithmetic: opaque.
    }
    default:
      break;
  }
  // Opaque boolean literal keyed by canonical text.
  Clause c;
  c.AddBool(e.ToString(), !negate);
  return ClauseList{std::move(c)};
}

bool IsIntegerVar(const std::string& v, const MaskSolver::Options& options) {
  return options.assume_all_integers || options.integer_vars.count(v) > 0;
}

/// Omega-test-style normalization of one constraint over declared integer
/// variables: when every variable is integral and every coefficient is an
/// integer, divide out the coefficient gcd and tighten the constant to the
/// nearest integer bound — a strict bound becomes the next representable
/// non-strict integer bound. This is an equivalence on the constraint's
/// INTEGER solutions (each gap cut is exact per constraint), so any UNSAT
/// derived afterwards is sound.
void TightenForIntegers(LinConstraint* c, const MaskSolver::Options& options) {
  if (c->term.coeffs.empty()) return;
  long long gcd = 0;
  for (const auto& [v, a] : c->term.coeffs) {
    if (!IsIntegerVar(v, options) || !NearlyIntegral(a)) return;
    long long ia = std::llabs(std::llround(a));
    if (ia == 0) return;
    gcd = gcd == 0 ? ia : std::gcd(gcd, ia);
  }
  if (gcd == 0) return;
  // Σ a_i x_i + const {<,<=} 0, a_i integer, x_i integer. Let n = Σ
  // (a_i/g) x_i (an integer). strict: n < -const/g → n <= ceil(-const/g)-1
  // when -const/g is integral, else n <= floor(-const/g); non-strict:
  // n <= floor(-const/g).
  double g = static_cast<double>(gcd);
  double bound = -c->term.constant / g;
  double ibound;
  if (c->strict) {
    ibound = NearlyIntegral(bound) ? std::round(bound) - 1 : std::floor(bound);
  } else {
    ibound = NearlyIntegral(bound) ? std::round(bound) : std::floor(bound);
  }
  bool changed = c->strict || std::fabs(ibound - bound) > kTol ||
                 std::fabs(g - 1.0) > kTol;
  for (auto& [v, a] : c->term.coeffs) a = std::round(a) / g;
  c->term.constant = -ibound;
  c->strict = false;
  if (changed) c->tightened = true;
}

/// Picks the variable whose elimination generates the fewest new
/// constraints (lower-count × upper-count, tie-broken alphabetically) —
/// the classic greedy Fourier–Motzkin ordering that keeps multi-variable
/// clauses tractable without a hard variable cap.
std::string PickEliminationVar(const std::vector<LinConstraint>& cs) {
  std::map<std::string, std::pair<size_t, size_t>> occur;  // lower, upper
  for (const LinConstraint& c : cs) {
    for (const auto& [v, a] : c.term.coeffs) {
      if (a > 0) {
        ++occur[v].second;
      } else {
        ++occur[v].first;
      }
    }
  }
  std::string best;
  size_t best_cost = std::numeric_limits<size_t>::max();
  for (const auto& [v, lu] : occur) {
    size_t cost = lu.first * lu.second;
    if (cost < best_cost) {
      best_cost = cost;
      best = v;
    }
  }
  return best;  // Empty when no variables remain.
}

/// A constant constraint that cannot hold: `constant {<,<=} 0` violated
/// beyond tolerance.
bool ConstantContradiction(const LinConstraint& c) {
  if (!c.term.coeffs.empty()) return false;
  double value = c.term.constant;
  return c.strict ? value >= -kTol : value > kTol;
}

/// Scans for a constant contradiction; when found and `why` is non-null,
/// renders the certificate from the constraint's provenance.
bool FindContradiction(const std::vector<LinConstraint>& cs,
                       std::string* why) {
  for (const LinConstraint& c : cs) {
    if (!ConstantContradiction(c)) continue;
    if (why != nullptr) {
      *why = StrFormat(
          "%s %s mutually unsatisfiable%s", OriginText(c).c_str(),
          c.origins.size() == 1 ? "is" : "are",
          c.tightened ? " over the integers (gap cut)" : "");
    }
    return true;
  }
  return false;
}

/// Fourier–Motzkin emptiness check of one clause's linear constraints.
/// Returns true only when the constraint system is provably unsatisfiable
/// (over the reals, with integer gap cuts applied to constraints whose
/// variables are all declared integral). Best-effort within the work
/// bounds: running out of budget returns false (conservatively sat), but
/// a contradiction already derived is still reported.
bool LinearSystemEmpty(std::vector<LinConstraint> cs,
                       const MaskSolver::Options& options, std::string* why) {
  for (LinConstraint& c : cs) {
    c.term.Normalize();
    TightenForIntegers(&c, options);
  }
  if (FindContradiction(cs, why)) return true;

  for (size_t step = 0; step < options.max_vars; ++step) {
    std::string v = PickEliminationVar(cs);
    if (v.empty()) break;  // Fully eliminated.
    std::vector<LinConstraint> lower, upper, rest;
    for (LinConstraint& c : cs) {
      auto it = c.term.coeffs.find(v);
      if (it == c.term.coeffs.end()) {
        rest.push_back(std::move(c));
      } else if (it->second > 0) {
        upper.push_back(std::move(c));
      } else {
        lower.push_back(std::move(c));
      }
    }
    if (rest.size() + lower.size() * upper.size() > options.max_constraints) {
      // Bounded-work fallback: no budget to eliminate further. Everything
      // derived so far is still implied, so a contradiction among it is a
      // sound UNSAT; otherwise give up (conservatively sat).
      rest.insert(rest.end(), lower.begin(), lower.end());
      rest.insert(rest.end(), upper.begin(), upper.end());
      return FindContradiction(rest, why);
    }
    // Each (lower, upper) pair combines into a v-free consequence:
    // scale so the v coefficients cancel (both scale factors positive,
    // preserving inequality direction).
    for (const LinConstraint& lo : lower) {
      double a_lo = lo.term.coeffs.at(v);   // < 0
      for (const LinConstraint& up : upper) {
        double a_up = up.term.coeffs.at(v);  // > 0
        LinConstraint merged;
        merged.term.Add(lo.term, a_up);
        merged.term.Add(up.term, -a_lo);
        merged.term.Normalize();
        merged.term.coeffs.erase(v);
        merged.strict = lo.strict || up.strict;
        merged.tightened = lo.tightened || up.tightened;
        merged.origins = lo.origins;
        merged.MergeOrigins(up);
        TightenForIntegers(&merged, options);
        rest.push_back(std::move(merged));
      }
    }
    cs = std::move(rest);
    if (FindContradiction(cs, why)) return true;
  }
  return FindContradiction(cs, why);
}

bool ClauseUnsatisfiable(const Clause& c, const MaskSolver::Options& options,
                         std::string* why) {
  // Opaque-literal clashes were dropped at construction; what remains is
  // the linear system.
  return LinearSystemEmpty(c.lin, options, why);
}

/// True when every clause of the DNF is provably unsatisfiable (an empty
/// list is the DNF of `false`). `why` receives the first clause's
/// certificate (representative; every clause has one).
bool AllClausesUnsat(const ClauseList& clauses,
                     const MaskSolver::Options& options,
                     std::string* why = nullptr) {
  bool first = true;
  for (const Clause& c : clauses) {
    if (!ClauseUnsatisfiable(c, options, first ? why : nullptr)) return false;
    first = false;
  }
  return true;
}

/// Builds the DNF of a signed-mask conjunction; nullopt when any literal
/// fails to convert or a cap trips (undecided).
std::optional<ClauseList> ConjunctionDnf(
    const std::vector<MaskSolver::SignedMask>& literals,
    const MaskSolver::Options& options) {
  ClauseList acc = TrueDnf();
  for (const MaskSolver::SignedMask& lit : literals) {
    if (lit.mask == nullptr) continue;
    std::optional<ClauseList> d =
        Dnf(*lit.mask, /*negate=*/!lit.positive, options.max_clauses);
    if (!d) return std::nullopt;
    std::optional<ClauseList> merged = AndDnf(acc, *d, options.max_clauses);
    if (!merged) return std::nullopt;
    acc = std::move(*merged);
  }
  return acc;
}

/// One variable's elimination record for back-substitution: the
/// constraints that mentioned it, captured at elimination time (they only
/// reference variables eliminated later).
struct EliminationFrame {
  std::string var;
  std::vector<LinConstraint> constraints;
};

/// Evaluates a term under a (partial) assignment; every coefficient
/// variable must be assigned.
std::optional<double> Evaluate(const LinTerm& t,
                               const std::map<std::string, double>& values) {
  double sum = t.constant;
  for (const auto& [v, a] : t.coeffs) {
    auto it = values.find(v);
    if (it == values.end()) return std::nullopt;
    sum += a * it->second;
  }
  return sum;
}

/// Picks a concrete value in (lo, hi) honoring strictness; prefers 0,
/// then the smallest admissible integer, then the midpoint. Integer
/// variables fail (nullopt) when the interval contains no integer.
std::optional<double> PickValue(double lo, bool lo_strict, double hi,
                                bool hi_strict, bool integral) {
  auto admits = [&](double x) {
    if (lo_strict ? x <= lo + kTol : x < lo - kTol) return false;
    if (hi_strict ? x >= hi - kTol : x > hi + kTol) return false;
    return true;
  };
  if (admits(0)) return 0;
  // Smallest integer >= the lower bound (or toward the upper when only an
  // upper bound exists).
  if (lo > -std::numeric_limits<double>::infinity()) {
    double c = std::ceil(lo - kTol);
    if (lo_strict && NearlyIntegral(lo)) c = std::round(lo) + 1;
    if (admits(c)) return c;
    if (admits(c + 1)) return c + 1;
  } else if (hi < std::numeric_limits<double>::infinity()) {
    double f = std::floor(hi + kTol);
    if (hi_strict && NearlyIntegral(hi)) f = std::round(hi) - 1;
    if (admits(f)) return f;
    if (admits(f - 1)) return f - 1;
  }
  if (integral) return std::nullopt;  // No integer in the gap.
  double mid = (lo + hi) / 2;
  if (admits(mid)) return mid;
  return std::nullopt;
}

/// Fourier–Motzkin model extraction for one clause: eliminate with frames,
/// back-substitute in reverse, verify every original constraint. Returns
/// nullopt when the clause is unsatisfiable or the work budget trips.
std::optional<MaskSolver::Model> ClauseModel(
    const Clause& clause, const MaskSolver::Options& options) {
  std::vector<LinConstraint> original = clause.lin;
  for (LinConstraint& c : original) {
    c.term.Normalize();
    TightenForIntegers(&c, options);
  }
  std::vector<LinConstraint> cs = original;
  std::vector<EliminationFrame> frames;
  while (true) {
    if (FindContradiction(cs, nullptr)) return std::nullopt;
    std::string v = PickEliminationVar(cs);
    if (v.empty()) break;
    if (frames.size() >= options.max_vars) return std::nullopt;
    EliminationFrame frame;
    frame.var = v;
    std::vector<LinConstraint> lower, upper, rest;
    for (LinConstraint& c : cs) {
      auto it = c.term.coeffs.find(v);
      if (it == c.term.coeffs.end()) {
        rest.push_back(std::move(c));
      } else if (it->second > 0) {
        upper.push_back(std::move(c));
      } else {
        lower.push_back(std::move(c));
      }
    }
    if (rest.size() + lower.size() * upper.size() > options.max_constraints) {
      return std::nullopt;  // Bounded work: no model this way.
    }
    for (const LinConstraint& lo : lower) {
      double a_lo = lo.term.coeffs.at(v);
      for (const LinConstraint& up : upper) {
        double a_up = up.term.coeffs.at(v);
        LinConstraint merged;
        merged.term.Add(lo.term, a_up);
        merged.term.Add(up.term, -a_lo);
        merged.term.Normalize();
        merged.term.coeffs.erase(v);
        merged.strict = lo.strict || up.strict;
        TightenForIntegers(&merged, options);
        rest.push_back(std::move(merged));
      }
    }
    frame.constraints = std::move(lower);
    frame.constraints.insert(frame.constraints.end(), upper.begin(),
                             upper.end());
    frames.push_back(std::move(frame));
    cs = std::move(rest);
  }

  // Back-substitution: the last-eliminated variable's constraints are
  // variable-free once earlier frames are valued, so walk in reverse.
  MaskSolver::Model model;
  for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
    double lo = -std::numeric_limits<double>::infinity();
    double hi = std::numeric_limits<double>::infinity();
    bool lo_strict = false;
    bool hi_strict = false;
    for (const LinConstraint& c : it->constraints) {
      double a = c.term.coeffs.at(it->var);
      LinTerm rest = c.term;
      rest.coeffs.erase(it->var);
      std::optional<double> r = Evaluate(rest, model.values);
      if (!r) return std::nullopt;
      double bound = -*r / a;
      if (a > 0) {  // a·v + rest ≤ 0  →  v ≤ bound.
        if (bound < hi - kTol || (c.strict && std::fabs(bound - hi) <= kTol)) {
          hi = bound;
          hi_strict = c.strict;
        }
      } else {      // v ≥ bound.
        if (bound > lo + kTol || (c.strict && std::fabs(bound - lo) <= kTol)) {
          lo = bound;
          lo_strict = c.strict;
        }
      }
    }
    std::optional<double> value =
        PickValue(lo, lo_strict, hi, hi_strict, IsIntegerVar(it->var, options));
    if (!value) return std::nullopt;
    model.values[it->var] = *value;
  }

  // Verification pass: the model must satisfy every original constraint
  // (floating-point drift and integer rounding are both caught here).
  for (const LinConstraint& c : original) {
    std::optional<double> v = Evaluate(c.term, model.values);
    if (!v) return std::nullopt;
    if (c.strict ? *v >= -kTol : *v > kTol) return std::nullopt;
  }
  model.bools = clause.bools;
  return model;
}

}  // namespace

MaskTruth MaskSolver::Truth(const MaskExpr& mask, std::string* why) const {
  std::optional<ClauseList> pos = Dnf(mask, /*negate=*/false,
                                      options_.max_clauses);
  if (pos && AllClausesUnsat(*pos, options_, why)) return MaskTruth::kNever;
  std::optional<ClauseList> neg = Dnf(mask, /*negate=*/true,
                                      options_.max_clauses);
  if (neg && AllClausesUnsat(*neg, options_, why)) return MaskTruth::kAlways;
  return MaskTruth::kUnknown;
}

bool MaskSolver::Implies(const MaskExpr& a, const MaskExpr& b) const {
  std::optional<ClauseList> pa = Dnf(a, /*negate=*/false, options_.max_clauses);
  std::optional<ClauseList> nb = Dnf(b, /*negate=*/true, options_.max_clauses);
  if (!pa || !nb) return false;
  std::optional<ClauseList> both = AndDnf(*pa, *nb, options_.max_clauses);
  if (!both) return false;
  return AllClausesUnsat(*both, options_);
}

bool MaskSolver::ConjunctionSatisfiable(
    const std::vector<SignedMask>& literals) const {
  std::optional<ClauseList> acc = ConjunctionDnf(literals, options_);
  if (!acc) return true;  // Undecided: conservatively satisfiable.
  return !AllClausesUnsat(*acc, options_);
}

std::optional<std::string> MaskSolver::RefuteConjunction(
    const std::vector<SignedMask>& literals) const {
  std::optional<ClauseList> acc = ConjunctionDnf(literals, options_);
  if (!acc) return std::nullopt;
  std::string why;
  if (!AllClausesUnsat(*acc, options_, &why)) return std::nullopt;
  if (why.empty()) why = "the signed mask combination is contradictory";
  return why;
}

std::optional<MaskSolver::Model> MaskSolver::FindModel(
    const std::vector<SignedMask>& literals) const {
  std::optional<ClauseList> acc = ConjunctionDnf(literals, options_);
  if (!acc) return std::nullopt;
  for (const Clause& clause : *acc) {
    std::optional<Model> model = ClauseModel(clause, options_);
    if (model) return model;
  }
  return std::nullopt;
}

MaskTruth SolveMaskTruth(const MaskExpr& mask) {
  return MaskSolver().Truth(mask);
}

void AddIntegerParams(const std::vector<ParamDecl>& params,
                      MaskSolver::Options* options) {
  for (const ParamDecl& p : params) {
    if (p.name.empty()) continue;
    if (p.type_name == "int" || p.type_name == "long" ||
        p.type_name == "int64" || p.type_name == "integer") {
      options->integer_vars.insert(p.name);
    }
  }
}

}  // namespace ode
