#include "analyze/witness.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>

#include "analyze/mask_solver.h"
#include "automaton/determinize.h"
#include "common/strutil.h"
#include "semantics/oracle.h"

namespace ode {

namespace {

/// A group's canonical parameter declarations: the representative basic
/// event's signature when it has one, else the first mask slot that
/// declares one. Parameter names are positional aliases (§3.1), so every
/// slot's mask is rewritten onto this one name set before solving — two
/// atoms calling the second withdraw argument `q` and `amt` constrain the
/// same value.
const std::vector<ParamDecl>* CanonicalParams(const Alphabet& alphabet,
                                              size_t group) {
  const BasicEvent& spec = alphabet.group_spec(group);
  if (!spec.params.empty()) return &spec.params;
  for (const MaskSlot& slot : alphabet.group_masks(group)) {
    if (!slot.params.empty()) return &slot.params;
  }
  return nullptr;
}

/// Rebuilds a mask with identifiers renamed per `map` (names absent from
/// the map are kept). MaskExpr nodes are immutable, so this is a fresh
/// tree; spans are dropped (witness masks are synthesized, never rendered
/// with carets).
MaskExprPtr RenameIdents(const MaskExprPtr& e,
                         const std::map<std::string, std::string>& map) {
  if (map.empty() || e == nullptr) return e;
  switch (e->kind) {
    case MaskKind::kLiteral:
      return e;
    case MaskKind::kIdent: {
      auto it = map.find(e->name);
      return it == map.end() ? e : MaskExpr::Ident(it->second);
    }
    case MaskKind::kMember:
      return MaskExpr::Member(RenameIdents(e->children[0], map), e->name);
    case MaskKind::kCall: {
      std::vector<MaskExprPtr> args;
      args.reserve(e->children.size());
      for (const MaskExprPtr& c : e->children) {
        args.push_back(RenameIdents(c, map));
      }
      return MaskExpr::Call(e->name, std::move(args));
    }
    case MaskKind::kUnary:
      return MaskExpr::Unary(e->op, RenameIdents(e->children[0], map));
    case MaskKind::kBinary:
      return MaskExpr::Binary(e->op, RenameIdents(e->children[0], map),
                              RenameIdents(e->children[1], map));
  }
  return e;
}

/// The signed mask conjunction a micro-symbol asserts, with every slot's
/// parameter names canonicalized. `storage` owns the rewritten masks for
/// the lifetime of the returned literal pointers.
std::vector<MaskSolver::SignedMask> SymbolLiterals(
    const Alphabet& alphabet, size_t group, size_t bits,
    std::vector<MaskExprPtr>* storage) {
  const std::vector<MaskSlot>& slots = alphabet.group_masks(group);
  const std::vector<ParamDecl>* canon = CanonicalParams(alphabet, group);
  std::vector<MaskSolver::SignedMask> literals;
  literals.reserve(slots.size());
  for (size_t i = 0; i < slots.size(); ++i) {
    std::map<std::string, std::string> rename;
    if (canon != nullptr) {
      for (size_t p = 0;
           p < slots[i].params.size() && p < canon->size(); ++p) {
        const std::string& from = slots[i].params[p].name;
        const std::string& to = (*canon)[p].name;
        if (!from.empty() && !to.empty() && from != to) rename[from] = to;
      }
    }
    storage->push_back(RenameIdents(slots[i].mask, rename));
    literals.push_back({storage->back().get(), ((bits >> i) & 1) != 0});
  }
  return literals;
}

/// A solver whose integer variables are the group's integral parameters
/// (canonical names).
MaskSolver GroupSolver(const Alphabet& alphabet, size_t group) {
  MaskSolver::Options options;
  const std::vector<ParamDecl>* canon = CanonicalParams(alphabet, group);
  if (canon != nullptr) AddIntegerParams(*canon, &options);
  return MaskSolver(std::move(options));
}

/// The group owning `symbol`, or nullopt for OTHER.
std::optional<size_t> GroupOf(const Alphabet& alphabet, SymbolId symbol) {
  for (size_t g = 0; g < alphabet.num_groups(); ++g) {
    SymbolId base = alphabet.group_base(g);
    if (symbol >= base &&
        static_cast<size_t>(symbol) < base + alphabet.group_num_symbols(g)) {
      return g;
    }
  }
  return std::nullopt;
}

std::string RenderModelValue(double v) {
  if (std::fabs(v - std::round(v)) <= 1e-9 * std::max(1.0, std::fabs(v))) {
    return StrFormat("%lld", static_cast<long long>(std::llround(v)));
  }
  return StrFormat("%g", v);
}

}  // namespace

std::string RenderSymbolEvent(const Alphabet& alphabet, SymbolId symbol) {
  if (symbol == alphabet.other_symbol()) return "<other>";
  std::optional<size_t> g = GroupOf(alphabet, symbol);
  if (!g) return "<other>";
  const BasicEvent& spec = alphabet.group_spec(*g);
  if (spec.kind != BasicEventKind::kMethod) return spec.ToString();

  std::string out = spec.method_name;
  const std::vector<ParamDecl>* canon = CanonicalParams(alphabet, *g);
  if (canon == nullptr || canon->empty()) return out + "()";

  // Concrete argument values: a model of the symbol's signed mask
  // conjunction. Unconstrained parameters default to 0.
  size_t bits = static_cast<size_t>(symbol - alphabet.group_base(*g));
  std::vector<MaskExprPtr> storage;
  std::vector<MaskSolver::SignedMask> literals =
      SymbolLiterals(alphabet, *g, bits, &storage);
  std::optional<MaskSolver::Model> model =
      GroupSolver(alphabet, *g).FindModel(literals);

  out += "(";
  for (size_t p = 0; p < canon->size(); ++p) {
    if (p > 0) out += ", ";
    out += (*canon)[p].name;
    out += "=";
    if (model) {
      auto it = model->values.find((*canon)[p].name);
      out += it != model->values.end() ? RenderModelValue(it->second) : "0";
    } else {
      // No model within the work bounds (opaque/non-linear masks): the
      // history is still valid at the symbol level, but no concrete value
      // can be named.
      out += "?";
    }
  }
  out += ")";
  return out;
}

std::string SymbolInfeasibilityNote(const Alphabet& alphabet,
                                    SymbolId symbol) {
  std::optional<size_t> g = GroupOf(alphabet, symbol);
  if (!g) return {};
  size_t bits = static_cast<size_t>(symbol - alphabet.group_base(*g));
  std::vector<MaskExprPtr> storage;
  std::vector<MaskSolver::SignedMask> literals =
      SymbolLiterals(alphabet, *g, bits, &storage);
  if (literals.empty()) return {};
  std::optional<std::string> why =
      GroupSolver(alphabet, *g).RefuteConjunction(literals);
  if (why) return "unrealizable: " + *why;
  return "unrealizable: a required mask is constant";
}

std::optional<std::vector<SymbolId>> ShortestAcceptedString(
    const Dfa& dfa, const std::vector<bool>& possible, size_t max_steps) {
  if (dfa.num_states() == 0) return std::nullopt;
  // BFS layer by layer; symbols ascending, so the first accepting state
  // dequeued was reached by the lexicographically-least shortest string.
  struct Visit {
    Dfa::State state;
    int via_state;     ///< Predecessor's index in `order`, -1 for roots.
    SymbolId via_sym;
  };
  std::vector<bool> seen(dfa.num_states(), false);
  std::vector<Visit> order;
  std::deque<int> frontier;
  std::vector<size_t> depth_of;

  auto reconstruct = [&order](int idx) {
    std::vector<SymbolId> path;
    while (idx >= 0) {
      path.push_back(order[idx].via_sym);
      idx = order[idx].via_state;
    }
    std::reverse(path.begin(), path.end());
    return path;
  };

  // Seed with every 1-step successor of the start (length >= 1 required).
  for (size_t s = 0; s < dfa.alphabet_size(); ++s) {
    if (!possible[s]) continue;
    Dfa::State to = dfa.Step(dfa.start(), static_cast<SymbolId>(s));
    if (seen[to]) continue;
    seen[to] = true;
    order.push_back({to, -1, static_cast<SymbolId>(s)});
    depth_of.push_back(1);
    frontier.push_back(static_cast<int>(order.size()) - 1);
  }
  while (!frontier.empty()) {
    int idx = frontier.front();
    frontier.pop_front();
    if (dfa.accepting(order[idx].state)) return reconstruct(idx);
    if (depth_of[idx] >= max_steps) continue;
    for (size_t s = 0; s < dfa.alphabet_size(); ++s) {
      if (!possible[s]) continue;
      Dfa::State to = dfa.Step(order[idx].state, static_cast<SymbolId>(s));
      if (seen[to]) continue;
      seen[to] = true;
      order.push_back({to, idx, static_cast<SymbolId>(s)});
      depth_of.push_back(depth_of[idx] + 1);
      frontier.push_back(static_cast<int>(order.size()) - 1);
    }
  }
  return std::nullopt;
}

namespace {

/// A short realizable history touching each mask group once (its first
/// realizable micro-symbol) and ending with OTHER — the probe appended to
/// non-firing demonstrations.
std::vector<SymbolId> BuildProbe(const Alphabet& alphabet,
                                 const std::vector<bool>& possible,
                                 size_t max_len) {
  std::vector<SymbolId> probe;
  for (size_t g = 0; g < alphabet.num_groups() && probe.size() + 1 < max_len;
       ++g) {
    SymbolId base = alphabet.group_base(g);
    for (size_t i = 0; i < alphabet.group_num_symbols(g); ++i) {
      if (possible[base + i]) {
        probe.push_back(static_cast<SymbolId>(base + i));
        break;
      }
    }
  }
  if (probe.size() < max_len) probe.push_back(alphabet.other_symbol());
  return probe;
}

/// Builds the steps of a single-subject history: events rendered from
/// symbols, fires column = the oracle's occurrence points.
std::vector<WitnessStep> BuildSteps(const Alphabet& alphabet,
                                    const std::vector<SymbolId>& history,
                                    const std::vector<bool>& occurrence) {
  std::vector<WitnessStep> steps(history.size());
  for (size_t i = 0; i < history.size(); ++i) {
    steps[i].event = RenderSymbolEvent(alphabet, history[i]);
    steps[i].fires = {i < occurrence.size() && occurrence[i]};
  }
  return steps;
}

bool GatesUnsupported(const CompiledEvent& compiled) {
  return compiled.num_gates() > 0;
}

}  // namespace

WitnessResult EmptinessWitness(const CompiledEvent& compiled,
                               const std::string& name,
                               const WitnessOptions& options) {
  WitnessResult result;
  if (GatesUnsupported(compiled)) return result;
  const Alphabet& alphabet = compiled.alphabet;
  Oracle oracle(compiled.expr, &alphabet);
  std::vector<bool> possible = ComputeAlphabetPossibleSymbols(alphabet);

  // 1) The shortest symbol-level accepting path. Since the language over
  // the realizable symbols is empty (A001), any such path uses impossible
  // events — each annotated with the solver's refutation.
  std::vector<bool> all(alphabet.size(), true);
  std::optional<std::vector<SymbolId>> path =
      ShortestAcceptedString(compiled.dfa, all, options.max_steps);
  if (path) {
    Result<std::vector<bool>> points = oracle.OccurrencePoints(*path);
    if (points.ok() && !points->empty() && points->back()) {
      WitnessHistory w;
      w.claim = StrFormat(
          "the only histories matching the expression require impossible "
          "events (shortest shown); '%s' cannot fire on any real history",
          name.c_str());
      w.columns = {name};
      w.steps = BuildSteps(alphabet, *path, *points);
      for (size_t i = 0; i < path->size(); ++i) {
        if (!possible[(*path)[i]]) {
          w.steps[i].note = SymbolInfeasibilityNote(alphabet, (*path)[i]);
        }
      }
      result.histories.push_back(std::move(w));
    } else {
      ++result.validation_failures;
    }
  }

  // 2) A realizable probe the oracle confirms never fires.
  std::vector<SymbolId> probe =
      BuildProbe(alphabet, possible, options.probe_steps);
  Result<std::vector<bool>> points = oracle.OccurrencePoints(probe);
  if (points.ok() &&
      std::none_of(points->begin(), points->end(), [](bool b) { return b; })) {
    WitnessHistory w;
    w.claim = StrFormat(
        "probe: a realizable history on which '%s' never fires (validated "
        "against the §4 oracle)",
        name.c_str());
    w.columns = {name};
    w.steps = BuildSteps(alphabet, probe, *points);
    result.histories.push_back(std::move(w));
  } else {
    ++result.validation_failures;
  }
  return result;
}

WitnessResult UniversalityWitness(const CompiledEvent& compiled,
                                  const std::string& name,
                                  const WitnessOptions& options) {
  WitnessResult result;
  if (GatesUnsupported(compiled)) return result;
  const Alphabet& alphabet = compiled.alphabet;
  Oracle oracle(compiled.expr, &alphabet);
  std::vector<bool> possible = ComputeAlphabetPossibleSymbols(alphabet);

  std::vector<SymbolId> sample =
      BuildProbe(alphabet, possible, options.probe_steps);
  if (sample.empty()) return result;
  Result<std::vector<bool>> points = oracle.OccurrencePoints(sample);
  if (points.ok() &&
      std::all_of(points->begin(), points->end(), [](bool b) { return b; })) {
    WitnessHistory w;
    w.claim = StrFormat(
        "sample realizable history — '%s' fires at every step (it fires at "
        "every point of every realizable history)",
        name.c_str());
    w.columns = {name};
    w.steps = BuildSteps(alphabet, sample, *points);
    result.histories.push_back(std::move(w));
  } else {
    ++result.validation_failures;
  }
  return result;
}

WitnessResult DeadStateWitness(const CompiledEvent& compiled,
                               const std::string& name,
                               const WitnessOptions& options) {
  WitnessResult result;
  if (GatesUnsupported(compiled)) return result;
  const Alphabet& alphabet = compiled.alphabet;
  const Dfa& dfa = compiled.dfa;
  std::vector<bool> possible = ComputeAlphabetPossibleSymbols(alphabet);

  // Dead = reachable but no accepting state reachable from it: one
  // backward closure from the accepting states (same computation as
  // AnalyzeStates, but we need the set, not the count).
  std::vector<std::vector<Dfa::State>> reverse(dfa.num_states());
  for (size_t s = 0; s < dfa.num_states(); ++s) {
    for (size_t sym = 0; sym < dfa.alphabet_size(); ++sym) {
      if (!possible[sym]) continue;
      reverse[dfa.Step(static_cast<Dfa::State>(s),
                       static_cast<SymbolId>(sym))]
          .push_back(static_cast<Dfa::State>(s));
    }
  }
  std::vector<bool> live(dfa.num_states(), false);
  std::deque<Dfa::State> frontier;
  for (size_t s = 0; s < dfa.num_states(); ++s) {
    if (dfa.accepting(static_cast<Dfa::State>(s))) {
      live[s] = true;
      frontier.push_back(static_cast<Dfa::State>(s));
    }
  }
  while (!frontier.empty()) {
    Dfa::State cur = frontier.front();
    frontier.pop_front();
    for (Dfa::State pred : reverse[cur]) {
      if (!live[pred]) {
        live[pred] = true;
        frontier.push_back(pred);
      }
    }
  }

  // Shortest realizable path into a dead state: BFS on a DFA copy whose
  // accepting set is the dead set.
  Dfa probe_dfa = dfa;
  for (size_t s = 0; s < dfa.num_states(); ++s) {
    probe_dfa.SetAccepting(static_cast<Dfa::State>(s), !live[s]);
  }
  std::optional<std::vector<SymbolId>> path =
      ShortestAcceptedString(probe_dfa, possible, options.max_steps);
  if (!path) return result;
  size_t entry = path->size() - 1;  // 0-based index of the entering step.

  std::vector<SymbolId> history = *path;
  for (SymbolId s : BuildProbe(alphabet, possible, options.probe_steps)) {
    history.push_back(s);
  }
  Oracle oracle(compiled.expr, &alphabet);
  Result<std::vector<bool>> points = oracle.OccurrencePoints(history);
  bool valid = points.ok();
  if (valid) {
    for (size_t i = entry; i < points->size(); ++i) {
      if ((*points)[i]) valid = false;
    }
  }
  if (!valid) {
    ++result.validation_failures;
    return result;
  }
  WitnessHistory w;
  w.claim = StrFormat(
      "shortest realizable history driving '%s' into a dead state (the "
      "probe suffix confirms it can never fire again)",
      name.c_str());
  w.columns = {name};
  w.steps = BuildSteps(alphabet, history, *points);
  w.steps[entry].note =
      "dead: from this point no accepting state is reachable";
  result.histories.push_back(std::move(w));
  return result;
}

namespace {

/// Mirror of CompareEventExprsDetailed's compilation pipeline: both cores
/// over one joint alphabet. Fails (nullopt) exactly when the comparison
/// would have been kIncomparable for structural reasons.
struct JointPair {
  EventExprPtr core_a;
  EventExprPtr core_b;
  Alphabet alphabet;
  Dfa dfa_a;
  Dfa dfa_b;
};

EventExprPtr StripMasks(EventExprPtr e) {
  while (e->kind == EventExprKind::kMasked) e = e->children[0];
  return e;
}

bool HasMaskedNode(const EventExpr& e) {
  if (e.kind == EventExprKind::kMasked) return true;
  for (const EventExprPtr& c : e.children) {
    if (HasMaskedNode(*c)) return true;
  }
  return false;
}

std::optional<JointPair> BuildJointPair(const EventExprPtr& a,
                                        const EventExprPtr& b,
                                        const CompileOptions& options) {
  JointPair joint;
  joint.core_a = StripMasks(a);
  joint.core_b = StripMasks(b);
  if (HasMaskedNode(*joint.core_a) || HasMaskedNode(*joint.core_b)) {
    return std::nullopt;
  }
  EventExprPtr joined = EventExpr::Or(joint.core_a, joint.core_b);
  Result<Alphabet> alphabet = Alphabet::Build(*joined, options.alphabet);
  if (!alphabet.ok()) return std::nullopt;
  joint.alphabet = std::move(*alphabet);
  Result<Nfa> nfa_a = CompileToNfa(*joint.core_a, joint.alphabet, options);
  Result<Nfa> nfa_b = CompileToNfa(*joint.core_b, joint.alphabet, options);
  if (!nfa_a.ok() || !nfa_b.ok()) return std::nullopt;
  Result<Dfa> dfa_a = Determinize(*nfa_a, options.max_states);
  Result<Dfa> dfa_b = Determinize(*nfa_b, options.max_states);
  if (!dfa_a.ok() || !dfa_b.ok()) return std::nullopt;
  joint.dfa_a = std::move(*dfa_a);
  joint.dfa_b = std::move(*dfa_b);
  return joint;
}

/// Builds + validates one two-column history: fires columns must match
/// both oracles, and `expect_end` per column must hold at the last step.
bool AppendPairHistory(const JointPair& joint, const Oracle& oracle_a,
                       const Oracle& oracle_b,
                       const std::vector<SymbolId>& history,
                       const std::string& claim, const std::string& name_a,
                       const std::string& name_b, bool expect_a_end,
                       bool expect_b_end, WitnessResult* result) {
  Result<std::vector<bool>> pa = oracle_a.OccurrencePoints(history);
  Result<std::vector<bool>> pb = oracle_b.OccurrencePoints(history);
  if (!pa.ok() || !pb.ok() || pa->empty() ||
      pa->back() != expect_a_end || pb->back() != expect_b_end) {
    ++result->validation_failures;
    return false;
  }
  WitnessHistory w;
  w.claim = claim;
  w.columns = {name_a, name_b};
  w.steps.resize(history.size());
  for (size_t i = 0; i < history.size(); ++i) {
    w.steps[i].event = RenderSymbolEvent(joint.alphabet, history[i]);
    w.steps[i].fires = {(*pa)[i], (*pb)[i]};
  }
  result->histories.push_back(std::move(w));
  return true;
}

}  // namespace

WitnessResult PairWitness(const EventExprPtr& a, const EventExprPtr& b,
                          const std::string& name_a,
                          const std::string& name_b, PairRelation relation,
                          bool via_mask_implication,
                          const WitnessOptions& options) {
  WitnessResult result;
  if (relation == PairRelation::kIncomparable ||
      relation == PairRelation::kDistinct) {
    return result;
  }
  std::optional<JointPair> joint = BuildJointPair(a, b, options.compile);
  if (!joint) return result;
  std::vector<bool> possible =
      ComputeAlphabetPossibleSymbols(joint->alphabet);
  Oracle oracle_a(joint->core_a, &joint->alphabet);
  Oracle oracle_b(joint->core_b, &joint->alphabet);

  // Witnesses speak about the *core* languages; when the verdict relied on
  // root-mask implication (A007), say so in the claim — the mask gates
  // run-time state the history cannot bind.
  const char* mask_caveat =
      via_mask_implication
          ? " (plus the solver-proven root-mask implication)"
          : "";

  // The "both fire" instance: shortest string in the contained language
  // (for equivalence, either one — intersect for symmetry).
  const Dfa& inner = relation == PairRelation::kASubsumesB ? joint->dfa_b
                     : relation == PairRelation::kBSubsumesA
                         ? joint->dfa_a
                         : joint->dfa_b;
  std::optional<std::vector<SymbolId>> both = ShortestAcceptedString(
      relation == PairRelation::kEquivalent
          ? IntersectDfa(joint->dfa_a, joint->dfa_b)
          : inner,
      possible, options.max_steps);
  if (both) {
    std::string claim =
        relation == PairRelation::kEquivalent
            ? StrFormat("shortest realizable history on which '%s' and '%s' "
                        "both fire — they fire together everywhere%s",
                        name_a.c_str(), name_b.c_str(), mask_caveat)
            : StrFormat("shortest realizable history firing '%s' — '%s' "
                        "fires there too%s",
                        (relation == PairRelation::kASubsumesB ? name_b
                                                               : name_a)
                            .c_str(),
                        (relation == PairRelation::kASubsumesB ? name_a
                                                               : name_b)
                            .c_str(),
                        mask_caveat);
    AppendPairHistory(*joint, oracle_a, oracle_b, *both, claim, name_a,
                      name_b, true, true, &result);
  }

  // The strictness instance for proper subsumption: a history firing only
  // the subsuming trigger.
  if (relation == PairRelation::kASubsumesB ||
      relation == PairRelation::kBSubsumesA) {
    bool a_outer = relation == PairRelation::kASubsumesB;
    const Dfa& outer_dfa = a_outer ? joint->dfa_a : joint->dfa_b;
    const Dfa& inner_dfa = a_outer ? joint->dfa_b : joint->dfa_a;
    std::optional<std::vector<SymbolId>> only = ShortestAcceptedString(
        IntersectDfa(outer_dfa, ComplementSigmaPlus(inner_dfa)), possible,
        options.max_steps);
    if (only) {
      std::string claim = StrFormat(
          "history firing '%s' but not '%s' — the containment is strict",
          (a_outer ? name_a : name_b).c_str(),
          (a_outer ? name_b : name_a).c_str());
      AppendPairHistory(*joint, oracle_a, oracle_b, *only, claim, name_a,
                        name_b, a_outer, !a_outer, &result);
    }
  }
  return result;
}

WitnessResult GroupWitness(const CombinedProgram& program,
                           const std::vector<std::string>& member_names,
                           const WitnessOptions& options) {
  WitnessResult result;
  if (program.num_triggers() < 2) return result;
  const Alphabet& alphabet = program.alphabet();
  std::vector<bool> possible = ComputeAlphabetPossibleSymbols(alphabet);

  // Shortest realizable history on which at least two members have fired
  // (cumulatively): BFS over (product state, fired-members bitmask). The
  // fired-set dimension is capped — past 16 members fall back to "any two
  // members fired" tracked as a saturating counter.
  const Dfa& dfa = program.dfa();
  auto popcount2 = [](uint64_t m) {
    int n = 0;
    while (m != 0 && n < 2) {
      m &= m - 1;
      ++n;
    }
    return n;
  };
  struct Node {
    Dfa::State state;
    uint64_t fired;
    int via_node;
    SymbolId via_sym;
  };
  std::map<std::pair<Dfa::State, uint64_t>, bool> seen;
  std::vector<Node> order;
  std::deque<int> frontier;
  std::vector<size_t> depth_of;
  std::optional<std::vector<SymbolId>> found;

  auto visit = [&](Dfa::State to, uint64_t fired, int via, SymbolId sym,
                   size_t depth) {
    if (seen.count({to, fired}) != 0 || order.size() > 4096) return;
    seen[{to, fired}] = true;
    order.push_back({to, fired, via, sym});
    depth_of.push_back(depth);
    frontier.push_back(static_cast<int>(order.size()) - 1);
  };
  for (size_t s = 0; s < dfa.alphabet_size() && !found; ++s) {
    if (!possible[s]) continue;
    Dfa::State to = dfa.Step(dfa.start(), static_cast<SymbolId>(s));
    visit(to, program.AcceptMask(to), -1, static_cast<SymbolId>(s), 1);
  }
  while (!frontier.empty() && !found) {
    int idx = frontier.front();
    frontier.pop_front();
    if (popcount2(order[idx].fired) >= 2) {
      std::vector<SymbolId> path;
      for (int i = idx; i >= 0; i = order[i].via_node) {
        path.push_back(order[i].via_sym);
      }
      std::reverse(path.begin(), path.end());
      found = std::move(path);
      break;
    }
    if (depth_of[idx] >= options.max_steps) continue;
    for (size_t s = 0; s < dfa.alphabet_size(); ++s) {
      if (!possible[s]) continue;
      Dfa::State to = dfa.Step(order[idx].state, static_cast<SymbolId>(s));
      visit(to, order[idx].fired | program.AcceptMask(to), idx,
            static_cast<SymbolId>(s), depth_of[idx] + 1);
    }
  }
  if (!found) return result;

  // Validate every member's per-step firing against its oracle.
  std::vector<std::vector<bool>> member_points(program.num_triggers());
  size_t fired_members = 0;
  for (size_t i = 0; i < program.num_triggers(); ++i) {
    Oracle oracle(program.spec(i).event, &alphabet);
    Result<std::vector<bool>> points = oracle.OccurrencePoints(*found);
    if (!points.ok()) {
      ++result.validation_failures;
      return result;
    }
    member_points[i] = std::move(*points);
    if (std::any_of(member_points[i].begin(), member_points[i].end(),
                    [](bool b) { return b; })) {
      ++fired_members;
    }
  }
  if (fired_members < 2) {
    ++result.validation_failures;
    return result;
  }

  WitnessHistory w;
  w.claim =
      "shortest realizable history on which two of the grouped triggers "
      "fire — one shared automaton step would serve both";
  w.columns = member_names;
  w.steps.resize(found->size());
  for (size_t p = 0; p < found->size(); ++p) {
    w.steps[p].event = RenderSymbolEvent(alphabet, (*found)[p]);
    w.steps[p].fires.resize(program.num_triggers());
    for (size_t i = 0; i < program.num_triggers(); ++i) {
      w.steps[p].fires[i] = member_points[i][p];
    }
  }
  result.histories.push_back(std::move(w));
  return result;
}

}  // namespace ode
