#ifndef ODE_ANALYZE_SPEC_CHECK_H_
#define ODE_ANALYZE_SPEC_CHECK_H_

#include <vector>

#include "analyze/diagnostic.h"
#include "lang/trigger_spec.h"
#include "ode/class_def.h"

namespace ode {

/// Context for AST-level checks. `class_def` is optional: with it, method
/// and identifier references are resolved against the class's declared
/// methods and attributes (L003/L004); without it (the standalone CLI),
/// only class-independent checks run.
struct SpecCheckContext {
  const ClassDef* class_def = nullptr;
};

/// Layer-1 checks (AST + masks) on a parsed trigger specification. Appends
/// diagnostics (L-series, see docs/ANALYSIS.md):
///
///   L001 error    a mask can never be true (the logical event never occurs)
///   L002 warning  a mask is always true (redundant)
///   L003 warning  method event does not match any declared method
///   L004 warning  mask identifier resolves to nothing (class context)
///   L005 note     mask identifier is not a bound parameter (no class
///                 context; may be an attribute the analyzer cannot see)
///   L006 warning  top-level `!E` (occurs at almost every history point)
///   L007 note     degenerate count: relative/sequence/every 1 (E) is E
///   L008 note     `empty` as an operand denotes the empty event set
void CheckTriggerSpec(const TriggerSpec& spec, const SpecCheckContext& ctx,
                      std::vector<Diagnostic>* out);

}  // namespace ode

#endif  // ODE_ANALYZE_SPEC_CHECK_H_
