#include "analyze/analyzer.h"

#include <string>
#include <utility>

#include "analyze/mask_check.h"
#include "common/strutil.h"
#include "lang/lexer.h"
#include "lang/token.h"

namespace ode {

std::vector<Diagnostic> AnalysisReport::AllDiagnostics() const {
  std::vector<Diagnostic> all;
  for (const TriggerAnalysis& t : triggers) {
    all.insert(all.end(), t.diagnostics.begin(), t.diagnostics.end());
  }
  all.insert(all.end(), file_diagnostics.begin(), file_diagnostics.end());
  return all;
}

namespace {

Diagnostic MakeDiag(const char* id, Severity sev, std::string message,
                    SourceSpan span, std::string trigger = {}) {
  Diagnostic d;
  d.id = id;
  d.severity = sev;
  d.message = std::move(message);
  d.span = span;
  d.trigger = std::move(trigger);
  return d;
}

SourceSpan EventSpan(const TriggerSpec& spec) {
  return spec.event != nullptr ? spec.event->span : SourceSpan{};
}

/// Moves a witness result's histories onto the just-emitted diagnostic and
/// folds its accounting into the trigger analysis.
void AttachWitness(WitnessResult witness, TriggerAnalysis* ta) {
  ta->witnesses += witness.histories.size();
  ta->witness_failures += witness.validation_failures;
  ta->diagnostics.back().witness = std::move(witness.histories);
}

void RunAutomatonChecks(const CompiledEvent& compiled,
                        const AnalyzeOptions& options, TriggerAnalysis* ta) {
  ta->possible_symbols = std::make_shared<const std::vector<bool>>(
      ComputePossibleSymbols(compiled));
  const std::vector<bool>& possible = *ta->possible_symbols;
  SourceSpan span = EventSpan(ta->spec);
  WitnessOptions wopts = options.witness;
  wopts.compile = options.compile;

  if (DfaEmptySigmaPlus(compiled.dfa, possible)) {
    ta->never_fires = true;
    ta->diagnostics.push_back(MakeDiag(
        "A001", Severity::kError,
        "this event expression can never occur on any history — the "
        "trigger will never fire (empty language over the realizable "
        "symbols)",
        span, ta->name));
    if (options.witnesses) {
      AttachWitness(EmptinessWitness(compiled, ta->name, wopts), ta);
    }
    return;  // Emptiness makes the remaining automaton checks vacuous.
  }

  if (DfaUniversalSigmaPlus(compiled.dfa, possible)) {
    bool masks_gate = false;
    for (const MaskExprPtr& m : compiled.composite_masks) {
      if (AnalyzeMaskTruth(*m) != MaskTruth::kAlways) masks_gate = true;
    }
    if (masks_gate) {
      ta->diagnostics.push_back(MakeDiag(
          "A002", Severity::kWarning,
          "the event part matches every history point; only the composite "
          "mask gates firing — consider moving the condition into the "
          "event expression",
          span, ta->name));
    } else {
      ta->always_fires = true;
      ta->diagnostics.push_back(MakeDiag(
          "A002", Severity::kWarning,
          "this trigger fires at every history point (universal language) "
          "— almost certainly a specification bug",
          span, ta->name));
    }
    if (options.witnesses) {
      AttachWitness(UniversalityWitness(compiled, ta->name, wopts), ta);
    }
  }

  StateReport states = AnalyzeStates(compiled.dfa, possible);
  if (states.dead > 0 || states.unreachable > 0) {
    ta->diagnostics.push_back(MakeDiag(
        "A003", Severity::kNote,
        StrFormat("%zu of %zu automaton states are dead (once entered, the "
                  "trigger can never fire again)%s",
                  states.dead, states.total,
                  states.unreachable > 0 ? "; some states are unreachable"
                                         : ""),
        span, ta->name));
    if (options.witnesses && states.dead > 0) {
      AttachWitness(DeadStateWitness(compiled, ta->name, wopts), ta);
    }
  }
}

void RunBudgetChecks(const AnalyzeOptions& options, TriggerAnalysis* ta) {
  SourceSpan span = EventSpan(ta->spec);
  if (options.budget_dfa_states > 0 &&
      ta->cost.dfa_states > options.budget_dfa_states) {
    ta->diagnostics.push_back(MakeDiag(
        "C001", Severity::kWarning,
        StrFormat("automaton has %zu states, over the budget of %zu",
                  ta->cost.dfa_states, options.budget_dfa_states),
        span, ta->name));
  }
  if (options.budget_table_bytes > 0 &&
      ta->cost.table_bytes > options.budget_table_bytes) {
    ta->diagnostics.push_back(MakeDiag(
        "C001", Severity::kWarning,
        StrFormat("transition tables take %zu bytes, over the budget of "
                  "%zu",
                  ta->cost.table_bytes, options.budget_table_bytes),
        span, ta->name));
  }
}

}  // namespace

TriggerAnalysis AnalyzeTrigger(const TriggerSpec& spec,
                               const AnalyzeOptions& options) {
  TriggerAnalysis ta;
  ta.name = spec.name;
  ta.spec = spec;

  SpecCheckContext ctx;
  ctx.class_def = options.class_def;
  CheckTriggerSpec(spec, ctx, &ta.diagnostics);
  // Stamp the trigger name onto spec-check findings (they only know the
  // spec's own name, which may have been replaced by a placeholder).
  for (Diagnostic& d : ta.diagnostics) {
    if (d.trigger.empty()) d.trigger = ta.name;
  }

  if (spec.event == nullptr) return ta;
  Result<CompiledEvent> compiled = CompileEvent(spec.event, options.compile);
  if (!compiled.ok()) {
    ta.diagnostics.push_back(MakeDiag(
        "A006", Severity::kError,
        StrFormat("event expression does not compile: %s",
                  compiled.status().message().c_str()),
        EventSpan(spec), ta.name));
    return ta;
  }
  ta.compiled = true;
  ta.compiled_event =
      std::make_shared<const CompiledEvent>(std::move(*compiled));
  ta.cost = EstimateCost(*ta.compiled_event);

  if (options.automaton_checks) {
    RunAutomatonChecks(*ta.compiled_event, options, &ta);
  }
  RunBudgetChecks(options, &ta);
  return ta;
}

std::vector<SpecBlock> SplitSpecBlocks(std::string_view source) {
  std::vector<SpecBlock> blocks;
  size_t pos = 0;
  std::optional<SpecBlock> current;
  while (pos <= source.size()) {
    size_t eol = source.find('\n', pos);
    if (eol == std::string_view::npos) eol = source.size();
    std::string_view line = source.substr(pos, eol - pos);
    bool blank = line.find_first_not_of(" \t\r") == std::string_view::npos;
    if (blank) {
      if (current) {
        blocks.push_back(*current);
        current.reset();
      }
    } else {
      if (!current) current = SpecBlock{pos, eol};
      current->end = eol;
    }
    if (eol == source.size()) break;
    pos = eol + 1;
  }
  if (current) blocks.push_back(*current);
  return blocks;
}

std::string PadBlockToFile(std::string_view source, const SpecBlock& block) {
  std::string padded(source);
  for (size_t i = 0; i < padded.size(); ++i) {
    if (i >= block.begin && i < block.end) continue;
    if (padded[i] != '\n') padded[i] = ' ';
  }
  return padded;
}

namespace {

/// True when the block contains no tokens (comments / whitespace only).
bool BlockIsEmpty(const std::string& padded) {
  Result<std::vector<Token>> tokens = Tokenize(padded);
  return tokens.ok() && tokens->size() == 1;  // Just kEnd.
}

/// The pairwise A004/A005/A007 sweep over every compiled trigger in the
/// report. Decided relations are recorded in report->pair_findings for the
/// group planner.
void RunPairwiseChecks(const AnalyzeOptions& options, AnalysisReport* report) {
  for (size_t i = 0; i < report->triggers.size(); ++i) {
    for (size_t j = i + 1; j < report->triggers.size(); ++j) {
      const TriggerAnalysis& a = report->triggers[i];
      const TriggerAnalysis& b = report->triggers[j];
      if (!a.compiled || !b.compiled) continue;
      // An empty-language trigger (A001) is vacuously contained in every
      // other; repeating that pairwise would only bury the real finding.
      if (a.never_fires || b.never_fires) continue;
      Result<PairComparison> cmp = CompareEventExprsDetailed(
          a.spec.event, b.spec.event, options.compile);
      if (!cmp.ok()) continue;  // Resource limits: treat as incomparable.
      if (cmp->relation != PairRelation::kIncomparable &&
          cmp->relation != PairRelation::kDistinct) {
        report->pair_findings.push_back(
            PairFinding{i, j, cmp->relation, cmp->via_mask_implication});
      }
      // Verdicts reached through solver-proved root-mask implication get
      // their own id: the automata differ, only the arithmetic relates
      // them — a different review action than a textual duplicate.
      const char* subsume_id = cmp->via_mask_implication ? "A007" : "A005";
      const char* subsume_how = cmp->via_mask_implication
                                    ? " (its root mask provably entails the "
                                      "other's)"
                                    : " (its language is contained in the "
                                      "other's)";
      bool emitted = true;
      switch (cmp->relation) {
        case PairRelation::kEquivalent:
          report->file_diagnostics.push_back(MakeDiag(
              cmp->via_mask_implication ? "A007" : "A004", Severity::kWarning,
              StrFormat("trigger '%s' is equivalent to trigger '%s' — they "
                        "fire at exactly the same history points%s",
                        b.name.c_str(), a.name.c_str(),
                        a.spec.action == b.spec.action
                            ? " and run the same action (duplicate)"
                            : ""),
              EventSpan(b.spec), b.name));
          break;
        case PairRelation::kASubsumesB:
          report->file_diagnostics.push_back(MakeDiag(
              subsume_id, Severity::kWarning,
              StrFormat("every firing of trigger '%s' is also a firing of "
                        "trigger '%s'%s",
                        b.name.c_str(), a.name.c_str(), subsume_how),
              EventSpan(b.spec), b.name));
          break;
        case PairRelation::kBSubsumesA:
          report->file_diagnostics.push_back(MakeDiag(
              subsume_id, Severity::kWarning,
              StrFormat("every firing of trigger '%s' is also a firing of "
                        "trigger '%s'%s",
                        a.name.c_str(), b.name.c_str(), subsume_how),
              EventSpan(a.spec), a.name));
          break;
        case PairRelation::kDistinct:
        case PairRelation::kIncomparable:
          emitted = false;
          break;
      }
      if (emitted && options.witnesses) {
        WitnessOptions wopts = options.witness;
        wopts.compile = options.compile;
        WitnessResult witness = PairWitness(
            a.spec.event, b.spec.event, a.name, b.name, cmp->relation,
            cmp->via_mask_implication, wopts);
        report->witnesses += witness.histories.size();
        report->witness_failures += witness.validation_failures;
        report->file_diagnostics.back().witness =
            std::move(witness.histories);
      }
    }
  }
}

/// Runs the §5 fn. 5 group planner over the pairwise findings and emits
/// one G001 note per verified plan, carrying the measured cost delta.
void RunGroupPlanning(const AnalyzeOptions& options, AnalysisReport* report) {
  if (report->pair_findings.empty()) return;
  std::vector<TriggerSpec> specs;
  specs.reserve(report->triggers.size());
  for (const TriggerAnalysis& ta : report->triggers) specs.push_back(ta.spec);
  GroupPlanOptions plan_options = options.group_plan;
  plan_options.combined.compile = options.compile;
  plan_options.witnesses = options.witnesses;
  plan_options.witness_options = options.witness;
  report->groups =
      PlanTriggerGroups(specs, report->pair_findings, plan_options);
  for (const TriggerGroupPlan& plan : report->groups) {
    std::string names;
    for (size_t i = 0; i < plan.member_names.size(); ++i) {
      if (i > 0) names += i + 1 == plan.member_names.size() ? "' and '" : "', '";
      names += plan.member_names[i];
    }
    size_t first = plan.members.front();
    report->file_diagnostics.push_back(MakeDiag(
        "G001", Severity::kNote,
        StrFormat("triggers '%s' can be combined into one automaton "
                  "(§5 fn. 5): separate %zu states / %zu table bytes / %zu "
                  "steps per event vs combined %zu states / %zu bytes / 1 "
                  "step — combined program validated against the §4 oracle "
                  "on %zu random histories",
                  names.c_str(), plan.separate.dfa_states,
                  plan.separate.table_bytes, plan.separate.steps_per_event,
                  plan.combined.dfa_states, plan.combined.table_bytes,
                  plan.oracle_histories),
        EventSpan(report->triggers[first].spec),
        report->triggers[first].name));
    report->witnesses += plan.witness.size();
    report->witness_failures += plan.witness_failures;
    report->file_diagnostics.back().witness = plan.witness;
  }
}

}  // namespace

AnalysisReport AnalyzeSpecSource(std::string_view source,
                                 const AnalyzeOptions& options) {
  AnalysisReport report;
  for (const SpecBlock& block : SplitSpecBlocks(source)) {
    std::string padded = PadBlockToFile(source, block);
    if (BlockIsEmpty(padded)) continue;
    Result<TriggerSpec> spec = ParseTriggerSpec(padded);
    if (!spec.ok()) {
      LineCol lc = LineColAt(source, block.begin);
      report.file_diagnostics.push_back(MakeDiag(
          "P001", Severity::kError,
          StrFormat("declaration starting at line %d does not parse: %s",
                    lc.line, spec.status().message().c_str()),
          SourceSpan{}));
      continue;
    }
    TriggerAnalysis ta = AnalyzeTrigger(*spec, options);
    if (ta.name.empty()) {
      LineCol lc = LineColAt(source, block.begin);
      ta.name = StrFormat("<trigger@line %d>", lc.line);
      for (Diagnostic& d : ta.diagnostics) {
        if (d.trigger.empty()) d.trigger = ta.name;
      }
    }
    report.triggers.push_back(std::move(ta));
  }

  if (options.pairwise_checks) {
    RunPairwiseChecks(options, &report);
    if (options.group_suggestions) RunGroupPlanning(options, &report);
  }
  if (options.effects != nullptr) {
    // Cascade/termination layer: the triggering graph over this file's
    // triggers, reusing each trigger's compilation + realizability sweep.
    std::vector<CascadeTrigger> inputs;
    inputs.reserve(report.triggers.size());
    for (const TriggerAnalysis& t : report.triggers) {
      CascadeTrigger input;
      input.name = t.name;
      input.spec = &t.spec;
      input.compiled = t.compiled_event.get();
      input.possible = t.possible_symbols.get();
      inputs.push_back(input);
    }
    CascadeOptions copts;
    copts.compile = options.compile;
    copts.effects = options.effects;
    copts.witnesses = options.witnesses;
    copts.witness = options.witness;
    copts.witness.compile = options.compile;
    copts.max_chain_steps = options.cascade_max_chain_steps;
    copts.runtime_depth_limit = options.cascade_depth_limit;
    CascadeResult cascade = AnalyzeCascade(inputs, copts);
    for (Diagnostic& d : cascade.diagnostics) {
      report.file_diagnostics.push_back(std::move(d));
    }
    report.witnesses += cascade.witnesses;
    report.witness_failures += cascade.witness_failures;
    report.cascade = std::move(cascade.graph);
  }
  for (const TriggerAnalysis& t : report.triggers) {
    report.witnesses += t.witnesses;
    report.witness_failures += t.witness_failures;
  }
  return report;
}

ClassTriggerSet CollectClassTriggerSet(const ClassDef& def) {
  ClassTriggerSet set;
  set.class_name = def.name();
  for (const MethodDef& m : def.methods()) {
    set.method_arity[m.name] = m.params.size();
  }
  size_t index = 0;
  for (const ClassDef::PendingTrigger& pending : def.pending_triggers()) {
    ++index;
    TriggerSpec spec;
    if (pending.spec) {
      spec = *pending.spec;
    } else {
      Result<TriggerSpec> parsed = ParseTriggerSpec(pending.dsl_text);
      if (!parsed.ok()) continue;
      spec = std::move(*parsed);
    }
    if (spec.event == nullptr) continue;
    set.trigger_names.push_back(
        spec.name.empty() ? StrFormat("<trigger #%zu>", index) : spec.name);
    set.triggers.push_back(std::move(spec));
  }
  return set;
}

namespace {

/// True when every method event `event` references is declared by both
/// classes with the same arity.
bool MethodAlphabetShared(const EventExprPtr& event, const ClassTriggerSet& a,
                          const ClassTriggerSet& b) {
  if (event == nullptr) return false;
  std::vector<const EventExpr*> atoms;
  event->CollectAtoms(&atoms);
  for (const EventExpr* atom : atoms) {
    const BasicEvent& be = atom->atom;
    if (be.kind != BasicEventKind::kMethod) continue;
    auto ia = a.method_arity.find(be.method_name);
    auto ib = b.method_arity.find(be.method_name);
    if (ia == a.method_arity.end() || ib == b.method_arity.end() ||
        ia->second != ib->second) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::vector<Diagnostic> CompareTriggerSetsAcrossClasses(
    const ClassTriggerSet& a, const ClassTriggerSet& b,
    const CompileOptions& compile, bool witnesses) {
  std::vector<Diagnostic> out;
  for (size_t i = 0; i < a.triggers.size(); ++i) {
    for (size_t j = 0; j < b.triggers.size(); ++j) {
      const TriggerSpec& ta = a.triggers[i];
      const TriggerSpec& tb = b.triggers[j];
      if (!MethodAlphabetShared(ta.event, a, b) ||
          !MethodAlphabetShared(tb.event, a, b)) {
        continue;
      }
      Result<PairComparison> cmp =
          CompareEventExprsDetailed(ta.event, tb.event, compile);
      if (!cmp.ok()) continue;
      std::string qa = a.class_name + "::" + a.trigger_names[i];
      std::string qb = b.class_name + "::" + b.trigger_names[j];
      const char* subsume_id = cmp->via_mask_implication ? "A007" : "A005";
      size_t before = out.size();
      switch (cmp->relation) {
        case PairRelation::kEquivalent:
          out.push_back(MakeDiag(
              cmp->via_mask_implication ? "A007" : "A004", Severity::kWarning,
              StrFormat("trigger '%s' is equivalent to trigger '%s' — the "
                        "classes declare the referenced method events with "
                        "the same names and arities, so they fire at exactly "
                        "the same history points",
                        qb.c_str(), qa.c_str()),
              EventSpan(tb), qb));
          break;
        case PairRelation::kASubsumesB:
          out.push_back(MakeDiag(
              subsume_id, Severity::kWarning,
              StrFormat("every firing of trigger '%s' is also a firing of "
                        "trigger '%s' of the other class",
                        qb.c_str(), qa.c_str()),
              EventSpan(tb), qb));
          break;
        case PairRelation::kBSubsumesA:
          out.push_back(MakeDiag(
              subsume_id, Severity::kWarning,
              StrFormat("every firing of trigger '%s' is also a firing of "
                        "trigger '%s' of the other class",
                        qa.c_str(), qb.c_str()),
              EventSpan(ta), qa));
          break;
        case PairRelation::kDistinct:
        case PairRelation::kIncomparable:
          break;
      }
      if (witnesses && out.size() > before) {
        WitnessOptions wopts;
        wopts.compile = compile;
        WitnessResult witness =
            PairWitness(ta.event, tb.event, qa, qb, cmp->relation,
                        cmp->via_mask_implication, wopts);
        out.back().witness = std::move(witness.histories);
      }
    }
  }
  return out;
}

CascadeResult AnalyzeCascadeOverClassSets(
    const std::vector<const ClassTriggerSet*>& sets,
    const CascadeOptions& options) {
  struct CompiledSlot {
    std::string name;
    std::string class_name;
    const TriggerSpec* spec = nullptr;
    std::optional<CompiledEvent> compiled;
  };
  std::vector<CompiledSlot> storage;
  for (const ClassTriggerSet* set : sets) {
    if (set == nullptr) continue;
    for (size_t i = 0; i < set->triggers.size(); ++i) {
      CompiledSlot slot;
      slot.name = set->class_name + "::" + set->trigger_names[i];
      slot.class_name = set->class_name;
      slot.spec = &set->triggers[i];
      Result<CompiledEvent> compiled =
          CompileEvent(slot.spec->event, options.compile);
      if (compiled.ok()) slot.compiled = std::move(*compiled);
      storage.push_back(std::move(slot));
    }
  }
  std::vector<CascadeTrigger> inputs;
  inputs.reserve(storage.size());
  for (const CompiledSlot& slot : storage) {
    CascadeTrigger input;
    input.name = slot.name;
    input.class_name = slot.class_name;
    input.spec = slot.spec;
    input.compiled = slot.compiled.has_value() ? &*slot.compiled : nullptr;
    inputs.push_back(input);
  }
  return AnalyzeCascade(inputs, options);
}

AnalysisReport AnalyzeClassDef(const ClassDef& def, AnalyzeOptions options) {
  options.class_def = &def;
  AnalysisReport report;
  size_t index = 0;
  for (const ClassDef::PendingTrigger& pending : def.pending_triggers()) {
    ++index;
    TriggerSpec spec;
    if (pending.spec) {
      spec = *pending.spec;
    } else {
      Result<TriggerSpec> parsed = ParseTriggerSpec(pending.dsl_text);
      if (!parsed.ok()) {
        report.file_diagnostics.push_back(MakeDiag(
            "P001", Severity::kError,
            StrFormat("trigger #%zu of class '%s' does not parse: %s", index,
                      def.name().c_str(),
                      parsed.status().message().c_str()),
            SourceSpan{}));
        continue;
      }
      spec = std::move(*parsed);
    }
    TriggerAnalysis ta = AnalyzeTrigger(spec, options);
    if (ta.name.empty()) {
      ta.name = StrFormat("<%s trigger #%zu>", def.name().c_str(), index);
      for (Diagnostic& d : ta.diagnostics) {
        if (d.trigger.empty()) d.trigger = ta.name;
      }
    }
    report.triggers.push_back(std::move(ta));
  }
  if (options.pairwise_checks) {
    RunPairwiseChecks(options, &report);
    if (options.group_suggestions) RunGroupPlanning(options, &report);
  }
  for (const TriggerAnalysis& t : report.triggers) {
    report.witnesses += t.witnesses;
    report.witness_failures += t.witness_failures;
  }
  return report;
}

}  // namespace ode
