#include "analyze/cascade.h"

#include <algorithm>
#include <cctype>
#include <deque>
#include <optional>
#include <utility>

#include "analyze/automaton_check.h"
#include "common/strutil.h"
#include "semantics/oracle.h"

namespace ode {
namespace {

// ---------------------------------------------------------------------------
// Effects sidecar parsing.
// ---------------------------------------------------------------------------

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

bool IsIdentifier(std::string_view s) {
  if (s.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_') {
    return false;
  }
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
      return false;
    }
  }
  return true;
}

std::vector<std::string_view> SplitWords(std::string_view s) {
  std::vector<std::string_view> words;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
    size_t j = i;
    while (j < s.size() && s[j] != ' ' && s[j] != '\t') ++j;
    if (j > i) words.push_back(s.substr(i, j - i));
    i = j;
  }
  return words;
}

Result<ActionEffect> ParseOneEffect(std::string_view text, int line) {
  std::vector<std::string_view> w = SplitWords(text);
  auto err = [&](const char* what) {
    return Status::InvalidArgument(StrFormat(
        "effects line %d: %s in effect '%.*s' (expected `posts NAME[/arity] "
        "[on self|same-class|class NAME]` or `aborts`)",
        line, what, static_cast<int>(text.size()), text.data()));
  };
  if (w.empty()) return err("empty effect");
  if (w[0] == "aborts") {
    if (w.size() != 1) return err("trailing tokens after `aborts`");
    return ActionEffect::MakeAbort();
  }
  if (w[0] != "posts") return err("unknown effect verb");
  if (w.size() < 2) return err("missing method name");
  std::string_view name = w[1];
  int arity = -1;
  if (size_t slash = name.find('/'); slash != std::string_view::npos) {
    std::string_view digits = name.substr(slash + 1);
    name = name.substr(0, slash);
    if (digits.empty()) return err("empty arity");
    arity = 0;
    for (char c : digits) {
      if (!std::isdigit(static_cast<unsigned char>(c))) {
        return err("non-numeric arity");
      }
      arity = arity * 10 + (c - '0');
      if (arity > 64) return err("arity out of range");
    }
  }
  if (!IsIdentifier(name)) return err("invalid method name");
  ActionEffect::Target target = ActionEffect::Target::kSelf;
  std::string class_name;
  if (w.size() > 2) {
    if (w[2] != "on") return err("expected `on`");
    if (w.size() < 4) return err("missing target after `on`");
    if (w[3] == "self" && w.size() == 4) {
      target = ActionEffect::Target::kSelf;
    } else if (w[3] == "same-class" && w.size() == 4) {
      target = ActionEffect::Target::kSameClass;
    } else if (w[3] == "class" && w.size() == 5 && IsIdentifier(w[4])) {
      target = ActionEffect::Target::kClass;
      class_name = std::string(w[4]);
    } else {
      return err("bad target");
    }
  }
  return ActionEffect::MakeMethod(std::string(name), arity, target,
                                  std::move(class_name));
}

// ---------------------------------------------------------------------------
// Per-target automaton precomputation.
// ---------------------------------------------------------------------------

/// Everything edge evaluation needs about one target trigger's DFA, over
/// realizable extended symbols only.
struct NodeState {
  std::vector<bool> possible_storage;
  const std::vector<bool>* possible = nullptr;
  std::vector<int32_t> dist;            ///< Distance to accepting; -1 = ∞.
  std::vector<int32_t> pred_state;      ///< Forward-BFS tree from start.
  std::vector<SymbolId> pred_sym;
  std::vector<bool> reachable;
  std::vector<Dfa::State> order;        ///< Reachable states, BFS order.
  bool advanceable = false;  ///< Some realizable symbol advances it.
};

void ForwardReach(const Dfa& dfa, const std::vector<bool>& possible,
                  NodeState* ns) {
  const size_t n = dfa.num_states();
  ns->reachable.assign(n, false);
  ns->pred_state.assign(n, -1);
  ns->pred_sym.assign(n, -1);
  ns->order.clear();
  std::deque<Dfa::State> queue;
  ns->reachable[dfa.start()] = true;
  queue.push_back(dfa.start());
  while (!queue.empty()) {
    Dfa::State s = queue.front();
    queue.pop_front();
    ns->order.push_back(s);
    for (SymbolId y = 0; y < static_cast<SymbolId>(dfa.alphabet_size()); ++y) {
      if (!possible[y]) continue;
      Dfa::State to = dfa.Step(s, y);
      if (!ns->reachable[to]) {
        ns->reachable[to] = true;
        ns->pred_state[to] = s;
        ns->pred_sym[to] = y;
        queue.push_back(to);
      }
    }
  }
}

void DistanceToAccepting(const Dfa& dfa, const std::vector<bool>& possible,
                         NodeState* ns) {
  const size_t n = dfa.num_states();
  std::vector<std::vector<Dfa::State>> rev(n);
  for (size_t s = 0; s < n; ++s) {
    for (SymbolId y = 0; y < static_cast<SymbolId>(dfa.alphabet_size()); ++y) {
      if (!possible[y]) continue;
      rev[dfa.Step(static_cast<Dfa::State>(s), y)].push_back(
          static_cast<Dfa::State>(s));
    }
  }
  ns->dist.assign(n, -1);
  std::deque<Dfa::State> queue;
  for (size_t s = 0; s < n; ++s) {
    if (dfa.accepting(static_cast<Dfa::State>(s))) {
      ns->dist[s] = 0;
      queue.push_back(static_cast<Dfa::State>(s));
    }
  }
  while (!queue.empty()) {
    Dfa::State s = queue.front();
    queue.pop_front();
    for (Dfa::State p : rev[s]) {
      if (ns->dist[p] == -1) {
        ns->dist[p] = ns->dist[s] + 1;
        queue.push_back(p);
      }
    }
  }
}

/// The shortest realizable history from the start state to `q` along the
/// forward-BFS tree (lexicographically least among shortest).
std::vector<SymbolId> AccessString(const NodeState& ns, const Dfa& dfa,
                                   Dfa::State q) {
  std::vector<SymbolId> out;
  while (q != dfa.start() && ns.pred_state[q] != -1) {
    out.push_back(ns.pred_sym[q]);
    q = ns.pred_state[q];
  }
  std::reverse(out.begin(), out.end());
  return out;
}

bool HasTxnMarkers(const Alphabet& alphabet) {
  for (size_t g = 0; g < alphabet.num_groups(); ++g) {
    switch (alphabet.group_spec(g).kind) {
      case BasicEventKind::kTbegin:
      case BasicEventKind::kTcomplete:
      case BasicEventKind::kTcommit:
      case BasicEventKind::kTabort:
        return true;
      default:
        break;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Effect → micro-symbol mapping and edge evaluation.
// ---------------------------------------------------------------------------

bool EffectApplies(const ActionEffect& e, const std::string& from_class,
                   const std::string& to_class) {
  if (e.kind == ActionEffect::Kind::kAbort) return true;  // Txn-wide.
  switch (e.target) {
    case ActionEffect::Target::kSelf:
    case ActionEffect::Target::kSameClass:
      return from_class == to_class;
    case ActionEffect::Target::kClass:
      return e.class_name == to_class;
  }
  return false;
}

/// The realizable extended symbols of `ce`'s alphabet that the applicable
/// effects of `sig` may produce. A method call posts before/after method
/// events plus the update/read/access events of the state it touches; any
/// posting the target does not mention classifies as OTHER (which still
/// advances `!` / sequence / count operators, so it is always included).
std::vector<SymbolId> EffectSymbols(const CompiledEvent& ce,
                                    const ActionSignature& sig,
                                    const std::string& from_class,
                                    const std::string& to_class,
                                    const std::vector<bool>& possible) {
  const Alphabet& a = ce.alphabet;
  SymbolSet base(a.size());
  bool any = false;
  for (const ActionEffect& e : sig.effects) {
    if (!EffectApplies(e, from_class, to_class)) continue;
    any = true;
    for (size_t g = 0; g < a.num_groups(); ++g) {
      const BasicEvent& spec = a.group_spec(g);
      bool match = false;
      if (e.kind == ActionEffect::Kind::kAbort) {
        match = spec.kind == BasicEventKind::kTabort;
      } else {
        switch (spec.kind) {
          case BasicEventKind::kMethod:
            match = spec.method_name == e.method &&
                    (e.arity < 0 || spec.params.empty() ||
                     spec.params.size() == static_cast<size_t>(e.arity));
            break;
          case BasicEventKind::kUpdate:
          case BasicEventKind::kRead:
          case BasicEventKind::kAccess:
            match = true;  // A called method may read/update attributes.
            break;
          default:
            break;
        }
      }
      if (!match) continue;
      SymbolId group_base = a.group_base(g);
      for (size_t k = 0; k < a.group_num_symbols(g); ++k) {
        base.Add(group_base + static_cast<SymbolId>(k));
      }
    }
    base.Add(a.other_symbol());
  }
  std::vector<SymbolId> out;
  if (!any) return out;
  SymbolSet ext = ce.ExtendSet(base);
  ext.ForEach([&](SymbolId s) {
    if (possible[s]) out.push_back(s);
  });
  return out;
}

/// How (and whether) one action's effect symbols advance one target.
struct EdgeEval {
  bool advance = false;
  SymbolId via = -1;  ///< Extended symbol exhibiting the advance.
  bool via_accepting = false;
  int32_t from_dist = 0;
  int32_t to_dist = 0;
  bool fires = false;
  Dfa::State fire_source = -1;
  std::vector<SymbolId> fire_chain;
};

/// Lexicographically-least shortest non-empty string over `syms`
/// (ascending) driving the DFA from `src` into an accepting state, capped
/// at `max_steps` symbols.
std::optional<std::vector<SymbolId>> ShortestChain(
    const Dfa& dfa, Dfa::State src, const std::vector<SymbolId>& syms,
    size_t max_steps) {
  const size_t n = dfa.num_states();
  std::vector<int32_t> depth(n, -1);
  std::vector<Dfa::State> pre_state(n, -1);
  std::vector<SymbolId> pre_sym(n, -1);
  depth[src] = 0;
  std::deque<Dfa::State> queue{src};
  while (!queue.empty()) {
    Dfa::State s = queue.front();
    queue.pop_front();
    if (static_cast<size_t>(depth[s]) >= max_steps) continue;
    for (SymbolId y : syms) {
      Dfa::State to = dfa.Step(s, y);
      if (dfa.accepting(to)) {
        // Reconstruct src → s, then append y. Checking acceptance on
        // arrival (before the visited test) lets chains return to an
        // already-visited accepting state — e.g. back to `src` itself.
        std::vector<SymbolId> chain;
        Dfa::State walk = s;
        while (walk != src) {
          chain.push_back(pre_sym[walk]);
          walk = pre_state[walk];
        }
        std::reverse(chain.begin(), chain.end());
        chain.push_back(y);
        return chain;
      }
      if (depth[to] == -1) {
        depth[to] = depth[s] + 1;
        pre_state[to] = s;
        pre_sym[to] = y;
        queue.push_back(to);
      }
    }
  }
  return std::nullopt;
}

EdgeEval EvaluateEdge(const Dfa& dfa, const NodeState& ns,
                      const std::vector<SymbolId>& syms,
                      size_t max_chain_steps) {
  EdgeEval ev;
  if (syms.empty()) return ev;
  for (Dfa::State s : ns.order) {
    if (ns.dist[s] < 0) continue;  // Dead state: no cascade progress.
    for (SymbolId y : syms) {
      Dfa::State to = dfa.Step(s, y);
      if (dfa.accepting(to)) {
        ev.advance = true;
        ev.via = y;
        ev.via_accepting = true;
        ev.from_dist = ns.dist[s];
        ev.to_dist = 0;
        break;
      }
      if (!ev.advance && ns.dist[to] >= 0 && ns.dist[to] < ns.dist[s]) {
        ev.advance = true;
        ev.via = y;
        ev.from_dist = ns.dist[s];
        ev.to_dist = ns.dist[to];
      }
    }
    if (ev.via_accepting) break;
  }
  if (!ev.advance) return ev;
  // Firing check: can the effect symbols *alone* drive the target from a
  // reachable live state into acceptance? Sources in BFS discovery order
  // (start state first) so witnesses stay short and deterministic.
  constexpr size_t kMaxFireSources = 64;
  size_t tried = 0;
  for (Dfa::State src : ns.order) {
    if (ns.dist[src] < 0) continue;
    if (++tried > kMaxFireSources) break;
    std::optional<std::vector<SymbolId>> chain =
        ShortestChain(dfa, src, syms, max_chain_steps);
    if (chain.has_value()) {
      ev.fires = true;
      ev.fire_source = src;
      ev.fire_chain = std::move(*chain);
      break;
    }
  }
  return ev;
}

bool Advanceable(const Dfa& dfa, const NodeState& ns,
                 const std::vector<bool>& possible) {
  for (Dfa::State s : ns.order) {
    if (ns.dist[s] < 0) continue;
    for (SymbolId y = 0; y < static_cast<SymbolId>(dfa.alphabet_size()); ++y) {
      if (!possible[y]) continue;
      Dfa::State to = dfa.Step(s, y);
      if (dfa.accepting(to)) return true;
      if (ns.dist[to] >= 0 && ns.dist[to] < ns.dist[s]) return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Strongly connected components (iterative Tarjan).
// ---------------------------------------------------------------------------

std::vector<int> SccIds(size_t n, const std::vector<std::vector<size_t>>& adj,
                        int* num_comps) {
  std::vector<int> comp(n, -1);
  std::vector<int> index(n, -1);
  std::vector<int> low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<size_t> stack;
  int next_index = 0;
  int comps = 0;

  struct Frame {
    size_t v;
    size_t child = 0;
  };
  for (size_t root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    std::vector<Frame> frames{{root}};
    index[root] = low[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.child < adj[f.v].size()) {
        size_t w = adj[f.v][f.child++];
        if (index[w] == -1) {
          index[w] = low[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w});
        } else if (on_stack[w]) {
          low[f.v] = std::min(low[f.v], index[w]);
        }
      } else {
        if (low[f.v] == index[f.v]) {
          while (true) {
            size_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            comp[w] = comps;
            if (w == f.v) break;
          }
          ++comps;
        }
        size_t v = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().v] = std::min(low[frames.back().v], low[v]);
        }
      }
    }
  }
  *num_comps = comps;
  return comp;
}

SourceSpan SpecSpan(const TriggerSpec* spec) {
  if (spec != nullptr && spec->event != nullptr) return spec->event->span;
  return SourceSpan{};
}

std::string JoinCycleNames(const CascadeGraph& g, const CascadeCycle& cycle) {
  std::string out;
  for (size_t v : cycle.nodes) {
    out += StrFormat("'%s' -> ", g.nodes[v].name.c_str());
  }
  out += StrFormat("'%s'", g.nodes[cycle.nodes.front()].name.c_str());
  return out;
}

}  // namespace

Result<EffectMap> ParseEffectsSource(std::string_view source) {
  EffectMap map;
  int line = 0;
  size_t pos = 0;
  while (pos <= source.size()) {
    size_t nl = source.find('\n', pos);
    std::string_view raw = source.substr(
        pos, nl == std::string_view::npos ? std::string_view::npos : nl - pos);
    pos = nl == std::string_view::npos ? source.size() + 1 : nl + 1;
    ++line;
    if (size_t hash = raw.find('#'); hash != std::string_view::npos) {
      raw = raw.substr(0, hash);
    }
    std::string_view text = Trim(raw);
    if (text.empty()) continue;
    size_t colon = text.find(':');
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument(StrFormat(
          "effects line %d: expected `action: effects...`, got '%.*s'", line,
          static_cast<int>(text.size()), text.data()));
    }
    std::string_view action = Trim(text.substr(0, colon));
    if (!IsIdentifier(action)) {
      return Status::InvalidArgument(StrFormat(
          "effects line %d: invalid action name '%.*s'", line,
          static_cast<int>(action.size()), action.data()));
    }
    if (map.find(action) != map.end()) {
      return Status::InvalidArgument(StrFormat(
          "effects line %d: duplicate declaration for action '%.*s'", line,
          static_cast<int>(action.size()), action.data()));
    }
    std::string_view rest = Trim(text.substr(colon + 1));
    if (rest == "opaque") continue;  // Documented-as-unknown: stay absent.
    ActionSignature sig;
    if (rest != "none") {
      size_t start = 0;
      while (start <= rest.size()) {
        size_t comma = rest.find(',', start);
        std::string_view item = Trim(rest.substr(
            start,
            comma == std::string_view::npos ? std::string_view::npos
                                            : comma - start));
        start = comma == std::string_view::npos ? rest.size() + 1 : comma + 1;
        Result<ActionEffect> effect = ParseOneEffect(item, line);
        if (!effect.ok()) return effect.status();
        sig.effects.push_back(std::move(*effect));
      }
    }
    map.emplace(std::string(action), std::move(sig));
  }
  return map;
}

CascadeResult AnalyzeCascade(const std::vector<CascadeTrigger>& triggers,
                             const CascadeOptions& options) {
  CascadeResult result;
  CascadeGraph& g = result.graph;
  if (options.effects == nullptr) return result;
  const EffectMap& effects = *options.effects;
  const size_t n = triggers.size();

  // -- Nodes + per-target automaton precomputation. -------------------------
  std::vector<NodeState> state(n);
  g.nodes.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const CascadeTrigger& t = triggers[i];
    CascadeNode node;
    node.name = t.name;
    node.class_name = t.class_name;
    node.action = t.spec != nullptr ? t.spec->action : "";
    node.perpetual = t.spec != nullptr && t.spec->perpetual;
    node.compiled = t.compiled != nullptr;
    node.opaque_action =
        !node.action.empty() && effects.find(node.action) == effects.end();
    if (t.compiled != nullptr) {
      node.immediate = !HasTxnMarkers(t.compiled->alphabet);
      NodeState& ns = state[i];
      if (t.possible != nullptr) {
        ns.possible = t.possible;
      } else {
        ns.possible_storage = ComputePossibleSymbols(*t.compiled);
        ns.possible = &ns.possible_storage;
      }
      ForwardReach(t.compiled->dfa, *ns.possible, &ns);
      DistanceToAccepting(t.compiled->dfa, *ns.possible, &ns);
      ns.advanceable = Advanceable(t.compiled->dfa, ns, *ns.possible);
    }
    g.nodes.push_back(std::move(node));
  }

  // -- Edges. ---------------------------------------------------------------
  // Edge evaluation depends only on (target, action, source class), so a
  // 1000-trigger rulebase sharing one action does O(n) automaton work, not
  // O(n²) (bench_analyze's ≤25% overhead gate relies on this). The n²
  // candidate pairs are still enumerated, so the memo lookup must be a
  // flat array index, not a per-pair key build: intern the distinct
  // (action, source class) keys up front and index by target × key.
  std::map<std::pair<std::string, std::string>, size_t> sig_ids;
  std::vector<size_t> src_sig(n, static_cast<size_t>(-1));
  for (size_t from = 0; from < n; ++from) {
    const CascadeNode& src = g.nodes[from];
    if (!src.compiled || src.action.empty()) continue;
    auto sig_it = effects.find(src.action);
    if (sig_it == effects.end() || sig_it->second.effects.empty()) continue;
    src_sig[from] =
        sig_ids.emplace(std::make_pair(src.action, src.class_name),
                        sig_ids.size())
            .first->second;
  }
  std::deque<EdgeEval> memo_storage;  // Stable addresses for edge_eval.
  std::vector<const EdgeEval*> memo(n * sig_ids.size(), nullptr);
  std::vector<const EdgeEval*> edge_eval;  // Parallel to g.edges.
  auto push_edge = [&](CascadeEdge edge, const EdgeEval* eval) {
    if (g.edges.size() >= options.max_edges) {
      g.truncated = true;
      return;
    }
    g.edges.push_back(std::move(edge));
    edge_eval.push_back(eval);
  };
  for (size_t from = 0; from < n; ++from) {
    const CascadeNode& src = g.nodes[from];
    if (!src.compiled || src.action.empty()) continue;
    if (g.truncated) break;
    auto sig_it = effects.find(src.action);
    if (sig_it == effects.end()) {
      // Opaque action: assume it can advance any trigger some realizable
      // symbol advances (the over-approximation T003 reports).
      for (size_t to = 0; to < n; ++to) {
        if (!g.nodes[to].compiled || !state[to].advanceable) continue;
        CascadeEdge edge;
        edge.from = from;
        edge.to = to;
        edge.via = src.action;
        edge.opaque = true;
        edge.why = StrFormat(
            "action '%s' declares no effect signature; assumed able to "
            "advance '%s'",
            src.action.c_str(), g.nodes[to].name.c_str());
        push_edge(std::move(edge), nullptr);
      }
      continue;
    }
    const ActionSignature& sig = sig_it->second;
    if (sig.effects.empty()) continue;  // Declared pure.
    const size_t sidx = src_sig[from];
    for (size_t to = 0; to < n; ++to) {
      const CascadeTrigger& tgt = triggers[to];
      if (tgt.compiled == nullptr) continue;
      const EdgeEval*& slot = memo[to * sig_ids.size() + sidx];
      if (slot == nullptr) {
        std::vector<SymbolId> syms =
            EffectSymbols(*tgt.compiled, sig, src.class_name,
                          g.nodes[to].class_name, *state[to].possible);
        memo_storage.push_back(EvaluateEdge(tgt.compiled->dfa, state[to],
                                            syms, options.max_chain_steps));
        slot = &memo_storage.back();
      }
      const EdgeEval& ev = *slot;
      if (!ev.advance) continue;
      CascadeEdge edge;
      edge.from = from;
      edge.to = to;
      edge.fires = ev.fires;
      SymbolId base_sym =
          static_cast<SymbolId>(ev.via >> tgt.compiled->num_gates());
      edge.via = RenderSymbolEvent(tgt.compiled->alphabet, base_sym);
      if (ev.via_accepting) {
        edge.why = StrFormat("action '%s' may post %s, on which '%s' fires",
                             src.action.c_str(), edge.via.c_str(),
                             g.nodes[to].name.c_str());
      } else {
        edge.why = StrFormat(
            "action '%s' may post %s, advancing '%s' from %d to %d step(s) "
            "from firing",
            src.action.c_str(), edge.via.c_str(), g.nodes[to].name.c_str(),
            ev.from_dist, ev.to_dist);
      }
      push_edge(std::move(edge), &ev);
    }
  }

  // -- Cycle structure. -----------------------------------------------------
  // Two passes: *strong* edges (signature-backed, firing) prove cascades —
  // their cycles are T001 findings; the all-edge pass decides whether any
  // cycle exists at all (has_cycle, acyclic-chain depth, T001 notes for
  // cycles that rely on assumed/progress-only edges).
  std::vector<std::vector<size_t>> strong_adj(n);
  std::vector<std::vector<std::pair<size_t, size_t>>> strong_out(n);
  std::vector<std::vector<size_t>> all_adj(n);
  for (size_t e = 0; e < g.edges.size(); ++e) {
    const CascadeEdge& edge = g.edges[e];
    all_adj[edge.from].push_back(edge.to);
    if (!edge.opaque && edge.fires) {
      strong_adj[edge.from].push_back(edge.to);
      strong_out[edge.from].push_back({edge.to, e});
    }
  }
  int strong_comps = 0;
  std::vector<int> strong_comp = SccIds(n, strong_adj, &strong_comps);
  std::vector<size_t> comp_size(static_cast<size_t>(strong_comps), 0);
  for (size_t v = 0; v < n; ++v) ++comp_size[strong_comp[v]];
  std::vector<bool> comp_self(static_cast<size_t>(strong_comps), false);
  for (size_t v = 0; v < n; ++v) {
    for (const auto& te : strong_out[v]) {
      if (te.first == v) comp_self[strong_comp[v]] = true;
    }
  }
  std::vector<bool> node_in_strong_cycle(n, false);
  std::vector<int> cyclic_comps;  // In first-member order.
  {
    std::vector<bool> seen(static_cast<size_t>(strong_comps), false);
    for (size_t v = 0; v < n; ++v) {
      int c = strong_comp[v];
      bool cyclic = comp_size[c] > 1 || comp_self[c];
      if (cyclic) node_in_strong_cycle[v] = true;
      if (cyclic && !seen[c]) {
        seen[c] = true;
        cyclic_comps.push_back(c);
      }
    }
  }

  // One representative shortest cycle per cyclic strong component.
  for (int c : cyclic_comps) {
    size_t root = n;
    for (size_t v = 0; v < n; ++v) {
      if (strong_comp[v] == c) {
        root = v;
        break;
      }
    }
    // BFS from root along strong edges inside the component until an edge
    // re-enters root.
    std::vector<int> par_node(n, -1);
    std::vector<int> par_edge(n, -1);
    std::vector<bool> visited(n, false);
    visited[root] = true;
    std::deque<size_t> queue{root};
    CascadeCycle cycle;
    bool found = false;
    while (!queue.empty() && !found) {
      size_t v = queue.front();
      queue.pop_front();
      for (const auto& [to, e] : strong_out[v]) {
        if (strong_comp[to] != c) continue;
        if (to == root) {
          // Close the cycle: root → ... → v → root.
          std::vector<size_t> rev_nodes;
          std::vector<size_t> rev_edges{e};
          size_t walk = v;
          while (walk != root) {
            rev_nodes.push_back(walk);
            rev_edges.push_back(static_cast<size_t>(par_edge[walk]));
            walk = static_cast<size_t>(par_node[walk]);
          }
          cycle.nodes.push_back(root);
          for (auto it = rev_nodes.rbegin(); it != rev_nodes.rend(); ++it) {
            cycle.nodes.push_back(*it);
          }
          for (auto it = rev_edges.rbegin(); it != rev_edges.rend(); ++it) {
            cycle.edges.push_back(*it);
          }
          found = true;
          break;
        }
        if (!visited[to]) {
          visited[to] = true;
          par_node[to] = static_cast<int>(v);
          par_edge[to] = static_cast<int>(e);
          queue.push_back(to);
        }
      }
    }
    if (!found) continue;  // Unreachable for a cyclic component.
    cycle.all_perpetual = true;
    for (size_t v : cycle.nodes) {
      if (!g.nodes[v].perpetual) cycle.all_perpetual = false;
    }
    g.cycles.push_back(std::move(cycle));
  }

  int all_comps = 0;
  std::vector<int> all_comp = SccIds(n, all_adj, &all_comps);
  std::vector<size_t> all_size(static_cast<size_t>(all_comps), 0);
  std::vector<bool> all_self(static_cast<size_t>(all_comps), false);
  for (size_t v = 0; v < n; ++v) {
    ++all_size[all_comp[v]];
    for (size_t to : all_adj[v]) {
      if (to == v) all_self[all_comp[v]] = true;
    }
  }
  for (int c = 0; c < all_comps; ++c) {
    if (all_size[c] > 1 || all_self[c]) g.has_cycle = true;
  }

  // Longest cascade chain over all edges when acyclic. Tarjan numbers
  // components in reverse topological order, so ascending component id is
  // a sinks-first schedule.
  if (!g.has_cycle && n > 0) {
    std::vector<size_t> by_comp(n);
    for (size_t v = 0; v < n; ++v) by_comp[v] = v;
    std::sort(by_comp.begin(), by_comp.end(), [&](size_t a, size_t b) {
      return all_comp[a] < all_comp[b];
    });
    std::vector<size_t> dp(n, 1);
    for (size_t v : by_comp) {
      for (size_t to : all_adj[v]) {
        dp[v] = std::max(dp[v], dp[to] + 1);
      }
      g.max_chain = std::max(g.max_chain, dp[v]);
    }
  }

  // -- Diagnostics. ---------------------------------------------------------
  // T001: proven cascade cycles.
  for (const CascadeCycle& cycle : g.cycles) {
    size_t first = cycle.nodes.front();
    Diagnostic d;
    d.id = "T001";
    d.severity = cycle.all_perpetual ? Severity::kError : Severity::kWarning;
    d.trigger = g.nodes[first].name;
    d.span = SpecSpan(triggers[first].spec);
    std::string chain_why;
    for (size_t e : cycle.edges) {
      if (!chain_why.empty()) chain_why += "; ";
      chain_why += g.edges[e].why;
    }
    d.message = StrFormat(
        "potential non-termination: trigger cascade cycle %s: %s%s",
        JoinCycleNames(g, cycle).c_str(), chain_why.c_str(),
        cycle.all_perpetual
            ? " (every member is perpetual: the cascade is self-sustaining "
              "and will hit the runtime posting-depth limit)"
            : " (non-perpetual members disarm after firing, so each "
              "activation bounds one pass; re-activation re-arms the "
              "cycle)");
    // Witness cascade: a priming history firing the first member, then one
    // oracle-replayed history per cycle edge showing the posted effects
    // firing the next member.
    bool witnessable = options.witnesses;
    for (size_t v : cycle.nodes) {
      const CascadeTrigger& t = triggers[v];
      if (t.compiled == nullptr || t.compiled->num_gates() > 0 ||
          t.spec == nullptr || t.spec->event == nullptr) {
        witnessable = false;  // Gates consult run-time state (see witness.h).
      }
    }
    if (witnessable) {
      const CascadeTrigger& head = triggers[first];
      std::optional<std::vector<SymbolId>> priming = ShortestAcceptedString(
          head.compiled->dfa, *state[first].possible,
          options.witness.max_steps);
      auto replay = [&](const CascadeTrigger& t,
                        const std::vector<SymbolId>& history,
                        std::vector<bool>* occ) {
        Oracle oracle(t.spec->event, &t.compiled->alphabet);
        Result<std::vector<bool>> r = oracle.OccurrencePoints(history);
        if (!r.ok() || r->empty() || !r->back()) return false;
        *occ = std::move(*r);
        return true;
      };
      std::vector<WitnessHistory> histories;
      bool ok = priming.has_value();
      if (ok) {
        std::vector<bool> occ;
        ok = replay(head, *priming, &occ);
        if (ok) {
          WitnessHistory h;
          h.claim = StrFormat(
              "cascade priming: shortest realizable history firing '%s'",
              g.nodes[first].name.c_str());
          h.columns = {g.nodes[first].name};
          for (size_t p = 0; p < priming->size(); ++p) {
            WitnessStep step;
            step.event =
                RenderSymbolEvent(head.compiled->alphabet, (*priming)[p]);
            step.fires = {occ[p]};
            h.steps.push_back(std::move(step));
          }
          histories.push_back(std::move(h));
        }
      }
      for (size_t hop = 0; ok && hop < cycle.edges.size(); ++hop) {
        size_t from_v = cycle.nodes[hop];
        size_t to_v = cycle.nodes[(hop + 1) % cycle.nodes.size()];
        const EdgeEval* ev = edge_eval[cycle.edges[hop]];
        const CascadeTrigger& tgt = triggers[to_v];
        if (ev == nullptr || !ev->fires) {
          ok = false;
          break;
        }
        std::vector<SymbolId> history =
            AccessString(state[to_v], tgt.compiled->dfa, ev->fire_source);
        size_t prefix = history.size();
        history.insert(history.end(), ev->fire_chain.begin(),
                       ev->fire_chain.end());
        std::vector<bool> occ;
        ok = replay(tgt, history, &occ);
        if (!ok) break;
        WitnessHistory h;
        h.claim = StrFormat(
            "cascade step %zu: events posted by '%s' (action '%s') fire "
            "'%s'",
            hop + 1, g.nodes[from_v].name.c_str(),
            g.nodes[from_v].action.c_str(), g.nodes[to_v].name.c_str());
        h.columns = {g.nodes[to_v].name};
        for (size_t p = 0; p < history.size(); ++p) {
          WitnessStep step;
          step.event = RenderSymbolEvent(tgt.compiled->alphabet, history[p]);
          step.note = p < prefix
                          ? "priming (external)"
                          : StrFormat("posted by '%s' action '%s'",
                                      g.nodes[from_v].name.c_str(),
                                      g.nodes[from_v].action.c_str());
          step.fires = {occ[p]};
          h.steps.push_back(std::move(step));
        }
        histories.push_back(std::move(h));
      }
      if (ok) {
        result.witnesses += histories.size();
        d.witness = std::move(histories);
      } else if (priming.has_value()) {
        ++result.witness_failures;
      }
    }
    result.diagnostics.push_back(std::move(d));
  }

  // T001 notes: cycles that exist only with assumed / progress-only edges.
  {
    std::vector<bool> noted(static_cast<size_t>(all_comps), false);
    for (size_t v = 0; v < n; ++v) {
      int c = all_comp[v];
      if (noted[c]) continue;
      if (all_size[c] <= 1 && !all_self[c]) continue;
      bool has_strong = false;
      for (size_t w = 0; w < n; ++w) {
        if (all_comp[w] == c && node_in_strong_cycle[w]) has_strong = true;
      }
      if (has_strong) continue;  // Already a proper T001.
      noted[c] = true;
      std::string members;
      for (size_t w = 0; w < n; ++w) {
        if (all_comp[w] != c) continue;
        if (!members.empty()) members += ", ";
        members += StrFormat("'%s'", g.nodes[w].name.c_str());
      }
      Diagnostic d;
      d.id = "T001";
      d.severity = Severity::kNote;
      d.trigger = g.nodes[v].name;
      d.span = SpecSpan(triggers[v].spec);
      d.message = StrFormat(
          "potential cascade cycle among %s relying on assumed or "
          "progress-only edges; declare effect signatures to decide it",
          members.c_str());
      result.diagnostics.push_back(std::move(d));
    }
  }

  // T002: self-loops on immediate-coupling triggers.
  for (size_t e = 0; e < g.edges.size(); ++e) {
    const CascadeEdge& edge = g.edges[e];
    if (edge.opaque || edge.from != edge.to) continue;
    const CascadeNode& node = g.nodes[edge.from];
    if (!node.immediate) continue;
    Diagnostic d;
    d.id = "T002";
    d.severity = Severity::kWarning;
    d.trigger = node.name;
    d.span = SpecSpan(triggers[edge.from].spec);
    d.message = StrFormat(
        "trigger '%s' can retrigger itself within the posting transaction "
        "(immediate coupling self-loop): %s before the transaction "
        "completes",
        node.name.c_str(), edge.why.c_str());
    result.diagnostics.push_back(std::move(d));
  }

  // T003: one note per opaque action.
  {
    std::vector<std::string> reported;
    for (size_t v = 0; v < n; ++v) {
      const CascadeNode& node = g.nodes[v];
      if (!node.opaque_action || !node.compiled) continue;
      if (std::find(reported.begin(), reported.end(), node.action) !=
          reported.end()) {
        continue;
      }
      reported.push_back(node.action);
      size_t users = 0;
      size_t assumed = 0;
      for (size_t w = 0; w < n; ++w) {
        if (g.nodes[w].action == node.action && g.nodes[w].compiled) ++users;
      }
      for (const CascadeEdge& edge : g.edges) {
        if (edge.opaque && g.nodes[edge.from].action == node.action) {
          ++assumed;
        }
      }
      Diagnostic d;
      d.id = "T003";
      d.severity = Severity::kNote;
      d.trigger = node.name;
      d.span = SpecSpan(triggers[v].spec);
      d.message = StrFormat(
          "action '%s' declares no effect signature: %zu assumed triggering "
          "edge(s) from %zu trigger(s) make the cascade graph an "
          "over-approximation (declare its effects to refine)",
          node.action.c_str(), assumed, users);
      result.diagnostics.push_back(std::move(d));
    }
  }

  // T004: acyclic, but the runtime depth limit cuts legal cascades short.
  // A chain of k firings needs max_posting_depth >= k (each cascaded
  // posting enters the engine one level deeper).
  if (!g.has_cycle && options.runtime_depth_limit > 0 &&
      g.max_chain > static_cast<size_t>(options.runtime_depth_limit)) {
    Diagnostic d;
    d.id = "T004";
    d.severity = Severity::kWarning;
    d.message = StrFormat(
        "rulebase cascades up to %zu chained firings but the runtime "
        "posting-depth limit is %d; legal cascades would trip "
        "kResourceExhausted (raise DatabaseOptions::max_posting_depth)",
        g.max_chain, options.runtime_depth_limit);
    result.diagnostics.push_back(std::move(d));
  }

  return result;
}

}  // namespace ode
