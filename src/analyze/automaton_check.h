#ifndef ODE_ANALYZE_AUTOMATON_CHECK_H_
#define ODE_ANALYZE_AUTOMATON_CHECK_H_

#include <vector>

#include "automaton/dfa.h"
#include "common/result.h"
#include "compile/compiler.h"

namespace ode {

/// Per-symbol feasibility of a compiled trigger's (extended) alphabet.
///
/// A micro-symbol is *impossible* when Classify can never produce it: some
/// mask slot of its group is statically never-true but the symbol's sign
/// bit requires it to hold (or the slot is always-true and the bit requires
/// it to fail). Impossible symbols never appear in a real history, so
/// emptiness/universality are decided over the possible ones only — an
/// unsatisfiable mask does not make the DFA language empty, but it does
/// make the trigger unfireable, and this is where the two views meet.
std::vector<bool> ComputePossibleSymbols(const CompiledEvent& compiled);

/// Per-symbol feasibility of a bare alphabet (no gate extension). Combines
/// two layers: per-mask three-valued truth (a never-true slot kills every
/// symbol asserting it), and the linear solver's conjunction check — a
/// symbol whose *signed* mask conjunction is unsatisfiable (e.g. the bit
/// pattern demanding `q > 100 && !(q > 50)`) is pruned even though each
/// mask alone is satisfiable.
std::vector<bool> ComputeAlphabetPossibleSymbols(const Alphabet& alphabet);

/// True iff the DFA accepts no string of length >= 1 over the `possible`
/// symbols (Σ⁺ emptiness: a trigger never fires on any realizable
/// history). `possible` must have dfa.alphabet_size() entries.
bool DfaEmptySigmaPlus(const Dfa& dfa, const std::vector<bool>& possible);

/// True iff the DFA accepts every string of length >= 1 over the
/// `possible` symbols (Σ⁺ universality: the trigger fires at every history
/// point — almost certainly a specification bug).
bool DfaUniversalSigmaPlus(const Dfa& dfa, const std::vector<bool>& possible);

/// State-liveness report over the possible symbols.
struct StateReport {
  size_t total = 0;        ///< States in the DFA.
  size_t unreachable = 0;  ///< Not reachable from the start state.
  size_t dead = 0;         ///< Reachable but no accepting state is reachable
                           ///< from them (monitoring continues but can
                           ///< never fire once entered).
};
StateReport AnalyzeStates(const Dfa& dfa, const std::vector<bool>& possible);

/// Language relation between two triggers' event expressions.
enum class PairRelation : uint8_t {
  kIncomparable = 0,  ///< Analyzer cannot decide (gates, root-mask
                      ///< mismatch, alphabet conflict).
  kEquivalent,        ///< Same language: the triggers fire at exactly the
                      ///< same history points.
  kASubsumesB,        ///< L(b) ⊆ L(a): every firing of b is a firing of a.
  kBSubsumesA,        ///< L(a) ⊆ L(b).
  kDistinct,          ///< Neither contains the other.
};

/// Decides the relation by compiling both expressions over one *joint*
/// alphabet (built from `a | b`) and comparing the DFAs — the paper's
/// registration-time decidability claim (§4/§5) made executable.
///
/// Root composite masks are stripped and compared textually: differing
/// root-mask sets make the pair kIncomparable (the masks consult run-time
/// state the analyzer cannot see). Expressions with *nested* composite
/// masks (compiled as gates) are kIncomparable for the same reason.
Result<PairRelation> CompareEventExprs(const EventExprPtr& a,
                                       const EventExprPtr& b,
                                       const CompileOptions& options = {});

/// Comparison verdict plus how it was reached.
struct PairComparison {
  PairRelation relation = PairRelation::kIncomparable;
  /// True when the verdict required solver-proved implication between the
  /// two triggers' *differing* root-mask conjunctions (A007 territory):
  /// the containment holds because one mask set entails the other, not
  /// because the mask sets are textually equal.
  bool via_mask_implication = false;
};

/// Like CompareEventExprs, but (1) decides containment over *realizable*
/// joint symbols (solver-pruned micro-symbols cannot occur in any
/// history), and (2) when the root-mask sets differ, attempts to prove
/// implication between the two mask conjunctions with the linear solver —
/// upgrading pairs the textual comparison calls kIncomparable into
/// subsumption/equivalence verdicts flagged `via_mask_implication`.
Result<PairComparison> CompareEventExprsDetailed(
    const EventExprPtr& a, const EventExprPtr& b,
    const CompileOptions& options = {});

}  // namespace ode

#endif  // ODE_ANALYZE_AUTOMATON_CHECK_H_
