#include "analyze/fix.h"

#include <algorithm>
#include <random>
#include <utility>

#include "analyze/automaton_check.h"
#include "analyze/mask_check.h"
#include "common/strutil.h"
#include "lang/event_parser.h"
#include "lang/lexer.h"
#include "semantics/oracle.h"

namespace ode {

namespace {

bool IsLiteralBool(const MaskExpr& m, bool value) {
  return m.kind == MaskKind::kLiteral && m.literal.Truthy() == value;
}

/// Bottom-up constant simplification of a mask: boolean structure is
/// recursed into, and any non-literal subterm the analyzer proves constant
/// (interval engine + linear solver) is replaced by the literal. A node
/// proven kNever is only folded *inside* boolean structure — a whole mask
/// collapsing to `false` is an L001 error to surface, not to rewrite.
MaskExprPtr SimplifyMask(const MaskExprPtr& mask) {
  MaskExprPtr node = mask;
  if (mask->kind == MaskKind::kBinary &&
      (mask->op == MaskOp::kAnd || mask->op == MaskOp::kOr)) {
    MaskExprPtr a = SimplifyMask(mask->children[0]);
    MaskExprPtr b = SimplifyMask(mask->children[1]);
    bool is_and = mask->op == MaskOp::kAnd;
    // Literal short-circuits: the neutral operand vanishes, the absorbing
    // one wins.
    if (IsLiteralBool(*a, is_and)) return b;
    if (IsLiteralBool(*b, is_and)) return a;
    if (IsLiteralBool(*a, !is_and)) return a;
    if (IsLiteralBool(*b, !is_and)) return b;
    if (a != mask->children[0] || b != mask->children[1]) {
      node = MaskExpr::Binary(mask->op, a, b);
    }
  } else if (mask->kind == MaskKind::kUnary && mask->op == MaskOp::kNot) {
    MaskExprPtr a = SimplifyMask(mask->children[0]);
    if (a->kind == MaskKind::kLiteral) {
      return MaskExpr::Literal(Value(!a->literal.Truthy()));
    }
    if (a != mask->children[0]) node = MaskExpr::Unary(MaskOp::kNot, a);
  }
  if (node->kind != MaskKind::kLiteral) {
    switch (AnalyzeMaskTruth(*node)) {
      case MaskTruth::kAlways:
        return MaskExpr::Literal(Value(true));
      case MaskTruth::kNever:
        return MaskExpr::Literal(Value(false));
      case MaskTruth::kUnknown:
        break;
    }
  }
  return node;
}

/// Shallow clone with replaced children (EventExpr nodes are immutable).
EventExprPtr WithChildren(const EventExpr& e,
                          std::vector<EventExprPtr> children) {
  auto copy = std::make_shared<EventExpr>(e);
  copy->children = std::move(children);
  return copy;
}

void Note(std::vector<AppliedFix>* fixes, const std::string& trigger,
          const char* code, std::string description) {
  AppliedFix fix;
  fix.trigger = trigger;
  fix.description = std::move(description);
  fix.code = code;
  fixes->push_back(std::move(fix));
}

/// Drops kMasked nodes whose mask the analyzer proves always true.
/// `Masked(E, true)` is `E` at every history point whatever the database
/// state, so this normalization preserves semantics; it lets the
/// DFA/oracle gates see through a mask drop made *under* a count
/// operator, where the original's nested mask node would otherwise be an
/// unverifiable gate (the comparison calls it incomparable and the
/// oracle refuses it).
EventExprPtr DropProvenMasks(const EventExprPtr& event) {
  std::vector<EventExprPtr> children;
  bool changed = false;
  children.reserve(event->children.size());
  for (const EventExprPtr& c : event->children) {
    EventExprPtr r = DropProvenMasks(c);
    changed |= r != c;
    children.push_back(std::move(r));
  }
  EventExprPtr node =
      changed ? WithChildren(*event, std::move(children)) : event;
  if (node->kind == EventExprKind::kMasked &&
      AnalyzeMaskTruth(*node->mask) == MaskTruth::kAlways) {
    return node->children[0];
  }
  return node;
}

/// Minimal disjoint edits turning the original declaration into
/// `fixed_text`: a token-level LCS aligns the two token streams, and each
/// maximal run of mismatched tokens becomes one byte-range edit (replace
/// runs keep the canonical rewrite's exact spacing; insert runs anchor
/// before the next surviving token). Offsets index the *original* file.
/// Returns empty when the fixed text does not tokenize (caller falls back
/// to the whole-declaration span).
std::vector<FixEdit> ComputeFixEdits(const std::vector<Token>& all_tokens,
                                     std::string_view padded,
                                     const std::string& fixed_text) {
  Result<std::vector<Token>> fixed_tokens = Tokenize(fixed_text);
  if (!fixed_tokens.ok() || fixed_tokens->size() < 2) return {};
  // Both streams end with a kEnd sentinel; drop it.
  const size_t n = all_tokens.size() - 1;
  const size_t m = fixed_tokens->size() - 1;
  auto a_tok = [&](size_t i) -> const Token& { return all_tokens[i]; };
  auto b_tok = [&](size_t j) -> const Token& { return (*fixed_tokens)[j]; };
  auto a_text = [&](size_t i) {
    return padded.substr(a_tok(i).offset, a_tok(i).length);
  };
  auto b_text = [&](size_t j) {
    return std::string_view(fixed_text)
        .substr(b_tok(j).offset, b_tok(j).length);
  };
  std::vector<std::vector<size_t>> lcs(n + 1, std::vector<size_t>(m + 1, 0));
  for (size_t i = n; i-- > 0;) {
    for (size_t j = m; j-- > 0;) {
      lcs[i][j] = a_text(i) == b_text(j)
                      ? lcs[i + 1][j + 1] + 1
                      : std::max(lcs[i + 1][j], lcs[i][j + 1]);
    }
  }
  std::vector<FixEdit> edits;
  size_t i = 0;
  size_t j = 0;
  while (i < n || j < m) {
    if (i < n && j < m && a_text(i) == b_text(j)) {
      ++i;
      ++j;
      continue;
    }
    // A maximal run of mismatches: consecutive deletions from the original
    // and insertions from the rewrite, merged into one replacement.
    const size_t i0 = i;
    const size_t j0 = j;
    while (i < n || j < m) {
      if (i < n && j < m && a_text(i) == b_text(j)) break;
      if (i < n && (j >= m || lcs[i + 1][j] >= lcs[i][j + 1])) {
        ++i;
      } else {
        ++j;
      }
    }
    FixEdit edit;
    std::string inserted;
    if (j > j0) {
      const Token& bf = b_tok(j0);
      const Token& bl = b_tok(j - 1);
      inserted = fixed_text.substr(bf.offset,
                                   bl.offset + bl.length - bf.offset);
    }
    if (i > i0) {
      edit.byte_start = a_tok(i0).offset;
      edit.byte_end = a_tok(i - 1).offset + a_tok(i - 1).length;
      edit.replacement = std::move(inserted);
    } else if (i < n) {
      // Pure insertion before the next surviving original token.
      edit.byte_start = edit.byte_end = a_tok(i).offset;
      edit.replacement = inserted + " ";
    } else {
      // Pure insertion at the end of the declaration.
      edit.byte_start = edit.byte_end =
          a_tok(n - 1).offset + a_tok(n - 1).length;
      edit.replacement = " " + inserted;
    }
    edits.push_back(std::move(edit));
  }
  return edits;
}

/// Applies `edits` (sorted, disjoint) to a copy of `padded` and reparses:
/// the minimal edit list is only offered when the patched declaration
/// round-trips to exactly the verified rewrite.
bool VerifyEdits(const std::vector<FixEdit>& edits, std::string_view padded,
                 const std::string& fixed_text) {
  if (edits.empty()) return false;
  std::string patched(padded);
  for (auto it = edits.rbegin(); it != edits.rend(); ++it) {
    if (it->byte_end > patched.size() || it->byte_start > it->byte_end) {
      return false;
    }
    patched.replace(it->byte_start, it->byte_end - it->byte_start,
                    it->replacement);
  }
  Result<TriggerSpec> reparsed = ParseTriggerSpec(patched);
  return reparsed.ok() && reparsed->ToString() == fixed_text;
}

}  // namespace

EventExprPtr RewriteEventExpr(const EventExprPtr& event,
                              std::vector<AppliedFix>* fixes,
                              const std::string& trigger_name) {
  const EventExpr& e = *event;

  // Children first, so count collapses and mask drops see rewritten
  // operands.
  std::vector<EventExprPtr> children;
  bool child_changed = false;
  children.reserve(e.children.size());
  for (const EventExprPtr& c : e.children) {
    EventExprPtr r = RewriteEventExpr(c, fixes, trigger_name);
    child_changed |= r != c;
    children.push_back(std::move(r));
  }
  EventExprPtr node =
      child_changed ? WithChildren(e, std::move(children)) : event;

  switch (e.kind) {
    case EventExprKind::kAtom:
      if (e.atom_mask != nullptr) {
        MaskExprPtr simplified = SimplifyMask(e.atom_mask);
        if (IsLiteralBool(*simplified, true)) {
          Note(fixes, trigger_name, "L002",
               StrFormat("dropped always-true mask '%s'",
                         e.atom_mask->ToString().c_str()));
          return EventExpr::Atom(e.atom, nullptr);
        }
        if (simplified != e.atom_mask &&
            !IsLiteralBool(*simplified, false)) {
          Note(fixes, trigger_name, "L002",
               StrFormat("simplified mask '%s' to '%s'",
                         e.atom_mask->ToString().c_str(),
                         simplified->ToString().c_str()));
          return EventExpr::Atom(e.atom, std::move(simplified));
        }
      }
      return node;
    case EventExprKind::kMasked: {
      MaskExprPtr simplified = SimplifyMask(e.mask);
      if (IsLiteralBool(*simplified, true)) {
        Note(fixes, trigger_name, "L002",
             StrFormat("dropped always-true mask '%s'",
                       e.mask->ToString().c_str()));
        return node->children[0];
      }
      if (simplified != e.mask && !IsLiteralBool(*simplified, false)) {
        Note(fixes, trigger_name, "L002",
             StrFormat("simplified mask '%s' to '%s'",
                       e.mask->ToString().c_str(),
                       simplified->ToString().c_str()));
        return EventExpr::Masked(node->children[0], std::move(simplified));
      }
      return node;
    }
    case EventExprKind::kRelativeN:
    case EventExprKind::kSequenceN:
    case EventExprKind::kEvery:
      // `relative/sequence/every 1 (E)` is `E` (the L007 note verbatim).
      if (e.n == 1) {
        Note(fixes, trigger_name, "L007",
             StrFormat("collapsed degenerate '%s 1' count",
                       e.kind == EventExprKind::kRelativeN ? "relative"
                       : e.kind == EventExprKind::kSequenceN ? "sequence"
                                                             : "every"));
        return node->children[0];
      }
      return node;
    case EventExprKind::kOr: {
      // `E | empty` is `E`. (In every other operator an `empty` operand
      // collapses the surrounding event — that is a finding to surface,
      // not a rewrite to make.)
      bool a_empty = node->children[0]->kind == EventExprKind::kEmpty;
      bool b_empty = node->children[1]->kind == EventExprKind::kEmpty;
      if (a_empty != b_empty) {
        Note(fixes, trigger_name, "L008",
             "pruned 'empty' operand of '|'");
        return node->children[a_empty ? 1 : 0];
      }
      return node;
    }
    default:
      return node;
  }
}

bool VerifyRewrite(const EventExprPtr& original, const EventExprPtr& fixed,
                   const FixOptions& options) {
  if (original->ToString() == fixed->ToString()) return true;

  // Normalize away masks the analyzer proves always true (a solver
  // theorem, re-derived here independently of the rewrite pass). The
  // gates below then verify every *structural* change against the
  // normalized original.
  EventExprPtr norm_original = DropProvenMasks(original);
  EventExprPtr norm_fixed = DropProvenMasks(fixed);
  if (norm_original->ToString() == norm_fixed->ToString()) return true;

  // Gate 1: DFA equivalence over the realizable joint alphabet, with
  // root-mask differences resolved by solver implication (both ways, or
  // the relation is not kEquivalent).
  Result<PairComparison> cmp =
      CompareEventExprsDetailed(norm_original, norm_fixed, options.compile);
  if (!cmp.ok() || cmp->relation != PairRelation::kEquivalent) return false;

  // Gate 2: agreement with the §4 denotational oracle at every point of
  // random realizable histories over the joint alphabet.
  EventExprPtr core_a = norm_original;
  EventExprPtr core_b = norm_fixed;
  while (core_a->kind == EventExprKind::kMasked) core_a = core_a->children[0];
  while (core_b->kind == EventExprKind::kMasked) core_b = core_b->children[0];
  Result<Alphabet> joint = Alphabet::Build(*EventExpr::Or(core_a, core_b),
                                           options.compile.alphabet);
  if (!joint.ok()) return false;
  std::vector<bool> possible = ComputeAlphabetPossibleSymbols(*joint);
  std::vector<SymbolId> realizable;
  for (size_t s = 0; s < possible.size(); ++s) {
    if (possible[s]) realizable.push_back(static_cast<SymbolId>(s));
  }
  if (realizable.empty()) return true;  // No history exists to disagree on.

  Oracle oracle_a(core_a, &*joint);
  Oracle oracle_b(core_b, &*joint);
  std::mt19937_64 rng(options.oracle_seed);
  std::uniform_int_distribution<size_t> pick(0, realizable.size() - 1);
  for (size_t h = 0; h < options.oracle_histories; ++h) {
    std::vector<SymbolId> history(options.oracle_history_length);
    for (SymbolId& sym : history) sym = realizable[pick(rng)];
    Result<std::vector<bool>> pa = oracle_a.OccurrencePoints(history);
    Result<std::vector<bool>> pb = oracle_b.OccurrencePoints(history);
    if (!pa.ok() || !pb.ok() || *pa != *pb) return false;
  }
  return true;
}

FixResult FixSpecSource(std::string_view source, const FixOptions& options) {
  FixResult result;
  result.fixed_source = std::string(source);

  struct Splice {
    size_t begin;
    size_t end;
    std::string text;
  };
  std::vector<Splice> splices;

  for (const SpecBlock& block : SplitSpecBlocks(source)) {
    std::string padded = PadBlockToFile(source, block);
    Result<std::vector<Token>> tokens = Tokenize(padded);
    if (!tokens.ok() || tokens->size() < 2) continue;  // Comments only.
    Result<TriggerSpec> spec = ParseTriggerSpec(padded);
    if (!spec.ok() || spec->event == nullptr) continue;

    std::string name = spec->name.empty() ? "<trigger>" : spec->name;
    std::vector<AppliedFix> fixes;
    EventExprPtr rewritten = RewriteEventExpr(spec->event, &fixes, name);
    if (fixes.empty()) continue;

    if (!VerifyRewrite(spec->event, rewritten, options)) {
      result.suppressed += fixes.size();
      continue;
    }

    TriggerSpec fixed_spec = *spec;
    fixed_spec.event = rewritten;
    // Replace the declaration's token range (first token to last real
    // token before kEnd), preserving surrounding comments.
    const Token& first = tokens->front();
    const Token& last = (*tokens)[tokens->size() - 2];
    splices.push_back(Splice{first.offset, last.offset + last.length,
                             fixed_spec.ToString()});
    // Prefer minimal disjoint edits (one per touched span, schema v5);
    // fall back to the whole-declaration splice when the minimal form
    // fails its apply-and-reparse check.
    std::vector<FixEdit> edits =
        ComputeFixEdits(*tokens, padded, splices.back().text);
    if (!VerifyEdits(edits, padded, splices.back().text)) {
      edits = {FixEdit{splices.back().begin, splices.back().end,
                       splices.back().text}};
    }
    for (AppliedFix& fix : fixes) {
      fix.has_span = true;
      fix.byte_start = splices.back().begin;
      fix.byte_end = splices.back().end;
      fix.replacement = splices.back().text;
      fix.edits = edits;
    }
    result.applied.insert(result.applied.end(),
                          std::make_move_iterator(fixes.begin()),
                          std::make_move_iterator(fixes.end()));
  }

  // Splice back-to-front so earlier offsets stay valid.
  std::sort(splices.begin(), splices.end(),
            [](const Splice& a, const Splice& b) { return a.begin > b.begin; });
  for (const Splice& s : splices) {
    result.fixed_source.replace(s.begin, s.end - s.begin, s.text);
  }
  return result;
}

}  // namespace ode
