#ifndef ODE_ANALYZE_COST_H_
#define ODE_ANALYZE_COST_H_

#include <string>

#include "compile/compiler.h"

namespace ode {

/// Per-trigger cost model: what one activation of this trigger costs the
/// engine per posted event, and what its shared per-class artifacts weigh.
/// IngestRuntime operators gate registrations on these numbers — a
/// million-events-per-second deployment cannot afford a trigger whose
/// alphabet fans out into thousands of micro-symbols (§5's 2^k rewrite).
struct CostReport {
  size_t dfa_states = 0;            ///< Minimal DFA states.
  size_t alphabet_size = 0;         ///< Base micro-symbols (incl. OTHER).
  size_t extended_alphabet_size = 0;  ///< Base × 2^gates.
  size_t num_gates = 0;             ///< Nested-composite-mask sub-DFAs.
  size_t table_bytes = 0;           ///< Shared transition table(s), bytes.
  /// Worst-case mask evaluations to classify one posted event (the largest
  /// mask group, §5: k evaluations for 2^k micro-symbols).
  size_t worst_classify_masks = 0;
  /// Per posted event: one table step for the main DFA plus one per gate
  /// (each gate also re-evaluates its composite mask when its sub-DFA
  /// accepts).
  size_t steps_per_event = 0;

  /// One-line summary for CLI/report output.
  std::string ToString() const;
};

/// Derives the report from a compiled event (no execution involved).
CostReport EstimateCost(const CompiledEvent& compiled);

}  // namespace ode

#endif  // ODE_ANALYZE_COST_H_
