#ifndef ODE_ANALYZE_GROUP_PLAN_H_
#define ODE_ANALYZE_GROUP_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "analyze/automaton_check.h"
#include "analyze/witness.h"
#include "compile/combined.h"
#include "lang/trigger_spec.h"

namespace ode {

/// One decided pairwise relation between analyzed triggers (indices into
/// the analysis report's trigger list). Recorded by the pairwise sweep and
/// consumed by the group planner.
struct PairFinding {
  size_t a = 0;
  size_t b = 0;
  PairRelation relation = PairRelation::kIncomparable;
  /// The verdict needed solver-proved root-mask implication (A007).
  bool via_mask_implication = false;
};

/// Cost of monitoring a trigger group, in the three currencies the §5
/// fn. 5 trade weighs: automaton states, transition-table bytes, and DFA
/// steps per posted event.
struct GroupCost {
  size_t dfa_states = 0;
  size_t table_bytes = 0;
  size_t steps_per_event = 0;
};

/// A suggested trigger group: related triggers whose product automaton was
/// actually built, measured, and oracle-validated.
struct TriggerGroupPlan {
  std::vector<size_t> members;            ///< Indices into the trigger list.
  std::vector<std::string> member_names;  ///< Same order as `members`.
  GroupCost separate;  ///< Per-trigger automata over the shared alphabet.
  GroupCost combined;  ///< The product automaton.
  /// Random histories on which every member's product acceptance bit
  /// matched the §4 oracle (the plan is dropped on any mismatch).
  size_t oracle_histories = 0;
  /// Witness: the shortest realizable history on which two members fire
  /// (analyze/witness.h), attached to the G001 diagnostic. Empty when
  /// witnesses are off or none was found.
  std::vector<WitnessHistory> witness;
  size_t witness_failures = 0;
};

struct GroupPlanOptions {
  CombinedProgram::Options combined;
  /// Oracle cross-validation: histories per group and symbols per history.
  size_t oracle_histories = 24;
  size_t oracle_history_length = 10;
  uint64_t oracle_seed = 0x0de5eed;
  /// Build a concrete overlap witness per verified plan.
  bool witnesses = true;
  WitnessOptions witness_options;
};

/// The §5 footnote-5 planner: clusters triggers related by the pairwise
/// sweep's A004/A005/A007 findings (union-find over `findings`), builds
/// the combined product automaton per cluster of two or more, measures
/// separate-vs-combined cost, and cross-validates every member's
/// acceptance bit against the §4 denotational oracle on random realizable
/// histories. Clusters whose combined build fails (gates, >64 members,
/// state blowup) or whose validation finds any mismatch are silently
/// dropped — a G001 suggestion is only ever backed by a verified program.
std::vector<TriggerGroupPlan> PlanTriggerGroups(
    const std::vector<TriggerSpec>& specs,
    const std::vector<PairFinding>& findings,
    const GroupPlanOptions& options = {});

}  // namespace ode

#endif  // ODE_ANALYZE_GROUP_PLAN_H_
