#ifndef ODE_MASK_MASK_AST_H_
#define ODE_MASK_MASK_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "common/source_span.h"
#include "common/value.h"

namespace ode {

/// Node discriminator for mask-expression ASTs (§3.2).
enum class MaskKind : uint8_t {
  kLiteral,  ///< 42, 3.5, "s", true, false
  kIdent,    ///< q, balance, user-defined name
  kMember,   ///< base.field (base must evaluate to an object reference)
  kCall,     ///< f(args...) — host-registered function
  kUnary,    ///< !x or -x
  kBinary,   ///< x op y
};

/// Operators usable inside masks.
enum class MaskOp : uint8_t {
  kOr,   // ||
  kAnd,  // &&
  kNot,  // !
  kEq,   // ==
  kNe,   // !=
  kLt,   // <
  kLe,   // <=
  kGt,   // >
  kGe,   // >=
  kAdd,  // +
  kSub,  // -
  kMul,  // *
  kDiv,  // /
  kMod,  // %
  kNeg,  // unary -
};

std::string_view MaskOpName(MaskOp op);

struct MaskExpr;
using MaskExprPtr = std::shared_ptr<const MaskExpr>;

/// A mask: a side-effect-free predicate attached to a basic or composite
/// event (§3.2). Masks over basic events may reference the event's
/// parameters; all masks may read object state via identifiers/members and
/// call registered host functions.
///
/// Nodes are immutable and shared (shared_ptr-const idiom), so subtrees can
/// be reused freely by the desugarer and the disjointness rewriter.
struct MaskExpr {
  MaskKind kind = MaskKind::kLiteral;
  MaskOp op = MaskOp::kAnd;              // kUnary/kBinary
  Value literal;                         // kLiteral
  std::string name;                      // kIdent/kMember(field)/kCall(fn)
  std::vector<MaskExprPtr> children;     // operands / call args / member base

  /// Source range this node was parsed from; empty for synthesized nodes
  /// (the §5 rewrite's combinators). Set by the parser after construction.
  SourceSpan span;

  /// --- Factories -------------------------------------------------------
  static MaskExprPtr Literal(Value v);
  static MaskExprPtr Ident(std::string name);
  static MaskExprPtr Member(MaskExprPtr base, std::string field);
  static MaskExprPtr Call(std::string fn, std::vector<MaskExprPtr> args);
  static MaskExprPtr Unary(MaskOp op, MaskExprPtr operand);
  static MaskExprPtr Binary(MaskOp op, MaskExprPtr lhs, MaskExprPtr rhs);

  /// Convenience combinators used by the §5 disjointness rewrite.
  static MaskExprPtr And(MaskExprPtr a, MaskExprPtr b);
  static MaskExprPtr Not(MaskExprPtr a);

  /// Canonical, re-parsable text (used for structural identity and
  /// alphabet deduplication).
  std::string ToString() const;

  /// Structural equality via canonical text.
  bool Equals(const MaskExpr& other) const;

  /// All identifier names referenced at the top level (used to report which
  /// event parameters a mask depends on).
  void CollectIdents(std::vector<std::string>* out) const;
};

}  // namespace ode

#endif  // ODE_MASK_MASK_AST_H_
