#ifndef ODE_MASK_MASK_EVAL_H_
#define ODE_MASK_MASK_EVAL_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "mask/mask_ast.h"

namespace ode {

/// Name-resolution environment for mask evaluation. Masks associated with a
/// logical event are evaluated "as of the time at which the basic event
/// occurred" (§3.2): the environment the engine passes in binds that
/// moment's event parameters and object state.
class MaskEnv {
 public:
  virtual ~MaskEnv() = default;

  /// Resolves a bare identifier. Engines resolve in order: event argument,
  /// trigger parameter, object attribute.
  virtual Result<Value> Lookup(std::string_view name) const = 0;

  /// Resolves `base.field` where `base` evaluated to an object reference.
  virtual Result<Value> Member(const Value& base,
                               std::string_view field) const = 0;

  /// Invokes a registered host function (e.g. `authorized(user())`).
  virtual Result<Value> Call(std::string_view fn,
                             const std::vector<Value>& args) const = 0;
};

/// A MaskEnv over plain maps — sufficient for tests and for the oracle.
class SimpleMaskEnv : public MaskEnv {
 public:
  using HostFn =
      std::function<Result<Value>(const std::vector<Value>&)>;

  SimpleMaskEnv() = default;

  void Bind(std::string name, Value v) { vars_[std::move(name)] = std::move(v); }
  void BindFn(std::string name, HostFn fn) {
    fns_[std::move(name)] = std::move(fn);
  }

  Result<Value> Lookup(std::string_view name) const override;
  Result<Value> Member(const Value& base,
                       std::string_view field) const override;
  Result<Value> Call(std::string_view fn,
                     const std::vector<Value>& args) const override;

 private:
  std::map<std::string, Value, std::less<>> vars_;
  std::map<std::string, HostFn, std::less<>> fns_;
};

/// Evaluates a mask expression in `env`.
Result<Value> EvalMask(const MaskExpr& mask, const MaskEnv& env);

/// Evaluates and coerces to a predicate outcome via Value::Truthy.
Result<bool> EvalMaskBool(const MaskExpr& mask, const MaskEnv& env);

}  // namespace ode

#endif  // ODE_MASK_MASK_EVAL_H_
