#include "mask/mask_ast.h"

#include "common/strutil.h"

namespace ode {

std::string_view MaskOpName(MaskOp op) {
  switch (op) {
    case MaskOp::kOr: return "||";
    case MaskOp::kAnd: return "&&";
    case MaskOp::kNot: return "!";
    case MaskOp::kEq: return "==";
    case MaskOp::kNe: return "!=";
    case MaskOp::kLt: return "<";
    case MaskOp::kLe: return "<=";
    case MaskOp::kGt: return ">";
    case MaskOp::kGe: return ">=";
    case MaskOp::kAdd: return "+";
    case MaskOp::kSub: return "-";
    case MaskOp::kMul: return "*";
    case MaskOp::kDiv: return "/";
    case MaskOp::kMod: return "%";
    case MaskOp::kNeg: return "-";
  }
  return "?";
}

MaskExprPtr MaskExpr::Literal(Value v) {
  auto e = std::make_shared<MaskExpr>();
  e->kind = MaskKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

MaskExprPtr MaskExpr::Ident(std::string name) {
  auto e = std::make_shared<MaskExpr>();
  e->kind = MaskKind::kIdent;
  e->name = std::move(name);
  return e;
}

MaskExprPtr MaskExpr::Member(MaskExprPtr base, std::string field) {
  auto e = std::make_shared<MaskExpr>();
  e->kind = MaskKind::kMember;
  e->name = std::move(field);
  e->children.push_back(std::move(base));
  return e;
}

MaskExprPtr MaskExpr::Call(std::string fn, std::vector<MaskExprPtr> args) {
  auto e = std::make_shared<MaskExpr>();
  e->kind = MaskKind::kCall;
  e->name = std::move(fn);
  e->children = std::move(args);
  return e;
}

MaskExprPtr MaskExpr::Unary(MaskOp op, MaskExprPtr operand) {
  auto e = std::make_shared<MaskExpr>();
  e->kind = MaskKind::kUnary;
  e->op = op;
  e->children.push_back(std::move(operand));
  return e;
}

MaskExprPtr MaskExpr::Binary(MaskOp op, MaskExprPtr lhs, MaskExprPtr rhs) {
  auto e = std::make_shared<MaskExpr>();
  e->kind = MaskKind::kBinary;
  e->op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

MaskExprPtr MaskExpr::And(MaskExprPtr a, MaskExprPtr b) {
  return Binary(MaskOp::kAnd, std::move(a), std::move(b));
}

MaskExprPtr MaskExpr::Not(MaskExprPtr a) {
  return Unary(MaskOp::kNot, std::move(a));
}

std::string MaskExpr::ToString() const {
  switch (kind) {
    case MaskKind::kLiteral:
      return literal.ToString();
    case MaskKind::kIdent:
      return name;
    case MaskKind::kMember:
      return children[0]->ToString() + "." + name;
    case MaskKind::kCall: {
      std::vector<std::string> args;
      args.reserve(children.size());
      for (const MaskExprPtr& c : children) args.push_back(c->ToString());
      return name + "(" + Join(args, ", ") + ")";
    }
    case MaskKind::kUnary:
      return std::string(MaskOpName(op)) + children[0]->ToString();
    case MaskKind::kBinary:
      // Fully parenthesized canonical form: identity is unambiguous and the
      // text re-parses to an equal tree.
      return "(" + children[0]->ToString() + " " +
             std::string(MaskOpName(op)) + " " + children[1]->ToString() +
             ")";
  }
  return "?";
}

bool MaskExpr::Equals(const MaskExpr& other) const {
  return ToString() == other.ToString();
}

void MaskExpr::CollectIdents(std::vector<std::string>* out) const {
  if (kind == MaskKind::kIdent) {
    out->push_back(name);
    return;
  }
  for (const MaskExprPtr& c : children) c->CollectIdents(out);
}

}  // namespace ode
