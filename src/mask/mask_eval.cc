#include "mask/mask_eval.h"

#include "common/strutil.h"

namespace ode {

Result<Value> SimpleMaskEnv::Lookup(std::string_view name) const {
  auto it = vars_.find(name);
  if (it == vars_.end()) {
    return Status::NotFound(StrFormat("unbound identifier '%s'",
                                      std::string(name).c_str()));
  }
  return it->second;
}

Result<Value> SimpleMaskEnv::Member(const Value& base,
                                    std::string_view field) const {
  // Without a database, member access is resolved as "<oid>.<field>"
  // bindings, letting tests exercise the syntax.
  Result<Oid> oid = base.AsOid();
  if (!oid.ok()) return oid.status();
  std::string key = StrFormat("@%llu.%s",
                              static_cast<unsigned long long>(oid->id),
                              std::string(field).c_str());
  auto it = vars_.find(key);
  if (it == vars_.end()) {
    return Status::NotFound(StrFormat("no member binding '%s'", key.c_str()));
  }
  return it->second;
}

Result<Value> SimpleMaskEnv::Call(std::string_view fn,
                                  const std::vector<Value>& args) const {
  auto it = fns_.find(fn);
  if (it == fns_.end()) {
    return Status::NotFound(StrFormat("unknown function '%s'",
                                      std::string(fn).c_str()));
  }
  return it->second(args);
}

namespace {

Result<Value> EvalBinary(const MaskExpr& mask, const MaskEnv& env) {
  // Short-circuit for && and ||.
  if (mask.op == MaskOp::kAnd || mask.op == MaskOp::kOr) {
    Result<Value> lhs = EvalMask(*mask.children[0], env);
    if (!lhs.ok()) return lhs.status();
    bool l = lhs->Truthy();
    if (mask.op == MaskOp::kAnd && !l) return Value(false);
    if (mask.op == MaskOp::kOr && l) return Value(true);
    Result<Value> rhs = EvalMask(*mask.children[1], env);
    if (!rhs.ok()) return rhs.status();
    return Value(rhs->Truthy());
  }

  Result<Value> lhs = EvalMask(*mask.children[0], env);
  if (!lhs.ok()) return lhs.status();
  Result<Value> rhs = EvalMask(*mask.children[1], env);
  if (!rhs.ok()) return rhs.status();

  switch (mask.op) {
    case MaskOp::kEq:
      return Value(lhs->Equals(*rhs));
    case MaskOp::kNe:
      return Value(!lhs->Equals(*rhs));
    case MaskOp::kLt:
    case MaskOp::kLe:
    case MaskOp::kGt:
    case MaskOp::kGe: {
      Result<int> c = lhs->Compare(*rhs);
      if (!c.ok()) return c.status();
      switch (mask.op) {
        case MaskOp::kLt: return Value(*c < 0);
        case MaskOp::kLe: return Value(*c <= 0);
        case MaskOp::kGt: return Value(*c > 0);
        default: return Value(*c >= 0);
      }
    }
    case MaskOp::kAdd: return lhs->Add(*rhs);
    case MaskOp::kSub: return lhs->Sub(*rhs);
    case MaskOp::kMul: return lhs->Mul(*rhs);
    case MaskOp::kDiv: return lhs->Div(*rhs);
    case MaskOp::kMod: return lhs->Mod(*rhs);
    default:
      return Status::Internal("unexpected binary mask operator");
  }
}

}  // namespace

Result<Value> EvalMask(const MaskExpr& mask, const MaskEnv& env) {
  switch (mask.kind) {
    case MaskKind::kLiteral:
      return mask.literal;
    case MaskKind::kIdent:
      return env.Lookup(mask.name);
    case MaskKind::kMember: {
      Result<Value> base = EvalMask(*mask.children[0], env);
      if (!base.ok()) return base.status();
      return env.Member(*base, mask.name);
    }
    case MaskKind::kCall: {
      std::vector<Value> args;
      args.reserve(mask.children.size());
      for (const MaskExprPtr& c : mask.children) {
        Result<Value> v = EvalMask(*c, env);
        if (!v.ok()) return v.status();
        args.push_back(std::move(*v));
      }
      return env.Call(mask.name, args);
    }
    case MaskKind::kUnary: {
      Result<Value> v = EvalMask(*mask.children[0], env);
      if (!v.ok()) return v.status();
      if (mask.op == MaskOp::kNot) return Value(!v->Truthy());
      if (mask.op == MaskOp::kNeg) return v->Neg();
      return Status::Internal("unexpected unary mask operator");
    }
    case MaskKind::kBinary:
      return EvalBinary(mask, env);
  }
  return Status::Internal("unexpected mask node kind");
}

Result<bool> EvalMaskBool(const MaskExpr& mask, const MaskEnv& env) {
  Result<Value> v = EvalMask(mask, env);
  if (!v.ok()) return v.status();
  return v->Truthy();
}

}  // namespace ode
