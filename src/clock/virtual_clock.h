#ifndef ODE_CLOCK_VIRTUAL_CLOCK_H_
#define ODE_CLOCK_VIRTUAL_CLOCK_H_

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "event/basic_event.h"
#include "event/time_spec.h"

namespace ode {

/// Deterministic virtual time source and timer queue for the paper's time
/// events (§3.1):
///
///   at time-spec      — calendar pattern; re-arms to the next match.
///   every time-period — periodic from registration.
///   after time-period — one-shot, period after registration.
///
/// Timers are registered per (object, time event) when a trigger whose
/// alphabet references the event is activated, and are refcounted so
/// several triggers can share one timer. Advancing the clock fires due
/// timers in timestamp order (ties broken by registration order), calling
/// back into the database, which posts the time event to the subscribed
/// object (time events are "really global, but ... posted only to the
/// relevant objects", §3.1).
///
/// Thread model: `now()` is a lock-free atomic read (it is on the event
/// posting hot path); the timer table is mutex-guarded so shard workers can
/// activate/deactivate timer-bearing triggers concurrently. AdvanceTo runs
/// the fire callback outside the lock (it re-enters Add/RemoveTimer), but
/// time advancement itself must be externally serialized against ingestion
/// — drain the ingest runtime before advancing the clock.
class VirtualClock {
 public:
  using FireFn =
      std::function<Status(Oid object, const std::string& time_key,
                           TimeMs fire_time)>;

  TimeMs now() const { return now_.load(std::memory_order_acquire); }

  /// Sets the current time without firing timers (initialization only;
  /// errors if timers are registered).
  Status SetTime(TimeMs t);

  /// Registers (or refcounts) a timer for a time basic event on an object.
  Status AddTimer(Oid object, const BasicEvent& time_event);

  /// Decrements the timer's refcount, removing it at zero.
  Status RemoveTimer(Oid object, const BasicEvent& time_event);

  /// Advances to `target`, firing every due timer in order. The clock's
  /// `now` is set to each firing's timestamp while `fire` runs, and to
  /// `target` at the end.
  Status AdvanceTo(TimeMs target, const FireFn& fire);
  Status Advance(TimeMs delta, const FireFn& fire) {
    return AdvanceTo(now() + delta, fire);
  }

  size_t num_timers() const {
    std::lock_guard<std::mutex> lock(mu_);
    return timers_.size();
  }
  uint64_t firings() const { return firings_.load(std::memory_order_relaxed); }

  /// Snapshot support (ode/persistence).
  struct TimerState {
    Oid object;
    TimeEventMode mode = TimeEventMode::kAt;
    TimeSpec spec;
    TimeMs next_fire = 0;
    int refcount = 1;
  };
  std::vector<TimerState> ExportTimers() const;
  Status ImportTimers(std::vector<TimerState> timers, TimeMs now);

 private:
  struct Timer {
    uint64_t id = 0;
    Oid object;
    TimeEventMode mode = TimeEventMode::kAt;
    TimeSpec spec;
    std::string time_key;  // BasicEvent::CanonicalKey of the event.
    TimeMs next_fire = 0;
    int64_t period_ms = 0;  // kEvery.
    int refcount = 1;
  };

  /// Key: (oid, canonical key) — one timer per event per object.
  mutable std::mutex mu_;  ///< Guards timers_ and next_id_.
  std::map<std::pair<uint64_t, std::string>, Timer> timers_;
  std::atomic<TimeMs> now_{0};
  uint64_t next_id_ = 1;
  std::atomic<uint64_t> firings_{0};
};

}  // namespace ode

#endif  // ODE_CLOCK_VIRTUAL_CLOCK_H_
