#include "clock/virtual_clock.h"

#include <algorithm>

#include "common/strutil.h"

namespace ode {

Status VirtualClock::SetTime(TimeMs t) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!timers_.empty()) {
    return Status::FailedPrecondition(
        "cannot reset the clock while timers are registered");
  }
  now_.store(t, std::memory_order_release);
  return Status::OK();
}

Status VirtualClock::AddTimer(Oid object, const BasicEvent& time_event) {
  if (time_event.kind != BasicEventKind::kTime) {
    return Status::InvalidArgument("AddTimer requires a time event");
  }
  ODE_RETURN_IF_ERROR(time_event.Validate());
  std::string key = time_event.CanonicalKey();
  auto map_key = std::make_pair(object.id, key);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = timers_.find(map_key);
  if (it != timers_.end()) {
    ++it->second.refcount;
    return Status::OK();
  }

  Timer t;
  t.id = next_id_++;
  t.object = object;
  t.mode = time_event.time_mode;
  t.spec = time_event.time_spec;
  t.time_key = key;
  switch (t.mode) {
    case TimeEventMode::kAt: {
      Result<TimeMs> next = t.spec.NextMatchAfter(now_);
      if (!next.ok()) return next.status();
      t.next_fire = *next;
      break;
    }
    case TimeEventMode::kEvery: {
      Result<int64_t> period = t.spec.AsPeriodMs();
      if (!period.ok()) return period.status();
      t.period_ms = *period;
      t.next_fire = now_ + t.period_ms;
      break;
    }
    case TimeEventMode::kAfter: {
      Result<int64_t> period = t.spec.AsPeriodMs();
      if (!period.ok()) return period.status();
      t.next_fire = now_ + *period;
      break;
    }
  }
  timers_.emplace(map_key, std::move(t));
  return Status::OK();
}

Status VirtualClock::RemoveTimer(Oid object, const BasicEvent& time_event) {
  auto map_key = std::make_pair(object.id, time_event.CanonicalKey());
  std::lock_guard<std::mutex> lock(mu_);
  auto it = timers_.find(map_key);
  if (it == timers_.end()) {
    return Status::NotFound("no such timer");
  }
  if (--it->second.refcount <= 0) timers_.erase(it);
  return Status::OK();
}

Status VirtualClock::AdvanceTo(TimeMs target, const FireFn& fire) {
  if (target < now()) {
    return Status::InvalidArgument("virtual time cannot move backwards");
  }
  while (true) {
    Oid object;
    std::string time_key;
    TimeMs fire_time = 0;
    Timer snapshot;
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Earliest due timer at or before target (ties: lowest id).
      Timer* due = nullptr;
      for (auto& [key, t] : timers_) {
        if (t.next_fire > target) continue;
        if (due == nullptr || t.next_fire < due->next_fire ||
            (t.next_fire == due->next_fire && t.id < due->id)) {
          due = &t;
        }
      }
      if (due == nullptr) break;

      now_.store(due->next_fire, std::memory_order_release);
      firings_.fetch_add(1, std::memory_order_relaxed);
      object = due->object;
      time_key = due->time_key;
      fire_time = due->next_fire;
      snapshot = *due;

      // Re-arm (or retire) before the callback: the callback may re-enter
      // (e.g. a trigger action registering new timers), so it runs outside
      // the lock, and the table must already reflect this firing.
      switch (due->mode) {
        case TimeEventMode::kAt: {
          Result<TimeMs> next = due->spec.NextMatchAfter(fire_time);
          if (!next.ok()) return next.status();
          due->next_fire = *next;
          break;
        }
        case TimeEventMode::kEvery:
          due->next_fire += due->period_ms;
          break;
        case TimeEventMode::kAfter:
          timers_.erase(std::make_pair(object.id, time_key));
          break;
      }
    }

    if (fire != nullptr) {
      Status delivered = fire(object, time_key, fire_time);
      if (!delivered.ok()) {
        // Undeliverable (e.g. the object is locked by a conflicting
        // transaction): restore the timer so a later advance retries this
        // firing instead of silently dropping it.
        std::lock_guard<std::mutex> lock(mu_);
        firings_.fetch_sub(1, std::memory_order_relaxed);
        timers_[std::make_pair(object.id, time_key)] = snapshot;
        return delivered;
      }
    }
  }
  now_.store(target, std::memory_order_release);
  return Status::OK();
}

std::vector<VirtualClock::TimerState> VirtualClock::ExportTimers() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TimerState> out;
  out.reserve(timers_.size());
  for (const auto& [key, t] : timers_) {
    out.push_back(TimerState{t.object, t.mode, t.spec, t.next_fire,
                             t.refcount});
  }
  return out;
}

Status VirtualClock::ImportTimers(std::vector<TimerState> timers, TimeMs now) {
  std::lock_guard<std::mutex> lock(mu_);
  timers_.clear();
  now_.store(now, std::memory_order_release);
  for (TimerState& s : timers) {
    BasicEvent be = BasicEvent::Time(s.mode, s.spec);
    Timer t;
    t.id = next_id_++;
    t.object = s.object;
    t.mode = s.mode;
    t.spec = s.spec;
    t.time_key = be.CanonicalKey();
    t.next_fire = s.next_fire;
    t.refcount = s.refcount;
    if (s.mode == TimeEventMode::kEvery) {
      Result<int64_t> period = s.spec.AsPeriodMs();
      if (!period.ok()) return period.status();
      t.period_ms = *period;
    }
    timers_.emplace(std::make_pair(s.object.id, t.time_key), std::move(t));
  }
  return Status::OK();
}

}  // namespace ode
