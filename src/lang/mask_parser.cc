#include "lang/mask_parser.h"

namespace ode {

namespace {

/// Stamps a span onto a freshly built node. The const_cast is safe: every
/// node reaching here was just created by a MaskExpr factory in this parse
/// and has no other owners yet.
MaskExprPtr WithSpan(MaskExprPtr e, size_t begin, size_t end) {
  const_cast<MaskExpr*>(e.get())->span = SourceSpan{begin, end};
  return e;
}

Result<MaskExprPtr> ParseOr(TokenStream* ts);

Result<MaskExprPtr> ParsePrimary(TokenStream* ts) {
  NestingScope nesting(ts);
  if (!nesting.ok()) return NestingScope::TooDeep();
  const Token& t = ts->Peek();
  switch (t.kind) {
    case TokenKind::kInt: {
      ts->Next();
      return WithSpan(MaskExpr::Literal(Value(t.int_value)), t.offset,
                      t.offset + t.length);
    }
    case TokenKind::kFloat: {
      ts->Next();
      return WithSpan(MaskExpr::Literal(Value(t.float_value)), t.offset,
                      t.offset + t.length);
    }
    case TokenKind::kString: {
      ts->Next();
      return WithSpan(MaskExpr::Literal(Value(t.text)), t.offset,
                      t.offset + t.length);
    }
    case TokenKind::kLParen: {
      ts->Next();
      Result<MaskExprPtr> inner = ParseOr(ts);
      if (!inner.ok()) return inner;
      ODE_RETURN_IF_ERROR(ts->Expect(TokenKind::kRParen));
      // Widen to include the parentheses so carets cover what was written.
      return WithSpan(std::move(*inner), t.offset, ts->PrevEnd());
    }
    case TokenKind::kIdent: {
      if (t.keyword == Keyword::kTrue) {
        ts->Next();
        return WithSpan(MaskExpr::Literal(Value(true)), t.offset,
                        t.offset + t.length);
      }
      if (t.keyword == Keyword::kFalse) {
        ts->Next();
        return WithSpan(MaskExpr::Literal(Value(false)), t.offset,
                        t.offset + t.length);
      }
      if (t.keyword != Keyword::kNone) {
        return ParseErrorAt(t, "identifier (keywords are reserved in masks)");
      }
      std::string name = t.text;
      ts->Next();
      if (ts->TryConsume(TokenKind::kLParen)) {
        std::vector<MaskExprPtr> args;
        if (!ts->Peek().is(TokenKind::kRParen)) {
          while (true) {
            Result<MaskExprPtr> arg = ParseOr(ts);
            if (!arg.ok()) return arg;
            args.push_back(std::move(*arg));
            if (!ts->TryConsume(TokenKind::kComma)) break;
          }
        }
        ODE_RETURN_IF_ERROR(ts->Expect(TokenKind::kRParen));
        return WithSpan(MaskExpr::Call(std::move(name), std::move(args)),
                        t.offset, ts->PrevEnd());
      }
      return WithSpan(MaskExpr::Ident(std::move(name)), t.offset,
                      t.offset + t.length);
    }
    default:
      return ParseErrorAt(t, "a mask primary expression");
  }
}

Result<MaskExprPtr> ParsePostfix(TokenStream* ts) {
  const size_t begin = ts->Peek().offset;
  Result<MaskExprPtr> base = ParsePrimary(ts);
  if (!base.ok()) return base;
  MaskExprPtr expr = std::move(*base);
  while (ts->TryConsume(TokenKind::kDot)) {
    const Token& field = ts->Peek();
    if (!field.is_plain_ident()) {
      return ParseErrorAt(field, "member name after '.'");
    }
    ts->Next();
    expr = WithSpan(MaskExpr::Member(std::move(expr), field.text), begin,
                    ts->PrevEnd());
  }
  return expr;
}

Result<MaskExprPtr> ParseUnary(TokenStream* ts) {
  const size_t begin = ts->Peek().offset;
  if (ts->TryConsume(TokenKind::kBang)) {
    NestingScope nesting(ts);
    if (!nesting.ok()) return NestingScope::TooDeep();
    Result<MaskExprPtr> operand = ParseUnary(ts);
    if (!operand.ok()) return operand;
    return WithSpan(MaskExpr::Unary(MaskOp::kNot, std::move(*operand)), begin,
                    ts->PrevEnd());
  }
  if (ts->TryConsume(TokenKind::kMinus)) {
    NestingScope nesting(ts);
    if (!nesting.ok()) return NestingScope::TooDeep();
    Result<MaskExprPtr> operand = ParseUnary(ts);
    if (!operand.ok()) return operand;
    return WithSpan(MaskExpr::Unary(MaskOp::kNeg, std::move(*operand)), begin,
                    ts->PrevEnd());
  }
  return ParsePostfix(ts);
}

/// Parses a left-associative binary level given the operand parser and the
/// accepted (token, op) pairs.
template <typename Sub, typename Match>
Result<MaskExprPtr> ParseBinaryLevel(TokenStream* ts, Sub sub, Match match) {
  const size_t begin = ts->Peek().offset;
  Result<MaskExprPtr> lhs = sub(ts);
  if (!lhs.ok()) return lhs;
  MaskExprPtr expr = std::move(*lhs);
  MaskOp op;
  while (match(ts->Peek().kind, &op)) {
    ts->Next();
    Result<MaskExprPtr> rhs = sub(ts);
    if (!rhs.ok()) return rhs;
    expr = WithSpan(MaskExpr::Binary(op, std::move(expr), std::move(*rhs)),
                    begin, ts->PrevEnd());
  }
  return expr;
}

Result<MaskExprPtr> ParseMul(TokenStream* ts) {
  return ParseBinaryLevel(ts, ParseUnary, [](TokenKind k, MaskOp* op) {
    switch (k) {
      case TokenKind::kStar: *op = MaskOp::kMul; return true;
      case TokenKind::kSlash: *op = MaskOp::kDiv; return true;
      case TokenKind::kPercent: *op = MaskOp::kMod; return true;
      default: return false;
    }
  });
}

Result<MaskExprPtr> ParseAdd(TokenStream* ts) {
  return ParseBinaryLevel(ts, ParseMul, [](TokenKind k, MaskOp* op) {
    switch (k) {
      case TokenKind::kPlus: *op = MaskOp::kAdd; return true;
      case TokenKind::kMinus: *op = MaskOp::kSub; return true;
      default: return false;
    }
  });
}

Result<MaskExprPtr> ParseRel(TokenStream* ts) {
  return ParseBinaryLevel(ts, ParseAdd, [](TokenKind k, MaskOp* op) {
    switch (k) {
      case TokenKind::kLt: *op = MaskOp::kLt; return true;
      case TokenKind::kLe: *op = MaskOp::kLe; return true;
      case TokenKind::kGt: *op = MaskOp::kGt; return true;
      case TokenKind::kGe: *op = MaskOp::kGe; return true;
      default: return false;
    }
  });
}

Result<MaskExprPtr> ParseEq(TokenStream* ts) {
  return ParseBinaryLevel(ts, ParseRel, [](TokenKind k, MaskOp* op) {
    switch (k) {
      case TokenKind::kEqEq: *op = MaskOp::kEq; return true;
      case TokenKind::kBangEq: *op = MaskOp::kNe; return true;
      default: return false;
    }
  });
}

Result<MaskExprPtr> ParseAnd(TokenStream* ts) {
  return ParseBinaryLevel(ts, ParseEq, [](TokenKind k, MaskOp* op) {
    if (k == TokenKind::kAmpAmp) {
      *op = MaskOp::kAnd;
      return true;
    }
    return false;
  });
}

Result<MaskExprPtr> ParseOr(TokenStream* ts) {
  return ParseBinaryLevel(ts, ParseAnd, [](TokenKind k, MaskOp* op) {
    if (k == TokenKind::kPipePipe) {
      *op = MaskOp::kOr;
      return true;
    }
    return false;
  });
}

}  // namespace

Result<MaskExprPtr> ParseMaskExpr(TokenStream* ts) { return ParseOr(ts); }

Result<MaskExprPtr> ParseMask(std::string_view input) {
  Result<std::vector<Token>> tokens = Tokenize(input);
  if (!tokens.ok()) return tokens.status();
  TokenStream ts(std::move(*tokens));
  Result<MaskExprPtr> mask = ParseMaskExpr(&ts);
  if (!mask.ok()) return mask;
  if (!ts.AtEnd()) {
    return ParseErrorAt(ts.Peek(), "end of mask");
  }
  return mask;
}

}  // namespace ode
