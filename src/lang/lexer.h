#ifndef ODE_LANG_LEXER_H_
#define ODE_LANG_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "lang/token.h"

namespace ode {

/// Tokenizes an entire DSL input up front. Producing a flat token vector
/// keeps parser backtracking (needed for the bare-state-predicate
/// shorthand, §3.3) a matter of saving/restoring an index.
///
/// Supports `//` line and `/* */` block comments.
Result<std::vector<Token>> Tokenize(std::string_view input);

/// A cursor over a token vector, shared by the mask and event parsers.
class TokenStream {
 public:
  explicit TokenStream(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  const Token& Peek(size_t lookahead = 0) const {
    size_t i = pos_ + lookahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Next() {
    const Token& t = Peek();
    if (pos_ + 1 < tokens_.size()) ++pos_;
    else pos_ = tokens_.size() - 1;
    return t;
  }
  bool AtEnd() const { return Peek().is(TokenKind::kEnd); }

  /// Consumes the next token if it has the given kind.
  bool TryConsume(TokenKind kind) {
    if (!Peek().is(kind)) return false;
    Next();
    return true;
  }
  /// Consumes the next token if it is the given keyword.
  bool TryConsumeKeyword(Keyword kw) {
    if (!Peek().is_keyword(kw)) return false;
    Next();
    return true;
  }
  /// Consumes a token of the given kind or returns a ParseError naming the
  /// surprise token.
  Status Expect(TokenKind kind);

  /// Save/restore for backtracking.
  size_t Save() const { return pos_; }
  void Restore(size_t saved) { pos_ = saved; }

  /// Source end (offset past the last byte) of the most recently consumed
  /// token, or 0 when nothing has been consumed. Parsers use this as the
  /// exclusive end of a just-finished production's source span.
  size_t PrevEnd() const {
    if (pos_ == 0) return 0;
    const Token& t = tokens_[pos_ - 1];
    return t.offset + t.length;
  }

  /// Recursive-descent depth guard: adversarial inputs like thousands of
  /// nested parentheses or `!` chains must fail with a clean ParseError
  /// instead of exhausting the stack.
  static constexpr int kMaxNesting = 200;
  int nesting() const { return nesting_; }
  int* mutable_nesting() { return &nesting_; }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int nesting_ = 0;
};

/// RAII scope for TokenStream's nesting counter. Check ok() right after
/// construction; when false the caller must return a ParseError.
class NestingScope {
 public:
  explicit NestingScope(TokenStream* ts)
      : counter_(ts->mutable_nesting()),
        ok_(++*counter_ <= TokenStream::kMaxNesting) {}
  ~NestingScope() { --*counter_; }
  NestingScope(const NestingScope&) = delete;
  NestingScope& operator=(const NestingScope&) = delete;

  bool ok() const { return ok_; }
  static Status TooDeep() {
    return Status::ParseError("expression nesting exceeds the parser limit");
  }

 private:
  int* counter_;
  bool ok_;
};

/// Formats "expected X, found Y at line L, column C" parse diagnostics.
Status ParseErrorAt(const Token& token, std::string_view expected);

}  // namespace ode

#endif  // ODE_LANG_LEXER_H_
