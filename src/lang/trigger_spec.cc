#include "lang/trigger_spec.h"

#include "common/strutil.h"
#include "lang/event_parser.h"
#include "lang/lexer.h"

namespace ode {

namespace {

/// Recognizes the optional `name(params):` header by lookahead: an
/// identifier followed by '(' whose matching ')' is followed by ':'.
bool HasHeader(const TokenStream& ts) {
  if (!ts.Peek(0).is_plain_ident() || !ts.Peek(1).is(TokenKind::kLParen)) {
    return false;
  }
  size_t depth = 0;
  for (size_t i = 1;; ++i) {
    const Token& t = ts.Peek(i);
    if (t.is(TokenKind::kEnd)) return false;
    if (t.is(TokenKind::kLParen)) ++depth;
    if (t.is(TokenKind::kRParen)) {
      if (--depth == 0) return ts.Peek(i + 1).is(TokenKind::kColon);
    }
  }
}

Result<std::vector<ParamDecl>> ParseHeaderParams(TokenStream* ts) {
  std::vector<ParamDecl> params;
  ODE_RETURN_IF_ERROR(ts->Expect(TokenKind::kLParen));
  if (ts->TryConsume(TokenKind::kRParen)) return params;
  while (true) {
    const Token& first = ts->Peek();
    if (!first.is_plain_ident()) {
      return ParseErrorAt(first, "trigger parameter declaration");
    }
    ts->Next();
    ParamDecl p;
    if (ts->Peek().is_plain_ident()) {
      p.type_name = first.text;
      p.name = ts->Peek().text;
      ts->Next();
    } else {
      p.name = first.text;
    }
    params.push_back(std::move(p));
    if (!ts->TryConsume(TokenKind::kComma)) break;
  }
  ODE_RETURN_IF_ERROR(ts->Expect(TokenKind::kRParen));
  return params;
}

}  // namespace

Result<TriggerSpec> ParseTriggerSpec(std::string_view input) {
  Result<std::vector<Token>> tokens = Tokenize(input);
  if (!tokens.ok()) return tokens.status();
  TokenStream ts(std::move(*tokens));

  TriggerSpec spec;
  if (HasHeader(ts)) {
    spec.name = ts.Next().text;
    Result<std::vector<ParamDecl>> params = ParseHeaderParams(&ts);
    if (!params.ok()) return params.status();
    spec.params = std::move(*params);
    ODE_RETURN_IF_ERROR(ts.Expect(TokenKind::kColon));
  }

  spec.perpetual = ts.TryConsumeKeyword(Keyword::kPerpetual);

  Result<EventExprPtr> event = ParseEventExpr(&ts);
  if (!event.ok()) return event.status();
  spec.event = std::move(*event);
  ODE_RETURN_IF_ERROR(spec.event->Validate());

  if (ts.TryConsume(TokenKind::kArrow)) {
    const Token& action = ts.Peek();
    if (action.kind != TokenKind::kIdent) {
      return ParseErrorAt(action, "an action name after '==>'");
    }
    spec.action = action.text;
    ts.Next();
    // Tolerate a trailing `()` and `;` as in the paper's listings
    // (`==> summary();`).
    if (ts.TryConsume(TokenKind::kLParen)) {
      ODE_RETURN_IF_ERROR(ts.Expect(TokenKind::kRParen));
    }
    ts.TryConsume(TokenKind::kSemicolon);
  }

  if (!ts.AtEnd()) {
    return ParseErrorAt(ts.Peek(), "end of trigger declaration");
  }
  return spec;
}

std::string TriggerSpec::ToString() const {
  std::string out;
  if (!name.empty()) {
    std::vector<std::string> decls;
    decls.reserve(params.size());
    for (const ParamDecl& p : params) {
      decls.push_back(p.type_name.empty() ? p.name
                                          : p.type_name + " " + p.name);
    }
    out += name + "(" + Join(decls, ", ") + "): ";
  }
  if (perpetual) out += "perpetual ";
  out += event ? event->ToString() : "<null>";
  if (!action.empty()) out += " ==> " + action;
  return out;
}

}  // namespace ode
