#ifndef ODE_LANG_BUILDER_H_
#define ODE_LANG_BUILDER_H_

#include <initializer_list>
#include <string>

#include "lang/event_ast.h"

namespace ode {
namespace builder {

/// A fluent, type-checked C++ alternative to the DSL strings — programs
/// that assemble trigger events dynamically (or want compiler-checked
/// structure) build `Ev` values instead of concatenating text:
///
///   using namespace ode::builder;
///   Ev large = After("withdraw", {{"Item", "i"}, {"int", "q"}})
///                  .Where("q > 1000");
///   Ev evt = Fa(large, BeforeTcomplete(), AfterTbegin());
///   trigger_spec.event = evt.ptr();
///
/// Ev is a thin immutable wrapper over EventExprPtr; every combinator maps
/// one-to-one onto a §3.3 operator. Mask texts are parsed eagerly; a parse
/// error poisons the value and surfaces when `ptr()`/`Build()` is called
/// (keeping the fluent chain exception- and Status-free mid-expression).
class Ev {
 public:
  /*implicit*/ Ev(EventExprPtr expr) : expr_(std::move(expr)) {}

  /// The built expression; null if any step of the chain failed (call
  /// `error()` for the diagnostic).
  EventExprPtr ptr() const { return error_.empty() ? expr_ : nullptr; }
  const std::string& error() const { return error_; }
  bool ok() const { return error_.empty() && expr_ != nullptr; }

  /// Validated build — the Status carries the first chain error.
  Result<EventExprPtr> Build() const {
    if (!error_.empty()) return Status::ParseError(error_);
    if (expr_ == nullptr) return Status::InvalidArgument("empty event");
    ODE_RETURN_IF_ERROR(expr_->Validate());
    return expr_;
  }

  /// Attaches a mask (§3.2 on atoms, §3.3 on composites). Text is parsed
  /// with the DSL mask grammar.
  Ev Where(std::string_view mask_text) const;

  static Ev Fail(std::string message) {
    Ev e{EventExprPtr(nullptr)};
    e.error_ = std::move(message);
    return e;
  }

  /// Propagates the first error through a combinator.
  static const std::string* FirstError(std::initializer_list<const Ev*> evs) {
    for (const Ev* e : evs) {
      if (!e->error_.empty()) return &e->error_;
    }
    return nullptr;
  }

 private:
  EventExprPtr expr_;
  std::string error_;
};

/// --- Atoms (§3.1) ---------------------------------------------------------

Ev After(std::string method, std::vector<ParamDecl> params = {});
Ev Before(std::string method, std::vector<ParamDecl> params = {});
Ev AfterCreate();
Ev BeforeDelete();
Ev AfterUpdate();
Ev BeforeUpdate();
Ev AfterRead();
Ev BeforeRead();
Ev AfterAccess();
Ev BeforeAccess();
Ev AfterTbegin();
Ev BeforeTcomplete();
Ev AfterTcommit();
Ev BeforeTabort();
Ev AfterTabort();
Ev At(TimeSpec spec);
Ev EveryPeriod(TimeSpec period);
Ev AfterPeriod(TimeSpec period);
Ev Never();  ///< The empty event set.

/// The §3.3 bare-method shorthand: (before f | after f).
Ev Method(const std::string& name);
/// The §3.3 object-state shorthand: (after update | after create) && pred.
Ev StateReached(std::string_view predicate_text);

/// --- Combinators (§3.3–3.4) -------------------------------------------------

Ev Or(const Ev& a, const Ev& b);
Ev And(const Ev& a, const Ev& b);
Ev Not(const Ev& a);
Ev Relative(std::initializer_list<Ev> events);
Ev RelativePlus(const Ev& e);
Ev RelativeN(int64_t n, const Ev& e);
Ev Prior(std::initializer_list<Ev> events);
Ev PriorN(int64_t n, const Ev& e);
Ev Sequence(std::initializer_list<Ev> events);
Ev SequenceN(int64_t n, const Ev& e);
Ev Choose(int64_t n, const Ev& e);
Ev Every(int64_t n, const Ev& e);
Ev Fa(const Ev& e, const Ev& f, const Ev& g);
Ev FaAbs(const Ev& e, const Ev& f, const Ev& g);

/// Operator sugar for union, intersection, complement. (&& and || are
/// deliberately *not* overloaded; use Where for masks.)
inline Ev operator|(const Ev& a, const Ev& b) { return Or(a, b); }
inline Ev operator&(const Ev& a, const Ev& b) { return And(a, b); }
inline Ev operator!(const Ev& a) { return Not(a); }

}  // namespace builder
}  // namespace ode

#endif  // ODE_LANG_BUILDER_H_
