#include "lang/builder.h"

#include "lang/mask_parser.h"

namespace ode {
namespace builder {

namespace {

Ev Atom(BasicEventKind kind, EventQualifier q) {
  BasicEvent be = BasicEvent::Make(kind, q);
  Status s = be.Validate();
  if (!s.ok()) return Ev::Fail(s.ToString());
  return Ev(EventExpr::Atom(std::move(be)));
}

Ev TimeAtom(TimeEventMode mode, TimeSpec spec) {
  BasicEvent be = BasicEvent::Time(mode, std::move(spec));
  Status s = be.Validate();
  if (!s.ok()) return Ev::Fail(s.ToString());
  return Ev(EventExpr::Atom(std::move(be)));
}

/// Lifts an n-ary constructor over error propagation.
template <typename Fn>
Ev Nary(std::initializer_list<Ev> events, Fn build) {
  std::vector<const Ev*> ptrs;
  for (const Ev& e : events) ptrs.push_back(&e);
  for (const Ev* e : ptrs) {
    if (!e->error().empty()) return Ev::Fail(e->error());
    if (e->ptr() == nullptr) return Ev::Fail("empty event in combinator");
  }
  std::vector<EventExprPtr> children;
  children.reserve(ptrs.size());
  for (const Ev* e : ptrs) children.push_back(e->ptr());
  return build(std::move(children));
}

Ev Unary(const Ev& e, EventExprPtr (*build)(EventExprPtr)) {
  if (!e.error().empty()) return Ev::Fail(e.error());
  if (e.ptr() == nullptr) return Ev::Fail("empty event in combinator");
  return Ev(build(e.ptr()));
}

}  // namespace

Ev Ev::Where(std::string_view mask_text) const {
  if (!error_.empty()) return *this;
  if (expr_ == nullptr) return Fail("Where() on an empty event");
  Result<MaskExprPtr> mask = ParseMask(mask_text);
  if (!mask.ok()) return Fail(mask.status().ToString());
  if (expr_->kind == EventExprKind::kAtom && expr_->atom_mask == nullptr) {
    return Ev(EventExpr::Atom(expr_->atom, std::move(*mask)));
  }
  return Ev(EventExpr::Masked(expr_, std::move(*mask)));
}

Ev After(std::string method, std::vector<ParamDecl> params) {
  return Ev(EventExpr::Atom(BasicEvent::Method(
      EventQualifier::kAfter, std::move(method), std::move(params))));
}

Ev Before(std::string method, std::vector<ParamDecl> params) {
  return Ev(EventExpr::Atom(BasicEvent::Method(
      EventQualifier::kBefore, std::move(method), std::move(params))));
}

Ev AfterCreate() { return Atom(BasicEventKind::kCreate, EventQualifier::kAfter); }
Ev BeforeDelete() { return Atom(BasicEventKind::kDelete, EventQualifier::kBefore); }
Ev AfterUpdate() { return Atom(BasicEventKind::kUpdate, EventQualifier::kAfter); }
Ev BeforeUpdate() { return Atom(BasicEventKind::kUpdate, EventQualifier::kBefore); }
Ev AfterRead() { return Atom(BasicEventKind::kRead, EventQualifier::kAfter); }
Ev BeforeRead() { return Atom(BasicEventKind::kRead, EventQualifier::kBefore); }
Ev AfterAccess() { return Atom(BasicEventKind::kAccess, EventQualifier::kAfter); }
Ev BeforeAccess() { return Atom(BasicEventKind::kAccess, EventQualifier::kBefore); }
Ev AfterTbegin() { return Atom(BasicEventKind::kTbegin, EventQualifier::kAfter); }
Ev BeforeTcomplete() {
  return Atom(BasicEventKind::kTcomplete, EventQualifier::kBefore);
}
Ev AfterTcommit() { return Atom(BasicEventKind::kTcommit, EventQualifier::kAfter); }
Ev BeforeTabort() { return Atom(BasicEventKind::kTabort, EventQualifier::kBefore); }
Ev AfterTabort() { return Atom(BasicEventKind::kTabort, EventQualifier::kAfter); }

Ev At(TimeSpec spec) { return TimeAtom(TimeEventMode::kAt, std::move(spec)); }
Ev EveryPeriod(TimeSpec period) {
  return TimeAtom(TimeEventMode::kEvery, std::move(period));
}
Ev AfterPeriod(TimeSpec period) {
  return TimeAtom(TimeEventMode::kAfter, std::move(period));
}

Ev Never() { return Ev(EventExpr::Empty()); }

Ev Method(const std::string& name) {
  return Ev(EventExpr::MethodShorthand(name));
}

Ev StateReached(std::string_view predicate_text) {
  Result<MaskExprPtr> mask = ParseMask(predicate_text);
  if (!mask.ok()) return Ev::Fail(mask.status().ToString());
  return Ev(EventExpr::StateShorthand(std::move(*mask)));
}

Ev Or(const Ev& a, const Ev& b) {
  return Nary({a, b}, [](std::vector<EventExprPtr> c) {
    return Ev(EventExpr::Or(std::move(c[0]), std::move(c[1])));
  });
}

Ev And(const Ev& a, const Ev& b) {
  return Nary({a, b}, [](std::vector<EventExprPtr> c) {
    return Ev(EventExpr::And(std::move(c[0]), std::move(c[1])));
  });
}

Ev Not(const Ev& a) { return Unary(a, &EventExpr::Not); }

Ev Relative(std::initializer_list<Ev> events) {
  return Nary(events, [](std::vector<EventExprPtr> c) {
    return Ev(EventExpr::Relative(std::move(c)));
  });
}

Ev RelativePlus(const Ev& e) { return Unary(e, &EventExpr::RelativePlus); }

Ev RelativeN(int64_t n, const Ev& e) {
  if (!e.error().empty()) return Ev::Fail(e.error());
  return Ev(EventExpr::RelativeN(n, e.ptr()));
}

Ev Prior(std::initializer_list<Ev> events) {
  return Nary(events, [](std::vector<EventExprPtr> c) {
    return Ev(EventExpr::Prior(std::move(c)));
  });
}

Ev PriorN(int64_t n, const Ev& e) {
  if (!e.error().empty()) return Ev::Fail(e.error());
  return Ev(EventExpr::PriorN(n, e.ptr()));
}

Ev Sequence(std::initializer_list<Ev> events) {
  return Nary(events, [](std::vector<EventExprPtr> c) {
    return Ev(EventExpr::Sequence(std::move(c)));
  });
}

Ev SequenceN(int64_t n, const Ev& e) {
  if (!e.error().empty()) return Ev::Fail(e.error());
  return Ev(EventExpr::SequenceN(n, e.ptr()));
}

Ev Choose(int64_t n, const Ev& e) {
  if (!e.error().empty()) return Ev::Fail(e.error());
  return Ev(EventExpr::Choose(n, e.ptr()));
}

Ev Every(int64_t n, const Ev& e) {
  if (!e.error().empty()) return Ev::Fail(e.error());
  return Ev(EventExpr::Every(n, e.ptr()));
}

Ev Fa(const Ev& e, const Ev& f, const Ev& g) {
  return Nary({e, f, g}, [](std::vector<EventExprPtr> c) {
    return Ev(EventExpr::Fa(std::move(c[0]), std::move(c[1]),
                            std::move(c[2])));
  });
}

Ev FaAbs(const Ev& e, const Ev& f, const Ev& g) {
  return Nary({e, f, g}, [](std::vector<EventExprPtr> c) {
    return Ev(EventExpr::FaAbs(std::move(c[0]), std::move(c[1]),
                               std::move(c[2])));
  });
}

}  // namespace builder
}  // namespace ode
