#ifndef ODE_LANG_EVENT_PARSER_H_
#define ODE_LANG_EVENT_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "lang/event_ast.h"
#include "lang/lexer.h"

namespace ode {

/// Parses a composite-event expression per the §3.3 BNF:
///
///   event    := seq
///   seq      := or (';' or)*                      -- sugar for sequence()
///   or       := and ('|' and)*
///   and      := unary ('&' unary)*
///   unary    := '!' unary | postfix
///   postfix  := primary ('&&' mask)*              -- logical / masked event
///   primary  := '(' event ')'
///            | 'empty'
///            | ('relative'|'prior'|'sequence') args
///            | ('choose'|'every') INT '(' event ')'
///            | ('fa'|'faAbs') '(' event ',' event ',' event ')'
///            | ('before'|'after') basic-event
///            | 'at' time-spec | 'every' time-spec | 'after' time-spec
///            | method-name                        -- (before f | after f)
///            | bare-boolean-expression            -- object-state shorthand
///   args     := '+' '(' event ')'                 -- relative only (§3.4)
///            | INT '(' event ')'
///            | '(' event (',' event)* ')'
///
/// Disambiguation notes:
///  * `after time(...)` is a time event; `after <name>` is a qualifier.
///  * `every 5 (E)` is the occurrence operator; `every time(...)` a timer.
///  * `prior+` / `sequence+` are rejected with the paper's §3.4 rationale
///    (both are equivalent to their argument).
///  * A parenthesized or bare expression that only parses as a boolean
///    predicate desugars to `(after update | after create) && expr` (§3.3);
///    a bare identifier desugars to `(before f | after f)`.
Result<EventExprPtr> ParseEvent(std::string_view input);

/// Stream-based variant; stops before tokens that cannot extend the
/// expression (')', ',', '==>', ':', end).
Result<EventExprPtr> ParseEventExpr(TokenStream* ts);

/// Parses `time(HR=9, M=30)`-style specs (stream positioned at `time`).
Result<TimeSpec> ParseTimeSpec(TokenStream* ts);

}  // namespace ode

#endif  // ODE_LANG_EVENT_PARSER_H_
