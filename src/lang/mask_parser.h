#ifndef ODE_LANG_MASK_PARSER_H_
#define ODE_LANG_MASK_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "lang/lexer.h"
#include "mask/mask_ast.h"

namespace ode {

/// Parses a mask expression starting at the stream's current position and
/// stopping at the first token that cannot extend the expression (so the
/// event parser can resume, e.g. at '|', ';', ')' or ','). Consumes '&&'
/// chains greedily: in `after f && a>0 && b>0` the whole conjunction is one
/// mask, matching the paper's usage in §5.
///
/// Grammar (loosest to tightest):
///   or    := and ('||' and)*
///   and   := eq ('&&' eq)*
///   eq    := rel (('=='|'!=') rel)*
///   rel   := add (('<'|'<='|'>'|'>=') add)*
///   add   := mul (('+'|'-') mul)*
///   mul   := unary (('*'|'/'|'%') unary)*
///   unary := ('!'|'-') unary | postfix
///   postfix := primary ('.' IDENT)*
///   primary := INT | FLOAT | STRING | true | false
///            | IDENT ['(' [or (',' or)*] ')']
///            | '(' or ')'
Result<MaskExprPtr> ParseMaskExpr(TokenStream* ts);

/// Parses a complete standalone mask; errors on trailing tokens.
Result<MaskExprPtr> ParseMask(std::string_view input);

}  // namespace ode

#endif  // ODE_LANG_MASK_PARSER_H_
