#ifndef ODE_LANG_PRINTER_H_
#define ODE_LANG_PRINTER_H_

#include <string>

#include "lang/event_ast.h"

namespace ode {

/// Renders an event expression in the paper's concrete syntax. The output
/// re-parses to a structurally identical tree (round-trip property, tested
/// in tests/lang_printer_test.cc).
std::string PrintEventExpr(const EventExpr& expr);

}  // namespace ode

#endif  // ODE_LANG_PRINTER_H_
