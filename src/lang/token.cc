#include "lang/token.h"

#include <utility>

namespace ode {

Keyword KeywordFromSpelling(std::string_view spelling) {
  static constexpr std::pair<std::string_view, Keyword> kTable[] = {
      {"before", Keyword::kBefore},
      {"after", Keyword::kAfter},
      {"create", Keyword::kCreate},
      {"delete", Keyword::kDelete},
      {"update", Keyword::kUpdate},
      {"read", Keyword::kRead},
      {"access", Keyword::kAccess},
      {"tbegin", Keyword::kTbegin},
      {"tcomplete", Keyword::kTcomplete},
      {"tcommit", Keyword::kTcommit},
      {"tabort", Keyword::kTabort},
      {"at", Keyword::kAt},
      {"every", Keyword::kEvery},
      {"time", Keyword::kTime},
      {"relative", Keyword::kRelative},
      {"prior", Keyword::kPrior},
      {"sequence", Keyword::kSequence},
      {"choose", Keyword::kChoose},
      {"fa", Keyword::kFa},
      {"faAbs", Keyword::kFaAbs},
      {"perpetual", Keyword::kPerpetual},
      {"empty", Keyword::kEmpty},
      {"true", Keyword::kTrue},
      {"false", Keyword::kFalse},
  };
  for (const auto& [text, kw] : kTable) {
    if (text == spelling) return kw;
  }
  return Keyword::kNone;
}

std::string_view TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd: return "end of input";
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kInt: return "integer";
    case TokenKind::kFloat: return "float";
    case TokenKind::kString: return "string";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kBang: return "'!'";
    case TokenKind::kAmp: return "'&'";
    case TokenKind::kAmpAmp: return "'&&'";
    case TokenKind::kPipe: return "'|'";
    case TokenKind::kPipePipe: return "'||'";
    case TokenKind::kEq: return "'='";
    case TokenKind::kEqEq: return "'=='";
    case TokenKind::kBangEq: return "'!='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kArrow: return "'==>'";
  }
  return "?";
}

std::string Token::ToString() const {
  if (kind == TokenKind::kIdent || kind == TokenKind::kInt ||
      kind == TokenKind::kFloat || kind == TokenKind::kString) {
    return "'" + text + "'";
  }
  return std::string(TokenKindName(kind));
}

LineCol LineColAt(std::string_view input, size_t offset) {
  if (offset > input.size()) offset = input.size();
  LineCol lc;
  size_t line_start = 0;
  for (size_t i = 0; i < offset; ++i) {
    if (input[i] == '\n') {
      ++lc.line;
      line_start = i + 1;
    }
  }
  lc.col = static_cast<int>(offset - line_start) + 1;
  return lc;
}

}  // namespace ode
