#include "lang/lexer.h"

#include <cctype>
#include <cstdlib>

#include "common/strutil.h"

namespace ode {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

namespace {

/// Fills in the 1-based line/col of every token in one pass (tokens are in
/// increasing offset order).
void AssignLineCol(std::string_view input, std::vector<Token>* tokens) {
  int line = 1;
  size_t line_start = 0;
  size_t scanned = 0;
  for (Token& t : *tokens) {
    for (; scanned < t.offset && scanned < input.size(); ++scanned) {
      if (input[scanned] == '\n') {
        ++line;
        line_start = scanned + 1;
      }
    }
    t.line = line;
    t.col = static_cast<int>(t.offset - line_start) + 1;
  }
}

Status LexErrorAt(std::string_view input, size_t offset, std::string what) {
  LineCol lc = LineColAt(input, offset);
  return Status::ParseError(
      StrFormat("%s at line %d, column %d", what.c_str(), lc.line, lc.col));
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = input.size();

  auto push = [&out](TokenKind kind, size_t offset, size_t length,
                     std::string text = "") {
    Token t;
    t.kind = kind;
    t.offset = offset;
    t.length = length;
    t.text = std::move(text);
    out.push_back(std::move(t));
  };

  while (i < n) {
    char c = input[i];
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\\') {
      // Backslash-newline (the paper's #define continuations) is whitespace.
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && input[i + 1] == '/') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && input[i + 1] == '*') {
      size_t start = i;
      i += 2;
      while (i + 1 < n && !(input[i] == '*' && input[i + 1] == '/')) ++i;
      if (i + 1 >= n) {
        return LexErrorAt(input, start, "unterminated block comment");
      }
      i += 2;
      continue;
    }

    const size_t start = i;
    if (IsIdentStart(c)) {
      while (i < n && IsIdentChar(input[i])) ++i;
      Token t;
      t.kind = TokenKind::kIdent;
      t.text = std::string(input.substr(start, i - start));
      t.keyword = KeywordFromSpelling(t.text);
      t.offset = start;
      t.length = i - start;
      out.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      bool is_float = false;
      if (i + 1 < n && input[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(input[i + 1]))) {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          ++i;
        }
      }
      Token t;
      t.text = std::string(input.substr(start, i - start));
      t.offset = start;
      t.length = i - start;
      if (is_float) {
        t.kind = TokenKind::kFloat;
        t.float_value = std::strtod(t.text.c_str(), nullptr);
      } else {
        t.kind = TokenKind::kInt;
        t.int_value = std::strtoll(t.text.c_str(), nullptr, 10);
      }
      out.push_back(std::move(t));
      continue;
    }
    if (c == '"') {
      std::string text;
      ++i;
      bool closed = false;
      while (i < n) {
        char d = input[i++];
        if (d == '"') {
          closed = true;
          break;
        }
        if (d == '\\' && i < n) {
          char e = input[i++];
          switch (e) {
            case 'n': text += '\n'; break;
            case 't': text += '\t'; break;
            case '\\': text += '\\'; break;
            case '"': text += '"'; break;
            default:
              return LexErrorAt(input, i - 1,
                                StrFormat("bad escape '\\%c'", e));
          }
          continue;
        }
        text += d;
      }
      if (!closed) {
        return LexErrorAt(input, start, "unterminated string");
      }
      Token t;
      t.kind = TokenKind::kString;
      t.text = std::move(text);
      t.offset = start;
      t.length = i - start;
      out.push_back(std::move(t));
      continue;
    }

    // Punctuation, longest match first.
    auto two = [&](char a, char b) {
      return c == a && i + 1 < n && input[i + 1] == b;
    };
    if (c == '=' && i + 2 < n && input[i + 1] == '=' && input[i + 2] == '>') {
      push(TokenKind::kArrow, start, 3);
      i += 3;
      continue;
    }
    if (two('=', '=')) { push(TokenKind::kEqEq, start, 2); i += 2; continue; }
    if (two('!', '=')) { push(TokenKind::kBangEq, start, 2); i += 2; continue; }
    if (two('<', '=')) { push(TokenKind::kLe, start, 2); i += 2; continue; }
    if (two('>', '=')) { push(TokenKind::kGe, start, 2); i += 2; continue; }
    if (two('&', '&')) { push(TokenKind::kAmpAmp, start, 2); i += 2; continue; }
    if (two('|', '|')) { push(TokenKind::kPipePipe, start, 2); i += 2; continue; }
    switch (c) {
      case '(': push(TokenKind::kLParen, start, 1); break;
      case ')': push(TokenKind::kRParen, start, 1); break;
      case ',': push(TokenKind::kComma, start, 1); break;
      case ';': push(TokenKind::kSemicolon, start, 1); break;
      case ':': push(TokenKind::kColon, start, 1); break;
      case '.': push(TokenKind::kDot, start, 1); break;
      case '+': push(TokenKind::kPlus, start, 1); break;
      case '-': push(TokenKind::kMinus, start, 1); break;
      case '*': push(TokenKind::kStar, start, 1); break;
      case '/': push(TokenKind::kSlash, start, 1); break;
      case '%': push(TokenKind::kPercent, start, 1); break;
      case '!': push(TokenKind::kBang, start, 1); break;
      case '&': push(TokenKind::kAmp, start, 1); break;
      case '|': push(TokenKind::kPipe, start, 1); break;
      case '=': push(TokenKind::kEq, start, 1); break;
      case '<': push(TokenKind::kLt, start, 1); break;
      case '>': push(TokenKind::kGt, start, 1); break;
      default:
        return LexErrorAt(input, start,
                          StrFormat("unexpected character '%c'", c));
    }
    ++i;
  }

  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  out.push_back(std::move(end));
  AssignLineCol(input, &out);
  return out;
}

Status TokenStream::Expect(TokenKind kind) {
  if (TryConsume(kind)) return Status::OK();
  return ParseErrorAt(Peek(), TokenKindName(kind));
}

Status ParseErrorAt(const Token& token, std::string_view expected) {
  return Status::ParseError(
      StrFormat("expected %s, found %s at line %d, column %d",
                std::string(expected).c_str(), token.ToString().c_str(),
                token.line, token.col));
}

}  // namespace ode
