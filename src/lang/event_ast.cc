#include "lang/event_ast.h"

#include "common/strutil.h"

namespace ode {

std::string_view EventExprKindName(EventExprKind kind) {
  switch (kind) {
    case EventExprKind::kEmpty: return "empty";
    case EventExprKind::kAtom: return "atom";
    case EventExprKind::kOr: return "or";
    case EventExprKind::kAnd: return "and";
    case EventExprKind::kNot: return "not";
    case EventExprKind::kRelative: return "relative";
    case EventExprKind::kRelativePlus: return "relative+";
    case EventExprKind::kRelativeN: return "relativeN";
    case EventExprKind::kPrior: return "prior";
    case EventExprKind::kPriorN: return "priorN";
    case EventExprKind::kSequence: return "sequence";
    case EventExprKind::kSequenceN: return "sequenceN";
    case EventExprKind::kChoose: return "choose";
    case EventExprKind::kEvery: return "every";
    case EventExprKind::kFa: return "fa";
    case EventExprKind::kFaAbs: return "faAbs";
    case EventExprKind::kMasked: return "masked";
    case EventExprKind::kGateAtom: return "gate";
  }
  return "?";
}

namespace {

std::shared_ptr<EventExpr> MakeNode(EventExprKind kind) {
  auto e = std::make_shared<EventExpr>();
  e->kind = kind;
  return e;
}

EventExprPtr MakeNary(EventExprKind kind, std::vector<EventExprPtr> children) {
  auto e = MakeNode(kind);
  e->children = std::move(children);
  return e;
}

EventExprPtr MakeCounted(EventExprKind kind, int64_t n, EventExprPtr a) {
  auto e = MakeNode(kind);
  e->n = n;
  e->children.push_back(std::move(a));
  return e;
}

}  // namespace

EventExprPtr EventExpr::Empty() { return MakeNode(EventExprKind::kEmpty); }

EventExprPtr EventExpr::Atom(BasicEvent basic, MaskExprPtr mask) {
  auto e = MakeNode(EventExprKind::kAtom);
  e->atom = std::move(basic);
  e->atom_mask = std::move(mask);
  return e;
}

EventExprPtr EventExpr::Or(EventExprPtr a, EventExprPtr b) {
  return MakeNary(EventExprKind::kOr, {std::move(a), std::move(b)});
}

EventExprPtr EventExpr::And(EventExprPtr a, EventExprPtr b) {
  return MakeNary(EventExprKind::kAnd, {std::move(a), std::move(b)});
}

EventExprPtr EventExpr::Not(EventExprPtr a) {
  return MakeNary(EventExprKind::kNot, {std::move(a)});
}

EventExprPtr EventExpr::Relative(std::vector<EventExprPtr> children) {
  return MakeNary(EventExprKind::kRelative, std::move(children));
}

EventExprPtr EventExpr::RelativePlus(EventExprPtr a) {
  return MakeNary(EventExprKind::kRelativePlus, {std::move(a)});
}

EventExprPtr EventExpr::RelativeN(int64_t n, EventExprPtr a) {
  return MakeCounted(EventExprKind::kRelativeN, n, std::move(a));
}

EventExprPtr EventExpr::Prior(std::vector<EventExprPtr> children) {
  return MakeNary(EventExprKind::kPrior, std::move(children));
}

EventExprPtr EventExpr::PriorN(int64_t n, EventExprPtr a) {
  return MakeCounted(EventExprKind::kPriorN, n, std::move(a));
}

EventExprPtr EventExpr::Sequence(std::vector<EventExprPtr> children) {
  return MakeNary(EventExprKind::kSequence, std::move(children));
}

EventExprPtr EventExpr::SequenceN(int64_t n, EventExprPtr a) {
  return MakeCounted(EventExprKind::kSequenceN, n, std::move(a));
}

EventExprPtr EventExpr::Choose(int64_t n, EventExprPtr a) {
  return MakeCounted(EventExprKind::kChoose, n, std::move(a));
}

EventExprPtr EventExpr::Every(int64_t n, EventExprPtr a) {
  return MakeCounted(EventExprKind::kEvery, n, std::move(a));
}

EventExprPtr EventExpr::Fa(EventExprPtr e, EventExprPtr f, EventExprPtr g) {
  return MakeNary(EventExprKind::kFa,
                  {std::move(e), std::move(f), std::move(g)});
}

EventExprPtr EventExpr::FaAbs(EventExprPtr e, EventExprPtr f,
                              EventExprPtr g) {
  return MakeNary(EventExprKind::kFaAbs,
                  {std::move(e), std::move(f), std::move(g)});
}

EventExprPtr EventExpr::Masked(EventExprPtr a, MaskExprPtr mask) {
  auto e = MakeNode(EventExprKind::kMasked);
  e->children.push_back(std::move(a));
  e->mask = std::move(mask);
  return e;
}

EventExprPtr EventExpr::GateAtom(int64_t gate_index) {
  auto e = MakeNode(EventExprKind::kGateAtom);
  e->n = gate_index;
  return e;
}

EventExprPtr EventExpr::MethodShorthand(const std::string& name) {
  return Or(Atom(BasicEvent::Method(EventQualifier::kBefore, name)),
            Atom(BasicEvent::Method(EventQualifier::kAfter, name)));
}

EventExprPtr EventExpr::StateShorthand(MaskExprPtr predicate) {
  return Or(Atom(BasicEvent::Make(BasicEventKind::kUpdate,
                                  EventQualifier::kAfter),
                 predicate),
            Atom(BasicEvent::Make(BasicEventKind::kCreate,
                                  EventQualifier::kAfter),
                 predicate));
}

Status EventExpr::Validate() const {
  auto require_children = [this](size_t want) -> Status {
    if (children.size() != want) {
      return Status::Internal(
          StrFormat("%s node expects %zu children, has %zu",
                    std::string(EventExprKindName(kind)).c_str(), want,
                    children.size()));
    }
    return Status::OK();
  };

  switch (kind) {
    case EventExprKind::kEmpty:
      break;
    case EventExprKind::kAtom:
      ODE_RETURN_IF_ERROR(atom.Validate());
      break;
    case EventExprKind::kOr:
    case EventExprKind::kAnd:
      ODE_RETURN_IF_ERROR(require_children(2));
      break;
    case EventExprKind::kNot:
    case EventExprKind::kRelativePlus:
    case EventExprKind::kMasked:
      ODE_RETURN_IF_ERROR(require_children(1));
      break;
    case EventExprKind::kRelative:
    case EventExprKind::kPrior:
    case EventExprKind::kSequence:
      if (children.empty()) {
        return Status::InvalidArgument(
            StrFormat("%s requires at least one argument",
                      std::string(EventExprKindName(kind)).c_str()));
      }
      break;
    case EventExprKind::kRelativeN:
    case EventExprKind::kPriorN:
    case EventExprKind::kSequenceN:
    case EventExprKind::kChoose:
    case EventExprKind::kEvery:
      ODE_RETURN_IF_ERROR(require_children(1));
      if (n < 1) {
        return Status::InvalidArgument(
            StrFormat("%s requires N >= 1, got %lld",
                      std::string(EventExprKindName(kind)).c_str(),
                      static_cast<long long>(n)));
      }
      break;
    case EventExprKind::kFa:
    case EventExprKind::kFaAbs:
      ODE_RETURN_IF_ERROR(require_children(3));
      break;
    case EventExprKind::kGateAtom:
      if (n < 0) return Status::Internal("negative gate index");
      break;
  }
  if (kind == EventExprKind::kMasked && mask == nullptr) {
    return Status::Internal("masked node without a mask");
  }
  for (const EventExprPtr& c : children) {
    ODE_RETURN_IF_ERROR(c->Validate());
  }
  return Status::OK();
}

void EventExpr::CollectAtoms(std::vector<const EventExpr*>* out) const {
  if (kind == EventExprKind::kAtom) {
    out->push_back(this);
    return;
  }
  for (const EventExprPtr& c : children) c->CollectAtoms(out);
}

size_t EventExpr::NodeCount() const {
  size_t count = 1;
  for (const EventExprPtr& c : children) count += c->NodeCount();
  return count;
}

}  // namespace ode
