#ifndef ODE_LANG_EVENT_AST_H_
#define ODE_LANG_EVENT_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/source_span.h"
#include "event/basic_event.h"
#include "mask/mask_ast.h"

namespace ode {

/// Node discriminator for composite-event expressions (§3.3 BNF).
enum class EventExprKind : uint8_t {
  kEmpty,         ///< ∅ — the empty set of logical events (§4 item 1).
  kAtom,          ///< A logical event: basic event + optional mask.
  kOr,            ///< E1 | E2 (union).
  kAnd,           ///< E1 & E2 (intersection).
  kNot,           ///< !E (complement w.r.t. all points of the history).
  kRelative,      ///< relative(E1, ..., En), curried left-to-right.
  kRelativePlus,  ///< relative+(E).
  kRelativeN,     ///< relative N (E).
  kPrior,         ///< prior(E1, ..., En), curried.
  kPriorN,        ///< prior N (E).
  kSequence,      ///< sequence(E1, ..., En) — also `E1; E2; ...`.
  kSequenceN,     ///< sequence N (E).
  kChoose,        ///< choose N (E): exactly the Nth occurrence.
  kEvery,         ///< every N (E): every Nth occurrence.
  kFa,            ///< fa(E, F, G).
  kFaAbs,         ///< faAbs(E, F, G).
  kMasked,        ///< composite-event && mask (logical-composite event).
  kGateAtom,      ///< Compiler-internal: a gated subevent's occurrence bit
                  ///< (produced by the nested-composite-mask rewrite; never
                  ///< created by the parser). `n` holds the gate index.
};

std::string_view EventExprKindName(EventExprKind kind);

struct EventExpr;
using EventExprPtr = std::shared_ptr<const EventExpr>;

/// An immutable composite-event expression tree. Built by the parser
/// (lang/event_parser.h) or directly through the factory functions, then
/// evaluated by the oracle (semantics/oracle.h) or compiled to a DFA
/// (compile/compiler.h).
struct EventExpr {
  EventExprKind kind = EventExprKind::kEmpty;
  std::vector<EventExprPtr> children;

  /// kRelativeN / kPriorN / kSequenceN / kChoose / kEvery.
  int64_t n = 0;

  /// kAtom: the basic event and its optional mask (a *logical event*, §3.2).
  BasicEvent atom;
  MaskExprPtr atom_mask;  // may be null

  /// kMasked: predicate over the *current* database state evaluated when
  /// the composite occurs (§3.3).
  MaskExprPtr mask;  // non-null for kMasked

  /// Source range this node was parsed from; empty for nodes synthesized by
  /// desugaring or the compiler. The parser sets it after construction.
  SourceSpan span;

  /// --- Factories -------------------------------------------------------
  static EventExprPtr Empty();
  static EventExprPtr Atom(BasicEvent basic, MaskExprPtr mask = nullptr);
  static EventExprPtr Or(EventExprPtr a, EventExprPtr b);
  static EventExprPtr And(EventExprPtr a, EventExprPtr b);
  static EventExprPtr Not(EventExprPtr a);
  static EventExprPtr Relative(std::vector<EventExprPtr> children);
  static EventExprPtr RelativePlus(EventExprPtr a);
  static EventExprPtr RelativeN(int64_t n, EventExprPtr a);
  static EventExprPtr Prior(std::vector<EventExprPtr> children);
  static EventExprPtr PriorN(int64_t n, EventExprPtr a);
  static EventExprPtr Sequence(std::vector<EventExprPtr> children);
  static EventExprPtr SequenceN(int64_t n, EventExprPtr a);
  static EventExprPtr Choose(int64_t n, EventExprPtr a);
  static EventExprPtr Every(int64_t n, EventExprPtr a);
  static EventExprPtr Fa(EventExprPtr e, EventExprPtr f, EventExprPtr g);
  static EventExprPtr FaAbs(EventExprPtr e, EventExprPtr f, EventExprPtr g);
  static EventExprPtr Masked(EventExprPtr a, MaskExprPtr mask);
  static EventExprPtr GateAtom(int64_t gate_index);

  /// The paper's shorthand: a bare method name f denotes
  /// (before f | after f) (§3.3).
  static EventExprPtr MethodShorthand(const std::string& name);

  /// The paper's object-state shorthand: a bare boolean expression denotes
  /// (after update | after create) && expr (§3.3). The mask becomes the
  /// *atom mask of both atoms* so it is evaluated against the state at the
  /// moment of the update/create.
  static EventExprPtr StateShorthand(MaskExprPtr predicate);

  /// Structural checks: legal qualifier/kind pairs in atoms, N >= 1,
  /// correct child counts, masks present where required.
  Status Validate() const;

  /// Collects every atom (logical event) in the tree, in left-to-right
  /// order (used by the alphabet builder).
  void CollectAtoms(std::vector<const EventExpr*>* out) const;

  /// Number of nodes in the tree (benchmark sizing).
  size_t NodeCount() const;

  /// Paper-style textual form; see lang/printer.h.
  std::string ToString() const;
};

}  // namespace ode

#endif  // ODE_LANG_EVENT_AST_H_
