#include "lang/printer.h"

#include "common/strutil.h"

namespace ode {

namespace {

/// Precedence levels for parenthesization: higher binds tighter.
int Precedence(EventExprKind kind) {
  switch (kind) {
    case EventExprKind::kSequence: return 1;  // `;` rendering uses calls.
    case EventExprKind::kOr: return 2;
    case EventExprKind::kAnd: return 3;
    case EventExprKind::kMasked: return 4;
    case EventExprKind::kNot: return 5;
    default: return 6;  // Atoms and operator calls never need parens.
  }
}

std::string Print(const EventExpr& e, int parent_prec);

std::string PrintCall(const char* name, const EventExpr& e,
                      bool with_n = false) {
  std::vector<std::string> args;
  args.reserve(e.children.size());
  for (const EventExprPtr& c : e.children) {
    args.push_back(Print(*c, 0));
  }
  std::string head(name);
  if (with_n) {
    head += StrFormat(" %lld ", static_cast<long long>(e.n));
  }
  return head + "(" + Join(args, ", ") + ")";
}

std::string Print(const EventExpr& e, int parent_prec) {
  int prec = Precedence(e.kind);
  std::string out;
  switch (e.kind) {
    case EventExprKind::kEmpty:
      out = "empty";
      break;
    case EventExprKind::kAtom:
      out = e.atom.ToString();
      if (e.atom_mask != nullptr) {
        out += " && " + e.atom_mask->ToString();
        // A masked atom binds like a postfix mask.
        prec = Precedence(EventExprKind::kMasked);
      }
      break;
    case EventExprKind::kOr:
      out = Print(*e.children[0], prec) + " | " + Print(*e.children[1], prec + 1);
      break;
    case EventExprKind::kAnd:
      out = Print(*e.children[0], prec) + " & " + Print(*e.children[1], prec + 1);
      break;
    case EventExprKind::kNot:
      out = "!" + Print(*e.children[0], prec);
      break;
    case EventExprKind::kRelative:
      out = PrintCall("relative", e);
      break;
    case EventExprKind::kRelativePlus:
      out = PrintCall("relative+", e);
      break;
    case EventExprKind::kRelativeN:
      out = PrintCall("relative", e, /*with_n=*/true);
      break;
    case EventExprKind::kPrior:
      out = PrintCall("prior", e);
      break;
    case EventExprKind::kPriorN:
      out = PrintCall("prior", e, /*with_n=*/true);
      break;
    case EventExprKind::kSequence:
      out = PrintCall("sequence", e);
      break;
    case EventExprKind::kSequenceN:
      out = PrintCall("sequence", e, /*with_n=*/true);
      break;
    case EventExprKind::kChoose:
      out = PrintCall("choose", e, /*with_n=*/true);
      break;
    case EventExprKind::kEvery:
      out = PrintCall("every", e, /*with_n=*/true);
      break;
    case EventExprKind::kFa:
      out = PrintCall("fa", e);
      break;
    case EventExprKind::kFaAbs:
      out = PrintCall("faAbs", e);
      break;
    case EventExprKind::kMasked:
      out = Print(*e.children[0], prec + 1) + " && " + e.mask->ToString();
      break;
    case EventExprKind::kGateAtom:
      out = StrFormat("<gate %lld>", static_cast<long long>(e.n));
      break;
  }
  if (prec < parent_prec) return "(" + out + ")";
  return out;
}

}  // namespace

std::string PrintEventExpr(const EventExpr& expr) { return Print(expr, 0); }

std::string EventExpr::ToString() const { return PrintEventExpr(*this); }

}  // namespace ode
