#ifndef ODE_LANG_TOKEN_H_
#define ODE_LANG_TOKEN_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/source_span.h"

namespace ode {

/// Token categories for the O++ trigger-event DSL and mask expressions.
enum class TokenKind : uint8_t {
  kEnd = 0,     ///< End of input.
  kIdent,       ///< Identifier (includes keywords; see keyword below).
  kInt,         ///< Integer literal.
  kFloat,       ///< Floating-point literal.
  kString,      ///< Double-quoted string literal.
  kLParen,      // (
  kRParen,      // )
  kComma,       // ,
  kSemicolon,   // ;
  kColon,       // :
  kDot,         // .
  kPlus,        // +
  kMinus,       // -
  kStar,        // *
  kSlash,       // /
  kPercent,     // %
  kBang,        // !
  kAmp,         // &   (event intersection)
  kAmpAmp,      // &&  (mask attachment / mask conjunction)
  kPipe,        // |   (event union)
  kPipePipe,    // ||  (mask disjunction)
  kEq,          // =
  kEqEq,        // ==
  kBangEq,      // !=
  kLt,          // <
  kLe,          // <=
  kGt,          // >
  kGe,          // >=
  kArrow,       // ==> (trigger action separator)
};

/// Keywords recognized contextually by the parsers. They are lexed as
/// kIdent with this tag so grammar positions that allow arbitrary names can
/// still use them where unambiguous.
enum class Keyword : uint8_t {
  kNone = 0,
  kBefore,
  kAfter,
  kCreate,
  kDelete,
  kUpdate,
  kRead,
  kAccess,
  kTbegin,
  kTcomplete,
  kTcommit,
  kTabort,
  kAt,
  kEvery,
  kTime,
  kRelative,
  kPrior,
  kSequence,
  kChoose,
  kFa,
  kFaAbs,
  kPerpetual,
  kEmpty,
  kTrue,
  kFalse,
};

/// Maps an identifier spelling to its keyword tag (kNone if not a keyword).
Keyword KeywordFromSpelling(std::string_view spelling);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  Keyword keyword = Keyword::kNone;  ///< Set when kind == kIdent.
  std::string text;                  ///< Source spelling.
  int64_t int_value = 0;             ///< kInt.
  double float_value = 0.0;          ///< kFloat.
  size_t offset = 0;                 ///< Byte offset in the input.
  size_t length = 0;                 ///< Source length in bytes (0 for kEnd).
  int line = 1;                      ///< 1-based source line.
  int col = 1;                       ///< 1-based source column.

  /// The source byte range this token occupies.
  SourceSpan span() const { return SourceSpan{offset, offset + length}; }

  bool is(TokenKind k) const { return kind == k; }
  bool is_keyword(Keyword k) const {
    return kind == TokenKind::kIdent && keyword == k;
  }
  /// An identifier that is not a reserved word.
  bool is_plain_ident() const {
    return kind == TokenKind::kIdent && keyword == Keyword::kNone;
  }

  std::string ToString() const;
};

std::string_view TokenKindName(TokenKind kind);

/// 1-based line/column of a byte offset in `input` (newlines counted up to
/// but not including `offset`). Offsets past the end clamp to the last
/// position.
LineCol LineColAt(std::string_view input, size_t offset);

}  // namespace ode

#endif  // ODE_LANG_TOKEN_H_
