#include "lang/event_parser.h"

#include "common/strutil.h"
#include "lang/mask_parser.h"

namespace ode {

namespace {

Result<EventExprPtr> ParseSeq(TokenStream* ts);

/// Stamps a span onto a freshly built node. The const_cast is safe: every
/// node reaching here was just created by an EventExpr factory in this
/// parse and has no other owners yet.
EventExprPtr WithSpan(EventExprPtr e, size_t begin, size_t end) {
  const_cast<EventExpr*>(e.get())->span = SourceSpan{begin, end};
  return e;
}

/// True for tokens that mean "the preceding parenthesized expression was
/// really a mask sub-expression" (e.g. `(balance*2) < x`).
bool IsMaskContinuation(TokenKind k) {
  switch (k) {
    case TokenKind::kLt:
    case TokenKind::kLe:
    case TokenKind::kGt:
    case TokenKind::kGe:
    case TokenKind::kEqEq:
    case TokenKind::kBangEq:
    case TokenKind::kPlus:
    case TokenKind::kMinus:
    case TokenKind::kStar:
    case TokenKind::kSlash:
    case TokenKind::kPercent:
    case TokenKind::kDot:
    case TokenKind::kPipePipe:
      return true;
    default:
      return false;
  }
}

bool KeywordToEventKind(Keyword kw, BasicEventKind* kind) {
  switch (kw) {
    case Keyword::kCreate: *kind = BasicEventKind::kCreate; return true;
    case Keyword::kDelete: *kind = BasicEventKind::kDelete; return true;
    case Keyword::kUpdate: *kind = BasicEventKind::kUpdate; return true;
    case Keyword::kRead: *kind = BasicEventKind::kRead; return true;
    case Keyword::kAccess: *kind = BasicEventKind::kAccess; return true;
    case Keyword::kTbegin: *kind = BasicEventKind::kTbegin; return true;
    case Keyword::kTcomplete: *kind = BasicEventKind::kTcomplete; return true;
    case Keyword::kTcommit: *kind = BasicEventKind::kTcommit; return true;
    case Keyword::kTabort: *kind = BasicEventKind::kTabort; return true;
    default: return false;
  }
}

/// Parses `( [type] name, ... )` formal parameter declarations after a
/// method name (§3.1: "Formal parameter declarations help distinguish
/// between ... overloaded functions").
Result<std::vector<ParamDecl>> ParseParamDecls(TokenStream* ts) {
  std::vector<ParamDecl> params;
  ODE_RETURN_IF_ERROR(ts->Expect(TokenKind::kLParen));
  if (ts->TryConsume(TokenKind::kRParen)) return params;
  while (true) {
    const Token& first = ts->Peek();
    if (!first.is_plain_ident()) {
      return ParseErrorAt(first, "parameter name or type");
    }
    ts->Next();
    ParamDecl p;
    if (ts->Peek().is_plain_ident()) {
      // Two identifiers: "type name".
      p.type_name = first.text;
      p.name = ts->Peek().text;
      ts->Next();
    } else {
      // One identifier: name only, as in `after withdraw (i, q)`.
      p.name = first.text;
    }
    params.push_back(std::move(p));
    if (!ts->TryConsume(TokenKind::kComma)) break;
  }
  ODE_RETURN_IF_ERROR(ts->Expect(TokenKind::kRParen));
  return params;
}

/// Parses a basic event following a before/after qualifier.
Result<EventExprPtr> ParseQualifiedBasic(TokenStream* ts, EventQualifier q) {
  const Token& t = ts->Peek();
  BasicEventKind kind;
  if (t.kind == TokenKind::kIdent && KeywordToEventKind(t.keyword, &kind)) {
    ts->Next();
    BasicEvent be = BasicEvent::Make(kind, q);
    ODE_RETURN_IF_ERROR(be.Validate());
    return EventExpr::Atom(std::move(be));
  }
  if (t.is_plain_ident()) {
    std::string name = t.text;
    ts->Next();
    std::vector<ParamDecl> params;
    if (ts->Peek().is(TokenKind::kLParen)) {
      Result<std::vector<ParamDecl>> parsed = ParseParamDecls(ts);
      if (!parsed.ok()) return parsed.status();
      params = std::move(*parsed);
    }
    return EventExpr::Atom(
        BasicEvent::Method(q, std::move(name), std::move(params)));
  }
  return ParseErrorAt(t, "a basic event after the qualifier");
}

/// Parses an operator argument list: `'(' event (',' event)* ')'`.
Result<std::vector<EventExprPtr>> ParseEventList(TokenStream* ts,
                                                 size_t exactly = 0) {
  std::vector<EventExprPtr> items;
  ODE_RETURN_IF_ERROR(ts->Expect(TokenKind::kLParen));
  while (true) {
    Result<EventExprPtr> e = ParseSeq(ts);
    if (!e.ok()) return e.status();
    items.push_back(std::move(*e));
    if (!ts->TryConsume(TokenKind::kComma)) break;
  }
  ODE_RETURN_IF_ERROR(ts->Expect(TokenKind::kRParen));
  if (exactly != 0 && items.size() != exactly) {
    return Status::ParseError(
        StrFormat("operator expects %zu arguments, got %zu", exactly,
                  items.size()));
  }
  return items;
}

/// Parses `relative|prior|sequence` with their `+`/N variants (§3.4).
Result<EventExprPtr> ParseSequencingOp(TokenStream* ts, Keyword kw) {
  ts->Next();  // The operator keyword.
  const char* name = kw == Keyword::kRelative ? "relative"
                     : kw == Keyword::kPrior  ? "prior"
                                              : "sequence";
  if (ts->TryConsume(TokenKind::kPlus)) {
    if (kw != Keyword::kRelative) {
      // §3.4: prior+(E) and sequence+(E) are both equivalent to E, so the
      // modifier is not provided for them.
      return Status::ParseError(
          StrFormat("modifier + is not provided for operator %s "
                    "(it would be equivalent to its argument, see §3.4)",
                    name));
    }
    Result<std::vector<EventExprPtr>> args = ParseEventList(ts, 1);
    if (!args.ok()) return args.status();
    return EventExpr::RelativePlus(std::move((*args)[0]));
  }
  if (ts->Peek().is(TokenKind::kInt)) {
    int64_t n = ts->Next().int_value;
    if (n < 1) {
      return Status::ParseError(
          StrFormat("%s N requires N >= 1", name));
    }
    Result<std::vector<EventExprPtr>> args = ParseEventList(ts, 1);
    if (!args.ok()) return args.status();
    switch (kw) {
      case Keyword::kRelative:
        return EventExpr::RelativeN(n, std::move((*args)[0]));
      case Keyword::kPrior:
        return EventExpr::PriorN(n, std::move((*args)[0]));
      default:
        return EventExpr::SequenceN(n, std::move((*args)[0]));
    }
  }
  Result<std::vector<EventExprPtr>> args = ParseEventList(ts);
  if (!args.ok()) return args.status();
  switch (kw) {
    case Keyword::kRelative:
      return EventExpr::Relative(std::move(*args));
    case Keyword::kPrior:
      return EventExpr::Prior(std::move(*args));
    default:
      return EventExpr::Sequence(std::move(*args));
  }
}

/// Fallback for a primary that does not start with event syntax: parse a
/// mask expression and apply the paper's shorthands (§3.3).
Result<EventExprPtr> ParseBareShorthand(TokenStream* ts) {
  Result<MaskExprPtr> mask = ParseMaskExpr(ts);
  if (!mask.ok()) return mask.status();
  if ((*mask)->kind == MaskKind::kIdent) {
    // A bare method name f is shorthand for (before f | after f).
    return EventExpr::MethodShorthand((*mask)->name);
  }
  // A bare boolean object-state expression is shorthand for
  // (after update | after create) && expr.
  return EventExpr::StateShorthand(std::move(*mask));
}

Result<EventExprPtr> ParsePrimaryImpl(TokenStream* ts) {
  NestingScope nesting(ts);
  if (!nesting.ok()) return NestingScope::TooDeep();
  const Token& t = ts->Peek();

  if (t.is(TokenKind::kLParen)) {
    size_t saved = ts->Save();
    ts->Next();
    Result<EventExprPtr> inner = ParseSeq(ts);
    if (inner.ok() && ts->TryConsume(TokenKind::kRParen) &&
        !IsMaskContinuation(ts->Peek().kind)) {
      return inner;
    }
    // Not an event after all (e.g. `(balance*2) < x`): re-parse the whole
    // parenthesized form as a boolean state predicate.
    ts->Restore(saved);
    return ParseBareShorthand(ts);
  }

  if (t.kind != TokenKind::kIdent) {
    // Literals etc. can only begin a bare state predicate.
    return ParseBareShorthand(ts);
  }

  switch (t.keyword) {
    case Keyword::kEmpty:
      ts->Next();
      return EventExpr::Empty();

    case Keyword::kBefore:
      ts->Next();
      return ParseQualifiedBasic(ts, EventQualifier::kBefore);

    case Keyword::kAfter:
      if (ts->Peek(1).is_keyword(Keyword::kTime)) {
        // `after time(...)`: one-shot timer event (§3.1).
        ts->Next();
        Result<TimeSpec> spec = ParseTimeSpec(ts);
        if (!spec.ok()) return spec.status();
        BasicEvent be = BasicEvent::Time(TimeEventMode::kAfter, *spec);
        ODE_RETURN_IF_ERROR(be.Validate());
        return EventExpr::Atom(std::move(be));
      }
      ts->Next();
      return ParseQualifiedBasic(ts, EventQualifier::kAfter);

    case Keyword::kAt: {
      ts->Next();
      Result<TimeSpec> spec = ParseTimeSpec(ts);
      if (!spec.ok()) return spec.status();
      BasicEvent be = BasicEvent::Time(TimeEventMode::kAt, *spec);
      ODE_RETURN_IF_ERROR(be.Validate());
      return EventExpr::Atom(std::move(be));
    }

    case Keyword::kEvery: {
      if (ts->Peek(1).is(TokenKind::kInt)) {
        // `every N (E)`: every Nth occurrence (§3.4).
        ts->Next();
        int64_t n = ts->Next().int_value;
        if (n < 1) return Status::ParseError("every N requires N >= 1");
        Result<std::vector<EventExprPtr>> args = ParseEventList(ts, 1);
        if (!args.ok()) return args.status();
        return EventExpr::Every(n, std::move((*args)[0]));
      }
      if (ts->Peek(1).is_keyword(Keyword::kTime)) {
        // `every time(...)`: periodic timer event (§3.1).
        ts->Next();
        Result<TimeSpec> spec = ParseTimeSpec(ts);
        if (!spec.ok()) return spec.status();
        BasicEvent be = BasicEvent::Time(TimeEventMode::kEvery, *spec);
        ODE_RETURN_IF_ERROR(be.Validate());
        return EventExpr::Atom(std::move(be));
      }
      return ParseErrorAt(ts->Peek(1),
                          "an integer (every N (E)) or time(...) after "
                          "'every'");
    }

    case Keyword::kRelative:
    case Keyword::kPrior:
    case Keyword::kSequence:
      return ParseSequencingOp(ts, t.keyword);

    case Keyword::kChoose: {
      ts->Next();
      if (!ts->Peek().is(TokenKind::kInt)) {
        return ParseErrorAt(ts->Peek(), "an integer after 'choose'");
      }
      int64_t n = ts->Next().int_value;
      if (n < 1) return Status::ParseError("choose N requires N >= 1");
      Result<std::vector<EventExprPtr>> args = ParseEventList(ts, 1);
      if (!args.ok()) return args.status();
      return EventExpr::Choose(n, std::move((*args)[0]));
    }

    case Keyword::kFa:
    case Keyword::kFaAbs: {
      bool abs = t.keyword == Keyword::kFaAbs;
      ts->Next();
      Result<std::vector<EventExprPtr>> args = ParseEventList(ts, 3);
      if (!args.ok()) return args.status();
      if (abs) {
        return EventExpr::FaAbs(std::move((*args)[0]), std::move((*args)[1]),
                                std::move((*args)[2]));
      }
      return EventExpr::Fa(std::move((*args)[0]), std::move((*args)[1]),
                           std::move((*args)[2]));
    }

    case Keyword::kNone:
    case Keyword::kTrue:
    case Keyword::kFalse:
      return ParseBareShorthand(ts);

    default:
      return ParseErrorAt(t, "a composite-event primary");
  }
}

/// All ParsePrimaryImpl returns get the span of the tokens they consumed,
/// stamped in one place (covers every production, including shorthands).
Result<EventExprPtr> ParsePrimary(TokenStream* ts) {
  const size_t begin = ts->Peek().offset;
  Result<EventExprPtr> r = ParsePrimaryImpl(ts);
  if (!r.ok()) return r;
  return WithSpan(std::move(*r), begin, ts->PrevEnd());
}

Result<EventExprPtr> ParsePostfix(TokenStream* ts) {
  const size_t begin = ts->Peek().offset;
  Result<EventExprPtr> primary = ParsePrimary(ts);
  if (!primary.ok()) return primary;
  EventExprPtr expr = std::move(*primary);
  while (ts->TryConsume(TokenKind::kAmpAmp)) {
    Result<MaskExprPtr> mask = ParseMaskExpr(ts);
    if (!mask.ok()) return mask.status();
    if (expr->kind == EventExprKind::kAtom && expr->atom_mask == nullptr) {
      // Basic event + mask = logical event (§3.2).
      expr = EventExpr::Atom(expr->atom, std::move(*mask));
    } else {
      // Composite event + mask = logical-composite event (§3.3).
      expr = EventExpr::Masked(std::move(expr), std::move(*mask));
    }
    expr = WithSpan(std::move(expr), begin, ts->PrevEnd());
  }
  return expr;
}

Result<EventExprPtr> ParseUnary(TokenStream* ts) {
  const size_t begin = ts->Peek().offset;
  if (ts->TryConsume(TokenKind::kBang)) {
    NestingScope nesting(ts);
    if (!nesting.ok()) return NestingScope::TooDeep();
    Result<EventExprPtr> operand = ParseUnary(ts);
    if (!operand.ok()) return operand;
    return WithSpan(EventExpr::Not(std::move(*operand)), begin,
                    ts->PrevEnd());
  }
  return ParsePostfix(ts);
}

Result<EventExprPtr> ParseAnd(TokenStream* ts) {
  const size_t begin = ts->Peek().offset;
  Result<EventExprPtr> lhs = ParseUnary(ts);
  if (!lhs.ok()) return lhs;
  EventExprPtr expr = std::move(*lhs);
  while (ts->TryConsume(TokenKind::kAmp)) {
    Result<EventExprPtr> rhs = ParseUnary(ts);
    if (!rhs.ok()) return rhs;
    expr = WithSpan(EventExpr::And(std::move(expr), std::move(*rhs)), begin,
                    ts->PrevEnd());
  }
  return expr;
}

Result<EventExprPtr> ParseOrExpr(TokenStream* ts) {
  const size_t begin = ts->Peek().offset;
  Result<EventExprPtr> lhs = ParseAnd(ts);
  if (!lhs.ok()) return lhs;
  EventExprPtr expr = std::move(*lhs);
  while (ts->TryConsume(TokenKind::kPipe)) {
    Result<EventExprPtr> rhs = ParseAnd(ts);
    if (!rhs.ok()) return rhs;
    expr = WithSpan(EventExpr::Or(std::move(expr), std::move(*rhs)), begin,
                    ts->PrevEnd());
  }
  return expr;
}

Result<EventExprPtr> ParseSeq(TokenStream* ts) {
  const size_t begin = ts->Peek().offset;
  Result<EventExprPtr> first = ParseOrExpr(ts);
  if (!first.ok()) return first;
  if (!ts->Peek().is(TokenKind::kSemicolon)) return first;
  std::vector<EventExprPtr> parts;
  parts.push_back(std::move(*first));
  while (ts->TryConsume(TokenKind::kSemicolon)) {
    Result<EventExprPtr> next = ParseOrExpr(ts);
    if (!next.ok()) return next;
    parts.push_back(std::move(*next));
  }
  return WithSpan(EventExpr::Sequence(std::move(parts)), begin,
                  ts->PrevEnd());
}

}  // namespace

Result<TimeSpec> ParseTimeSpec(TokenStream* ts) {
  if (!ts->TryConsumeKeyword(Keyword::kTime)) {
    return ParseErrorAt(ts->Peek(), "'time'");
  }
  ODE_RETURN_IF_ERROR(ts->Expect(TokenKind::kLParen));
  TimeSpec spec;
  if (!ts->Peek().is(TokenKind::kRParen)) {
    while (true) {
      const Token& field = ts->Peek();
      if (field.kind != TokenKind::kIdent) {
        return ParseErrorAt(field, "a time field (YR/MON/DAY/HR/M/SEC/MS)");
      }
      std::string name = field.text;
      ts->Next();
      ODE_RETURN_IF_ERROR(ts->Expect(TokenKind::kEq));
      if (!ts->Peek().is(TokenKind::kInt)) {
        return ParseErrorAt(ts->Peek(), "an integer time-field value");
      }
      int64_t v = ts->Next().int_value;
      std::optional<int>* slot = nullptr;
      if (name == "YR") slot = &spec.year;
      else if (name == "MON") slot = &spec.month;
      else if (name == "DAY") slot = &spec.day;
      else if (name == "HR") slot = &spec.hour;
      else if (name == "M") slot = &spec.minute;
      else if (name == "SEC") slot = &spec.second;
      else if (name == "MS") slot = &spec.ms;
      else {
        return Status::ParseError(
            StrFormat("unknown time field '%s'", name.c_str()));
      }
      if (slot->has_value()) {
        return Status::ParseError(
            StrFormat("duplicate time field '%s'", name.c_str()));
      }
      *slot = static_cast<int>(v);
      if (!ts->TryConsume(TokenKind::kComma)) break;
    }
  }
  ODE_RETURN_IF_ERROR(ts->Expect(TokenKind::kRParen));
  if (spec.empty()) {
    return Status::ParseError("time specification has no fields");
  }
  return spec;
}

Result<EventExprPtr> ParseEventExpr(TokenStream* ts) { return ParseSeq(ts); }

Result<EventExprPtr> ParseEvent(std::string_view input) {
  Result<std::vector<Token>> tokens = Tokenize(input);
  if (!tokens.ok()) return tokens.status();
  TokenStream ts(std::move(*tokens));
  Result<EventExprPtr> expr = ParseSeq(&ts);
  if (!expr.ok()) return expr;
  if (!ts.AtEnd()) {
    return ParseErrorAt(ts.Peek(), "end of event expression");
  }
  ODE_RETURN_IF_ERROR((*expr)->Validate());
  return expr;
}

}  // namespace ode
