#ifndef ODE_LANG_TRIGGER_SPEC_H_
#define ODE_LANG_TRIGGER_SPEC_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "lang/event_ast.h"

namespace ode {

/// A parsed trigger declaration in the paper's syntax (§2):
///
///   trigger-name(parameters): [perpetual] event ==> action-name
///
/// The header (`name(params):`) and the action part are optional so the
/// same parser accepts a bare `[perpetual] event`. In the paper the action
/// is an arbitrary O++ block; in this library it is a named C++ callback
/// registered with the trigger engine, with `tabort` accepted as the
/// built-in abort action (trigger T1 of §3.5).
struct TriggerSpec {
  std::string name;               ///< Empty when no header given.
  std::vector<ParamDecl> params;  ///< Trigger parameters (bound at activation).
  bool perpetual = false;
  EventExprPtr event;
  std::string action;             ///< Empty when no `==>` part given.

  std::string ToString() const;
};

/// Parses one trigger declaration.
Result<TriggerSpec> ParseTriggerSpec(std::string_view input);

}  // namespace ode

#endif  // ODE_LANG_TRIGGER_SPEC_H_
