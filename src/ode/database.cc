#include "ode/database.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <thread>

#include "analyze/analyzer.h"
#include "common/strutil.h"
#include "seq/seq_event.h"
#include "seq/sequencer.h"
#include "trigger/trigger_engine.h"

namespace ode {

Database::Database(DatabaseOptions options)
    : options_(std::move(options)),
      engine_(std::make_unique<TriggerEngine>(this)) {}

Database::~Database() = default;

// --- Schema ------------------------------------------------------------

Result<ClassId> Database::RegisterClass(ClassDef def) {
  std::string name = def.name();

  std::optional<ClassTriggerSet> trigger_set;
  if (options_.analyze_triggers != DatabaseOptions::TriggerAnalysisMode::kOff) {
    AnalyzeOptions aopts;
    aopts.compile = options_.compile;
    AnalysisReport report = AnalyzeClassDef(def, std::move(aopts));
    std::vector<Diagnostic> diags = report.AllDiagnostics();
    std::string first_error;
    for (const Diagnostic& d : diags) {
      if (first_error.empty() && d.severity == Severity::kError) {
        first_error = d.ToString();
      }
      analysis_diagnostics_.push_back(std::move(d));
    }
    if (!first_error.empty() &&
        options_.analyze_triggers ==
            DatabaseOptions::TriggerAnalysisMode::kReject) {
      return Status::InvalidArgument(
          StrFormat("class '%s' rejected by trigger analysis: %s",
                    name.c_str(), first_error.c_str()));
    }
    // Cross-class sweep: this class's triggers against every previously
    // analyzed class that declares the referenced method events with the
    // same names and arities (A004/A005/A007 with class-qualified names).
    trigger_set = CollectClassTriggerSet(def);
    for (const ClassTriggerSet& prior : analyzed_trigger_sets_) {
      for (Diagnostic& d : CompareTriggerSetsAcrossClasses(
               prior, *trigger_set, options_.compile)) {
        analysis_diagnostics_.push_back(std::move(d));
      }
    }
    // Cascade/termination sweep (analyze/cascade.h) across the whole
    // rulebase including the class being registered. Opt-in: it runs only
    // once some action has declared an effect signature (RegisterAction
    // with an ActionSignature), since without signatures every edge would
    // be an assumed opaque edge. Under kReject a T001-error rulebase
    // (statically diverging cascade) fails the registration; T004 validates
    // the acyclic cascade depth against max_posting_depth.
    if (actions_.has_declared_signatures()) {
      std::vector<const ClassTriggerSet*> sets;
      sets.reserve(analyzed_trigger_sets_.size() + 1);
      for (const ClassTriggerSet& prior : analyzed_trigger_sets_) {
        sets.push_back(&prior);
      }
      sets.push_back(&*trigger_set);
      EffectMap effects = actions_.SignatureMap();
      CascadeOptions copts;
      copts.compile = options_.compile;
      copts.effects = &effects;
      copts.runtime_depth_limit = options_.max_posting_depth;
      CascadeResult cascade = AnalyzeCascadeOverClassSets(sets, copts);
      std::string cascade_error;
      for (Diagnostic& d : cascade.diagnostics) {
        if (cascade_error.empty() && d.severity == Severity::kError) {
          cascade_error = d.ToString();
        }
        analysis_diagnostics_.push_back(std::move(d));
      }
      if (!cascade_error.empty() &&
          options_.analyze_triggers ==
              DatabaseOptions::TriggerAnalysisMode::kReject) {
        return Status::InvalidArgument(
            StrFormat("class '%s' rejected by cascade analysis: %s",
                      name.c_str(), cascade_error.c_str()));
      }
    }
  }

  Result<ClassId> id = classes_.Register(std::move(def), options_.compile);
  if (!id.ok()) return id;
  if (trigger_set) analyzed_trigger_sets_.push_back(std::move(*trigger_set));

  // §3 database-scope events: announce the schema modification to the
  // schema object (from a system transaction, like other global events).
  if (!schema_oid_.IsNull() && name != "__schema") {
    Status posted = RunSystemTxn([&](Transaction* sys) -> Status {
      // The ordinary invocation path posts the full §3.1 event set around
      // the (body-less) classRegistered method.
      return Call(sys->id(), schema_oid_, "classRegistered",
                  {Value(name)})
          .status();
    });
    if (!posted.ok()) return posted;
  }
  return id;
}

Status Database::AddSchemaTrigger(std::string dsl_text) {
  if (!schema_oid_.IsNull()) {
    return Status::FailedPrecondition(
        "schema triggers must be declared before EnableSchemaEvents");
  }
  pending_schema_triggers_.push_back(std::move(dsl_text));
  return Status::OK();
}

Status Database::EnableSchemaEvents() {
  if (!schema_oid_.IsNull()) return Status::OK();  // Idempotent.
  ClassDef def("__schema");
  def.AddAttr("classes_registered", Value(0));
  def.AddMethod(MethodDef{
      "classRegistered", {{"string", "name"}}, MethodKind::kUpdate, nullptr});
  for (std::string& dsl : pending_schema_triggers_) {
    def.AddTrigger(std::move(dsl), HistoryView::kFull,
                   /*auto_activate=*/true);
  }
  pending_schema_triggers_.clear();
  ODE_RETURN_IF_ERROR(classes_.Register(std::move(def), options_.compile)
                          .status());
  return RunSystemTxn([&](Transaction* sys) -> Status {
    const RegisteredClass* cls = classes_.Find("__schema");
    Object* stored = nullptr;
    {
      std::unique_lock<std::shared_mutex> lock(objects_mu_);
      Oid oid{next_oid_++};
      Object obj(oid, cls->id);
      for (const AttrDecl& attr : cls->def.attrs()) {
        obj.InitAttr(attr.name, attr.default_value);
      }
      auto [it, inserted] = objects_.emplace(oid, std::move(obj));
      schema_oid_ = oid;
      stored = &it->second;
    }
    for (size_t i = 0; i < cls->triggers.size(); ++i) {
      if (!cls->auto_activate[i]) continue;
      ODE_RETURN_IF_ERROR(ActivateTriggerInternal(sys, stored, *cls,
                                                  static_cast<int>(i), {}));
    }
    return Status::OK();
  });
}

Status Database::RegisterAction(std::string name, TriggerAction action) {
  return actions_.Register(std::move(name), std::move(action));
}

Status Database::RegisterAction(std::string name, TriggerAction action,
                                ActionSignature signature) {
  return actions_.Register(std::move(name), std::move(action),
                           std::move(signature));
}

Status Database::RegisterHostFunction(std::string name, HostFn fn) {
  auto [it, inserted] = host_fns_.emplace(std::move(name), std::move(fn));
  if (!inserted) {
    return Status::AlreadyExists(
        StrFormat("host function '%s' already registered",
                  it->first.c_str()));
  }
  return Status::OK();
}

Result<Value> Database::CallHostFunction(std::string_view name,
                                         const std::vector<Value>& args,
                                         const HostContext& ctx) const {
  auto it = host_fns_.find(name);
  if (it == host_fns_.end()) {
    return Status::NotFound(StrFormat("unknown host function '%s'",
                                      std::string(name).c_str()));
  }
  return it->second(args, ctx);
}

// --- Internal helpers -----------------------------------------------------

Result<Object*> Database::GetObject(Oid oid) {
  std::shared_lock<std::shared_mutex> lock(objects_mu_);
  auto it = objects_.find(oid);
  if (it == objects_.end()) {
    return Status::NotFound(StrFormat(
        "no object @%llu", static_cast<unsigned long long>(oid.id)));
  }
  return &it->second;
}

bool Database::Exists(Oid oid) const {
  std::shared_lock<std::shared_mutex> lock(objects_mu_);
  return objects_.count(oid) > 0;
}

uint64_t Database::NextSeq(Oid oid) {
  // Fast path: the counter exists (shared lock, per-object single-writer
  // increment). Slow path: first event on the object inserts the entry.
  {
    std::shared_lock<std::shared_mutex> lock(aux_mu_);
    auto it = seq_counters_.find(oid);
    if (it != seq_counters_.end()) return ++it->second;
  }
  std::unique_lock<std::shared_mutex> lock(aux_mu_);
  return ++seq_counters_[oid];
}

void Database::RecordHistory(const PostedEvent& event) {
  if (!options_.record_histories) return;
  EventHistory* history = nullptr;
  {
    std::shared_lock<std::shared_mutex> lock(aux_mu_);
    auto it = histories_.find(event.object);
    if (it != histories_.end()) history = &it->second;
  }
  if (history == nullptr) {
    std::unique_lock<std::shared_mutex> lock(aux_mu_);
    history = &histories_[event.object];
  }
  history->Append(event);
}

void Database::BumpTriggersFired(Oid oid, const std::string& trigger_name) {
  stats_.triggers_fired.fetch_add(1, std::memory_order_relaxed);
  auto key = std::make_pair(oid.id, trigger_name);
  {
    std::shared_lock<std::shared_mutex> lock(aux_mu_);
    auto it = fire_counts_.find(key);
    if (it != fire_counts_.end()) {
      ++it->second;
      return;
    }
  }
  std::unique_lock<std::shared_mutex> lock(aux_mu_);
  ++fire_counts_[key];
}

void Database::ReleaseAlphabetTimers(Oid oid, const Alphabet& alphabet) {
  for (const BasicEvent& te : alphabet.TimeEvents()) {
    (void)clock_.RemoveTimer(oid, te);  // Best effort.
  }
}

void Database::AcquireAlphabetTimers(Oid oid, const Alphabet& alphabet) {
  for (const BasicEvent& te : alphabet.TimeEvents()) {
    (void)clock_.AddTimer(oid, te);
  }
}

void Database::ReleaseTriggerTimers(Oid oid, const TriggerProgram& program) {
  ReleaseAlphabetTimers(oid, program.event.alphabet);
}

void Database::AcquireTriggerTimers(Oid oid, const TriggerProgram& program) {
  AcquireAlphabetTimers(oid, program.event.alphabet);
}

Status Database::TouchObject(Transaction* txn, Oid oid, LockMode mode) {
  ODE_RETURN_IF_ERROR(locks_.Acquire(txn->id(), oid, mode));
  if (txn->RecordAccess(oid) && !txn->is_system()) {
    // "The 'after tbegin' event is posted to an object only immediately
    // before the object is first accessed by the transaction" (§3.1).
    Result<int> posted = engine_->PostSimple(txn, oid, BasicEventKind::kTbegin,
                                             EventQualifier::kAfter);
    if (!posted.ok()) return posted.status();
  }
  return Status::OK();
}

Status Database::RunSystemTxn(const std::function<Status(Transaction*)>& fn) {
  Transaction* sys = txns_.Begin(/*is_system=*/true);
  stats_.system_txns.fetch_add(1, std::memory_order_relaxed);
  // Once a transaction leaves the active state it is eligible for
  // TxnManager::GarbageCollect, so no member may be touched after
  // set_state — copy what the epilogue needs first.
  TxnId sys_id = sys->id();
  Status s = fn(sys);
  if (s.ok()) {
    sys->set_state(TxnState::kCommitted);
    locks_.Release(sys_id);
    return Status::OK();
  }
  // Roll the system transaction back. A trigger action aborting a *system*
  // transaction affects only that transaction; the user-level operation
  // that spawned it has already completed (§5).
  std::vector<UndoEntry> log = sys->TakeUndoLog();
  sys->set_state(TxnState::kAborted);
  for (auto it = log.rbegin(); it != log.rend(); ++it) {
    (void)ApplyUndo(*it);
  }
  locks_.Release(sys_id);
  if (s.code() == StatusCode::kAborted) return Status::OK();
  return s;
}

// --- Transactions ----------------------------------------------------------

Result<TxnId> Database::Begin() { return txns_.Begin(/*is_system=*/false)->id(); }

Status Database::AddCommitDependency(TxnId txn_id, TxnId dep) {
  ODE_ASSIGN_OR_RETURN(Transaction * txn, txns_.GetActive(txn_id));
  if (txn_id == dep) {
    return Status::InvalidArgument("transaction cannot depend on itself");
  }
  txn->AddCommitDependency(dep);
  return Status::OK();
}

Status Database::Commit(TxnId txn_id, CommitOutcome* outcome) {
  if (outcome != nullptr) *outcome = CommitOutcome::kNotCommitted;
  ODE_ASSIGN_OR_RETURN(Transaction * txn, txns_.GetActive(txn_id));
  return CommitInternal(txn, outcome);
}

bool Database::AcquireEpilogueLock(TxnId sys, Oid oid) {
  // Conflicting holders under multi-shard ingestion are worker
  // transactions, which finish in well under the ~50ms bound: spin with a
  // small sleep. A hold-out past the bound is a cooperative caller keeping
  // a transaction open across this commit (the legacy single-threaded
  // model, where posting unlocked is safe) — don't hang or fail on it.
  constexpr int kMaxAttempts = 1000;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    Status s = locks_.Acquire(sys, oid, LockMode::kExclusive);
    if (s.ok()) return true;
    if (s.code() != StatusCode::kWouldBlock) return false;  // kDeadlock.
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  return false;
}

Status Database::CommitInternal(Transaction* txn, CommitOutcome* outcome) {
  if (outcome != nullptr) *outcome = CommitOutcome::kNotCommitted;
  // Commit dependencies (§7): wait for dependees; abort if any aborted.
  for (TxnId dep : txn->commit_deps()) {
    const Transaction* t = txns_.Get(dep);
    if (t == nullptr) continue;  // Collected — treated as committed.
    if (t->state() == TxnState::kAborted) {
      (void)AbortInternal(txn);
      return Status::Aborted(StrFormat(
          "commit dependency on aborted transaction %llu",
          static_cast<unsigned long long>(dep)));
    }
    if (t->state() == TxnState::kActive) {
      return Status::WouldBlock(StrFormat(
          "commit dependency on still-active transaction %llu",
          static_cast<unsigned long long>(dep)));
    }
  }

  // `before tcomplete` fixpoint (§6): keep posting until no trigger fires.
  for (int round = 0;; ++round) {
    if (round >= options_.max_tcomplete_rounds) {
      (void)AbortInternal(txn);
      return Status::ResourceExhausted(
          "before-tcomplete trigger cascade did not quiesce");
    }
    stats_.tcomplete_rounds.fetch_add(1, std::memory_order_relaxed);
    int fired = 0;
    for (size_t i = 0; i < txn->accessed().size(); ++i) {
      Oid oid = txn->accessed()[i];
      if (!Exists(oid)) continue;
      Result<int> f = engine_->PostSimple(txn, oid, BasicEventKind::kTcomplete,
                                          EventQualifier::kBefore);
      if (!f.ok()) {
        if (f.status().code() == StatusCode::kAborted) {
          (void)AbortInternal(txn);
        }
        return f.status();
      }
      fired += *f;
    }
    if (fired == 0) break;
  }

  // Copy everything the epilogue needs before set_state: a non-active
  // transaction is eligible for TxnManager::GarbageCollect.
  std::vector<Oid> accessed = txn->accessed();
  TxnId committed_id = txn->id();
  txn->set_state(TxnState::kCommitted);
  txns_.CountCommit();
  locks_.Release(committed_id);
  if (outcome != nullptr) *outcome = CommitOutcome::kCommitted;

  // `after tcommit` events are posted by a system transaction (§5); any
  // actions they fire execute as part of that transaction. The system
  // transaction re-acquires each object's lock before posting to it —
  // releasing the user locks above may have handed an accessed object to
  // another shard's worker, and posting advances its trigger slots.
  Status epilogue = RunSystemTxn([&](Transaction* sys) -> Status {
    for (Oid oid : accessed) {
      if (!Exists(oid)) continue;
      const bool locked = AcquireEpilogueLock(sys->id(), oid);
      PostedEvent e = MakePosted(BasicEventKind::kTcommit,
                                 EventQualifier::kAfter, committed_id);
      Result<int> f = engine_->Post(sys, oid, std::move(e));
      // Release per object so concurrent epilogues never hold two locks
      // (no lock-order cycles between them); actions keep their own locks
      // until the system transaction finishes.
      if (locked) locks_.Release(sys->id(), oid);
      if (!f.ok()) return f.status();
    }
    return Status::OK();
  });
  if (!epilogue.ok() && outcome != nullptr) {
    *outcome = CommitOutcome::kEpilogueFailed;
  }
  return epilogue;
}

Status Database::Abort(TxnId txn_id) {
  ODE_ASSIGN_OR_RETURN(Transaction * txn, txns_.GetActive(txn_id));
  return AbortInternal(txn);
}

Status Database::AbortInternal(Transaction* txn) {
  if (txn->state() != TxnState::kActive || txn->aborting()) {
    return Status::OK();
  }
  txn->set_aborting(true);

  // `before tabort` (§3.1) — posted while the transaction's effects are
  // still visible and the transaction can still execute actions (their
  // writes are undo-logged below and rolled back with everything else).
  // Action failures during abort are swallowed: the abort must complete.
  for (size_t i = 0; i < txn->accessed().size(); ++i) {
    Oid oid = txn->accessed()[i];
    if (!Exists(oid)) continue;
    (void)engine_->PostSimple(txn, oid, BasicEventKind::kTabort,
                              EventQualifier::kBefore);
  }
  // Copy everything the rollback and epilogue need before set_state: a
  // non-active transaction is eligible for TxnManager::GarbageCollect.
  std::vector<UndoEntry> log = txn->TakeUndoLog();
  std::vector<Oid> accessed = txn->accessed();
  TxnId aborted_id = txn->id();
  txn->set_state(TxnState::kAborted);

  // Undo in reverse order: attributes, trigger states (committed view),
  // activations, creations, deletions.
  for (auto it = log.rbegin(); it != log.rend(); ++it) {
    ODE_RETURN_IF_ERROR(ApplyUndo(*it));
  }

  txns_.CountAbort();
  locks_.Release(aborted_id);

  // `after tabort` via system transaction (§5), re-locking each object
  // before posting (see the commit epilogue for why).
  return RunSystemTxn([&](Transaction* sys) -> Status {
    for (Oid oid : accessed) {
      if (!Exists(oid)) continue;
      const bool locked = AcquireEpilogueLock(sys->id(), oid);
      PostedEvent e = MakePosted(BasicEventKind::kTabort,
                                 EventQualifier::kAfter, aborted_id);
      Result<int> f = engine_->Post(sys, oid, std::move(e));
      if (locked) locks_.Release(sys->id(), oid);
      if (!f.ok()) return f.status();
    }
    return Status::OK();
  });
}

Status Database::ApplyUndo(const UndoEntry& entry) {
  switch (entry.kind) {
    case UndoEntry::Kind::kAttr: {
      Result<Object*> obj = GetObject(entry.oid);
      if (!obj.ok()) return Status::OK();
      return (*obj)->SetAttr(entry.attr, entry.old_value);
    }
    case UndoEntry::Kind::kTriggerState: {
      Result<Object*> obj = GetObject(entry.oid);
      if (!obj.ok()) return Status::OK();
      ActiveTrigger& slot = (*obj)->SlotFor(entry.trigger_idx);
      slot.state = entry.old_state;
      slot.gate_states = entry.old_gate_states;
      return Status::OK();
    }
    case UndoEntry::Kind::kTriggerActive: {
      Result<Object*> obj = GetObject(entry.oid);
      if (!obj.ok()) return Status::OK();
      ActiveTrigger& slot = (*obj)->SlotFor(entry.trigger_idx);
      if (slot.active == entry.old_active) return Status::OK();
      const RegisteredClass* cls = classes_.FindById((*obj)->class_id());
      if (cls != nullptr &&
          entry.trigger_idx < static_cast<int>(cls->triggers.size())) {
        const TriggerProgram& program = cls->triggers[entry.trigger_idx];
        if (entry.old_active) {
          AcquireTriggerTimers(entry.oid, program);
        } else {
          ReleaseTriggerTimers(entry.oid, program);
        }
      }
      slot.active = entry.old_active;
      return Status::OK();
    }
    case UndoEntry::Kind::kCreate: {
      std::unique_lock<std::shared_mutex> lock(objects_mu_);
      objects_.erase(entry.oid);
      return Status::OK();
    }
    case UndoEntry::Kind::kDelete:
      if (entry.deleted_object.has_value()) {
        std::unique_lock<std::shared_mutex> lock(objects_mu_);
        objects_[entry.oid] = *entry.deleted_object;
      }
      return Status::OK();
  }
  return Status::Internal("unknown undo entry kind");
}

// --- Objects -----------------------------------------------------------------

Result<Oid> Database::New(TxnId txn_id, std::string_view class_name,
                          const std::map<std::string, Value>& init) {
  ODE_ASSIGN_OR_RETURN(Transaction * txn, txns_.GetActive(txn_id));
  const RegisteredClass* cls = classes_.Find(class_name);
  if (cls == nullptr) {
    return Status::NotFound(StrFormat("unknown class '%s'",
                                      std::string(class_name).c_str()));
  }

  Oid oid;
  Object* stored = nullptr;
  {
    std::unique_lock<std::shared_mutex> lock(objects_mu_);
    oid = Oid{next_oid_++};
    Object obj(oid, cls->id);
    for (const AttrDecl& attr : cls->def.attrs()) {
      obj.InitAttr(attr.name, attr.default_value);
    }
    for (const auto& [name, value] : init) {
      if (!obj.HasAttr(name)) {
        return Status::InvalidArgument(StrFormat(
            "class '%s' has no attribute '%s'",
            std::string(class_name).c_str(), name.c_str()));
      }
      obj.InitAttr(name, value);
    }
    stored = &objects_.emplace(oid, std::move(obj)).first->second;
  }

  UndoEntry undo;
  undo.kind = UndoEntry::Kind::kCreate;
  undo.oid = oid;
  txn->PushUndo(std::move(undo));

  auto fail = [&](Status s) -> Status {
    if (s.code() == StatusCode::kAborted) (void)AbortInternal(txn);
    return s;
  };

  Status touched = TouchObject(txn, oid, LockMode::kExclusive);
  if (!touched.ok()) return fail(touched);

  // Constructor-time trigger activation (§3.5), before `after create` so
  // the new triggers observe the creation event.
  for (size_t i = 0; i < cls->triggers.size(); ++i) {
    if (!cls->auto_activate[i]) continue;
    Status s = ActivateTriggerInternal(txn, stored, *cls,
                                       static_cast<int>(i), {});
    if (!s.ok()) return fail(s);
  }

  Result<int> posted = engine_->PostSimple(txn, oid, BasicEventKind::kCreate,
                                           EventQualifier::kAfter);
  if (!posted.ok()) return fail(posted.status());
  return oid;
}

Status Database::Delete(TxnId txn_id, Oid oid) {
  ODE_ASSIGN_OR_RETURN(Transaction * txn, txns_.GetActive(txn_id));
  ODE_ASSIGN_OR_RETURN(Object * obj, GetObject(oid));
  (void)obj;

  auto fail = [&](Status s) -> Status {
    if (s.code() == StatusCode::kAborted) (void)AbortInternal(txn);
    return s;
  };

  Status touched = TouchObject(txn, oid, LockMode::kExclusive);
  if (!touched.ok()) return fail(touched);

  Result<int> posted = engine_->PostSimple(txn, oid, BasicEventKind::kDelete,
                                           EventQualifier::kBefore);
  if (!posted.ok()) return fail(posted.status());

  // The posting pipeline may have mutated the object; snapshot now.
  std::unique_lock<std::shared_mutex> lock(objects_mu_);
  auto it = objects_.find(oid);
  if (it == objects_.end()) {
    return Status::FailedPrecondition("object vanished during before-delete");
  }
  UndoEntry undo;
  undo.kind = UndoEntry::Kind::kDelete;
  undo.oid = oid;
  undo.deleted_object = it->second;
  txn->PushUndo(std::move(undo));

  objects_.erase(it);
  return Status::OK();
}

const Object* Database::object(Oid oid) const {
  std::shared_lock<std::shared_mutex> lock(objects_mu_);
  auto it = objects_.find(oid);
  return it == objects_.end() ? nullptr : &it->second;
}

Result<Value> Database::Call(TxnId txn_id, Oid oid, std::string_view method,
                             std::vector<Value> args, int* triggers_fired) {
  ODE_ASSIGN_OR_RETURN(Transaction * txn, txns_.GetActive(txn_id));
  ODE_ASSIGN_OR_RETURN(Object * obj, GetObject(oid));
  const RegisteredClass* cls = classes_.FindById(obj->class_id());
  if (cls == nullptr) return Status::Internal("object with unknown class");
  const MethodDef* def = cls->def.FindMethod(method);
  if (def == nullptr) {
    return Status::NotFound(StrFormat(
        "class '%s' has no method '%s'", cls->def.name().c_str(),
        std::string(method).c_str()));
  }
  if (args.size() != def->params.size()) {
    return Status::InvalidArgument(StrFormat(
        "method '%s' expects %zu arguments, got %zu",
        def->name.c_str(), def->params.size(), args.size()));
  }

  std::vector<EventArg> named;
  named.reserve(args.size());
  for (size_t i = 0; i < args.size(); ++i) {
    named.push_back(EventArg{def->params[i].name, std::move(args[i])});
  }

  auto fail = [&](Status s) -> Status {
    if (s.code() == StatusCode::kAborted) (void)AbortInternal(txn);
    return s;
  };

  LockMode mode = def->kind == MethodKind::kReadOnly ? LockMode::kShared
                                                     : LockMode::kExclusive;
  Status touched = TouchObject(txn, oid, mode);
  if (!touched.ok()) return fail(touched);

  const EventPostingPolicy& policy = cls->def.policy();
  BasicEventKind state_kind = def->kind == MethodKind::kReadOnly
                                  ? BasicEventKind::kRead
                                  : BasicEventKind::kUpdate;

  auto post = [&](BasicEventKind kind, EventQualifier q) -> Status {
    Result<int> f =
        kind == BasicEventKind::kMethod
            ? engine_->Post(txn, oid,
                            MakePostedMethod(q, def->name, named, txn->id()))
            : engine_->PostSimple(txn, oid, kind, q);
    if (!f.ok()) return f.status();
    if (triggers_fired != nullptr) *triggers_fired += *f;
    return Status::OK();
  };

  // Event order around a method execution (§3.1; order within one
  // invocation is a documented implementation choice):
  //   before f → before access → before read/update
  //   [body]
  //   after read/update → after access → after f
  if (policy.method_events) {
    Status s = post(BasicEventKind::kMethod, EventQualifier::kBefore);
    if (!s.ok()) return fail(s);
  }
  if (policy.access_events) {
    Status s = post(BasicEventKind::kAccess, EventQualifier::kBefore);
    if (!s.ok()) return fail(s);
  }
  if (policy.read_update_events) {
    Status s = post(state_kind, EventQualifier::kBefore);
    if (!s.ok()) return fail(s);
  }

  MethodContext ctx(this, txn_id, oid, named);
  if (def->body) {
    Status body_status = def->body(&ctx);
    if (!body_status.ok()) return fail(body_status);
  }

  if (policy.read_update_events) {
    Status s = post(state_kind, EventQualifier::kAfter);
    if (!s.ok()) return fail(s);
  }
  if (policy.access_events) {
    Status s = post(BasicEventKind::kAccess, EventQualifier::kAfter);
    if (!s.ok()) return fail(s);
  }
  if (policy.method_events) {
    Status s = post(BasicEventKind::kMethod, EventQualifier::kAfter);
    if (!s.ok()) return fail(s);
  }
  return ctx.result();
}

Result<Value> Database::GetAttr(TxnId txn_id, Oid oid, std::string_view attr) {
  ODE_ASSIGN_OR_RETURN(Transaction * txn, txns_.GetActive(txn_id));
  ODE_RETURN_IF_ERROR(TouchObject(txn, oid, LockMode::kShared));
  ODE_ASSIGN_OR_RETURN(Object * obj, GetObject(oid));
  return obj->GetAttr(attr);
}

Status Database::SetAttr(TxnId txn_id, Oid oid, std::string_view attr,
                         Value v) {
  ODE_ASSIGN_OR_RETURN(Transaction * txn, txns_.GetActive(txn_id));
  ODE_RETURN_IF_ERROR(TouchObject(txn, oid, LockMode::kExclusive));
  ODE_ASSIGN_OR_RETURN(Object * obj, GetObject(oid));
  ODE_ASSIGN_OR_RETURN(Value old_value, obj->GetAttr(attr));

  UndoEntry undo;
  undo.kind = UndoEntry::Kind::kAttr;
  undo.oid = oid;
  undo.attr = std::string(attr);
  undo.old_value = std::move(old_value);
  txn->PushUndo(std::move(undo));

  return obj->SetAttr(attr, std::move(v));
}

Result<Value> Database::PeekAttr(Oid oid, std::string_view attr) const {
  const Object* obj = object(oid);
  if (obj == nullptr) {
    return Status::NotFound(StrFormat(
        "no object @%llu", static_cast<unsigned long long>(oid.id)));
  }
  return obj->GetAttr(attr);
}

// --- Triggers -------------------------------------------------------------

Status Database::ActivateTrigger(TxnId txn_id, Oid oid,
                                 std::string_view trigger_name,
                                 std::vector<Value> params) {
  ODE_ASSIGN_OR_RETURN(Transaction * txn, txns_.GetActive(txn_id));
  ODE_ASSIGN_OR_RETURN(Object * obj, GetObject(oid));
  const RegisteredClass* cls = classes_.FindById(obj->class_id());
  if (cls == nullptr) return Status::Internal("object with unknown class");
  int idx = cls->TriggerIndex(trigger_name);
  if (idx < 0) {
    return Status::NotFound(StrFormat(
        "class '%s' has no trigger '%s'", cls->def.name().c_str(),
        std::string(trigger_name).c_str()));
  }
  const TriggerProgram& program = cls->triggers[idx];
  if (!program.spec.action.empty() &&
      actions_.Find(program.spec.action) == nullptr) {
    return Status::NotFound(StrFormat(
        "trigger '%s' names unregistered action '%s'",
        program.spec.name.c_str(), program.spec.action.c_str()));
  }
  if (params.size() != program.spec.params.size()) {
    return Status::InvalidArgument(StrFormat(
        "trigger '%s' expects %zu parameters, got %zu",
        program.spec.name.c_str(), program.spec.params.size(),
        params.size()));
  }

  auto fail = [&](Status s) -> Status {
    if (s.code() == StatusCode::kAborted) (void)AbortInternal(txn);
    return s;
  };
  Status touched = TouchObject(txn, oid, LockMode::kExclusive);
  if (!touched.ok()) return fail(touched);

  // TouchObject may have fired triggers; re-fetch.
  ODE_ASSIGN_OR_RETURN(obj, GetObject(oid));
  return ActivateTriggerInternal(txn, obj, *cls, idx, std::move(params));
}

Status Database::ActivateTriggerInternal(Transaction* txn, Object* obj,
                                         const RegisteredClass& cls, int idx,
                                         std::vector<Value> params) {
  const TriggerProgram& program = cls.triggers[idx];
  ActiveTrigger& slot = obj->SlotFor(idx);

  UndoEntry active_undo;
  active_undo.kind = UndoEntry::Kind::kTriggerActive;
  active_undo.oid = obj->oid();
  active_undo.trigger_idx = idx;
  active_undo.old_active = slot.active;
  txn->PushUndo(std::move(active_undo));

  UndoEntry state_undo;
  state_undo.kind = UndoEntry::Kind::kTriggerState;
  state_undo.oid = obj->oid();
  state_undo.trigger_idx = idx;
  state_undo.old_state = slot.state;
  state_undo.old_gate_states = slot.gate_states;
  txn->PushUndo(std::move(state_undo));

  bool was_active = slot.active;
  slot.active = true;
  slot.state = program.ActiveDfa().start();
  slot.witnesses.clear();
  slot.gate_states.assign(program.event.gates.size(), 0);
  for (size_t g = 0; g < program.event.gates.size(); ++g) {
    slot.gate_states[g] = program.event.gates[g].dfa.start();
  }
  slot.params.clear();
  for (size_t i = 0; i < params.size(); ++i) {
    slot.params[program.spec.params[i].name] = std::move(params[i]);
  }
  if (!was_active) {
    AcquireTriggerTimers(obj->oid(), program);
  }
  return Status::OK();
}

Status Database::DeactivateTrigger(TxnId txn_id, Oid oid,
                                   std::string_view trigger_name) {
  ODE_ASSIGN_OR_RETURN(Transaction * txn, txns_.GetActive(txn_id));
  ODE_ASSIGN_OR_RETURN(Object * obj, GetObject(oid));
  const RegisteredClass* cls = classes_.FindById(obj->class_id());
  if (cls == nullptr) return Status::Internal("object with unknown class");
  int idx = cls->TriggerIndex(trigger_name);
  if (idx < 0) {
    return Status::NotFound(StrFormat(
        "class '%s' has no trigger '%s'", cls->def.name().c_str(),
        std::string(trigger_name).c_str()));
  }
  auto fail = [&](Status s) -> Status {
    if (s.code() == StatusCode::kAborted) (void)AbortInternal(txn);
    return s;
  };
  Status touched = TouchObject(txn, oid, LockMode::kExclusive);
  if (!touched.ok()) return fail(touched);
  ODE_ASSIGN_OR_RETURN(obj, GetObject(oid));

  ActiveTrigger& slot = obj->SlotFor(idx);
  if (!slot.active) return Status::OK();

  UndoEntry undo;
  undo.kind = UndoEntry::Kind::kTriggerActive;
  undo.oid = oid;
  undo.trigger_idx = idx;
  undo.old_active = true;
  txn->PushUndo(std::move(undo));

  slot.active = false;
  ReleaseTriggerTimers(oid, cls->triggers[idx]);
  return Status::OK();
}

Result<bool> Database::TriggerActive(Oid oid,
                                     std::string_view trigger_name) const {
  const Object* obj = object(oid);
  if (obj == nullptr) return Status::NotFound("no such object");
  const RegisteredClass* cls = classes_.FindById(obj->class_id());
  if (cls == nullptr) return Status::Internal("object with unknown class");
  int idx = cls->TriggerIndex(trigger_name);
  if (idx < 0) return Status::NotFound("no such trigger");
  const ActiveTrigger* slot = obj->FindSlot(idx);
  return slot != nullptr && slot->active;
}

Result<int32_t> Database::TriggerState(Oid oid,
                                       std::string_view trigger_name) const {
  const Object* obj = object(oid);
  if (obj == nullptr) return Status::NotFound("no such object");
  const RegisteredClass* cls = classes_.FindById(obj->class_id());
  if (cls == nullptr) return Status::Internal("object with unknown class");
  int idx = cls->TriggerIndex(trigger_name);
  if (idx < 0) return Status::NotFound("no such trigger");
  const ActiveTrigger* slot = obj->FindSlot(idx);
  if (slot == nullptr) return Status::FailedPrecondition("never activated");
  return slot->state;
}

uint64_t Database::FireCount(Oid oid, std::string_view trigger_name) const {
  std::shared_lock<std::shared_mutex> lock(aux_mu_);
  auto it = fire_counts_.find({oid.id, std::string(trigger_name)});
  return it == fire_counts_.end() ? 0 : it->second;
}

// --- Trigger groups (§5 footnote 5) -------------------------------------

Status Database::DefineTriggerGroup(
    std::string_view class_name, std::string group_name,
    const std::vector<std::string>& trigger_names) {
  RegisteredClass* cls = classes_.FindMutable(class_name);
  if (cls == nullptr) {
    return Status::NotFound(StrFormat("unknown class '%s'",
                                      std::string(class_name).c_str()));
  }
  if (cls->GroupIndex(group_name) >= 0) {
    return Status::AlreadyExists(
        StrFormat("group '%s' already defined", group_name.c_str()));
  }
  if (trigger_names.empty()) {
    return Status::InvalidArgument("a trigger group needs members");
  }

  TriggerGroup group;
  group.name = std::move(group_name);
  std::vector<TriggerSpec> specs;
  for (const std::string& name : trigger_names) {
    int idx = cls->TriggerIndex(name);
    if (idx < 0) {
      return Status::NotFound(StrFormat(
          "class '%s' has no trigger '%s'", cls->def.name().c_str(),
          name.c_str()));
    }
    const TriggerProgram& program = cls->triggers[idx];
    if (program.view != HistoryView::kFull) {
      return Status::InvalidArgument(StrFormat(
          "trigger '%s' is not full-history view; combined monitoring "
          "state is not undo-logged",
          name.c_str()));
    }
    if (!program.spec.params.empty()) {
      return Status::InvalidArgument(StrFormat(
          "trigger '%s' takes parameters; group members must be "
          "parameterless",
          name.c_str()));
    }
    group.member_idxs.push_back(idx);
    specs.push_back(program.spec);
  }

  CombinedProgram::Options opts;
  opts.compile = options_.compile;
  ODE_ASSIGN_OR_RETURN(group.program,
                       CombinedProgram::Build(std::move(specs), opts));
  cls->groups.push_back(std::move(group));
  return Status::OK();
}

Status Database::ActivateTriggerGroup(TxnId txn_id, Oid oid,
                                      std::string_view group_name) {
  ODE_ASSIGN_OR_RETURN(Transaction * txn, txns_.GetActive(txn_id));
  ODE_ASSIGN_OR_RETURN(Object * obj, GetObject(oid));
  const RegisteredClass* cls = classes_.FindById(obj->class_id());
  if (cls == nullptr) return Status::Internal("object with unknown class");
  int gidx = cls->GroupIndex(group_name);
  if (gidx < 0) {
    return Status::NotFound(StrFormat("no trigger group '%s'",
                                      std::string(group_name).c_str()));
  }
  const TriggerGroup& group = cls->groups[gidx];
  for (int member : group.member_idxs) {
    const TriggerProgram& program = cls->triggers[member];
    if (!program.spec.action.empty() &&
        actions_.Find(program.spec.action) == nullptr) {
      return Status::NotFound(StrFormat(
          "trigger '%s' names unregistered action '%s'",
          program.spec.name.c_str(), program.spec.action.c_str()));
    }
  }

  auto fail = [&](Status s) -> Status {
    if (s.code() == StatusCode::kAborted) (void)AbortInternal(txn);
    return s;
  };
  Status touched = TouchObject(txn, oid, LockMode::kExclusive);
  if (!touched.ok()) return fail(touched);
  ODE_ASSIGN_OR_RETURN(obj, GetObject(oid));

  GroupSlot& slot = obj->GroupSlotFor(gidx);
  bool was_active = slot.active;
  slot.active = true;
  slot.state = group.program.dfa().start();
  slot.enabled = group.member_idxs.size() >= 64
                     ? ~uint64_t{0}
                     : (uint64_t{1} << group.member_idxs.size()) - 1;
  slot.witnesses.clear();
  if (!was_active) AcquireAlphabetTimers(oid, group.program.alphabet());
  return Status::OK();
}

Status Database::DeactivateTriggerGroup(TxnId txn_id, Oid oid,
                                        std::string_view group_name) {
  ODE_ASSIGN_OR_RETURN(Transaction * txn, txns_.GetActive(txn_id));
  ODE_ASSIGN_OR_RETURN(Object * obj, GetObject(oid));
  const RegisteredClass* cls = classes_.FindById(obj->class_id());
  if (cls == nullptr) return Status::Internal("object with unknown class");
  int gidx = cls->GroupIndex(group_name);
  if (gidx < 0) return Status::NotFound("no such trigger group");
  ODE_RETURN_IF_ERROR(TouchObject(txn, oid, LockMode::kExclusive));
  ODE_ASSIGN_OR_RETURN(obj, GetObject(oid));
  GroupSlot& slot = obj->GroupSlotFor(gidx);
  if (slot.active) {
    slot.active = false;
    ReleaseAlphabetTimers(oid, cls->groups[gidx].program.alphabet());
  }
  return Status::OK();
}

Result<bool> Database::TriggerGroupActive(
    Oid oid, std::string_view group_name) const {
  const Object* obj = object(oid);
  if (obj == nullptr) return Status::NotFound("no such object");
  const RegisteredClass* cls = classes_.FindById(obj->class_id());
  if (cls == nullptr) return Status::Internal("object with unknown class");
  int gidx = cls->GroupIndex(group_name);
  if (gidx < 0) return Status::NotFound("no such trigger group");
  const GroupSlot* slot = obj->FindGroupSlot(gidx);
  return slot != nullptr && slot->active;
}

Result<int32_t> Database::TriggerGroupState(
    Oid oid, std::string_view group_name) const {
  const Object* obj = object(oid);
  if (obj == nullptr) return Status::NotFound("no such object");
  const RegisteredClass* cls = classes_.FindById(obj->class_id());
  if (cls == nullptr) return Status::Internal("object with unknown class");
  int gidx = cls->GroupIndex(group_name);
  if (gidx < 0) return Status::NotFound("no such trigger group");
  const GroupSlot* slot = obj->FindGroupSlot(gidx);
  if (slot == nullptr) return Status::FailedPrecondition("never activated");
  return slot->state;
}

// --- Class-scope triggers (§9 extension) -------------------------------

void Database::BumpClassTriggersFired(ClassId cls,
                                      const std::string& trigger_name) {
  stats_.triggers_fired.fetch_add(1, std::memory_order_relaxed);
  auto key = std::make_pair(cls, trigger_name);
  {
    std::shared_lock<std::shared_mutex> lock(aux_mu_);
    auto it = class_fire_counts_.find(key);
    if (it != class_fire_counts_.end()) {
      // Atomic: class triggers fire from any shard worker, so unlike the
      // per-object counters there is no single-writer owner.
      it->second.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  std::unique_lock<std::shared_mutex> lock(aux_mu_);
  class_fire_counts_[key].fetch_add(1, std::memory_order_relaxed);
}

std::vector<ActiveTrigger>* Database::ClassSlots(ClassId cls) {
  std::shared_lock<std::shared_mutex> lock(aux_mu_);
  auto it = class_slots_.find(cls);
  return it == class_slots_.end() ? nullptr : &it->second;
}

uint64_t Database::ClassActiveMask(ClassId cls) const {
  std::shared_lock<std::shared_mutex> lock(aux_mu_);
  auto it = class_active_masks_.find(cls);
  return it == class_active_masks_.end()
             ? 0
             : it->second.load(std::memory_order_acquire);
}

void Database::SyncClassActiveMask(ClassId cls) {
  std::shared_lock<std::shared_mutex> lock(aux_mu_);
  auto slots_it = class_slots_.find(cls);
  auto mask_it = class_active_masks_.find(cls);
  if (slots_it == class_slots_.end() ||
      mask_it == class_active_masks_.end()) {
    return;
  }
  uint64_t mask = 0;
  const std::vector<ActiveTrigger>& slots = slots_it->second;
  for (size_t i = 0; i < slots.size() && i < 64; ++i) {
    if (slots[i].active) mask |= (uint64_t{1} << i);
  }
  mask_it->second.store(mask, std::memory_order_release);
}

void Database::AttachSequencer(seq::Sequencer* sequencer) {
  sequencer_.store(sequencer, std::memory_order_release);
}

void Database::DetachSequencer() {
  sequencer_.store(nullptr, std::memory_order_release);
}

Result<int> Database::ApplySequencedEvent(const seq::SeqEvent& event,
                                          seq::SeqApplyProgress* progress,
                                          bool allow_unlocked) {
  return engine_->ApplySequenced(event, progress, allow_unlocked);
}

Status Database::ActivateClassTrigger(std::string_view class_name,
                                      std::string_view trigger_name,
                                      std::vector<Value> params) {
  const RegisteredClass* cls = classes_.Find(class_name);
  if (cls == nullptr) {
    return Status::NotFound(StrFormat("unknown class '%s'",
                                      std::string(class_name).c_str()));
  }
  int idx = cls->TriggerIndex(trigger_name);
  if (idx < 0) {
    return Status::NotFound(StrFormat(
        "class '%s' has no trigger '%s'", cls->def.name().c_str(),
        std::string(trigger_name).c_str()));
  }
  const TriggerProgram& program = cls->triggers[idx];
  if (program.view != HistoryView::kFull) {
    return Status::InvalidArgument(
        "class-scope activation requires a full-history trigger: the "
        "merged instance stream interleaves transactions, so committed-"
        "view rollback is not well-defined at class scope");
  }
  if (!program.event.alphabet.TimeEvents().empty()) {
    return Status::Unimplemented(
        "class-scope triggers with time events are not supported (timers "
        "are registered per object)");
  }
  if (!program.spec.action.empty() &&
      actions_.Find(program.spec.action) == nullptr) {
    return Status::NotFound(StrFormat(
        "trigger '%s' names unregistered action '%s'",
        program.spec.name.c_str(), program.spec.action.c_str()));
  }
  if (params.size() != program.spec.params.size()) {
    return Status::InvalidArgument(StrFormat(
        "trigger '%s' expects %zu parameters, got %zu",
        program.spec.name.c_str(), program.spec.params.size(),
        params.size()));
  }

  // The slot vector's *structure* lives under aux_mu_; its *contents* are
  // shared mutable state with the posting path. Standalone, mutating under
  // class_post_mu_ suffices. With a sequencer attached, posting no longer
  // takes that mutex — the mutation instead runs quiesced: publishers
  // gated out, the merge pipeline drained, so no reader exists anywhere.
  std::unique_lock<std::shared_mutex> structure_lock(aux_mu_);
  std::vector<ActiveTrigger>& slots = class_slots_[cls->id];
  class_active_masks_[cls->id];  // Ensure the mask entry exists alongside.
  structure_lock.unlock();

  auto mutate = [&]() -> Status {
    ActiveTrigger* slot = nullptr;
    for (ActiveTrigger& s : slots) {
      if (s.trigger_idx == idx) slot = &s;
    }
    if (slot == nullptr) {
      if (slots.size() >= 64) {
        return Status::ResourceExhausted(
            "a class supports at most 64 class-scope trigger slots (the "
            "publish path's active bitmask)");
      }
      // Growth also under aux_mu_: introspection reads the vector shape
      // under a shared lock while we are quiesced.
      std::unique_lock<std::shared_mutex> grow_lock(aux_mu_);
      slots.emplace_back();
      slot = &slots.back();
      slot->trigger_idx = idx;
    }
    slot->active = true;
    slot->state = program.ActiveDfa().start();
    slot->witnesses.clear();
    slot->gate_states.assign(program.event.gates.size(), 0);
    for (size_t g = 0; g < program.event.gates.size(); ++g) {
      slot->gate_states[g] = program.event.gates[g].dfa.start();
    }
    slot->params.clear();
    for (size_t i = 0; i < params.size(); ++i) {
      slot->params[program.spec.params[i].name] = std::move(params[i]);
    }
    SyncClassActiveMask(cls->id);
    return Status::OK();
  };

  if (seq::Sequencer* sequencer = this->sequencer()) {
    return sequencer->ExecuteQuiesced(mutate);
  }
  std::lock_guard<std::recursive_mutex> post_lock(class_post_mu_);
  return mutate();
}

Status Database::DeactivateClassTrigger(std::string_view class_name,
                                        std::string_view trigger_name) {
  const RegisteredClass* cls = classes_.Find(class_name);
  if (cls == nullptr) return Status::NotFound("unknown class");
  int idx = cls->TriggerIndex(trigger_name);
  if (idx < 0) return Status::NotFound("no such trigger");
  std::vector<ActiveTrigger>* slots = nullptr;
  {
    std::shared_lock<std::shared_mutex> lock(aux_mu_);
    auto it = class_slots_.find(cls->id);
    if (it == class_slots_.end()) return Status::OK();
    slots = &it->second;
  }
  auto mutate = [&]() -> Status {
    for (ActiveTrigger& s : *slots) {
      if (s.trigger_idx == idx) s.active = false;
    }
    SyncClassActiveMask(cls->id);
    return Status::OK();
  };
  if (seq::Sequencer* sequencer = this->sequencer()) {
    return sequencer->ExecuteQuiesced(mutate);
  }
  std::lock_guard<std::recursive_mutex> post_lock(class_post_mu_);
  return mutate();
}

Result<bool> Database::ClassTriggerActive(
    std::string_view class_name, std::string_view trigger_name) const {
  const RegisteredClass* cls = classes_.Find(class_name);
  if (cls == nullptr) return Status::NotFound("unknown class");
  int idx = cls->TriggerIndex(trigger_name);
  if (idx < 0) return Status::NotFound("no such trigger");
  if (sequencer_.load(std::memory_order_acquire) != nullptr) {
    // The merge thread owns slot contents; read the publish-side bitmask
    // instead (re-synced after firings — drain the runtime for an exact
    // answer).
    std::shared_lock<std::shared_mutex> lock(aux_mu_);
    auto it = class_slots_.find(cls->id);
    if (it == class_slots_.end()) return false;
    auto mask_it = class_active_masks_.find(cls->id);
    uint64_t mask = mask_it == class_active_masks_.end()
                        ? 0
                        : mask_it->second.load(std::memory_order_acquire);
    for (size_t i = 0; i < it->second.size() && i < 64; ++i) {
      if (it->second[i].trigger_idx == idx) return ((mask >> i) & 1) != 0;
    }
    return false;
  }
  const std::vector<ActiveTrigger>* slots = nullptr;
  {
    std::shared_lock<std::shared_mutex> lock(aux_mu_);
    auto it = class_slots_.find(cls->id);
    if (it == class_slots_.end()) return false;
    slots = &it->second;
  }
  std::lock_guard<std::recursive_mutex> post_lock(class_post_mu_);
  for (const ActiveTrigger& s : *slots) {
    if (s.trigger_idx == idx) return s.active;
  }
  return false;
}

uint64_t Database::ClassFireCount(std::string_view class_name,
                                  std::string_view trigger_name) const {
  const RegisteredClass* cls = classes_.Find(class_name);
  if (cls == nullptr) return 0;
  std::shared_lock<std::shared_mutex> lock(aux_mu_);
  auto it = class_fire_counts_.find({cls->id, std::string(trigger_name)});
  return it == class_fire_counts_.end()
             ? 0
             : it->second.load(std::memory_order_relaxed);
}

// --- Time -------------------------------------------------------------------

Status Database::AdvanceClock(TimeMs delta_ms) {
  return AdvanceClockTo(clock_.now() + delta_ms);
}

Status Database::AdvanceClockTo(TimeMs target_ms) {
  return clock_.AdvanceTo(
      target_ms,
      [this](Oid oid, const std::string& time_key, TimeMs t) -> Status {
        if (!Exists(oid)) return Status::OK();  // Stale timer.
        return RunSystemTxn([&](Transaction* sys) -> Status {
          ODE_RETURN_IF_ERROR(locks_.Acquire(sys->id(), oid,
                                             LockMode::kExclusive));
          sys->RecordAccess(oid);
          Result<int> f = engine_->PostTime(sys, oid, time_key, t);
          return f.ok() ? Status::OK() : f.status();
        });
      });
}

// --- Introspection ------------------------------------------------------------

const EventHistory* Database::history(Oid oid) const {
  std::shared_lock<std::shared_mutex> lock(aux_mu_);
  auto it = histories_.find(oid);
  return it == histories_.end() ? nullptr : &it->second;
}

}  // namespace ode
