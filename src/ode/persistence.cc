#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/strutil.h"
#include "ode/database.h"
#include "ode/snapshot_codec.h"

// Snapshot persistence (§2: "Persistent objects ... continue to exist after
// the program creating them has terminated").
//
// The format is line-oriented text with a trailing FNV-1a checksum. Note
// what is *not* saved: event histories. Per §5, the automaton state integers
// stored with each activation carry everything monitoring needs — snapshot
// size is independent of how many events the objects have seen.

namespace ode {

std::string EncodeSnapshotValue(const Value& v) {
  switch (v.kind()) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kInt:
      return StrFormat("int:%lld",
                       static_cast<long long>(v.AsInt().value()));
    case ValueKind::kDouble:
      return StrFormat("dbl:%.17g", v.AsDouble().value());
    case ValueKind::kBool:
      return v.AsBool().value() ? "bool:1" : "bool:0";
    case ValueKind::kString: {
      std::string out = "str:";
      // Materialize: iterating the temporary Result's reference directly
      // would dangle (the temporary dies before the loop body runs).
      const std::string payload = v.AsString().value();
      for (char c : payload) {
        switch (c) {
          case '\n': out += "\\n"; break;
          case '\\': out += "\\\\"; break;
          default: out += c;
        }
      }
      return out;
    }
    case ValueKind::kOid:
      return StrFormat("oid:%llu", static_cast<unsigned long long>(
                                       v.AsOid().value().id));
  }
  return "null";
}

Result<Value> DecodeSnapshotValue(std::string_view s) {
  if (s == "null") return Value();
  auto colon = s.find(':');
  if (colon == std::string_view::npos) {
    return Status::InvalidArgument("bad value encoding");
  }
  std::string_view tag = s.substr(0, colon);
  std::string payload(s.substr(colon + 1));
  if (tag == "int") return Value(static_cast<int64_t>(std::stoll(payload)));
  if (tag == "dbl") return Value(std::stod(payload));
  if (tag == "bool") return Value(payload == "1");
  if (tag == "oid") return Value(Oid{std::stoull(payload)});
  if (tag == "str") {
    std::string out;
    for (size_t i = 0; i < payload.size(); ++i) {
      if (payload[i] == '\\' && i + 1 < payload.size()) {
        ++i;
        out += payload[i] == 'n' ? '\n' : payload[i];
      } else {
        out += payload[i];
      }
    }
    return Value(std::move(out));
  }
  return Status::InvalidArgument("unknown value tag");
}

namespace {

std::string EncodeSpecField(const std::optional<int>& f) {
  return f.has_value() ? StrFormat("%d", *f) : "*";
}

std::optional<int> DecodeSpecField(const std::string& s) {
  if (s == "*") return std::nullopt;
  return std::stoi(s);
}

}  // namespace

Result<std::string> Database::SaveSnapshotText() const {
  std::string body;
  body += "ODE-SNAPSHOT v1\n";
  body += StrFormat("clock %lld\n", static_cast<long long>(clock_.now()));
  body += StrFormat("next_oid %llu\n",
                    static_cast<unsigned long long>(next_oid_));

  for (const auto& [oid, obj] : objects_) {
    const RegisteredClass* cls = classes_.FindById(obj.class_id());
    if (cls == nullptr) {
      return Status::Internal("object with unknown class during snapshot");
    }
    body += StrFormat("object %llu %s\n",
                      static_cast<unsigned long long>(oid.id),
                      cls->def.name().c_str());
    for (const auto& [name, value] : obj.attrs()) {
      body += StrFormat("attr %s %s\n", name.c_str(),
                        EncodeSnapshotValue(value).c_str());
    }
    for (const GroupSlot& slot : obj.group_slots()) {
      body += StrFormat("group %d %d %d %llu\n", slot.group_idx,
                        slot.active ? 1 : 0, slot.state,
                        static_cast<unsigned long long>(slot.enabled));
    }
    for (const ActiveTrigger& slot : obj.trigger_slots()) {
      body += StrFormat("trigger %d %d %d", slot.trigger_idx,
                        slot.active ? 1 : 0, slot.state);
      for (int32_t gs : slot.gate_states) {
        body += StrFormat(" %d", gs);
      }
      body += "\n";
      for (const auto& [pname, pvalue] : slot.params) {
        body += StrFormat("param %s %s\n", pname.c_str(),
                          EncodeSnapshotValue(pvalue).c_str());
      }
    }
    body += "end\n";
  }

  // Class-scope slot states (§9), keyed by class name like instance slots
  // are keyed by trigger index: re-registering the same classes before
  // loading restores the activation flags and automaton states exactly.
  // Witnesses are monitoring metadata and are not persisted.
  for (const auto& [class_id, slots] : class_slots_) {
    const RegisteredClass* cls = classes_.FindById(class_id);
    if (cls == nullptr) {
      return Status::Internal("class slots with unknown class during snapshot");
    }
    for (const ActiveTrigger& slot : slots) {
      body += StrFormat("classtrigger %s %d %d %d", cls->def.name().c_str(),
                        slot.trigger_idx, slot.active ? 1 : 0, slot.state);
      for (int32_t gs : slot.gate_states) {
        body += StrFormat(" %d", gs);
      }
      body += "\n";
      for (const auto& [pname, pvalue] : slot.params) {
        body += StrFormat("classparam %s %s\n", pname.c_str(),
                          EncodeSnapshotValue(pvalue).c_str());
      }
    }
  }

  for (const VirtualClock::TimerState& t : clock_.ExportTimers()) {
    body += StrFormat(
        "timer %llu %d %lld %d %s %s %s %s %s %s %s\n",
        static_cast<unsigned long long>(t.object.id),
        static_cast<int>(t.mode), static_cast<long long>(t.next_fire),
        t.refcount, EncodeSpecField(t.spec.year).c_str(),
        EncodeSpecField(t.spec.month).c_str(),
        EncodeSpecField(t.spec.day).c_str(),
        EncodeSpecField(t.spec.hour).c_str(),
        EncodeSpecField(t.spec.minute).c_str(),
        EncodeSpecField(t.spec.second).c_str(),
        EncodeSpecField(t.spec.ms).c_str());
  }

  return body;
}

Status Database::SaveSnapshot(const std::string& path) const {
  ODE_ASSIGN_OR_RETURN(std::string body, SaveSnapshotText());
  body += StrFormat("checksum %llu\n",
                    static_cast<unsigned long long>(Fnv1a64(body)));

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument(
        StrFormat("cannot open '%s' for writing", path.c_str()));
  }
  out << body;
  out.close();
  if (!out) {
    return Status::Internal(StrFormat("write to '%s' failed", path.c_str()));
  }
  return Status::OK();
}

Status Database::LoadSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound(StrFormat("cannot open '%s'", path.c_str()));
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string content = buffer.str();

  // Verify the checksum covers everything before the checksum line.
  size_t checksum_pos = content.rfind("checksum ");
  if (checksum_pos == std::string::npos) {
    return Status::InvalidArgument("snapshot missing checksum");
  }
  uint64_t declared =
      std::stoull(content.substr(checksum_pos + 9));
  uint64_t actual = Fnv1a64(std::string_view(content).substr(0, checksum_pos));
  if (declared != actual) {
    return Status::InvalidArgument("snapshot checksum mismatch (corrupt?)");
  }

  return LoadSnapshotText(
      std::string_view(content).substr(0, checksum_pos));
}

Status Database::LoadSnapshotText(std::string_view body) {
  std::istringstream lines{std::string(body)};
  std::string line;
  if (!std::getline(lines, line) || line != "ODE-SNAPSHOT v1") {
    return Status::InvalidArgument("not an ODE snapshot (bad magic)");
  }

  std::map<Oid, Object> objects;
  std::map<ClassId, std::vector<ActiveTrigger>> class_slots;
  std::vector<VirtualClock::TimerState> timers;
  TimeMs clock_now = 0;
  uint64_t next_oid = 1;
  Object* current = nullptr;
  ActiveTrigger* current_slot = nullptr;
  ActiveTrigger* current_class_slot = nullptr;

  while (std::getline(lines, line)) {
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "clock") {
      long long t;
      ls >> t;
      clock_now = t;
    } else if (tag == "next_oid") {
      ls >> next_oid;
    } else if (tag == "object") {
      unsigned long long id;
      std::string class_name;
      ls >> id >> class_name;
      const RegisteredClass* cls = classes_.Find(class_name);
      if (cls == nullptr) {
        return Status::FailedPrecondition(StrFormat(
            "snapshot references class '%s'; register it before loading",
            class_name.c_str()));
      }
      Oid oid{id};
      auto [it, inserted] = objects.emplace(oid, Object(oid, cls->id));
      current = &it->second;
      current_slot = nullptr;
    } else if (tag == "attr") {
      if (current == nullptr) return Status::InvalidArgument("orphan attr");
      std::string name, encoded;
      ls >> name;
      std::getline(ls, encoded);
      Result<Value> v = DecodeSnapshotValue(StripWhitespace(encoded));
      if (!v.ok()) return v.status();
      current->InitAttr(name, std::move(*v));
    } else if (tag == "trigger") {
      if (current == nullptr) {
        return Status::InvalidArgument("orphan trigger");
      }
      int idx, active, state;
      ls >> idx >> active >> state;
      ActiveTrigger& slot = current->SlotFor(idx);
      slot.active = active != 0;
      slot.state = state;
      slot.gate_states.clear();
      int gs;
      while (ls >> gs) slot.gate_states.push_back(gs);
      current_slot = &slot;
    } else if (tag == "param") {
      if (current_slot == nullptr) {
        return Status::InvalidArgument("orphan param");
      }
      std::string name, encoded;
      ls >> name;
      std::getline(ls, encoded);
      Result<Value> v = DecodeSnapshotValue(StripWhitespace(encoded));
      if (!v.ok()) return v.status();
      current_slot->params[name] = std::move(*v);
    } else if (tag == "classtrigger") {
      std::string class_name;
      int idx, active, state;
      ls >> class_name >> idx >> active >> state;
      const RegisteredClass* cls = classes_.Find(class_name);
      if (cls == nullptr) {
        return Status::FailedPrecondition(StrFormat(
            "snapshot references class '%s'; register it before loading",
            class_name.c_str()));
      }
      std::vector<ActiveTrigger>& slots = class_slots[cls->id];
      ActiveTrigger* slot = nullptr;
      for (ActiveTrigger& s : slots) {
        if (s.trigger_idx == idx) slot = &s;
      }
      if (slot == nullptr) {
        slots.emplace_back();
        slot = &slots.back();
        slot->trigger_idx = idx;
      }
      slot->active = active != 0;
      slot->state = state;
      slot->gate_states.clear();
      int gs;
      while (ls >> gs) slot->gate_states.push_back(gs);
      current_class_slot = slot;
    } else if (tag == "classparam") {
      if (current_class_slot == nullptr) {
        return Status::InvalidArgument("orphan classparam");
      }
      std::string name, encoded;
      ls >> name;
      std::getline(ls, encoded);
      Result<Value> v = DecodeSnapshotValue(StripWhitespace(encoded));
      if (!v.ok()) return v.status();
      current_class_slot->params[name] = std::move(*v);
    } else if (tag == "group") {
      if (current == nullptr) {
        return Status::InvalidArgument("orphan group");
      }
      int idx, active, state;
      unsigned long long enabled;
      ls >> idx >> active >> state >> enabled;
      GroupSlot& slot = current->GroupSlotFor(idx);
      slot.active = active != 0;
      slot.state = state;
      slot.enabled = enabled;
    } else if (tag == "end") {
      current = nullptr;
      current_slot = nullptr;
    } else if (tag == "timer") {
      unsigned long long id;
      int mode, refcount;
      long long next_fire;
      std::string yr, mon, day, hr, min, sec, ms;
      ls >> id >> mode >> next_fire >> refcount >> yr >> mon >> day >> hr >>
          min >> sec >> ms;
      VirtualClock::TimerState t;
      t.object = Oid{id};
      t.mode = static_cast<TimeEventMode>(mode);
      t.next_fire = next_fire;
      t.refcount = refcount;
      t.spec.year = DecodeSpecField(yr);
      t.spec.month = DecodeSpecField(mon);
      t.spec.day = DecodeSpecField(day);
      t.spec.hour = DecodeSpecField(hr);
      t.spec.minute = DecodeSpecField(min);
      t.spec.second = DecodeSpecField(sec);
      t.spec.ms = DecodeSpecField(ms);
      timers.push_back(std::move(t));
    } else if (!tag.empty()) {
      return Status::InvalidArgument(
          StrFormat("unknown snapshot line tag '%s'", tag.c_str()));
    }
  }

  // Persistence requires a quiesced database (no concurrent ingestion);
  // the locks here only keep lock-order discipline consistent.
  {
    std::unique_lock<std::shared_mutex> lock(objects_mu_);
    objects_ = std::move(objects);
    next_oid_ = next_oid;
  }
  {
    std::unique_lock<std::shared_mutex> lock(aux_mu_);
    histories_.clear();
    seq_counters_.clear();
    fire_counts_.clear();
    class_fire_counts_.clear();
    // The snapshot's class-scope slots are authoritative, like objects_:
    // slots activated since (or not captured) are replaced. The publish
    // bitmasks are rebuilt to match.
    class_slots_ = std::move(class_slots);
    class_active_masks_.clear();
    for (const auto& [class_id, slots] : class_slots_) {
      uint64_t mask = 0;
      for (size_t i = 0; i < slots.size() && i < 64; ++i) {
        if (slots[i].active) mask |= uint64_t{1} << i;
      }
      class_active_masks_[class_id].store(mask, std::memory_order_release);
    }
  }
  ODE_RETURN_IF_ERROR(clock_.ImportTimers(std::move(timers), clock_now));
  return Status::OK();
}

}  // namespace ode
