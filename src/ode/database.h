#ifndef ODE_ODE_DATABASE_H_
#define ODE_ODE_DATABASE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "analyze/diagnostic.h"
#include "clock/virtual_clock.h"
#include "common/result.h"
#include "common/value.h"
#include "event/history.h"
#include "ode/class_def.h"
#include "ode/object.h"
#include "trigger/trigger_def.h"
#include "txn/lock_manager.h"
#include "txn/transaction.h"

namespace ode {

class TriggerEngine;
struct ClassTriggerSet;

namespace seq {
class Sequencer;
struct SeqEvent;
struct SeqApplyProgress;
}  // namespace seq

/// Context passed to host functions registered for mask expressions
/// (e.g. `authorized(user())` in §3.5 trigger T1).
struct HostContext {
  Database* db = nullptr;
  TxnId txn = 0;
  Oid self;
  const PostedEvent* event = nullptr;  ///< Null for composite-mask checks.
};

/// A mask-callable host function.
using HostFn =
    std::function<Result<Value>(const std::vector<Value>&, const HostContext&)>;

struct DatabaseOptions {
  /// Record full per-object event histories (needed by the baseline
  /// detectors and by tests; the DFA path itself does not need them —
  /// that is the §5 point).
  bool record_histories = true;
  /// Bound on the §6 `before tcomplete` fixpoint rounds.
  int max_tcomplete_rounds = 32;
  /// Bound on recursive event posting through trigger actions.
  int max_posting_depth = 64;
  /// §9 argument capture: record, per active trigger, the latest
  /// occurrence of each referenced logical event so actions can read the
  /// constituent events' parameters (ActionContext::Witness).
  bool capture_witnesses = true;
  /// Compilation options for class triggers.
  CompileOptions compile;
  /// Registration-time static analysis of trigger sections (the ode-lint
  /// layers run inside RegisterClass, with the class as resolution
  /// context). kWarn records findings — read them via
  /// Database::analysis_diagnostics(). kReject additionally fails the
  /// registration when any error-severity finding is produced (never-true
  /// mask, empty-language automaton, compile failure).
  enum class TriggerAnalysisMode : uint8_t { kOff = 0, kWarn, kReject };
  TriggerAnalysisMode analyze_triggers = TriggerAnalysisMode::kOff;
};

/// Engine statistics (used by tests and benches). Counters are relaxed
/// atomics so concurrent shard workers can bump them wait-free; read them
/// field-wise (the struct itself is not copyable).
struct DatabaseStats {
  std::atomic<uint64_t> events_posted{0};
  std::atomic<uint64_t> triggers_fired{0};
  std::atomic<uint64_t> mask_evaluations{0};
  std::atomic<uint64_t> tcomplete_rounds{0};
  std::atomic<uint64_t> system_txns{0};
};

/// The Ode-like active object database (§2): persistent objects with
/// identity, classes with compiled trigger sections, transactions with
/// undo-based atomicity and object-level locking, a virtual clock, and the
/// event-posting pipeline that drives trigger automata (§5).
///
/// Concurrency is modeled by interleaving transactions cooperatively; lock
/// conflicts surface as kWouldBlock/kDeadlock statuses.
///
/// Thread model (the substrate for runtime/IngestRuntime): the database is
/// *thread-compatible under object-sharding*. Concurrent transactions may
/// run on disjoint object sets — per-object state (attributes, trigger
/// slots, histories, sequence numbers) is single-writer, while the shared
/// structures (object registry, oid allocation, txn manager, lock table,
/// timer table, stats) are internally synchronized. Class-scope trigger
/// slots are shared across all instances of a class; their advancement,
/// firing, and (de)activation serialize on an internal mutex, so active
/// class triggers are safe under multi-shard ingestion (at the cost of
/// serializing that class's postings). Out of scope for concurrent use,
/// and to be serialized by the caller (drain the runtime first): schema
/// registration, clock advancement, persistence, and any cross-shard
/// object access from trigger actions. See docs/RUNTIME.md for the
/// sharding argument.
class Database {
 public:
  explicit Database(DatabaseOptions options = {});
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // --- Schema ------------------------------------------------------------

  /// Registers a class, compiling its trigger section (§2). When
  /// DatabaseOptions::analyze_triggers is not kOff, the ode-lint analysis
  /// runs first; under kReject an error-severity finding fails the
  /// registration with kInvalidArgument.
  Result<ClassId> RegisterClass(ClassDef def);
  const ClassRegistry& classes() const { return classes_; }

  /// Findings accumulated by registration-time trigger analysis (empty
  /// when analyze_triggers is kOff). Like schema registration itself,
  /// not synchronized — read between registrations.
  const std::vector<Diagnostic>& analysis_diagnostics() const {
    return analysis_diagnostics_;
  }

  /// §3: "In some cases it may be appropriate to define events over other
  /// scopes, such as the database. An example ... is the creation of object
  /// type, i.e., schema modification." Enabling schema events creates a
  /// singleton schema object (class `__schema`) that receives a
  /// `classRegistered(name)` method event — posted from a system
  /// transaction — every time a class is subsequently registered. Attach
  /// triggers to it like to any object:
  ///
  ///   db.EnableSchemaEvents();
  ///   db.ActivateTrigger(txn, db.schema_object(),
  ///                      "..." /* a __schema trigger */);
  ///
  /// Extra `__schema` triggers can be declared by passing a ClassDef-style
  /// customization before the first EnableSchemaEvents call via
  /// `AddSchemaTrigger`.
  Status EnableSchemaEvents();
  Status AddSchemaTrigger(std::string dsl_text);
  Oid schema_object() const { return schema_oid_; }

  /// Registers a named trigger action callback (`==> name` in trigger DSL).
  Status RegisterAction(std::string name, TriggerAction action);

  /// Registers an action together with its declared effect signature (what
  /// it may post, on which targets). Once any action declares a signature,
  /// RegisterClass additionally runs cascade/termination analysis over the
  /// whole rulebase (analyze/cascade.h: T001 cycles, T002 immediate
  /// self-loops, T003 opaque actions, T004 depth-limit validation), and
  /// under analyze_triggers=kReject a statically-diverging rulebase fails
  /// registration.
  Status RegisterAction(std::string name, TriggerAction action,
                        ActionSignature signature);

  /// Registers a host function callable from masks.
  Status RegisterHostFunction(std::string name, HostFn fn);

  // --- Transactions (§2, §6) ----------------------------------------------

  Result<TxnId> Begin();

  /// What Commit did to the user transaction — lets callers distinguish a
  /// rollback (safe to replay) from a commit whose after-tcommit epilogue
  /// failed (replaying would double-apply the transaction's effects).
  enum class CommitOutcome : uint8_t {
    kNotCommitted,   ///< Rolled back (or never reached the commit point).
    kCommitted,      ///< Committed; the epilogue ran cleanly.
    kEpilogueFailed, ///< Committed, but the after-tcommit system
                     ///< transaction failed (its own effects rolled back).
  };

  /// Runs the `before tcomplete` fixpoint (§6), then commits: releases
  /// locks and posts `after tcommit` to every accessed object from a system
  /// transaction (§5). kAborted if a deferred trigger aborts the
  /// transaction; kWouldBlock if a commit dependency is still active.
  /// A non-OK status does NOT always mean the transaction rolled back:
  /// check `outcome` (kEpilogueFailed = the user transaction committed but
  /// the epilogue's postings failed non-abortively).
  Status Commit(TxnId txn, CommitOutcome* outcome = nullptr);
  /// Posts `before tabort`, rolls back every effect (attributes, object
  /// creation/deletion, committed-view trigger states, activations),
  /// releases locks, posts `after tabort` from a system transaction.
  Status Abort(TxnId txn);
  /// Declares that `txn` may only commit after `dep` commits and must abort
  /// if `dep` aborts (§7 commit dependency).
  Status AddCommitDependency(TxnId txn, TxnId dep);
  const Transaction* txn(TxnId id) const { return txns_.Get(id); }
  TxnManager& txns() { return txns_; }

  // --- Objects -------------------------------------------------------------

  /// Creates an instance: attributes initialized from class defaults
  /// overridden by `init`; auto-activate triggers armed; `after create`
  /// posted (§3.1).
  Result<Oid> New(TxnId txn, std::string_view class_name,
                  const std::map<std::string, Value>& init = {});
  /// Posts `before delete`, then removes the object.
  Status Delete(TxnId txn, Oid oid);
  bool Exists(Oid oid) const;
  const Object* object(Oid oid) const;

  /// Invokes a public member function: acquires the lock, posts the
  /// §3.1 events around the body per the class's posting policy, runs the
  /// body. Returns the method result. kAborted when a trigger aborted the
  /// transaction (the abort has already been performed).
  /// `triggers_fired`, when non-null, accumulates the number of trigger
  /// firings caused by this invocation's postings (runtime/ shard metrics).
  Result<Value> Call(TxnId txn, Oid oid, std::string_view method,
                     std::vector<Value> args = {},
                     int* triggers_fired = nullptr);

  /// Transactional attribute access. These do *not* post events — the
  /// paper's object-state events exist only at public-member-function
  /// granularity (§3.1).
  Result<Value> GetAttr(TxnId txn, Oid oid, std::string_view attr);
  Status SetAttr(TxnId txn, Oid oid, std::string_view attr, Value v);

  /// Attribute read without transaction/locking (mask evaluation, tests).
  Result<Value> PeekAttr(Oid oid, std::string_view attr) const;

  /// Invokes a registered host function (mask evaluation).
  Result<Value> CallHostFunction(std::string_view name,
                                 const std::vector<Value>& args,
                                 const HostContext& ctx) const;

  // --- Triggers (§2) --------------------------------------------------------

  /// Arms a trigger on an object, binding `params` positionally to the
  /// trigger's declared parameters. Re-activation resets the automaton.
  Status ActivateTrigger(TxnId txn, Oid oid, std::string_view trigger_name,
                         std::vector<Value> params = {});
  Status DeactivateTrigger(TxnId txn, Oid oid, std::string_view trigger_name);
  /// Is the trigger currently active on the object?
  Result<bool> TriggerActive(Oid oid, std::string_view trigger_name) const;
  /// Current automaton state (the §5 one-word-per-object storage).
  Result<int32_t> TriggerState(Oid oid, std::string_view trigger_name) const;

  // --- Class-scope triggers (§9 extension) -----------------------------
  //
  // The paper's future-work list asks about monitoring "at the system
  // level where a large number of objects need be tracked". A class-scope
  // activation runs ONE automaton over the merged event stream of every
  // instance of the class; the firing action receives the posting object
  // as `self`. Because the merged stream interleaves transactions, only
  // HistoryView::kFull triggers may be activated at class scope, and
  // triggers referencing time events are rejected (timers are per-object).
  // Activation is a schema-level operation: it is not transactional, and
  // its per-trigger params are limited to snapshot-codable values when a
  // snapshot will be taken. Slot state (activation flag, automaton state,
  // gate states, params — not witnesses) IS persisted by SaveSnapshot and
  // restored by LoadSnapshot, provided the class (and the action, for
  // firing) is re-registered first.
  //
  // Evaluation has two modes. Standalone (no sequencer attached): slots
  // advance and fire inline in Post, serialized by class_post_mu_. Under
  // IngestRuntime a seq::Sequencer is attached and class-scope evaluation
  // becomes its own pipeline stage: shards classify and publish, one
  // merge thread advances and fires in a deterministic total order, and
  // (de)activation quiesces publishers instead of just locking. See
  // docs/SEQUENCER.md. A class may have at most 64 class-scope slots
  // (the publish path's active bitmask).

  // --- Trigger groups (§5 footnote 5) -----------------------------------
  //
  // "In many cases such automata may be combined into one, resulting in a
  // more efficient monitoring." A group compiles several of a class's
  // triggers into one product automaton (compile/combined.h); activating
  // the group on an object costs ONE classification and ONE table step per
  // posted event for all members, and one integer of per-object state.
  // Restrictions: members must be full-history-view and parameterless;
  // group state is monitoring metadata (not undo-logged). Ordinary
  // (non-perpetual) members individually disarm after firing via the
  // slot's enabled mask.

  Status DefineTriggerGroup(std::string_view class_name,
                            std::string group_name,
                            const std::vector<std::string>& trigger_names);
  Status ActivateTriggerGroup(TxnId txn, Oid oid,
                              std::string_view group_name);
  Status DeactivateTriggerGroup(TxnId txn, Oid oid,
                                std::string_view group_name);
  Result<bool> TriggerGroupActive(Oid oid,
                                  std::string_view group_name) const;
  /// The single shared automaton state (§5 footnote 5 storage bound).
  Result<int32_t> TriggerGroupState(Oid oid,
                                    std::string_view group_name) const;

  Status ActivateClassTrigger(std::string_view class_name,
                              std::string_view trigger_name,
                              std::vector<Value> params = {});
  Status DeactivateClassTrigger(std::string_view class_name,
                                std::string_view trigger_name);
  Result<bool> ClassTriggerActive(std::string_view class_name,
                                  std::string_view trigger_name) const;
  uint64_t ClassFireCount(std::string_view class_name,
                          std::string_view trigger_name) const;

  // --- Class-scope sequencer (src/seq/, docs/SEQUENCER.md) --------------

  /// Routes class-scope evaluation through `sequencer` (owned by the
  /// caller — IngestRuntime — and already recovered but not necessarily
  /// started). Attach before concurrent posting begins; detach only after
  /// the sequencer is stopped.
  void AttachSequencer(seq::Sequencer* sequencer);
  void DetachSequencer();
  seq::Sequencer* sequencer() const {
    return sequencer_.load(std::memory_order_acquire);
  }

  /// Applies one sequenced class-scope event (sequencer thread only);
  /// forwards to the trigger engine and re-syncs the publish-side active
  /// bitmask after firings. See TriggerEngine::ApplySequenced.
  Result<int> ApplySequencedEvent(const seq::SeqEvent& event,
                                  seq::SeqApplyProgress* progress,
                                  bool allow_unlocked);

  // --- Time (§3.1) ----------------------------------------------------------

  VirtualClock& clock() { return clock_; }
  /// Advances virtual time, firing due timers; each firing posts its time
  /// event to the subscribed object from a system transaction.
  Status AdvanceClock(TimeMs delta_ms);
  Status AdvanceClockTo(TimeMs target_ms);

  // --- Introspection ---------------------------------------------------------

  const EventHistory* history(Oid oid) const;
  const DatabaseOptions& options() const { return options_; }
  const DatabaseStats& stats() const { return stats_; }
  LockManager& locks() { return locks_; }

  /// Count of firings per (object, trigger name) — test convenience.
  uint64_t FireCount(Oid oid, std::string_view trigger_name) const;

  // --- Persistence (§2: persistent objects survive the program) -------------

  /// Serializes objects, trigger activation states (just the state
  /// integers, per §5), the clock, and timers. Class definitions are code
  /// and must be re-registered before LoadSnapshot.
  Status SaveSnapshot(const std::string& path) const;
  Status LoadSnapshot(const std::string& path);

  /// In-memory variants of the same codec, used by the WAL checkpoint
  /// (src/wal/) to embed a snapshot body inside its own file. The body is
  /// the full "ODE-SNAPSHOT v1" text *without* the trailing checksum line
  /// (the embedding container carries its own integrity check).
  Result<std::string> SaveSnapshotText() const;
  Status LoadSnapshotText(std::string_view body);

 private:
  friend class TriggerEngine;

  // --- Engine-internal helpers (TriggerEngine is a friend) -----------------
  Result<Object*> GetObject(Oid oid);
  uint64_t NextSeq(Oid oid);
  void RecordHistory(const PostedEvent& event);
  void BumpEventsPosted() {
    stats_.events_posted.fetch_add(1, std::memory_order_relaxed);
  }
  void BumpMaskEvaluations() {
    stats_.mask_evaluations.fetch_add(1, std::memory_order_relaxed);
  }
  void BumpTriggersFired(Oid oid, const std::string& trigger_name);
  void BumpClassTriggersFired(ClassId cls, const std::string& trigger_name);
  /// Class-scope trigger slots for the engine's posting loop (null when the
  /// class has none).
  std::vector<ActiveTrigger>* ClassSlots(ClassId cls);
  /// Publish-side view of which class slots are active (bit = slot index).
  /// Updated synchronously by quiesced (de)activation and re-synced by the
  /// sequencer after firings disarm ordinary triggers; a stale SET bit is
  /// harmless (the apply path re-checks slot->active), and active→inactive
  /// is the only transition that can be observed stale.
  uint64_t ClassActiveMask(ClassId cls) const;
  /// Recomputes the mask from the slot vector. Call only where slot
  /// contents are stable: the sequencer thread, quiesced (de)activation,
  /// or under class_post_mu_ in standalone mode.
  void SyncClassActiveMask(ClassId cls);
  void ReleaseTriggerTimers(Oid oid, const TriggerProgram& program);
  void AcquireTriggerTimers(Oid oid, const TriggerProgram& program);
  void ReleaseAlphabetTimers(Oid oid, const Alphabet& alphabet);
  void AcquireAlphabetTimers(Oid oid, const Alphabet& alphabet);
  const TriggerAction* FindAction(std::string_view name) const {
    return actions_.Find(name);
  }

  /// Lock + first-access bookkeeping; posts `after tbegin` lazily (§3.1).
  Status TouchObject(Transaction* txn, Oid oid, LockMode mode);

  /// Runs `fn` inside a fresh system transaction (§5: events after
  /// commit/abort are posted by a special system transaction). System
  /// transactions generate no transaction events of their own.
  Status RunSystemTxn(const std::function<Status(Transaction*)>& fn);

  Status AbortInternal(Transaction* txn);
  Status CommitInternal(Transaction* txn, CommitOutcome* outcome = nullptr);

  /// Acquires an exclusive lock on `oid` for the commit/abort epilogue's
  /// system transaction, spinning briefly while a (short-lived) shard
  /// transaction holds the object. Returns false when the lock could not
  /// be had within the bound — a cooperative single-threaded caller
  /// keeping a transaction open across this commit — in which case the
  /// epilogue posts unlocked, the pre-existing (single-thread-safe)
  /// behavior.
  bool AcquireEpilogueLock(TxnId sys, Oid oid);

  /// Applies one undo entry (reverse order during abort).
  Status ApplyUndo(const UndoEntry& entry);

  Status ActivateTriggerInternal(Transaction* txn, Object* obj,
                                 const RegisteredClass& cls, int idx,
                                 std::vector<Value> params);

  DatabaseOptions options_;
  ClassRegistry classes_;
  std::vector<Diagnostic> analysis_diagnostics_;
  /// Trigger sets of successfully registered classes, kept (only when
  /// analyze_triggers is on) for the cross-class pairwise sweep.
  std::vector<ClassTriggerSet> analyzed_trigger_sets_;

  /// Guards the object registry *structure* (insert/erase/find on
  /// `objects_`) and oid allocation. Object *contents* are single-writer
  /// per shard; std::map node stability keeps Object pointers valid across
  /// unrelated inserts/erases.
  mutable std::shared_mutex objects_mu_;
  std::map<Oid, Object> objects_;
  uint64_t next_oid_ = 1;

  Oid schema_oid_;  ///< Null until EnableSchemaEvents.
  std::vector<std::string> pending_schema_triggers_;

  TxnManager txns_;
  LockManager locks_;
  VirtualClock clock_;
  ActionRegistry actions_;
  std::map<std::string, HostFn, std::less<>> host_fns_;

  /// Guards the *structure* of the per-object bookkeeping maps below
  /// (first-touch insert vs. concurrent find); entry values are
  /// single-writer per shard, like object contents.
  mutable std::shared_mutex aux_mu_;
  std::map<Oid, EventHistory> histories_;
  std::map<Oid, uint64_t> seq_counters_;
  std::map<std::pair<uint64_t, std::string>, uint64_t> fire_counts_;
  std::map<ClassId, std::vector<ActiveTrigger>> class_slots_;
  /// Atomic values (see ClassActiveMask): read lock-free on every publish.
  std::map<ClassId, std::atomic<uint64_t>> class_active_masks_;
  /// Atomic values: class triggers fire from any shard worker (keyed by
  /// class, not object), so increments have no single-writer owner.
  std::map<std::pair<ClassId, std::string>, std::atomic<uint64_t>>
      class_fire_counts_;

  /// Serializes everything that touches class-scope trigger slots: the
  /// engine's class-slot advancement/firing in Post (a class slot is
  /// shared mutable state across all objects of the class, so two shard
  /// workers posting to different instances would otherwise race on the
  /// same automaton) and ActivateClassTrigger/DeactivateClassTrigger.
  /// Recursive because trigger actions may post events re-entrantly.
  mutable std::recursive_mutex class_post_mu_;

  DatabaseStats stats_;
  std::unique_ptr<TriggerEngine> engine_;
  /// Non-owning; set by IngestRuntime for the lifetime of its run.
  std::atomic<seq::Sequencer*> sequencer_{nullptr};
};

}  // namespace ode

#endif  // ODE_ODE_DATABASE_H_
