#include "ode/object.h"

#include "common/strutil.h"

namespace ode {

Result<Value> Object::GetAttr(std::string_view name) const {
  auto it = attrs_.find(name);
  if (it == attrs_.end()) {
    return Status::NotFound(
        StrFormat("object @%llu has no attribute '%s'",
                  static_cast<unsigned long long>(oid_.id),
                  std::string(name).c_str()));
  }
  return it->second;
}

Status Object::SetAttr(std::string_view name, Value v) {
  auto it = attrs_.find(name);
  if (it == attrs_.end()) {
    return Status::NotFound(
        StrFormat("object @%llu has no attribute '%s'",
                  static_cast<unsigned long long>(oid_.id),
                  std::string(name).c_str()));
  }
  it->second = std::move(v);
  return Status::OK();
}

ActiveTrigger& Object::SlotFor(int idx) {
  for (ActiveTrigger& slot : trigger_slots_) {
    if (slot.trigger_idx == idx) return slot;
  }
  ActiveTrigger slot;
  slot.trigger_idx = idx;
  trigger_slots_.push_back(std::move(slot));
  return trigger_slots_.back();
}

const ActiveTrigger* Object::FindSlot(int idx) const {
  for (const ActiveTrigger& slot : trigger_slots_) {
    if (slot.trigger_idx == idx) return &slot;
  }
  return nullptr;
}

GroupSlot& Object::GroupSlotFor(int group_idx) {
  for (GroupSlot& slot : group_slots_) {
    if (slot.group_idx == group_idx) return slot;
  }
  GroupSlot slot;
  slot.group_idx = group_idx;
  group_slots_.push_back(std::move(slot));
  return group_slots_.back();
}

const GroupSlot* Object::FindGroupSlot(int group_idx) const {
  for (const GroupSlot& slot : group_slots_) {
    if (slot.group_idx == group_idx) return &slot;
  }
  return nullptr;
}

std::string Object::ToString() const {
  std::string out = StrFormat("@%llu {", static_cast<unsigned long long>(oid_.id));
  bool first = true;
  for (const auto& [name, value] : attrs_) {
    if (!first) out += ", ";
    first = false;
    out += name + "=" + value.ToString();
  }
  out += "}";
  return out;
}

}  // namespace ode
