#ifndef ODE_ODE_SNAPSHOT_CODEC_H_
#define ODE_ODE_SNAPSHOT_CODEC_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "common/value.h"

namespace ode {

/// The one-line text encoding of a Value used by the snapshot format
/// ("null", "int:5", "dbl:...", "bool:1", "str:..." with \n and \\ escaped,
/// "oid:7"). Shared between snapshot persistence (src/ode/persistence.cc)
/// and the WAL record/checkpoint codecs (src/wal/): the encoding never
/// contains a raw newline, so a value always fits in one line of a
/// line-oriented file.
std::string EncodeSnapshotValue(const Value& v);
Result<Value> DecodeSnapshotValue(std::string_view s);

}  // namespace ode

#endif  // ODE_ODE_SNAPSHOT_CODEC_H_
