#include "ode/class_def.h"

#include "common/strutil.h"
#include "ode/database.h"

namespace ode {

Result<Value> MethodContext::Arg(std::string_view name) const {
  for (const EventArg& a : args_) {
    if (a.name == name) return a.value;
  }
  return Status::NotFound(
      StrFormat("no argument named '%s'", std::string(name).c_str()));
}

Result<Value> MethodContext::Get(std::string_view attr) const {
  return db_->GetAttr(txn_, self_, attr);
}

Status MethodContext::Set(std::string_view attr, Value v) {
  return db_->SetAttr(txn_, self_, attr, std::move(v));
}

ClassDef& ClassDef::AddAttr(std::string attr_name, Value default_value) {
  attrs_.push_back(AttrDecl{std::move(attr_name), std::move(default_value)});
  return *this;
}

ClassDef& ClassDef::AddMethod(MethodDef method) {
  methods_.push_back(std::move(method));
  return *this;
}

ClassDef& ClassDef::AddTrigger(std::string dsl_text, HistoryView view,
                               bool auto_activate) {
  PendingTrigger p;
  p.dsl_text = std::move(dsl_text);
  p.view = view;
  p.auto_activate = auto_activate;
  pending_triggers_.push_back(std::move(p));
  return *this;
}

ClassDef& ClassDef::AddTrigger(TriggerSpec spec, HistoryView view,
                               bool auto_activate) {
  PendingTrigger p;
  p.spec = std::move(spec);
  p.view = view;
  p.auto_activate = auto_activate;
  pending_triggers_.push_back(std::move(p));
  return *this;
}

const MethodDef* ClassDef::FindMethod(std::string_view method_name) const {
  for (const MethodDef& m : methods_) {
    if (m.name == method_name) return &m;
  }
  return nullptr;
}

const TriggerProgram* RegisteredClass::FindTrigger(
    std::string_view trigger_name) const {
  int idx = TriggerIndex(trigger_name);
  return idx < 0 ? nullptr : &triggers[idx];
}

int RegisteredClass::TriggerIndex(std::string_view trigger_name) const {
  for (size_t i = 0; i < triggers.size(); ++i) {
    if (triggers[i].spec.name == trigger_name) return static_cast<int>(i);
  }
  return -1;
}

int RegisteredClass::GroupIndex(std::string_view group_name) const {
  for (size_t i = 0; i < groups.size(); ++i) {
    if (groups[i].name == group_name) return static_cast<int>(i);
  }
  return -1;
}

Result<ClassId> ClassRegistry::Register(ClassDef def,
                                        const CompileOptions& options) {
  if (by_name_.count(def.name()) > 0) {
    return Status::AlreadyExists(
        StrFormat("class '%s' already registered", def.name().c_str()));
  }

  auto reg_owner = std::make_unique<RegisteredClass>(
      RegisteredClass{static_cast<ClassId>(classes_.size()), def,
                      /*triggers=*/{}, /*auto_activate=*/{}, /*groups=*/{}});
  RegisteredClass& reg = *reg_owner;
  size_t unnamed = 0;
  for (const ClassDef::PendingTrigger& p : def.pending_triggers()) {
    TriggerSpec spec;
    if (p.spec.has_value()) {
      spec = *p.spec;
    } else {
      Result<TriggerSpec> parsed = ParseTriggerSpec(p.dsl_text);
      if (!parsed.ok()) {
        return Status(parsed.status().code(),
                      StrFormat("class '%s': %s", def.name().c_str(),
                                parsed.status().message().c_str()));
      }
      spec = std::move(*parsed);
    }
    if (spec.name.empty()) {
      spec.name = StrFormat("__trigger%zu", unnamed++);
    }
    if (reg.FindTrigger(spec.name) != nullptr) {
      return Status::AlreadyExists(
          StrFormat("class '%s': duplicate trigger '%s'", def.name().c_str(),
                    spec.name.c_str()));
    }
    Result<TriggerProgram> program = CompileTrigger(std::move(spec), p.view,
                                                    options);
    if (!program.ok()) return program.status();
    reg.triggers.push_back(std::move(*program));
    reg.auto_activate.push_back(p.auto_activate);
  }

  ClassId id = reg.id;
  by_name_.emplace(def.name(), id);
  classes_.push_back(std::move(reg_owner));
  return id;
}

const RegisteredClass* ClassRegistry::Find(std::string_view class_name) const {
  auto it = by_name_.find(class_name);
  if (it == by_name_.end()) return nullptr;
  return classes_[it->second].get();
}

const RegisteredClass* ClassRegistry::FindById(ClassId id) const {
  if (id >= classes_.size()) return nullptr;
  return classes_[id].get();
}

RegisteredClass* ClassRegistry::FindMutable(std::string_view class_name) {
  auto it = by_name_.find(class_name);
  if (it == by_name_.end()) return nullptr;
  return classes_[it->second].get();
}

}  // namespace ode
