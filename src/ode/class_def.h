#ifndef ODE_ODE_CLASS_DEF_H_
#define ODE_ODE_CLASS_DEF_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "compile/combined.h"
#include "compile/trigger_program.h"
#include "event/basic_event.h"

namespace ode {

class Database;

/// Identifier of a registered class.
using ClassId = uint32_t;

/// Read/update classification of a method: determines which object-state
/// events (§3.1 item 1) the engine posts around an invocation. A read-only
/// method posts before/after read and before/after access; an updater posts
/// before/after update and before/after access.
enum class MethodKind : uint8_t {
  kReadOnly = 0,
  kUpdate,
};

/// Execution context passed to method bodies and trigger actions.
class MethodContext {
 public:
  MethodContext(Database* db, TxnId txn, Oid self,
                std::vector<EventArg> args)
      : db_(db), txn_(txn), self_(self), args_(std::move(args)) {}

  Database* db() const { return db_; }
  TxnId txn() const { return txn_; }
  Oid self() const { return self_; }
  const std::vector<EventArg>& args() const { return args_; }

  /// Named argument lookup; error if absent.
  Result<Value> Arg(std::string_view name) const;

  /// Reads/writes an attribute of `self` through the transaction (locks
  /// and undo-logging apply).
  Result<Value> Get(std::string_view attr) const;
  Status Set(std::string_view attr, Value v);

  /// The method's return value (defaults to null).
  void SetResult(Value v) { result_ = std::move(v); }
  const Value& result() const { return result_; }

 private:
  Database* db_;
  TxnId txn_;
  Oid self_;
  std::vector<EventArg> args_;
  Value result_;
};

/// A method declaration: name, formal parameters, classification, body.
/// The body may be empty, in which case invoking the method only posts its
/// events (useful for modeling; several paper examples never show bodies).
struct MethodDef {
  using Body = std::function<Status(MethodContext*)>;

  std::string name;
  std::vector<ParamDecl> params;
  MethodKind kind = MethodKind::kUpdate;
  Body body;
};

/// An attribute declaration with its default value.
struct AttrDecl {
  std::string name;
  Value default_value;
};

/// Which event categories invocations post (§3.1). The paper defines both
/// method-execution events and object-state events; some specifications
/// (e.g. the §3.4 sequence example, where a transaction must cause *no
/// other events*) are written against state events only, so classes can
/// turn either category off.
struct EventPostingPolicy {
  bool method_events = true;       ///< before/after <method>.
  bool access_events = true;       ///< before/after access.
  bool read_update_events = true;  ///< before/after read / update.
};

/// A class definition: the O++ `class` with its trigger section (§2).
/// Trigger programs are compiled once per class and shared by all
/// instances — the §5 storage claim.
class ClassDef {
 public:
  explicit ClassDef(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  ClassDef& AddAttr(std::string attr_name, Value default_value);
  ClassDef& AddMethod(MethodDef method);
  ClassDef& SetPostingPolicy(EventPostingPolicy policy) {
    policy_ = policy;
    return *this;
  }

  /// Declares a trigger from DSL text, e.g.
  ///   "T2(Item i, int q): after withdraw(i, q) && q > 100 ==> log"
  /// The action name must be registered with the database (or be the
  /// built-in `tabort`). Compilation happens at class registration.
  /// `auto_activate` mirrors the paper's constructor-time activation
  /// (§3.5): the trigger is activated (with default-null parameters) when
  /// an instance is created.
  ClassDef& AddTrigger(std::string dsl_text,
                       HistoryView view = HistoryView::kFull,
                       bool auto_activate = false);

  /// Declares a pre-parsed trigger.
  ClassDef& AddTrigger(TriggerSpec spec,
                       HistoryView view = HistoryView::kFull,
                       bool auto_activate = false);

  const std::vector<AttrDecl>& attrs() const { return attrs_; }
  const std::vector<MethodDef>& methods() const { return methods_; }
  const EventPostingPolicy& policy() const { return policy_; }

  const MethodDef* FindMethod(std::string_view method_name) const;

  /// Declared-but-not-yet-compiled triggers (consumed at registration).
  struct PendingTrigger {
    std::string dsl_text;          // Either text...
    std::optional<TriggerSpec> spec;  // ...or a parsed spec.
    HistoryView view = HistoryView::kFull;
    bool auto_activate = false;
  };
  const std::vector<PendingTrigger>& pending_triggers() const {
    return pending_triggers_;
  }

 private:
  std::string name_;
  std::vector<AttrDecl> attrs_;
  std::vector<MethodDef> methods_;
  std::vector<PendingTrigger> pending_triggers_;
  EventPostingPolicy policy_;
};

/// A §5 footnote-5 trigger group: several of the class's triggers sharing
/// one product automaton (see compile/combined.h). Members are referenced
/// by their index in `triggers`.
struct TriggerGroup {
  std::string name;
  std::vector<int> member_idxs;
  CombinedProgram program;
};

/// A registered class: definition plus compiled trigger programs.
struct RegisteredClass {
  ClassId id = 0;
  ClassDef def;
  std::vector<TriggerProgram> triggers;
  std::vector<bool> auto_activate;  ///< Parallel to `triggers`.
  std::vector<TriggerGroup> groups;

  const TriggerProgram* FindTrigger(std::string_view trigger_name) const;
  int TriggerIndex(std::string_view trigger_name) const;
  int GroupIndex(std::string_view group_name) const;
};

/// Name → class lookup for a database instance. Registered classes are
/// heap-allocated so RegisteredClass pointers stay valid across later
/// registrations (trigger actions may register classes mid-firing).
class ClassRegistry {
 public:
  /// Compiles the pending triggers and registers the class.
  Result<ClassId> Register(ClassDef def, const CompileOptions& options = {});

  const RegisteredClass* Find(std::string_view class_name) const;
  const RegisteredClass* FindById(ClassId id) const;
  /// Mutable lookup (used when defining trigger groups post-registration).
  RegisteredClass* FindMutable(std::string_view class_name);
  size_t size() const { return classes_.size(); }

 private:
  std::vector<std::unique_ptr<RegisteredClass>> classes_;
  std::map<std::string, ClassId, std::less<>> by_name_;
};

}  // namespace ode

#endif  // ODE_ODE_CLASS_DEF_H_
