#ifndef ODE_ODE_OBJECT_H_
#define ODE_ODE_OBJECT_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "ode/class_def.h"
#include "trigger/trigger_def.h"

namespace ode {

/// A persistent object: identity, class, attribute storage, and per-object
/// trigger activation state (§2, §5).
///
/// Attribute writes go through the transaction layer (Database::SetAttr),
/// which undo-logs old values. Trigger states of committed-view triggers
/// are likewise undo-logged; full-view trigger states are part of the
/// object only as storage — the transaction layer deliberately skips them
/// on abort (§6).
class Object {
 public:
  Object() = default;
  Object(Oid oid, ClassId class_id) : oid_(oid), class_id_(class_id) {}

  Oid oid() const { return oid_; }
  ClassId class_id() const { return class_id_; }

  const std::map<std::string, Value, std::less<>>& attrs() const {
    return attrs_;
  }
  Result<Value> GetAttr(std::string_view name) const;
  Status SetAttr(std::string_view name, Value v);
  bool HasAttr(std::string_view name) const {
    return attrs_.count(std::string(name)) > 0;
  }
  /// Direct (non-checked) attribute insertion, used at construction and by
  /// snapshot loading.
  void InitAttr(std::string name, Value v) {
    attrs_[std::move(name)] = std::move(v);
  }

  /// One slot per class trigger; slots are created lazily at activation.
  std::vector<ActiveTrigger>& trigger_slots() { return trigger_slots_; }
  const std::vector<ActiveTrigger>& trigger_slots() const {
    return trigger_slots_;
  }

  /// Finds (or creates) the slot for trigger index `idx`.
  ActiveTrigger& SlotFor(int idx);
  const ActiveTrigger* FindSlot(int idx) const;

  /// Trigger-group slots (§5 footnote 5), managed like trigger slots.
  std::vector<GroupSlot>& group_slots() { return group_slots_; }
  const std::vector<GroupSlot>& group_slots() const { return group_slots_; }
  GroupSlot& GroupSlotFor(int group_idx);
  const GroupSlot* FindGroupSlot(int group_idx) const;

  std::string ToString() const;

 private:
  Oid oid_;
  ClassId class_id_ = 0;
  std::map<std::string, Value, std::less<>> attrs_;
  std::vector<ActiveTrigger> trigger_slots_;
  std::vector<GroupSlot> group_slots_;
};

}  // namespace ode

#endif  // ODE_ODE_OBJECT_H_
