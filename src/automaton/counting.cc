#include "automaton/counting.h"

#include <map>
#include <utility>

#include "common/strutil.h"

namespace ode {

Result<Dfa> BuildCountingDfa(const Dfa& e, int64_t n, CountCondition cond,
                             size_t max_states) {
  if (n < 1) return Status::InvalidArgument("counting operator requires N >= 1");
  const size_t m = e.alphabet_size();

  // Counter update and cap per condition.
  const int64_t cap = cond == CountCondition::kModulo ? n - 1
                      : cond == CountCondition::kAtLeast ? n
                                                         : n + 1;

  auto bump = [&](int64_t c) -> int64_t {
    if (cond == CountCondition::kModulo) return (c + 1) % n;
    return c >= cap ? cap : c + 1;
  };
  auto holds = [&](int64_t c) -> bool {
    switch (cond) {
      case CountCondition::kAtLeast: return c >= n;
      case CountCondition::kExactly: return c == n;
      case CountCondition::kModulo: return c == 0;
    }
    return false;
  };

  std::map<std::pair<Dfa::State, int64_t>, Dfa::State> ids;
  std::vector<std::pair<Dfa::State, int64_t>> states;
  auto intern = [&](Dfa::State s, int64_t c) -> Dfa::State {
    auto [it, inserted] =
        ids.emplace(std::make_pair(s, c), static_cast<Dfa::State>(states.size()));
    if (inserted) states.emplace_back(s, c);
    return it->second;
  };

  // Initial counter: 0 occurrences seen. (For kModulo, counter 0 with the
  // non-accepting start is fine: acceptance also requires E to occur *now*.)
  Dfa::State start = intern(e.start(), 0);

  std::vector<std::vector<Dfa::State>> rows;
  std::vector<bool> accepting;
  for (size_t cur = 0; cur < states.size(); ++cur) {
    if (states.size() > max_states) {
      return Status::ResourceExhausted(
          StrFormat("counting product exceeded %zu states", max_states));
    }
    auto [s, c] = states[cur];
    // Acceptance of the *current* state: E occurs at this point and the
    // counter (which already includes this occurrence) satisfies the
    // condition.
    accepting.push_back(e.accepting(s) && holds(c));
    std::vector<Dfa::State> row(m);
    for (size_t sym = 0; sym < m; ++sym) {
      Dfa::State s2 = e.Step(s, static_cast<SymbolId>(sym));
      int64_t c2 = e.accepting(s2) ? bump(c) : c;
      row[sym] = intern(s2, c2);
    }
    rows.push_back(std::move(row));
  }

  Dfa out(m, states.size());
  out.SetStart(start);
  for (size_t s = 0; s < states.size(); ++s) {
    out.SetAccepting(static_cast<Dfa::State>(s), accepting[s]);
    for (size_t sym = 0; sym < m; ++sym) {
      out.SetStep(static_cast<Dfa::State>(s), static_cast<SymbolId>(sym),
                  rows[s][sym]);
    }
  }
  return out;
}

}  // namespace ode
