#include "automaton/symbol_set.h"

#include <bit>

#include "common/strutil.h"

namespace ode {

SymbolSet SymbolSet::All(size_t universe_size) {
  SymbolSet s(universe_size);
  for (size_t i = 0; i < universe_size; ++i) s.Add(static_cast<SymbolId>(i));
  return s;
}

SymbolSet SymbolSet::Single(size_t universe_size, SymbolId sym) {
  SymbolSet s(universe_size);
  s.Add(sym);
  return s;
}

bool SymbolSet::Empty() const {
  for (uint64_t w : bits_) {
    if (w != 0) return false;
  }
  return true;
}

size_t SymbolSet::Count() const {
  size_t n = 0;
  for (uint64_t w : bits_) n += static_cast<size_t>(std::popcount(w));
  return n;
}

SymbolSet SymbolSet::Union(const SymbolSet& other) const {
  SymbolSet out(universe_);
  for (size_t i = 0; i < bits_.size(); ++i) {
    out.bits_[i] = bits_[i] | other.bits_[i];
  }
  return out;
}

SymbolSet SymbolSet::Intersect(const SymbolSet& other) const {
  SymbolSet out(universe_);
  for (size_t i = 0; i < bits_.size(); ++i) {
    out.bits_[i] = bits_[i] & other.bits_[i];
  }
  return out;
}

SymbolSet SymbolSet::Complement() const {
  SymbolSet out(universe_);
  for (size_t i = 0; i < bits_.size(); ++i) out.bits_[i] = ~bits_[i];
  // Clear bits beyond the universe.
  for (size_t s = universe_; s < bits_.size() * 64; ++s) {
    out.bits_[s >> 6] &= ~(1ull << (s & 63));
  }
  return out;
}

void SymbolSet::ForEach(const std::function<void(SymbolId)>& fn) const {
  for (size_t i = 0; i < bits_.size(); ++i) {
    uint64_t w = bits_[i];
    while (w != 0) {
      int b = std::countr_zero(w);
      fn(static_cast<SymbolId>(i * 64 + b));
      w &= w - 1;
    }
  }
}

std::string SymbolSet::ToString() const {
  std::string out = "{";
  bool first = true;
  ForEach([&](SymbolId s) {
    if (!first) out += ",";
    first = false;
    out += StrFormat("%d", s);
  });
  out += "}";
  return out;
}

}  // namespace ode
