#include "automaton/dot.h"

#include <map>

#include "common/strutil.h"

namespace ode {

namespace {

std::string SymbolLabel(SymbolId sym,
                        const std::vector<std::string>& symbol_names) {
  if (sym >= 0 && static_cast<size_t>(sym) < symbol_names.size()) {
    return symbol_names[sym];
  }
  return StrFormat("s%d", sym);
}

std::string SetLabel(const SymbolSet& on,
                     const std::vector<std::string>& symbol_names) {
  if (on.Count() == on.universe_size()) return "*";
  std::vector<std::string> parts;
  on.ForEach([&](SymbolId sym) {
    parts.push_back(SymbolLabel(sym, symbol_names));
  });
  return Join(parts, ",");
}

}  // namespace

std::string DfaToDot(const Dfa& dfa,
                     const std::vector<std::string>& symbol_names) {
  std::string out = "digraph dfa {\n  rankdir=LR;\n  node [shape=circle];\n";
  out += StrFormat("  __start [shape=point];\n  __start -> %d;\n",
                   dfa.start());
  for (size_t s = 0; s < dfa.num_states(); ++s) {
    if (dfa.accepting(static_cast<Dfa::State>(s))) {
      out += StrFormat("  %zu [shape=doublecircle];\n", s);
    }
    // Merge parallel edges into one label.
    std::map<Dfa::State, SymbolSet> by_target;
    for (size_t sym = 0; sym < dfa.alphabet_size(); ++sym) {
      Dfa::State to =
          dfa.Step(static_cast<Dfa::State>(s), static_cast<SymbolId>(sym));
      auto [it, inserted] = by_target.emplace(to, SymbolSet(dfa.alphabet_size()));
      it->second.Add(static_cast<SymbolId>(sym));
    }
    for (const auto& [to, on] : by_target) {
      out += StrFormat("  %zu -> %d [label=\"%s\"];\n", s, to,
                       SetLabel(on, symbol_names).c_str());
    }
  }
  out += "}\n";
  return out;
}

std::string NfaToDot(const Nfa& nfa,
                     const std::vector<std::string>& symbol_names) {
  std::string out = "digraph nfa {\n  rankdir=LR;\n  node [shape=circle];\n";
  out += StrFormat("  __start [shape=point];\n  __start -> %d;\n",
                   nfa.start());
  for (size_t s = 0; s < nfa.num_states(); ++s) {
    if (nfa.accepting(static_cast<Nfa::State>(s))) {
      out += StrFormat("  %zu [shape=doublecircle];\n", s);
    }
    for (const Nfa::SymbolEdge& e :
         nfa.symbol_edges(static_cast<Nfa::State>(s))) {
      out += StrFormat("  %zu -> %d [label=\"%s\"];\n", s, e.to,
                       SetLabel(e.on, symbol_names).c_str());
    }
    for (Nfa::State t : nfa.epsilon_edges(static_cast<Nfa::State>(s))) {
      out += StrFormat("  %zu -> %d [label=\"ε\", style=dashed];\n", s, t);
    }
  }
  out += "}\n";
  return out;
}

}  // namespace ode
