#ifndef ODE_AUTOMATON_FIRST_OCCURRENCE_H_
#define ODE_AUTOMATON_FIRST_OCCURRENCE_H_

#include "automaton/dfa.h"
#include "automaton/nfa.h"
#include "common/result.h"

namespace ode {

/// Builds the "first occurrence of F with no intervening G" language used
/// by `fa` (§3.4):
///
///   FirstNoG(F, G) = { v ∈ L(F) : no nonempty proper prefix of v is in
///                      L(F) ∪ L(G) }
///
/// fa(E, F, G) is then L(E) · FirstNoG(F, G): after an occurrence of E, the
/// first point where F occurs in the truncated history, provided no G
/// (also relative to E) occurred strictly before it.
///
/// Both inputs must be complete DFAs whose languages exclude ε (guaranteed
/// for all event-expression languages).
Result<Dfa> BuildFirstNoG(const Dfa& f, const Dfa& g);

/// Builds the NFA for faAbs(E, F, G) (§3.4): like fa, but the "no
/// intervening G" condition runs G over the *whole* (current-context)
/// history rather than the truncated one:
///
///   { u·v : u ∈ L(E), v ∈ L(F), no nonempty proper prefix of v in L(F),
///           and no w with |u| < |w| < |uv| such that (uv)[1..w] ∈ L(G) }
///
/// E may be nondeterministic; F and G must be DFAs (their conditions are
/// negative and require determinism).
Result<Nfa> BuildFaAbs(const Nfa& e, const Dfa& f, const Dfa& g,
                       size_t max_states = 1 << 20);

}  // namespace ode

#endif  // ODE_AUTOMATON_FIRST_OCCURRENCE_H_
