#ifndef ODE_AUTOMATON_DOT_H_
#define ODE_AUTOMATON_DOT_H_

#include <string>
#include <vector>

#include "automaton/dfa.h"
#include "automaton/nfa.h"

namespace ode {

/// Graphviz (dot) export for documentation and debugging. `symbol_names`
/// optionally labels edges with logical-event descriptions instead of
/// symbol indices; it must have alphabet_size entries when non-empty.
std::string DfaToDot(const Dfa& dfa,
                     const std::vector<std::string>& symbol_names = {});
std::string NfaToDot(const Nfa& nfa,
                     const std::vector<std::string>& symbol_names = {});

}  // namespace ode

#endif  // ODE_AUTOMATON_DOT_H_
