#ifndef ODE_AUTOMATON_COMMITTED_TRANSFORM_H_
#define ODE_AUTOMATON_COMMITTED_TRANSFORM_H_

#include "automaton/dfa.h"
#include "automaton/symbol_set.h"
#include "common/result.h"

namespace ode {

/// Alphabet symbols that represent transaction markers. Each marker is a
/// *set* because a masked transaction event (e.g. `after tbegin && m`)
/// expands into several disjoint micro-symbols (§5 rewrite); every one of
/// them is still a tbegin for rollback purposes.
struct TxnMarkerSymbols {
  SymbolSet tbegin;
  SymbolSet tcommit;
  SymbolSet tabort;
};

/// The §6 Claim construction: converts an automaton A defined over the
/// *committed* history (operations of committed transactions only) into an
/// automaton A′ over the *whole* history, including operations of
/// transactions that later abort.
///
/// A′'s states are pairs (a, b) of A-states: `a` is the state A is
/// "really" in; `b` is the state A was in before the most recent
/// `after tbegin`. Transitions (assuming object-level locking, so at most
/// one transaction is active per object at a time, as the paper assumes):
///
///   * on `after tbegin`:  (q, p) → (δ(q, tbegin), q)   — checkpoint q
///   * on `after tcommit`: (q, p) → (r, r), r = δ(q, tcommit)
///   * on `after tabort`:  (q, p) → (p, p)              — roll back; the
///     aborted transaction's operations (and this marker) vanish from the
///     committed history
///   * on any other symbol s: (q, p) → (δ(q, s), p)
///
/// Running A′ over the full history yields, at every point outside an
/// in-progress transaction, exactly the acceptance A would yield over the
/// committed sub-history (tests/committed_transform_test.cc verifies this
/// point-for-point).
Result<Dfa> BuildCommittedTransform(const Dfa& a,
                                    const TxnMarkerSymbols& markers,
                                    size_t max_states = 1 << 20);

}  // namespace ode

#endif  // ODE_AUTOMATON_COMMITTED_TRANSFORM_H_
