#include "automaton/nfa.h"

#include <algorithm>

#include "common/strutil.h"

namespace ode {

Nfa::State Nfa::AddState(bool accepting) {
  symbol_edges_.emplace_back();
  epsilon_edges_.emplace_back();
  accepting_.push_back(accepting);
  return static_cast<State>(symbol_edges_.size() - 1);
}

void Nfa::AddEdge(State from, SymbolSet on, State to) {
  symbol_edges_[from].push_back(SymbolEdge{std::move(on), to});
}

void Nfa::AddEpsilon(State from, State to) {
  epsilon_edges_[from].push_back(to);
}

std::vector<Nfa::State> Nfa::EpsilonClosure(std::vector<State> states) const {
  std::vector<bool> seen(num_states(), false);
  std::vector<State> stack;
  for (State s : states) {
    if (!seen[s]) {
      seen[s] = true;
      stack.push_back(s);
    }
  }
  std::vector<State> out;
  while (!stack.empty()) {
    State s = stack.back();
    stack.pop_back();
    out.push_back(s);
    for (State t : epsilon_edges_[s]) {
      if (!seen[t]) {
        seen[t] = true;
        stack.push_back(t);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool Nfa::Accepts(const std::vector<SymbolId>& input) const {
  std::vector<State> current = EpsilonClosure({start_});
  for (SymbolId sym : input) {
    std::vector<State> next;
    std::vector<bool> seen(num_states(), false);
    for (State s : current) {
      for (const SymbolEdge& e : symbol_edges_[s]) {
        if (e.on.Contains(sym) && !seen[e.to]) {
          seen[e.to] = true;
          next.push_back(e.to);
        }
      }
    }
    current = EpsilonClosure(std::move(next));
    if (current.empty()) return false;
  }
  for (State s : current) {
    if (accepting_[s]) return true;
  }
  return false;
}

Nfa::State Nfa::Absorb(const Nfa& other) {
  State offset = static_cast<State>(num_states());
  for (size_t s = 0; s < other.num_states(); ++s) {
    AddState(other.accepting_[s]);
  }
  for (size_t s = 0; s < other.num_states(); ++s) {
    for (const SymbolEdge& e : other.symbol_edges_[s]) {
      AddEdge(offset + static_cast<State>(s), e.on, offset + e.to);
    }
    for (State t : other.epsilon_edges_[s]) {
      AddEpsilon(offset + static_cast<State>(s), offset + t);
    }
  }
  return offset;
}

Nfa Nfa::EmptyLanguage(size_t alphabet_size) {
  Nfa nfa(alphabet_size);
  nfa.SetStart(nfa.AddState(false));
  return nfa;
}

Nfa Nfa::SigmaStarAtom(const SymbolSet& atom) {
  Nfa nfa(atom.universe_size());
  State s0 = nfa.AddState(false);
  State s1 = nfa.AddState(true);
  nfa.SetStart(s0);
  nfa.AddEdge(s0, SymbolSet::All(atom.universe_size()), s0);
  nfa.AddEdge(s0, atom, s1);
  return nfa;
}

Nfa Nfa::SigmaPlus(size_t alphabet_size) {
  Nfa nfa(alphabet_size);
  State s0 = nfa.AddState(false);
  State s1 = nfa.AddState(true);
  nfa.SetStart(s0);
  nfa.AddEdge(s0, SymbolSet::All(alphabet_size), s1);
  nfa.AddEdge(s1, SymbolSet::All(alphabet_size), s1);
  return nfa;
}

Nfa Nfa::Union(const Nfa& a, const Nfa& b) {
  Nfa nfa(a.alphabet_size());
  State start = nfa.AddState(false);
  nfa.SetStart(start);
  State oa = nfa.Absorb(a);
  State ob = nfa.Absorb(b);
  nfa.AddEpsilon(start, oa + a.start());
  nfa.AddEpsilon(start, ob + b.start());
  return nfa;
}

Nfa Nfa::Concat(const Nfa& a, const Nfa& b) {
  Nfa nfa(a.alphabet_size());
  State oa = nfa.Absorb(a);
  State ob = nfa.Absorb(b);
  nfa.SetStart(oa + a.start());
  for (size_t s = 0; s < a.num_states(); ++s) {
    if (a.accepting_[s]) {
      State ns = oa + static_cast<State>(s);
      nfa.SetAccepting(ns, false);
      nfa.AddEpsilon(ns, ob + b.start());
    }
  }
  return nfa;
}

Nfa Nfa::Plus(const Nfa& a) {
  Nfa nfa(a.alphabet_size());
  State oa = nfa.Absorb(a);
  nfa.SetStart(oa + a.start());
  for (size_t s = 0; s < a.num_states(); ++s) {
    if (a.accepting_[s]) {
      // Accepting states loop back to start: one or more repetitions.
      nfa.AddEpsilon(oa + static_cast<State>(s), oa + a.start());
    }
  }
  return nfa;
}

Nfa Nfa::Power(const Nfa& a, int64_t n) {
  Nfa out = a;
  for (int64_t i = 1; i < n; ++i) {
    out = Concat(out, a);
  }
  return out;
}

std::string Nfa::ToString() const {
  std::string out = StrFormat("NFA: %zu states, start %d, alphabet %zu\n",
                              num_states(), start_, alphabet_size_);
  for (size_t s = 0; s < num_states(); ++s) {
    out += StrFormat("  %zu%s:", s, accepting_[s] ? " (accept)" : "");
    for (const SymbolEdge& e : symbol_edges_[s]) {
      out += StrFormat(" %s->%d", e.on.ToString().c_str(), e.to);
    }
    for (State t : epsilon_edges_[s]) {
      out += StrFormat(" eps->%d", t);
    }
    out += "\n";
  }
  return out;
}

}  // namespace ode
