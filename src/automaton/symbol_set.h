#ifndef ODE_AUTOMATON_SYMBOL_SET_H_
#define ODE_AUTOMATON_SYMBOL_SET_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ode {

/// Index of a logical-event symbol in a trigger's alphabet (see
/// compile/alphabet.h). Symbols are dense, starting at 0.
using SymbolId = int32_t;

/// A set of alphabet symbols, used to label NFA edges compactly (one edge
/// per target instead of one edge per symbol).
class SymbolSet {
 public:
  SymbolSet() = default;
  explicit SymbolSet(size_t universe_size)
      : universe_(universe_size), bits_((universe_size + 63) / 64, 0) {}

  /// The full alphabet Σ.
  static SymbolSet All(size_t universe_size);
  /// A single-symbol set.
  static SymbolSet Single(size_t universe_size, SymbolId s);

  size_t universe_size() const { return universe_; }

  void Add(SymbolId s) { bits_[s >> 6] |= (1ull << (s & 63)); }
  void Remove(SymbolId s) { bits_[s >> 6] &= ~(1ull << (s & 63)); }
  bool Contains(SymbolId s) const {
    return (bits_[s >> 6] >> (s & 63)) & 1;
  }

  bool Empty() const;
  size_t Count() const;

  SymbolSet Union(const SymbolSet& other) const;
  SymbolSet Intersect(const SymbolSet& other) const;
  SymbolSet Complement() const;

  /// Invokes fn(symbol) for each member in increasing order.
  void ForEach(const std::function<void(SymbolId)>& fn) const;

  /// E.g. "{0,2,5}".
  std::string ToString() const;

  bool operator==(const SymbolSet&) const = default;

 private:
  size_t universe_ = 0;
  std::vector<uint64_t> bits_;
};

}  // namespace ode

#endif  // ODE_AUTOMATON_SYMBOL_SET_H_
