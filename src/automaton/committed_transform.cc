#include "automaton/committed_transform.h"

#include <map>
#include <utility>

#include "common/strutil.h"

namespace ode {

Result<Dfa> BuildCommittedTransform(const Dfa& a,
                                    const TxnMarkerSymbols& markers,
                                    size_t max_states) {
  const size_t m = a.alphabet_size();

  std::map<std::pair<Dfa::State, Dfa::State>, Dfa::State> ids;
  std::vector<std::pair<Dfa::State, Dfa::State>> pairs;
  auto intern = [&](Dfa::State q, Dfa::State p) -> Dfa::State {
    auto [it, inserted] = ids.emplace(std::make_pair(q, p),
                                      static_cast<Dfa::State>(pairs.size()));
    if (inserted) pairs.emplace_back(q, p);
    return it->second;
  };

  Dfa::State start = intern(a.start(), a.start());
  std::vector<std::vector<Dfa::State>> rows;
  for (size_t cur = 0; cur < pairs.size(); ++cur) {
    if (pairs.size() > max_states) {
      return Status::ResourceExhausted(
          StrFormat("committed transform exceeded %zu states", max_states));
    }
    auto [q, p] = pairs[cur];
    std::vector<Dfa::State> row(m);
    for (size_t symz = 0; symz < m; ++symz) {
      SymbolId sym = static_cast<SymbolId>(symz);
      if (markers.tbegin.universe_size() == m && markers.tbegin.Contains(sym)) {
        row[symz] = intern(a.Step(q, sym), q);
      } else if (markers.tcommit.universe_size() == m &&
                 markers.tcommit.Contains(sym)) {
        Dfa::State r = a.Step(q, sym);
        row[symz] = intern(r, r);
      } else if (markers.tabort.universe_size() == m &&
                 markers.tabort.Contains(sym)) {
        row[symz] = intern(p, p);
      } else {
        row[symz] = intern(a.Step(q, sym), p);
      }
    }
    rows.push_back(std::move(row));
  }

  Dfa out(m, pairs.size());
  out.SetStart(start);
  for (size_t s = 0; s < pairs.size(); ++s) {
    // A′ reports what A would report in its "real" state.
    out.SetAccepting(static_cast<Dfa::State>(s), a.accepting(pairs[s].first));
    for (size_t sym = 0; sym < m; ++sym) {
      out.SetStep(static_cast<Dfa::State>(s), static_cast<SymbolId>(sym),
                  rows[s][sym]);
    }
  }
  return out;
}

}  // namespace ode
