#ifndef ODE_AUTOMATON_DETERMINIZE_H_
#define ODE_AUTOMATON_DETERMINIZE_H_

#include "automaton/dfa.h"
#include "automaton/nfa.h"
#include "common/result.h"

namespace ode {

/// Subset construction. The resulting DFA is complete (a dead state absorbs
/// undefined moves). Errors with kResourceExhausted if more than
/// `max_states` subset states are produced.
Result<Dfa> Determinize(const Nfa& nfa, size_t max_states = 1 << 20);

/// Converts a DFA back to an NFA (for further composition).
Nfa DfaToNfa(const Dfa& dfa);

/// Returns an equivalent DFA whose start state has no incoming transitions
/// (so the start state represents exactly the empty string). Needed before
/// Σ⁺-complementation.
Dfa CloneStartIfReentrant(const Dfa& dfa);

/// L' = Σ⁺ \ L — the event-expression `!E` (§4 item 5: complement with
/// respect to the set of all points of the history).
Dfa ComplementSigmaPlus(const Dfa& dfa);

/// L' = L(a) ∩ L(b) — the event-expression `E1 & E2` (§4 item 4). Product
/// construction over reachable pairs.
Dfa IntersectDfa(const Dfa& a, const Dfa& b);

}  // namespace ode

#endif  // ODE_AUTOMATON_DETERMINIZE_H_
