#include "automaton/first_occurrence.h"

#include <map>
#include <tuple>

#include "common/strutil.h"

namespace ode {

Result<Dfa> BuildFirstNoG(const Dfa& f, const Dfa& g) {
  const size_t m = f.alphabet_size();
  if (g.alphabet_size() != m) {
    return Status::Internal("FirstNoG: alphabet mismatch");
  }

  // State: (f-state, g-state, clean). `clean` means no nonempty proper
  // prefix so far was in L(F) ∪ L(G). All !clean states are a trap; we
  // keep one canonical dead state for them.
  std::map<std::tuple<Dfa::State, Dfa::State, bool>, Dfa::State> ids;
  std::vector<std::tuple<Dfa::State, Dfa::State, bool>> states;
  auto intern = [&](Dfa::State fs, Dfa::State gs, bool clean) -> Dfa::State {
    if (!clean) {
      // Canonical dead state.
      fs = 0;
      gs = 0;
    }
    auto [it, inserted] = ids.emplace(std::make_tuple(fs, gs, clean),
                                      static_cast<Dfa::State>(states.size()));
    if (inserted) states.emplace_back(fs, gs, clean);
    return it->second;
  };

  Dfa::State start = intern(f.start(), g.start(), true);
  std::vector<std::vector<Dfa::State>> rows;
  std::vector<bool> accepting;
  for (size_t cur = 0; cur < states.size(); ++cur) {
    auto [fs, gs, clean] = states[cur];
    accepting.push_back(clean && f.accepting(fs));
    std::vector<Dfa::State> row(m);
    // Once the current point is itself in L(F) or L(G), every strictly
    // longer string has a nonempty proper prefix in the union.
    bool next_clean = clean && !f.accepting(fs) && !g.accepting(gs);
    for (size_t sym = 0; sym < m; ++sym) {
      row[sym] = intern(f.Step(fs, static_cast<SymbolId>(sym)),
                        g.Step(gs, static_cast<SymbolId>(sym)), next_clean);
    }
    rows.push_back(std::move(row));
  }

  Dfa out(m, states.size());
  out.SetStart(start);
  for (size_t s = 0; s < states.size(); ++s) {
    out.SetAccepting(static_cast<Dfa::State>(s), accepting[s]);
    for (size_t sym = 0; sym < m; ++sym) {
      out.SetStep(static_cast<Dfa::State>(s), static_cast<SymbolId>(sym),
                  rows[s][sym]);
    }
  }
  return out;
}

namespace {

// Cleanliness phases for the faAbs product (see header).
constexpr int kDirty = 0;
constexpr int kClean = 1;
constexpr int kFresh = 2;  // Just split after E; skip this point's G check.

}  // namespace

Result<Nfa> BuildFaAbs(const Nfa& e, const Dfa& f, const Dfa& g,
                       size_t max_states) {
  const size_t m = e.alphabet_size();
  if (f.alphabet_size() != m || g.alphabet_size() != m) {
    return Status::Internal("faAbs: alphabet mismatch");
  }

  Nfa out(m);
  // Key: (phase, a, b, c). Phase 0: a = E-state, b = G-state.
  //                        Phase 1: a = F-state, b = G-state, c = clean tag.
  std::map<std::tuple<int, int, int, int>, Nfa::State> ids;
  std::vector<std::tuple<int, int, int, int>> keys;

  auto intern = [&](int phase, int a, int b, int c) -> Nfa::State {
    auto [it, inserted] = ids.emplace(std::make_tuple(phase, a, b, c),
                                      static_cast<Nfa::State>(keys.size()));
    if (inserted) {
      keys.emplace_back(phase, a, b, c);
      bool accepting = phase == 1 && c != kDirty &&
                       f.accepting(static_cast<Dfa::State>(a));
      out.AddState(accepting);
    }
    return it->second;
  };

  Nfa::State start = intern(0, e.start(), g.start(), 0);
  out.SetStart(start);

  for (size_t cur = 0; cur < keys.size(); ++cur) {
    if (keys.size() > max_states) {
      return Status::ResourceExhausted(
          StrFormat("faAbs product exceeded %zu states", max_states));
    }
    auto [phase, a, b, c] = keys[cur];
    Nfa::State self = static_cast<Nfa::State>(cur);
    if (phase == 0) {
      // E's ε edges stay within the same G state.
      for (Nfa::State t : e.epsilon_edges(static_cast<Nfa::State>(a))) {
        out.AddEpsilon(self, intern(0, t, b, 0));
      }
      // Split point: when E accepts (after ε-closure handled by the above),
      // guess that the truncated history starts here.
      if (e.accepting(static_cast<Nfa::State>(a))) {
        out.AddEpsilon(self, intern(1, f.start(), b, kFresh));
      }
      // Symbol edges: partition each E edge's label by the G successor.
      for (const Nfa::SymbolEdge& edge :
           e.symbol_edges(static_cast<Nfa::State>(a))) {
        std::map<Dfa::State, SymbolSet> by_g;
        edge.on.ForEach([&](SymbolId sym) {
          Dfa::State gs2 = g.Step(static_cast<Dfa::State>(b), sym);
          auto [it, inserted] = by_g.emplace(gs2, SymbolSet(m));
          it->second.Add(sym);
        });
        for (auto& [gs2, on] : by_g) {
          out.AddEdge(self, std::move(on), intern(0, edge.to, gs2, 0));
        }
      }
    } else {
      // Phase 1: advance F and G deterministically.
      int next_c;
      if (c == kFresh) {
        // The G check at the split point itself is excluded (|w| > |u|
        // strictly), and ε has no proper prefix, so the next point is clean.
        next_c = kClean;
      } else if (c == kClean &&
                 !f.accepting(static_cast<Dfa::State>(a)) &&
                 !g.accepting(static_cast<Dfa::State>(b))) {
        next_c = kClean;
      } else {
        next_c = kDirty;
      }
      if (next_c == kDirty) continue;  // Trap: omit transitions entirely.
      std::map<std::pair<Dfa::State, Dfa::State>, SymbolSet> by_target;
      for (size_t sym = 0; sym < m; ++sym) {
        Dfa::State fs2 =
            f.Step(static_cast<Dfa::State>(a), static_cast<SymbolId>(sym));
        Dfa::State gs2 =
            g.Step(static_cast<Dfa::State>(b), static_cast<SymbolId>(sym));
        auto [it, inserted] =
            by_target.emplace(std::make_pair(fs2, gs2), SymbolSet(m));
        it->second.Add(static_cast<SymbolId>(sym));
      }
      for (auto& [target, on] : by_target) {
        out.AddEdge(self, std::move(on),
                    intern(1, target.first, target.second, next_c));
      }
    }
  }
  return out;
}

}  // namespace ode
