#ifndef ODE_AUTOMATON_MINIMIZE_H_
#define ODE_AUTOMATON_MINIMIZE_H_

#include "automaton/dfa.h"

namespace ode {

/// Returns an equivalent DFA restricted to states reachable from the start.
Dfa RemoveUnreachable(const Dfa& dfa);

/// Returns the minimal equivalent complete DFA (partition refinement on
/// reachable states). Minimization keeps the §5 per-class transition tables
/// small; bench/bench_compile.cc measures the reduction.
Dfa Minimize(const Dfa& dfa);

/// True iff the two DFAs accept the same language (product walk over
/// reachable pairs — used by tests, e.g. the §6 transform equivalences).
bool DfaEquivalent(const Dfa& a, const Dfa& b);

}  // namespace ode

#endif  // ODE_AUTOMATON_MINIMIZE_H_
