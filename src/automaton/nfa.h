#ifndef ODE_AUTOMATON_NFA_H_
#define ODE_AUTOMATON_NFA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "automaton/symbol_set.h"

namespace ode {

/// A nondeterministic finite automaton with ε-transitions over a dense
/// alphabet of logical-event symbols. Used as the intermediate form of the
/// event-expression compiler (§5): every composite-event operator has a
/// compositional NFA construction, and the result is determinized and
/// minimized into the per-class transition table.
///
/// Invariant maintained by all constructions in this library: the language
/// never contains the empty string (events occur at history *points*, so
/// every accepted string is nonempty, §4).
class Nfa {
 public:
  /// State index type; states are 0..num_states()-1.
  using State = int32_t;

  explicit Nfa(size_t alphabet_size)
      : alphabet_size_(alphabet_size) {}

  size_t alphabet_size() const { return alphabet_size_; }
  size_t num_states() const { return symbol_edges_.size(); }
  State start() const { return start_; }
  bool accepting(State s) const { return accepting_[s]; }
  const std::vector<bool>& accepting() const { return accepting_; }

  /// Adds a fresh state; returns its index.
  State AddState(bool accepting = false);
  void SetStart(State s) { start_ = s; }
  void SetAccepting(State s, bool v) { accepting_[s] = v; }

  /// Adds an edge labeled with a set of symbols.
  void AddEdge(State from, SymbolSet on, State to);
  /// Adds an ε edge.
  void AddEpsilon(State from, State to);

  struct SymbolEdge {
    SymbolSet on;
    State to;
  };
  const std::vector<SymbolEdge>& symbol_edges(State s) const {
    return symbol_edges_[s];
  }
  const std::vector<State>& epsilon_edges(State s) const {
    return epsilon_edges_[s];
  }

  /// ε-closure of a state set (sorted, deduplicated).
  std::vector<State> EpsilonClosure(std::vector<State> states) const;

  /// True iff the NFA accepts the given symbol string (test helper; the
  /// production path runs the determinized form).
  bool Accepts(const std::vector<SymbolId>& input) const;

  /// --- Compositional constructions (language algebra of §4) -----------

  /// L = ∅.
  static Nfa EmptyLanguage(size_t alphabet_size);
  /// L = Σ* · s for a symbol set s: "the last event is one of s", the
  /// denotation of a logical-event atom.
  static Nfa SigmaStarAtom(const SymbolSet& atom);
  /// L = Σ⁺ (any nonempty history prefix — every point).
  static Nfa SigmaPlus(size_t alphabet_size);
  /// L(a) ∪ L(b).
  static Nfa Union(const Nfa& a, const Nfa& b);
  /// L(a) · L(b) — the `relative` operator (§4).
  static Nfa Concat(const Nfa& a, const Nfa& b);
  /// L(a)⁺ — `relative+`.
  static Nfa Plus(const Nfa& a);
  /// L(a)^n (n >= 1) — building block for `relative N`.
  static Nfa Power(const Nfa& a, int64_t n);

  std::string ToString() const;

 private:
  /// Copies `other`'s states into this NFA; returns the index offset.
  State Absorb(const Nfa& other);

  size_t alphabet_size_;
  State start_ = 0;
  std::vector<std::vector<SymbolEdge>> symbol_edges_;
  std::vector<std::vector<State>> epsilon_edges_;
  std::vector<bool> accepting_;
};

}  // namespace ode

#endif  // ODE_AUTOMATON_NFA_H_
