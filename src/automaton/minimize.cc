#include "automaton/minimize.h"

#include <algorithm>
#include <map>
#include <vector>

namespace ode {

Dfa RemoveUnreachable(const Dfa& dfa) {
  const size_t m = dfa.alphabet_size();
  std::vector<Dfa::State> order;
  std::vector<Dfa::State> remap(dfa.num_states(), -1);
  order.push_back(dfa.start());
  remap[dfa.start()] = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    for (size_t sym = 0; sym < m; ++sym) {
      Dfa::State to = dfa.Step(order[i], static_cast<SymbolId>(sym));
      if (remap[to] < 0) {
        remap[to] = static_cast<Dfa::State>(order.size());
        order.push_back(to);
      }
    }
  }
  Dfa out(m, order.size());
  out.SetStart(0);
  for (size_t i = 0; i < order.size(); ++i) {
    out.SetAccepting(static_cast<Dfa::State>(i), dfa.accepting(order[i]));
    for (size_t sym = 0; sym < m; ++sym) {
      out.SetStep(static_cast<Dfa::State>(i), static_cast<SymbolId>(sym),
                  remap[dfa.Step(order[i], static_cast<SymbolId>(sym))]);
    }
  }
  return out;
}

Dfa Minimize(const Dfa& input) {
  Dfa dfa = RemoveUnreachable(input);
  const size_t n = dfa.num_states();
  const size_t m = dfa.alphabet_size();

  // Moore partition refinement: iterate signature-based splitting until the
  // partition stabilizes. Each round is O(n·m); at most n rounds.
  std::vector<int> block(n);
  for (size_t s = 0; s < n; ++s) {
    block[s] = dfa.accepting(static_cast<Dfa::State>(s)) ? 1 : 0;
  }
  size_t num_blocks = 2;

  while (true) {
    // Signature of a state: (own block, successor blocks per symbol).
    std::map<std::vector<int>, int> sig_ids;
    std::vector<int> new_block(n);
    for (size_t s = 0; s < n; ++s) {
      std::vector<int> sig;
      sig.reserve(m + 1);
      sig.push_back(block[s]);
      for (size_t sym = 0; sym < m; ++sym) {
        sig.push_back(
            block[dfa.Step(static_cast<Dfa::State>(s),
                           static_cast<SymbolId>(sym))]);
      }
      auto [it, inserted] =
          sig_ids.emplace(std::move(sig), static_cast<int>(sig_ids.size()));
      new_block[s] = it->second;
    }
    if (sig_ids.size() == num_blocks) break;
    num_blocks = sig_ids.size();
    block = std::move(new_block);
  }

  // Renumber so the start state's block is 0 (cosmetic stability).
  std::vector<int> renumber(num_blocks, -1);
  int next = 0;
  renumber[block[dfa.start()]] = next++;
  for (size_t s = 0; s < n; ++s) {
    if (renumber[block[s]] < 0) renumber[block[s]] = next++;
  }

  Dfa out(m, num_blocks);
  out.SetStart(0);
  for (size_t s = 0; s < n; ++s) {
    Dfa::State b = renumber[block[s]];
    out.SetAccepting(b, dfa.accepting(static_cast<Dfa::State>(s)));
    for (size_t sym = 0; sym < m; ++sym) {
      out.SetStep(b, static_cast<SymbolId>(sym),
                  renumber[block[dfa.Step(static_cast<Dfa::State>(s),
                                          static_cast<SymbolId>(sym))]]);
    }
  }
  return out;
}

bool DfaEquivalent(const Dfa& a, const Dfa& b) {
  if (a.alphabet_size() != b.alphabet_size()) return false;
  const size_t m = a.alphabet_size();
  std::map<std::pair<Dfa::State, Dfa::State>, bool> seen;
  std::vector<std::pair<Dfa::State, Dfa::State>> stack;
  stack.emplace_back(a.start(), b.start());
  seen[{a.start(), b.start()}] = true;
  while (!stack.empty()) {
    auto [x, y] = stack.back();
    stack.pop_back();
    if (a.accepting(x) != b.accepting(y)) return false;
    for (size_t sym = 0; sym < m; ++sym) {
      std::pair<Dfa::State, Dfa::State> next{
          a.Step(x, static_cast<SymbolId>(sym)),
          b.Step(y, static_cast<SymbolId>(sym))};
      if (!seen[next]) {
        seen[next] = true;
        stack.push_back(next);
      }
    }
  }
  return true;
}

}  // namespace ode
