#ifndef ODE_AUTOMATON_COUNTING_H_
#define ODE_AUTOMATON_COUNTING_H_

#include <cstdint>

#include "automaton/dfa.h"
#include "common/result.h"

namespace ode {

/// Occurrence-counting products implementing `prior N`, `choose N`, and
/// `every N` (§3.4). Each takes the DFA of the counted expression E and
/// builds a DFA whose states are (E-state, bounded counter). The counter
/// counts *occurrence points* of E — positions p with H[1..p] ∈ L(E) — from
/// the beginning of the history.
enum class CountCondition : uint8_t {
  kAtLeast,  ///< prior N (E): the Nth and all subsequent occurrences.
  kExactly,  ///< choose N (E): exactly the Nth occurrence.
  kModulo,   ///< every N (E): the Nth, 2Nth, 3Nth, ... occurrences.
};

/// Builds the counting product. `n` must be >= 1; counter growth is capped
/// (kAtLeast: cap n; kExactly: cap n+1; kModulo: modulo n), so the result
/// has at most |E| * (n+1) states before minimization.
Result<Dfa> BuildCountingDfa(const Dfa& e, int64_t n, CountCondition cond,
                             size_t max_states = 1 << 20);

}  // namespace ode

#endif  // ODE_AUTOMATON_COUNTING_H_
