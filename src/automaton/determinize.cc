#include "automaton/determinize.h"

#include <map>
#include <utility>

#include "common/strutil.h"

namespace ode {

Result<Dfa> Determinize(const Nfa& nfa, size_t max_states) {
  const size_t m = nfa.alphabet_size();

  std::map<std::vector<Nfa::State>, Dfa::State> ids;
  std::vector<std::vector<Nfa::State>> subsets;
  std::vector<std::vector<Dfa::State>> rows;
  std::vector<bool> accepting;

  auto intern = [&](std::vector<Nfa::State> subset) -> Dfa::State {
    auto [it, inserted] = ids.emplace(std::move(subset),
                                      static_cast<Dfa::State>(subsets.size()));
    if (inserted) {
      subsets.push_back(it->first);
      rows.emplace_back();
      bool acc = false;
      for (Nfa::State s : it->first) acc = acc || nfa.accepting(s);
      accepting.push_back(acc);
    }
    return it->second;
  };

  Dfa::State start = intern(nfa.EpsilonClosure({nfa.start()}));

  for (size_t cur = 0; cur < subsets.size(); ++cur) {
    if (subsets.size() > max_states) {
      return Status::ResourceExhausted(
          StrFormat("subset construction exceeded %zu states", max_states));
    }
    // Compute per-symbol moves for this subset in one pass over its edges.
    std::vector<std::vector<Nfa::State>> moves(m);
    for (Nfa::State s : subsets[cur]) {
      for (const Nfa::SymbolEdge& e : nfa.symbol_edges(s)) {
        e.on.ForEach([&](SymbolId sym) { moves[sym].push_back(e.to); });
      }
    }
    rows[cur].resize(m);
    for (size_t sym = 0; sym < m; ++sym) {
      std::vector<Nfa::State>& targets = moves[sym];
      std::sort(targets.begin(), targets.end());
      targets.erase(std::unique(targets.begin(), targets.end()),
                    targets.end());
      rows[cur][sym] = intern(nfa.EpsilonClosure(std::move(targets)));
    }
  }

  Dfa dfa(m, subsets.size());
  dfa.SetStart(start);
  for (size_t s = 0; s < subsets.size(); ++s) {
    dfa.SetAccepting(static_cast<Dfa::State>(s), accepting[s]);
    for (size_t sym = 0; sym < m; ++sym) {
      dfa.SetStep(static_cast<Dfa::State>(s), static_cast<SymbolId>(sym),
                  rows[s][sym]);
    }
  }
  return dfa;
}

Nfa DfaToNfa(const Dfa& dfa) {
  const size_t m = dfa.alphabet_size();
  Nfa nfa(m);
  for (size_t s = 0; s < dfa.num_states(); ++s) {
    nfa.AddState(dfa.accepting(static_cast<Dfa::State>(s)));
  }
  nfa.SetStart(dfa.start());
  // Group each state's moves by target so edges carry symbol sets.
  for (size_t s = 0; s < dfa.num_states(); ++s) {
    std::map<Dfa::State, SymbolSet> by_target;
    for (size_t sym = 0; sym < m; ++sym) {
      Dfa::State to =
          dfa.Step(static_cast<Dfa::State>(s), static_cast<SymbolId>(sym));
      auto [it, inserted] = by_target.emplace(to, SymbolSet(m));
      it->second.Add(static_cast<SymbolId>(sym));
    }
    for (auto& [to, on] : by_target) {
      nfa.AddEdge(static_cast<Nfa::State>(s), std::move(on), to);
    }
  }
  return nfa;
}

Dfa CloneStartIfReentrant(const Dfa& dfa) {
  const size_t m = dfa.alphabet_size();
  bool reentrant = false;
  for (size_t s = 0; s < dfa.num_states() && !reentrant; ++s) {
    for (size_t sym = 0; sym < m && !reentrant; ++sym) {
      if (dfa.Step(static_cast<Dfa::State>(s), static_cast<SymbolId>(sym)) ==
          dfa.start()) {
        reentrant = true;
      }
    }
  }
  if (!reentrant) return dfa;

  Dfa out(m, dfa.num_states() + 1);
  for (size_t s = 0; s < dfa.num_states(); ++s) {
    out.SetAccepting(static_cast<Dfa::State>(s),
                     dfa.accepting(static_cast<Dfa::State>(s)));
    for (size_t sym = 0; sym < m; ++sym) {
      out.SetStep(static_cast<Dfa::State>(s), static_cast<SymbolId>(sym),
                  dfa.Step(static_cast<Dfa::State>(s),
                           static_cast<SymbolId>(sym)));
    }
  }
  Dfa::State fresh = static_cast<Dfa::State>(dfa.num_states());
  out.SetAccepting(fresh, dfa.accepting(dfa.start()));
  for (size_t sym = 0; sym < m; ++sym) {
    out.SetStep(fresh, static_cast<SymbolId>(sym),
                dfa.Step(dfa.start(), static_cast<SymbolId>(sym)));
  }
  out.SetStart(fresh);
  return out;
}

Dfa ComplementSigmaPlus(const Dfa& dfa) {
  Dfa out = CloneStartIfReentrant(dfa);
  for (size_t s = 0; s < out.num_states(); ++s) {
    out.SetAccepting(static_cast<Dfa::State>(s),
                     !out.accepting(static_cast<Dfa::State>(s)));
  }
  // The start state represents only ε, which is not a history point.
  out.SetAccepting(out.start(), false);
  return out;
}

Dfa IntersectDfa(const Dfa& a, const Dfa& b) {
  const size_t m = a.alphabet_size();
  std::map<std::pair<Dfa::State, Dfa::State>, Dfa::State> ids;
  std::vector<std::pair<Dfa::State, Dfa::State>> pairs;

  auto intern = [&](Dfa::State x, Dfa::State y) -> Dfa::State {
    auto [it, inserted] =
        ids.emplace(std::make_pair(x, y), static_cast<Dfa::State>(pairs.size()));
    if (inserted) pairs.emplace_back(x, y);
    return it->second;
  };

  Dfa::State start = intern(a.start(), b.start());
  std::vector<std::vector<Dfa::State>> rows;
  for (size_t cur = 0; cur < pairs.size(); ++cur) {
    auto [x, y] = pairs[cur];
    std::vector<Dfa::State> row(m);
    for (size_t sym = 0; sym < m; ++sym) {
      row[sym] = intern(a.Step(x, static_cast<SymbolId>(sym)),
                        b.Step(y, static_cast<SymbolId>(sym)));
    }
    rows.push_back(std::move(row));
  }

  Dfa out(m, pairs.size());
  out.SetStart(start);
  for (size_t s = 0; s < pairs.size(); ++s) {
    out.SetAccepting(static_cast<Dfa::State>(s),
                     a.accepting(pairs[s].first) && b.accepting(pairs[s].second));
    for (size_t sym = 0; sym < m; ++sym) {
      out.SetStep(static_cast<Dfa::State>(s), static_cast<SymbolId>(sym),
                  rows[s][sym]);
    }
  }
  return out;
}

}  // namespace ode
