#ifndef ODE_AUTOMATON_DFA_H_
#define ODE_AUTOMATON_DFA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "automaton/symbol_set.h"

namespace ode {

/// A complete deterministic finite automaton over the trigger alphabet.
///
/// This is the paper's runtime representation (§5): the transition table is
/// stored once per (class, trigger) and each object keeps only the current
/// state — a single integer ("one word per active trigger per object").
class Dfa {
 public:
  using State = int32_t;

  Dfa() = default;
  Dfa(size_t alphabet_size, size_t num_states)
      : alphabet_size_(alphabet_size),
        trans_(alphabet_size * num_states, 0),
        accepting_(num_states, false) {}

  size_t alphabet_size() const { return alphabet_size_; }
  size_t num_states() const { return accepting_.size(); }
  State start() const { return start_; }
  void SetStart(State s) { start_ = s; }

  bool accepting(State s) const { return accepting_[s]; }
  void SetAccepting(State s, bool v) { accepting_[s] = v; }

  State Step(State s, SymbolId sym) const {
    return trans_[static_cast<size_t>(s) * alphabet_size_ + sym];
  }
  void SetStep(State s, SymbolId sym, State to) {
    trans_[static_cast<size_t>(s) * alphabet_size_ + sym] = to;
  }

  /// Runs the whole string from the start state; true iff the final state
  /// accepts (i.e. the event occurs at the last point of this history).
  bool Accepts(const std::vector<SymbolId>& input) const;

  /// Runs the string and records, for each position p (0-based), whether
  /// the prefix ending at p is accepted — the occurrence points E[H].
  std::vector<bool> OccurrencePoints(const std::vector<SymbolId>& input) const;

  /// Approximate memory footprint of the shared transition table in bytes.
  size_t TableBytes() const {
    return trans_.size() * sizeof(State) + accepting_.size();
  }

  std::string ToString() const;

 private:
  size_t alphabet_size_ = 0;
  State start_ = 0;
  std::vector<State> trans_;  // num_states x alphabet_size, row-major.
  std::vector<bool> accepting_;
};

}  // namespace ode

#endif  // ODE_AUTOMATON_DFA_H_
