#include "automaton/dfa.h"

#include "common/strutil.h"

namespace ode {

bool Dfa::Accepts(const std::vector<SymbolId>& input) const {
  State s = start_;
  for (SymbolId sym : input) s = Step(s, sym);
  return accepting_[s];
}

std::vector<bool> Dfa::OccurrencePoints(
    const std::vector<SymbolId>& input) const {
  std::vector<bool> out(input.size(), false);
  State s = start_;
  for (size_t i = 0; i < input.size(); ++i) {
    s = Step(s, input[i]);
    out[i] = accepting_[s];
  }
  return out;
}

std::string Dfa::ToString() const {
  std::string out = StrFormat("DFA: %zu states, start %d, alphabet %zu\n",
                              num_states(), start_, alphabet_size_);
  for (size_t s = 0; s < num_states(); ++s) {
    out += StrFormat("  %zu%s:", s,
                     accepting_[s] ? " (accept)" : "");
    for (size_t a = 0; a < alphabet_size_; ++a) {
      out += StrFormat(" %zu->%d", a,
                       Step(static_cast<State>(s), static_cast<SymbolId>(a)));
    }
    out += "\n";
  }
  return out;
}

}  // namespace ode
