#ifndef ODE_NET_WIRE_H_
#define ODE_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "runtime/metrics.h"

namespace ode {
namespace net {

/// The ingest wire protocol: length-prefixed binary frames over a byte
/// stream (TCP). Every frame is
///
///   u32 payload_len | u8 type | payload (payload_len bytes)
///
/// with all integers little-endian. Every payload begins with a u64
/// sequence number: requests carry a client-chosen seq, replies echo the
/// seq they answer (ACK carries a cumulative watermark instead). See
/// docs/NETWORK.md for the full format table and session semantics.
inline constexpr size_t kFrameHeaderBytes = 5;
/// Upper bound on one frame's payload. A decoder seeing a larger length
/// declares the stream malformed rather than buffering unboundedly.
inline constexpr uint32_t kMaxFramePayload = 1u << 20;
/// Sanity caps inside a POST payload (both far below kMaxFramePayload;
/// they bound allocation before the full payload is validated).
inline constexpr size_t kMaxMethodLen = 4096;
inline constexpr size_t kMaxPostArgs = 1024;
/// Cap on a HELLO identity (mirrors the WAL's kMaxWalIdentityLen).
inline constexpr size_t kMaxIdentityLen = 256;

enum class FrameType : uint8_t {
  // Requests (client → server).
  kPost = 1,     ///< One method invocation; replied to only on failure.
  kDrain = 2,    ///< Barrier; server replies kDrainOk when fully processed.
  kMetrics = 3,  ///< Runtime counter snapshot request.
  kPing = 4,     ///< Liveness probe; server replies kPong.
  kHello = 5,    ///< Durable identity announcement; server replies kHelloOk.
  // Replies (server → client).
  kAck = 16,           ///< Cumulative: every post seq <= watermark that was
                       ///< not individually ERRed has been accepted.
  kDrainOk = 17,       ///< The kDrain with this seq completed.
  kErr = 18,           ///< Typed failure for the request with this seq.
  kPong = 19,          ///< Reply to kPing.
  kMetricsReply = 20,  ///< Serialized RemoteMetrics.
  kHelloOk = 21,       ///< Echoes the kHello seq + the server's max applied
                       ///< seq for that identity (exactly-once handshake).
};

const char* FrameTypeName(FrameType type);

/// Typed error codes carried by kErr frames.
enum class WireError : uint16_t {
  kMalformed = 1,     ///< Protocol violation; the server closes the stream.
  kWouldBlock = 2,    ///< kReject backpressure bounced the post; retry.
  kShuttingDown = 3,  ///< Runtime stopped; the server closes after this.
  kNotFound = 4,      ///< Unknown object/method on the server.
  kInvalidArgument = 5,
  kInternal = 6,
  kUnsupported = 7,   ///< Frame type the server does not accept.
};

const char* WireErrorName(WireError code);

/// Maps a runtime Post/Drain status onto the wire (kOk asserts).
WireError WireErrorFromStatus(const Status& status);
/// Reconstructs a client-side Status from a kErr frame.
Status StatusFromWireError(WireError code, std::string message);

/// Counter snapshot as carried by kMetricsReply: the shard totals and
/// breakdown (histograms are not serialized and arrive zeroed) plus the
/// per-producer (per-connection) attribution.
struct RemoteMetrics {
  runtime::ShardMetricsSnapshot total;
  std::vector<runtime::ShardMetricsSnapshot> shards;
  std::vector<runtime::ProducerMetricsSnapshot> producers;
  /// Class-scope sequencer counters (enabled=false when the serving
  /// runtime evaluates class triggers inline).
  seq::SequencerMetricsSnapshot sequencer;

  std::string ToString() const;
};

/// One decoded frame. A plain product type rather than a variant: only the
/// fields implied by `type` are meaningful, everything else is default.
struct Frame {
  FrameType type = FrameType::kPing;
  uint64_t seq = 0;  ///< Request seq / echoed seq / ACK watermark.
  // kPost:
  Oid oid;
  std::string method;
  std::vector<Value> args;
  // kErr:
  WireError error = WireError::kInternal;
  std::string message;
  // kMetricsReply:
  RemoteMetrics metrics;
  // kHello:
  std::string identity;
  // kHelloOk: the server's highest applied seq for the identity (0 = none).
  uint64_t watermark = 0;
};

// --- Encoders: append one complete frame to *out. -----------------------

/// Unlike the other encoders, AppendPost validates its input against the
/// protocol caps (kMaxMethodLen, kMaxPostArgs, kMaxFramePayload): a post
/// that cannot be encoded as a legal frame returns kInvalidArgument and
/// leaves *out untouched, instead of emitting bytes the server would
/// reject as malformed.
Status AppendPost(std::string* out, uint64_t seq, Oid oid,
                  std::string_view method, const std::vector<Value>& args);
void AppendDrain(std::string* out, uint64_t seq);
/// Validates the identity against kMaxIdentityLen (and rejects an empty
/// one — anonymous sessions simply don't send HELLO).
Status AppendHello(std::string* out, uint64_t seq, std::string_view identity);
void AppendHelloOk(std::string* out, uint64_t seq, uint64_t max_applied);
void AppendMetricsRequest(std::string* out, uint64_t seq);
void AppendPing(std::string* out, uint64_t seq);
void AppendAck(std::string* out, uint64_t watermark);
void AppendDrainOk(std::string* out, uint64_t seq);
void AppendErr(std::string* out, uint64_t seq, WireError code,
               std::string_view message);
void AppendPong(std::string* out, uint64_t seq);
void AppendMetricsReply(std::string* out, uint64_t seq,
                        const RemoteMetrics& metrics);

/// Incremental frame splitter + decoder over a connection's receive
/// stream. Feed arbitrary byte chunks with Append; pull frames with Next.
///
/// Robustness contract (tests/net_codec_test.cc): any byte sequence —
/// truncated, oversized, bit-flipped — yields kNeedMore or kError, never a
/// crash or a read past the buffered bytes. After kError the decoder is
/// poisoned (the stream has lost framing); the connection must be closed.
class FrameDecoder {
 public:
  enum class State {
    kNeedMore,  ///< No complete frame buffered yet.
    kFrame,     ///< *out holds the next frame.
    kError,     ///< Protocol violation; see error(). Terminal.
  };

  /// Buffers `n` more stream bytes.
  void Append(const char* data, size_t n);

  /// Extracts and decodes the next frame if fully buffered.
  State Next(Frame* out);

  const std::string& error() const { return error_; }
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  State Fail(std::string why);

  std::string buf_;
  size_t pos_ = 0;  ///< Consumed prefix of buf_ (compacted lazily).
  bool poisoned_ = false;
  std::string error_;
};

}  // namespace net
}  // namespace ode

#endif  // ODE_NET_WIRE_H_
