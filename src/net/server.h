#ifndef ODE_NET_SERVER_H_
#define ODE_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "net/socket.h"
#include "net/wire.h"
#include "runtime/ingest_runtime.h"
#include "wal/log_format.h"

namespace ode {
namespace net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the choice back with port().
  uint16_t port = 0;
  int backlog = 64;
  size_t max_connections = 256;
  /// Cumulative-ACK cadence: one kAck frame per this many accepted posts
  /// (plus one before every kDrainOk). Lower = tighter client retry
  /// buffers, higher = fewer reply bytes.
  uint64_t ack_every = 1024;
  /// A connection whose pending reply bytes exceed this is dropped — it is
  /// not reading its errors/acks.
  size_t max_write_buffer = 8 * 1024 * 1024;
};

/// Multi-connection poll(2) server bridging the wire protocol onto an
/// IngestRuntime.
///
/// One thread runs the event loop: accept, read, decode, dispatch, reply.
/// Runtime backpressure maps onto the wire as:
///
///  * kBlock      — Post blocks the loop until the shard queue has space.
///                  The loop stops reading every socket, receive windows
///                  fill, and TCP flow control stalls the producers: the
///                  runtime's pace propagates to the clients (head-of-line
///                  blocking across connections is the documented cost).
///  * kReject     — Post returns kWouldBlock; the client gets
///                  ERR_WOULD_BLOCK with the post's seq and does its own
///                  retry/backoff (IngestClient resends at Drain).
///  * kDropNewest — Post returns OK; losses are visible in metrics only.
///
/// A Post after IngestRuntime::Stop() returns kShutdown, which becomes a
/// clean ERR_SHUTTING_DOWN reply, after which the connection is flushed
/// and closed. A malformed frame gets ERR_MALFORMED and the connection is
/// closed (framing is lost).
///
/// Each connection registers a producer with the runtime, so Metrics()
/// attributes accepted/rejected/failed posts per connection. On
/// disconnect the producer is retired: its counters fold into the
/// runtime's aggregate "retired[n]" entry, so the producer list (and the
/// METRICS_REPLY payload) stays bounded by the live connection count even
/// under heavy connection churn.
///
/// Exactly-once: a client that announces a durable identity (kHello)
/// gets replay dedup. The server snapshots the runtime's applied-seq set
/// for that identity at the handshake; a POST whose seq is in the set was
/// applied by a previous connection (or a previous server *process*, when
/// the runtime is durable) — it is ACKed without re-posting. Combined with
/// the client's replay-unacked-on-reconnect, delivery for identified
/// sessions is exactly-once across reconnects and crash-recovery restarts
/// (docs/DURABILITY.md).
class IngestServer {
 public:
  IngestServer(runtime::IngestRuntime* rt, ServerOptions options = {});
  ~IngestServer();  ///< Stops if still running.

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  /// Binds, listens, and launches the event-loop thread.
  /// kFailedPrecondition on a second Start.
  Status Start();

  /// Closes the listener and every connection, joins the loop thread.
  /// Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (valid after Start; useful with options.port = 0).
  uint16_t port() const { return port_; }

  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  uint64_t frames_handled() const {
    return frames_handled_.load(std::memory_order_relaxed);
  }
  /// Posts ACKed via the exactly-once dedup path (seq already applied for
  /// the connection's identity) without re-entering the runtime.
  uint64_t posts_deduped() const {
    return posts_deduped_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn {
    Socket sock;
    std::string peer;
    FrameDecoder decoder;
    std::string out;      ///< Pending reply bytes.
    size_t out_pos = 0;   ///< Flushed prefix of out.
    runtime::ProducerMetrics* producer = nullptr;
    uint64_t last_accepted_seq = 0;  ///< ACK watermark: accepted posts only.
    uint64_t accepted_since_ack = 0;
    /// Durable identity announced by kHello; empty = anonymous session
    /// (no dedup, plain at-least-once).
    std::string identity;
    /// Applied-seq snapshot for `identity`, taken at the handshake. A seq
    /// in this set was applied by an earlier connection: ACK, don't post.
    /// A snapshot suffices — a client never reuses a seq within one
    /// connection, so only pre-handshake seqs can be duplicates.
    wal::SeqSet dedup;
    bool closing = false;  ///< Flush remaining replies, then close.
  };

  void Loop();
  void AcceptOne();
  /// Reads once; decodes and handles every complete frame. False when the
  /// connection should be dropped now (EOF/error with nothing to flush).
  bool HandleReadable(Conn* conn);
  /// Handles one decoded frame. False = enter closing state.
  bool HandleFrame(Conn* conn, Frame&& frame);
  /// Writes as much pending output as the socket accepts. False on a dead
  /// socket.
  bool FlushWrites(Conn* conn);
  void MaybeAck(Conn* conn, bool force);
  /// Retires the connection's producer with the runtime (folding its
  /// counters into the retired aggregate). Called on every path that
  /// destroys a connection.
  void RetireConn(Conn* conn);

  runtime::IngestRuntime* const rt_;
  const ServerOptions options_;
  Socket listener_;
  Socket wake_read_, wake_write_;  ///< Self-pipe: Stop wakes poll().
  uint16_t port_ = 0;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::thread loop_;
  std::atomic<bool> running_{false};
  std::atomic<bool> started_{false};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> frames_handled_{0};
  std::atomic<uint64_t> posts_deduped_{0};
  uint64_t next_conn_id_ = 0;
};

}  // namespace net
}  // namespace ode

#endif  // ODE_NET_SERVER_H_
