#ifndef ODE_NET_SERVER_H_
#define ODE_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "net/socket.h"
#include "net/wire.h"
#include "runtime/ingest_runtime.h"
#include "wal/log_format.h"

namespace ode {
namespace net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the choice back with port().
  uint16_t port = 0;
  int backlog = 64;
  size_t max_connections = 256;
  /// Cumulative-ACK cadence: one kAck frame per this many accepted posts
  /// (plus one before every kDrainOk). Lower = tighter client retry
  /// buffers, higher = fewer reply bytes.
  uint64_t ack_every = 1024;
  /// A connection whose pending reply bytes exceed this is dropped — it is
  /// not reading its errors/acks. (A closing connection still gets one
  /// best-effort flush first, so the promised final ERR is attempted.)
  size_t max_write_buffer = 8 * 1024 * 1024;
  /// IO worker threads (clamped to >= 1). The acceptor thread dispatches
  /// each fresh connection to the least-loaded worker; each worker runs
  /// its own poll(2) loop over its own connection table.
  size_t io_threads = 1;
  /// Per-connection cap on frames parked while the posting shard's queue
  /// is full (kBlock runtimes, see the threading model below). While any
  /// frame is parked the connection's reads are masked, so once the park
  /// budget is spent TCP flow control paces that one peer.
  size_t max_deferred_frames = 256;
};

/// Multi-threaded poll(2) server bridging the wire protocol onto an
/// IngestRuntime.
///
/// Threading model (docs/NETWORK.md#threading-model):
///
///  * One acceptor thread owns the listener: it accepts, sets the socket
///    non-blocking, registers the per-connection producer, and hands the
///    connection to the least-loaded of `io_threads` IO workers through a
///    mutex-protected mailbox + self-pipe wakeup.
///  * Each IO worker owns its connections outright — pollfd set, decoder
///    state, write buffers, ACK watermarks, dedup snapshots — so the data
///    path needs no locking. Per-worker activity folds into the shared
///    server counters (relaxed atomics) and METRICS_REPLY.
///  * One drain-service thread serializes kDrain barriers, so a
///    seconds-long Drain() never wedges an IO worker; DRAIN_OK is routed
///    back to the owning worker by connection id.
///
/// Runtime backpressure maps onto the wire as:
///
///  * kBlock      — the handoff is IngestRuntime::TryPost: a full shard
///                  queue parks the posting frame (and everything after
///                  it, FIFO) in the connection's bounded deferred queue
///                  and masks that connection's reads; shard capacity
///                  wakeups (plus the poll timeout) retry the deferral.
///                  Only the posting connection stalls — no head-of-line
///                  blocking across connections or workers.
///  * kReject     — Post returns kWouldBlock; the client gets
///                  ERR_WOULD_BLOCK with the post's seq and does its own
///                  retry/backoff (IngestClient resends at Drain).
///  * kDropNewest — Post returns OK; losses are visible in metrics only.
///
/// A Post after IngestRuntime::Stop() returns kShutdown, which becomes a
/// clean ERR_SHUTTING_DOWN reply, after which the connection is flushed
/// and closed. A malformed frame gets ERR_MALFORMED and the connection is
/// closed (framing is lost). Stop() flushes each connection's earned ACK
/// watermark best-effort before closing, so a clean shutdown does not
/// strand acked-but-unsent watermarks.
///
/// Each connection registers a producer with the runtime, so Metrics()
/// attributes accepted/rejected/failed posts per connection. On
/// disconnect the producer is retired: its counters fold into the
/// runtime's aggregate "retired[n]" entry, so the producer list (and the
/// METRICS_REPLY payload) stays bounded by the live connection count even
/// under heavy connection churn.
///
/// Exactly-once: a client that announces a durable identity (kHello)
/// gets replay dedup. The server snapshots the runtime's applied-seq set
/// for that identity at the handshake; a POST whose seq is in the set was
/// applied by a previous connection (or a previous server *process*, when
/// the runtime is durable) — it is ACKed without re-posting. Combined with
/// the client's replay-unacked-on-reconnect, delivery for identified
/// sessions is exactly-once across reconnects and crash-recovery restarts
/// (docs/DURABILITY.md). The guarantees are per connection and therefore
/// hold unchanged per worker: deferral is strict FIFO, so a cumulative ACK
/// can never cover a still-parked post.
class IngestServer {
 public:
  IngestServer(runtime::IngestRuntime* rt, ServerOptions options = {});
  ~IngestServer();  ///< Stops if still running.

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  /// Binds, listens, and launches the acceptor + IO worker + drain-service
  /// threads. Call after the runtime's Start() (the capacity listener
  /// registers against the live shards). kFailedPrecondition on a second
  /// Start.
  Status Start();

  /// Closes the listener and every connection and joins all threads. Each
  /// connection's pending ACK watermark is flushed best-effort first.
  /// Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (valid after Start; useful with options.port = 0).
  uint16_t port() const { return port_; }
  /// IO worker count actually running (options.io_threads clamped).
  size_t io_threads() const { return workers_.size(); }

  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  uint64_t frames_handled() const {
    return frames_handled_.load(std::memory_order_relaxed);
  }
  /// Posts ACKed via the exactly-once dedup path (seq already applied for
  /// the connection's identity) without re-entering the runtime.
  uint64_t posts_deduped() const {
    return posts_deduped_.load(std::memory_order_relaxed);
  }
  /// Frames parked at least once behind a full shard queue (kBlock).
  uint64_t frames_deferred() const {
    return frames_deferred_.load(std::memory_order_relaxed);
  }

 private:
  /// A frame parked behind a full shard queue. Posts are held as the
  /// ready-to-enqueue IngestEvent (TryPost hands it back intact on a
  /// bounce); anything else keeps the decoded frame. FIFO discipline over
  /// *all* frame kinds is what keeps the ACK watermark truthful: a later
  /// frame must never be handled while an earlier post is still parked.
  struct DeferredFrame {
    bool is_post = false;
    runtime::IngestEvent event;  ///< Valid when is_post.
    Frame frame;                 ///< Valid when !is_post.
  };

  struct Conn {
    uint64_t id = 0;            ///< Server-unique; drain completions route by it.
    size_t worker = 0;          ///< Owning worker index.
    Socket sock;
    std::string peer;
    FrameDecoder decoder;
    std::string out;      ///< Pending reply bytes.
    size_t out_pos = 0;   ///< Flushed prefix of out.
    runtime::ProducerMetrics* producer = nullptr;
    uint64_t last_accepted_seq = 0;  ///< ACK watermark: accepted posts only.
    uint64_t accepted_since_ack = 0;
    /// Durable identity announced by kHello; empty = anonymous session
    /// (no dedup, plain at-least-once).
    std::string identity;
    /// Applied-seq snapshot for `identity`, taken at the handshake. A seq
    /// in this set was applied by an earlier connection: ACK, don't post.
    /// The snapshot is a lock-free fast path, not the full guarantee — a
    /// predecessor connection may still be draining this identity's
    /// frames on another worker when the snapshot is taken, so seqs it
    /// posts afterwards are missing here. TryPost's atomic applied-seq
    /// check (see IngestRuntime::TryPost) is the authoritative arbiter
    /// that keeps those replays exactly-once.
    wal::SeqSet dedup;
    /// Frames parked behind a full shard queue, strict arrival order.
    /// Non-empty ⇒ reads are masked (undecoded bytes wait in the decoder).
    std::deque<DeferredFrame> deferred;
    uint64_t pending_drains = 0;  ///< kDrain barriers in flight.
    bool closing = false;  ///< Flush remaining replies, then close.
  };

  /// A kDrain barrier outcome travelling back to the owning worker.
  struct DrainDone {
    uint64_t conn_id = 0;
    uint64_t seq = 0;
    Status status;
  };

  /// One IO worker: its thread, wake pipe, thread-owned connection table,
  /// and the mailbox other threads feed (under mu).
  struct Worker {
    size_t index = 0;
    std::thread thread;
    Socket wake_read, wake_write;
    std::mutex mu;  ///< Guards incoming + completions.
    std::vector<std::unique_ptr<Conn>> incoming;  ///< From the acceptor.
    std::vector<DrainDone> completions;           ///< From the drain service.
    std::vector<std::unique_ptr<Conn>> conns;     ///< Worker-thread only.
    /// Connections owned (live + mailbox); the acceptor's load-balance key.
    std::atomic<size_t> load{0};
  };

  enum class FrameResult {
    kContinue,  ///< Handled (reply appended or post accepted).
    kParked,    ///< Full shard: frame sits in conn->deferred, retry later.
    kClose,     ///< Enter closing state (flush, then drop).
  };

  void AcceptLoop();
  void WorkerLoop(Worker* w);
  void DrainServiceLoop();

  /// Reads once; decodes and handles every complete frame. False when the
  /// connection should be dropped now (EOF/error, or reply backlog over
  /// max_write_buffer after a best-effort flush).
  bool HandleReadable(Worker* w, Conn* conn);
  /// Decodes buffered bytes until out of data, the deferral budget is
  /// spent, or the connection enters closing.
  void DecodeBuffered(Worker* w, Conn* conn);
  /// Retries the connection's parked frames in FIFO order; on progress to
  /// empty, resumes decoding the bytes that arrived while reads were
  /// masked. False when the connection should be dropped.
  bool PumpDeferred(Worker* w, Conn* conn);
  /// Handles one decoded non-reply frame (posts go through HandlePost).
  FrameResult DispatchFrame(Worker* w, Conn* conn, Frame&& frame);
  /// The TryPost handoff: dedup check, then a non-blocking post. kParked
  /// leaves *event intact for the caller to park.
  FrameResult HandlePost(Conn* conn, runtime::IngestEvent* event);
  /// Writes as much pending output as the socket accepts. False on a dead
  /// socket.
  bool FlushWrites(Conn* conn);
  void MaybeAck(Conn* conn, bool force);
  /// Retires the connection's producer with the runtime (folding its
  /// counters into the retired aggregate). Called on every path that
  /// destroys a connection.
  void RetireConn(Conn* conn);
  /// Hands a fresh connection to the least-loaded worker.
  void DispatchConn(std::unique_ptr<Conn> conn);
  /// Queues a kDrain barrier for the drain-service thread.
  void SubmitDrain(Conn* conn, uint64_t seq);

  runtime::IngestRuntime* const rt_;
  const ServerOptions options_;
  /// kBlock runtimes defer bounced posts; kReject/kDropNewest never bounce
  /// a TryPost that a blocking Post would have absorbed.
  bool defer_on_full_ = false;
  Socket listener_;
  Socket accept_wake_read_, accept_wake_write_;
  uint16_t port_ = 0;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> started_{false};
  std::atomic<size_t> live_conns_{0};  ///< Across all workers (limit check).
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> frames_handled_{0};
  std::atomic<uint64_t> posts_deduped_{0};
  std::atomic<uint64_t> frames_deferred_{0};
  std::atomic<uint64_t> next_conn_id_{0};

  // Drain service: requests in, completions routed to the owning worker.
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  std::deque<std::pair<size_t, DrainDone>> drain_requests_;  ///< worker, job.
  bool drain_stop_ = false;
  std::thread drain_thread_;
};

}  // namespace net
}  // namespace ode

#endif  // ODE_NET_SERVER_H_
