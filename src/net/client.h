#ifndef ODE_NET_CLIENT_H_
#define ODE_NET_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "net/socket.h"
#include "net/wire.h"

namespace ode {
namespace net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Post() buffers frames and writes once this many bytes accumulate
  /// (pipelining); Flush()/Drain() write immediately.
  size_t flush_threshold = 128 * 1024;
  /// Resend posts the server bounced with ERR_WOULD_BLOCK (kReject
  /// backpressure): Drain() keeps running resend rounds while they make
  /// progress (fewer posts bounce back each time) and gives up with
  /// kWouldBlock after this many consecutive rounds without progress,
  /// backing off with doubling delays while stalled.
  int max_drain_retries = 8;
  std::chrono::microseconds initial_backoff{200};
  /// Redial on a broken connection. Unacked posts are replayed after the
  /// reconnect — delivery becomes at-least-once across a reconnect (the
  /// server may have accepted posts whose ACK was lost).
  bool auto_reconnect = true;
  int max_reconnect_attempts = 3;
  std::chrono::milliseconds reconnect_backoff{50};
  /// SO_RCVTIMEO for blocking reply reads; 0 = wait forever.
  int recv_timeout_ms = 0;
  /// Durable producer identity. When non-empty, every (re)connect opens
  /// with a HELLO announcing it, and the server dedups replayed seqs it
  /// already applied under this identity — upgrading the reconnect path
  /// from at-least-once to exactly-once (docs/DURABILITY.md). Must be
  /// unique per logical producer and at most kMaxIdentityLen bytes.
  std::string identity;
};

/// Blocking client for the ingest wire protocol. Posts are pipelined: they
/// are buffered, written in large batches, and not individually
/// acknowledged — the server replies only with cumulative ACKs, per-seq
/// errors, and barrier completions, which this client processes during
/// Flush()/Drain(). Not thread-safe; use one client per producer thread.
///
/// Delivery semantics: on a healthy connection every post is delivered
/// exactly once (accepted, or bounced and resent by Drain's retry rounds,
/// which re-targets only the bounced seqs). Across an auto-reconnect,
/// unacked posts are replayed, so delivery is at-least-once — unless the
/// client was given a durable identity (ClientOptions::identity), in which
/// case the server recognizes already-applied seqs at replay and the
/// session is exactly-once, even across a server crash-recovery restart.
class IngestClient {
 public:
  explicit IngestClient(ClientOptions options);
  ~IngestClient();

  IngestClient(const IngestClient&) = delete;
  IngestClient& operator=(const IngestClient&) = delete;

  Status Connect();
  void Close();
  bool connected() const { return sock_.valid(); }

  /// Queues one method invocation. Usually returns immediately (the frame
  /// lands in the send buffer); writes when the buffer is full. A non-OK
  /// return reports a transport failure, not a server-side verdict —
  /// server verdicts surface at Drain(). Exception: a post that cannot be
  /// encoded within the protocol caps (method > kMaxMethodLen, more than
  /// kMaxPostArgs args, or an encoded frame over kMaxFramePayload) returns
  /// kInvalidArgument and is not queued.
  Status Post(Oid oid, std::string_view method,
              const std::vector<Value>& args = {});

  /// Writes buffered frames and opportunistically processes any replies
  /// that already arrived (non-blocking read).
  Status Flush();

  /// Full barrier with retry: flushes, sends DRAIN, and blocks until the
  /// server confirms every prior post processed. Posts bounced by kReject
  /// backpressure are resent with doubling backoff (max_drain_retries
  /// rounds); kWouldBlock if some still bounce, kShutdown if the server is
  /// stopping, otherwise the first hard per-post error observed.
  Status Drain();

  /// Requests the server's runtime metrics snapshot (blocking).
  Result<RemoteMetrics> Metrics();

  /// Round-trip liveness probe (blocking).
  Status Ping();

  struct Stats {
    uint64_t posted = 0;     ///< Post() calls accepted into the pipeline.
    uint64_t acked = 0;      ///< Posts confirmed by cumulative ACKs.
    uint64_t rejected = 0;   ///< ERR_WOULD_BLOCK bounces received.
    uint64_t resent = 0;     ///< Bounced posts resent by Drain().
    uint64_t errors = 0;     ///< Hard per-post errors received.
    uint64_t reconnects = 0; ///< Successful redials.
  };
  const Stats& stats() const { return stats_; }

 private:
  struct PendingPost {
    uint64_t seq;
    Oid oid;
    std::string method;
    std::vector<Value> args;
  };

  /// Appends one POST for `event` (with a fresh seq) to the send buffer
  /// and tracks it as unacked. kInvalidArgument (and no state change) when
  /// the post cannot be encoded within the protocol caps.
  Status EncodePost(Oid oid, std::string_view method, std::vector<Value> args);
  /// Writes the whole send buffer to the socket, reconnecting if allowed.
  Status WriteAll();
  /// Processes every buffered/readable reply; with `block`, waits until at
  /// least one frame arrives (or the wait seq shows up).
  Status PumpReplies(bool block, uint64_t wait_seq, bool* saw_wait_seq,
                     Frame* reply = nullptr);
  /// Applies one reply frame to client state.
  void ApplyReply(const Frame& frame);
  /// Flushes, sends one control frame (encoded by `append` with a fresh
  /// seq), and blocks for its reply. Re-sends the control frame when a
  /// mid-send reconnect dropped it (the replayed pipeline carries only
  /// POSTs). kErr replies come back as their mapped Status.
  Status Roundtrip(void (*append)(std::string*, uint64_t), Frame* reply);
  Status Reconnect();

  const ClientOptions options_;
  Socket sock_;
  std::string outbuf_;
  FrameDecoder decoder_;
  uint64_t next_seq_ = 1;
  std::deque<PendingPost> unacked_;   ///< Sent, not yet covered by an ACK.
  std::vector<PendingPost> bounced_;  ///< ERR_WOULD_BLOCK'd; Drain resends.
  Status hard_error_;                 ///< First non-retryable post error.
  bool server_shutting_down_ = false;
  Stats stats_;
};

}  // namespace net
}  // namespace ode

#endif  // ODE_NET_CLIENT_H_
