#include "net/client.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>
#include <utility>

#include "common/strutil.h"

namespace ode {
namespace net {

namespace {
constexpr size_t kReadChunk = 64 * 1024;

bool IsReplyTo(const Frame& frame, uint64_t seq) {
  switch (frame.type) {
    case FrameType::kDrainOk:
    case FrameType::kPong:
    case FrameType::kMetricsReply:
    case FrameType::kErr:
      return frame.seq == seq;
    default:
      return false;
  }
}
}  // namespace

IngestClient::IngestClient(ClientOptions options)
    : options_(std::move(options)) {}

IngestClient::~IngestClient() {
  if (connected() && !outbuf_.empty()) (void)WriteAll();  // Best effort.
  Close();
}

Status IngestClient::Connect() {
  if (connected()) return Status::OK();
  Result<Socket> sock = TcpConnect(options_.host, options_.port);
  if (!sock.ok()) return sock.status();
  sock_ = std::move(sock).value();
  if (options_.recv_timeout_ms > 0) {
    ODE_RETURN_IF_ERROR(SetRecvTimeout(sock_.fd(), options_.recv_timeout_ms));
  }
  decoder_ = FrameDecoder();
  server_shutting_down_ = false;
  if (!options_.identity.empty()) {
    // Open the session with the identity announcement. It rides in the
    // send buffer ahead of whatever is posted (or replayed) next; the
    // HELLO_OK reply is informational and consumed like any other frame.
    ODE_RETURN_IF_ERROR(AppendHello(&outbuf_, next_seq_++, options_.identity));
  }
  return Status::OK();
}

void IngestClient::Close() {
  sock_.Reset();
  outbuf_.clear();
}

Status IngestClient::EncodePost(Oid oid, std::string_view method,
                                std::vector<Value> args) {
  // Validate-then-commit: the seq is consumed and the post tracked only
  // once AppendPost accepted it (a rejected post leaves no state behind).
  ODE_RETURN_IF_ERROR(AppendPost(&outbuf_, next_seq_, oid, method, args));
  uint64_t seq = next_seq_++;
  unacked_.push_back(
      PendingPost{seq, oid, std::string(method), std::move(args)});
  ++stats_.posted;
  return Status::OK();
}

Status IngestClient::Post(Oid oid, std::string_view method,
                          const std::vector<Value>& args) {
  if (!connected()) {
    if (!options_.auto_reconnect) {
      return Status::FailedPrecondition("client is not connected");
    }
    ODE_RETURN_IF_ERROR(Reconnect());
  }
  ODE_RETURN_IF_ERROR(EncodePost(oid, method, args));
  if (outbuf_.size() >= options_.flush_threshold) return Flush();
  return Status::OK();
}

Status IngestClient::Flush() {
  ODE_RETURN_IF_ERROR(WriteAll());
  bool saw = false;
  return PumpReplies(/*block=*/false, /*wait_seq=*/0, &saw);
}

Status IngestClient::WriteAll() {
  if (!connected()) {
    if (!options_.auto_reconnect) {
      return Status::FailedPrecondition("client is not connected");
    }
    // Reconnect rebuilds outbuf_ from the unacked posts, so resuming after
    // a lost connection replays the pipeline even if outbuf_ was cleared.
    ODE_RETURN_IF_ERROR(Reconnect());
  }
  size_t off = 0;
  int reconnect_cycles = 0;
  while (off < outbuf_.size()) {
    ssize_t n = ::send(sock_.fd(), outbuf_.data() + off, outbuf_.size() - off,
                       MSG_NOSIGNAL);
    if (n >= 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    // Broken pipe / reset: redial and replay the unacked pipeline.
    if (!options_.auto_reconnect ||
        ++reconnect_cycles > options_.max_reconnect_attempts) {
      Close();
      return Status::Unavailable(
          StrFormat("send: %s", std::strerror(errno)));
    }
    ODE_RETURN_IF_ERROR(Reconnect());
    off = 0;  // Reconnect rebuilt outbuf_ from the unacked posts.
  }
  outbuf_.clear();
  return Status::OK();
}

Status IngestClient::Reconnect() {
  Close();
  Status last = Status::Unavailable("reconnect disabled");
  for (int attempt = 0; attempt < options_.max_reconnect_attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(options_.reconnect_backoff * attempt);
    }
    Status s = Connect();
    if (s.ok()) {
      ++stats_.reconnects;
      // Replay everything in flight (original seqs) behind the HELLO that
      // Connect just queued: the server may or may not have seen these
      // before the cut — at-least-once across redials, exactly-once when
      // an identity lets the server dedup the replay. Close() emptied
      // outbuf_, so the pipeline rebuilds from scratch here.
      for (const PendingPost& p : unacked_) {
        // Cannot fail: every unacked post already passed AppendPost's
        // validation when it was first encoded.
        (void)AppendPost(&outbuf_, p.seq, p.oid, p.method, p.args);
      }
      return Status::OK();
    }
    last = s;
  }
  return last;
}

void IngestClient::ApplyReply(const Frame& frame) {
  switch (frame.type) {
    case FrameType::kAck:
      while (!unacked_.empty() && unacked_.front().seq <= frame.seq) {
        unacked_.pop_front();
        ++stats_.acked;
      }
      break;
    case FrameType::kErr: {
      if (frame.error == WireError::kShuttingDown) {
        server_shutting_down_ = true;
      }
      auto it = std::lower_bound(
          unacked_.begin(), unacked_.end(), frame.seq,
          [](const PendingPost& p, uint64_t seq) { return p.seq < seq; });
      if (it != unacked_.end() && it->seq == frame.seq) {
        if (frame.error == WireError::kWouldBlock) {
          bounced_.push_back(std::move(*it));
          ++stats_.rejected;
        } else {
          ++stats_.errors;
          if (hard_error_.ok()) {
            hard_error_ = StatusFromWireError(frame.error, frame.message);
          }
        }
        unacked_.erase(it);
      } else if (frame.error != WireError::kWouldBlock && hard_error_.ok()) {
        hard_error_ = StatusFromWireError(frame.error, frame.message);
      }
      break;
    }
    default:
      break;  // kDrainOk/kPong/kMetricsReply are consumed via wait_seq.
  }
}

Status IngestClient::PumpReplies(bool block, uint64_t wait_seq,
                                 bool* saw_wait_seq, Frame* reply) {
  *saw_wait_seq = false;
  Frame frame;
  while (true) {
    FrameDecoder::State state = decoder_.Next(&frame);
    if (state == FrameDecoder::State::kError) {
      Close();
      return Status::InvalidArgument("protocol error from server: " +
                                     decoder_.error());
    }
    if (state == FrameDecoder::State::kFrame) {
      ApplyReply(frame);
      if (wait_seq != 0 && IsReplyTo(frame, wait_seq)) {
        *saw_wait_seq = true;
        if (reply != nullptr) *reply = std::move(frame);
        // Keep draining whatever is already buffered, but stop blocking.
        block = false;
      }
      continue;
    }
    // kNeedMore.
    if (!connected()) {
      return block ? Status::Unavailable("connection closed") : Status::OK();
    }
    char chunk[kReadChunk];
    ssize_t n =
        ::recv(sock_.fd(), chunk, sizeof(chunk), block ? 0 : MSG_DONTWAIT);
    if (n > 0) {
      decoder_.Append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      Close();
      if (!block || *saw_wait_seq) return Status::OK();
      return server_shutting_down_
                 ? Status::Shutdown("server closed the connection")
                 : Status::Unavailable("connection closed by server");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!block) return Status::OK();
      return Status::Unavailable("timed out waiting for server reply");
    }
    Close();
    return Status::Unavailable(StrFormat("recv: %s", std::strerror(errno)));
  }
}

Status IngestClient::Roundtrip(void (*append)(std::string*, uint64_t),
                               Frame* reply) {
  ODE_RETURN_IF_ERROR(WriteAll());  // Flush posts; a reconnect replays them.
  for (int attempt = 0; attempt <= options_.max_reconnect_attempts;
       ++attempt) {
    uint64_t seq = next_seq_++;
    append(&outbuf_, seq);
    uint64_t reconnects_before = stats_.reconnects;
    ODE_RETURN_IF_ERROR(WriteAll());
    if (stats_.reconnects != reconnects_before) {
      // The reconnect rebuilt the pipeline from the unacked POSTs, which
      // drops the control frame we just appended — send a fresh one.
      continue;
    }
    bool saw = false;
    ODE_RETURN_IF_ERROR(PumpReplies(/*block=*/true, seq, &saw, reply));
    if (!saw) return Status::Unavailable("reply lost");
    if (reply->type == FrameType::kErr) {
      return StatusFromWireError(reply->error, reply->message);
    }
    return Status::OK();
  }
  return Status::Unavailable("connection kept dropping mid-request");
}

Status IngestClient::Drain() {
  std::chrono::microseconds backoff = options_.initial_backoff;
  int stalls = 0;
  size_t last_bounced = 0;
  bool first_round = true;
  while (true) {
    if (!first_round) {
      std::this_thread::sleep_for(backoff);
      std::vector<PendingPost> resend = std::move(bounced_);
      bounced_.clear();
      for (PendingPost& p : resend) {
        // Cannot fail: a bounced post already passed validation once.
        (void)EncodePost(p.oid, p.method, std::move(p.args));
        ++stats_.resent;
        --stats_.posted;  // A resend is not a new logical post.
      }
    }
    first_round = false;
    Frame reply;
    ODE_RETURN_IF_ERROR(Roundtrip(AppendDrain, &reply));
    if (server_shutting_down_) {
      return Status::Shutdown("server is shutting down");
    }
    if (!hard_error_.ok()) {
      Status s = hard_error_;
      hard_error_ = Status::OK();
      return s;
    }
    if (bounced_.empty()) return Status::OK();
    // Retry while the rounds make progress; back off (and eventually give
    // up) only across consecutive rounds where nothing got through.
    if (last_bounced == 0 || bounced_.size() < last_bounced) {
      stalls = 0;
      backoff = options_.initial_backoff;
    } else if (++stalls > options_.max_drain_retries) {
      return Status::WouldBlock(
          StrFormat("%zu posts still rejected after %d stalled drain rounds",
                    bounced_.size(), options_.max_drain_retries));
    } else {
      backoff *= 2;
    }
    last_bounced = bounced_.size();
  }
}

Result<RemoteMetrics> IngestClient::Metrics() {
  Frame reply;
  ODE_RETURN_IF_ERROR(Roundtrip(AppendMetricsRequest, &reply));
  return std::move(reply.metrics);
}

Status IngestClient::Ping() {
  Frame reply;
  return Roundtrip(AppendPing, &reply);
}

}  // namespace net
}  // namespace ode
