#ifndef ODE_NET_SOCKET_H_
#define ODE_NET_SOCKET_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace ode {
namespace net {

/// Move-only RAII wrapper around a file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Reset(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.Release()) {}
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Reset(other.Release());
    }
    return *this;
  }

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Closes the current fd (if any) and adopts `fd`.
  void Reset(int fd = -1);
  /// Detaches and returns the fd without closing it.
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// Binds and listens on host:port (TCP, SO_REUSEADDR). Port 0 binds an
/// ephemeral port — read it back with LocalPort.
Result<Socket> TcpListen(const std::string& host, uint16_t port, int backlog);

/// Blocking connect to host:port; TCP_NODELAY is set on success.
/// kUnavailable when the peer refuses or the host does not resolve.
Result<Socket> TcpConnect(const std::string& host, uint16_t port);

/// Accepts one pending connection (the listener must be readable).
/// TCP_NODELAY is set on the accepted socket. `*peer` (optional) receives
/// "ip:port" of the remote end.
Result<Socket> Accept(int listen_fd, std::string* peer);

/// The port a bound socket actually listens on.
Result<uint16_t> LocalPort(int fd);

Status SetNonBlocking(int fd, bool enable);
Status SetNoDelay(int fd);

/// Sets SO_RCVTIMEO; 0 ms means block forever.
Status SetRecvTimeout(int fd, int timeout_ms);

/// Creates a self-pipe wakeup pair with both ends non-blocking: poll the
/// read end, WakePipe the write end from any thread. The server's
/// acceptor/IO-worker threads each own one.
Status OpenWakePipe(Socket* read_end, Socket* write_end);

/// Best-effort single-byte write to a wake pipe's write end (a no-op on an
/// invalid fd or a full pipe — a full pipe already guarantees a pending
/// wakeup). Async-signal-ish cheap; callable with unrelated locks held.
void WakePipe(int write_fd);

/// Discards everything currently readable from a (non-blocking) wake
/// pipe's read end.
void DrainWakePipe(int read_fd);

}  // namespace net
}  // namespace ode

#endif  // ODE_NET_SOCKET_H_
