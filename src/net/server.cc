#include "net/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/strutil.h"

namespace ode {
namespace net {

namespace {
constexpr size_t kReadChunk = 64 * 1024;
}  // namespace

IngestServer::IngestServer(runtime::IngestRuntime* rt, ServerOptions options)
    : rt_(rt), options_(std::move(options)) {}

IngestServer::~IngestServer() { Stop(); }

Status IngestServer::Start() {
  if (started_.exchange(true, std::memory_order_acq_rel)) {
    return Status::FailedPrecondition("ingest server cannot be restarted");
  }
  Result<Socket> listener =
      TcpListen(options_.host, options_.port, options_.backlog);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();
  ODE_RETURN_IF_ERROR(SetNonBlocking(listener_.fd(), true));
  ODE_ASSIGN_OR_RETURN(port_, LocalPort(listener_.fd()));

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    return Status::Internal("pipe: " + std::string(std::strerror(errno)));
  }
  wake_read_.Reset(pipe_fds[0]);
  wake_write_.Reset(pipe_fds[1]);
  ODE_RETURN_IF_ERROR(SetNonBlocking(wake_read_.fd(), true));

  running_.store(true, std::memory_order_release);
  loop_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void IngestServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Wake the poll; the loop notices running_ == false and exits.
  if (wake_write_.valid()) {
    char byte = 0;
    (void)!::write(wake_write_.fd(), &byte, 1);
  }
  if (loop_.joinable()) loop_.join();
  for (const auto& conn : conns_) RetireConn(conn.get());
  conns_.clear();
  listener_.Reset();
  wake_read_.Reset();
  wake_write_.Reset();
}

void IngestServer::Loop() {
  std::vector<pollfd> fds;
  while (running_.load(std::memory_order_acquire)) {
    fds.clear();
    fds.push_back(pollfd{wake_read_.fd(), POLLIN, 0});
    fds.push_back(pollfd{listener_.fd(), POLLIN, 0});
    for (const auto& conn : conns_) {
      short events = 0;
      // A closing connection only flushes; everyone else also reads.
      if (!conn->closing) events |= POLLIN;
      if (conn->out_pos < conn->out.size()) events |= POLLOUT;
      fds.push_back(pollfd{conn->sock.fd(), events, 0});
    }
    int rc = ::poll(fds.data(), fds.size(), /*timeout_ms=*/200);
    if (!running_.load(std::memory_order_acquire)) break;
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;  // Unrecoverable poll failure; drop the server loop.
    }
    if (fds[0].revents & POLLIN) {
      char drain[64];
      while (::read(wake_read_.fd(), drain, sizeof(drain)) > 0) {
      }
    }
    // fds[i + 2] belongs to conns_[i] only for the connections that were
    // polled this round; AcceptOne may append to conns_, so bound the I/O
    // loop by the polled count (fresh connections get polled next round).
    const size_t polled = conns_.size();
    if (fds[1].revents & POLLIN) AcceptOne();

    for (size_t i = 0; i < polled; ++i) {
      Conn* conn = conns_[i].get();
      short revents = fds[i + 2].revents;
      bool alive = true;
      if (revents & (POLLERR | POLLHUP | POLLNVAL)) {
        // Peer is gone; pending replies are undeliverable.
        alive = false;
      } else {
        if (alive && (revents & POLLIN)) alive = HandleReadable(conn);
        if (alive && (revents & (POLLIN | POLLOUT))) alive = FlushWrites(conn);
      }
      // A closing connection dies once its replies are flushed.
      if (alive && conn->closing && conn->out_pos >= conn->out.size()) {
        alive = false;
      }
      if (!alive) {
        RetireConn(conn);
        conns_[i] = nullptr;
      }
    }
    std::erase(conns_, nullptr);
  }
}

void IngestServer::AcceptOne() {
  // Drain the accept backlog (the listener is edge-ish under poll: one
  // POLLIN may cover several pending connections).
  while (true) {
    std::string peer;
    Result<Socket> accepted = Accept(listener_.fd(), &peer);
    if (!accepted.ok()) return;  // EAGAIN or transient failure.
    if (conns_.size() >= options_.max_connections) {
      // Reject politely: one ERR frame, then close.
      std::string reply;
      AppendErr(&reply, 0, WireError::kInternal, "connection limit reached");
      (void)!::send(accepted->fd(), reply.data(), reply.size(), MSG_NOSIGNAL);
      continue;
    }
    auto conn = std::make_unique<Conn>();
    conn->sock = std::move(accepted).value();
    conn->peer = peer;
    if (!SetNonBlocking(conn->sock.fd(), true).ok()) continue;
    conn->producer = rt_->RegisterProducer(
        StrFormat("conn%llu[%s]",
                  static_cast<unsigned long long>(next_conn_id_++),
                  peer.c_str()));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    conns_.push_back(std::move(conn));
  }
}

bool IngestServer::HandleReadable(Conn* conn) {
  char chunk[kReadChunk];
  ssize_t n = ::recv(conn->sock.fd(), chunk, sizeof(chunk), 0);
  if (n == 0) return false;  // EOF.
  if (n < 0) {
    return errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR;
  }
  conn->decoder.Append(chunk, static_cast<size_t>(n));
  Frame frame;
  while (!conn->closing) {
    FrameDecoder::State state = conn->decoder.Next(&frame);
    if (state == FrameDecoder::State::kNeedMore) break;
    if (state == FrameDecoder::State::kError) {
      // Framing is lost: report once, flush, close.
      AppendErr(&conn->out, 0, WireError::kMalformed, conn->decoder.error());
      conn->closing = true;
      break;
    }
    frames_handled_.fetch_add(1, std::memory_order_relaxed);
    if (!HandleFrame(conn, std::move(frame))) {
      conn->closing = true;
      break;
    }
  }
  if (conn->out.size() - conn->out_pos > options_.max_write_buffer) {
    return false;  // Peer is not reading its replies; cut it loose.
  }
  return true;
}

bool IngestServer::HandleFrame(Conn* conn, Frame&& frame) {
  switch (frame.type) {
    case FrameType::kPost: {
      if (!conn->identity.empty() && conn->dedup.Contains(frame.seq)) {
        // Exactly-once replay dedup: an earlier connection (possibly in a
        // previous server process, recovered from the WAL) already applied
        // this seq. ACK it so the client trims its retry buffer, but do
        // not post it again.
        posts_deduped_.fetch_add(1, std::memory_order_relaxed);
        conn->last_accepted_seq = frame.seq;
        ++conn->accepted_since_ack;
        MaybeAck(conn, /*force=*/false);
        return true;
      }
      Status s = rt_->Post(frame.oid, std::move(frame.method),
                           std::move(frame.args), conn->producer,
                           conn->identity, frame.seq);
      if (s.ok()) {
        conn->last_accepted_seq = frame.seq;
        ++conn->accepted_since_ack;
        MaybeAck(conn, /*force=*/false);
        return true;
      }
      // Acknowledge what preceded the failure, then report it with the
      // failing seq so the client can retarget exactly that event.
      MaybeAck(conn, /*force=*/true);
      AppendErr(&conn->out, frame.seq, WireErrorFromStatus(s), s.message());
      return s.code() != StatusCode::kShutdown;
    }
    case FrameType::kDrain: {
      Status s = rt_->Drain();
      MaybeAck(conn, /*force=*/true);
      if (!s.ok()) {
        AppendErr(&conn->out, frame.seq, WireErrorFromStatus(s), s.message());
        return s.code() != StatusCode::kShutdown;
      }
      AppendDrainOk(&conn->out, frame.seq);
      return true;
    }
    case FrameType::kMetrics: {
      runtime::RuntimeMetricsSnapshot snap = rt_->Metrics();
      RemoteMetrics remote;
      remote.total = snap.total;
      remote.shards = std::move(snap.shards);
      remote.producers = std::move(snap.producers);
      remote.sequencer = std::move(snap.sequencer);
      AppendMetricsReply(&conn->out, frame.seq, remote);
      return true;
    }
    case FrameType::kPing:
      AppendPong(&conn->out, frame.seq);
      return true;
    case FrameType::kHello: {
      // The decoder already enforced a non-empty identity within the cap.
      conn->identity = std::move(frame.identity);
      conn->dedup = rt_->AppliedSeqs(conn->identity);
      AppendHelloOk(&conn->out, frame.seq, conn->dedup.max_seq());
      return true;
    }
    default:
      // Reply frame types are not valid requests.
      AppendErr(&conn->out, frame.seq, WireError::kUnsupported,
                StrFormat("%s is not a request", FrameTypeName(frame.type)));
      return false;
  }
}

void IngestServer::RetireConn(Conn* conn) {
  // Fold the connection's producer counters into the runtime's retired
  // aggregate so connection churn cannot grow Metrics() without bound.
  rt_->RetireProducer(conn->producer);
  conn->producer = nullptr;
}

void IngestServer::MaybeAck(Conn* conn, bool force) {
  if (conn->accepted_since_ack == 0) return;
  if (!force && conn->accepted_since_ack < options_.ack_every) return;
  AppendAck(&conn->out, conn->last_accepted_seq);
  conn->accepted_since_ack = 0;
}

bool IngestServer::FlushWrites(Conn* conn) {
  while (conn->out_pos < conn->out.size()) {
    ssize_t n = ::send(conn->sock.fd(), conn->out.data() + conn->out_pos,
                       conn->out.size() - conn->out_pos, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return errno == EINTR;
    }
    conn->out_pos += static_cast<size_t>(n);
  }
  conn->out.clear();
  conn->out_pos = 0;
  return true;
}

}  // namespace net
}  // namespace ode
