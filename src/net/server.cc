#include "net/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/strutil.h"

namespace ode {
namespace net {

namespace {
constexpr size_t kReadChunk = 64 * 1024;
constexpr int kPollTimeoutMs = 200;
}  // namespace

IngestServer::IngestServer(runtime::IngestRuntime* rt, ServerOptions options)
    : rt_(rt), options_(std::move(options)) {}

IngestServer::~IngestServer() { Stop(); }

Status IngestServer::Start() {
  if (started_.exchange(true, std::memory_order_acq_rel)) {
    return Status::FailedPrecondition("ingest server cannot be restarted");
  }
  Result<Socket> listener =
      TcpListen(options_.host, options_.port, options_.backlog);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();
  ODE_RETURN_IF_ERROR(SetNonBlocking(listener_.fd(), true));
  ODE_ASSIGN_OR_RETURN(port_, LocalPort(listener_.fd()));
  ODE_RETURN_IF_ERROR(OpenWakePipe(&accept_wake_read_, &accept_wake_write_));

  // Only kBlock runtimes turn a TryPost bounce into a parked frame; the
  // other policies never block a Post, so a bounce is a real rejection.
  defer_on_full_ =
      rt_->options().backpressure == runtime::BackpressurePolicy::kBlock;

  const size_t n = options_.io_threads == 0 ? 1 : options_.io_threads;
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto w = std::make_unique<Worker>();
    w->index = i;
    ODE_RETURN_IF_ERROR(OpenWakePipe(&w->wake_read, &w->wake_write));
    workers_.push_back(std::move(w));
  }
  // Shard-capacity wakeups: when a previously-full queue frees space,
  // every worker gets a kick so parked connections retry their deferred
  // frames promptly (the poll timeout is the lost-wakeup backstop). The
  // listener runs on shard worker threads; WakePipe is non-blocking.
  rt_->SetCapacityListener([this](size_t) {
    for (const auto& w : workers_) WakePipe(w->wake_write.fd());
  });

  running_.store(true, std::memory_order_release);
  drain_thread_ = std::thread([this] { DrainServiceLoop(); });
  for (auto& w : workers_) {
    Worker* raw = w.get();
    raw->thread = std::thread([this, raw] { WorkerLoop(raw); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void IngestServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Unhook the capacity listener first: it synchronizes on the shard queue
  // mutexes, so once it returns no shard thread can touch the worker wake
  // pipes we are about to close.
  rt_->SetCapacityListener(nullptr);
  WakePipe(accept_wake_write_.fd());
  for (const auto& w : workers_) WakePipe(w->wake_write.fd());
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    drain_stop_ = true;
  }
  drain_cv_.notify_all();
  if (drain_thread_.joinable()) drain_thread_.join();

  // Single-threaded teardown: every thread is joined, so the connection
  // tables are ours. Send each connection the ACK watermark it has earned
  // (best-effort — a clean shutdown must not strand acked-but-unsent
  // watermarks), flush, and retire its producer.
  for (auto& w : workers_) {
    {
      std::lock_guard<std::mutex> lock(w->mu);
      for (auto& conn : w->incoming) w->conns.push_back(std::move(conn));
      w->incoming.clear();
      w->completions.clear();
    }
    for (const auto& conn : w->conns) {
      if (conn->sock.valid()) {
        MaybeAck(conn.get(), /*force=*/true);
        (void)FlushWrites(conn.get());
      }
      RetireConn(conn.get());
    }
    w->conns.clear();
    w->wake_read.Reset();
    w->wake_write.Reset();
  }
  listener_.Reset();
  accept_wake_read_.Reset();
  accept_wake_write_.Reset();
  live_conns_.store(0, std::memory_order_relaxed);
}

void IngestServer::AcceptLoop() {
  std::array<pollfd, 2> fds;
  while (running_.load(std::memory_order_acquire)) {
    fds[0] = pollfd{accept_wake_read_.fd(), POLLIN, 0};
    fds[1] = pollfd{listener_.fd(), POLLIN, 0};
    int rc = ::poll(fds.data(), fds.size(), kPollTimeoutMs);
    if (!running_.load(std::memory_order_acquire)) break;
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;  // Unrecoverable poll failure; drop the acceptor.
    }
    if (fds[0].revents & POLLIN) DrainWakePipe(accept_wake_read_.fd());
    if (!(fds[1].revents & POLLIN)) continue;
    // Drain the accept backlog (the listener is edge-ish under poll: one
    // POLLIN may cover several pending connections).
    while (true) {
      std::string peer;
      Result<Socket> accepted = Accept(listener_.fd(), &peer);
      if (!accepted.ok()) break;  // EAGAIN or transient failure.
      // Non-blocking *before* any courtesy traffic: the fresh socket
      // inherits blocking mode, and a reject ERR sent blocking would let
      // one peer with a full receive window stall all accepting.
      if (!SetNonBlocking(accepted->fd(), true).ok()) continue;
      if (live_conns_.load(std::memory_order_relaxed) >=
          options_.max_connections) {
        // Reject politely but best-effort: one ERR frame if the socket
        // takes it immediately, then close either way.
        std::string reply;
        AppendErr(&reply, 0, WireError::kInternal, "connection limit reached");
        (void)!::send(accepted->fd(), reply.data(), reply.size(),
                      MSG_NOSIGNAL);
        continue;
      }
      auto conn = std::make_unique<Conn>();
      conn->id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
      conn->sock = std::move(accepted).value();
      conn->peer = peer;
      conn->producer = rt_->RegisterProducer(
          StrFormat("conn%llu[%s]", static_cast<unsigned long long>(conn->id),
                    peer.c_str()));
      connections_accepted_.fetch_add(1, std::memory_order_relaxed);
      live_conns_.fetch_add(1, std::memory_order_relaxed);
      DispatchConn(std::move(conn));
    }
  }
}

void IngestServer::DispatchConn(std::unique_ptr<Conn> conn) {
  Worker* best = workers_[0].get();
  size_t best_load = best->load.load(std::memory_order_relaxed);
  for (size_t i = 1; i < workers_.size(); ++i) {
    size_t load = workers_[i]->load.load(std::memory_order_relaxed);
    if (load < best_load) {
      best = workers_[i].get();
      best_load = load;
    }
  }
  conn->worker = best->index;
  best->load.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(best->mu);
    best->incoming.push_back(std::move(conn));
  }
  WakePipe(best->wake_write.fd());
}

void IngestServer::WorkerLoop(Worker* w) {
  std::vector<pollfd> fds;
  std::vector<DrainDone> done;
  while (running_.load(std::memory_order_acquire)) {
    fds.clear();
    fds.push_back(pollfd{w->wake_read.fd(), POLLIN, 0});
    for (const auto& conn : w->conns) {
      short events = 0;
      // Reads are masked while frames are parked (strict FIFO — nothing
      // newer may be handled first) and once the connection is closing.
      if (!conn->closing && conn->deferred.empty()) events |= POLLIN;
      if (conn->out_pos < conn->out.size()) events |= POLLOUT;
      fds.push_back(pollfd{conn->sock.fd(), events, 0});
    }
    int rc = ::poll(fds.data(), fds.size(), kPollTimeoutMs);
    if (!running_.load(std::memory_order_acquire)) break;
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;  // Unrecoverable poll failure; drop this worker.
    }
    if (fds[0].revents & POLLIN) DrainWakePipe(w->wake_read.fd());

    // Mailbox: adopt fresh connections, collect drain-barrier completions.
    done.clear();
    {
      std::lock_guard<std::mutex> lock(w->mu);
      for (auto& conn : w->incoming) w->conns.push_back(std::move(conn));
      w->incoming.clear();
      done.swap(w->completions);
    }
    for (DrainDone& d : done) {
      Conn* conn = nullptr;
      for (const auto& c : w->conns) {
        if (c->id == d.conn_id) {
          conn = c.get();
          break;
        }
      }
      if (conn == nullptr) continue;  // Died while the barrier ran.
      --conn->pending_drains;
      if (d.status.ok()) {
        AppendDrainOk(&conn->out, d.seq);
      } else {
        AppendErr(&conn->out, d.seq, WireErrorFromStatus(d.status),
                  d.status.message());
        if (d.status.code() == StatusCode::kShutdown) conn->closing = true;
      }
    }

    // fds[i + 1] belongs to conns[i] only for the connections that were
    // polled this round; just-adopted ones (appended above, so earlier
    // indices are stable) get revents 0 and only take the deferred/flush
    // passes.
    for (size_t i = 0; i < w->conns.size(); ++i) {
      Conn* conn = w->conns[i].get();
      short revents = i + 1 < fds.size() ? fds[i + 1].revents : 0;
      bool alive = true;
      if (revents & (POLLERR | POLLHUP | POLLNVAL)) {
        // Peer is gone; pending replies are undeliverable.
        alive = false;
      } else {
        if (alive && (revents & POLLIN)) alive = HandleReadable(w, conn);
        // Retry parked frames every round: capacity wakeups are a latency
        // optimization, the poll timeout guarantees progress.
        if (alive && !conn->deferred.empty()) alive = PumpDeferred(w, conn);
        if (alive && conn->out_pos < conn->out.size()) {
          alive = FlushWrites(conn);
        }
      }
      // A closing connection dies once its replies are flushed and no
      // drain barrier is still in flight for it. Parked frames on a
      // closing connection are dropped un-ACKed — an identified client
      // replays them, which is exactly the at-least-once contract.
      if (alive && conn->closing && conn->out_pos >= conn->out.size() &&
          conn->pending_drains == 0) {
        alive = false;
      }
      if (!alive) {
        RetireConn(conn);
        live_conns_.fetch_sub(1, std::memory_order_relaxed);
        w->load.fetch_sub(1, std::memory_order_relaxed);
        w->conns[i] = nullptr;
      }
    }
    std::erase(w->conns, nullptr);
  }
}

void IngestServer::DrainServiceLoop() {
  while (true) {
    std::pair<size_t, DrainDone> req;
    {
      std::unique_lock<std::mutex> lock(drain_mu_);
      drain_cv_.wait(lock,
                     [&] { return drain_stop_ || !drain_requests_.empty(); });
      // Pending barriers die with their connections at Stop.
      if (drain_stop_) return;
      req = std::move(drain_requests_.front());
      drain_requests_.pop_front();
    }
    req.second.status = rt_->Drain();
    Worker* w = workers_[req.first].get();
    {
      std::lock_guard<std::mutex> lock(w->mu);
      w->completions.push_back(std::move(req.second));
    }
    WakePipe(w->wake_write.fd());
  }
}

void IngestServer::SubmitDrain(Conn* conn, uint64_t seq) {
  DrainDone job;
  job.conn_id = conn->id;
  job.seq = seq;
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    drain_requests_.emplace_back(conn->worker, std::move(job));
  }
  drain_cv_.notify_one();
}

bool IngestServer::HandleReadable(Worker* w, Conn* conn) {
  char chunk[kReadChunk];
  ssize_t n = ::recv(conn->sock.fd(), chunk, sizeof(chunk), 0);
  if (n == 0) return false;  // EOF.
  if (n < 0) {
    return errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR;
  }
  conn->decoder.Append(chunk, static_cast<size_t>(n));
  DecodeBuffered(w, conn);
  if (conn->out.size() - conn->out_pos > options_.max_write_buffer) {
    // The peer is not reading its replies: cut it loose — but attempt the
    // final flush first, so a closing connection's promised ERR (and any
    // earned ACKs) get their one chance on the wire.
    (void)FlushWrites(conn);
    return false;
  }
  return true;
}

void IngestServer::DecodeBuffered(Worker* w, Conn* conn) {
  Frame frame;
  while (!conn->closing &&
         conn->deferred.size() < options_.max_deferred_frames) {
    FrameDecoder::State state = conn->decoder.Next(&frame);
    if (state == FrameDecoder::State::kNeedMore) return;
    if (state == FrameDecoder::State::kError) {
      // Framing is lost: report once, flush, close.
      AppendErr(&conn->out, 0, WireError::kMalformed, conn->decoder.error());
      conn->closing = true;
      return;
    }
    frames_handled_.fetch_add(1, std::memory_order_relaxed);
    FrameResult r = FrameResult::kContinue;
    if (frame.type == FrameType::kPost) {
      runtime::IngestEvent event;
      event.oid = frame.oid;
      event.method = std::move(frame.method);
      event.args = std::move(frame.args);
      event.producer_id = conn->identity;
      event.producer_seq = frame.seq;
      // Strict FIFO: with frames already parked, this post queues behind
      // them whatever the shard occupancy — handling it early would let a
      // cumulative ACK cover a still-parked predecessor.
      r = conn->deferred.empty() ? HandlePost(conn, &event)
                                 : FrameResult::kParked;
      if (r == FrameResult::kParked) {
        frames_deferred_.fetch_add(1, std::memory_order_relaxed);
        DeferredFrame parked;
        parked.is_post = true;
        parked.event = std::move(event);
        conn->deferred.push_back(std::move(parked));
        continue;
      }
    } else if (!conn->deferred.empty()) {
      // Control frames queue behind parked posts too: their replies (a
      // DRAIN barrier especially) must observe the connection's frame
      // order.
      frames_deferred_.fetch_add(1, std::memory_order_relaxed);
      DeferredFrame parked;
      parked.frame = std::move(frame);
      conn->deferred.push_back(std::move(parked));
      continue;
    } else {
      r = DispatchFrame(w, conn, std::move(frame));
    }
    if (r == FrameResult::kClose) {
      conn->closing = true;
      return;
    }
  }
}

bool IngestServer::PumpDeferred(Worker* w, Conn* conn) {
  while (!conn->deferred.empty() && !conn->closing) {
    DeferredFrame& head = conn->deferred.front();
    FrameResult r;
    if (head.is_post) {
      r = HandlePost(conn, &head.event);
      if (r == FrameResult::kParked) return true;  // Still full; stay parked.
    } else {
      r = DispatchFrame(w, conn, std::move(head.frame));
    }
    conn->deferred.pop_front();
    if (r == FrameResult::kClose) conn->closing = true;
  }
  if (conn->closing) return true;  // The close logic reaps once flushed.
  // Reads were masked while frames were parked; bytes that piled up in the
  // decoder meanwhile are decodable again now.
  DecodeBuffered(w, conn);
  if (conn->out.size() - conn->out_pos > options_.max_write_buffer) {
    (void)FlushWrites(conn);
    return false;
  }
  return true;
}

IngestServer::FrameResult IngestServer::HandlePost(
    Conn* conn, runtime::IngestEvent* event) {
  const uint64_t seq = event->producer_seq;
  if (!conn->identity.empty() && conn->dedup.Contains(seq)) {
    // Exactly-once replay dedup: an earlier connection (possibly in a
    // previous server process, recovered from the WAL) already applied
    // this seq. ACK it so the client trims its retry buffer, but do not
    // post it again.
    posts_deduped_.fetch_add(1, std::memory_order_relaxed);
    conn->last_accepted_seq = seq;
    ++conn->accepted_since_ack;
    MaybeAck(conn, /*force=*/false);
    return FrameResult::kContinue;
  }
  bool duplicate = false;
  Status s = rt_->TryPost(event, conn->producer, &duplicate);
  if (s.ok()) {
    // The runtime's atomic applied-seq check is the authoritative dedup:
    // it catches replayed seqs the HELLO snapshot missed because the
    // predecessor connection was still draining on another worker.
    if (duplicate) posts_deduped_.fetch_add(1, std::memory_order_relaxed);
    conn->last_accepted_seq = seq;
    ++conn->accepted_since_ack;
    MaybeAck(conn, /*force=*/false);
    return FrameResult::kContinue;
  }
  if (defer_on_full_ && s.code() == StatusCode::kWouldBlock) {
    // The shard queue (or the checkpoint gate) is full/held; *event came
    // back intact. Park it instead of blocking the worker.
    return FrameResult::kParked;
  }
  // Acknowledge what preceded the failure, then report it with the
  // failing seq so the client can retarget exactly that event.
  MaybeAck(conn, /*force=*/true);
  AppendErr(&conn->out, seq, WireErrorFromStatus(s), s.message());
  return s.code() == StatusCode::kShutdown ? FrameResult::kClose
                                           : FrameResult::kContinue;
}

IngestServer::FrameResult IngestServer::DispatchFrame(Worker* w, Conn* conn,
                                                      Frame&& frame) {
  (void)w;
  switch (frame.type) {
    case FrameType::kPost:
      // Posts are turned into IngestEvents at decode (DecodeBuffered) and
      // retried through HandlePost; they never reach here.
      return FrameResult::kClose;
    case FrameType::kDrain: {
      // One forced ACK before the barrier reply, as documented — then hand
      // the potentially long Drain() to the drain-service thread so this
      // worker keeps serving its other connections meanwhile.
      MaybeAck(conn, /*force=*/true);
      ++conn->pending_drains;
      SubmitDrain(conn, frame.seq);
      return FrameResult::kContinue;
    }
    case FrameType::kMetrics: {
      runtime::RuntimeMetricsSnapshot snap = rt_->Metrics();
      RemoteMetrics remote;
      remote.total = snap.total;
      remote.shards = std::move(snap.shards);
      remote.producers = std::move(snap.producers);
      remote.sequencer = std::move(snap.sequencer);
      AppendMetricsReply(&conn->out, frame.seq, remote);
      return FrameResult::kContinue;
    }
    case FrameType::kPing:
      AppendPong(&conn->out, frame.seq);
      return FrameResult::kContinue;
    case FrameType::kHello: {
      // The decoder already enforced a non-empty identity within the cap.
      conn->identity = std::move(frame.identity);
      conn->dedup = rt_->AppliedSeqs(conn->identity);
      AppendHelloOk(&conn->out, frame.seq, conn->dedup.max_seq());
      return FrameResult::kContinue;
    }
    default:
      // Reply frame types are not valid requests.
      AppendErr(&conn->out, frame.seq, WireError::kUnsupported,
                StrFormat("%s is not a request", FrameTypeName(frame.type)));
      return FrameResult::kClose;
  }
}

void IngestServer::RetireConn(Conn* conn) {
  // Fold the connection's producer counters into the runtime's retired
  // aggregate so connection churn cannot grow Metrics() without bound.
  rt_->RetireProducer(conn->producer);
  conn->producer = nullptr;
}

void IngestServer::MaybeAck(Conn* conn, bool force) {
  if (conn->accepted_since_ack == 0) return;
  if (!force && conn->accepted_since_ack < options_.ack_every) return;
  AppendAck(&conn->out, conn->last_accepted_seq);
  conn->accepted_since_ack = 0;
}

bool IngestServer::FlushWrites(Conn* conn) {
  while (conn->out_pos < conn->out.size()) {
    ssize_t n = ::send(conn->sock.fd(), conn->out.data() + conn->out_pos,
                       conn->out.size() - conn->out_pos, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return errno == EINTR;
    }
    conn->out_pos += static_cast<size_t>(n);
  }
  conn->out.clear();
  conn->out_pos = 0;
  return true;
}

}  // namespace net
}  // namespace ode
