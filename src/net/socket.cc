#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/strutil.h"

namespace ode {
namespace net {

namespace {

Status Errno(const char* what) {
  return Status::Unavailable(StrFormat("%s: %s", what, std::strerror(errno)));
}

/// Resolves host:port for TCP; the caller frees with freeaddrinfo.
Result<addrinfo*> Resolve(const std::string& host, uint16_t port,
                          bool passive) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_protocol = IPPROTO_TCP;
  if (passive) hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  std::string port_str = StrFormat("%u", static_cast<unsigned>(port));
  int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                         port_str.c_str(), &hints, &res);
  if (rc != 0) {
    return Status::Unavailable(
        StrFormat("resolve %s:%u: %s", host.c_str(),
                  static_cast<unsigned>(port), gai_strerror(rc)));
  }
  return res;
}

std::string FormatPeer(const sockaddr_storage& addr) {
  char host[INET6_ADDRSTRLEN] = "?";
  uint16_t port = 0;
  if (addr.ss_family == AF_INET) {
    const sockaddr_in* v4 = reinterpret_cast<const sockaddr_in*>(&addr);
    ::inet_ntop(AF_INET, &v4->sin_addr, host, sizeof(host));
    port = ntohs(v4->sin_port);
  } else if (addr.ss_family == AF_INET6) {
    const sockaddr_in6* v6 = reinterpret_cast<const sockaddr_in6*>(&addr);
    ::inet_ntop(AF_INET6, &v6->sin6_addr, host, sizeof(host));
    port = ntohs(v6->sin6_port);
  }
  return StrFormat("%s:%u", host, static_cast<unsigned>(port));
}

}  // namespace

void Socket::Reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Result<Socket> TcpListen(const std::string& host, uint16_t port, int backlog) {
  ODE_ASSIGN_OR_RETURN(addrinfo * res, Resolve(host, port, /*passive=*/true));
  Status last = Status::Unavailable("no usable address");
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    Socket sock(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!sock.valid()) {
      last = Errno("socket");
      continue;
    }
    int one = 1;
    ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(sock.fd(), ai->ai_addr, ai->ai_addrlen) != 0) {
      last = Errno("bind");
      continue;
    }
    if (::listen(sock.fd(), backlog) != 0) {
      last = Errno("listen");
      continue;
    }
    ::freeaddrinfo(res);
    return sock;
  }
  ::freeaddrinfo(res);
  return last;
}

Result<Socket> TcpConnect(const std::string& host, uint16_t port) {
  ODE_ASSIGN_OR_RETURN(addrinfo * res, Resolve(host, port, /*passive=*/false));
  Status last = Status::Unavailable("no usable address");
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    Socket sock(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!sock.valid()) {
      last = Errno("socket");
      continue;
    }
    if (::connect(sock.fd(), ai->ai_addr, ai->ai_addrlen) != 0) {
      last = Errno("connect");
      continue;
    }
    ::freeaddrinfo(res);
    (void)SetNoDelay(sock.fd());
    return sock;
  }
  ::freeaddrinfo(res);
  return last;
}

Result<Socket> Accept(int listen_fd, std::string* peer) {
  sockaddr_storage addr{};
  socklen_t addr_len = sizeof(addr);
  int fd = ::accept(listen_fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  if (fd < 0) return Errno("accept");
  Socket sock(fd);
  (void)SetNoDelay(fd);
  if (peer != nullptr) *peer = FormatPeer(addr);
  return sock;
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_storage addr{};
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    return Errno("getsockname");
  }
  if (addr.ss_family == AF_INET) {
    return ntohs(reinterpret_cast<const sockaddr_in*>(&addr)->sin_port);
  }
  if (addr.ss_family == AF_INET6) {
    return ntohs(reinterpret_cast<const sockaddr_in6*>(&addr)->sin6_port);
  }
  return Status::Internal("unexpected socket family");
}

Status SetNonBlocking(int fd, bool enable) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  flags = enable ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, flags) < 0) return Errno("fcntl(F_SETFL)");
  return Status::OK();
}

Status SetNoDelay(int fd) {
  int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  return Status::OK();
}

Status SetRecvTimeout(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(SO_RCVTIMEO)");
  }
  return Status::OK();
}

Status OpenWakePipe(Socket* read_end, Socket* write_end) {
  int fds[2];
  if (::pipe(fds) != 0) return Errno("pipe");
  read_end->Reset(fds[0]);
  write_end->Reset(fds[1]);
  ODE_RETURN_IF_ERROR(SetNonBlocking(fds[0], true));
  return SetNonBlocking(fds[1], true);
}

void WakePipe(int write_fd) {
  if (write_fd < 0) return;
  char byte = 0;
  (void)!::write(write_fd, &byte, 1);
}

void DrainWakePipe(int read_fd) {
  char drain[64];
  while (::read(read_fd, drain, sizeof(drain)) > 0) {
  }
}

}  // namespace net
}  // namespace ode
