#include "net/wire.h"

#include <bit>
#include <cstring>

#include "common/strutil.h"

namespace ode {
namespace net {

namespace {

// --- Little-endian primitives over std::string buffers. -----------------

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU16(std::string* out, uint16_t v) {
  PutU8(out, static_cast<uint8_t>(v));
  PutU8(out, static_cast<uint8_t>(v >> 8));
}

void PutU32(std::string* out, uint32_t v) {
  PutU16(out, static_cast<uint16_t>(v));
  PutU16(out, static_cast<uint16_t>(v >> 16));
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

void PutBytes(std::string* out, std::string_view bytes) {
  out->append(bytes.data(), bytes.size());
}

/// Bounds-checked sequential reader. Every Read* returns false (and reads
/// nothing) once the cursor would pass the end; callers check ok() (or the
/// accumulated flag) exactly once at the end of a payload decode.
class Cursor {
 public:
  Cursor(const char* data, size_t size) : data_(data), size_(size) {}

  bool ReadU8(uint8_t* v) {
    if (pos_ + 1 > size_) return Fail();
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }
  bool ReadU16(uint16_t* v) {
    uint8_t lo, hi;
    if (!ReadU8(&lo) || !ReadU8(&hi)) return false;
    *v = static_cast<uint16_t>(lo | (uint16_t{hi} << 8));
    return true;
  }
  bool ReadU32(uint32_t* v) {
    uint16_t lo, hi;
    if (!ReadU16(&lo) || !ReadU16(&hi)) return false;
    *v = lo | (uint32_t{hi} << 16);
    return true;
  }
  bool ReadU64(uint64_t* v) {
    uint32_t lo, hi;
    if (!ReadU32(&lo) || !ReadU32(&hi)) return false;
    *v = lo | (uint64_t{hi} << 32);
    return true;
  }
  bool ReadBytes(size_t n, std::string* v) {
    if (n > size_ || pos_ > size_ - n) return Fail();
    v->assign(data_ + pos_, n);
    pos_ += n;
    return true;
  }

  bool ok() const { return ok_; }
  bool exhausted() const { return pos_ == size_; }

 private:
  bool Fail() {
    ok_ = false;
    return false;
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// --- Value (de)serialization. -------------------------------------------

void PutValue(std::string* out, const Value& v) {
  PutU8(out, static_cast<uint8_t>(v.kind()));
  switch (v.kind()) {
    case ValueKind::kNull:
      break;
    case ValueKind::kInt:
      PutU64(out, static_cast<uint64_t>(v.AsInt().value()));
      break;
    case ValueKind::kDouble:
      PutU64(out, std::bit_cast<uint64_t>(v.AsDouble().value()));
      break;
    case ValueKind::kBool:
      PutU8(out, v.AsBool().value() ? 1 : 0);
      break;
    case ValueKind::kString: {
      std::string s = v.AsString().value();
      PutU32(out, static_cast<uint32_t>(s.size()));
      PutBytes(out, s);
      break;
    }
    case ValueKind::kOid:
      PutU64(out, v.AsOid().value().id);
      break;
  }
}

bool ReadValue(Cursor* in, Value* out) {
  uint8_t kind;
  if (!in->ReadU8(&kind)) return false;
  switch (static_cast<ValueKind>(kind)) {
    case ValueKind::kNull:
      *out = Value();
      return true;
    case ValueKind::kInt: {
      uint64_t v;
      if (!in->ReadU64(&v)) return false;
      *out = Value(static_cast<int64_t>(v));
      return true;
    }
    case ValueKind::kDouble: {
      uint64_t bits;
      if (!in->ReadU64(&bits)) return false;
      *out = Value(std::bit_cast<double>(bits));
      return true;
    }
    case ValueKind::kBool: {
      uint8_t b;
      if (!in->ReadU8(&b)) return false;
      if (b > 1) return false;
      *out = Value(b == 1);
      return true;
    }
    case ValueKind::kString: {
      uint32_t len;
      if (!in->ReadU32(&len)) return false;
      if (len > kMaxFramePayload) return false;
      std::string s;
      if (!in->ReadBytes(len, &s)) return false;
      *out = Value(std::move(s));
      return true;
    }
    case ValueKind::kOid: {
      uint64_t id;
      if (!in->ReadU64(&id)) return false;
      *out = Value(Oid{id});
      return true;
    }
  }
  return false;  // Unknown kind tag.
}

// --- Shard/producer counter (de)serialization. --------------------------

void PutShardCounters(std::string* out, const runtime::ShardMetricsSnapshot& s) {
  PutU64(out, s.enqueued);
  PutU64(out, s.dropped);
  PutU64(out, s.rejected);
  PutU64(out, s.processed);
  PutU64(out, s.fired);
  PutU64(out, s.aborted);
  PutU64(out, s.retried);
  PutU64(out, s.dead_lettered);
  PutU64(out, s.epilogue_failures);
  PutU64(out, s.batches);
  PutU64(out, s.queue_high_water);
}

bool ReadShardCounters(Cursor* in, runtime::ShardMetricsSnapshot* s) {
  return in->ReadU64(&s->enqueued) && in->ReadU64(&s->dropped) &&
         in->ReadU64(&s->rejected) && in->ReadU64(&s->processed) &&
         in->ReadU64(&s->fired) && in->ReadU64(&s->aborted) &&
         in->ReadU64(&s->retried) && in->ReadU64(&s->dead_lettered) &&
         in->ReadU64(&s->epilogue_failures) && in->ReadU64(&s->batches) &&
         in->ReadU64(&s->queue_high_water);
}

/// Opens a frame in *out and returns the offset of its length field, to be
/// patched by CloseFrame once the payload is appended.
size_t OpenFrame(std::string* out, FrameType type) {
  size_t at = out->size();
  PutU32(out, 0);  // Patched below.
  PutU8(out, static_cast<uint8_t>(type));
  return at;
}

void CloseFrame(std::string* out, size_t at) {
  uint32_t payload = static_cast<uint32_t>(out->size() - at - kFrameHeaderBytes);
  (*out)[at] = static_cast<char>(payload);
  (*out)[at + 1] = static_cast<char>(payload >> 8);
  (*out)[at + 2] = static_cast<char>(payload >> 16);
  (*out)[at + 3] = static_cast<char>(payload >> 24);
}

}  // namespace

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kPost: return "POST";
    case FrameType::kDrain: return "DRAIN";
    case FrameType::kMetrics: return "METRICS";
    case FrameType::kPing: return "PING";
    case FrameType::kHello: return "HELLO";
    case FrameType::kAck: return "ACK";
    case FrameType::kDrainOk: return "DRAIN_OK";
    case FrameType::kErr: return "ERR";
    case FrameType::kPong: return "PONG";
    case FrameType::kMetricsReply: return "METRICS_REPLY";
    case FrameType::kHelloOk: return "HELLO_OK";
  }
  return "UNKNOWN";
}

const char* WireErrorName(WireError code) {
  switch (code) {
    case WireError::kMalformed: return "ERR_MALFORMED";
    case WireError::kWouldBlock: return "ERR_WOULD_BLOCK";
    case WireError::kShuttingDown: return "ERR_SHUTTING_DOWN";
    case WireError::kNotFound: return "ERR_NOT_FOUND";
    case WireError::kInvalidArgument: return "ERR_INVALID_ARGUMENT";
    case WireError::kInternal: return "ERR_INTERNAL";
    case WireError::kUnsupported: return "ERR_UNSUPPORTED";
  }
  return "ERR_UNKNOWN";
}

WireError WireErrorFromStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kWouldBlock:
      return WireError::kWouldBlock;
    case StatusCode::kShutdown:
      return WireError::kShuttingDown;
    case StatusCode::kNotFound:
      return WireError::kNotFound;
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
    case StatusCode::kOutOfRange:
      return WireError::kInvalidArgument;
    case StatusCode::kUnimplemented:
      return WireError::kUnsupported;
    default:
      return WireError::kInternal;
  }
}

Status StatusFromWireError(WireError code, std::string message) {
  switch (code) {
    case WireError::kMalformed:
      return Status::InvalidArgument("malformed frame: " + message);
    case WireError::kWouldBlock:
      return Status::WouldBlock(std::move(message));
    case WireError::kShuttingDown:
      return Status::Shutdown(std::move(message));
    case WireError::kNotFound:
      return Status::NotFound(std::move(message));
    case WireError::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case WireError::kUnsupported:
      return Status::Unimplemented(std::move(message));
    case WireError::kInternal:
      return Status::Internal(std::move(message));
  }
  return Status::Internal("unknown wire error: " + message);
}

std::string RemoteMetrics::ToString() const {
  runtime::RuntimeMetricsSnapshot snap;
  snap.total = total;
  snap.shards = shards;
  snap.producers = producers;
  snap.sequencer = sequencer;
  return snap.ToString();
}

Status AppendPost(std::string* out, uint64_t seq, Oid oid,
                  std::string_view method, const std::vector<Value>& args) {
  if (method.size() > kMaxMethodLen) {
    return Status::InvalidArgument(
        StrFormat("method name is %zu bytes, limit %zu", method.size(),
                  kMaxMethodLen));
  }
  if (args.size() > kMaxPostArgs) {
    return Status::InvalidArgument(StrFormat(
        "post has %zu args, limit %zu", args.size(), kMaxPostArgs));
  }
  size_t at = OpenFrame(out, FrameType::kPost);
  PutU64(out, seq);
  PutU64(out, oid.id);
  PutU16(out, static_cast<uint16_t>(method.size()));
  PutBytes(out, method);
  PutU16(out, static_cast<uint16_t>(args.size()));
  for (const Value& v : args) PutValue(out, v);
  size_t payload = out->size() - at - kFrameHeaderBytes;
  if (payload > kMaxFramePayload) {
    out->resize(at);  // Roll the partial frame back out of the buffer.
    return Status::InvalidArgument(
        StrFormat("encoded post payload is %zu bytes, limit %u", payload,
                  kMaxFramePayload));
  }
  CloseFrame(out, at);
  return Status::OK();
}

void AppendDrain(std::string* out, uint64_t seq) {
  size_t at = OpenFrame(out, FrameType::kDrain);
  PutU64(out, seq);
  CloseFrame(out, at);
}

Status AppendHello(std::string* out, uint64_t seq,
                   std::string_view identity) {
  if (identity.empty()) {
    return Status::InvalidArgument("HELLO requires a non-empty identity");
  }
  if (identity.size() > kMaxIdentityLen) {
    return Status::InvalidArgument(
        StrFormat("identity is %zu bytes, limit %zu", identity.size(),
                  kMaxIdentityLen));
  }
  size_t at = OpenFrame(out, FrameType::kHello);
  PutU64(out, seq);
  PutU16(out, static_cast<uint16_t>(identity.size()));
  PutBytes(out, identity);
  CloseFrame(out, at);
  return Status::OK();
}

void AppendHelloOk(std::string* out, uint64_t seq, uint64_t max_applied) {
  size_t at = OpenFrame(out, FrameType::kHelloOk);
  PutU64(out, seq);
  PutU64(out, max_applied);
  CloseFrame(out, at);
}

void AppendMetricsRequest(std::string* out, uint64_t seq) {
  size_t at = OpenFrame(out, FrameType::kMetrics);
  PutU64(out, seq);
  CloseFrame(out, at);
}

void AppendPing(std::string* out, uint64_t seq) {
  size_t at = OpenFrame(out, FrameType::kPing);
  PutU64(out, seq);
  CloseFrame(out, at);
}

void AppendAck(std::string* out, uint64_t watermark) {
  size_t at = OpenFrame(out, FrameType::kAck);
  PutU64(out, watermark);
  CloseFrame(out, at);
}

void AppendDrainOk(std::string* out, uint64_t seq) {
  size_t at = OpenFrame(out, FrameType::kDrainOk);
  PutU64(out, seq);
  CloseFrame(out, at);
}

void AppendErr(std::string* out, uint64_t seq, WireError code,
               std::string_view message) {
  if (message.size() > 1024) message = message.substr(0, 1024);
  size_t at = OpenFrame(out, FrameType::kErr);
  PutU64(out, seq);
  PutU16(out, static_cast<uint16_t>(code));
  PutU16(out, static_cast<uint16_t>(message.size()));
  PutBytes(out, message);
  CloseFrame(out, at);
}

void AppendPong(std::string* out, uint64_t seq) {
  size_t at = OpenFrame(out, FrameType::kPong);
  PutU64(out, seq);
  CloseFrame(out, at);
}

void AppendMetricsReply(std::string* out, uint64_t seq,
                        const RemoteMetrics& metrics) {
  size_t at = OpenFrame(out, FrameType::kMetricsReply);
  PutU64(out, seq);
  PutU32(out, static_cast<uint32_t>(metrics.shards.size()));
  PutShardCounters(out, metrics.total);
  for (const auto& s : metrics.shards) PutShardCounters(out, s);
  PutU32(out, static_cast<uint32_t>(metrics.producers.size()));
  for (const auto& p : metrics.producers) {
    PutU16(out, static_cast<uint16_t>(p.name.size()));
    PutBytes(out, p.name);
    PutU64(out, p.posted);
    PutU64(out, p.accepted);
    PutU64(out, p.rejected);
    PutU64(out, p.failed);
  }
  const seq::SequencerMetricsSnapshot& sq = metrics.sequencer;
  PutU8(out, sq.enabled ? 1 : 0);
  PutU64(out, sq.published);
  PutU64(out, sq.sequenced);
  PutU64(out, sq.firings);
  PutU64(out, sq.dropped);
  PutU64(out, sq.apply_errors);
  PutU64(out, sq.lock_timeouts);
  PutU64(out, sq.queue_depth);
  PutU64(out, sq.queue_high_water);
  PutU64(out, sq.merge_lag);
  PutU64(out, sq.replay_deduped);
  PutU16(out, static_cast<uint16_t>(sq.lane_watermark.size()));
  for (uint64_t w : sq.lane_watermark) PutU64(out, w);
  CloseFrame(out, at);
}

void FrameDecoder::Append(const char* data, size_t n) {
  if (poisoned_) return;
  // Compact the consumed prefix before it dominates the buffer.
  if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, n);
}

FrameDecoder::State FrameDecoder::Fail(std::string why) {
  poisoned_ = true;
  error_ = std::move(why);
  return State::kError;
}

FrameDecoder::State FrameDecoder::Next(Frame* out) {
  if (poisoned_) return State::kError;
  if (buffered() < kFrameHeaderBytes) return State::kNeedMore;
  const char* head = buf_.data() + pos_;
  uint32_t payload_len = static_cast<uint8_t>(head[0]) |
                         (uint32_t{static_cast<uint8_t>(head[1])} << 8) |
                         (uint32_t{static_cast<uint8_t>(head[2])} << 16) |
                         (uint32_t{static_cast<uint8_t>(head[3])} << 24);
  if (payload_len > kMaxFramePayload) {
    return Fail(StrFormat("frame payload %u exceeds limit %u", payload_len,
                          kMaxFramePayload));
  }
  if (buffered() < kFrameHeaderBytes + payload_len) return State::kNeedMore;
  FrameType type = static_cast<FrameType>(static_cast<uint8_t>(head[4]));
  Cursor in(head + kFrameHeaderBytes, payload_len);

  *out = Frame{};
  out->type = type;
  bool ok = in.ReadU64(&out->seq);
  switch (type) {
    case FrameType::kPost: {
      uint64_t oid = 0;
      uint16_t method_len = 0, argc = 0;
      ok = ok && in.ReadU64(&oid) && in.ReadU16(&method_len);
      if (ok && method_len > kMaxMethodLen) ok = false;
      ok = ok && in.ReadBytes(method_len, &out->method) && in.ReadU16(&argc);
      if (ok && argc > kMaxPostArgs) ok = false;
      if (ok) {
        out->oid = Oid{oid};
        out->args.reserve(argc);
        for (uint16_t i = 0; ok && i < argc; ++i) {
          Value v;
          ok = ReadValue(&in, &v);
          if (ok) out->args.push_back(std::move(v));
        }
      }
      break;
    }
    case FrameType::kDrain:
    case FrameType::kMetrics:
    case FrameType::kPing:
    case FrameType::kAck:
    case FrameType::kDrainOk:
    case FrameType::kPong:
      break;  // seq only.
    case FrameType::kHello: {
      uint16_t id_len = 0;
      ok = ok && in.ReadU16(&id_len);
      if (ok && (id_len == 0 || id_len > kMaxIdentityLen)) ok = false;
      ok = ok && in.ReadBytes(id_len, &out->identity);
      break;
    }
    case FrameType::kHelloOk:
      ok = ok && in.ReadU64(&out->watermark);
      break;
    case FrameType::kErr: {
      uint16_t code = 0, msg_len = 0;
      ok = ok && in.ReadU16(&code) && in.ReadU16(&msg_len) &&
           in.ReadBytes(msg_len, &out->message);
      if (ok) {
        if (code < 1 || code > 7) {
          ok = false;
        } else {
          out->error = static_cast<WireError>(code);
        }
      }
      break;
    }
    case FrameType::kMetricsReply: {
      uint32_t shard_count = 0;
      ok = ok && in.ReadU32(&shard_count);
      // 11 u64 counters per shard: reject counts the payload cannot hold.
      if (ok && shard_count > kMaxFramePayload / (11 * 8)) ok = false;
      ok = ok && ReadShardCounters(&in, &out->metrics.total);
      for (uint32_t i = 0; ok && i < shard_count; ++i) {
        runtime::ShardMetricsSnapshot s;
        ok = ReadShardCounters(&in, &s);
        if (ok) out->metrics.shards.push_back(s);
      }
      uint32_t producer_count = 0;
      ok = ok && in.ReadU32(&producer_count);
      if (ok && producer_count > kMaxFramePayload / (4 * 8)) ok = false;
      for (uint32_t i = 0; ok && i < producer_count; ++i) {
        runtime::ProducerMetricsSnapshot p;
        uint16_t name_len = 0;
        ok = in.ReadU16(&name_len) && in.ReadBytes(name_len, &p.name) &&
             in.ReadU64(&p.posted) && in.ReadU64(&p.accepted) &&
             in.ReadU64(&p.rejected) && in.ReadU64(&p.failed);
        if (ok) out->metrics.producers.push_back(std::move(p));
      }
      seq::SequencerMetricsSnapshot& sq = out->metrics.sequencer;
      uint8_t seq_enabled = 0;
      uint16_t lane_count = 0;
      ok = ok && in.ReadU8(&seq_enabled) && in.ReadU64(&sq.published) &&
           in.ReadU64(&sq.sequenced) && in.ReadU64(&sq.firings) &&
           in.ReadU64(&sq.dropped) && in.ReadU64(&sq.apply_errors) &&
           in.ReadU64(&sq.lock_timeouts) && in.ReadU64(&sq.queue_depth) &&
           in.ReadU64(&sq.queue_high_water) && in.ReadU64(&sq.merge_lag) &&
           in.ReadU64(&sq.replay_deduped) && in.ReadU16(&lane_count);
      if (ok && seq_enabled > 1) ok = false;
      if (ok) sq.enabled = seq_enabled != 0;
      for (uint16_t i = 0; ok && i < lane_count; ++i) {
        uint64_t w = 0;
        ok = in.ReadU64(&w);
        if (ok) sq.lane_watermark.push_back(w);
      }
      break;
    }
    default:
      return Fail(StrFormat("unknown frame type %u",
                            static_cast<unsigned>(type)));
  }
  if (!ok || !in.ok()) {
    return Fail(StrFormat("truncated %s payload", FrameTypeName(type)));
  }
  if (!in.exhausted()) {
    return Fail(StrFormat("%s payload has trailing bytes",
                          FrameTypeName(type)));
  }
  pos_ += kFrameHeaderBytes + payload_len;
  return State::kFrame;
}

}  // namespace net
}  // namespace ode
