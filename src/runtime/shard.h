#ifndef ODE_RUNTIME_SHARD_H_
#define ODE_RUNTIME_SHARD_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "runtime/event_queue.h"
#include "runtime/metrics.h"
#include "wal/log_writer.h"

namespace ode {

class Database;

namespace runtime {

/// Invoked (on the shard's worker thread) for every event the shard gives
/// up on: retries exhausted or a non-retryable failure. The status is the
/// last failure. The hook must not post back into the runtime for the same
/// shard synchronously via a blocking path (it runs on the consumer).
using DeadLetterFn =
    std::function<void(const IngestEvent& event, const Status& status)>;

/// How a shard worker responds to a failed event transaction. Retryable
/// failures (kAborted, kWouldBlock, kDeadlock) are retried with doubling
/// backoff up to `max_retries` extra attempts; everything else (unknown
/// object, bad method, arity mismatch) is dead-lettered immediately.
struct ErrorPolicy {
  int max_retries = 3;
  std::chrono::microseconds initial_backoff{50};
};

/// One ingest shard: a bounded MPSC queue plus the single worker thread
/// that drains it. Exactly one shard owns any given object (the runtime
/// routes by object-id hash), so the worker is the only thread mutating
/// that object's automaton state and attributes — the substrate's
/// object-sharding thread model.
///
/// The worker drains up to `max_batch` events per wakeup and runs the
/// whole batch inside one transaction (amortising Begin/Commit and the
/// commit-time event postings over the batch). If the batch transaction
/// fails, the rollback is total, so the worker replays the same events
/// individually — each in its own transaction under the ErrorPolicy —
/// which keeps one poison event from discarding its neighbours.
class Shard {
 public:
  struct Options {
    size_t queue_capacity = 1024;
    size_t max_batch = 64;
    BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
    ErrorPolicy error_policy;
    DeadLetterFn dead_letter;  ///< May be null (drops are still counted).
    bool record_latency = true;
    /// Durable log for this shard (owned by the runtime); null = no WAL.
    /// Accepted events are appended before Enqueue returns, so the log
    /// holds every event the queue ever held, in queue order.
    wal::LogWriter* wal = nullptr;
    /// Invoked at most once, when the WAL append hits its first (sticky)
    /// I/O failure. After the call the shard stops logging and keeps
    /// accepting events in-memory — the runtime escalates (degraded flag,
    /// operator banner) rather than bouncing producers.
    std::function<void(const Status& status)> on_wal_failure;
  };

  Shard(size_t index, Database* db, Options options);
  ~Shard();  ///< Stops (close + join) if still running.

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  /// Launches the worker thread. Idempotent.
  void Start();

  /// Applies the backpressure policy and queues the event.
  ///  * kBlock       — waits for space; always OK while running.
  ///  * kDropNewest  — OK even when full; the event is counted and dropped.
  ///  * kReject      — kWouldBlock when full; the caller decides.
  /// kShutdown after Stop(). When `enqueued` is non-null it reports whether
  /// the event actually entered the queue (false for drops/rejects), which
  /// is what exactly-once dedup keys on — a dropped event was NOT applied.
  /// With a WAL attached, accepted non-replayed events are appended to the
  /// log inside the same critical section as the queue push (log order ==
  /// queue order). The first log I/O failure (sticky in the writer)
  /// permanently disables this shard's logging, fires on_wal_failure, and
  /// is swallowed: the event is already queued and will be processed, so
  /// ingestion continues in degraded (in-memory) mode.
  ///
  /// With `non_blocking` set, a kBlock-policy shard whose queue is full
  /// returns kWouldBlock *without recording anything* and leaves `event`
  /// intact (not moved from): the caller owns the retry. This is the
  /// TryPost handoff the network front end uses to park one connection
  /// instead of wedging an IO worker inside a blocking Push. Other
  /// policies are unaffected (they never block anyway).
  Status Enqueue(IngestEvent&& event, bool* enqueued = nullptr,
                 bool non_blocking = false);

  /// Installs (or clears) the queue's full→not-full space hook; see
  /// EventQueue::SetSpaceCallback for the (locked) invocation contract.
  void SetCapacityCallback(std::function<void()> cb) {
    queue_.SetSpaceCallback(std::move(cb));
  }

  /// True once a WAL append has failed and logging was disabled.
  bool wal_degraded() const {
    return wal_degraded_.load(std::memory_order_acquire);
  }

  /// Checkpoint pause protocol (caller: IngestRuntime::Checkpoint, with
  /// producers gated out of Post): RequestPause flags the worker and kicks
  /// it out of its queue wait; WaitPaused blocks until it parks at the loop
  /// head; Resume lets it run again. While paused the queue is quiescent,
  /// so SnapshotQueue captures exactly the accepted-but-unprocessed events.
  void RequestPause();
  void WaitPaused();
  void Resume();
  std::vector<IngestEvent> SnapshotQueue() const { return queue_.Snapshot(); }

  /// Blocks until every event enqueued before this call has been processed
  /// (committed or dead-lettered). Barrier semantics only hold if no
  /// producer posts to this shard concurrently with the wait.
  void WaitDrained();

  /// Closes the queue (subsequent Enqueues fail), drains what remains, and
  /// joins the worker. Idempotent.
  void Stop();

  size_t index() const { return index_; }
  size_t queue_depth() const { return queue_.size(); }

  /// Counter snapshot, including the queue's depth high-water mark.
  ShardMetricsSnapshot MetricsSnapshot() const;

 private:
  void Run();  ///< Worker loop: PopBatch → ProcessBatch until closed+empty.
  void ParkUntilResumed();  ///< Worker-side half of the pause protocol.
  void ProcessBatch(const std::vector<IngestEvent>& batch);
  /// One transaction around the whole batch.
  Status RunBatch(const std::vector<IngestEvent>& batch);
  /// Retry loop for a single event, ending in success or dead-letter.
  void ProcessOne(const IngestEvent& event);
  /// One transaction around a single event.
  Status TryOne(const IngestEvent& event);
  void DeadLetter(const IngestEvent& event, const Status& status);

  static bool IsRetryable(const Status& status);
  static uint64_t NowNs();

  const size_t index_;
  Database* const db_;
  const Options options_;
  EventQueue queue_;
  mutable ShardMetrics metrics_;
  std::thread worker_;

  // Drain barrier: enqueued_ counts events accepted into the queue,
  // completed_ counts events fully processed. Both under drain_mu_.
  mutable std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  uint64_t enqueued_ = 0;
  uint64_t completed_ = 0;

  /// Serializes producers through the push+WAL-append critical section so
  /// the log's record order matches the queue's event order. Uncontended
  /// (and untaken) when no WAL is attached.
  std::mutex wal_mu_;
  /// Latched by the first WAL append failure (under wal_mu_); read lock-free
  /// by monitoring.
  std::atomic<bool> wal_degraded_{false};

  // Pause protocol state: pause_requested_ is the producer-side flag the
  // worker polls at its loop head; paused_ (under pause_mu_) acknowledges.
  std::atomic<bool> pause_requested_{false};
  std::mutex pause_mu_;
  std::condition_variable pause_cv_;
  bool paused_ = false;
};

}  // namespace runtime
}  // namespace ode

#endif  // ODE_RUNTIME_SHARD_H_
