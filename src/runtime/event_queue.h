#ifndef ODE_RUNTIME_EVENT_QUEUE_H_
#define ODE_RUNTIME_EVENT_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/value.h"

namespace ode {
namespace runtime {

/// What a shard's ingest queue carries: one method invocation destined for
/// one object. The §5 pipeline turns it into the full event set around the
/// call (before/after f, access, read/update) inside the worker's
/// transaction.
struct IngestEvent {
  Oid oid;
  std::string method;
  std::vector<Value> args;
  /// Steady-clock nanoseconds at enqueue (latency histogram); 0 when
  /// latency recording is off.
  uint64_t enqueue_ns = 0;
  /// Durable producer identity + per-producer sequence number, carried into
  /// the WAL for exactly-once replay dedup. Empty/0 for anonymous posts.
  std::string producer_id;
  uint64_t producer_seq = 0;
  /// Set on events re-posted by crash recovery: they are already in the
  /// (old) log, so the shard must not append them again.
  bool replayed = false;
};

/// What a full queue does to a new event (per shard, set at runtime
/// construction):
///  * kBlock      — the posting thread waits for space (lossless, the
///                  default; producers inherit the consumer's pace).
///  * kDropNewest — the new event is discarded and counted (lossy but
///                  non-blocking; telemetry-style workloads).
///  * kReject     — Post returns kWouldBlock and the caller decides
///                  (shed-load-at-the-edge policy).
enum class BackpressurePolicy { kBlock, kDropNewest, kReject };

const char* BackpressurePolicyName(BackpressurePolicy policy);

/// A bounded multi-producer single-consumer FIFO: a fixed ring buffer under
/// one mutex with separate producer/consumer condition variables. Per-object
/// event order is inherited from FIFO order — every event for an object
/// lands in the same shard queue, so the single consumer replays each
/// object's posts in arrival order (the property that keeps object-id
/// sharding faithful to the paper's per-object histories).
class EventQueue {
 public:
  enum class PushResult { kOk, kFull, kClosed };

  explicit EventQueue(size_t capacity);

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Blocks while the queue is full. kClosed if Close() ran first.
  PushResult Push(IngestEvent event);

  /// Never blocks: kFull when at capacity. On kFull/kClosed the event is
  /// left intact (not moved from), so a caller can park it and retry the
  /// exact same event later — the contract the server's deferred-post
  /// queue relies on.
  PushResult TryPush(IngestEvent&& event);

  /// Blocks up to `timeout` for space.
  PushResult PushFor(IngestEvent event, std::chrono::milliseconds timeout);

  /// Dequeues up to `max_events` in FIFO order into `*out` (appended).
  /// Blocks until at least one event is available, the queue is closed
  /// and empty, or Interrupt() fires; returns the number appended (0 at
  /// shutdown or on an observed interrupt — callers distinguish via
  /// closed()/size()).
  size_t PopBatch(std::vector<IngestEvent>* out, size_t max_events);

  /// Wakes the consumer out of a PopBatch wait, making it return 0 once
  /// without dequeuing (even if events are present). Used by the shard's
  /// checkpoint pause to get the worker back to its loop head. The flag is
  /// consumed by the PopBatch that observes it.
  void Interrupt();

  /// Copies the queued events in FIFO order without dequeuing them — the
  /// checkpoint's in-flight capture. Only meaningful while the consumer is
  /// paused and producers are gated out.
  std::vector<IngestEvent> Snapshot() const;

  /// Installs (or clears, with nullptr) a hook invoked whenever a pop
  /// frees space in a previously-*full* queue — the capacity wakeup behind
  /// non-blocking producers that parked on kFull. The hook runs on the
  /// consumer thread *while the queue mutex is held*: it must be cheap and
  /// must not touch the queue. Holding the lock is deliberate — after
  /// SetSpaceCallback(nullptr) returns, no further invocation is possible,
  /// which lets the owner of the callback's captures tear them down safely.
  void SetSpaceCallback(std::function<void()> cb);

  /// No further pushes succeed; the consumer drains what remains.
  void Close();

  bool closed() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }
  /// Maximum queue depth ever observed (after a push).
  size_t high_water() const;

 private:
  PushResult PushLocked(std::unique_lock<std::mutex>& lock,
                        IngestEvent&& event);

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;   ///< Producers wait for space.
  std::condition_variable not_empty_;  ///< The consumer waits for events.
  std::vector<IngestEvent> ring_;      ///< Fixed storage, size == capacity_.
  size_t head_ = 0;                    ///< Index of the oldest event.
  size_t count_ = 0;                   ///< Events currently queued.
  size_t high_water_ = 0;
  bool closed_ = false;
  bool interrupt_ = false;  ///< One-shot PopBatch wakeup (see Interrupt()).
  std::function<void()> space_cb_;  ///< Full→not-full hook (under mu_).
};

}  // namespace runtime
}  // namespace ode

#endif  // ODE_RUNTIME_EVENT_QUEUE_H_
