#include "runtime/event_queue.h"

#include <utility>

namespace ode {
namespace runtime {

const char* BackpressurePolicyName(BackpressurePolicy policy) {
  switch (policy) {
    case BackpressurePolicy::kBlock: return "block";
    case BackpressurePolicy::kDropNewest: return "drop-newest";
    case BackpressurePolicy::kReject: return "reject";
  }
  return "?";
}

EventQueue::EventQueue(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.resize(capacity_);
}

EventQueue::PushResult EventQueue::PushLocked(
    std::unique_lock<std::mutex>& lock, IngestEvent&& event) {
  (void)lock;  // Caller holds mu_.
  ring_[(head_ + count_) % capacity_] = std::move(event);
  ++count_;
  if (count_ > high_water_) high_water_ = count_;
  not_empty_.notify_one();
  return PushResult::kOk;
}

EventQueue::PushResult EventQueue::Push(IngestEvent event) {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock, [&] { return count_ < capacity_ || closed_; });
  if (closed_) return PushResult::kClosed;
  return PushLocked(lock, std::move(event));
}

EventQueue::PushResult EventQueue::TryPush(IngestEvent&& event) {
  std::unique_lock<std::mutex> lock(mu_);
  if (closed_) return PushResult::kClosed;
  if (count_ >= capacity_) return PushResult::kFull;
  return PushLocked(lock, std::move(event));
}

EventQueue::PushResult EventQueue::PushFor(IngestEvent event,
                                           std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!not_full_.wait_for(lock, timeout,
                          [&] { return count_ < capacity_ || closed_; })) {
    return PushResult::kFull;
  }
  if (closed_) return PushResult::kClosed;
  return PushLocked(lock, std::move(event));
}

size_t EventQueue::PopBatch(std::vector<IngestEvent>* out,
                            size_t max_events) {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [&] { return count_ > 0 || closed_ || interrupt_; });
  if (interrupt_) {
    // Consume the one-shot flag and surface a spurious-looking empty pop so
    // the consumer returns to its loop head (where it checks for a pause).
    interrupt_ = false;
    return 0;
  }
  const bool was_full = count_ >= capacity_;
  size_t n = count_ < max_events ? count_ : max_events;
  for (size_t i = 0; i < n; ++i) {
    out->push_back(std::move(ring_[head_]));
    head_ = (head_ + 1) % capacity_;
  }
  count_ -= n;
  if (n > 0) {
    not_full_.notify_all();
    // Capacity wakeup for non-blocking producers: fires only on the
    // full→not-full edge, under mu_ (see SetSpaceCallback).
    if (was_full && space_cb_) space_cb_();
  }
  return n;
}

void EventQueue::SetSpaceCallback(std::function<void()> cb) {
  std::lock_guard<std::mutex> lock(mu_);
  space_cb_ = std::move(cb);
}

void EventQueue::Interrupt() {
  std::lock_guard<std::mutex> lock(mu_);
  interrupt_ = true;
  not_empty_.notify_all();
}

std::vector<IngestEvent> EventQueue::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<IngestEvent> out;
  out.reserve(count_);
  for (size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(head_ + i) % capacity_]);
  }
  return out;
}

void EventQueue::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool EventQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

size_t EventQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

size_t EventQueue::high_water() const {
  std::lock_guard<std::mutex> lock(mu_);
  return high_water_;
}

}  // namespace runtime
}  // namespace ode
