#include "runtime/ingest_runtime.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <utility>

#include "common/strutil.h"
#include "ode/database.h"
#include "seq/order_log.h"
#include "wal/checkpoint.h"

namespace ode {
namespace runtime {

IngestRuntime::IngestRuntime(Database* db, IngestOptions options)
    : db_(db), options_(std::move(options)) {
  if (options_.num_shards == 0) options_.num_shards = 1;
  if (options_.max_batch == 0) options_.max_batch = 1;
}

IngestRuntime::~IngestRuntime() { (void)Stop(); }

Status IngestRuntime::Start() {
  if (started_.exchange(true, std::memory_order_acq_rel)) {
    return Status::FailedPrecondition("ingest runtime cannot be restarted");
  }
  durable_ = options_.durability.enabled();
  wal::RecoveredState recovered;
  if (durable_) {
    ODE_RETURN_IF_ERROR(LoadDurability(&recovered));
  }
  if (options_.class_sequencer) {
    // Before the shards: workers must see the attached sequencer from
    // their very first posted event, and order-log recovery must finish
    // before shard-WAL replay republishes.
    ODE_RETURN_IF_ERROR(StartSequencer(recovered));
  }

  Shard::Options shard_options;
  shard_options.queue_capacity = options_.queue_capacity;
  shard_options.max_batch = options_.max_batch;
  shard_options.backpressure = options_.backpressure;
  shard_options.error_policy = options_.error_policy;
  shard_options.dead_letter = options_.dead_letter;
  shard_options.record_latency = options_.record_latency;
  shard_options.on_wal_failure = [this](const Status& status) {
    DegradeWal("shard wal", status);
  };
  shards_.reserve(options_.num_shards);
  for (size_t i = 0; i < options_.num_shards; ++i) {
    shard_options.wal = durable_ ? wal_writers_[i].get() : nullptr;
    shards_.push_back(std::make_unique<Shard>(i, db_, shard_options));
  }
  for (auto& shard : shards_) shard->Start();
  running_.store(true, std::memory_order_release);

  if (durable_) {
    // Replay through the normal shard/trigger path, then publish a fresh
    // baseline checkpoint: it captures pre-Start database state (objects
    // created before the runtime existed) even on a virgin directory, and
    // lets the old log files — orphans included — be retired.
    //
    // Replay-dedup brackets the shard replay: replayed events republish
    // their class-scope records with regenerated lane sequences, and the
    // sequencer drops those at or below the order-log watermark (already
    // applied pre-crash) — exactly-once for the class automata too.
    if (sequencer_) sequencer_->BeginReplayDedup();
    ODE_RETURN_IF_ERROR(ReplayRecovered(std::move(recovered)));
    ODE_RETURN_IF_ERROR(Drain());
    if (sequencer_) sequencer_->FinishReplay();
    ODE_RETURN_IF_ERROR(Checkpoint());
  }
  return Status::OK();
}

Status IngestRuntime::StartSequencer(const wal::RecoveredState& recovered) {
  seq::Sequencer::Options seq_options;
  seq_options.queue_capacity = options_.seq_queue_capacity;
  // One FIFO lane per shard worker plus the external lane for
  // unregistered threads (direct Database posts, tests).
  seq_options.num_lanes = static_cast<uint32_t>(options_.num_shards) + 1;
  if (durable_) {
    order_log_ = std::make_unique<seq::OrderLogWriter>();
    ODE_RETURN_IF_ERROR(order_log_->Open(
        seq::OrderLogPath(options_.durability.dir), options_.durability));
    seq_options.order_log = order_log_.get();
    seq_options.on_log_failure = [this](const Status& status) {
      DegradeWal("sequencer order log", status);
    };
  }
  sequencer_ = std::make_unique<seq::Sequencer>(db_, seq_options);

  if (durable_) {
    // Re-apply the order log: the exact class-scope apply order of the
    // pre-crash run, re-executed against the checkpoint's restored class
    // automaton states. Usable only when the lane layout survived the
    // restart — otherwise the log's (lane, lane_seq) keys are meaningless
    // and the class order is re-derived from the shard logs instead (a
    // valid order, not necessarily the original one).
    const std::vector<uint64_t>& seqlane = recovered.checkpoint.seqlane;
    bool use_order_log = true;
    std::string why;
    if (recovered.had_checkpoint && !seqlane.empty() &&
        seqlane.size() != seq_options.num_lanes) {
      use_order_log = false;
      why = StrFormat("checkpoint has %zu lanes, runtime has %u",
                      seqlane.size(), seq_options.num_lanes);
    }
    seq::OrderLogReadResult order;
    if (use_order_log) {
      Result<seq::OrderLogReadResult> read =
          seq::ReadOrderLog(seq::OrderLogPath(options_.durability.dir));
      if (!read.ok()) {
        use_order_log = false;
        why = read.status().message();
      } else {
        order = std::move(*read);
        for (const seq::SeqEvent& event : order.records) {
          if (event.lane >= seq_options.num_lanes) {
            use_order_log = false;
            why = StrFormat("record lane %u out of range", event.lane);
            break;
          }
        }
      }
    }
    if (use_order_log) {
      if (seqlane.size() == seq_options.num_lanes) {
        sequencer_->RestoreLaneCounters(seqlane);
      }
      for (const seq::SeqEvent& event : order.records) {
        ODE_RETURN_IF_ERROR(sequencer_->ApplyRecovered(event));
        ++recovery_.sequenced_replayed;
      }
      if (order.torn) {
        recovery_.notes.push_back(StrFormat(
            "sequencer order log: discarded torn tail (%s)",
            order.torn_error.c_str()));
      }
      if (recovery_.sequenced_replayed > 0) {
        recovery_.notes.push_back(StrFormat(
            "sequencer order log: re-applied %llu class-scope record(s)",
            (unsigned long long)recovery_.sequenced_replayed));
      }
    } else {
      // The stale log would interleave incompatible lane layouts with new
      // appends; drop it and note the degraded (order-re-derived) recovery.
      recovery_.notes.push_back(StrFormat(
          "sequencer order log ignored (%s); class-scope order re-derived "
          "from shard logs", why.c_str()));
      (void)order_log_->Truncate();
    }
  }

  db_->AttachSequencer(sequencer_.get());
  return sequencer_->Start();
}

void IngestRuntime::DegradeWal(const char* what, const Status& status) {
  if (wal_degraded_.exchange(true, std::memory_order_acq_rel)) return;
  std::fprintf(stderr,
               "[ode-runtime] DURABILITY DEGRADED: %s append failed: %s\n"
               "[ode-runtime] continuing in-memory; events accepted from "
               "now on will NOT survive a crash\n",
               what, status.message().c_str());
}

Status IngestRuntime::LoadDurability(wal::RecoveredState* recovered) {
  const std::string& dir = options_.durability.dir;
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Internal(StrFormat("mkdir '%s': %s", dir.c_str(),
                                      std::strerror(errno)));
  }
  ODE_ASSIGN_OR_RETURN(*recovered, wal::LoadDurableState(dir));
  recovery_.attempted = true;
  recovery_.had_checkpoint = recovered->had_checkpoint;
  recovery_.skipped_covered = recovered->skipped_covered;
  recovery_.torn_files = recovered->torn_files;
  recovery_.torn_bytes = recovered->torn_bytes;
  recovery_.notes = recovered->notes;

  if (recovered->had_checkpoint) {
    const wal::CheckpointData& checkpoint = recovered->checkpoint;
    ODE_RETURN_IF_ERROR(db_->LoadSnapshotText(checkpoint.snapshot_body));
    if (checkpoint.shard_metrics.size() == options_.num_shards) {
      metrics_baseline_ = checkpoint.shard_metrics;
    } else {
      for (const ShardMetricsSnapshot& m : checkpoint.shard_metrics) {
        m.AddInto(&metrics_extra_base_);
        has_extra_base_ = true;
      }
    }
    if (checkpoint.has_base_metrics) {
      checkpoint.base_metrics.AddInto(&metrics_extra_base_);
      has_extra_base_ = true;
    }
    std::lock_guard<std::mutex> lock(wm_mu_);
    applied_seqs_ = checkpoint.applied;
  }

  wal_writers_.reserve(options_.num_shards);
  for (size_t i = 0; i < options_.num_shards; ++i) {
    uint64_t start_lsn = 0;
    auto it = recovered->file_last_lsn.find(i);
    if (it != recovered->file_last_lsn.end()) start_lsn = it->second;
    auto writer = std::make_unique<wal::LogWriter>();
    // Append mode: the old records stay on disk until the post-replay
    // checkpoint truncates them — a crash mid-recovery just recovers again.
    ODE_RETURN_IF_ERROR(writer->Open(wal::ShardLogPath(dir, i), start_lsn,
                                     options_.durability));
    wal_writers_.push_back(std::move(writer));
  }
  for (const auto& [file, last] : recovered->file_last_lsn) {
    if (file >= options_.num_shards) orphan_covered_[file] = last;
  }
  return Status::OK();
}

Status IngestRuntime::ReplayRecovered(wal::RecoveredState recovered) {
  auto replay_one = [&](wal::WalRecord& record) -> Status {
    IngestEvent event;
    event.oid = record.oid;
    event.method = std::move(record.method);
    event.args = std::move(record.args);
    event.producer_id = std::move(record.producer_id);
    event.producer_seq = record.producer_seq;
    event.replayed = true;
    // A durable event must not be lost to kReject backpressure: retry the
    // bounce until the worker frees space (recovery owns the runtime, so
    // nothing else competes for it). A kWouldBlock bounce leaves the event
    // intact for the next attempt.
    while (true) {
      Status status = PostEvent(&event, nullptr);
      if (status.code() != StatusCode::kWouldBlock) {
        if (status.ok()) ++recovery_.replayed_events;
        return status;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };

  // Old file indices, ascending; per file the checkpoint's in-flight
  // events precede the log's surviving records (they were queued before
  // the records were appended).
  std::vector<size_t> files;
  for (size_t f = 0; f < recovered.checkpoint.inflight.size(); ++f) {
    if (!recovered.checkpoint.inflight[f].empty()) files.push_back(f);
  }
  for (const auto& [f, records] : recovered.replay) {
    if (!records.empty()) files.push_back(f);
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  for (size_t f : files) {
    if (f < recovered.checkpoint.inflight.size()) {
      for (wal::WalRecord& record : recovered.checkpoint.inflight[f]) {
        ODE_RETURN_IF_ERROR(replay_one(record));
      }
    }
    auto it = recovered.replay.find(f);
    if (it != recovered.replay.end()) {
      for (wal::WalRecord& record : it->second) {
        ODE_RETURN_IF_ERROR(replay_one(record));
      }
    }
  }
  return Status::OK();
}

Status IngestRuntime::Post(Oid oid, std::string method,
                           std::vector<Value> args,
                           ProducerMetrics* producer) {
  IngestEvent event;
  event.oid = oid;
  event.method = std::move(method);
  event.args = std::move(args);
  return PostEvent(&event, producer);
}

Status IngestRuntime::Post(Oid oid, std::string method,
                           std::vector<Value> args, ProducerMetrics* producer,
                           std::string_view identity, uint64_t seq) {
  IngestEvent event;
  event.oid = oid;
  event.method = std::move(method);
  event.args = std::move(args);
  event.producer_id = std::string(identity);
  event.producer_seq = seq;
  return PostEvent(&event, producer);
}

Status IngestRuntime::TryPost(IngestEvent* event, ProducerMetrics* producer,
                              bool* duplicate) {
  return PostEvent(event, producer, /*non_blocking=*/true, duplicate);
}

Status IngestRuntime::PostEvent(IngestEvent* event, ProducerMetrics* producer,
                                bool non_blocking, bool* duplicate) {
  Status status;
  bool enqueued = false;
  // Saved before the move: the watermark update below runs after Enqueue
  // consumed the event.
  const std::string identity = event->producer_id;
  const uint64_t seq = event->producer_seq;
  // Identified non-blocking posts (the network front end) hold wm_mu_
  // across check + enqueue + record, making the applied-seq set the
  // authoritative exactly-once arbiter: when a reconnecting client's
  // replay races the dying connection still draining the same frames on
  // another IO worker, exactly one copy of each (identity, seq) can pass
  // the check and enter a queue. Lock order note: this nests
  // wm_mu_ -> post_gate_(shared), while Checkpoint() nests
  // post_gate_(unique) -> wm_mu_; there is no deadlock only because the
  // non-blocking path try_locks the gate and bounces on failure.
  std::unique_lock<std::mutex> wm_lock;
  if (!running()) {
    // Distinguish "never started" from "stopped": front ends translate
    // kShutdown into a clean shutting-down reply and close, while
    // kFailedPrecondition is a caller bug.
    status = started_.load(std::memory_order_acquire)
                 ? Status::Shutdown("ingest runtime is stopped")
                 : Status::FailedPrecondition("ingest runtime is not running");
  } else {
    if (non_blocking && !identity.empty()) {
      wm_lock = std::unique_lock<std::mutex>(wm_mu_);
      auto it = applied_seqs_.find(identity);
      if (it != applied_seqs_.end() && it->second.Contains(seq)) {
        // Accepted by an earlier post of this identity (possibly still
        // queued): report duplicate so the caller ACKs without enqueuing
        // a second copy. *event is left untouched and unconsumed.
        if (duplicate != nullptr) *duplicate = true;
        return Status::OK();
      }
    }
    if (durable_) {
      // Shared side of the checkpoint gate: Checkpoint() takes it unique,
      // so no post can be between "entered the queue" and "appended to
      // the log" while the checkpoint captures both. A non-blocking
      // caller must not park behind the checkpoint's pause window either
      // — bounce with the same park-and-retry contract as a full queue.
      std::shared_lock<std::shared_mutex> gate(post_gate_, std::defer_lock);
      if (non_blocking) {
        if (!gate.try_lock()) {
          return Status::WouldBlock("checkpoint in progress");
        }
      } else {
        gate.lock();
      }
      status = shards_[ShardOf(event->oid)]->Enqueue(std::move(*event),
                                                     &enqueued, non_blocking);
    } else {
      status = shards_[ShardOf(event->oid)]->Enqueue(std::move(*event),
                                                     &enqueued, non_blocking);
    }
  }
  if (non_blocking && status.code() == StatusCode::kWouldBlock &&
      options_.backpressure == BackpressurePolicy::kBlock) {
    // Park-and-retry bounce: *event is intact, the caller will re-post the
    // same event, so recording it (producer counters, applied-seqs) here
    // would double-count the retry.
    return status;
  }
  if (enqueued && !identity.empty()) {
    if (!wm_lock.owns_lock()) {
      wm_lock = std::unique_lock<std::mutex>(wm_mu_);
    }
    applied_seqs_[identity].Add(seq);
  }
  if (producer != nullptr) producer->RecordPost(status);
  return status;
}

void IngestRuntime::SetCapacityListener(
    std::function<void(size_t shard)> listener) {
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (listener) {
      shards_[i]->SetCapacityCallback([listener, i] { listener(i); });
    } else {
      shards_[i]->SetCapacityCallback(nullptr);
    }
  }
}

ProducerMetrics* IngestRuntime::RegisterProducer(std::string name) {
  std::lock_guard<std::mutex> lock(producers_mu_);
  producers_.push_back(std::make_unique<ProducerMetrics>(std::move(name)));
  return producers_.back().get();
}

void IngestRuntime::RetireProducer(ProducerMetrics* producer) {
  if (producer == nullptr) return;
  std::lock_guard<std::mutex> lock(producers_mu_);
  for (auto it = producers_.begin(); it != producers_.end(); ++it) {
    if (it->get() != producer) continue;
    ProducerMetricsSnapshot last = producer->Snapshot();
    retired_.posted += last.posted;
    retired_.accepted += last.accepted;
    retired_.rejected += last.rejected;
    retired_.failed += last.failed;
    ++retired_count_;
    producers_.erase(it);
    return;
  }
}

Status IngestRuntime::Drain() {
  if (!running()) {
    return Status::FailedPrecondition("ingest runtime is not running");
  }
  for (auto& shard : shards_) shard->WaitDrained();
  // Second stage of the barrier: the shard drains guarantee every
  // class-scope record has been *published*; wait until the sequencer has
  // *applied* them all, so "drained" includes class automaton advancement
  // and class-trigger firings.
  if (sequencer_) sequencer_->WaitDrained();
  // All workers are parked on their queues here (nothing mid-commit, as
  // long as producers honour the barrier contract), so reclaiming
  // finished transaction records is safe.
  if (options_.gc_finished_txns_on_drain) db_->txns().GarbageCollect();
  return Status::OK();
}

Status IngestRuntime::Checkpoint() {
  if (!running()) {
    return Status::FailedPrecondition("ingest runtime is not running");
  }
  if (!durable_) {
    return Status::FailedPrecondition("durability is not enabled");
  }
  if (wal_degraded()) {
    // Truncating logs that are missing records would turn degraded
    // durability into silent data loss.
    return Status::FailedPrecondition(
        "wal degraded (a log writer failed); checkpoint refused");
  }
  // Unique side of the post gate: no producer is inside Enqueue, so every
  // accepted event is both in its queue and in its log. Then park the
  // workers so queue contents and database state stop moving.
  std::unique_lock<std::shared_mutex> gate(post_gate_);
  for (auto& shard : shards_) shard->RequestPause();
  for (auto& shard : shards_) shard->WaitPaused();
  // With the workers parked no shard can publish; drain the sequencer so
  // the snapshot's class automaton states and the lane counters are the
  // settled post-apply values.
  if (sequencer_) sequencer_->WaitDrained();
  Status status = CheckpointLocked();
  for (auto& shard : shards_) shard->Resume();
  return status;
}

Status IngestRuntime::CheckpointLocked() {
  wal::CheckpointData data;
  data.num_shards = shards_.size();
  data.inflight.resize(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    for (IngestEvent& event : shards_[i]->SnapshotQueue()) {
      wal::WalRecord record;
      record.oid = event.oid;
      record.method = std::move(event.method);
      record.args = std::move(event.args);
      record.producer_id = std::move(event.producer_id);
      record.producer_seq = event.producer_seq;
      data.inflight[i].push_back(std::move(record));
    }
  }
  ODE_ASSIGN_OR_RETURN(data.snapshot_body, db_->SaveSnapshotText());
  for (size_t i = 0; i < shards_.size(); ++i) {
    ShardMetricsSnapshot m = shards_[i]->MetricsSnapshot();
    if (i < metrics_baseline_.size()) metrics_baseline_[i].AddInto(&m);
    data.shard_metrics.push_back(m);
  }
  if (has_extra_base_) {
    data.base_metrics = metrics_extra_base_;
    data.has_base_metrics = true;
  }
  {
    std::lock_guard<std::mutex> lock(wm_mu_);
    data.applied = applied_seqs_;
  }
  // Lane counters at the quiesce point: everything at or below them is in
  // snapshot_body's class automaton states, and replayed shards resume
  // assigning from them.
  if (sequencer_) data.seqlane = sequencer_->LaneCounters();
  // Every record ever appended is subsumed: processed ones are in the
  // snapshot, queued ones in the inflight lists.
  for (size_t i = 0; i < wal_writers_.size(); ++i) {
    data.covered_lsn[i] = wal_writers_[i]->last_lsn();
  }
  for (const auto& [file, last] : orphan_covered_) {
    uint64_t& slot = data.covered_lsn[file];
    slot = std::max(slot, last);
  }
  ODE_RETURN_IF_ERROR(
      wal::WriteCheckpointFile(options_.durability.dir, data));
  for (auto& writer : wal_writers_) {
    ODE_RETURN_IF_ERROR(writer->Truncate());
  }
  // The order log's records are likewise subsumed by the snapshot's class
  // automaton states.
  if (order_log_) ODE_RETURN_IF_ERROR(order_log_->Truncate());
  for (const auto& entry : orphan_covered_) {
    (void)::unlink(
        wal::ShardLogPath(options_.durability.dir, entry.first).c_str());
  }
  orphan_covered_.clear();
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

wal::SeqSet IngestRuntime::AppliedSeqs(std::string_view identity) const {
  std::lock_guard<std::mutex> lock(wm_mu_);
  auto it = applied_seqs_.find(std::string(identity));
  if (it == applied_seqs_.end()) return wal::SeqSet();
  return it->second;
}

Status IngestRuntime::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return Status::OK();
  }
  for (auto& shard : shards_) shard->Stop();
  // After the shards: their final batches may still publish class-scope
  // records, which Stop applies before joining the merge thread. Detach so
  // post-Stop direct posting falls back to the inline class path.
  if (sequencer_) {
    sequencer_->Stop();
    db_->DetachSequencer();
  }
  // Final durability barrier: group-commit policies may hold acked records
  // unsynced; a clean stop must not lose them.
  Status status = Status::OK();
  for (auto& writer : wal_writers_) {
    Status s = writer->Sync();
    if (status.ok()) status = s;
  }
  return status;
}

size_t IngestRuntime::ShardOf(Oid oid) const {
  // splitmix64 finalizer: spreads sequential oids across shards.
  uint64_t x = oid.id + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<size_t>(x % options_.num_shards);
}

RuntimeMetricsSnapshot IngestRuntime::Metrics() const {
  RuntimeMetricsSnapshot snapshot;
  snapshot.shards.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    ShardMetricsSnapshot s = shards_[i]->MetricsSnapshot();
    if (i < metrics_baseline_.size()) metrics_baseline_[i].AddInto(&s);
    snapshot.shards.push_back(s);
    snapshot.shards.back().AddInto(&snapshot.total);
  }
  if (has_extra_base_) metrics_extra_base_.AddInto(&snapshot.total);
  snapshot.wal.enabled = durable_;
  if (durable_) {
    for (const auto& writer : wal_writers_) {
      snapshot.wal.appends += writer->appends();
      snapshot.wal.fsyncs += writer->fsyncs();
      snapshot.wal.bytes_written += writer->bytes_written();
    }
    snapshot.wal.checkpoints = checkpoints_.load(std::memory_order_relaxed);
    snapshot.wal.replayed_on_recovery = recovery_.replayed_events;
    if (order_log_) {
      snapshot.wal.appends += order_log_->appends();
      snapshot.wal.fsyncs += order_log_->fsyncs();
      snapshot.wal.bytes_written += order_log_->bytes_written();
    }
    snapshot.wal.degraded = wal_degraded();
  }
  if (sequencer_) snapshot.sequencer = sequencer_->Metrics();
  {
    std::lock_guard<std::mutex> lock(producers_mu_);
    snapshot.producers.reserve(producers_.size() + (retired_count_ > 0));
    for (const auto& p : producers_) snapshot.producers.push_back(p->Snapshot());
    if (retired_count_ > 0) {
      ProducerMetricsSnapshot retired = retired_;
      retired.name = StrFormat("retired[%llu]",
                               static_cast<unsigned long long>(retired_count_));
      snapshot.producers.push_back(std::move(retired));
    }
  }
  return snapshot;
}

}  // namespace runtime
}  // namespace ode
