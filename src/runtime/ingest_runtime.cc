#include "runtime/ingest_runtime.h"

#include <utility>

#include "common/strutil.h"
#include "ode/database.h"

namespace ode {
namespace runtime {

IngestRuntime::IngestRuntime(Database* db, IngestOptions options)
    : db_(db), options_(std::move(options)) {
  if (options_.num_shards == 0) options_.num_shards = 1;
  if (options_.max_batch == 0) options_.max_batch = 1;
}

IngestRuntime::~IngestRuntime() { (void)Stop(); }

Status IngestRuntime::Start() {
  if (started_.exchange(true, std::memory_order_acq_rel)) {
    return Status::FailedPrecondition("ingest runtime cannot be restarted");
  }
  Shard::Options shard_options;
  shard_options.queue_capacity = options_.queue_capacity;
  shard_options.max_batch = options_.max_batch;
  shard_options.backpressure = options_.backpressure;
  shard_options.error_policy = options_.error_policy;
  shard_options.dead_letter = options_.dead_letter;
  shard_options.record_latency = options_.record_latency;
  shards_.reserve(options_.num_shards);
  for (size_t i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(i, db_, shard_options));
  }
  for (auto& shard : shards_) shard->Start();
  running_.store(true, std::memory_order_release);
  return Status::OK();
}

Status IngestRuntime::Post(Oid oid, std::string method,
                           std::vector<Value> args,
                           ProducerMetrics* producer) {
  Status status;
  if (!running()) {
    // Distinguish "never started" from "stopped": front ends translate
    // kShutdown into a clean shutting-down reply and close, while
    // kFailedPrecondition is a caller bug.
    status = started_.load(std::memory_order_acquire)
                 ? Status::Shutdown("ingest runtime is stopped")
                 : Status::FailedPrecondition("ingest runtime is not running");
  } else {
    IngestEvent event;
    event.oid = oid;
    event.method = std::move(method);
    event.args = std::move(args);
    status = shards_[ShardOf(oid)]->Enqueue(std::move(event));
  }
  if (producer != nullptr) producer->RecordPost(status);
  return status;
}

ProducerMetrics* IngestRuntime::RegisterProducer(std::string name) {
  std::lock_guard<std::mutex> lock(producers_mu_);
  producers_.push_back(std::make_unique<ProducerMetrics>(std::move(name)));
  return producers_.back().get();
}

void IngestRuntime::RetireProducer(ProducerMetrics* producer) {
  if (producer == nullptr) return;
  std::lock_guard<std::mutex> lock(producers_mu_);
  for (auto it = producers_.begin(); it != producers_.end(); ++it) {
    if (it->get() != producer) continue;
    ProducerMetricsSnapshot last = producer->Snapshot();
    retired_.posted += last.posted;
    retired_.accepted += last.accepted;
    retired_.rejected += last.rejected;
    retired_.failed += last.failed;
    ++retired_count_;
    producers_.erase(it);
    return;
  }
}

Status IngestRuntime::Drain() {
  if (!running()) {
    return Status::FailedPrecondition("ingest runtime is not running");
  }
  for (auto& shard : shards_) shard->WaitDrained();
  // All workers are parked on their queues here (nothing mid-commit, as
  // long as producers honour the barrier contract), so reclaiming
  // finished transaction records is safe.
  if (options_.gc_finished_txns_on_drain) db_->txns().GarbageCollect();
  return Status::OK();
}

Status IngestRuntime::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return Status::OK();
  }
  for (auto& shard : shards_) shard->Stop();
  return Status::OK();
}

size_t IngestRuntime::ShardOf(Oid oid) const {
  // splitmix64 finalizer: spreads sequential oids across shards.
  uint64_t x = oid.id + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<size_t>(x % options_.num_shards);
}

RuntimeMetricsSnapshot IngestRuntime::Metrics() const {
  RuntimeMetricsSnapshot snapshot;
  snapshot.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    snapshot.shards.push_back(shard->MetricsSnapshot());
    snapshot.shards.back().AddInto(&snapshot.total);
  }
  {
    std::lock_guard<std::mutex> lock(producers_mu_);
    snapshot.producers.reserve(producers_.size() + (retired_count_ > 0));
    for (const auto& p : producers_) snapshot.producers.push_back(p->Snapshot());
    if (retired_count_ > 0) {
      ProducerMetricsSnapshot retired = retired_;
      retired.name = StrFormat("retired[%llu]",
                               static_cast<unsigned long long>(retired_count_));
      snapshot.producers.push_back(std::move(retired));
    }
  }
  return snapshot;
}

}  // namespace runtime
}  // namespace ode
