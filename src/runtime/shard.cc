#include "runtime/shard.h"

#include <utility>

#include "ode/database.h"
#include "seq/sequencer.h"

namespace ode {
namespace runtime {

Shard::Shard(size_t index, Database* db, Options options)
    : index_(index),
      db_(db),
      options_(std::move(options)),
      queue_(options_.queue_capacity) {}

Shard::~Shard() { Stop(); }

void Shard::Start() {
  if (worker_.joinable()) return;
  worker_ = std::thread([this] { Run(); });
}

void Shard::Stop() {
  queue_.Close();
  // A worker parked in ParkUntilResumed would never see the close; release
  // it (Stop during a checkpoint pause is a caller bug, but must not hang).
  pause_requested_.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(pause_mu_);
  }
  pause_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

Status Shard::Enqueue(IngestEvent&& event, bool* enqueued, bool non_blocking) {
  if (enqueued != nullptr) *enqueued = false;
  if (options_.record_latency) event.enqueue_ns = NowNs();

  // With a WAL attached, build the record up front (the push consumes the
  // event) and hold wal_mu_ across push+append so concurrent producers
  // cannot interleave queue order and log order differently. Replayed
  // events are already durable in the old log and are not re-appended.
  const bool log_event =
      options_.wal != nullptr && !event.replayed && !event.method.empty() &&
      !wal_degraded_.load(std::memory_order_acquire);
  wal::WalRecord record;
  if (log_event) {
    record.oid = event.oid;
    record.method = event.method;
    record.args = event.args;
    record.producer_id = event.producer_id;
    record.producer_seq = event.producer_seq;
  }
  std::unique_lock<std::mutex> wal_lock(wal_mu_, std::defer_lock);
  if (options_.wal != nullptr) wal_lock.lock();

  EventQueue::PushResult result = EventQueue::PushResult::kOk;
  switch (options_.backpressure) {
    case BackpressurePolicy::kBlock:
      if (non_blocking) {
        result = queue_.TryPush(std::move(event));
        if (result == EventQueue::PushResult::kFull) {
          // Deliberately unrecorded: this bounce is a park-and-retry signal
          // for the caller, not a client-visible rejection, and the same
          // event will come back. TryPush left it intact.
          return Status::WouldBlock("shard queue full");
        }
      } else {
        result = queue_.Push(std::move(event));
      }
      break;
    case BackpressurePolicy::kDropNewest:
      result = queue_.TryPush(std::move(event));
      if (result == EventQueue::PushResult::kFull) {
        metrics_.RecordDrop();
        return Status::OK();
      }
      break;
    case BackpressurePolicy::kReject:
      result = queue_.TryPush(std::move(event));
      if (result == EventQueue::PushResult::kFull) {
        metrics_.RecordReject();
        return Status::WouldBlock("shard queue full");
      }
      break;
  }
  if (result == EventQueue::PushResult::kClosed) {
    return Status::Shutdown("shard is stopped");
  }
  metrics_.RecordEnqueue();
  if (enqueued != nullptr) *enqueued = true;
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    ++enqueued_;
  }
  if (log_event) {
    // The event is committed to the queue either way; an append failure
    // (sticky in the writer) permanently switches this shard to in-memory
    // mode. The event flows on — losing durability must not lose events —
    // and the runtime's escalation hook makes the degradation loud.
    Status logged = options_.wal->Append(&record);
    if (!logged.ok()) {
      wal_degraded_.store(true, std::memory_order_release);
      if (options_.on_wal_failure) options_.on_wal_failure(logged);
    }
  }
  return Status::OK();
}

void Shard::RequestPause() {
  pause_requested_.store(true, std::memory_order_release);
  queue_.Interrupt();
}

void Shard::WaitPaused() {
  std::unique_lock<std::mutex> lock(pause_mu_);
  pause_cv_.wait(lock, [&] { return paused_; });
}

void Shard::Resume() {
  pause_requested_.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(pause_mu_);
  }
  pause_cv_.notify_all();
}

void Shard::ParkUntilResumed() {
  std::unique_lock<std::mutex> lock(pause_mu_);
  paused_ = true;
  pause_cv_.notify_all();
  pause_cv_.wait(lock, [&] {
    return !pause_requested_.load(std::memory_order_acquire);
  });
  paused_ = false;
}

void Shard::WaitDrained() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  const uint64_t target = enqueued_;
  drain_cv_.wait(lock, [&] { return completed_ >= target; });
}

ShardMetricsSnapshot Shard::MetricsSnapshot() const {
  metrics_.UpdateQueueHighWater(queue_.high_water());
  return metrics_.Snapshot();
}

void Shard::Run() {
  // Register this worker as a sequencer publisher lane: class-scope events
  // it posts carry per-lane FIFO sequence numbers keyed by the shard index,
  // which is what makes the sequencer's merge order deterministic.
  seq::SetThreadPublisherLane(static_cast<int32_t>(index_));
  std::vector<IngestEvent> batch;
  batch.reserve(options_.max_batch);
  while (true) {
    if (pause_requested_.load(std::memory_order_acquire)) ParkUntilResumed();
    batch.clear();
    size_t n = queue_.PopBatch(&batch, options_.max_batch);
    if (n == 0) {
      // Either shutdown (closed and fully drained) or an Interrupt() kick —
      // loop back to the pause check in the latter case.
      if (queue_.closed() && queue_.size() == 0) break;
      continue;
    }
    ProcessBatch(batch);
    std::lock_guard<std::mutex> lock(drain_mu_);
    completed_ += n;
    drain_cv_.notify_all();
  }
}

void Shard::ProcessBatch(const std::vector<IngestEvent>& batch) {
  metrics_.RecordBatch(batch.size());
  Status status = RunBatch(batch);
  if (!status.ok()) {
    metrics_.RecordAbort();
    // RunBatch returns non-OK only when the batch transaction rolled back
    // as a unit (a commit whose epilogue failed reports OK), so replaying
    // every event individually is exactly-once: nothing from the failed
    // attempt survived.
    for (const IngestEvent& event : batch) ProcessOne(event);
  }
  metrics_.RecordProcessed(batch.size());
  if (options_.record_latency) {
    const uint64_t now = NowNs();
    for (const IngestEvent& event : batch) {
      if (event.enqueue_ns == 0) continue;
      const uint64_t ns = now > event.enqueue_ns ? now - event.enqueue_ns : 0;
      metrics_.RecordLatencyUs(ns / 1000);
    }
  }
}

Status Shard::RunBatch(const std::vector<IngestEvent>& batch) {
  Result<TxnId> txn = db_->Begin();
  if (!txn.ok()) return txn.status();
  int fired = 0;
  for (const IngestEvent& event : batch) {
    Result<Value> r = db_->Call(*txn, event.oid, event.method, event.args,
                                &fired);
    if (!r.ok()) {
      // kAborted means Call already rolled the transaction back; anything
      // else leaves it active and we must clean up ourselves.
      if (r.status().code() != StatusCode::kAborted) (void)db_->Abort(*txn);
      return r.status();
    }
  }
  Database::CommitOutcome outcome = Database::CommitOutcome::kNotCommitted;
  Status committed = db_->Commit(*txn, &outcome);
  if (!committed.ok()) {
    if (outcome == Database::CommitOutcome::kEpilogueFailed) {
      // The batch COMMITTED; only the after-tcommit system transaction
      // failed (and rolled its own effects back). Replaying the events
      // would apply them twice — count the lost epilogue and move on.
      metrics_.RecordEpilogueFailure();
      metrics_.RecordFired(static_cast<uint64_t>(fired));
      return Status::OK();
    }
    if (committed.code() != StatusCode::kAborted) (void)db_->Abort(*txn);
    return committed;
  }
  metrics_.RecordFired(static_cast<uint64_t>(fired));
  return Status::OK();
}

void Shard::ProcessOne(const IngestEvent& event) {
  Status last = Status::OK();
  for (int attempt = 0; attempt <= options_.error_policy.max_retries;
       ++attempt) {
    if (attempt > 0) {
      metrics_.RecordRetry();
      const int shift = attempt - 1 < 10 ? attempt - 1 : 10;
      std::this_thread::sleep_for(options_.error_policy.initial_backoff *
                                  (1 << shift));
    }
    last = TryOne(event);
    if (last.ok()) return;
    metrics_.RecordAbort();
    if (!IsRetryable(last)) break;
  }
  DeadLetter(event, last);
}

Status Shard::TryOne(const IngestEvent& event) {
  Result<TxnId> txn = db_->Begin();
  if (!txn.ok()) return txn.status();
  int fired = 0;
  Result<Value> r =
      db_->Call(*txn, event.oid, event.method, event.args, &fired);
  Database::CommitOutcome outcome = Database::CommitOutcome::kNotCommitted;
  Status status = r.ok() ? db_->Commit(*txn, &outcome) : r.status();
  if (!status.ok()) {
    if (outcome == Database::CommitOutcome::kEpilogueFailed) {
      // Committed; retrying would double-apply the event (see RunBatch).
      metrics_.RecordEpilogueFailure();
      metrics_.RecordFired(static_cast<uint64_t>(fired));
      return Status::OK();
    }
    if (status.code() != StatusCode::kAborted) (void)db_->Abort(*txn);
    return status;
  }
  metrics_.RecordFired(static_cast<uint64_t>(fired));
  return Status::OK();
}

void Shard::DeadLetter(const IngestEvent& event, const Status& status) {
  metrics_.RecordDeadLetter();
  if (options_.dead_letter) options_.dead_letter(event, status);
}

bool Shard::IsRetryable(const Status& status) {
  switch (status.code()) {
    case StatusCode::kAborted:
    case StatusCode::kWouldBlock:
    case StatusCode::kDeadlock:
      return true;
    default:
      return false;
  }
}

uint64_t Shard::NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace runtime
}  // namespace ode
