#include "runtime/metrics.h"

#include "common/strutil.h"

namespace ode {
namespace runtime {

namespace {

/// Bucket index for a power-of-two histogram: floor(log2(v)), clamped.
size_t BucketOf(uint64_t v, size_t buckets) {
  size_t b = 0;
  while (v > 1 && b + 1 < buckets) {
    v >>= 1;
    ++b;
  }
  return b;
}

void AppendHist(std::string* out, const char* label, const uint64_t* hist,
                size_t buckets) {
  *out += label;
  for (size_t i = 0; i < buckets; ++i) {
    if (hist[i] == 0) continue;
    *out += StrFormat(" [<%llu]=%llu",
                      static_cast<unsigned long long>(uint64_t{1} << (i + 1)),
                      static_cast<unsigned long long>(hist[i]));
  }
  *out += "\n";
}

}  // namespace

double ShardMetricsSnapshot::MeanBatch() const {
  return batches == 0 ? 0.0
                      : static_cast<double>(processed) /
                            static_cast<double>(batches);
}

uint64_t ShardMetricsSnapshot::LatencyPercentileUs(double p) const {
  uint64_t n = 0;
  for (uint64_t c : latency_us_hist) n += c;
  if (n == 0) return 0;
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(n));
  if (rank >= n) rank = n - 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < latency_us_hist.size(); ++i) {
    seen += latency_us_hist[i];
    if (seen > rank) return uint64_t{1} << (i + 1);
  }
  return uint64_t{1} << latency_us_hist.size();
}

void ShardMetricsSnapshot::AddInto(ShardMetricsSnapshot* total) const {
  total->enqueued += enqueued;
  total->dropped += dropped;
  total->rejected += rejected;
  total->processed += processed;
  total->fired += fired;
  total->aborted += aborted;
  total->retried += retried;
  total->dead_lettered += dead_lettered;
  total->epilogue_failures += epilogue_failures;
  total->batches += batches;
  if (queue_high_water > total->queue_high_water) {
    total->queue_high_water = queue_high_water;
  }
  for (size_t i = 0; i < batch_size_hist.size(); ++i) {
    total->batch_size_hist[i] += batch_size_hist[i];
  }
  for (size_t i = 0; i < latency_us_hist.size(); ++i) {
    total->latency_us_hist[i] += latency_us_hist[i];
  }
}

void ShardMetrics::RecordBatch(uint64_t n) {
  Bump(&batches_);
  batch_size_hist_[BucketOf(n, kBatchHistBuckets)].fetch_add(
      1, std::memory_order_relaxed);
}

void ShardMetrics::RecordLatencyUs(uint64_t us) {
  latency_us_hist_[BucketOf(us, kLatencyHistBuckets)].fetch_add(
      1, std::memory_order_relaxed);
}

void ShardMetrics::UpdateQueueHighWater(uint64_t depth) {
  uint64_t cur = queue_high_water_.load(std::memory_order_relaxed);
  while (depth > cur &&
         !queue_high_water_.compare_exchange_weak(
             cur, depth, std::memory_order_relaxed)) {
  }
}

ShardMetricsSnapshot ShardMetrics::Snapshot() const {
  ShardMetricsSnapshot s;
  s.enqueued = enqueued_.load(std::memory_order_relaxed);
  s.dropped = dropped_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.processed = processed_.load(std::memory_order_relaxed);
  s.fired = fired_.load(std::memory_order_relaxed);
  s.aborted = aborted_.load(std::memory_order_relaxed);
  s.retried = retried_.load(std::memory_order_relaxed);
  s.dead_lettered = dead_lettered_.load(std::memory_order_relaxed);
  s.epilogue_failures = epilogue_failures_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.queue_high_water = queue_high_water_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kBatchHistBuckets; ++i) {
    s.batch_size_hist[i] = batch_size_hist_[i].load(std::memory_order_relaxed);
  }
  for (size_t i = 0; i < kLatencyHistBuckets; ++i) {
    s.latency_us_hist[i] =
        latency_us_hist_[i].load(std::memory_order_relaxed);
  }
  return s;
}

std::string RuntimeMetricsSnapshot::ToString() const {
  std::string out = StrFormat(
      "ingest runtime: %zu shard(s)\n"
      "  enqueued=%llu processed=%llu fired=%llu\n"
      "  dropped=%llu rejected=%llu aborted=%llu retried=%llu "
      "dead_lettered=%llu epilogue_failures=%llu\n"
      "  batches=%llu mean_batch=%.2f queue_high_water=%llu "
      "p50_latency_us<=%llu p99_latency_us<=%llu\n",
      shards.size(), static_cast<unsigned long long>(total.enqueued),
      static_cast<unsigned long long>(total.processed),
      static_cast<unsigned long long>(total.fired),
      static_cast<unsigned long long>(total.dropped),
      static_cast<unsigned long long>(total.rejected),
      static_cast<unsigned long long>(total.aborted),
      static_cast<unsigned long long>(total.retried),
      static_cast<unsigned long long>(total.dead_lettered),
      static_cast<unsigned long long>(total.epilogue_failures),
      static_cast<unsigned long long>(total.batches), total.MeanBatch(),
      static_cast<unsigned long long>(total.queue_high_water),
      static_cast<unsigned long long>(total.LatencyPercentileUs(50)),
      static_cast<unsigned long long>(total.LatencyPercentileUs(99)));
  AppendHist(&out, "  batch_size_hist:", total.batch_size_hist.data(),
             total.batch_size_hist.size());
  AppendHist(&out, "  latency_us_hist:", total.latency_us_hist.data(),
             total.latency_us_hist.size());
  for (size_t i = 0; i < shards.size(); ++i) {
    const ShardMetricsSnapshot& s = shards[i];
    out += StrFormat(
        "  shard %zu: enqueued=%llu processed=%llu fired=%llu batches=%llu "
        "high_water=%llu\n",
        i, static_cast<unsigned long long>(s.enqueued),
        static_cast<unsigned long long>(s.processed),
        static_cast<unsigned long long>(s.fired),
        static_cast<unsigned long long>(s.batches),
        static_cast<unsigned long long>(s.queue_high_water));
  }
  if (wal.enabled) {
    out += StrFormat(
        "  wal: appends=%llu fsyncs=%llu bytes=%llu checkpoints=%llu "
        "replayed_on_recovery=%llu\n",
        static_cast<unsigned long long>(wal.appends),
        static_cast<unsigned long long>(wal.fsyncs),
        static_cast<unsigned long long>(wal.bytes_written),
        static_cast<unsigned long long>(wal.checkpoints),
        static_cast<unsigned long long>(wal.replayed_on_recovery));
    if (wal.degraded) out += "  wal: DEGRADED (in-memory fallback)\n";
  }
  if (sequencer.enabled) {
    out += StrFormat(
        "  sequencer: published=%llu sequenced=%llu firings=%llu "
        "dropped=%llu apply_errors=%llu lock_timeouts=%llu "
        "queue_depth=%llu high_water=%llu merge_lag=%llu "
        "replay_deduped=%llu\n",
        static_cast<unsigned long long>(sequencer.published),
        static_cast<unsigned long long>(sequencer.sequenced),
        static_cast<unsigned long long>(sequencer.firings),
        static_cast<unsigned long long>(sequencer.dropped),
        static_cast<unsigned long long>(sequencer.apply_errors),
        static_cast<unsigned long long>(sequencer.lock_timeouts),
        static_cast<unsigned long long>(sequencer.queue_depth),
        static_cast<unsigned long long>(sequencer.queue_high_water),
        static_cast<unsigned long long>(sequencer.merge_lag),
        static_cast<unsigned long long>(sequencer.replay_deduped));
  }
  for (const ProducerMetricsSnapshot& p : producers) {
    out += StrFormat(
        "  producer %s: posted=%llu accepted=%llu rejected=%llu failed=%llu\n",
        p.name.c_str(), static_cast<unsigned long long>(p.posted),
        static_cast<unsigned long long>(p.accepted),
        static_cast<unsigned long long>(p.rejected),
        static_cast<unsigned long long>(p.failed));
  }
  return out;
}

}  // namespace runtime
}  // namespace ode
