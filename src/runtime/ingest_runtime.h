#ifndef ODE_RUNTIME_INGEST_RUNTIME_H_
#define ODE_RUNTIME_INGEST_RUNTIME_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "runtime/event_queue.h"
#include "runtime/metrics.h"
#include "runtime/shard.h"
#include "seq/order_log.h"
#include "seq/sequencer.h"
#include "wal/log_format.h"
#include "wal/log_writer.h"
#include "wal/recovery.h"

namespace ode {

class Database;

namespace runtime {

/// Configuration for IngestRuntime. Defaults are sensible for tests; the
/// bench sweeps num_shards and max_batch.
struct IngestOptions {
  /// Worker shards. Events are routed by object-id hash, so all events for
  /// one object always land in the same shard (preserving per-object
  /// order). Clamped to >= 1.
  size_t num_shards = 4;
  /// Per-shard queue capacity (events).
  size_t queue_capacity = 1024;
  /// Maximum events drained into one worker transaction.
  size_t max_batch = 64;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  ErrorPolicy error_policy;
  /// Receives events whose retries are exhausted (or that failed
  /// non-retryably). Runs on the owning shard's worker thread.
  DeadLetterFn dead_letter;
  /// Stamp events at Post and feed the enqueue→commit latency histogram.
  bool record_latency = true;
  /// Reclaim finished transaction records at each Drain() barrier — the
  /// one point where no worker can be mid-commit. Keeps long runs from
  /// accumulating one Transaction record per event.
  bool gc_finished_txns_on_drain = true;
  /// Durable event log configuration. When `durability.dir` is set, Start()
  /// recovers from whatever checkpoint + logs the directory holds, every
  /// accepted Post is appended to a per-shard WAL, and Checkpoint() is
  /// available (docs/DURABILITY.md). Default: disabled, zero hot-path cost.
  wal::WalOptions durability;
  /// Run §9 class-scope triggers through the dedicated sequencer stage
  /// (docs/SEQUENCER.md): shards publish compact class-event records, one
  /// merge thread advances the shared class automata in a deterministic
  /// total order. When false, class slots advance inline under the class
  /// posting mutex (the pre-sequencer behaviour, kept for A/B benching).
  bool class_sequencer = true;
  /// Capacity of the sequencer's bounded merge queue (events).
  size_t seq_queue_capacity = 4096;
};

/// What Start()'s recovery pass found and did (all zero/false when
/// durability is off or the directory was empty).
struct RecoveryInfo {
  bool attempted = false;       ///< Durability was enabled at Start.
  bool had_checkpoint = false;  ///< A valid checkpoint was restored.
  uint64_t replayed_events = 0; ///< Checkpoint in-flight + WAL records re-posted.
  uint64_t skipped_covered = 0; ///< Log records subsumed by the checkpoint.
  uint64_t torn_files = 0;      ///< Log files with a discarded invalid tail.
  uint64_t torn_bytes = 0;
  /// Sequencer order-log records re-applied to the class automata.
  uint64_t sequenced_replayed = 0;
  std::vector<std::string> notes;  ///< Human-readable recovery log.
};

/// Sharded concurrent event-ingestion front end over a Database.
///
/// Concurrency model: the paper's per-object event histories (§3–§5) make
/// events on *different* objects commute — each object's automata consume
/// only that object's events. Routing by object-id hash therefore
/// preserves semantics exactly: one shard owns an object's entire event
/// stream, its FIFO queue plus single consumer replay the stream in
/// arrival order, and per-object trigger evaluation is single-threaded by
/// construction. Shared substrate structures (object table, lock table,
/// transaction table, counters) are internally synchronized.
///
/// What the caller must still serialize externally (see docs/RUNTIME.md):
/// schema registration, class-scope trigger (de)activation, virtual-clock
/// advancement, and persistence — do these before Start() or after a
/// Drain() with producers quiesced.
///
/// Typical use:
///
///   IngestRuntime rt(&db, {.num_shards = 4, .max_batch = 64});
///   ODE_RETURN_IF_ERROR(rt.Start());
///   for (...) ODE_RETURN_IF_ERROR(rt.Post(oid, "deposit", {Value::Int(5)}));
///   ODE_RETURN_IF_ERROR(rt.Drain());   // barrier: all posts processed
///   ODE_RETURN_IF_ERROR(rt.Stop());    // graceful: drains, joins workers
class IngestRuntime {
 public:
  explicit IngestRuntime(Database* db, IngestOptions options = {});
  ~IngestRuntime();  ///< Stops if still running.

  IngestRuntime(const IngestRuntime&) = delete;
  IngestRuntime& operator=(const IngestRuntime&) = delete;

  /// Creates the shards and launches their workers. A runtime can be
  /// started once; kFailedPrecondition on a second Start. Thread-safe:
  /// concurrent callers race on an atomic flag, exactly one wins and the
  /// rest fail without touching the shards.
  Status Start();

  /// Queues one method invocation for `oid`. Thread-safe; any number of
  /// producer threads may post concurrently. The outcome under a full
  /// queue depends on the backpressure policy (see BackpressurePolicy).
  /// kFailedPrecondition before Start(); kShutdown after Stop() — distinct
  /// so front ends (e.g. the network server) can tell "retry elsewhere"
  /// from "never started". When `producer` is non-null the outcome is also
  /// recorded against that producer's counters.
  Status Post(Oid oid, std::string method, std::vector<Value> args = {},
              ProducerMetrics* producer = nullptr);

  /// Post carrying a durable producer identity and per-producer sequence
  /// number. On acceptance (the event entered a queue — not dropped, not
  /// bounced) the pair is recorded in the applied-seq set, persisted across
  /// checkpoints, and available via AppliedSeqs() — the state behind the
  /// network layer's exactly-once replay dedup. Identity-tracking works
  /// with or without a WAL; an empty identity degrades to plain Post.
  Status Post(Oid oid, std::string method, std::vector<Value> args,
              ProducerMetrics* producer, std::string_view identity,
              uint64_t seq);

  /// Non-blocking Post: never parks the calling thread, whatever the
  /// backpressure policy. Differences from Post, all scoped to the paths
  /// that could block:
  ///  * kBlock policy, full shard queue  → kWouldBlock, `*event` left
  ///    intact (not moved from) so the caller can park the exact event and
  ///    retry it later; nothing is recorded anywhere (no producer
  ///    counters, no applied-seq entry, no shard metrics) because the
  ///    event is still in flight from the caller's point of view.
  ///  * durable mode, Checkpoint() holding the post gate → same
  ///    kWouldBlock park-and-retry contract (the gate is only held for the
  ///    checkpoint's pause window).
  /// Every other outcome (accept, kReject bounce, drop, shutdown, bad
  /// state) is identical to Post — recorded identically, and `*event` is
  /// consumed. Pair with SetCapacityListener for retry wakeups. This is
  /// the shard handoff the network IO workers use so one full queue parks
  /// one connection instead of a whole worker (docs/NETWORK.md).
  ///
  /// For an identified event the applied-seq check-and-record is atomic
  /// (held across the enqueue), making the runtime the authoritative
  /// exactly-once arbiter: if the (identity, seq) pair was already
  /// accepted — even by a concurrent post on another thread, even if the
  /// event is still queued — TryPost returns OK, sets `*duplicate`, and
  /// enqueues nothing (`*event` is untouched). The front end's HELLO-time
  /// snapshot dedup is a lock-free fast path over the same state; this
  /// check is what keeps replay exactly-once when a reconnecting client
  /// races its dying predecessor connection on another IO worker.
  Status TryPost(IngestEvent* event, ProducerMetrics* producer = nullptr,
                 bool* duplicate = nullptr);

  /// Installs (or clears, with nullptr) a capacity listener invoked with
  /// the shard index whenever a previously-full shard queue frees space —
  /// the wakeup that tells a TryPost caller its parked events may now fit.
  /// The listener runs on shard worker threads with the shard's queue
  /// mutex held: it must be cheap and nonblocking (e.g. write to a wake
  /// pipe). Clearing the listener synchronizes with that mutex, so after
  /// SetCapacityListener(nullptr) returns no invocation is in flight —
  /// callers may then tear down whatever the listener captured. Call only
  /// while the runtime is started (the shards must exist).
  void SetCapacityListener(std::function<void(size_t shard)> listener);

  /// Registers a named producer (a connection, a replay file, a thread)
  /// whose posts should be attributed in Metrics(). The returned pointer
  /// stays valid until RetireProducer (or the runtime's destruction); pass
  /// it to Post. Thread-safe.
  ProducerMetrics* RegisterProducer(std::string name);

  /// Retires a producer returned by RegisterProducer: its final counters
  /// are folded into an aggregate "retired" entry (so Metrics() totals
  /// keep accounting for it) and its registry slot is freed. Front ends
  /// with per-connection producers call this on disconnect, which keeps
  /// long-running servers from growing the producer list without bound.
  /// The pointer is invalid afterwards. Thread-safe; unknown/null
  /// producers are ignored.
  void RetireProducer(ProducerMetrics* producer);

  /// Barrier: returns once every event posted before the call has been
  /// processed (committed or dead-lettered). Callers must quiesce
  /// producers for the barrier to be meaningful.
  Status Drain();

  /// Durable-mode only: pauses all shards (gating producers out of Post),
  /// snapshots database state + queued events + metrics + applied-seq sets
  /// into an atomically-published checkpoint file, then truncates the
  /// per-shard logs and resumes. Crash-safe at every step: recovery sees
  /// either the old checkpoint + full logs or the new checkpoint (+ logs
  /// whose covered records it skips). kFailedPrecondition when durability
  /// is off or the runtime is not running. Call from one control thread;
  /// do not run Drain() concurrently.
  Status Checkpoint();

  /// The applied-seq set recorded for `identity` (empty set if unknown).
  /// A copy — safe to read while posts continue.
  wal::SeqSet AppliedSeqs(std::string_view identity) const;

  /// What recovery did during Start(). Stable once Start returns.
  const RecoveryInfo& recovery() const { return recovery_; }

  /// Graceful shutdown: closes the queues (pending events are still
  /// processed), joins all workers, and (durable mode) fsyncs the logs so
  /// every accepted event survives a clean stop. Idempotent; Post fails
  /// afterwards.
  Status Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  size_t num_shards() const { return options_.num_shards; }
  const IngestOptions& options() const { return options_; }

  /// Which shard owns `oid` (splitmix64 finalizer over the raw id, so
  /// sequentially-allocated oids spread evenly).
  size_t ShardOf(Oid oid) const;

  /// Aggregated + per-shard counter snapshot.
  RuntimeMetricsSnapshot Metrics() const;

  /// The class-scope sequencer (null when options.class_sequencer is off
  /// or the runtime has not started). Valid until Stop() returns.
  seq::Sequencer* sequencer() const { return sequencer_.get(); }

  /// True once any log writer (shard WAL or sequencer order log) hit a
  /// sticky I/O failure and the runtime fell back to in-memory operation.
  bool wal_degraded() const {
    return wal_degraded_.load(std::memory_order_acquire);
  }

 private:
  /// The Post path shared by Post/TryPost; `event` carries identity/seq/
  /// replayed flags already. Takes the event by pointer so the
  /// non-blocking park-and-retry bounce can hand it back intact.
  Status PostEvent(IngestEvent* event, ProducerMetrics* producer,
                   bool non_blocking = false, bool* duplicate = nullptr);
  /// Start()-side recovery, before the shards exist: read checkpoint +
  /// logs, restore snapshot/metrics-baselines/applied-seqs, open the
  /// per-shard writers in append mode, note orphan files.
  Status LoadDurability(wal::RecoveredState* recovered);
  /// Start()-side recovery, after the shards are running: re-post the
  /// checkpoint's in-flight events and the surviving log records through
  /// the normal shard path (per old file, in original order).
  Status ReplayRecovered(wal::RecoveredState recovered);
  /// Checkpoint body, called with the post gate held and shards paused.
  Status CheckpointLocked();
  /// Builds the sequencer (durable mode also opens the order log and
  /// re-applies its records), attaches it to the database, and starts its
  /// merge thread. Called from Start() before the shards begin replay.
  Status StartSequencer(const wal::RecoveredState& recovered);
  /// First-failure escalation: latch wal_degraded_, print the operator
  /// banner once. Safe from any thread.
  void DegradeWal(const char* what, const Status& status);

  Database* const db_;
  IngestOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Post/Drain gate: the release store in Start publishes `shards_` to
  /// any thread whose acquire load sees true.
  std::atomic<bool> running_{false};
  /// One-shot latch claimed by atomic exchange, so concurrent Start calls
  /// cannot both build the shard vector.
  std::atomic<bool> started_{false};
  /// Producer registry: unique_ptrs, so handed-out pointers stay stable
  /// while Metrics() snapshots under the same lock. RetireProducer erases
  /// entries after folding them into retired_.
  mutable std::mutex producers_mu_;
  std::vector<std::unique_ptr<ProducerMetrics>> producers_;
  /// Sum of the counters of every retired producer (name unused here;
  /// Metrics() reports it as "retired[<count>]").
  ProducerMetricsSnapshot retired_;
  uint64_t retired_count_ = 0;

  // ---- Durability state (untouched when options_.durability is off) ----

  bool durable_ = false;  ///< Set once in Start from options_.durability.
  /// One log writer per shard, owned here (shards hold raw pointers).
  std::vector<std::unique_ptr<wal::LogWriter>> wal_writers_;
  /// Checkpoint/Post gate: Post holds it shared for the enqueue+append
  /// critical section, Checkpoint holds it unique while shards are paused.
  /// Only taken in durable mode.
  mutable std::shared_mutex post_gate_;
  /// Last lsn of old log files from a previous run with a *different*
  /// shard count (no current writer reuses them). Folded into checkpoint
  /// covered-lsn maps until the first successful checkpoint unlinks the
  /// files.
  std::map<size_t, uint64_t> orphan_covered_;
  /// Per-producer-identity applied sequence sets (under wm_mu_).
  mutable std::mutex wm_mu_;
  std::map<std::string, wal::SeqSet> applied_seqs_;
  RecoveryInfo recovery_;
  std::atomic<uint64_t> checkpoints_{0};
  /// Counter baselines restored from the checkpoint, so Metrics() totals
  /// and the next checkpoint carry pre-restart history. Per-shard when the
  /// shard count matches the previous run; otherwise folded into the
  /// unattributable extra base.
  std::vector<ShardMetricsSnapshot> metrics_baseline_;
  ShardMetricsSnapshot metrics_extra_base_;
  bool has_extra_base_ = false;

  /// Latched by the first sticky log-writer failure anywhere (shard WAL or
  /// order log); Checkpoint() refuses while set — truncating logs that are
  /// missing records would turn degraded durability into silent data loss.
  std::atomic<bool> wal_degraded_{false};

  // ---- Class-scope sequencer (see docs/SEQUENCER.md) ----
  // Declaration order matters: ~Sequencer flushes through the order-log
  // writer, so the writer must outlive it.
  std::unique_ptr<seq::OrderLogWriter> order_log_;
  std::unique_ptr<seq::Sequencer> sequencer_;
};

}  // namespace runtime
}  // namespace ode

#endif  // ODE_RUNTIME_INGEST_RUNTIME_H_
