#ifndef ODE_RUNTIME_INGEST_RUNTIME_H_
#define ODE_RUNTIME_INGEST_RUNTIME_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "runtime/event_queue.h"
#include "runtime/metrics.h"
#include "runtime/shard.h"

namespace ode {

class Database;

namespace runtime {

/// Configuration for IngestRuntime. Defaults are sensible for tests; the
/// bench sweeps num_shards and max_batch.
struct IngestOptions {
  /// Worker shards. Events are routed by object-id hash, so all events for
  /// one object always land in the same shard (preserving per-object
  /// order). Clamped to >= 1.
  size_t num_shards = 4;
  /// Per-shard queue capacity (events).
  size_t queue_capacity = 1024;
  /// Maximum events drained into one worker transaction.
  size_t max_batch = 64;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  ErrorPolicy error_policy;
  /// Receives events whose retries are exhausted (or that failed
  /// non-retryably). Runs on the owning shard's worker thread.
  DeadLetterFn dead_letter;
  /// Stamp events at Post and feed the enqueue→commit latency histogram.
  bool record_latency = true;
  /// Reclaim finished transaction records at each Drain() barrier — the
  /// one point where no worker can be mid-commit. Keeps long runs from
  /// accumulating one Transaction record per event.
  bool gc_finished_txns_on_drain = true;
};

/// Sharded concurrent event-ingestion front end over a Database.
///
/// Concurrency model: the paper's per-object event histories (§3–§5) make
/// events on *different* objects commute — each object's automata consume
/// only that object's events. Routing by object-id hash therefore
/// preserves semantics exactly: one shard owns an object's entire event
/// stream, its FIFO queue plus single consumer replay the stream in
/// arrival order, and per-object trigger evaluation is single-threaded by
/// construction. Shared substrate structures (object table, lock table,
/// transaction table, counters) are internally synchronized.
///
/// What the caller must still serialize externally (see docs/RUNTIME.md):
/// schema registration, class-scope trigger (de)activation, virtual-clock
/// advancement, and persistence — do these before Start() or after a
/// Drain() with producers quiesced.
///
/// Typical use:
///
///   IngestRuntime rt(&db, {.num_shards = 4, .max_batch = 64});
///   ODE_RETURN_IF_ERROR(rt.Start());
///   for (...) ODE_RETURN_IF_ERROR(rt.Post(oid, "deposit", {Value::Int(5)}));
///   ODE_RETURN_IF_ERROR(rt.Drain());   // barrier: all posts processed
///   ODE_RETURN_IF_ERROR(rt.Stop());    // graceful: drains, joins workers
class IngestRuntime {
 public:
  explicit IngestRuntime(Database* db, IngestOptions options = {});
  ~IngestRuntime();  ///< Stops if still running.

  IngestRuntime(const IngestRuntime&) = delete;
  IngestRuntime& operator=(const IngestRuntime&) = delete;

  /// Creates the shards and launches their workers. A runtime can be
  /// started once; kFailedPrecondition on a second Start. Thread-safe:
  /// concurrent callers race on an atomic flag, exactly one wins and the
  /// rest fail without touching the shards.
  Status Start();

  /// Queues one method invocation for `oid`. Thread-safe; any number of
  /// producer threads may post concurrently. The outcome under a full
  /// queue depends on the backpressure policy (see BackpressurePolicy).
  /// kFailedPrecondition before Start(); kShutdown after Stop() — distinct
  /// so front ends (e.g. the network server) can tell "retry elsewhere"
  /// from "never started". When `producer` is non-null the outcome is also
  /// recorded against that producer's counters.
  Status Post(Oid oid, std::string method, std::vector<Value> args = {},
              ProducerMetrics* producer = nullptr);

  /// Registers a named producer (a connection, a replay file, a thread)
  /// whose posts should be attributed in Metrics(). The returned pointer
  /// stays valid until RetireProducer (or the runtime's destruction); pass
  /// it to Post. Thread-safe.
  ProducerMetrics* RegisterProducer(std::string name);

  /// Retires a producer returned by RegisterProducer: its final counters
  /// are folded into an aggregate "retired" entry (so Metrics() totals
  /// keep accounting for it) and its registry slot is freed. Front ends
  /// with per-connection producers call this on disconnect, which keeps
  /// long-running servers from growing the producer list without bound.
  /// The pointer is invalid afterwards. Thread-safe; unknown/null
  /// producers are ignored.
  void RetireProducer(ProducerMetrics* producer);

  /// Barrier: returns once every event posted before the call has been
  /// processed (committed or dead-lettered). Callers must quiesce
  /// producers for the barrier to be meaningful.
  Status Drain();

  /// Graceful shutdown: closes the queues (pending events are still
  /// processed), joins all workers. Idempotent; Post fails afterwards.
  Status Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  size_t num_shards() const { return options_.num_shards; }
  const IngestOptions& options() const { return options_; }

  /// Which shard owns `oid` (splitmix64 finalizer over the raw id, so
  /// sequentially-allocated oids spread evenly).
  size_t ShardOf(Oid oid) const;

  /// Aggregated + per-shard counter snapshot.
  RuntimeMetricsSnapshot Metrics() const;

 private:
  Database* const db_;
  IngestOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Post/Drain gate: the release store in Start publishes `shards_` to
  /// any thread whose acquire load sees true.
  std::atomic<bool> running_{false};
  /// One-shot latch claimed by atomic exchange, so concurrent Start calls
  /// cannot both build the shard vector.
  std::atomic<bool> started_{false};
  /// Producer registry: unique_ptrs, so handed-out pointers stay stable
  /// while Metrics() snapshots under the same lock. RetireProducer erases
  /// entries after folding them into retired_.
  mutable std::mutex producers_mu_;
  std::vector<std::unique_ptr<ProducerMetrics>> producers_;
  /// Sum of the counters of every retired producer (name unused here;
  /// Metrics() reports it as "retired[<count>]").
  ProducerMetricsSnapshot retired_;
  uint64_t retired_count_ = 0;
};

}  // namespace runtime
}  // namespace ode

#endif  // ODE_RUNTIME_INGEST_RUNTIME_H_
