#ifndef ODE_RUNTIME_METRICS_H_
#define ODE_RUNTIME_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "seq/sequencer_metrics.h"

namespace ode {
namespace runtime {

/// Power-of-two histogram: bucket i counts samples in [2^i, 2^(i+1)), with
/// bucket 0 also holding 0. Sized for batch sizes (2^12 = 4096 events) and
/// post latencies in microseconds (2^24 us ≈ 16.8 s).
inline constexpr size_t kBatchHistBuckets = 13;
inline constexpr size_t kLatencyHistBuckets = 25;

/// Plain-value copy of one shard's counters, consistent enough for
/// monitoring (counters are sampled individually, not under a lock).
struct ShardMetricsSnapshot {
  uint64_t enqueued = 0;      ///< Accepted into the shard queue.
  uint64_t dropped = 0;       ///< Discarded by kDropNewest backpressure.
  uint64_t rejected = 0;      ///< Bounced by kReject backpressure.
  uint64_t processed = 0;     ///< Posted through the §5 pipeline.
  uint64_t fired = 0;         ///< Trigger firings observed by this shard.
  uint64_t aborted = 0;       ///< Worker transactions that aborted.
  uint64_t retried = 0;       ///< Per-event retry attempts after an abort.
  uint64_t dead_lettered = 0; ///< Events routed to the dead-letter hook.
  /// Transactions that committed but whose after-tcommit epilogue failed
  /// (the events are applied; only the epilogue's postings were lost).
  uint64_t epilogue_failures = 0;
  uint64_t batches = 0;       ///< Worker transactions begun (drained batches).
  uint64_t queue_high_water = 0;
  std::array<uint64_t, kBatchHistBuckets> batch_size_hist{};
  std::array<uint64_t, kLatencyHistBuckets> latency_us_hist{};

  /// Mean batch size implied by `processed` and `batches`.
  double MeanBatch() const;
  /// Approximate latency percentile (p in [0,100]) from the histogram, in
  /// microseconds (upper bucket bound).
  uint64_t LatencyPercentileUs(double p) const;

  void AddInto(ShardMetricsSnapshot* total) const;
};

/// One shard's counters. Every Record* call is a handful of relaxed atomic
/// increments — wait-free, no locks on the ingest hot path.
class ShardMetrics {
 public:
  void RecordEnqueue() { Bump(&enqueued_); }
  void RecordDrop() { Bump(&dropped_); }
  void RecordReject() { Bump(&rejected_); }
  void RecordFired(uint64_t n) {
    fired_.fetch_add(n, std::memory_order_relaxed);
  }
  void RecordAbort() { Bump(&aborted_); }
  void RecordRetry() { Bump(&retried_); }
  void RecordDeadLetter() { Bump(&dead_lettered_); }
  void RecordEpilogueFailure() { Bump(&epilogue_failures_); }

  /// One drained batch of `n` events entering a worker transaction.
  void RecordBatch(uint64_t n);
  /// `n` events completed (committed or dead-lettered).
  void RecordProcessed(uint64_t n) {
    processed_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Enqueue→commit latency of one event.
  void RecordLatencyUs(uint64_t us);
  /// Monotonic max of observed queue depth.
  void UpdateQueueHighWater(uint64_t depth);

  ShardMetricsSnapshot Snapshot() const;

 private:
  static void Bump(std::atomic<uint64_t>* counter) {
    counter->fetch_add(1, std::memory_order_relaxed);
  }

  std::atomic<uint64_t> enqueued_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> processed_{0};
  std::atomic<uint64_t> fired_{0};
  std::atomic<uint64_t> aborted_{0};
  std::atomic<uint64_t> retried_{0};
  std::atomic<uint64_t> dead_lettered_{0};
  std::atomic<uint64_t> epilogue_failures_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> queue_high_water_{0};
  std::array<std::atomic<uint64_t>, kBatchHistBuckets> batch_size_hist_{};
  std::array<std::atomic<uint64_t>, kLatencyHistBuckets> latency_us_hist_{};
};

/// Plain-value copy of one producer's counters (`posted` = Post attempts;
/// the other three partition it by outcome).
struct ProducerMetricsSnapshot {
  std::string name;
  uint64_t posted = 0;    ///< Post calls attributed to this producer.
  uint64_t accepted = 0;  ///< Posts the runtime accepted (incl. drops).
  uint64_t rejected = 0;  ///< kWouldBlock bounces (kReject backpressure).
  uint64_t failed = 0;    ///< Everything else (shutdown, bad lifecycle).
};

/// One producer's counters — the per-connection accounting the network
/// front end attributes posts to. Same wait-free discipline as
/// ShardMetrics: relaxed atomic bumps only.
class ProducerMetrics {
 public:
  explicit ProducerMetrics(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Classifies one Post outcome into the counters.
  void RecordPost(const Status& status) {
    posted_.fetch_add(1, std::memory_order_relaxed);
    if (status.ok()) {
      accepted_.fetch_add(1, std::memory_order_relaxed);
    } else if (status.code() == StatusCode::kWouldBlock) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
    } else {
      failed_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  ProducerMetricsSnapshot Snapshot() const {
    ProducerMetricsSnapshot s;
    s.name = name_;
    s.posted = posted_.load(std::memory_order_relaxed);
    s.accepted = accepted_.load(std::memory_order_relaxed);
    s.rejected = rejected_.load(std::memory_order_relaxed);
    s.failed = failed_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  const std::string name_;
  std::atomic<uint64_t> posted_{0};
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> failed_{0};
};

/// Durable-log counters summed over all shard writers. Reported on the
/// runtime snapshot only (not part of the wire metrics format — the frame
/// codec's shard-counter layout is unchanged).
struct WalMetricsSummary {
  bool enabled = false;
  uint64_t appends = 0;        ///< Records appended across all shard logs.
  uint64_t fsyncs = 0;         ///< fsync(2) calls issued by the policy.
  uint64_t bytes_written = 0;  ///< Framed bytes appended.
  uint64_t checkpoints = 0;    ///< Successful Checkpoint() calls.
  uint64_t replayed_on_recovery = 0;  ///< Events re-posted by Start().
  /// A log writer hit a sticky I/O failure and the runtime fell back to
  /// in-memory operation: events keep flowing but are no longer durable.
  bool degraded = false;
};

/// Aggregated view over all shards, plus the per-shard breakdown and the
/// per-producer (e.g. per-connection) attribution.
struct RuntimeMetricsSnapshot {
  ShardMetricsSnapshot total;
  std::vector<ShardMetricsSnapshot> shards;
  std::vector<ProducerMetricsSnapshot> producers;
  WalMetricsSummary wal;
  /// Class-scope sequencer counters (enabled=false when the runtime runs
  /// without a sequencer and class triggers evaluate inline).
  seq::SequencerMetricsSnapshot sequencer;

  /// Multi-line text dump for benches and operator logs.
  std::string ToString() const;
};

}  // namespace runtime
}  // namespace ode

#endif  // ODE_RUNTIME_METRICS_H_
