#include "semantics/oracle.h"

#include <map>
#include <utility>

namespace ode {

namespace {

/// One evaluation session: memoizes Eval(node, start) results.
class Evaluator {
 public:
  Evaluator(const Alphabet& alphabet, const std::vector<SymbolId>& history)
      : alphabet_(alphabet), history_(history) {}

  /// Marks for the suffix history_[start..]; index i corresponds to the
  /// absolute position start + i (0-based).
  Result<std::vector<bool>> Eval(const EventExpr& e, size_t start) {
    auto key = std::make_pair(&e, start);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    Result<std::vector<bool>> r = EvalUncached(e, start);
    if (r.ok()) memo_.emplace(key, *r);
    return r;
  }

 private:
  size_t SuffixLen(size_t start) const { return history_.size() - start; }

  Result<std::vector<bool>> EvalUncached(const EventExpr& e, size_t start) {
    const size_t len = SuffixLen(start);
    std::vector<bool> res(len, false);
    switch (e.kind) {
      case EventExprKind::kEmpty:
        return res;

      case EventExprKind::kAtom: {
        Result<SymbolSet> syms = alphabet_.SymbolsFor(e);
        if (!syms.ok()) return syms.status();
        for (size_t i = 0; i < len; ++i) {
          res[i] = syms->Contains(history_[start + i]);
        }
        return res;
      }

      case EventExprKind::kOr: {
        ODE_ASSIGN_OR_RETURN(std::vector<bool> a,
                             Eval(*e.children[0], start));
        ODE_ASSIGN_OR_RETURN(std::vector<bool> b,
                             Eval(*e.children[1], start));
        for (size_t i = 0; i < len; ++i) res[i] = a[i] || b[i];
        return res;
      }

      case EventExprKind::kAnd: {
        ODE_ASSIGN_OR_RETURN(std::vector<bool> a,
                             Eval(*e.children[0], start));
        ODE_ASSIGN_OR_RETURN(std::vector<bool> b,
                             Eval(*e.children[1], start));
        for (size_t i = 0; i < len; ++i) res[i] = a[i] && b[i];
        return res;
      }

      case EventExprKind::kNot: {
        // Complement with respect to the set of all points (§4 item 5).
        ODE_ASSIGN_OR_RETURN(std::vector<bool> a,
                             Eval(*e.children[0], start));
        for (size_t i = 0; i < len; ++i) res[i] = !a[i];
        return res;
      }

      case EventExprKind::kRelative: {
        // Curried: relative(E1,...,En) = relative(relative(E1,E2),...).
        ODE_ASSIGN_OR_RETURN(std::vector<bool> acc,
                             Eval(*e.children[0], start));
        for (size_t c = 1; c < e.children.size(); ++c) {
          ODE_ASSIGN_OR_RETURN(
              acc, RelativeStep(acc, *e.children[c], start));
        }
        return acc;
      }

      case EventExprKind::kRelativePlus: {
        // Chains of one or more (§4 item 6): worklist closure.
        ODE_ASSIGN_OR_RETURN(res, Eval(*e.children[0], start));
        ODE_RETURN_IF_ERROR(ChainClosure(&res, *e.children[0], start));
        return res;
      }

      case EventExprKind::kRelativeN: {
        // Chains of length >= N.
        ODE_ASSIGN_OR_RETURN(std::vector<bool> s,
                             Eval(*e.children[0], start));
        for (int64_t k = 2; k <= e.n; ++k) {
          ODE_ASSIGN_OR_RETURN(s, RelativeStep(s, *e.children[0], start));
        }
        ODE_RETURN_IF_ERROR(ChainClosure(&s, *e.children[0], start));
        return s;
      }

      case EventExprKind::kPrior: {
        // prior(E, F): F's point with some E point strictly before it.
        ODE_ASSIGN_OR_RETURN(std::vector<bool> acc,
                             Eval(*e.children[0], start));
        for (size_t c = 1; c < e.children.size(); ++c) {
          ODE_ASSIGN_OR_RETURN(std::vector<bool> b,
                               Eval(*e.children[c], start));
          std::vector<bool> next(len, false);
          bool seen_a = false;
          for (size_t i = 0; i < len; ++i) {
            next[i] = b[i] && seen_a;
            seen_a = seen_a || acc[i];
          }
          acc = std::move(next);
        }
        return acc;
      }

      case EventExprKind::kPriorN: {
        ODE_ASSIGN_OR_RETURN(std::vector<bool> a,
                             Eval(*e.children[0], start));
        int64_t count = 0;
        for (size_t i = 0; i < len; ++i) {
          if (a[i]) {
            ++count;
            res[i] = count >= e.n;
          }
        }
        return res;
      }

      case EventExprKind::kSequence: {
        ODE_ASSIGN_OR_RETURN(std::vector<bool> acc,
                             Eval(*e.children[0], start));
        for (size_t c = 1; c < e.children.size(); ++c) {
          ODE_ASSIGN_OR_RETURN(
              acc, SequenceStep(acc, *e.children[c], start));
        }
        return acc;
      }

      case EventExprKind::kSequenceN: {
        ODE_ASSIGN_OR_RETURN(std::vector<bool> acc,
                             Eval(*e.children[0], start));
        for (int64_t k = 1; k < e.n; ++k) {
          ODE_ASSIGN_OR_RETURN(acc,
                               SequenceStep(acc, *e.children[0], start));
        }
        return acc;
      }

      case EventExprKind::kChoose:
      case EventExprKind::kEvery: {
        ODE_ASSIGN_OR_RETURN(std::vector<bool> a,
                             Eval(*e.children[0], start));
        int64_t count = 0;
        for (size_t i = 0; i < len; ++i) {
          if (a[i]) {
            ++count;
            res[i] = e.kind == EventExprKind::kChoose
                         ? count == e.n
                         : count % e.n == 0;
          }
        }
        return res;
      }

      case EventExprKind::kFa: {
        // First F relative to E with no G (relative to E) before it.
        ODE_ASSIGN_OR_RETURN(std::vector<bool> ev,
                             Eval(*e.children[0], start));
        for (size_t i = 0; i < len; ++i) {
          if (!ev[i]) continue;
          size_t sub = start + i + 1;
          if (sub > history_.size()) continue;
          ODE_ASSIGN_OR_RETURN(std::vector<bool> f,
                               Eval(*e.children[1], sub));
          ODE_ASSIGN_OR_RETURN(std::vector<bool> g,
                               Eval(*e.children[2], sub));
          for (size_t j = 0; j < f.size(); ++j) {
            if (g[j] && !f[j]) break;  // G strictly before the first F.
            if (f[j]) {
              // If G occurs at the same point as the first F, F still wins:
              // G must occur *prior to* p (§3.4).
              res[i + 1 + j] = true;
              break;
            }
          }
        }
        return res;
      }

      case EventExprKind::kFaAbs: {
        // Like fa, but G runs over the whole (current-context) history.
        ODE_ASSIGN_OR_RETURN(std::vector<bool> ev,
                             Eval(*e.children[0], start));
        ODE_ASSIGN_OR_RETURN(std::vector<bool> g_abs,
                             Eval(*e.children[2], start));
        for (size_t i = 0; i < len; ++i) {
          if (!ev[i]) continue;
          size_t sub = start + i + 1;
          if (sub > history_.size()) continue;
          ODE_ASSIGN_OR_RETURN(std::vector<bool> f,
                               Eval(*e.children[1], sub));
          for (size_t j = 0; j < f.size(); ++j) {
            // Positions strictly between |u| and the candidate p.
            if (f[j]) {
              bool blocked = false;
              for (size_t q = i + 1; q < i + 1 + j; ++q) {
                if (g_abs[q]) {
                  blocked = true;
                  break;
                }
              }
              if (!blocked) res[i + 1 + j] = true;
              break;  // Only the first F occurrence counts.
            }
            // A non-F point cannot end the search; the G check happens
            // against g_abs above once the first F is found.
          }
        }
        return res;
      }

      case EventExprKind::kMasked:
        return Status::Unimplemented(
            "the oracle does not evaluate nested composite masks (root "
            "masks are stripped by the engine before evaluation)");
      case EventExprKind::kGateAtom:
        return Status::Unimplemented(
            "the oracle evaluates source expressions, not compiled gate "
            "atoms");
    }
    return Status::Internal("unhandled expression kind in oracle");
  }

  /// relative step: points of `next` in suffixes starting right after each
  /// marked point of `acc`.
  Result<std::vector<bool>> RelativeStep(const std::vector<bool>& acc,
                                         const EventExpr& next,
                                         size_t start) {
    const size_t len = SuffixLen(start);
    std::vector<bool> out(len, false);
    for (size_t i = 0; i < len; ++i) {
      if (!acc[i]) continue;
      size_t sub = start + i + 1;
      if (sub > history_.size()) continue;
      ODE_ASSIGN_OR_RETURN(std::vector<bool> b, Eval(next, sub));
      for (size_t j = 0; j < b.size(); ++j) {
        if (b[j]) out[i + 1 + j] = true;
      }
    }
    return out;
  }

  /// sequence step: `next` must occur at exactly the next point.
  Result<std::vector<bool>> SequenceStep(const std::vector<bool>& acc,
                                         const EventExpr& next,
                                         size_t start) {
    const size_t len = SuffixLen(start);
    std::vector<bool> out(len, false);
    for (size_t i = 0; i + 1 < len; ++i) {
      if (!acc[i]) continue;
      size_t sub = start + i + 1;
      ODE_ASSIGN_OR_RETURN(std::vector<bool> b, Eval(next, sub));
      if (!b.empty() && b[0]) out[i + 1] = true;
    }
    return out;
  }

  /// Closes `marks` under "followed by another chained occurrence of e".
  Status ChainClosure(std::vector<bool>* marks, const EventExpr& e,
                      size_t start) {
    const size_t len = SuffixLen(start);
    std::vector<size_t> work;
    for (size_t i = 0; i < len; ++i) {
      if ((*marks)[i]) work.push_back(i);
    }
    while (!work.empty()) {
      size_t i = work.back();
      work.pop_back();
      size_t sub = start + i + 1;
      if (sub > history_.size()) continue;
      Result<std::vector<bool>> b = Eval(e, sub);
      if (!b.ok()) return b.status();
      for (size_t j = 0; j < b->size(); ++j) {
        if ((*b)[j] && !(*marks)[i + 1 + j]) {
          (*marks)[i + 1 + j] = true;
          work.push_back(i + 1 + j);
        }
      }
    }
    return Status::OK();
  }

  const Alphabet& alphabet_;
  const std::vector<SymbolId>& history_;
  std::map<std::pair<const EventExpr*, size_t>, std::vector<bool>> memo_;
};

}  // namespace

Oracle::Oracle(EventExprPtr expr, const Alphabet* alphabet)
    : expr_(std::move(expr)), alphabet_(alphabet) {
  while (expr_ != nullptr && expr_->kind == EventExprKind::kMasked) {
    expr_ = expr_->children[0];
  }
}

Result<std::vector<bool>> Oracle::OccurrencePoints(
    const std::vector<SymbolId>& history) const {
  Evaluator evaluator(*alphabet_, history);
  return evaluator.Eval(*expr_, 0);
}

Result<bool> Oracle::OccursAtEnd(const std::vector<SymbolId>& history) const {
  if (history.empty()) return false;
  ODE_ASSIGN_OR_RETURN(std::vector<bool> marks, OccurrencePoints(history));
  return static_cast<bool>(marks.back());
}

}  // namespace ode
