#ifndef ODE_SEMANTICS_ORACLE_H_
#define ODE_SEMANTICS_ORACLE_H_

#include <vector>

#include "common/result.h"
#include "compile/alphabet.h"
#include "lang/event_ast.h"

namespace ode {

/// Executable denotational semantics of §4: evaluates E[H] — the set of
/// history points labeled by an event expression — directly from the
/// operator definitions, *without* automata. Independent of the compiler,
/// so property tests can cross-check the two implementations
/// (tests/equivalence_property_test.cc, experiment E2), and the naive
/// baseline detector can re-evaluate it per posted event.
///
/// Histories are given as symbol sequences over a trigger Alphabet (masks
/// are resolved to micro-symbols at posting time, §5, so both the oracle
/// and the DFA consume identical inputs).
///
/// Complexity: memoized over (subexpression, suffix offset); worst case
/// O(|expr| · |H|²) per full evaluation — the cost the §5 automata avoid.
class Oracle {
 public:
  /// The expression must not contain nested composite masks (root-level
  /// masks are gated at fire time by the engine and ignored here, matching
  /// the compiler's treatment).
  Oracle(EventExprPtr expr, const Alphabet* alphabet);

  /// occurrence[p] (0-based) == true iff the expression occurs at history
  /// point p+1, i.e. H[1..p+1] ∈ L(E).
  Result<std::vector<bool>> OccurrencePoints(
      const std::vector<SymbolId>& history) const;

  /// Convenience: does the event occur at the last point of this history?
  Result<bool> OccursAtEnd(const std::vector<SymbolId>& history) const;

  const EventExpr& expr() const { return *expr_; }

 private:
  EventExprPtr expr_;           // Root composite masks stripped.
  const Alphabet* alphabet_;    // Not owned.
};

}  // namespace ode

#endif  // ODE_SEMANTICS_ORACLE_H_
