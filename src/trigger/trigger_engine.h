#ifndef ODE_TRIGGER_TRIGGER_ENGINE_H_
#define ODE_TRIGGER_TRIGGER_ENGINE_H_

#include <string>

#include "common/result.h"
#include "event/posted_event.h"
#include "ode/object.h"
#include "txn/transaction.h"

namespace ode {

class Database;

namespace seq {
struct SeqEvent;
struct SeqApplyProgress;
}  // namespace seq

/// The event-posting pipeline of §5:
///
///   "Whenever a basic event (with any associated parameters) is posted to
///    an object, we check the active triggers to determine whether or not
///    any logical events have occurred. If so, for each active trigger for
///    which a logical event has occurred, we move the automaton to the next
///    state. We determine all the trigger events that have occurred, and
///    then we fire the triggers."
///
/// Per posted event and per active trigger the engine does O(k) mask
/// evaluations (k = masks on that basic event) plus one DFA transition —
/// the efficiency claim bench_detection quantifies against the baselines.
class TriggerEngine {
 public:
  explicit TriggerEngine(Database* db) : db_(db) {}

  /// Posts a basic event to an object. Appends to the object's history,
  /// advances every active trigger's automaton (undo-logging committed-view
  /// states under `txn`), evaluates composite masks for accepting triggers,
  /// deactivates fired ordinary triggers, and executes actions.
  ///
  /// Returns the number of triggers fired. Returns kAborted when an action
  /// demands abort (the caller performs the rollback) and
  /// kResourceExhausted when trigger actions recursively post beyond the
  /// configured depth.
  Result<int> Post(Transaction* txn, Oid oid, PostedEvent event);

  /// Convenience for qualifier/kind events (create, access, tbegin, ...).
  Result<int> PostSimple(Transaction* txn, Oid oid, BasicEventKind kind,
                         EventQualifier q);

  /// Posts a time event identified by its canonical key (clock callback).
  Result<int> PostTime(Transaction* txn, Oid oid, const std::string& time_key,
                       TimeMs fire_time);

  /// Applies one sequenced class-scope event on the sequencer thread: steps
  /// the class automata using the publish-time classification, then fires
  /// occurred triggers from a system transaction that first acquires the
  /// posting object's lock (unless `allow_unlocked`, the bounded-wait
  /// fallback). kWouldBlock/kDeadlock are retryable: `progress` latches the
  /// non-idempotent advancement so a retry redoes only the firing. Returns
  /// the number of triggers fired.
  Result<int> ApplySequenced(const seq::SeqEvent& event,
                             seq::SeqApplyProgress* progress,
                             bool allow_unlocked);

  /// Current recursive posting depth on the calling thread. Depth is
  /// thread-local: each shard worker's action cascade is its own call
  /// chain, so the §5 depth bound applies per thread.
  int depth() const { return depth_; }

 private:
  /// Classifies the event for one trigger slot, resolves gate bits, steps
  /// the automaton (undo-logging committed-view state changes when
  /// `undo_logged`), and reports whether the trigger's event occurred at
  /// this point (acceptance gated by composite masks).
  Result<bool> AdvanceSlot(ActiveTrigger* slot, const TriggerProgram& program,
                           Transaction* txn, Object* obj, Oid oid,
                           const PostedEvent& event, bool undo_logged);

  /// AdvanceSlot minus the classification: steps gates and the main DFA
  /// from an already-classified base symbol (the sequencer's apply path,
  /// where classification happened shard-side at publish time).
  Result<bool> AdvanceClassified(ActiveTrigger* slot,
                                 const TriggerProgram& program,
                                 Transaction* txn, Object* obj, Oid oid,
                                 const PostedEvent& event, int32_t base_sym,
                                 bool undo_logged);

  /// Deactivates an ordinary trigger and runs the action (§2/§5).
  Status FireSlot(ActiveTrigger* slot, const TriggerProgram& program,
                  Transaction* txn, Oid oid, const PostedEvent& event,
                  bool class_scope, ClassId class_id);

  /// One shared classification + table step for a whole trigger group
  /// (§5 footnote 5); returns the mask of members that occurred (after
  /// composite-mask gating).
  Result<uint64_t> AdvanceGroupSlot(GroupSlot* slot,
                                    const TriggerGroup& group,
                                    Transaction* txn, Object* obj,
                                    const PostedEvent& event);

  /// Fires one group member: disarms ordinary members, runs the action.
  Status FireGroupMember(GroupSlot* slot, const TriggerGroup& group,
                         size_t bit, Transaction* txn, Oid oid,
                         const PostedEvent& event,
                         const RegisteredClass* cls);

  Database* db_;
  static thread_local int depth_;
};

}  // namespace ode

#endif  // ODE_TRIGGER_TRIGGER_ENGINE_H_
