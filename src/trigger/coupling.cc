#include "trigger/coupling.h"

#include "lang/event_parser.h"
#include "lang/mask_parser.h"

namespace ode {

std::string_view CouplingModeName(CouplingMode mode) {
  switch (mode) {
    case CouplingMode::kImmediateImmediate: return "immediate-immediate";
    case CouplingMode::kImmediateDeferred: return "immediate-deferred";
    case CouplingMode::kImmediateDependent: return "immediate-dependent";
    case CouplingMode::kImmediateIndependent: return "immediate-independent";
    case CouplingMode::kDeferredImmediate: return "deferred-immediate";
    case CouplingMode::kDeferredDependent: return "deferred-dependent";
    case CouplingMode::kDeferredIndependent: return "deferred-independent";
    case CouplingMode::kDependentImmediate: return "dependent-immediate";
    case CouplingMode::kIndependentImmediate: return "independent-immediate";
  }
  return "?";
}

namespace {

EventExprPtr AfterTbegin() {
  return EventExpr::Atom(
      BasicEvent::Make(BasicEventKind::kTbegin, EventQualifier::kAfter));
}
EventExprPtr BeforeTcomplete() {
  return EventExpr::Atom(
      BasicEvent::Make(BasicEventKind::kTcomplete, EventQualifier::kBefore));
}
EventExprPtr AfterTcommit() {
  return EventExpr::Atom(
      BasicEvent::Make(BasicEventKind::kTcommit, EventQualifier::kAfter));
}
EventExprPtr AfterTabort() {
  return EventExpr::Atom(
      BasicEvent::Make(BasicEventKind::kTabort, EventQualifier::kAfter));
}
EventExprPtr CommitOrAbort() {
  return EventExpr::Or(AfterTcommit(), AfterTabort());
}

EventExprPtr MaybeMask(EventExprPtr e, const MaskExprPtr& c) {
  if (c == nullptr) return e;
  return EventExpr::Masked(std::move(e), c);
}

}  // namespace

Result<EventExprPtr> BuildCoupling(CouplingMode mode, EventExprPtr e,
                                   MaskExprPtr c) {
  if (e == nullptr) return Status::InvalidArgument("null coupling event");
  switch (mode) {
    case CouplingMode::kImmediateImmediate:
      // 1. E && C ==> A
      return MaybeMask(std::move(e), c);

    case CouplingMode::kImmediateDeferred:
      // 2. fa(E && C, before tcomplete, after tbegin) ==> A
      return EventExpr::Fa(MaybeMask(std::move(e), c), BeforeTcomplete(),
                           AfterTbegin());

    case CouplingMode::kImmediateDependent:
      // 3. fa(E && C, after tcommit, after tbegin) ==> A
      return EventExpr::Fa(MaybeMask(std::move(e), c), AfterTcommit(),
                           AfterTbegin());

    case CouplingMode::kImmediateIndependent:
      // 4. fa(E && C, after tcommit | after tabort, after tbegin) ==> A
      return EventExpr::Fa(MaybeMask(std::move(e), c), CommitOrAbort(),
                           AfterTbegin());

    case CouplingMode::kDeferredImmediate:
      // 5. fa(E, before tcomplete, after tbegin) && C ==> A
      return MaybeMask(
          EventExpr::Fa(std::move(e), BeforeTcomplete(), AfterTbegin()), c);

    case CouplingMode::kDeferredDependent:
      // 6. fa(fa(E, before tcomplete, after tbegin) && C,
      //       after tcommit, after tbegin) ==> A
      return EventExpr::Fa(
          MaybeMask(
              EventExpr::Fa(std::move(e), BeforeTcomplete(), AfterTbegin()),
              c),
          AfterTcommit(), AfterTbegin());

    case CouplingMode::kDeferredIndependent:
      // 7. fa(fa(E, before tcomplete, after tbegin) && C,
      //       after tcommit | after tabort, after tbegin) ==> A
      return EventExpr::Fa(
          MaybeMask(
              EventExpr::Fa(std::move(e), BeforeTcomplete(), AfterTbegin()),
              c),
          CommitOrAbort(), AfterTbegin());

    case CouplingMode::kDependentImmediate:
      // 8. fa(E, after tcommit, after tbegin) && C ==> A
      return MaybeMask(
          EventExpr::Fa(std::move(e), AfterTcommit(), AfterTbegin()), c);

    case CouplingMode::kIndependentImmediate:
      // 9. fa(E, after tcommit | after tabort, after tbegin) && C ==> A
      return MaybeMask(
          EventExpr::Fa(std::move(e), CommitOrAbort(), AfterTbegin()), c);
  }
  return Status::InvalidArgument("unknown coupling mode");
}

Result<EventExprPtr> BuildCouplingFromText(CouplingMode mode,
                                           std::string_view event_text,
                                           std::string_view condition_text) {
  Result<EventExprPtr> e = ParseEvent(event_text);
  if (!e.ok()) return e;
  MaskExprPtr c;
  if (!condition_text.empty()) {
    Result<MaskExprPtr> parsed = ParseMask(condition_text);
    if (!parsed.ok()) return parsed.status();
    c = std::move(*parsed);
  }
  return BuildCoupling(mode, std::move(*e), std::move(c));
}

}  // namespace ode
