#include "trigger/trigger_def.h"

#include "common/strutil.h"

namespace ode {

Value ActionContext::Param(std::string_view name) const {
  if (trigger_params == nullptr) return Value();
  auto it = trigger_params->find(std::string(name));
  return it == trigger_params->end() ? Value() : it->second;
}

const PostedEvent* ActionContext::Witness(std::string_view method_name) const {
  if (witnesses == nullptr) return nullptr;
  // Prefer the `after` occurrence (it carries post-execution state); fall
  // back to `before`.
  const PostedEvent* found = nullptr;
  for (const auto& [key, event] : *witnesses) {
    if (event.kind != BasicEventKind::kMethod ||
        event.method_name != method_name) {
      continue;
    }
    if (event.qualifier == EventQualifier::kAfter) return &event;
    found = &event;
  }
  return found;
}

Value ActionContext::WitnessArg(std::string_view method_name,
                                std::string_view arg_name) const {
  const PostedEvent* w = Witness(method_name);
  if (w == nullptr) return Value();
  const Value* v = w->FindArg(arg_name);
  return v == nullptr ? Value() : *v;
}

ActionEffect ActionEffect::MakeMethod(std::string method, int arity,
                                      Target target, std::string class_name) {
  ActionEffect e;
  e.kind = Kind::kMethod;
  e.target = target;
  e.method = std::move(method);
  e.arity = arity;
  e.class_name = std::move(class_name);
  return e;
}

ActionEffect ActionEffect::MakeAbort() {
  ActionEffect e;
  e.kind = Kind::kAbort;
  return e;
}

std::string ActionEffect::ToString() const {
  if (kind == Kind::kAbort) return "aborts";
  std::string out = "posts " + method;
  if (arity >= 0) out += StrFormat("/%d", arity);
  switch (target) {
    case Target::kSelf:
      out += " on self";
      break;
    case Target::kSameClass:
      out += " on same-class";
      break;
    case Target::kClass:
      out += " on class " + class_name;
      break;
  }
  return out;
}

std::string ActionSignature::ToString() const {
  if (effects.empty()) return "none";
  std::string out;
  for (const ActionEffect& e : effects) {
    if (!out.empty()) out += ", ";
    out += e.ToString();
  }
  return out;
}

ActionRegistry::ActionRegistry() {
  // The paper's built-in abort action (trigger T1, §3.5).
  actions_.emplace("tabort", [](const ActionContext&) -> Status {
    return Status::Aborted("trigger requested transaction abort");
  });
  // Its effect is known exactly; a built-in signature does not flip
  // has_declared_signatures_ (cascade analysis stays opt-in).
  ActionSignature tabort_sig;
  tabort_sig.effects.push_back(ActionEffect::MakeAbort());
  signatures_.emplace("tabort", std::move(tabort_sig));
}

Status ActionRegistry::Register(std::string name, TriggerAction action) {
  auto [it, inserted] = actions_.emplace(std::move(name), std::move(action));
  if (!inserted) {
    return Status::AlreadyExists(
        StrFormat("action '%s' already registered", it->first.c_str()));
  }
  return Status::OK();
}

Status ActionRegistry::Register(std::string name, TriggerAction action,
                                ActionSignature signature) {
  std::string key = name;
  Status s = Register(std::move(name), std::move(action));
  if (!s.ok()) return s;
  signatures_.emplace(std::move(key), std::move(signature));
  has_declared_signatures_ = true;
  return Status::OK();
}

const TriggerAction* ActionRegistry::Find(std::string_view name) const {
  auto it = actions_.find(name);
  return it == actions_.end() ? nullptr : &it->second;
}

const ActionSignature* ActionRegistry::FindSignature(
    std::string_view name) const {
  auto it = signatures_.find(name);
  return it == signatures_.end() ? nullptr : &it->second;
}

std::map<std::string, ActionSignature, std::less<>>
ActionRegistry::SignatureMap() const {
  return signatures_;
}

}  // namespace ode
