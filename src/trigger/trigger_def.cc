#include "trigger/trigger_def.h"

#include "common/strutil.h"

namespace ode {

Value ActionContext::Param(std::string_view name) const {
  if (trigger_params == nullptr) return Value();
  auto it = trigger_params->find(std::string(name));
  return it == trigger_params->end() ? Value() : it->second;
}

const PostedEvent* ActionContext::Witness(std::string_view method_name) const {
  if (witnesses == nullptr) return nullptr;
  // Prefer the `after` occurrence (it carries post-execution state); fall
  // back to `before`.
  const PostedEvent* found = nullptr;
  for (const auto& [key, event] : *witnesses) {
    if (event.kind != BasicEventKind::kMethod ||
        event.method_name != method_name) {
      continue;
    }
    if (event.qualifier == EventQualifier::kAfter) return &event;
    found = &event;
  }
  return found;
}

Value ActionContext::WitnessArg(std::string_view method_name,
                                std::string_view arg_name) const {
  const PostedEvent* w = Witness(method_name);
  if (w == nullptr) return Value();
  const Value* v = w->FindArg(arg_name);
  return v == nullptr ? Value() : *v;
}

ActionRegistry::ActionRegistry() {
  // The paper's built-in abort action (trigger T1, §3.5).
  actions_.emplace("tabort", [](const ActionContext&) -> Status {
    return Status::Aborted("trigger requested transaction abort");
  });
}

Status ActionRegistry::Register(std::string name, TriggerAction action) {
  auto [it, inserted] = actions_.emplace(std::move(name), std::move(action));
  if (!inserted) {
    return Status::AlreadyExists(
        StrFormat("action '%s' already registered", it->first.c_str()));
  }
  return Status::OK();
}

const TriggerAction* ActionRegistry::Find(std::string_view name) const {
  auto it = actions_.find(name);
  return it == actions_.end() ? nullptr : &it->second;
}

}  // namespace ode
