#ifndef ODE_TRIGGER_TRIGGER_DEF_H_
#define ODE_TRIGGER_TRIGGER_DEF_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "event/posted_event.h"

namespace ode {

class Database;

/// Everything a trigger action can see when it runs: the firing event, the
/// object the trigger is attached to, the executing transaction (the
/// posting transaction for immediate firings, a system transaction for
/// post-commit/post-abort firings, §5), and the trigger's activation
/// parameters.
struct ActionContext {
  Database* db = nullptr;
  TxnId txn = 0;
  Oid self;
  std::string trigger_name;
  const PostedEvent* event = nullptr;  ///< The occurrence that fired it.
  const std::map<std::string, Value>* trigger_params = nullptr;
  /// §9 argument capture: latest occurrence of each referenced logical
  /// event, keyed by BasicEvent::CanonicalKey (null when capture is off).
  const std::map<std::string, PostedEvent>* witnesses = nullptr;

  /// Parameter lookup; null Value if absent.
  Value Param(std::string_view name) const;

  /// The most recent constituent occurrence of the method event with the
  /// given name (either qualifier), or null. E.g. after
  /// `relative(after deposit, after withdraw)` fires, Witness("deposit")
  /// carries the deposit's arguments.
  const PostedEvent* Witness(std::string_view method_name) const;

  /// Convenience: a named argument of Witness(method_name); null Value if
  /// absent.
  Value WitnessArg(std::string_view method_name,
                   std::string_view arg_name) const;
};

/// A trigger action. Returning a non-OK status aborts the executing
/// transaction (the paper's `==> tabort` is the built-in action that always
/// does so).
using TriggerAction = std::function<Status(const ActionContext&)>;

/// One declared observable effect of a trigger action — an event the action
/// may (directly or through the methods it calls) cause to be posted. The
/// cascade analyzer (analyze/cascade.h) builds the triggering graph from
/// these declarations; the engine does not enforce them.
struct ActionEffect {
  enum class Kind : uint8_t {
    kMethod = 0,  ///< The action calls a public method (posting its
                  ///< before/after method + update/access events).
    kAbort,       ///< The action aborts the transaction (tabort markers).
  };
  /// Which objects the posted events land on. kSelf and kSameClass both
  /// mean "some object of the posting trigger's class" to the static
  /// analysis; the distinction is kept for documentation and rendering.
  enum class Target : uint8_t { kSelf = 0, kSameClass, kClass };

  Kind kind = Kind::kMethod;
  Target target = Target::kSelf;
  std::string method;      ///< Kind::kMethod: the called method's name.
  int arity = -1;          ///< Parameter count; -1 = unspecified.
  std::string class_name;  ///< Target::kClass: the targeted class.

  static ActionEffect MakeMethod(std::string method, int arity = -1,
                                 Target target = Target::kSelf,
                                 std::string class_name = {});
  static ActionEffect MakeAbort();

  /// Sidecar syntax, e.g. "posts restock/2 on class stockroom" or "aborts".
  std::string ToString() const;
};

/// The declared effect signature of a named action: the complete set of
/// events it may cause. An empty effect list declares the action *pure*
/// (posts nothing). Actions registered WITHOUT a signature are *opaque* to
/// cascade analysis, which must then assume they may post anything (T003).
struct ActionSignature {
  std::vector<ActionEffect> effects;

  std::string ToString() const;  ///< "none" or comma-joined effects.
};

/// Name → action mapping. A database owns one; `tabort` is pre-registered
/// (with its abort effect signature).
class ActionRegistry {
 public:
  ActionRegistry();

  Status Register(std::string name, TriggerAction action);
  /// Registers an action together with its declared effect signature.
  Status Register(std::string name, TriggerAction action,
                  ActionSignature signature);
  const TriggerAction* Find(std::string_view name) const;

  /// The declared signature, or null when the action is unregistered or
  /// was registered without one (opaque).
  const ActionSignature* FindSignature(std::string_view name) const;

  /// True when any action beyond the built-ins declared a signature — the
  /// opt-in the Database registration hook keys cascade analysis on.
  bool has_declared_signatures() const { return has_declared_signatures_; }

  /// Snapshot of every declared signature (built-ins included), keyed by
  /// action name — the cascade analyzer's effect map.
  std::map<std::string, ActionSignature, std::less<>> SignatureMap() const;

 private:
  std::map<std::string, TriggerAction, std::less<>> actions_;
  std::map<std::string, ActionSignature, std::less<>> signatures_;
  bool has_declared_signatures_ = false;
};

/// Per-(object, trigger) activation record. `state` is the §5 "one word
/// per active trigger per object"; for committed-view triggers it is
/// undo-logged with the object, for full-view triggers it is not.
struct ActiveTrigger {
  int trigger_idx = -1;  ///< Index into the class's TriggerProgram list.
  bool active = false;
  int32_t state = 0;
  /// One sub-automaton state per gated subevent (nested composite mask);
  /// empty for ordinary triggers.
  std::vector<int32_t> gate_states;
  std::map<std::string, Value> params;  ///< Bound at activation (§2).

  /// §9 "incorporation of arguments into composite event specification":
  /// the most recent occurrence of each logical event the trigger
  /// references, so the action can read the constituent events' parameters
  /// when the composite fires. Keyed by BasicEvent::CanonicalKey; bounded
  /// by the trigger's alphabet size. Monitoring metadata — not undo-logged.
  std::map<std::string, PostedEvent> witnesses;
};

/// Per-(object, trigger group) activation record (§5 footnote 5): one
/// shared product-automaton state for all member triggers. `enabled` masks
/// out ordinary members that already fired; when it reaches zero the slot
/// deactivates. Group monitoring is full-history (not undo-logged) and
/// group members take no activation parameters.
struct GroupSlot {
  int group_idx = -1;
  bool active = false;
  int32_t state = 0;
  uint64_t enabled = 0;
  std::map<std::string, PostedEvent> witnesses;
};

}  // namespace ode

#endif  // ODE_TRIGGER_TRIGGER_DEF_H_
