#include "trigger/trigger_engine.h"

#include <mutex>

#include "common/strutil.h"
#include "mask/mask_eval.h"
#include "ode/database.h"
#include "seq/seq_event.h"
#include "seq/sequencer.h"

namespace ode {

thread_local int TriggerEngine::depth_ = 0;

namespace {

/// Mask-evaluation environment bound to one posting (§3.2): identifiers
/// resolve, in order, to (1) the atom's declared formal parameters bound
/// positionally to the event's actual arguments, (2) the event's own
/// argument names, (3) the trigger's activation parameters, (4) the
/// object's attributes. Member access dereferences object references; calls
/// dispatch to the database's registered host functions.
class DbMaskEnv : public MaskEnv {
 public:
  DbMaskEnv(Database* db, TxnId txn, const Object* self,
            const PostedEvent* event, const std::vector<ParamDecl>* params,
            const std::map<std::string, Value>* trigger_params)
      : db_(db),
        txn_(txn),
        self_(self),
        event_(event),
        params_(params),
        trigger_params_(trigger_params) {}

  Result<Value> Lookup(std::string_view name) const override {
    if (event_ != nullptr && params_ != nullptr) {
      for (size_t i = 0; i < params_->size(); ++i) {
        if ((*params_)[i].name == name) {
          if (i >= event_->args.size()) {
            return Status::InvalidArgument(StrFormat(
                "event '%s' has no argument at position %zu for parameter "
                "'%s'",
                event_->method_name.c_str(), i, std::string(name).c_str()));
          }
          return event_->args[i].value;
        }
      }
    }
    if (event_ != nullptr) {
      if (const Value* arg = event_->FindArg(name)) return *arg;
    }
    if (trigger_params_ != nullptr) {
      auto it = trigger_params_->find(std::string(name));
      if (it != trigger_params_->end()) return it->second;
    }
    if (self_ != nullptr && self_->HasAttr(name)) {
      return self_->GetAttr(name);
    }
    return Status::NotFound(StrFormat("mask identifier '%s' is unbound",
                                      std::string(name).c_str()));
  }

  Result<Value> Member(const Value& base,
                       std::string_view field) const override {
    Result<Oid> oid = base.AsOid();
    if (!oid.ok()) {
      return Status::InvalidArgument(
          StrFormat("member access '.%s' requires an object reference",
                    std::string(field).c_str()));
    }
    return db_->PeekAttr(*oid, field);
  }

  Result<Value> Call(std::string_view fn,
                     const std::vector<Value>& args) const override {
    HostContext ctx;
    ctx.db = db_;
    ctx.txn = txn_;
    ctx.self = self_ != nullptr ? self_->oid() : kNullOid;
    ctx.event = event_;
    return db_->CallHostFunction(fn, args, ctx);
  }

 private:
  Database* db_;
  TxnId txn_;
  const Object* self_;
  const PostedEvent* event_;
  const std::vector<ParamDecl>* params_;
  const std::map<std::string, Value>* trigger_params_;
};

class DepthGuard {
 public:
  explicit DepthGuard(int* depth) : depth_(depth) { ++*depth_; }
  ~DepthGuard() { --*depth_; }

 private:
  int* depth_;
};

}  // namespace

Result<bool> TriggerEngine::AdvanceSlot(ActiveTrigger* slot,
                                        const TriggerProgram& program,
                                        Transaction* txn, Object* obj,
                                        Oid oid, const PostedEvent& event,
                                        bool undo_logged) {
  auto eval_mask = [&](const MaskSlot& mask_slot,
                       const PostedEvent& ev) -> Result<bool> {
    db_->BumpMaskEvaluations();
    DbMaskEnv env(db_, txn != nullptr ? txn->id() : 0, obj, &ev,
                  &mask_slot.params, &slot->params);
    return EvalMaskBool(*mask_slot.mask, env);
  };
  Result<SymbolId> base_sym =
      program.event.alphabet.Classify(event, eval_mask);
  if (!base_sym.ok()) return base_sym.status();
  return AdvanceClassified(slot, program, txn, obj, oid, event, *base_sym,
                           undo_logged);
}

Result<bool> TriggerEngine::AdvanceClassified(
    ActiveTrigger* slot, const TriggerProgram& program, Transaction* txn,
    Object* obj, Oid oid, const PostedEvent& event, int32_t base_sym,
    bool undo_logged) {
  // §9 argument capture: remember the latest occurrence of each referenced
  // logical event for the action's Witness() lookups.
  if (db_->options().capture_witnesses) {
    const BasicEvent* spec = program.event.alphabet.MatchingSpec(event);
    if (spec != nullptr) {
      slot->witnesses[spec->CanonicalKey()] = event;
    }
  }

  const Dfa& dfa = program.ActiveDfa();
  int32_t old_state = slot->state;
  std::vector<int32_t> old_gate_states = slot->gate_states;

  // Resolve gated subevents bottom-up (§7 nested composite masks): step
  // each gate's sub-DFA, evaluate its mask against the current database
  // state, and accumulate the occurrence bits into the extended symbol.
  uint32_t gate_bits = 0;
  const std::vector<GateDef>& gates = program.event.gates;
  if (slot->gate_states.size() < gates.size()) {
    slot->gate_states.resize(gates.size(), 0);
  }
  for (size_t g = 0; g < gates.size(); ++g) {
    SymbolId ext = program.event.ExtendSymbol(base_sym, gate_bits);
    int32_t gs = gates[g].dfa.Step(slot->gate_states[g], ext);
    slot->gate_states[g] = gs;
    if (gates[g].dfa.accepting(gs)) {
      db_->BumpMaskEvaluations();
      DbMaskEnv env(db_, txn != nullptr ? txn->id() : 0, obj,
                    /*event=*/nullptr, /*params=*/nullptr, &slot->params);
      Result<bool> holds = EvalMaskBool(*gates[g].mask, env);
      if (!holds.ok()) return holds.status();
      if (*holds) gate_bits |= (1u << g);
    }
  }

  SymbolId ext_sym = program.event.ExtendSymbol(base_sym, gate_bits);
  int32_t new_state = dfa.Step(old_state, ext_sym);
  if (undo_logged && program.view == HistoryView::kCommitted &&
      txn != nullptr &&
      (new_state != old_state || slot->gate_states != old_gate_states)) {
    UndoEntry undo;
    undo.kind = UndoEntry::Kind::kTriggerState;
    undo.oid = oid;
    undo.trigger_idx = slot->trigger_idx;
    undo.old_state = old_state;
    undo.old_gate_states = std::move(old_gate_states);
    txn->PushUndo(std::move(undo));
  }
  slot->state = new_state;

  if (!dfa.accepting(new_state)) return false;

  // Composite masks gate occurrence against the *current* database state
  // (§3.3). They see trigger params and object state but not the
  // constituent events' parameters.
  for (const MaskExprPtr& mask : program.event.composite_masks) {
    db_->BumpMaskEvaluations();
    DbMaskEnv env(db_, txn != nullptr ? txn->id() : 0, obj,
                  /*event=*/nullptr, /*params=*/nullptr, &slot->params);
    Result<bool> ok = EvalMaskBool(*mask, env);
    if (!ok.ok()) return ok.status();
    if (!*ok) return false;
  }
  return true;
}

Status TriggerEngine::FireSlot(ActiveTrigger* slot,
                               const TriggerProgram& program,
                               Transaction* txn, Oid oid,
                               const PostedEvent& event, bool class_scope,
                               ClassId class_id) {
  if (class_scope) {
    db_->BumpClassTriggersFired(class_id, program.spec.name);
  } else {
    db_->BumpTriggersFired(oid, program.spec.name);
  }

  if (!program.spec.perpetual) {
    // An ordinary trigger is automatically deactivated the moment it
    // fires (§2).
    if (!class_scope && program.view == HistoryView::kCommitted &&
        txn != nullptr) {
      UndoEntry undo;
      undo.kind = UndoEntry::Kind::kTriggerActive;
      undo.oid = oid;
      undo.trigger_idx = slot->trigger_idx;
      undo.old_active = true;
      txn->PushUndo(std::move(undo));
    }
    slot->active = false;
    if (!class_scope) db_->ReleaseTriggerTimers(oid, program);
  }

  if (program.spec.action.empty()) return Status::OK();
  const TriggerAction* action = db_->FindAction(program.spec.action);
  if (action == nullptr) {
    return Status::NotFound(StrFormat(
        "trigger '%s' names unregistered action '%s'",
        program.spec.name.c_str(), program.spec.action.c_str()));
  }
  ActionContext ctx;
  ctx.db = db_;
  ctx.txn = txn != nullptr ? txn->id() : 0;
  ctx.self = oid;
  ctx.trigger_name = program.spec.name;
  ctx.event = &event;
  ctx.trigger_params = &slot->params;
  ctx.witnesses = &slot->witnesses;
  Status s = (*action)(ctx);
  if (!s.ok()) {
    if (s.code() == StatusCode::kAborted) {
      return Status::Aborted(StrFormat(
          "trigger '%s' aborted the transaction: %s",
          program.spec.name.c_str(), s.message().c_str()));
    }
    return s;
  }
  return Status::OK();
}

namespace {
const std::map<std::string, Value>& EmptyParams() {
  static const std::map<std::string, Value>* kEmpty =
      new std::map<std::string, Value>();
  return *kEmpty;
}
}  // namespace

Result<uint64_t> TriggerEngine::AdvanceGroupSlot(GroupSlot* slot,
                                                 const TriggerGroup& group,
                                                 Transaction* txn,
                                                 Object* obj,
                                                 const PostedEvent& event) {
  auto eval_mask = [&](const MaskSlot& mask_slot,
                       const PostedEvent& ev) -> Result<bool> {
    db_->BumpMaskEvaluations();
    DbMaskEnv env(db_, txn != nullptr ? txn->id() : 0, obj, &ev,
                  &mask_slot.params, &EmptyParams());
    return EvalMaskBool(*mask_slot.mask, env);
  };
  Result<SymbolId> sym = group.program.alphabet().Classify(event, eval_mask);
  if (!sym.ok()) return sym.status();

  if (db_->options().capture_witnesses) {
    const BasicEvent* spec = group.program.alphabet().MatchingSpec(event);
    if (spec != nullptr) slot->witnesses[spec->CanonicalKey()] = event;
  }

  // The footnote-5 payoff: ONE step for every member trigger.
  slot->state = group.program.dfa().Step(slot->state, *sym);
  uint64_t bits = group.program.AcceptMask(slot->state) & slot->enabled;
  if (bits == 0) return uint64_t{0};

  // Per-member root composite masks gate occurrence (§3.3).
  uint64_t passed = 0;
  for (size_t bit = 0; bit < group.member_idxs.size(); ++bit) {
    if (((bits >> bit) & 1) == 0) continue;
    bool pass = true;
    for (const MaskExprPtr& mask : group.program.composite_masks(bit)) {
      db_->BumpMaskEvaluations();
      DbMaskEnv env(db_, txn != nullptr ? txn->id() : 0, obj,
                    /*event=*/nullptr, /*params=*/nullptr, &EmptyParams());
      Result<bool> ok = EvalMaskBool(*mask, env);
      if (!ok.ok()) return ok.status();
      if (!*ok) {
        pass = false;
        break;
      }
    }
    if (pass) passed |= (uint64_t{1} << bit);
  }
  return passed;
}

Status TriggerEngine::FireGroupMember(GroupSlot* slot,
                                      const TriggerGroup& group, size_t bit,
                                      Transaction* txn, Oid oid,
                                      const PostedEvent& event,
                                      const RegisteredClass* cls) {
  const TriggerProgram& member = cls->triggers[group.member_idxs[bit]];
  db_->BumpTriggersFired(oid, member.spec.name);

  if (!member.spec.perpetual) {
    // An ordinary member disarms individually; the group slot dies when
    // its last member has fired.
    slot->enabled &= ~(uint64_t{1} << bit);
    if (slot->enabled == 0) {
      slot->active = false;
      db_->ReleaseAlphabetTimers(oid, group.program.alphabet());
    }
  }

  if (member.spec.action.empty()) return Status::OK();
  const TriggerAction* action = db_->FindAction(member.spec.action);
  if (action == nullptr) {
    return Status::NotFound(StrFormat(
        "trigger '%s' names unregistered action '%s'",
        member.spec.name.c_str(), member.spec.action.c_str()));
  }
  ActionContext ctx;
  ctx.db = db_;
  ctx.txn = txn != nullptr ? txn->id() : 0;
  ctx.self = oid;
  ctx.trigger_name = member.spec.name;
  ctx.event = &event;
  ctx.trigger_params = &EmptyParams();
  ctx.witnesses = &slot->witnesses;
  Status s = (*action)(ctx);
  if (!s.ok() && s.code() == StatusCode::kAborted) {
    return Status::Aborted(StrFormat(
        "trigger '%s' aborted the transaction: %s",
        member.spec.name.c_str(), s.message().c_str()));
  }
  return s;
}

Result<int> TriggerEngine::Post(Transaction* txn, Oid oid, PostedEvent event) {
  if (depth_ >= db_->options().max_posting_depth) {
    return Status::ResourceExhausted(StrFormat(
        "trigger actions recursively posted events beyond depth %d "
        "(non-terminating trigger cascade?)",
        db_->options().max_posting_depth));
  }
  DepthGuard guard(&depth_);

  Result<Object*> obj_result = db_->GetObject(oid);
  if (!obj_result.ok()) return obj_result.status();
  Object* obj = *obj_result;

  event.object = oid;
  event.time = db_->clock().now();
  if (event.txn == 0 && txn != nullptr) event.txn = txn->id();
  event.seq = db_->NextSeq(oid);
  db_->RecordHistory(event);
  db_->BumpEventsPosted();

  const ClassId class_id = obj->class_id();
  const RegisteredClass* cls = db_->classes().FindById(class_id);
  if (cls == nullptr) return Status::Internal("object with unknown class");

  // Phase 1 (§5): advance every active trigger — per-object slots, then
  // class-scope slots over the merged instance stream (§9 extension), then
  // combined trigger groups (§5 footnote 5) — and determine all
  // occurrences.
  enum class Scope { kObject, kClass, kGroup };
  struct Pending {
    Scope scope;
    size_t idx;
    uint64_t bits = 0;  // kGroup: which members occurred (mask-gated).
  };
  std::vector<Pending> fired;
  const size_t num_slots = obj->trigger_slots().size();
  for (size_t i = 0; i < num_slots; ++i) {
    ActiveTrigger& slot = obj->trigger_slots()[i];
    if (!slot.active) continue;
    const TriggerProgram& program = cls->triggers[slot.trigger_idx];
    Result<bool> occurred = AdvanceSlot(&slot, program, txn, obj, oid, event,
                                        /*undo_logged=*/true);
    if (!occurred.ok()) return occurred.status();
    if (*occurred) fired.push_back({Scope::kObject, i, 0});
  }
  // Class-scope slots are shared mutable state across every instance of
  // the class. With a sequencer attached (the runtime's ingestion path),
  // the shard does only the per-event work that needs the posting object —
  // mask classification, evaluated here while the poster still owns the
  // object — and publishes a SeqEvent; the dedicated sequencer thread owns
  // all slot advancement and firing in its deterministic merge order
  // (docs/SEQUENCER.md). Without a sequencer, and for action cascades on
  // the sequencer thread itself (a cascaded event is a synchronous child
  // of the firing event, so its place in the total order IS the firing
  // point), the legacy inline path advances under class_post_mu_:
  // recursive, so actions that post re-entrantly on this thread do not
  // self-deadlock; lock-manager acquires inside actions never block
  // (kWouldBlock), so no cycle.
  std::unique_lock<std::recursive_mutex> class_lock;
  std::vector<ActiveTrigger>* class_slots = db_->ClassSlots(class_id);
  seq::Sequencer* sequencer =
      class_slots != nullptr ? db_->sequencer() : nullptr;
  if (class_slots != nullptr && sequencer != nullptr &&
      !seq::OnSequencerThread()) {
    // Publish-side critical section: the scope keeps (de)activation's
    // quiesce barrier out while slot params are being read.
    seq::Sequencer::PublishScope publish_scope(sequencer);
    seq::SeqEvent sev;
    sev.class_id = class_id;
    sev.oid = oid;
    const uint64_t active_mask = db_->ClassActiveMask(class_id);
    for (size_t i = 0; i < class_slots->size() && i < 64; ++i) {
      if (((active_mask >> i) & 1) == 0) continue;
      ActiveTrigger& slot = (*class_slots)[i];
      const TriggerProgram& program = cls->triggers[slot.trigger_idx];
      auto eval_mask = [&](const MaskSlot& mask_slot,
                           const PostedEvent& ev) -> Result<bool> {
        db_->BumpMaskEvaluations();
        DbMaskEnv env(db_, txn != nullptr ? txn->id() : 0, obj, &ev,
                      &mask_slot.params, &slot.params);
        return EvalMaskBool(*mask_slot.mask, env);
      };
      Result<SymbolId> base_sym =
          program.event.alphabet.Classify(event, eval_mask);
      if (!base_sym.ok()) return base_sym.status();
      if (program.other_inert &&
          *base_sym == program.event.alphabet.other_symbol()) {
        // Provably a no-op for this slot from every state (and OTHER
        // never updates witnesses): leave it out of the stream.
        continue;
      }
      sev.syms.push_back(seq::SeqSym{slot.trigger_idx, *base_sym});
    }
    // Publish only events that can affect some slot. This keeps each
    // lane's published sequence a pure function of the shard's WAL event
    // order: transaction-marker and other inert events vary with runtime
    // batch boundaries, and admitting them would shift lane sequence
    // numbers so crash replay could not line regenerated publishes up
    // with the order log's watermarks (docs/SEQUENCER.md).
    if (!sev.syms.empty()) {
      sev.event = event;
      sequencer->Publish(std::move(sev));
    }
  } else if (class_slots != nullptr) {
    class_lock =
        std::unique_lock<std::recursive_mutex>(db_->class_post_mu_);
    for (size_t i = 0; i < class_slots->size(); ++i) {
      ActiveTrigger& slot = (*class_slots)[i];
      if (!slot.active) continue;
      const TriggerProgram& program = cls->triggers[slot.trigger_idx];
      Result<bool> occurred = AdvanceSlot(&slot, program, txn, obj, oid,
                                          event, /*undo_logged=*/false);
      if (!occurred.ok()) return occurred.status();
      if (*occurred) fired.push_back({Scope::kClass, i, 0});
    }
  }
  const size_t num_group_slots = obj->group_slots().size();
  for (size_t i = 0; i < num_group_slots; ++i) {
    GroupSlot& slot = obj->group_slots()[i];
    if (!slot.active) continue;
    const TriggerGroup& group = cls->groups[slot.group_idx];
    Result<uint64_t> bits =
        AdvanceGroupSlot(&slot, group, txn, obj, event);
    if (!bits.ok()) return bits.status();
    if (*bits != 0) fired.push_back({Scope::kGroup, i, *bits});
  }

  // Phase 2 (§5): fire the triggers. "If the posting of a logical event
  // leads to the firing of multiple triggers, then the order in which the
  // triggers are fired is implementation dependent" — ours is object slots
  // in slot order, then class slots, then groups.
  int total_fired = 0;
  for (const Pending& p : fired) {
    if (p.scope == Scope::kGroup) {
      Result<Object*> refetched = db_->GetObject(oid);
      if (!refetched.ok()) break;
      if (p.idx >= (*refetched)->group_slots().size()) continue;
      GroupSlot* slot = &(*refetched)->group_slots()[p.idx];
      const TriggerGroup& group = cls->groups[slot->group_idx];
      for (size_t bit = 0; bit < group.member_idxs.size(); ++bit) {
        if (((p.bits >> bit) & 1) == 0) continue;
        ++total_fired;
        ODE_RETURN_IF_ERROR(FireGroupMember(slot, group, bit, txn, oid,
                                            event, cls));
        // Re-fetch in case the action touched the object.
        refetched = db_->GetObject(oid);
        if (!refetched.ok()) break;
        if (p.idx >= (*refetched)->group_slots().size()) break;
        slot = &(*refetched)->group_slots()[p.idx];
      }
      continue;
    }
    ActiveTrigger* slot = nullptr;
    if (p.scope == Scope::kClass) {
      // Still under class_lock from phase 1.
      if (class_slots == nullptr || p.idx >= class_slots->size()) continue;
      slot = &(*class_slots)[p.idx];
    } else {
      // Re-fetch: an earlier action may have mutated or even deleted the
      // object.
      Result<Object*> refetched = db_->GetObject(oid);
      if (!refetched.ok()) break;
      if (p.idx >= (*refetched)->trigger_slots().size()) continue;
      slot = &(*refetched)->trigger_slots()[p.idx];
    }
    ++total_fired;
    const TriggerProgram& program = cls->triggers[slot->trigger_idx];
    ODE_RETURN_IF_ERROR(FireSlot(slot, program, txn, oid, event,
                                 p.scope == Scope::kClass, class_id));
  }
  return total_fired;
}

Result<int> TriggerEngine::ApplySequenced(const seq::SeqEvent& sev,
                                          seq::SeqApplyProgress* progress,
                                          bool allow_unlocked) {
  const RegisteredClass* cls = db_->classes().FindById(sev.class_id);
  if (cls == nullptr) {
    return Status::NotFound("sequenced event for unknown class");
  }
  std::vector<ActiveTrigger>* slots = db_->ClassSlots(sev.class_id);
  if (slots == nullptr) return 0;

  auto find_slot = [&](int32_t trigger_idx) -> ActiveTrigger* {
    for (ActiveTrigger& s : *slots) {
      if (s.trigger_idx == trigger_idx) return &s;
    }
    return nullptr;
  };
  auto valid_idx = [&](int32_t idx) {
    return idx >= 0 && static_cast<size_t>(idx) < cls->triggers.size();
  };

  // Gates and composite masks read database state (attributes, host fns),
  // which requires the firing transaction; everything else steps automata
  // from the publish-time symbols without touching shared database state.
  bool needs_db = false;
  for (const seq::SeqSym& sym : sev.syms) {
    if (!valid_idx(sym.trigger_idx)) continue;
    const TriggerProgram& p = cls->triggers[sym.trigger_idx];
    if (!p.event.gates.empty() || !p.event.composite_masks.empty()) {
      needs_db = true;
    }
  }

  if (!needs_db && !progress->advanced) {
    // Fast path: advance without any transaction or lock. The latch is set
    // after the loop — nothing below can fail, and DFA steps must never
    // rerun on a firing-phase retry.
    for (const seq::SeqSym& sym : sev.syms) {
      if (!valid_idx(sym.trigger_idx)) continue;
      ActiveTrigger* slot = find_slot(sym.trigger_idx);
      if (slot == nullptr || !slot->active) continue;
      const TriggerProgram& program = cls->triggers[sym.trigger_idx];
      if (db_->options().capture_witnesses) {
        const BasicEvent* spec =
            program.event.alphabet.MatchingSpec(sev.event);
        if (spec != nullptr) slot->witnesses[spec->CanonicalKey()] = sev.event;
      }
      const Dfa& dfa = program.ActiveDfa();
      SymbolId ext = program.event.ExtendSymbol(sym.symbol, 0);
      slot->state = dfa.Step(slot->state, ext);
      // No composite masks on this path (needs_db would be true), so
      // acceptance is occurrence.
      if (dfa.accepting(slot->state)) {
        progress->pending_fire.push_back(sym.trigger_idx);
      }
    }
    progress->advanced = true;
  }
  if (progress->advanced && progress->pending_fire.empty()) return 0;

  // Firing (and gate/composite-bearing advancement) runs in a system
  // transaction that first acquires the posting object — the same lock
  // shard transactions take — so a class trigger's action is serialized
  // with the object's own shard. TouchObject comes FIRST: its
  // kWouldBlock/kDeadlock bounce out before any non-idempotent mutation,
  // making the whole call safely retryable until `progress->advanced`.
  int fired = 0;
  Status txn_status = db_->RunSystemTxn([&](Transaction* sys) -> Status {
    Object* obj = nullptr;
    if (db_->Exists(sev.oid)) {
      if (!allow_unlocked) {
        ODE_RETURN_IF_ERROR(
            db_->TouchObject(sys, sev.oid, LockMode::kExclusive));
      }
      Result<Object*> got = db_->GetObject(sev.oid);
      if (got.ok()) obj = *got;
    }
    if (!progress->advanced) {
      // Latch first: a mask error below is recorded and skipped, never
      // retried (retrying would double-step the automata).
      progress->advanced = true;
      for (const seq::SeqSym& sym : sev.syms) {
        if (!valid_idx(sym.trigger_idx)) continue;
        ActiveTrigger* slot = find_slot(sym.trigger_idx);
        if (slot == nullptr || !slot->active) continue;
        const TriggerProgram& program = cls->triggers[sym.trigger_idx];
        Result<bool> occurred =
            AdvanceClassified(slot, program, sys, obj, sev.oid, sev.event,
                              sym.symbol, /*undo_logged=*/false);
        if (!occurred.ok()) {
          if (progress->error.empty()) {
            progress->error = occurred.status().message();
          }
          continue;
        }
        if (*occurred) progress->pending_fire.push_back(sym.trigger_idx);
      }
    }
    for (int32_t idx : progress->pending_fire) {
      if (!valid_idx(idx)) continue;
      ActiveTrigger* slot = find_slot(idx);
      if (slot == nullptr) continue;
      const TriggerProgram& program = cls->triggers[idx];
      ++fired;
      Status s = FireSlot(slot, program, sys, sev.oid, sev.event,
                          /*class_scope=*/true, sev.class_id);
      // Action failures — including demands to abort, which cannot reach
      // the long-committed posting transaction — are recorded and never
      // retried (fire counters must not drift).
      if (!s.ok() && progress->error.empty()) progress->error = s.message();
    }
    progress->pending_fire.clear();
    return Status::OK();
  });
  if (!txn_status.ok()) return txn_status;
  if (fired > 0) db_->SyncClassActiveMask(sev.class_id);
  return fired;
}

Result<int> TriggerEngine::PostSimple(Transaction* txn, Oid oid,
                                      BasicEventKind kind, EventQualifier q) {
  return Post(txn, oid, MakePosted(kind, q, txn != nullptr ? txn->id() : 0));
}

Result<int> TriggerEngine::PostTime(Transaction* txn, Oid oid,
                                    const std::string& time_key,
                                    TimeMs fire_time) {
  PostedEvent event;
  event.kind = BasicEventKind::kTime;
  event.qualifier = EventQualifier::kNone;
  event.time_key = time_key;
  event.time = fire_time;
  return Post(txn, oid, std::move(event));
}

}  // namespace ode
