#ifndef ODE_TRIGGER_COUPLING_H_
#define ODE_TRIGGER_COUPLING_H_

#include <string>

#include "common/result.h"
#include "lang/event_ast.h"

namespace ode {

/// The nine E-C-A coupling modes of §7, expressed — as the paper argues —
/// purely as E-A event expressions over transaction events. Mode names are
/// (event→condition coupling)-(condition→action coupling):
///
///  1. Immediate-Immediate:     E && C
///  2. Immediate-Deferred:      fa(E && C, before tcomplete, after tbegin)
///  3. Immediate-Dependent:     fa(E && C, after tcommit, after tbegin)
///  4. Immediate-Independent:   fa(E && C, after tcommit | after tabort,
///                                 after tbegin)
///  5. Deferred-Immediate (= Deferred-Deferred):
///                              fa(E, before tcomplete, after tbegin) && C
///  6. Deferred-Dependent:      fa(fa(E, before tcomplete, after tbegin)
///                                 && C, after tcommit, after tbegin)
///  7. Deferred-Independent:    fa(fa(E, before tcomplete, after tbegin)
///                                 && C, after tcommit | after tabort,
///                                 after tbegin)
///  8. Dependent-Immediate:     fa(E, after tcommit, after tbegin) && C
///  9. Independent-Immediate:   fa(E, after tcommit | after tabort,
///                                 after tbegin) && C
///
/// "Immediate" condition evaluation means C is checked at E's occurrence —
/// this puts `E && C` *inside* fa(), which the compiler supports through
/// gated subevents (see compile/compiler.h). Pass a null C to omit the
/// condition.
enum class CouplingMode : uint8_t {
  kImmediateImmediate = 1,
  kImmediateDeferred = 2,
  kImmediateDependent = 3,
  kImmediateIndependent = 4,
  kDeferredImmediate = 5,
  kDeferredDependent = 6,
  kDeferredIndependent = 7,
  kDependentImmediate = 8,
  kIndependentImmediate = 9,
};

std::string_view CouplingModeName(CouplingMode mode);

/// Builds the §7 expression for the given mode from event E and optional
/// condition C (null = no condition).
Result<EventExprPtr> BuildCoupling(CouplingMode mode, EventExprPtr e,
                                   MaskExprPtr c);

/// Convenience: builds from DSL texts ("after withdraw", "q > 100").
Result<EventExprPtr> BuildCouplingFromText(CouplingMode mode,
                                           std::string_view event_text,
                                           std::string_view condition_text);

}  // namespace ode

#endif  // ODE_TRIGGER_COUPLING_H_
