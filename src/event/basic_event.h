#ifndef ODE_EVENT_BASIC_EVENT_H_
#define ODE_EVENT_BASIC_EVENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "event/time_spec.h"

namespace ode {

/// The paper's alphabet of basic-event categories (§3.1).
enum class BasicEventKind : uint8_t {
  kCreate = 0,  ///< Object creation (after only).
  kDelete,      ///< Object deletion (before only).
  kUpdate,      ///< Object updated through a public member function.
  kRead,        ///< Object read (only) through a public member function.
  kAccess,      ///< Object accessed (read or update).
  kMethod,      ///< A specific member function execution.
  kTbegin,      ///< Transaction begin (after only).
  kTcomplete,   ///< Transaction code complete, about to commit (before only).
  kTcommit,     ///< Transaction commit (after only; `before tcommit` illegal).
  kTabort,      ///< Transaction abort (before or after).
  kTime,        ///< A time event (at / every / after time-spec).
};

/// `before` / `after` qualifier (§3.1). Time events carry kNone.
enum class EventQualifier : uint8_t { kBefore = 0, kAfter, kNone };

/// How a TimeSpec is interpreted for a kTime basic event (§3.1).
enum class TimeEventMode : uint8_t {
  kAt = 0,  ///< `at time-spec`: pattern match on the calendar.
  kEvery,   ///< `every time-period`: periodic from trigger activation.
  kAfter,   ///< `after time-period`: once, period after trigger activation.
};

std::string_view BasicEventKindName(BasicEventKind kind);
std::string_view EventQualifierName(EventQualifier q);
std::string_view TimeEventModeName(TimeEventMode mode);

/// A formal parameter declaration in a method-event specification,
/// e.g. `after withdraw(Item i, int q)` has params {Item i, int q}.
struct ParamDecl {
  std::string type_name;
  std::string name;

  bool operator==(const ParamDecl&) const = default;
};

/// A *basic event* specification: one symbol of the paper's §3.1 alphabet.
///
/// Identity (operator==, CanonicalKey) distinguishes events that the
/// detection machinery must treat as different history symbols.
struct BasicEvent {
  BasicEventKind kind = BasicEventKind::kMethod;
  EventQualifier qualifier = EventQualifier::kAfter;

  /// kMethod only: the member-function name.
  std::string method_name;
  /// kMethod only: optional signature used to disambiguate overloads and to
  /// name parameters for masks. Empty means "match by name alone".
  std::vector<ParamDecl> params;

  /// kTime only.
  TimeEventMode time_mode = TimeEventMode::kAt;
  TimeSpec time_spec;

  /// --- Factories -------------------------------------------------------
  static BasicEvent Make(BasicEventKind kind, EventQualifier q);
  static BasicEvent Method(EventQualifier q, std::string name,
                           std::vector<ParamDecl> params = {});
  static BasicEvent Time(TimeEventMode mode, TimeSpec spec);

  /// Checks the paper's legality rules: `after create`, `before delete`,
  /// before/after for update/read/access/method/tabort, `after tbegin`,
  /// `before tcomplete`, `after tcommit`; everything else rejected
  /// (in particular `before tcommit`, §3.1).
  Status Validate() const;

  /// Stable string identity, e.g. "after:method:withdraw/2" or
  /// "at:time(HR=9)". Two BasicEvents with equal keys are the same
  /// history symbol.
  std::string CanonicalKey() const;

  /// Human-oriented display form matching the paper's syntax,
  /// e.g. "after withdraw(Item i, int q)".
  std::string ToString() const;

  bool operator==(const BasicEvent& other) const;
};

/// True if the (kind, qualifier) pair is legal per §3.1.
bool IsLegalQualifier(BasicEventKind kind, EventQualifier q);

}  // namespace ode

#endif  // ODE_EVENT_BASIC_EVENT_H_
