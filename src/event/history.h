#ifndef ODE_EVENT_HISTORY_H_
#define ODE_EVENT_HISTORY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "event/posted_event.h"

namespace ode {

/// An *event history* (§3.4): the ordered sequence of logical events posted
/// to one object. Positions are 1-based, matching the paper's "point"
/// numbering; the implicit `start` pseudo-event sits at position 0.
///
/// The history is append-only. Suffix views (used by the `relative`
/// semantics, §4) are expressed as offsets — no copying.
class EventHistory {
 public:
  EventHistory() = default;

  /// Appends an occurrence, assigning its 1-based seq number. Returns the
  /// position.
  uint64_t Append(PostedEvent event);

  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// 1-based access (position 1 is the first posted event).
  const PostedEvent& at(uint64_t pos) const { return events_[pos - 1]; }

  const std::vector<PostedEvent>& events() const { return events_; }

  /// Drops all events (used when an object's monitoring is reset).
  void Clear() { events_.clear(); }

  /// Multi-line dump for debugging/tests.
  std::string ToString() const;

 private:
  std::vector<PostedEvent> events_;
};

}  // namespace ode

#endif  // ODE_EVENT_HISTORY_H_
