#include "event/history.h"

#include "common/strutil.h"

namespace ode {

uint64_t EventHistory::Append(PostedEvent event) {
  event.seq = events_.size() + 1;
  events_.push_back(std::move(event));
  return events_.back().seq;
}

std::string EventHistory::ToString() const {
  std::string out;
  for (const PostedEvent& e : events_) {
    out += StrFormat("%4llu: ", static_cast<unsigned long long>(e.seq));
    out += e.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace ode
