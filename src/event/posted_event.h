#ifndef ODE_EVENT_POSTED_EVENT_H_
#define ODE_EVENT_POSTED_EVENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/value.h"
#include "event/basic_event.h"
#include "event/time_spec.h"

namespace ode {

/// Identifier of a transaction. 0 means "no transaction / system".
using TxnId = uint64_t;

/// A named actual argument carried by a posted event (method parameters,
/// available to masks, §3.2).
struct EventArg {
  std::string name;
  Value value;
};

/// A *posted* (occurred) basic event: one entry in an object's history.
///
/// Where a BasicEvent is a specification, a PostedEvent is a runtime
/// instance with the actual method arguments, the posting transaction, the
/// occurrence time and the position in the object's history.
struct PostedEvent {
  BasicEventKind kind = BasicEventKind::kMethod;
  EventQualifier qualifier = EventQualifier::kAfter;

  /// kMethod: the invoked member function and its actual arguments.
  std::string method_name;
  std::vector<EventArg> args;

  /// kTime: canonical key of the timer's BasicEvent (see
  /// BasicEvent::CanonicalKey) so specs can be matched exactly.
  std::string time_key;

  Oid object;        ///< The object this event was posted to.
  TxnId txn = 0;     ///< Posting transaction (0 for system/clock postings).
  TimeMs time = 0;   ///< Virtual-clock occurrence time.
  uint64_t seq = 0;  ///< 1-based position in the object's history.

  /// Looks up an argument by name; null Value if absent.
  const Value* FindArg(std::string_view name) const;

  /// True if this occurrence matches the given basic-event specification:
  /// same kind and qualifier; for methods, same name (and arity when the
  /// spec declares a signature); for time events, same canonical key.
  bool Matches(const BasicEvent& spec) const;

  /// Display form, e.g. "after withdraw(i=7, q=200) [txn 3 @t=12]".
  std::string ToString() const;
};

/// Convenience factories for building histories in tests and examples.
PostedEvent MakePosted(BasicEventKind kind, EventQualifier q, TxnId txn = 0);
PostedEvent MakePostedMethod(EventQualifier q, std::string method,
                             std::vector<EventArg> args = {}, TxnId txn = 0);

}  // namespace ode

#endif  // ODE_EVENT_POSTED_EVENT_H_
