#ifndef ODE_EVENT_TIME_SPEC_H_
#define ODE_EVENT_TIME_SPEC_H_

#include <cstdint>
#include <optional>
#include <string>

#include "common/result.h"

namespace ode {

/// Milliseconds since the epoch of the virtual clock
/// (1970-01-01 00:00:00.000 in the proleptic Gregorian calendar).
using TimeMs = int64_t;

/// A broken-down civil time in the proleptic Gregorian calendar.
struct DateTime {
  int year = 1970;
  int month = 1;   ///< 1..12
  int day = 1;     ///< 1..31
  int hour = 0;    ///< 0..23
  int minute = 0;  ///< 0..59
  int second = 0;  ///< 0..59
  int ms = 0;      ///< 0..999

  bool operator==(const DateTime&) const = default;
};

/// Days since 1970-01-01 for a civil date (Hinnant's algorithm).
int64_t DaysFromCivil(int year, int month, int day);

/// Inverse of DaysFromCivil.
void CivilFromDays(int64_t days, int* year, int* month, int* day);

/// Converts a civil DateTime to epoch milliseconds.
TimeMs ToEpochMs(const DateTime& dt);

/// Converts epoch milliseconds to a civil DateTime.
DateTime FromEpochMs(TimeMs t);

/// Number of days in the given month (handles leap years).
int DaysInMonth(int year, int month);

/// The paper's time specification (§3.1):
///
///   time(YR=year, MON=month, DAY=day, HR=hour, M=minute, SEC=s, MS=ms)
///
/// with any item possibly omitted. A TimeSpec is used in two roles:
///
///  * As a *pattern* for `at time(...)`: the event occurs whenever the
///    current time matches every specified field. Fields coarser than the
///    coarsest specified field are wildcards; fields finer than the finest
///    specified field are implicitly zero (so `at time(HR=9)` means "every
///    day at 09:00:00.000" and `at time(M=30)` means "every hour at :30").
///  * As a *period* for `every time(...)` / `after time(...)`: the fields
///    are summed into a duration (YR = 365 days and MON = 30 days, a
///    documented simplification for period arithmetic).
struct TimeSpec {
  std::optional<int> year;
  std::optional<int> month;
  std::optional<int> day;
  std::optional<int> hour;
  std::optional<int> minute;
  std::optional<int> second;
  std::optional<int> ms;

  bool operator==(const TimeSpec&) const = default;

  /// True if no field is specified.
  bool empty() const {
    return !year && !month && !day && !hour && !minute && !second && !ms;
  }

  /// Validates field ranges (month 1..12, hour 0..23, ...), pattern role.
  Status ValidateAsPattern() const;

  /// Duration in milliseconds for the period role. Errors if empty or if
  /// any field is negative.
  Result<int64_t> AsPeriodMs() const;

  /// True if the civil time `dt` matches this pattern (wildcard/zero rules
  /// described above).
  bool Matches(const DateTime& dt) const;

  /// The earliest time strictly greater than `after` matching this pattern,
  /// or an error if no match exists within `horizon_days` days (guards
  /// impossible patterns like DAY=31 with MON=2).
  Result<TimeMs> NextMatchAfter(TimeMs after, int horizon_days = 1500) const;

  /// Canonical display form, e.g. "time(HR=9, M=30)".
  std::string ToString() const;
};

}  // namespace ode

#endif  // ODE_EVENT_TIME_SPEC_H_
