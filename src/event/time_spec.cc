#include "event/time_spec.h"

#include <array>

#include "common/strutil.h"

namespace ode {

namespace {
constexpr int64_t kMsPerSecond = 1000;
constexpr int64_t kMsPerMinute = 60 * kMsPerSecond;
constexpr int64_t kMsPerHour = 60 * kMsPerMinute;
constexpr int64_t kMsPerDay = 24 * kMsPerHour;
}  // namespace

int64_t DaysFromCivil(int year, int month, int day) {
  year -= month <= 2;
  const int64_t era = (year >= 0 ? year : year - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(year - era * 400);
  const unsigned doy =
      (153 * (month + (month > 2 ? -3 : 9)) + 2) / 5 + day - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t days, int* year, int* month, int* day) {
  days += 719468;
  const int64_t era = (days >= 0 ? days : days - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(days - era * 146097);
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *day = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  *month = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  *year = static_cast<int>(y + (*month <= 2));
}

TimeMs ToEpochMs(const DateTime& dt) {
  int64_t days = DaysFromCivil(dt.year, dt.month, dt.day);
  return days * kMsPerDay + dt.hour * kMsPerHour + dt.minute * kMsPerMinute +
         dt.second * kMsPerSecond + dt.ms;
}

DateTime FromEpochMs(TimeMs t) {
  int64_t days = t / kMsPerDay;
  int64_t rem = t % kMsPerDay;
  if (rem < 0) {
    rem += kMsPerDay;
    days -= 1;
  }
  DateTime dt;
  CivilFromDays(days, &dt.year, &dt.month, &dt.day);
  dt.hour = static_cast<int>(rem / kMsPerHour);
  rem %= kMsPerHour;
  dt.minute = static_cast<int>(rem / kMsPerMinute);
  rem %= kMsPerMinute;
  dt.second = static_cast<int>(rem / kMsPerSecond);
  dt.ms = static_cast<int>(rem % kMsPerSecond);
  return dt;
}

int DaysInMonth(int year, int month) {
  static constexpr int kDays[12] = {31, 28, 31, 30, 31, 30,
                                    31, 31, 30, 31, 30, 31};
  if (month == 2) {
    bool leap = (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
    return leap ? 29 : 28;
  }
  return kDays[month - 1];
}

Status TimeSpec::ValidateAsPattern() const {
  if (empty()) {
    return Status::InvalidArgument("time specification has no fields");
  }
  if (year && *year < 1) return Status::InvalidArgument("YR must be >= 1");
  if (month && (*month < 1 || *month > 12)) {
    return Status::InvalidArgument("MON must be in 1..12");
  }
  if (day && (*day < 1 || *day > 31)) {
    return Status::InvalidArgument("DAY must be in 1..31");
  }
  if (hour && (*hour < 0 || *hour > 23)) {
    return Status::InvalidArgument("HR must be in 0..23");
  }
  if (minute && (*minute < 0 || *minute > 59)) {
    return Status::InvalidArgument("M must be in 0..59");
  }
  if (second && (*second < 0 || *second > 59)) {
    return Status::InvalidArgument("SEC must be in 0..59");
  }
  if (ms && (*ms < 0 || *ms > 999)) {
    return Status::InvalidArgument("MS must be in 0..999");
  }
  return Status::OK();
}

Result<int64_t> TimeSpec::AsPeriodMs() const {
  if (empty()) {
    return Status::InvalidArgument("time period has no fields");
  }
  int64_t total = 0;
  auto add = [&total](const std::optional<int>& f, int64_t unit) -> Status {
    if (!f) return Status::OK();
    if (*f < 0) return Status::InvalidArgument("negative time period field");
    total += static_cast<int64_t>(*f) * unit;
    return Status::OK();
  };
  ODE_RETURN_IF_ERROR(add(year, 365 * kMsPerDay));
  ODE_RETURN_IF_ERROR(add(month, 30 * kMsPerDay));
  ODE_RETURN_IF_ERROR(add(day, kMsPerDay));
  ODE_RETURN_IF_ERROR(add(hour, kMsPerHour));
  ODE_RETURN_IF_ERROR(add(minute, kMsPerMinute));
  ODE_RETURN_IF_ERROR(add(second, kMsPerSecond));
  ODE_RETURN_IF_ERROR(add(ms, 1));
  if (total <= 0) {
    return Status::InvalidArgument("time period must be positive");
  }
  return total;
}

namespace {

// Effective per-field pattern: -1 means wildcard, otherwise the fixed value.
// Index: 0=year 1=month 2=day 3=hour 4=minute 5=second 6=ms.
struct EffectivePattern {
  std::array<int, 7> fixed;
};

EffectivePattern MakeEffective(const TimeSpec& spec) {
  std::array<std::optional<int>, 7> raw = {spec.year,   spec.month,
                                           spec.day,    spec.hour,
                                           spec.minute, spec.second,
                                           spec.ms};
  int finest = -1;
  for (int i = 0; i < 7; ++i) {
    if (raw[i]) finest = i;
  }
  static constexpr int kMinValue[7] = {0, 1, 1, 0, 0, 0, 0};
  EffectivePattern p;
  for (int i = 0; i < 7; ++i) {
    if (raw[i]) {
      p.fixed[i] = *raw[i];
    } else if (i > finest) {
      // Fields finer than the finest specified default to their minimum.
      p.fixed[i] = kMinValue[i];
    } else {
      p.fixed[i] = -1;  // Wildcard.
    }
  }
  return p;
}

int FieldOf(const DateTime& dt, int i) {
  switch (i) {
    case 0: return dt.year;
    case 1: return dt.month;
    case 2: return dt.day;
    case 3: return dt.hour;
    case 4: return dt.minute;
    case 5: return dt.second;
    default: return dt.ms;
  }
}

void SetField(DateTime* dt, int i, int v) {
  switch (i) {
    case 0: dt->year = v; break;
    case 1: dt->month = v; break;
    case 2: dt->day = v; break;
    case 3: dt->hour = v; break;
    case 4: dt->minute = v; break;
    case 5: dt->second = v; break;
    default: dt->ms = v; break;
  }
}

int MinValue(int i) {
  static constexpr int kMinValue[7] = {0, 1, 1, 0, 0, 0, 0};
  return kMinValue[i];
}

int MaxValue(const DateTime& dt, int i, int max_year) {
  switch (i) {
    case 0: return max_year;
    case 1: return 12;
    case 2: return DaysInMonth(dt.year, dt.month);
    case 3: return 23;
    case 4: return 59;
    case 5: return 59;
    default: return 999;
  }
}

}  // namespace

bool TimeSpec::Matches(const DateTime& dt) const {
  EffectivePattern p = MakeEffective(*this);
  for (int i = 0; i < 7; ++i) {
    if (p.fixed[i] >= 0 && FieldOf(dt, i) != p.fixed[i]) return false;
  }
  return true;
}

Result<TimeMs> TimeSpec::NextMatchAfter(TimeMs after, int horizon_days) const {
  ODE_RETURN_IF_ERROR(ValidateAsPattern());
  EffectivePattern p = MakeEffective(*this);
  DateTime cand = FromEpochMs(after + 1);
  const int max_year = FromEpochMs(after).year + horizon_days / 365 + 2;

  // Sets fields finer than `level` to their minimum value.
  auto reset_finer = [&cand](int level) {
    for (int j = level + 1; j < 7; ++j) SetField(&cand, j, MinValue(j));
  };
  // Increments the nearest wildcard field at index <= level (cascading
  // further up on overflow). Returns false if impossible.
  auto carry = [&](int level) -> bool {
    for (int j = level; j >= 0; --j) {
      if (p.fixed[j] >= 0) continue;  // Fixed field: cannot change.
      int v = FieldOf(cand, j) + 1;
      if (v > MaxValue(cand, j, max_year)) {
        SetField(&cand, j, MinValue(j));
        continue;  // Overflow: keep carrying upward.
      }
      SetField(&cand, j, v);
      reset_finer(j);
      return true;
    }
    return false;
  };

  for (int guard = 0; guard < 200000; ++guard) {
    bool restart = false;
    for (int i = 0; i < 7 && !restart; ++i) {
      int cur = FieldOf(cand, i);
      if (p.fixed[i] >= 0) {
        if (cur < p.fixed[i]) {
          // Day values may exceed the month's length; treat as carry.
          if (i == 2 && p.fixed[i] > MaxValue(cand, i, max_year)) {
            if (!carry(i - 1)) return Status::OutOfRange("no matching time");
            restart = true;
            break;
          }
          SetField(&cand, i, p.fixed[i]);
          reset_finer(i);
        } else if (cur > p.fixed[i]) {
          if (!carry(i - 1)) return Status::OutOfRange("no matching time");
          restart = true;
        }
      } else if (cur > MaxValue(cand, i, max_year)) {
        if (!carry(i - 1)) return Status::OutOfRange("no matching time");
        restart = true;
      }
    }
    if (restart) continue;
    // Re-check day-of-month validity (e.g. fixed DAY=31 in a 30-day month).
    if (cand.day > DaysInMonth(cand.year, cand.month)) {
      if (!carry(1)) return Status::OutOfRange("no matching time");
      continue;
    }
    TimeMs t = ToEpochMs(cand);
    if (t - after > static_cast<int64_t>(horizon_days) * kMsPerDay) {
      return Status::OutOfRange("no matching time within horizon");
    }
    return t;
  }
  return Status::OutOfRange("time pattern search did not converge");
}

std::string TimeSpec::ToString() const {
  std::vector<std::string> parts;
  if (year) parts.push_back(StrFormat("YR=%d", *year));
  if (month) parts.push_back(StrFormat("MON=%d", *month));
  if (day) parts.push_back(StrFormat("DAY=%d", *day));
  if (hour) parts.push_back(StrFormat("HR=%d", *hour));
  if (minute) parts.push_back(StrFormat("M=%d", *minute));
  if (second) parts.push_back(StrFormat("SEC=%d", *second));
  if (ms) parts.push_back(StrFormat("MS=%d", *ms));
  return "time(" + Join(parts, ", ") + ")";
}

}  // namespace ode
