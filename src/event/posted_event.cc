#include "event/posted_event.h"

#include "common/strutil.h"

namespace ode {

const Value* PostedEvent::FindArg(std::string_view name) const {
  for (const EventArg& a : args) {
    if (a.name == name) return &a.value;
  }
  return nullptr;
}

bool PostedEvent::Matches(const BasicEvent& spec) const {
  if (spec.kind != kind) return false;
  if (spec.kind == BasicEventKind::kTime) {
    return spec.CanonicalKey() == time_key;
  }
  if (spec.qualifier != qualifier) return false;
  if (spec.kind == BasicEventKind::kMethod) {
    if (spec.method_name != method_name) return false;
    // A declared signature disambiguates overloads by arity (§3.1).
    if (!spec.params.empty() && spec.params.size() != args.size()) {
      return false;
    }
  }
  return true;
}

std::string PostedEvent::ToString() const {
  std::string out;
  if (kind == BasicEventKind::kTime) {
    out = time_key.empty() ? "time" : time_key;
  } else {
    out = std::string(EventQualifierName(qualifier));
    out += " ";
    if (kind == BasicEventKind::kMethod) {
      out += method_name;
      if (!args.empty()) {
        std::vector<std::string> parts;
        parts.reserve(args.size());
        for (const EventArg& a : args) {
          parts.push_back(a.name + "=" + a.value.ToString());
        }
        out += "(" + Join(parts, ", ") + ")";
      }
    } else {
      out += BasicEventKindName(kind);
    }
  }
  out += StrFormat(" [txn %llu @t=%lld]",
                   static_cast<unsigned long long>(txn),
                   static_cast<long long>(time));
  return out;
}

PostedEvent MakePosted(BasicEventKind kind, EventQualifier q, TxnId txn) {
  PostedEvent e;
  e.kind = kind;
  e.qualifier = q;
  e.txn = txn;
  return e;
}

PostedEvent MakePostedMethod(EventQualifier q, std::string method,
                             std::vector<EventArg> args, TxnId txn) {
  PostedEvent e;
  e.kind = BasicEventKind::kMethod;
  e.qualifier = q;
  e.method_name = std::move(method);
  e.args = std::move(args);
  e.txn = txn;
  return e;
}

}  // namespace ode
