#include "event/basic_event.h"

#include "common/strutil.h"

namespace ode {

std::string_view BasicEventKindName(BasicEventKind kind) {
  switch (kind) {
    case BasicEventKind::kCreate: return "create";
    case BasicEventKind::kDelete: return "delete";
    case BasicEventKind::kUpdate: return "update";
    case BasicEventKind::kRead: return "read";
    case BasicEventKind::kAccess: return "access";
    case BasicEventKind::kMethod: return "method";
    case BasicEventKind::kTbegin: return "tbegin";
    case BasicEventKind::kTcomplete: return "tcomplete";
    case BasicEventKind::kTcommit: return "tcommit";
    case BasicEventKind::kTabort: return "tabort";
    case BasicEventKind::kTime: return "time";
  }
  return "unknown";
}

std::string_view EventQualifierName(EventQualifier q) {
  switch (q) {
    case EventQualifier::kBefore: return "before";
    case EventQualifier::kAfter: return "after";
    case EventQualifier::kNone: return "";
  }
  return "";
}

std::string_view TimeEventModeName(TimeEventMode mode) {
  switch (mode) {
    case TimeEventMode::kAt: return "at";
    case TimeEventMode::kEvery: return "every";
    case TimeEventMode::kAfter: return "after";
  }
  return "";
}

bool IsLegalQualifier(BasicEventKind kind, EventQualifier q) {
  switch (kind) {
    case BasicEventKind::kCreate:
      return q == EventQualifier::kAfter;
    case BasicEventKind::kDelete:
      return q == EventQualifier::kBefore;
    case BasicEventKind::kUpdate:
    case BasicEventKind::kRead:
    case BasicEventKind::kAccess:
    case BasicEventKind::kMethod:
      return q == EventQualifier::kBefore || q == EventQualifier::kAfter;
    case BasicEventKind::kTbegin:
      return q == EventQualifier::kAfter;
    case BasicEventKind::kTcomplete:
      return q == EventQualifier::kBefore;
    case BasicEventKind::kTcommit:
      // "before tcommit" is explicitly disallowed: we cannot be sure a
      // transaction is going to commit until it actually does so (§3.1).
      return q == EventQualifier::kAfter;
    case BasicEventKind::kTabort:
      return q == EventQualifier::kBefore || q == EventQualifier::kAfter;
    case BasicEventKind::kTime:
      return q == EventQualifier::kNone;
  }
  return false;
}

BasicEvent BasicEvent::Make(BasicEventKind kind, EventQualifier q) {
  BasicEvent e;
  e.kind = kind;
  e.qualifier = q;
  return e;
}

BasicEvent BasicEvent::Method(EventQualifier q, std::string name,
                              std::vector<ParamDecl> params) {
  BasicEvent e;
  e.kind = BasicEventKind::kMethod;
  e.qualifier = q;
  e.method_name = std::move(name);
  e.params = std::move(params);
  return e;
}

BasicEvent BasicEvent::Time(TimeEventMode mode, TimeSpec spec) {
  BasicEvent e;
  e.kind = BasicEventKind::kTime;
  e.qualifier = EventQualifier::kNone;
  e.time_mode = mode;
  e.time_spec = spec;
  return e;
}

Status BasicEvent::Validate() const {
  if (!IsLegalQualifier(kind, qualifier)) {
    return Status::InvalidArgument(StrFormat(
        "illegal event '%s %s'",
        std::string(EventQualifierName(qualifier)).c_str(),
        std::string(BasicEventKindName(kind)).c_str()));
  }
  if (kind == BasicEventKind::kMethod && method_name.empty()) {
    return Status::InvalidArgument("method event requires a method name");
  }
  if (kind != BasicEventKind::kMethod &&
      (!method_name.empty() || !params.empty())) {
    return Status::InvalidArgument(
        "method name/params only legal on method events");
  }
  if (kind == BasicEventKind::kTime) {
    if (time_mode == TimeEventMode::kAt) {
      ODE_RETURN_IF_ERROR(time_spec.ValidateAsPattern());
    } else {
      ODE_RETURN_IF_ERROR(time_spec.AsPeriodMs().status());
    }
  }
  return Status::OK();
}

std::string BasicEvent::CanonicalKey() const {
  switch (kind) {
    case BasicEventKind::kMethod: {
      std::string key(EventQualifierName(qualifier));
      key += ":method:";
      key += method_name;
      if (!params.empty()) {
        key += StrFormat("/%zu", params.size());
      }
      return key;
    }
    case BasicEventKind::kTime: {
      std::string key(TimeEventModeName(time_mode));
      key += ":";
      key += time_spec.ToString();
      return key;
    }
    default: {
      std::string key(EventQualifierName(qualifier));
      key += ":";
      key += BasicEventKindName(kind);
      return key;
    }
  }
}

std::string BasicEvent::ToString() const {
  switch (kind) {
    case BasicEventKind::kMethod: {
      std::string out(EventQualifierName(qualifier));
      out += " ";
      out += method_name;
      if (!params.empty()) {
        std::vector<std::string> decls;
        decls.reserve(params.size());
        for (const ParamDecl& p : params) {
          decls.push_back(p.type_name + " " + p.name);
        }
        out += "(" + Join(decls, ", ") + ")";
      }
      return out;
    }
    case BasicEventKind::kTime: {
      std::string out(TimeEventModeName(time_mode));
      out += " ";
      out += time_spec.ToString();
      return out;
    }
    default: {
      std::string out(EventQualifierName(qualifier));
      out += " ";
      out += BasicEventKindName(kind);
      return out;
    }
  }
}

bool BasicEvent::operator==(const BasicEvent& other) const {
  return CanonicalKey() == other.CanonicalKey();
}

}  // namespace ode
