#ifndef ODE_EVENT_HISTORY_QUERY_H_
#define ODE_EVENT_HISTORY_QUERY_H_

#include <functional>
#include <vector>

#include "common/result.h"
#include "event/basic_event.h"
#include "event/history.h"

namespace ode {

/// §9 "history expressions": a fluent, explicit query interface over an
/// object's event history, complementing the automaton path (which never
/// needs the history) for analysis and debugging. Queries are value
/// objects holding pointers into the underlying history; the history must
/// outlive the query.
///
///   int64_t large = HistoryQuery::Over(*db.history(acct))
///                       .Method("withdraw", EventQualifier::kAfter)
///                       .Where([](const PostedEvent& e) {
///                         return e.FindArg("q")->AsInt().value() > 100;
///                       })
///                       .Count();
class HistoryQuery {
 public:
  using Predicate = std::function<bool(const PostedEvent&)>;

  static HistoryQuery Over(const EventHistory& history);

  /// --- Filters (each returns a narrowed query) --------------------------

  /// Events matching a basic-event specification.
  HistoryQuery Matching(const BasicEvent& spec) const;
  /// Method events by name (and qualifier unless kNone is passed).
  HistoryQuery Method(std::string_view name,
                      EventQualifier q = EventQualifier::kNone) const;
  /// Events of one kind (any qualifier).
  HistoryQuery Kind(BasicEventKind kind) const;
  /// Events posted by the given transaction.
  HistoryQuery InTxn(TxnId txn) const;
  /// Events with occurrence time in [from, to].
  HistoryQuery Between(TimeMs from, TimeMs to) const;
  /// Events strictly after history position `seq`.
  HistoryQuery After(uint64_t seq) const;
  /// Arbitrary predicate.
  HistoryQuery Where(const Predicate& pred) const;
  /// The suffix starting right after the *last* event matching `spec` —
  /// the `relative` truncation (§4) as an explicit history operation.
  HistoryQuery SinceLast(const BasicEvent& spec) const;

  /// --- Terminals --------------------------------------------------------

  size_t Count() const { return events_.size(); }
  bool Empty() const { return events_.empty(); }
  const PostedEvent* First() const;
  const PostedEvent* Last() const;
  std::vector<const PostedEvent*> All() const { return events_; }

  /// Numeric aggregation over a named argument; errors if any matching
  /// event lacks the argument or it is non-numeric. Sum of zero events is
  /// int 0; Min/Max of zero events is an error.
  Result<Value> SumArg(std::string_view arg_name) const;
  Result<Value> MinArg(std::string_view arg_name) const;
  Result<Value> MaxArg(std::string_view arg_name) const;

 private:
  explicit HistoryQuery(std::vector<const PostedEvent*> events)
      : events_(std::move(events)) {}

  HistoryQuery Filtered(const Predicate& pred) const;

  std::vector<const PostedEvent*> events_;
};

}  // namespace ode

#endif  // ODE_EVENT_HISTORY_QUERY_H_
