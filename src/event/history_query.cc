#include "event/history_query.h"

#include <algorithm>

#include "common/strutil.h"

namespace ode {

HistoryQuery HistoryQuery::Over(const EventHistory& history) {
  std::vector<const PostedEvent*> events;
  events.reserve(history.size());
  for (const PostedEvent& e : history.events()) events.push_back(&e);
  return HistoryQuery(std::move(events));
}

HistoryQuery HistoryQuery::Filtered(const Predicate& pred) const {
  std::vector<const PostedEvent*> out;
  for (const PostedEvent* e : events_) {
    if (pred(*e)) out.push_back(e);
  }
  return HistoryQuery(std::move(out));
}

HistoryQuery HistoryQuery::Matching(const BasicEvent& spec) const {
  return Filtered([&spec](const PostedEvent& e) { return e.Matches(spec); });
}

HistoryQuery HistoryQuery::Method(std::string_view name,
                                  EventQualifier q) const {
  std::string method(name);
  return Filtered([method, q](const PostedEvent& e) {
    return e.kind == BasicEventKind::kMethod && e.method_name == method &&
           (q == EventQualifier::kNone || e.qualifier == q);
  });
}

HistoryQuery HistoryQuery::Kind(BasicEventKind kind) const {
  return Filtered([kind](const PostedEvent& e) { return e.kind == kind; });
}

HistoryQuery HistoryQuery::InTxn(TxnId txn) const {
  return Filtered([txn](const PostedEvent& e) { return e.txn == txn; });
}

HistoryQuery HistoryQuery::Between(TimeMs from, TimeMs to) const {
  return Filtered([from, to](const PostedEvent& e) {
    return e.time >= from && e.time <= to;
  });
}

HistoryQuery HistoryQuery::After(uint64_t seq) const {
  return Filtered([seq](const PostedEvent& e) { return e.seq > seq; });
}

HistoryQuery HistoryQuery::Where(const Predicate& pred) const {
  return Filtered(pred);
}

HistoryQuery HistoryQuery::SinceLast(const BasicEvent& spec) const {
  uint64_t anchor = 0;
  for (const PostedEvent* e : events_) {
    if (e->Matches(spec)) anchor = e->seq;
  }
  return After(anchor);
}

const PostedEvent* HistoryQuery::First() const {
  return events_.empty() ? nullptr : events_.front();
}

const PostedEvent* HistoryQuery::Last() const {
  return events_.empty() ? nullptr : events_.back();
}

namespace {

Result<Value> ArgOf(const PostedEvent& e, std::string_view arg_name) {
  const Value* v = e.FindArg(arg_name);
  if (v == nullptr) {
    return Status::NotFound(StrFormat(
        "event at position %llu has no argument '%s'",
        static_cast<unsigned long long>(e.seq),
        std::string(arg_name).c_str()));
  }
  if (!v->IsNumeric()) {
    return Status::InvalidArgument(StrFormat(
        "argument '%s' is not numeric", std::string(arg_name).c_str()));
  }
  return *v;
}

}  // namespace

Result<Value> HistoryQuery::SumArg(std::string_view arg_name) const {
  Value total(0);
  for (const PostedEvent* e : events_) {
    ODE_ASSIGN_OR_RETURN(Value v, ArgOf(*e, arg_name));
    ODE_ASSIGN_OR_RETURN(total, total.Add(v));
  }
  return total;
}

Result<Value> HistoryQuery::MinArg(std::string_view arg_name) const {
  if (events_.empty()) {
    return Status::FailedPrecondition("Min over an empty selection");
  }
  ODE_ASSIGN_OR_RETURN(Value best, ArgOf(*events_.front(), arg_name));
  for (size_t i = 1; i < events_.size(); ++i) {
    ODE_ASSIGN_OR_RETURN(Value v, ArgOf(*events_[i], arg_name));
    ODE_ASSIGN_OR_RETURN(int cmp, v.Compare(best));
    if (cmp < 0) best = v;
  }
  return best;
}

Result<Value> HistoryQuery::MaxArg(std::string_view arg_name) const {
  if (events_.empty()) {
    return Status::FailedPrecondition("Max over an empty selection");
  }
  ODE_ASSIGN_OR_RETURN(Value best, ArgOf(*events_.front(), arg_name));
  for (size_t i = 1; i < events_.size(); ++i) {
    ODE_ASSIGN_OR_RETURN(Value v, ArgOf(*events_[i], arg_name));
    ODE_ASSIGN_OR_RETURN(int cmp, v.Compare(best));
    if (cmp > 0) best = v;
  }
  return best;
}

}  // namespace ode
