#ifndef ODE_WAL_CHECKPOINT_H_
#define ODE_WAL_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "runtime/metrics.h"
#include "wal/log_format.h"

namespace ode {
namespace wal {

/// Everything a checkpoint persists beyond the plain object snapshot:
///  * snapshot_body  — Database::SaveSnapshotText() output (objects,
///                     trigger automaton states, clock, timers);
///  * inflight       — per-shard queue contents at the checkpoint pause
///                     (accepted but not yet processed events);
///  * shard_metrics  — cumulative per-shard counters, restored as the
///                     metrics baseline so totals survive restarts;
///  * applied        — per-producer-identity applied-seq sets (the
///                     exactly-once dedup state);
///  * covered_lsn    — per log-file index, the highest lsn this checkpoint
///                     subsumes. Recovery skips records at or below it, so
///                     a crash *between* checkpoint rename and log
///                     truncation cannot replay covered events twice.
struct CheckpointData {
  size_t num_shards = 0;  ///< Live shard count when written.
  std::string snapshot_body;
  std::map<size_t, uint64_t> covered_lsn;
  std::vector<runtime::ShardMetricsSnapshot> shard_metrics;
  /// Counters carried over from runs whose shard count no longer matches
  /// (folded into the total, not attributable to a live shard).
  runtime::ShardMetricsSnapshot base_metrics;
  bool has_base_metrics = false;
  std::map<std::string, SeqSet> applied;
  std::vector<std::vector<WalRecord>> inflight;  ///< Size num_shards.
};

std::string CheckpointPath(const std::string& dir);
std::string CheckpointTmpPath(const std::string& dir);

/// Atomically publishes `data` as <dir>/checkpoint.ode: write to the .tmp
/// sibling, fsync, rename over the final name, fsync the directory. A
/// crash at any point leaves either the old checkpoint or the new one —
/// never a mix (a stale .tmp is ignored and deleted by the next recovery).
Status WriteCheckpointFile(const std::string& dir, const CheckpointData& data);

/// kNotFound when no checkpoint exists; kInvalidArgument on checksum or
/// format violations (a corrupt checkpoint is unrecoverable and must
/// surface, not be silently skipped).
Result<CheckpointData> ReadCheckpointFile(const std::string& dir);

}  // namespace wal
}  // namespace ode

#endif  // ODE_WAL_CHECKPOINT_H_
