#include "wal/log_format.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "common/strutil.h"
#include "ode/snapshot_codec.h"

namespace ode {
namespace wal {

namespace {

/// Table-driven CRC-32 (IEEE, reflected), table built once at startup.
const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v));
  out->push_back(static_cast<char>(v >> 8));
}

void PutU32(std::string* out, uint32_t v) {
  PutU16(out, static_cast<uint16_t>(v));
  PutU16(out, static_cast<uint16_t>(v >> 16));
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(const char* p) {
  return static_cast<uint8_t>(p[0]) |
         (uint32_t{static_cast<uint8_t>(p[1])} << 8) |
         (uint32_t{static_cast<uint8_t>(p[2])} << 16) |
         (uint32_t{static_cast<uint8_t>(p[3])} << 24);
}

/// Bounds-checked reader over a record payload (same discipline as the
/// wire Cursor: a failed read latches ok_ false and reads nothing).
class Reader {
 public:
  Reader(const char* data, size_t size) : data_(data), size_(size) {}

  bool ReadU16(uint16_t* v) {
    if (pos_ + 2 > size_) return Fail();
    *v = static_cast<uint16_t>(static_cast<uint8_t>(data_[pos_]) |
                               (uint16_t{static_cast<uint8_t>(
                                    data_[pos_ + 1])}
                                << 8));
    pos_ += 2;
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (pos_ + 8 > size_) return Fail();
    uint64_t r = 0;
    for (int i = 7; i >= 0; --i) {
      r = (r << 8) | static_cast<uint8_t>(data_[pos_ + i]);
    }
    pos_ += 8;
    *v = r;
    return true;
  }
  bool ReadBytes(size_t n, std::string* v) {
    if (n > size_ || pos_ > size_ - n) return Fail();
    v->assign(data_ + pos_, n);
    pos_ += n;
    return true;
  }

  bool ok() const { return ok_; }
  bool exhausted() const { return pos_ == size_; }

 private:
  bool Fail() {
    ok_ = false;
    return false;
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

uint32_t Crc32(const void* data, size_t n) {
  const auto& table = CrcTable();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kAlways: return "always";
    case FsyncPolicy::kEveryN: return "every-n";
    case FsyncPolicy::kEveryMs: return "every-ms";
    case FsyncPolicy::kNever: return "never";
  }
  return "?";
}

Status AppendRecord(std::string* out, const WalRecord& record) {
  if (record.method.size() > kMaxWalMethodLen) {
    return Status::InvalidArgument(
        StrFormat("wal record method is %zu bytes, limit %zu",
                  record.method.size(), kMaxWalMethodLen));
  }
  if (record.args.size() > kMaxWalArgs) {
    return Status::InvalidArgument(StrFormat(
        "wal record has %zu args, limit %zu", record.args.size(),
        kMaxWalArgs));
  }
  if (record.producer_id.size() > kMaxWalIdentityLen) {
    return Status::InvalidArgument(
        StrFormat("wal producer id is %zu bytes, limit %zu",
                  record.producer_id.size(), kMaxWalIdentityLen));
  }
  std::string payload;
  payload.reserve(32 + record.method.size() + record.producer_id.size());
  PutU64(&payload, record.lsn);
  PutU64(&payload, record.oid.id);
  PutU64(&payload, record.producer_seq);
  PutU16(&payload, static_cast<uint16_t>(record.producer_id.size()));
  payload.append(record.producer_id);
  PutU16(&payload, static_cast<uint16_t>(record.method.size()));
  payload.append(record.method);
  PutU16(&payload, static_cast<uint16_t>(record.args.size()));
  for (const Value& v : record.args) {
    std::string text = EncodeSnapshotValue(v);
    if (text.size() > UINT16_MAX) {
      return Status::InvalidArgument("wal record arg value too large");
    }
    PutU16(&payload, static_cast<uint16_t>(text.size()));
    payload.append(text);
  }
  if (payload.size() > kMaxWalPayload) {
    return Status::InvalidArgument(
        StrFormat("wal record payload is %zu bytes, limit %zu",
                  payload.size(), kMaxWalPayload));
  }
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU32(out, Crc32(payload.data(), payload.size()));
  out->append(payload);
  return Status::OK();
}

DecodeStatus DecodeRecord(const char* data, size_t size, WalRecord* out,
                          size_t* consumed, std::string* error) {
  *consumed = 0;
  if (size < 8) return DecodeStatus::kNeedMore;
  const uint32_t payload_len = GetU32(data);
  if (payload_len > kMaxWalPayload) {
    if (error != nullptr) {
      *error = StrFormat("record length %u exceeds limit %zu", payload_len,
                         kMaxWalPayload);
    }
    return DecodeStatus::kCorrupt;
  }
  if (size < 8 + static_cast<size_t>(payload_len)) {
    return DecodeStatus::kNeedMore;
  }
  const uint32_t declared_crc = GetU32(data + 4);
  const char* payload = data + 8;
  if (Crc32(payload, payload_len) != declared_crc) {
    if (error != nullptr) *error = "record CRC mismatch";
    return DecodeStatus::kCorrupt;
  }

  *out = WalRecord{};
  Reader in(payload, payload_len);
  uint64_t oid = 0;
  uint16_t id_len = 0, method_len = 0, argc = 0;
  bool ok = in.ReadU64(&out->lsn) && in.ReadU64(&oid) &&
            in.ReadU64(&out->producer_seq) && in.ReadU16(&id_len);
  if (ok && id_len > kMaxWalIdentityLen) ok = false;
  ok = ok && in.ReadBytes(id_len, &out->producer_id) &&
       in.ReadU16(&method_len);
  if (ok && method_len > kMaxWalMethodLen) ok = false;
  ok = ok && in.ReadBytes(method_len, &out->method) && in.ReadU16(&argc);
  if (ok && argc > kMaxWalArgs) ok = false;
  if (ok) {
    out->oid = Oid{oid};
    out->args.reserve(argc);
    for (uint16_t i = 0; ok && i < argc; ++i) {
      uint16_t len = 0;
      std::string text;
      ok = in.ReadU16(&len) && in.ReadBytes(len, &text);
      if (!ok) break;
      Result<Value> v = DecodeSnapshotValue(text);
      if (!v.ok()) {
        ok = false;
        break;
      }
      out->args.push_back(std::move(*v));
    }
  }
  if (!ok || !in.ok() || !in.exhausted()) {
    // The CRC matched, so this is a writer bug or a deliberately crafted
    // payload rather than disk rot — still corrupt from the reader's view.
    if (error != nullptr) *error = "record payload malformed";
    return DecodeStatus::kCorrupt;
  }
  *consumed = 8 + static_cast<size_t>(payload_len);
  return DecodeStatus::kRecord;
}

void SeqSet::Add(uint64_t seq) {
  // First run with hi >= seq - 1 (the run `seq` joins or extends).
  auto it = std::lower_bound(
      runs_.begin(), runs_.end(), seq,
      [](const std::pair<uint64_t, uint64_t>& run, uint64_t s) {
        return run.second + 1 < s && run.second != UINT64_MAX;
      });
  if (it == runs_.end() || seq + 1 < it->first) {
    runs_.insert(it, {seq, seq});
    return;
  }
  if (seq >= it->first && seq <= it->second) return;  // Already present.
  if (seq + 1 == it->first) {
    it->first = seq;  // Extend left; cannot touch the previous run (else
                      // lower_bound would have landed there).
    return;
  }
  // seq == it->second + 1: extend right, then merge with the next run if
  // the gap closed.
  it->second = seq;
  auto next = it + 1;
  if (next != runs_.end() && it->second + 1 == next->first) {
    it->second = next->second;
    runs_.erase(next);
  }
}

bool SeqSet::Contains(uint64_t seq) const {
  auto it = std::lower_bound(
      runs_.begin(), runs_.end(), seq,
      [](const std::pair<uint64_t, uint64_t>& run, uint64_t s) {
        return run.second < s;
      });
  return it != runs_.end() && seq >= it->first;
}

uint64_t SeqSet::count() const {
  uint64_t n = 0;
  for (const auto& [lo, hi] : runs_) n += hi - lo + 1;
  return n;
}

std::string SeqSet::ToString() const {
  std::string out;
  for (const auto& [lo, hi] : runs_) {
    if (!out.empty()) out += ',';
    if (lo == hi) {
      out += StrFormat("%llu", static_cast<unsigned long long>(lo));
    } else {
      out += StrFormat("%llu-%llu", static_cast<unsigned long long>(lo),
                       static_cast<unsigned long long>(hi));
    }
  }
  return out;
}

Result<SeqSet> SeqSet::Parse(std::string_view text) {
  SeqSet set;
  uint64_t prev_hi = 0;
  bool first = true;
  for (std::string_view part : Split(text, ',')) {
    if (part.empty()) continue;
    uint64_t lo = 0, hi = 0;
    size_t dash = part.find('-');
    auto parse_u64 = [](std::string_view s, uint64_t* out) {
      if (s.empty()) return false;
      uint64_t v = 0;
      for (char c : s) {
        if (c < '0' || c > '9') return false;
        if (v > (UINT64_MAX - static_cast<uint64_t>(c - '0')) / 10) {
          return false;
        }
        v = v * 10 + static_cast<uint64_t>(c - '0');
      }
      *out = v;
      return true;
    };
    bool ok = dash == std::string_view::npos
                  ? parse_u64(part, &lo) && (hi = lo, true)
                  : parse_u64(part.substr(0, dash), &lo) &&
                        parse_u64(part.substr(dash + 1), &hi);
    if (!ok || hi < lo || (!first && lo <= prev_hi + 1 && prev_hi != 0)) {
      return Status::InvalidArgument(
          StrFormat("bad seq set run '%.*s'", static_cast<int>(part.size()),
                    part.data()));
    }
    set.runs_.emplace_back(lo, hi);
    prev_hi = hi;
    first = false;
  }
  return set;
}

}  // namespace wal
}  // namespace ode
