#ifndef ODE_WAL_LOG_WRITER_H_
#define ODE_WAL_LOG_WRITER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "wal/log_format.h"

namespace ode {
namespace wal {

/// Appender over one shard's log file. Append is not internally
/// synchronized: the owning Shard serializes it under its wal mutex
/// (which also pins queue order == log order), and checkpoint/truncate
/// runs only while the shard is paused and producers are gated out of
/// Post.
///
/// Group commit: under kEveryN and kEveryMs, Append only copies the
/// framed record into an in-memory buffer; a background flusher thread
/// drains the buffer with one write(2) + fsync(2) per group, so posters
/// never touch the disk (the classic WAL-writer design). Those policies
/// were never ACK-implies-durable — their loss bound stays "roughly the
/// group size", now counting buffered as well as unsynced records.
/// kAlways and kNever write through in Append; kAlways additionally
/// fsyncs before returning, so OK means the record is on disk.
class LogWriter {
 public:
  LogWriter() = default;
  ~LogWriter() { Close(); }

  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  /// Opens (creates) `path` in append mode — existing bytes are preserved
  /// so recovery can open writers before the old log has been replayed.
  /// New records get lsn start_lsn+1, start_lsn+2, ...
  Status Open(const std::string& path, uint64_t start_lsn,
              const WalOptions& options);

  /// Assigns the next lsn to `record`, appends the framed record, and
  /// applies the fsync policy. On an I/O failure the log is no longer
  /// trusted and subsequent Appends fail fast with the same error.
  Status Append(WalRecord* record);

  /// Fsync barrier: flushes anything the policy left unsynced.
  Status Sync();

  /// Empties the file (checkpoint truncation) and fsyncs. The lsn counter
  /// keeps running — records appended after a truncate stay above the
  /// checkpoint's covered lsn.
  Status Truncate();

  void Close();

  bool open() const { return fd_ >= 0; }
  // Counters are relaxed atomics so a metrics thread can sample them while
  // the owning shard appends.
  uint64_t last_lsn() const {
    return last_lsn_.load(std::memory_order_relaxed);
  }
  uint64_t appends() const {
    return appends_.load(std::memory_order_relaxed);
  }
  uint64_t fsyncs() const { return fsyncs_.load(std::memory_order_relaxed); }
  uint64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }

 private:
  Status WriteFully(const char* data, size_t size);
  Status FlushAndSyncLocked();
  Status GetFailed();
  void SetFailed(const Status& s);
  void FlusherLoop();
  void StopFlusher();
  bool buffered() const {
    return options_.fsync == FsyncPolicy::kEveryN ||
           options_.fsync == FsyncPolicy::kEveryMs;
  }

  int fd_ = -1;
  std::string path_;
  WalOptions options_;
  std::atomic<uint64_t> last_lsn_{0};
  std::atomic<uint64_t> appends_{0};
  std::atomic<uint64_t> fsyncs_{0};
  std::atomic<uint64_t> bytes_written_{0};
  /// Records not yet known to be on disk (buffered or written-unsynced).
  std::atomic<uint64_t> unsynced_records_{0};
  std::string buf_;  ///< Encode scratch, reused per append.

  // Sticky first I/O failure, shared between poster and flusher.
  std::atomic<bool> has_failed_{false};
  std::mutex failed_mu_;
  Status failed_ = Status::OK();

  /// Serializes flush/fsync/ftruncate between poster barriers and the
  /// flusher; posters never take it on the Append fast path.
  std::mutex sync_mu_;
  std::chrono::steady_clock::time_point last_sync_{};

  // Group-commit buffer (buffered policies only). Appends go to pending_
  // under buf_mu_; the flusher swaps it into writing_ (while holding
  // sync_mu_, so groups hit the file in lsn order) and writes + fsyncs
  // outside buf_mu_.
  std::mutex buf_mu_;
  std::string pending_;
  std::string writing_;

  // Background flusher (buffered policies only).
  std::thread flusher_;
  std::mutex flush_mu_;
  std::condition_variable flush_cv_;
  bool flush_requested_ = false;
  bool flush_stop_ = false;
};

/// `<dir>/shard-<index>.wal`.
std::string ShardLogPath(const std::string& dir, size_t index);

}  // namespace wal
}  // namespace ode

#endif  // ODE_WAL_LOG_WRITER_H_
