#include "wal/log_reader.h"

#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/strutil.h"

namespace ode {
namespace wal {

Result<LogReadResult> ReadLogFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound(StrFormat("cannot open '%s'", path.c_str()));
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string bytes = buf.str();

  LogReadResult result;
  result.total_bytes = bytes.size();
  size_t pos = 0;
  while (pos < bytes.size()) {
    WalRecord record;
    size_t consumed = 0;
    std::string error;
    DecodeStatus s = DecodeRecord(bytes.data() + pos, bytes.size() - pos,
                                  &record, &consumed, &error);
    if (s == DecodeStatus::kRecord) {
      result.records.push_back(std::move(record));
      pos += consumed;
      continue;
    }
    result.torn = true;
    result.torn_error =
        s == DecodeStatus::kNeedMore
            ? StrFormat("torn record at offset %zu (file ends mid-record)",
                        pos)
            : StrFormat("corrupt record at offset %zu: %s", pos,
                        error.c_str());
    break;
  }
  result.valid_bytes = pos;
  return result;
}

Status TruncateLogFile(const std::string& path, uint64_t to_bytes) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::NotFound(
        StrFormat("open '%s': %s", path.c_str(), std::strerror(errno)));
  }
  Status status = Status::OK();
  if (::ftruncate(fd, static_cast<off_t>(to_bytes)) != 0 ||
      ::fsync(fd) != 0) {
    status = Status::Internal(
        StrFormat("truncate '%s': %s", path.c_str(), std::strerror(errno)));
  }
  ::close(fd);
  return status;
}

std::vector<size_t> ListShardLogs(const std::string& dir) {
  std::vector<size_t> indices;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return indices;
  while (dirent* entry = ::readdir(d)) {
    std::string_view name(entry->d_name);
    constexpr std::string_view kPrefix = "shard-";
    constexpr std::string_view kSuffix = ".wal";
    if (name.size() <= kPrefix.size() + kSuffix.size() ||
        name.substr(0, kPrefix.size()) != kPrefix ||
        name.substr(name.size() - kSuffix.size()) != kSuffix) {
      continue;
    }
    std::string_view digits =
        name.substr(kPrefix.size(),
                    name.size() - kPrefix.size() - kSuffix.size());
    size_t index = 0;
    bool numeric = !digits.empty();
    for (char c : digits) {
      if (c < '0' || c > '9') {
        numeric = false;
        break;
      }
      index = index * 10 + static_cast<size_t>(c - '0');
    }
    if (numeric) indices.push_back(index);
  }
  ::closedir(d);
  std::sort(indices.begin(), indices.end());
  return indices;
}

}  // namespace wal
}  // namespace ode
