#include "wal/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/strutil.h"
#include "ode/snapshot_codec.h"

namespace ode {
namespace wal {

namespace {

constexpr std::string_view kMagic = "ODE-CHECKPOINT v1";

/// Tokens (producer identities, method names) are percent-escaped so the
/// line format survives arbitrary bytes; the empty string becomes "-".
std::string EscapeToken(std::string_view s) {
  if (s.empty()) return "-";
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                (c >= '0' && c <= '9') || c == '.' || c == '_';
    if (safe) {
      out.push_back(static_cast<char>(c));
    } else {
      static const char* kHex = "0123456789ABCDEF";
      out.push_back('%');
      out.push_back(kHex[c >> 4]);
      out.push_back(kHex[c & 0xf]);
    }
  }
  return out;
}

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

Result<std::string> UnescapeToken(std::string_view s) {
  if (s == "-") return std::string();
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      out.push_back(s[i]);
      continue;
    }
    if (i + 2 >= s.size()) {
      return Status::InvalidArgument("truncated %-escape in token");
    }
    int hi = HexNibble(s[i + 1]);
    int lo = HexNibble(s[i + 2]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("bad %-escape in token");
    }
    out.push_back(static_cast<char>((hi << 4) | lo));
    i += 2;
  }
  return out;
}

bool ParseU64(std::string_view token, uint64_t* out) {
  if (token.empty() || token.size() > 20) return false;
  uint64_t v = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return false;
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

void AppendMetricCounters(std::string* out,
                          const runtime::ShardMetricsSnapshot& m) {
  *out += StrFormat(
      " %llu %llu %llu %llu %llu %llu %llu %llu %llu %llu %llu",
      (unsigned long long)m.enqueued, (unsigned long long)m.dropped,
      (unsigned long long)m.rejected, (unsigned long long)m.processed,
      (unsigned long long)m.fired, (unsigned long long)m.aborted,
      (unsigned long long)m.retried, (unsigned long long)m.dead_lettered,
      (unsigned long long)m.epilogue_failures, (unsigned long long)m.batches,
      (unsigned long long)m.queue_high_water);
}

bool ParseMetricCounters(const std::vector<std::string>& tokens, size_t at,
                         runtime::ShardMetricsSnapshot* m) {
  uint64_t* fields[11] = {&m->enqueued,          &m->dropped,
                          &m->rejected,          &m->processed,
                          &m->fired,             &m->aborted,
                          &m->retried,           &m->dead_lettered,
                          &m->epilogue_failures, &m->batches,
                          &m->queue_high_water};
  if (tokens.size() != at + 11) return false;
  for (size_t i = 0; i < 11; ++i) {
    if (!ParseU64(tokens[at + i], fields[i])) return false;
  }
  return true;
}

std::string Serialize(const CheckpointData& data) {
  std::string out;
  out += kMagic;
  out += '\n';
  out += StrFormat("shards %zu\n", data.num_shards);
  for (const auto& [file, lsn] : data.covered_lsn) {
    out += StrFormat("covered %zu %llu\n", file, (unsigned long long)lsn);
  }
  for (size_t i = 0; i < data.shard_metrics.size(); ++i) {
    out += StrFormat("shardmetric %zu", i);
    AppendMetricCounters(&out, data.shard_metrics[i]);
    out += '\n';
  }
  if (data.has_base_metrics) {
    out += "basemetric";
    AppendMetricCounters(&out, data.base_metrics);
    out += '\n';
  }
  for (const auto& [id, seqs] : data.applied) {
    if (seqs.empty()) continue;
    out += StrFormat("watermark %s %s\n", EscapeToken(id).c_str(),
                     seqs.ToString().c_str());
  }
  for (size_t lane = 0; lane < data.seqlane.size(); ++lane) {
    out += StrFormat("seqlane %zu %llu\n", lane,
                     (unsigned long long)data.seqlane[lane]);
  }
  for (size_t shard = 0; shard < data.inflight.size(); ++shard) {
    for (const WalRecord& record : data.inflight[shard]) {
      out += StrFormat("inflight %zu %llu %llu %s %s %zu\n", shard,
                       (unsigned long long)record.oid.id,
                       (unsigned long long)record.producer_seq,
                       EscapeToken(record.producer_id).c_str(),
                       EscapeToken(record.method).c_str(),
                       record.args.size());
      for (const Value& arg : record.args) {
        out += "iarg ";
        out += EncodeSnapshotValue(arg);
        out += '\n';
      }
    }
  }
  out += StrFormat("snapshot %zu\n", data.snapshot_body.size());
  out += data.snapshot_body;
  out += '\n';
  out += StrFormat("checksum %016llx\n",
                   (unsigned long long)Fnv1a64(out));
  return out;
}

/// Line iterator over the checkpoint text that can also hand out a raw
/// byte block (the embedded snapshot body).
struct Cursor {
  std::string_view content;
  size_t pos = 0;

  bool NextLine(std::string_view* line) {
    if (pos >= content.size()) return false;
    size_t nl = content.find('\n', pos);
    if (nl == std::string_view::npos) {
      *line = content.substr(pos);
      pos = content.size();
    } else {
      *line = content.substr(pos, nl - pos);
      pos = nl + 1;
    }
    return true;
  }

  bool TakeRaw(size_t n, std::string_view* out) {
    // The raw block is followed by an explicit '\n' separator.
    if (content.size() - pos < n + 1 || content[pos + n] != '\n') {
      return false;
    }
    *out = content.substr(pos, n);
    pos += n + 1;
    return true;
  }
};

Result<CheckpointData> Parse(std::string_view content) {
  auto corrupt = [](const char* what) {
    return Status::InvalidArgument(
        StrFormat("corrupt checkpoint: %s", what));
  };

  // Validate the trailing checksum line first: it covers every byte before
  // the line itself, so any torn or flipped content is caught up front.
  size_t checksum_at = content.rfind("checksum ");
  if (checksum_at == std::string_view::npos ||
      (checksum_at != 0 && content[checksum_at - 1] != '\n')) {
    return corrupt("missing checksum line");
  }
  std::string_view checksum_line = content.substr(checksum_at);
  if (!checksum_line.empty() && checksum_line.back() == '\n') {
    checksum_line.remove_suffix(1);
  }
  uint64_t want = std::strtoull(
      std::string(checksum_line.substr(strlen("checksum "))).c_str(),
      nullptr, 16);
  if (want != Fnv1a64(content.substr(0, checksum_at))) {
    return corrupt("checksum mismatch");
  }

  Cursor cursor{content.substr(0, checksum_at)};
  std::string_view line;
  if (!cursor.NextLine(&line) || line != kMagic) {
    return corrupt("bad magic");
  }

  CheckpointData data;
  bool saw_shards = false;
  bool saw_snapshot = false;
  while (cursor.NextLine(&line)) {
    std::vector<std::string> tokens = Split(line, ' ');
    if (tokens.empty()) return corrupt("empty line");
    const std::string& kind = tokens[0];

    if (kind == "shards") {
      uint64_t n = 0;
      if (tokens.size() != 2 || !ParseU64(tokens[1], &n) || n == 0 ||
          n > 4096) {
        return corrupt("bad shards line");
      }
      data.num_shards = static_cast<size_t>(n);
      data.inflight.resize(data.num_shards);
      saw_shards = true;
    } else if (kind == "covered") {
      uint64_t file = 0, lsn = 0;
      if (tokens.size() != 3 || !ParseU64(tokens[1], &file) ||
          !ParseU64(tokens[2], &lsn)) {
        return corrupt("bad covered line");
      }
      data.covered_lsn[static_cast<size_t>(file)] = lsn;
    } else if (kind == "shardmetric") {
      uint64_t index = 0;
      runtime::ShardMetricsSnapshot m;
      if (tokens.size() != 13 || !ParseU64(tokens[1], &index) ||
          index != data.shard_metrics.size() ||
          !ParseMetricCounters(tokens, 2, &m)) {
        return corrupt("bad shardmetric line");
      }
      data.shard_metrics.push_back(m);
    } else if (kind == "basemetric") {
      if (!ParseMetricCounters(tokens, 1, &data.base_metrics)) {
        return corrupt("bad basemetric line");
      }
      data.has_base_metrics = true;
    } else if (kind == "watermark") {
      if (tokens.size() != 3) return corrupt("bad watermark line");
      ODE_ASSIGN_OR_RETURN(std::string id, UnescapeToken(tokens[1]));
      ODE_ASSIGN_OR_RETURN(SeqSet seqs, SeqSet::Parse(tokens[2]));
      data.applied[std::move(id)] = std::move(seqs);
    } else if (kind == "seqlane") {
      uint64_t lane = 0, count = 0;
      if (tokens.size() != 3 || !ParseU64(tokens[1], &lane) ||
          lane != data.seqlane.size() || lane > 4096 ||
          !ParseU64(tokens[2], &count)) {
        return corrupt("bad seqlane line");
      }
      data.seqlane.push_back(count);
    } else if (kind == "inflight") {
      uint64_t shard = 0, oid = 0, seq = 0, argc = 0;
      if (tokens.size() != 7 || !saw_shards ||
          !ParseU64(tokens[1], &shard) || shard >= data.num_shards ||
          !ParseU64(tokens[2], &oid) || !ParseU64(tokens[3], &seq) ||
          !ParseU64(tokens[6], &argc) || argc > kMaxWalArgs) {
        return corrupt("bad inflight line");
      }
      WalRecord record;
      record.oid = Oid{oid};
      record.producer_seq = seq;
      ODE_ASSIGN_OR_RETURN(record.producer_id, UnescapeToken(tokens[4]));
      ODE_ASSIGN_OR_RETURN(record.method, UnescapeToken(tokens[5]));
      if (record.producer_id.size() > kMaxWalIdentityLen ||
          record.method.empty() || record.method.size() > kMaxWalMethodLen) {
        return corrupt("inflight token exceeds caps");
      }
      record.args.reserve(argc);
      for (uint64_t i = 0; i < argc; ++i) {
        std::string_view arg_line;
        if (!cursor.NextLine(&arg_line) ||
            arg_line.substr(0, 5) != "iarg ") {
          return corrupt("missing iarg line");
        }
        ODE_ASSIGN_OR_RETURN(Value value,
                             DecodeSnapshotValue(arg_line.substr(5)));
        record.args.push_back(std::move(value));
      }
      data.inflight[static_cast<size_t>(shard)].push_back(std::move(record));
    } else if (kind == "snapshot") {
      uint64_t n = 0;
      if (tokens.size() != 2 || !ParseU64(tokens[1], &n)) {
        return corrupt("bad snapshot line");
      }
      std::string_view body;
      if (!cursor.TakeRaw(static_cast<size_t>(n), &body)) {
        return corrupt("snapshot block truncated");
      }
      data.snapshot_body = std::string(body);
      saw_snapshot = true;
    } else {
      return corrupt("unknown line kind");
    }
  }
  if (!saw_shards) return corrupt("missing shards line");
  if (!saw_snapshot) return corrupt("missing snapshot block");
  return data;
}

Status WriteAll(const std::string& path, const std::string& bytes) {
  int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return Status::Internal(
        StrFormat("open '%s': %s", path.c_str(), std::strerror(errno)));
  }
  Status status = Status::OK();
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      status = Status::Internal(
          StrFormat("write '%s': %s", path.c_str(), std::strerror(errno)));
      break;
    }
    off += static_cast<size_t>(n);
  }
  if (status.ok() && ::fsync(fd) != 0) {
    status = Status::Internal(
        StrFormat("fsync '%s': %s", path.c_str(), std::strerror(errno)));
  }
  ::close(fd);
  return status;
}

Status FsyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return Status::Internal(
        StrFormat("open dir '%s': %s", dir.c_str(), std::strerror(errno)));
  }
  Status status = Status::OK();
  if (::fsync(fd) != 0) {
    status = Status::Internal(
        StrFormat("fsync dir '%s': %s", dir.c_str(), std::strerror(errno)));
  }
  ::close(fd);
  return status;
}

}  // namespace

std::string CheckpointPath(const std::string& dir) {
  return dir + "/checkpoint.ode";
}

std::string CheckpointTmpPath(const std::string& dir) {
  return dir + "/checkpoint.tmp";
}

Status WriteCheckpointFile(const std::string& dir,
                           const CheckpointData& data) {
  const std::string tmp = CheckpointTmpPath(dir);
  const std::string final_path = CheckpointPath(dir);
  ODE_RETURN_IF_ERROR(WriteAll(tmp, Serialize(data)));
  if (::rename(tmp.c_str(), final_path.c_str()) != 0) {
    return Status::Internal(StrFormat("rename '%s' -> '%s': %s", tmp.c_str(),
                                      final_path.c_str(),
                                      std::strerror(errno)));
  }
  return FsyncDir(dir);
}

Result<CheckpointData> ReadCheckpointFile(const std::string& dir) {
  const std::string path = CheckpointPath(dir);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound(
        StrFormat("no checkpoint at '%s'", path.c_str()));
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return Parse(buf.str());
}

}  // namespace wal
}  // namespace ode
