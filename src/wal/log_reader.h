#ifndef ODE_WAL_LOG_READER_H_
#define ODE_WAL_LOG_READER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "wal/log_format.h"

namespace ode {
namespace wal {

/// One log file, fully read and validated. `records` is the longest clean
/// prefix: every record up to `valid_bytes` parsed and passed its CRC.
/// `torn` is set when trailing bytes after the prefix failed — a write cut
/// mid-record by a crash, or rot flagged by the CRC. Torn tails are
/// expected after a kill; recovery reports and discards them.
struct LogReadResult {
  std::vector<WalRecord> records;
  uint64_t valid_bytes = 0;
  uint64_t total_bytes = 0;
  bool torn = false;
  std::string torn_error;

  uint64_t torn_bytes() const { return total_bytes - valid_bytes; }
  /// Highest lsn in the clean prefix (0 when empty).
  uint64_t last_lsn() const {
    return records.empty() ? 0 : records.back().lsn;
  }
};

/// Reads and validates one log file. kNotFound when the file is missing;
/// a torn tail is NOT an error (see LogReadResult).
Result<LogReadResult> ReadLogFile(const std::string& path);

/// Cuts `path` down to `to_bytes` (tail repair for ode-waldump --repair
/// and tests). Fsyncs the result.
Status TruncateLogFile(const std::string& path, uint64_t to_bytes);

/// Indices of every shard-<i>.wal present under `dir`, sorted ascending.
/// An unreadable or absent directory yields an empty list.
std::vector<size_t> ListShardLogs(const std::string& dir);

}  // namespace wal
}  // namespace ode

#endif  // ODE_WAL_LOG_READER_H_
