#include "wal/recovery.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <utility>

#include "common/strutil.h"
#include "wal/log_writer.h"

namespace ode {
namespace wal {

Result<RecoveredState> LoadDurableState(const std::string& dir) {
  RecoveredState state;

  // A checkpoint.tmp is a checkpoint whose write never reached the rename;
  // the previous (or no) checkpoint is still authoritative.
  const std::string tmp = CheckpointTmpPath(dir);
  if (::unlink(tmp.c_str()) == 0) {
    state.notes.push_back("removed stale checkpoint.tmp");
  }

  Result<CheckpointData> checkpoint = ReadCheckpointFile(dir);
  if (checkpoint.ok()) {
    state.had_checkpoint = true;
    state.checkpoint = std::move(checkpoint).value();
    state.notes.push_back(StrFormat(
        "checkpoint: %zu shard(s), %zu covered file(s), %zu inflight "
        "list(s), %zu producer watermark(s)",
        state.checkpoint.num_shards, state.checkpoint.covered_lsn.size(),
        state.checkpoint.inflight.size(), state.checkpoint.applied.size()));
  } else if (checkpoint.status().code() != StatusCode::kNotFound) {
    return checkpoint.status();
  }

  for (size_t index : ListShardLogs(dir)) {
    const std::string path = ShardLogPath(dir, index);
    ODE_ASSIGN_OR_RETURN(LogReadResult log, ReadLogFile(path));

    if (log.torn) {
      ++state.torn_files;
      state.torn_bytes += log.torn_bytes();
      state.notes.push_back(StrFormat(
          "%s: discarding %llu invalid tail byte(s): %s", path.c_str(),
          (unsigned long long)log.torn_bytes(), log.torn_error.c_str()));
    }

    uint64_t covered = 0;
    auto it = state.checkpoint.covered_lsn.find(index);
    if (it != state.checkpoint.covered_lsn.end()) covered = it->second;

    uint64_t last = std::max(covered, log.last_lsn());
    state.file_last_lsn[index] = last;

    std::vector<WalRecord> keep;
    keep.reserve(log.records.size());
    for (WalRecord& record : log.records) {
      if (record.lsn <= covered) {
        // Subsumed by the checkpoint: the crash hit between the checkpoint
        // rename and the log truncation. Replaying it would double-apply.
        ++state.skipped_covered;
        continue;
      }
      keep.push_back(std::move(record));
    }
    state.replay_records += keep.size();
    if (!keep.empty() || covered > 0) {
      state.notes.push_back(StrFormat(
          "%s: %zu record(s) to replay, %llu covered by checkpoint",
          path.c_str(), keep.size(),
          (unsigned long long)(log.records.size() - keep.size())));
    }
    state.replay.emplace(index, std::move(keep));
  }

  return state;
}

}  // namespace wal
}  // namespace ode
